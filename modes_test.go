package fastlsa_test

import (
	"testing"

	"fastlsa"
)

// TestFacadeModes exercises the ends-free modes through the public API and
// cross-checks the FastLSA and full-matrix engines.
func TestFacadeModes(t *testing.T) {
	shared := fastlsa.RandomSequence("s", 80, fastlsa.DNA, 881).String()
	a, err := fastlsa.NewSequence("a", fastlsa.RandomSequence("", 120, fastlsa.DNA, 882).String()+shared, fastlsa.DNA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fastlsa.NewSequence("b", shared+fastlsa.RandomSequence("", 150, fastlsa.DNA, 883).String(), fastlsa.DNA)
	if err != nil {
		t.Fatal(err)
	}
	base := fastlsa.Options{Matrix: fastlsa.DNASimple, Gap: fastlsa.Linear(-12), Mode: fastlsa.ModeOverlap, Workers: 1}

	alLSA, err := fastlsa.Align(a, b, base)
	if err != nil {
		t.Fatal(err)
	}
	optFM := base
	optFM.Algorithm = fastlsa.AlgoFullMatrix
	alFM, err := fastlsa.Align(a, b, optFM)
	if err != nil {
		t.Fatal(err)
	}
	if alLSA.Score != alFM.Score {
		t.Fatalf("mode engines disagree: %d vs %d", alLSA.Score, alFM.Score)
	}
	if alLSA.Score < 80*5 {
		t.Fatalf("overlap score %d below the perfect 80-base overlap", alLSA.Score)
	}
	// Score() agrees.
	sc, err := fastlsa.Score(a, b, base)
	if err != nil {
		t.Fatal(err)
	}
	if sc != alLSA.Score {
		t.Fatalf("Score()=%d, Align()=%d", sc, alLSA.Score)
	}
	// Hirschberg + mode is rejected.
	optH := base
	optH.Algorithm = fastlsa.AlgoHirschberg
	if _, err := fastlsa.Align(a, b, optH); err == nil {
		t.Fatal("hirschberg + mode must be rejected")
	}
	// Affine + mode is supported; the two engines must agree and Score must
	// match Align.
	optAff := base
	optAff.Gap = fastlsa.Affine(-10, -2)
	alAff, err := fastlsa.Align(a, b, optAff)
	if err != nil {
		t.Fatal(err)
	}
	optAffFM := optAff
	optAffFM.Algorithm = fastlsa.AlgoFullMatrix
	alAffFM, err := fastlsa.Align(a, b, optAffFM)
	if err != nil {
		t.Fatal(err)
	}
	if alAff.Score != alAffFM.Score {
		t.Fatalf("affine mode engines disagree: %d vs %d", alAff.Score, alAffFM.Score)
	}
	scAff, err := fastlsa.Score(a, b, optAff)
	if err != nil {
		t.Fatal(err)
	}
	if scAff != alAff.Score {
		t.Fatalf("affine mode Score()=%d, Align()=%d", scAff, alAff.Score)
	}
}

func TestFacadeCompactEngine(t *testing.T) {
	x, y, err := fastlsa.HomologousPair(300, fastlsa.DNA, fastlsa.DefaultHomology, 884)
	if err != nil {
		t.Fatal(err)
	}
	base := fastlsa.Options{Matrix: fastlsa.DNASimple, Gap: fastlsa.Linear(-4), Workers: 1}
	ref, err := fastlsa.Align(x, y, base)
	if err != nil {
		t.Fatal(err)
	}
	optC := base
	optC.Algorithm = fastlsa.AlgoCompact
	got, err := fastlsa.Align(x, y, optC)
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != ref.Score || !got.Path.Equal(ref.Path) {
		t.Fatal("compact engine diverges")
	}
	// Name round trip.
	algo, err := fastlsa.ParseAlgorithm("compact")
	if err != nil || algo != fastlsa.AlgoCompact || algo.String() != "compact" {
		t.Fatalf("compact parsing broken: %v %v", algo, err)
	}
	// Compact + affine rejected.
	optC.Gap = fastlsa.Affine(-5, -1)
	if _, err := fastlsa.Align(x, y, optC); err == nil {
		t.Fatal("compact + affine must be rejected")
	}
}

func TestFacadeModeParsing(t *testing.T) {
	for name, want := range map[string]fastlsa.Mode{
		"global":  fastlsa.ModeGlobal,
		"overlap": fastlsa.ModeOverlap,
		"fit":     fastlsa.ModeFitBInA,
	} {
		got, err := fastlsa.ParseMode(name)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", name, got, err)
		}
	}
}

func TestFacadeBanded(t *testing.T) {
	x, y, err := fastlsa.HomologousPair(400, fastlsa.DNA, fastlsa.DefaultHomology, 885)
	if err != nil {
		t.Fatal(err)
	}
	opt := fastlsa.Options{Matrix: fastlsa.DNASimple, Gap: fastlsa.Linear(-4), Workers: 1}
	full, err := fastlsa.Align(x, y, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Adaptive banding is always exact.
	banded, err := fastlsa.AlignBanded(x, y, opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if banded.Score != full.Score {
		t.Fatalf("adaptive banded %d != full %d", banded.Score, full.Score)
	}
	// A fixed wide band is exact too.
	banded, err = fastlsa.AlignBanded(x, y, opt, 500)
	if err != nil {
		t.Fatal(err)
	}
	if banded.Score != full.Score {
		t.Fatalf("wide banded %d != full %d", banded.Score, full.Score)
	}
}
