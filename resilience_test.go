package fastlsa_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"fastlsa"
	"fastlsa/internal/core"
	"fastlsa/internal/fault"
	"fastlsa/internal/fm"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/testutil"
)

// TestBatchSurvivesTileFillPanics is the resilience acceptance scenario: with
// a 1% panic armed on the parallel tile-fill site, a 100-unit alignment batch
// submitted with a 3-attempt retry policy completes with zero failed units —
// every injected panic is isolated to its attempt, classified transient, and
// retried — and every unit still produces the exact full-matrix score.
func TestBatchSurvivesTileFillPanics(t *testing.T) {
	if err := fault.Arm("core.fillTile:panic:0.01", 11); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	defer fault.Disarm()

	// Size each unit so an attempt crosses the injection point a handful of
	// times: a 200x200 problem with K=2 and a 1x1 tile subdivision runs one
	// parallel grid fill of 3 tiles (2x2 minus the skipped bottom-right
	// block), while ParallelFillCells keeps every recursive subproblem on the
	// sequential paths.
	opt := core.Options{
		K: 2, BaseCells: 4096, Workers: 2,
		TileRows: 1, TileCols: 1, ParallelFillCells: 20000,
	}
	gap := scoring.Linear(-4)

	const units = 100
	type pair struct{ a, b *seq.Sequence }
	pairs := make([]pair, units)
	want := make([]int64, units)
	for i := range pairs {
		a, b := testutil.HomologousPair(200, seq.DNA, int64(i+1))
		pairs[i] = pair{a, b}
		ref, err := fm.Align(a, b, scoring.DNASimple, gap, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ref.Score
	}

	en := fastlsa.NewEngine(fastlsa.EngineConfig{Workers: 4, QueueDepth: 2 * units})
	defer en.Shutdown(context.Background())

	tasks := make([]func(ctx context.Context) (any, error), units)
	for i := range tasks {
		p := pairs[i]
		tasks[i] = func(ctx context.Context) (any, error) {
			res, err := core.Align(p.a, p.b, scoring.DNASimple, gap, opt)
			if err != nil {
				return nil, err
			}
			return res.Score, nil
		}
	}
	b, err := en.SubmitBatchFunc("resilience-align", tasks, fastlsa.JobOptions{
		Retry: fastlsa.RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   time.Millisecond,
			MaxDelay:    4 * time.Millisecond,
			RetryOn:     fastlsa.RetryTransient,
		},
	})
	if err != nil {
		t.Fatalf("SubmitBatchFunc: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	results, err := b.Wait(ctx)
	if err != nil {
		t.Fatalf("batch Wait: %v", err)
	}

	for _, r := range results {
		if r.Err != nil {
			t.Errorf("unit %d failed despite retry: %v", r.Index, r.Err)
			continue
		}
		if got := r.Result.(int64); got != want[r.Index] {
			t.Errorf("unit %d score %d != full-matrix %d", r.Index, got, want[r.Index])
		}
	}
	if retries := en.Stats().Retries; retries < 1 {
		t.Fatalf("retries = %d; the armed fault never struck — the scenario is vacuous", retries)
	} else {
		t.Logf("completed %d units with %d retried attempts", units, retries)
	}
}

// TestRetryTransientClassification pins the public classifier's contract:
// panics, injected faults and budget races retry; caller mistakes and
// cancellations never do.
func TestRetryTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{fmt.Errorf("wrapped: %w", fastlsa.ErrJobPanic), true},
		{fmt.Errorf("wrapped: %w", fault.ErrInjected), true},
		{fmt.Errorf("wrapped: %w", fastlsa.ErrBudgetExceeded), true},
		{errors.New("some transient I/O flake"), true},
		{fmt.Errorf("wrapped: %w", fastlsa.ErrInvalidInput), false},
		{fmt.Errorf("wrapped: %w", fastlsa.ErrBudgetTooSmall), false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
	}
	for _, c := range cases {
		if got := fastlsa.RetryTransient(c.err); got != c.want {
			t.Errorf("RetryTransient(%v) = %t, want %t", c.err, got, c.want)
		}
	}
}
