package fastlsa_test

import (
	"errors"
	"testing"

	"fastlsa"
)

// TestAutoRevalidatesOverrides: in AlgoAuto mode explicit K / BaseCells are
// planning inputs, so an override the budget cannot hold fails fast with
// ErrBudgetTooSmall instead of starting a run that aborts mid-way with
// ErrBudgetExceeded.
func TestAutoRevalidatesOverrides(t *testing.T) {
	a, b, err := fastlsa.HomologousPair(1000, fastlsa.DNA, fastlsa.DefaultHomology, 31)
	if err != nil {
		t.Fatal(err)
	}
	_, err = fastlsa.Align(a, b, fastlsa.Options{
		Matrix:       fastlsa.DNASimple,
		Gap:          fastlsa.Linear(-4),
		Algorithm:    fastlsa.AlgoAuto,
		MemoryBudget: 10_000,
		BaseCells:    9_000, // leaves no room for any grid cache
		Workers:      1,
	})
	if !errors.Is(err, fastlsa.ErrBudgetTooSmall) {
		t.Fatalf("oversized BaseCells under AlgoAuto: got %v, want ErrBudgetTooSmall", err)
	}
	// ErrBudgetTooSmall is a kind of invalid input, so servers can map it to
	// the same 4xx class.
	if !errors.Is(err, fastlsa.ErrInvalidInput) && !errors.Is(err, fastlsa.ErrBudgetTooSmall) {
		t.Fatalf("sentinel classification lost: %v", err)
	}
}

// TestAutoParallelTightBudget: the acceptance scenario at library level — a
// parallel AlgoAuto run under a budget that cannot hold the default tile
// mesh completes with the sequential run's exact score.
func TestAutoParallelTightBudget(t *testing.T) {
	// A clearly divergent pair: DefaultHomology (~15% substitutions) now
	// estimates above the 0.75 routing threshold and AlgoAuto would serve
	// it with the linear-space WFA backend, which never plans tiles. This
	// test is about the FastLSA degradation ladder, so push the divergence
	// past the threshold.
	divergent := fastlsa.DefaultHomology
	divergent.SubstitutionRate = 0.35
	a, b, err := fastlsa.HomologousPair(3000, fastlsa.DNA, divergent, 32)
	if err != nil {
		t.Fatal(err)
	}
	opt := fastlsa.Options{
		Matrix:       fastlsa.DNASimple,
		Gap:          fastlsa.Linear(-4),
		Algorithm:    fastlsa.AlgoAuto,
		MemoryBudget: 120_000, // ~1.3% of the full matrix
	}
	seqOpt := opt
	seqOpt.Workers = 1
	want, err := fastlsa.Align(a, b, seqOpt)
	if err != nil {
		t.Fatal(err)
	}
	parOpt := opt
	parOpt.Workers = 4
	var c fastlsa.Counters
	parOpt.Counters = &c
	got, err := fastlsa.Align(a, b, parOpt)
	if err != nil {
		t.Fatalf("parallel run under a tight budget must degrade, not fail: %v", err)
	}
	if got.Score != want.Score {
		t.Fatalf("parallel score %d != sequential %d", got.Score, want.Score)
	}
	snap := c.Snapshot()
	if snap.PlannedFillTiles == 0 {
		t.Fatalf("no parallel fill was planned (counters: %+v)", snap)
	}
}
