package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,30")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 30 {
		t.Fatalf("parsed %v", got)
	}
	if got, err := parseInts(""); err != nil || got != nil {
		t.Fatalf("empty list: %v %v", got, err)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Fatal("bad entry must fail")
	}
}
