// Command fastlsa-bench regenerates the paper's evaluation tables and
// figures (experiments E1-E15; see DESIGN.md §3 for the index and
// EXPERIMENTS.md for recorded results). Each subcommand prints one
// experiment's rows; "all" runs the whole suite.
//
// Usage:
//
//	fastlsa-bench <experiment>[,<experiment>...] [flags]
//
// Experiments:
//
//	example     E1: Figure 1 worked example
//	opcounts    E2: operation-count comparison table
//	table3      E3: benchmark workload suite
//	seqtime     E4: sequential time vs size (FM / Hirschberg / FastLSA)
//	ksweep      E5: effect of parameter k
//	memsweep    E6: adapting to the memory budget RM
//	speedup     E7: parallel speedup vs P
//	efficiency  E8: parallel efficiency vs problem size
//	tilesweep   E9: (k, u, v) tiling and the three wavefront phases
//	search      E10: q-gram seed filter vs brute-force corpus scan
//	bounds      E11: theorem-bound verification
//	wfa         E13: FastLSA vs WFA crossover by divergence
//	biwfa       E15: WFA vs BiWFA peak memory by divergence
//	all         every experiment above
//
// Flags (apply where meaningful):
//
//	-large        include the paper-scale large workloads (slow)
//	-n N          problem size override for ksweep/memsweep/tilesweep
//	-p P          worker count for efficiency/tilesweep
//	-sizes a,b,c  size list for opcounts/speedup
//	-workers a,b  worker list for speedup
//	-json f.json  also write machine-readable results (schema fastlsa-bench/v2)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"fastlsa/internal/bench"
)

// experimentIDs maps experiment names to the paper's evaluation numbering
// (DESIGN.md §3); experiments beyond the paper's suite have no E-number.
var experimentIDs = map[string]string{
	"example": "E1", "opcounts": "E2", "table3": "E3", "seqtime": "E4",
	"ksweep": "E5", "memsweep": "E6", "speedup": "E7", "efficiency": "E8",
	"tilesweep": "E9", "search": "E10", "bounds": "E11", "variants": "E12",
	"wfa": "E13", "biwfa": "E15",
}

func main() {
	var (
		large    = flag.Bool("large", false, "include paper-scale workloads (slow)")
		n        = flag.Int("n", 0, "problem size override (0 = experiment default)")
		p        = flag.Int("p", 0, "worker count override (0 = experiment default)")
		sizes    = flag.String("sizes", "", "comma-separated size list")
		workers  = flag.String("workers", "", "comma-separated worker list")
		ks       = flag.String("ks", "", "comma-separated k list")
		jsonPath = flag.String("json", "", "also write machine-readable results to this file (schema fastlsa-bench/v2; see docs/OBSERVABILITY.md)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fastlsa-bench <experiment>[,<experiment>...] [flags]\nexperiments: example opcounts table3 seqtime ksweep memsweep speedup efficiency tilesweep search bounds variants wfa biwfa all\n\n")
		flag.PrintDefaults()
	}
	if len(os.Args) < 2 {
		flag.Usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	if err := flag.CommandLine.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	sizeList, err := parseInts(*sizes)
	if err != nil {
		fatal(err)
	}
	workerList, err := parseInts(*workers)
	if err != nil {
		fatal(err)
	}
	kList, err := parseInts(*ks)
	if err != nil {
		fatal(err)
	}

	var out io.Writer = os.Stdout
	var rec *bench.Recorder
	if *jsonPath != "" {
		rec = bench.NewRecorder(os.Stdout)
		out = rec
	}
	run := func(name string) error {
		if rec != nil {
			rec.StartExperiment(name, experimentIDs[name])
		}
		switch name {
		case "example":
			return bench.ExperimentExample(out)
		case "opcounts":
			return bench.ExperimentOpCounts(out, sizeList, kList)
		case "table3":
			return bench.ExperimentTable3(out, *large)
		case "seqtime":
			return bench.ExperimentSeqTime(out, *large)
		case "ksweep":
			return bench.ExperimentKSweep(out, *n, kList)
		case "memsweep":
			return bench.ExperimentMemSweep(out, *n)
		case "speedup":
			return bench.ExperimentSpeedup(out, sizeList, workerList)
		case "efficiency":
			return bench.ExperimentEfficiency(out, *p, *large)
		case "tilesweep":
			return bench.ExperimentTileSweep(out, *n, *p)
		case "search":
			return bench.ExperimentSearch(out, sizeList)
		case "bounds":
			return bench.ExperimentBounds(out)
		case "variants":
			return bench.ExperimentVariants(out, *n)
		case "wfa":
			return bench.ExperimentWFACrossover(out, *n)
		case "biwfa":
			return bench.ExperimentBiWFA(out, *n)
		case "theory":
			return bench.ExperimentTheory(out)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	names := strings.Split(cmd, ",")
	if cmd == "all" {
		names = []string{
			"example", "opcounts", "table3", "seqtime", "ksweep",
			"memsweep", "speedup", "efficiency", "tilesweep", "search", "bounds", "variants", "wfa", "biwfa", "theory",
		}
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		if err := run(name); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
	}
	if rec != nil {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatal(err)
		}
		werr := rec.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fatal(fmt.Errorf("writing %s: %w", *jsonPath, werr))
		}
	}
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fastlsa-bench:", err)
	os.Exit(1)
}
