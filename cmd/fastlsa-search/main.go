// Command fastlsa-search runs a homology search: a query sequence is ranked
// against every record of a FASTA database by optimal local alignment score
// (the application the paper's introduction motivates), with optional
// E-value statistics fitted on the fly.
//
// Usage:
//
//	fastlsa-search [flags] query.fasta database.fasta
//
// Example:
//
//	fastlsa-search -matrix dna -gap -12 -top 10 -evalues query.fa db.fa
//	fastlsa-search -matrix dna -q 8 -min-score 1400 query.fa corpus.fa
//
// -q builds a q-gram seed-filter index over the database before scanning, so
// entries that cannot reach -min-score are pruned without alignment (lossless;
// see docs/SEARCH.md). The funnel line reports how far each stage narrowed.
package main

import (
	"flag"
	"fmt"
	"os"

	"fastlsa"
)

func main() {
	var (
		matrixName = flag.String("matrix", "blosum62", "scoring matrix: table1, mdm78, blosum62, dna, dna-strict, dna-iupac")
		alphaName  = flag.String("alphabet", "", "residue alphabet (default: the matrix's alphabet)")
		gapPen     = flag.Int("gap", -12, "linear gap penalty per gapped position (negative)")
		topK       = flag.Int("top", 10, "number of hits to report")
		alignments = flag.Int("alignments", 3, "hits whose full alignment is printed")
		minScore   = flag.Int64("min-score", 0, "drop candidates below this raw score")
		maxEValue  = flag.Float64("max-evalue", 0, "drop hits above this E-value (enables -evalues)")
		evalues    = flag.Bool("evalues", false, "fit Gumbel statistics and report E-values/bit scores")
		workers    = flag.Int("workers", 0, "parallel workers for the database scan (0 = all CPUs)")
		seed       = flag.Int64("stats-seed", 1, "seed for the statistics fit")
		width      = flag.Int("width", 60, "alignment columns per output block")
		qgram      = flag.Int("q", 0, "build a q-gram seed-filter index over the database (0 = off, -1 = per-alphabet default)")
	)
	flag.Parse()
	if err := run(*matrixName, *alphaName, *gapPen, *topK, *alignments, *minScore,
		*maxEValue, *evalues, *workers, *qgram, *seed, *width, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "fastlsa-search:", err)
		os.Exit(1)
	}
}

func run(matrixName, alphaName string, gapPen, topK, alignments int, minScore int64,
	maxEValue float64, evalues bool, workers, qgram int, seed int64, width int, args []string) error {

	if len(args) != 2 {
		return fmt.Errorf("want: query.fasta database.fasta")
	}
	matrix, err := fastlsa.MatrixByName(matrixName)
	if err != nil {
		return err
	}
	alphabet := matrix.Alphabet
	if alphaName != "" {
		if alphabet, err = fastlsa.ParseAlphabet(alphaName); err != nil {
			return err
		}
	}
	query, err := readFirst(args[0], alphabet)
	if err != nil {
		return err
	}
	dbf, err := os.Open(args[1])
	if err != nil {
		return err
	}
	defer dbf.Close()
	db, err := fastlsa.ReadFASTA(dbf, alphabet)
	if err != nil {
		return err
	}

	opt := fastlsa.SearchOptions{
		Matrix:     matrix,
		Gap:        fastlsa.Linear(gapPen),
		TopK:       topK,
		Alignments: alignments,
		MinScore:   minScore,
		MaxEValue:  maxEValue,
		Workers:    workers,
	}
	var probe *fastlsa.SearchProbe
	if qgram != 0 {
		if qgram < 0 {
			qgram = 0 // BuildIndex picks the per-alphabet default
		}
		ix, err := fastlsa.BuildIndex(db, qgram)
		if err != nil {
			return fmt.Errorf("index: %w", err)
		}
		probe = &fastlsa.SearchProbe{}
		opt.Index = ix
		opt.Probe = probe
	}
	if evalues || maxEValue > 0 {
		params, err := fastlsa.EstimateStatistics(matrix, opt.Gap, 0, 0, seed)
		if err != nil {
			return fmt.Errorf("statistics fit: %w", err)
		}
		fmt.Printf("statistics: %s\n\n", params)
		opt.Stats = &params
	}

	hits, err := fastlsa.Search(query, db, opt)
	if err != nil {
		return err
	}
	if len(hits) == 0 {
		fmt.Println("no hits")
		return nil
	}
	fmt.Printf("query %s (%d residues) vs %d database records\n", query.ID, query.Len(), len(db))
	if probe != nil {
		fmt.Printf("filter: %d scanned -> %d candidates (%.1f%% pass, seed floor %d grams)\n",
			probe.Scanned, probe.Candidates, 100*probe.Selectivity, probe.SeedFloor)
	}
	fmt.Println()
	fmt.Printf("%-4s %-20s %8s", "#", "id", "score")
	if opt.Stats != nil {
		fmt.Printf(" %12s %8s", "e-value", "bits")
	}
	fmt.Println()
	for i, h := range hits {
		fmt.Printf("%-4d %-20s %8d", i+1, h.ID, h.Score)
		if opt.Stats != nil {
			fmt.Printf(" %12.3g %8.1f", h.EValue, h.BitScore)
		}
		fmt.Println()
	}
	for i, h := range hits {
		if h.Alignment == nil {
			continue
		}
		loc := h.Alignment
		fmt.Printf("\n— hit %d: %s  query[%d:%d] x target[%d:%d] —\n",
			i+1, h.ID, loc.StartA, loc.EndA, loc.StartB, loc.EndB)
		sub := &fastlsa.Alignment{
			A:     query.Slice(loc.StartA, loc.EndA),
			B:     db[h.Index].Slice(loc.StartB, loc.EndB),
			Path:  loc.Path,
			Score: loc.Score,
		}
		if err := sub.Fprint(os.Stdout, fastlsa.FormatOptions{Width: width, Matrix: matrix, ShowRuler: true}); err != nil {
			return err
		}
	}
	return nil
}

func readFirst(path string, alphabet *fastlsa.Alphabet) (*fastlsa.Sequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := fastlsa.ReadFASTA(f, alphabet)
	if err != nil {
		return nil, err
	}
	return recs[0], nil
}
