package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fastlsa"
)

func writeSearchFixtures(t *testing.T) (queryPath, dbPath string) {
	t.Helper()
	dir := t.TempDir()
	query := fastlsa.RandomSequence("query", 200, fastlsa.DNA, 11)
	hom, err := fastlsa.DefaultHomology.Mutate("homolog", query, 12)
	if err != nil {
		t.Fatal(err)
	}
	var db strings.Builder
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&db, ">bg%d\n%s\n", i, fastlsa.RandomSequence("", 250, fastlsa.DNA, 100+int64(i)))
	}
	fmt.Fprintf(&db, ">homolog\n%s\n", hom)

	queryPath = filepath.Join(dir, "q.fa")
	dbPath = filepath.Join(dir, "db.fa")
	if err := os.WriteFile(queryPath, []byte(">query\n"+query.String()+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dbPath, []byte(db.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return queryPath, dbPath
}

func TestRunSearch(t *testing.T) {
	q, db := writeSearchFixtures(t)
	if err := run("dna", "", -12, 5, 1, 0, 0, false, 1, 0, 1, 60, []string{q, db}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSearchWithEValues(t *testing.T) {
	q, db := writeSearchFixtures(t)
	if err := run("dna", "", -12, 5, 1, 0, 1e-3, false, 1, 0, 1, 60, []string{q, db}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSearchFiltered(t *testing.T) {
	q, db := writeSearchFixtures(t)
	// -1 selects the per-alphabet default q; results must match the brute
	// scan because the filter is lossless.
	if err := run("dna", "", -12, 5, 1, 0, 0, false, 1, -1, 1, 60, []string{q, db}); err != nil {
		t.Fatal(err)
	}
	if err := run("dna", "", -12, 5, 1, 0, 0, false, 1, 8, 1, 60, []string{q, db}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSearchErrors(t *testing.T) {
	q, db := writeSearchFixtures(t)
	if err := run("dna", "", -12, 5, 1, 0, 0, false, 1, 0, 1, 60, []string{q}); err == nil {
		t.Fatal("missing db arg must fail")
	}
	if err := run("warp", "", -12, 5, 1, 0, 0, false, 1, 0, 1, 60, []string{q, db}); err == nil {
		t.Fatal("unknown matrix must fail")
	}
	if err := run("dna", "", -12, 5, 1, 0, 0, false, 1, 0, 1, 60, []string{"/nope.fa", db}); err == nil {
		t.Fatal("missing query file must fail")
	}
	// Linear-phase gap makes the statistics fit fail cleanly.
	if err := run("dna", "", -1, 5, 1, 0, 0, true, 1, 0, 1, 60, []string{q, db}); err == nil {
		t.Fatal("linear-phase statistics must fail")
	}
}
