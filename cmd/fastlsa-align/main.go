// Command fastlsa-align is a pairwise sequence aligner built on the fastlsa
// library: FASTA in, alignment out, with the algorithm, gap model, memory
// budget, FastLSA parameters and parallelism selectable from flags.
//
// Usage:
//
//	fastlsa-align [flags] a.fasta b.fasta     # first record of each file
//	fastlsa-align [flags] pair.fasta          # first two records of one file
//
// Examples:
//
//	fastlsa-align -matrix blosum62 -gap -8 query.fa target.fa
//	fastlsa-align -algorithm fm -alphabet dna -workers 8 pair.fa
//	fastlsa-align -local -matrix dna -open -12 -extend -2 a.fa b.fa
package main

import (
	"flag"
	"fmt"
	"os"

	"fastlsa"
)

func main() {
	var (
		matrixName = flag.String("matrix", "blosum62", "scoring matrix: table1, mdm78, blosum62, dna, dna-strict")
		alphaName  = flag.String("alphabet", "", "residue alphabet: dna or protein (default: the matrix's alphabet)")
		algoName   = flag.String("algorithm", "auto", "engine: auto, fastlsa, fm, hirschberg, compact, wfa")
		modeName   = flag.String("mode", "global", "ends-free mode: global, overlap, fit-b-in-a, fit-a-in-b")
		gapPen     = flag.Int("gap", -10, "linear gap penalty per gapped position (negative)")
		open       = flag.Int("open", 0, "affine gap-open penalty (non-positive; 0 keeps the linear model)")
		extend     = flag.Int("extend", 0, "affine gap-extend penalty (used with -open)")
		workers    = flag.Int("workers", 0, "parallel workers P (0 = all CPUs, 1 = sequential)")
		budget     = flag.Int64("memory", 0, "memory budget in DPM entries, 8 bytes each (0 = unlimited)")
		kParam     = flag.Int("k", 0, "FastLSA grid divisions per dimension (0 = default 8)")
		baseCells  = flag.Int("base", 0, "FastLSA base-case buffer entries BM (0 = default 64Ki)")
		band       = flag.Int("band", 0, "banded alignment: band width (-1 = adaptive, 0 = off)")
		local      = flag.Bool("local", false, "Smith-Waterman local alignment instead of global")
		scoreOnly  = flag.Bool("score-only", false, "print only the optimal score (linear space)")
		width      = flag.Int("width", 60, "alignment columns per output block")
		showStats  = flag.Bool("stats", false, "print instrumentation counters")
		tracePath  = flag.String("trace", "", "write a Chrome trace_event JSON profile of the run to this file (open in chrome://tracing or Perfetto)")
	)
	flag.Parse()
	if err := run(*matrixName, *alphaName, *algoName, *modeName, *gapPen, *open, *extend,
		*workers, *budget, *kParam, *baseCells, *band, *local, *scoreOnly, *width, *showStats, *tracePath, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "fastlsa-align:", err)
		os.Exit(1)
	}
}

func run(matrixName, alphaName, algoName, modeName string, gapPen, open, extend, workers int,
	budget int64, kParam, baseCells, band int, local, scoreOnly bool, width int, showStats bool,
	tracePath string, args []string) error {

	matrix, err := fastlsa.MatrixByName(matrixName)
	if err != nil {
		return err
	}
	mode, err := fastlsa.ParseMode(modeName)
	if err != nil {
		return err
	}
	alphabet := matrix.Alphabet
	if alphaName != "" {
		if alphabet, err = fastlsa.ParseAlphabet(alphaName); err != nil {
			return err
		}
	}
	algo, err := fastlsa.ParseAlgorithm(algoName)
	if err != nil {
		return err
	}
	gap := fastlsa.Linear(gapPen)
	if open != 0 {
		gap = fastlsa.Affine(open, extend)
	}

	a, b, err := loadPair(args, alphabet)
	if err != nil {
		return err
	}

	var counters fastlsa.Counters
	opt := fastlsa.Options{
		Matrix:       matrix,
		Gap:          gap,
		Mode:         mode,
		Algorithm:    algo,
		MemoryBudget: budget,
		Workers:      workers,
		K:            kParam,
		BaseCells:    baseCells,
		Counters:     &counters,
	}
	var tr *fastlsa.Trace
	if tracePath != "" {
		tr = fastlsa.NewTrace(0)
		tr.SetLabel(fmt.Sprintf("fastlsa-align %s x %s", a.ID, b.ID))
		opt.Trace = tr
	}

	switch {
	case band != 0:
		al, err := fastlsa.AlignBanded(a, b, opt, band)
		if err != nil {
			return err
		}
		if err := al.Fprint(os.Stdout, fastlsa.FormatOptions{Width: width, Matrix: matrix, ShowRuler: true}); err != nil {
			return err
		}
		fmt.Printf("cigar: %s (band=%d)\n", al.Path.CIGAR(), band)
	case scoreOnly:
		score, err := fastlsa.Score(a, b, opt)
		if err != nil {
			return err
		}
		fmt.Println(score)
	case local:
		loc, err := fastlsa.AlignLocal(a, b, opt)
		if err != nil {
			return err
		}
		if loc.Score == 0 {
			fmt.Println("no positive-scoring local alignment")
			break
		}
		fmt.Printf("local alignment: %s[%d:%d] x %s[%d:%d] score=%d\n",
			a.ID, loc.StartA, loc.EndA, b.ID, loc.StartB, loc.EndB, loc.Score)
		sub := &fastlsa.Alignment{
			A:     a.Slice(loc.StartA, loc.EndA),
			B:     b.Slice(loc.StartB, loc.EndB),
			Path:  loc.Path,
			Score: loc.Score,
		}
		if err := sub.Fprint(os.Stdout, fastlsa.FormatOptions{Width: width, Matrix: matrix, ShowRuler: true}); err != nil {
			return err
		}
	default:
		var route fastlsa.RouteInfo
		opt.Route = &route
		al, err := fastlsa.Align(a, b, opt)
		if err != nil {
			return err
		}
		if err := al.Fprint(os.Stdout, fastlsa.FormatOptions{Width: width, Matrix: matrix, ShowRuler: true}); err != nil {
			return err
		}
		fmt.Printf("cigar: %s\n", al.Path.CIGAR())
		if showStats && route.Backend != "" {
			fmt.Printf("backend: %s (%s)\n", route.Backend, route.Reason)
		}
	}

	if showStats {
		fmt.Printf("stats: %s\n", counters.Snapshot())
	}
	if tr != nil {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		werr := tr.WriteChrome(f)
		cerr := f.Close()
		if werr != nil {
			return fmt.Errorf("writing trace: %w", werr)
		}
		if cerr != nil {
			return cerr
		}
		fmt.Fprintf(os.Stderr, "trace: %d spans written to %s\n", tr.Len(), tracePath)
	}
	return nil
}

func loadPair(args []string, alphabet *fastlsa.Alphabet) (*fastlsa.Sequence, *fastlsa.Sequence, error) {
	switch len(args) {
	case 1:
		f, err := os.Open(args[0])
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		recs, err := fastlsa.ReadFASTA(f, alphabet)
		if err != nil {
			return nil, nil, err
		}
		if len(recs) < 2 {
			return nil, nil, fmt.Errorf("%s holds %d record(s); need two", args[0], len(recs))
		}
		return recs[0], recs[1], nil
	case 2:
		var out [2]*fastlsa.Sequence
		for i, path := range args {
			f, err := os.Open(path)
			if err != nil {
				return nil, nil, err
			}
			recs, err := fastlsa.ReadFASTA(f, alphabet)
			f.Close()
			if err != nil {
				return nil, nil, err
			}
			out[i] = recs[0]
		}
		return out[0], out[1], nil
	default:
		return nil, nil, fmt.Errorf("want one FASTA file with two records, or two files (got %d args)", len(args))
	}
}
