package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"fastlsa"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadPairSingleFile(t *testing.T) {
	p := writeTemp(t, "pair.fa", ">x\nACGT\n>y\nTTTT\n")
	a, b, err := loadPair([]string{p}, fastlsa.DNA)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "x" || b.ID != "y" || a.String() != "ACGT" || b.String() != "TTTT" {
		t.Fatalf("loaded %v / %v", a, b)
	}
}

func TestLoadPairTwoFiles(t *testing.T) {
	p1 := writeTemp(t, "a.fa", ">a\nACGT\n")
	p2 := writeTemp(t, "b.fa", ">b\nGGCC\n")
	a, b, err := loadPair([]string{p1, p2}, fastlsa.DNA)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "a" || b.ID != "b" {
		t.Fatalf("loaded %s / %s", a.ID, b.ID)
	}
}

func TestLoadPairErrors(t *testing.T) {
	if _, _, err := loadPair(nil, fastlsa.DNA); err == nil {
		t.Fatal("no args must fail")
	}
	if _, _, err := loadPair([]string{"x", "y", "z"}, fastlsa.DNA); err == nil {
		t.Fatal("three args must fail")
	}
	single := writeTemp(t, "one.fa", ">only\nACGT\n")
	if _, _, err := loadPair([]string{single}, fastlsa.DNA); err == nil {
		t.Fatal("single-record file must fail")
	}
	if _, _, err := loadPair([]string{"/nonexistent/file.fa"}, fastlsa.DNA); err == nil {
		t.Fatal("missing file must fail")
	}
}

// TestRunEndToEnd drives the full command path (flags already parsed) for
// the main configurations.
func TestRunEndToEnd(t *testing.T) {
	pair := writeTemp(t, "pair.fa", ">x\nACGTACGTACGTACGT\n>y\nACGTTCGTACGAACGT\n")
	cases := []struct {
		name              string
		algo, mode        string
		gap, open, extend int
		local, scoreOnly  bool
	}{
		{"fastlsa", "fastlsa", "global", -4, 0, 0, false, false},
		{"fm", "fm", "global", -4, 0, 0, false, false},
		{"hirschberg", "hirschberg", "global", -4, 0, 0, false, false},
		{"compact", "compact", "global", -4, 0, 0, false, false},
		{"affine", "auto", "global", -4, -6, -1, false, false},
		{"overlap", "auto", "overlap", -4, 0, 0, false, false},
		{"local", "auto", "global", -4, 0, 0, true, false},
		{"score-only", "auto", "global", -4, 0, 0, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run("dna", "", tc.algo, tc.mode, tc.gap, tc.open, tc.extend,
				1, 0, 0, 0, 0, tc.local, tc.scoreOnly, 60, true, "", []string{pair})
			if err != nil {
				t.Fatalf("run failed: %v", err)
			}
		})
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	pair := writeTemp(t, "pair.fa", ">x\nACGT\n>y\nTTTT\n")
	if err := run("no-such-matrix", "", "auto", "global", -4, 0, 0, 1, 0, 0, 0, 0, false, false, 60, false, "", []string{pair}); err == nil {
		t.Fatal("unknown matrix must fail")
	}
	if err := run("dna", "", "warp", "global", -4, 0, 0, 1, 0, 0, 0, 0, false, false, 60, false, "", []string{pair}); err == nil {
		t.Fatal("unknown algorithm must fail")
	}
	if err := run("dna", "", "auto", "diagonal", -4, 0, 0, 1, 0, 0, 0, 0, false, false, 60, false, "", []string{pair}); err == nil {
		t.Fatal("unknown mode must fail")
	}
	if err := run("dna", "klingon", "auto", "global", -4, 0, 0, 1, 0, 0, 0, 0, false, false, 60, false, "", []string{pair}); err == nil {
		t.Fatal("unknown alphabet must fail")
	}
	if err := run("dna", "", "auto", "global", 4, 0, 0, 1, 0, 0, 0, 0, false, false, 60, false, "", []string{pair}); err == nil {
		t.Fatal("positive gap must fail")
	}
	// Banded run succeeds end to end.
	if err := run("dna", "", "auto", "global", -4, 0, 0, 1, 0, 0, 0, -1, false, false, 60, false, "", []string{pair}); err != nil {
		t.Fatalf("adaptive banded run failed: %v", err)
	}
}

// TestRunWritesTrace checks -trace produces Chrome trace_event JSON that
// parses and carries solver spans.
func TestRunWritesTrace(t *testing.T) {
	pair := writeTemp(t, "pair.fa", ">x\nACGTACGTACGTACGT\n>y\nACGTTCGTACGAACGT\n")
	out := filepath.Join(t.TempDir(), "trace.json")
	if err := run("dna", "", "auto", "global", -4, 0, 0, 1, 0, 0, 0, 0, false, false, 60, false, out, []string{pair}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var traceback bool
	for _, ev := range tr.TraceEvents {
		if ev.Name == "traceback" && ev.Ph == "X" {
			traceback = true
		}
	}
	if !traceback {
		t.Fatalf("trace has no traceback span; %d events", len(tr.TraceEvents))
	}
}
