// Command fastlsa-seqgen generates synthetic benchmark sequences: either a
// single random sequence or a homologous pair derived through the
// point-mutation/indel channel (the Table 3 workload generator of this
// reproduction; see DESIGN.md §4). Output is FASTA on stdout.
//
// Examples:
//
//	fastlsa-seqgen -n 10000 -alphabet dna -seed 7 > ref.fa
//	fastlsa-seqgen -n 50000 -pair -sub 0.1 -ins 0.02 -del 0.02 > pair.fa
package main

import (
	"flag"
	"fmt"
	"os"

	"fastlsa"
)

func main() {
	var (
		n         = flag.Int("n", 1000, "reference sequence length")
		alphaName = flag.String("alphabet", "dna", "alphabet: dna or protein")
		seed      = flag.Int64("seed", 1, "random seed (deterministic output)")
		pair      = flag.Bool("pair", false, "emit a homologous pair instead of one sequence")
		sub       = flag.Float64("sub", 0.15, "pair: per-residue substitution rate")
		ins       = flag.Float64("ins", 0.02, "pair: per-position insertion rate")
		del       = flag.Float64("del", 0.02, "pair: per-residue deletion rate")
		indelRun  = flag.Int("indel-run", 8, "pair: maximum indel run length")
		indelExt  = flag.Float64("indel-ext", 0.5, "pair: indel run extension probability")
		width     = flag.Int("width", 70, "FASTA line width")
		id        = flag.String("id", "seq", "sequence identifier prefix")
	)
	flag.Parse()

	cfg := genConfig{
		n: *n, alphaName: *alphaName, seed: *seed, pair: *pair,
		sub: *sub, ins: *ins, del: *del, indelRun: *indelRun, indelExt: *indelExt,
		id: *id,
	}
	seqs, err := generate(cfg)
	if err != nil {
		fatal(err)
	}
	if err := fastlsa.WriteFASTA(os.Stdout, *width, seqs...); err != nil {
		fatal(err)
	}
}

// genConfig captures the generator flags in testable form.
type genConfig struct {
	n             int
	alphaName     string
	seed          int64
	pair          bool
	sub, ins, del float64
	indelRun      int
	indelExt      float64
	id            string
}

// generate produces the requested sequence set.
func generate(cfg genConfig) ([]*fastlsa.Sequence, error) {
	alphabet, err := fastlsa.ParseAlphabet(cfg.alphaName)
	if err != nil {
		return nil, err
	}
	if cfg.n <= 0 {
		return nil, fmt.Errorf("length %d must be positive", cfg.n)
	}
	if !cfg.pair {
		return []*fastlsa.Sequence{fastlsa.RandomSequence(cfg.id, cfg.n, alphabet, cfg.seed)}, nil
	}
	model := fastlsa.MutationModel{
		SubstitutionRate: cfg.sub,
		InsertionRate:    cfg.ins,
		DeletionRate:     cfg.del,
		MaxIndelRun:      cfg.indelRun,
		IndelExtend:      cfg.indelExt,
	}
	a, b, err := fastlsa.HomologousPair(cfg.n, alphabet, model, cfg.seed)
	if err != nil {
		return nil, err
	}
	a.ID = cfg.id + "_ref"
	b.ID = cfg.id + "_hom"
	return []*fastlsa.Sequence{a, b}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fastlsa-seqgen:", err)
	os.Exit(1)
}
