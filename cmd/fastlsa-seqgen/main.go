// Command fastlsa-seqgen generates synthetic benchmark sequences: either a
// single random sequence or a homologous pair derived through the
// point-mutation/indel channel (the Table 3 workload generator of this
// reproduction; see DESIGN.md §4). Output is FASTA on stdout.
//
// Examples:
//
//	fastlsa-seqgen -n 10000 -alphabet dna -seed 7 > ref.fa
//	fastlsa-seqgen -n 50000 -pair -sub 0.1 -ins 0.02 -del 0.02 > pair.fa
//	fastlsa-seqgen -n 300 -corpus 2000 -homologs 5 -seed 7 > corpus.fa
//
// Corpus mode (-corpus N) emits a search benchmark database: N background
// sequences plus -homologs mutated copies of a reference query planted at
// evenly spaced positions (IDs ending in "_hom"). The query itself is NOT
// written; regenerate it with the same -n/-alphabet/-seed and no -corpus,
// which makes corpus and query reproducible independently.
package main

import (
	"flag"
	"fmt"
	"os"

	"fastlsa"
)

func main() {
	var (
		n         = flag.Int("n", 1000, "reference sequence length")
		alphaName = flag.String("alphabet", "dna", "alphabet: dna or protein")
		seed      = flag.Int64("seed", 1, "random seed (deterministic output)")
		pair      = flag.Bool("pair", false, "emit a homologous pair instead of one sequence")
		sub       = flag.Float64("sub", 0.15, "pair: per-residue substitution rate")
		ins       = flag.Float64("ins", 0.02, "pair: per-position insertion rate")
		del       = flag.Float64("del", 0.02, "pair: per-residue deletion rate")
		indelRun  = flag.Int("indel-run", 8, "pair: maximum indel run length")
		indelExt  = flag.Float64("indel-ext", 0.5, "pair: indel run extension probability")
		width     = flag.Int("width", 70, "FASTA line width")
		id        = flag.String("id", "seq", "sequence identifier prefix")
		corpus    = flag.Int("corpus", 0, "emit a search corpus of this many sequences (0 = disabled)")
		homologs  = flag.Int("homologs", 0, "corpus: planted homologs of the seed query")
	)
	flag.Parse()

	cfg := genConfig{
		n: *n, alphaName: *alphaName, seed: *seed, pair: *pair,
		sub: *sub, ins: *ins, del: *del, indelRun: *indelRun, indelExt: *indelExt,
		id: *id, corpus: *corpus, homologs: *homologs,
	}
	seqs, err := generate(cfg)
	if err != nil {
		fatal(err)
	}
	if err := fastlsa.WriteFASTA(os.Stdout, *width, seqs...); err != nil {
		fatal(err)
	}
}

// genConfig captures the generator flags in testable form.
type genConfig struct {
	n             int
	alphaName     string
	seed          int64
	pair          bool
	sub, ins, del float64
	indelRun      int
	indelExt      float64
	id            string
	corpus        int
	homologs      int
}

// generate produces the requested sequence set.
func generate(cfg genConfig) ([]*fastlsa.Sequence, error) {
	alphabet, err := fastlsa.ParseAlphabet(cfg.alphaName)
	if err != nil {
		return nil, err
	}
	if cfg.n <= 0 {
		return nil, fmt.Errorf("length %d must be positive", cfg.n)
	}
	model := fastlsa.MutationModel{
		SubstitutionRate: cfg.sub,
		InsertionRate:    cfg.ins,
		DeletionRate:     cfg.del,
		MaxIndelRun:      cfg.indelRun,
		IndelExtend:      cfg.indelExt,
	}
	if cfg.corpus > 0 {
		return generateCorpus(cfg, alphabet, model)
	}
	if !cfg.pair {
		return []*fastlsa.Sequence{fastlsa.RandomSequence(cfg.id, cfg.n, alphabet, cfg.seed)}, nil
	}
	a, b, err := fastlsa.HomologousPair(cfg.n, alphabet, model, cfg.seed)
	if err != nil {
		return nil, err
	}
	a.ID = cfg.id + "_ref"
	b.ID = cfg.id + "_hom"
	return []*fastlsa.Sequence{a, b}, nil
}

// generateCorpus emits cfg.corpus sequences: background entries seeded
// per-index (so any prefix of the corpus is stable as it grows) with
// cfg.homologs mutated copies of the seed query planted at evenly spaced
// positions. The reference query uses the bare cfg.seed, identical to what a
// plain `fastlsa-seqgen -n ... -seed ...` run would emit.
func generateCorpus(cfg genConfig, alphabet *fastlsa.Alphabet, model fastlsa.MutationModel) ([]*fastlsa.Sequence, error) {
	if cfg.homologs < 0 || cfg.homologs > cfg.corpus {
		return nil, fmt.Errorf("homologs %d must be in [0, %d]", cfg.homologs, cfg.corpus)
	}
	ref := fastlsa.RandomSequence(cfg.id, cfg.n, alphabet, cfg.seed)
	planted := make(map[int]bool, cfg.homologs)
	if cfg.homologs > 0 {
		stride := cfg.corpus / cfg.homologs
		for h := 0; h < cfg.homologs; h++ {
			planted[h*stride+stride/2] = true
		}
	}
	seqs := make([]*fastlsa.Sequence, 0, cfg.corpus)
	for i := 0; i < cfg.corpus; i++ {
		id := fmt.Sprintf("%s_%04d", cfg.id, i)
		if planted[i] {
			hom, err := model.Mutate(id+"_hom", ref, cfg.seed+int64(i)+1)
			if err != nil {
				return nil, err
			}
			seqs = append(seqs, hom)
			continue
		}
		// Offset background seeds past the homolog range so no background
		// entry shares a stream with a mutation channel.
		seqs = append(seqs, fastlsa.RandomSequence(id, cfg.n, alphabet, cfg.seed+int64(cfg.corpus)+int64(i)+1))
	}
	return seqs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fastlsa-seqgen:", err)
	os.Exit(1)
}
