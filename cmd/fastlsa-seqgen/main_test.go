package main

import (
	"testing"

	"fastlsa"
)

func TestGenerateSingle(t *testing.T) {
	seqs, err := generate(genConfig{n: 100, alphaName: "dna", seed: 3, id: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || seqs[0].Len() != 100 || seqs[0].ID != "x" {
		t.Fatalf("got %v", seqs)
	}
	// Deterministic per seed.
	again, err := generate(genConfig{n: 100, alphaName: "dna", seed: 3, id: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if seqs[0].String() != again[0].String() {
		t.Fatal("generation must be deterministic")
	}
}

func TestGeneratePair(t *testing.T) {
	seqs, err := generate(genConfig{
		n: 200, alphaName: "protein", seed: 5, pair: true,
		sub: 0.2, ins: 0.02, del: 0.02, indelRun: 4, indelExt: 0.3, id: "p",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0].ID != "p_ref" || seqs[1].ID != "p_hom" {
		t.Fatalf("got %d records: %v", len(seqs), seqs)
	}
	if seqs[0].Alphabet != fastlsa.Protein {
		t.Fatal("wrong alphabet")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := generate(genConfig{n: 0, alphaName: "dna"}); err == nil {
		t.Fatal("zero length must fail")
	}
	if _, err := generate(genConfig{n: 10, alphaName: "klingon"}); err == nil {
		t.Fatal("unknown alphabet must fail")
	}
	if _, err := generate(genConfig{n: 10, alphaName: "dna", pair: true, sub: 1.5}); err == nil {
		t.Fatal("invalid rate must fail")
	}
}
