package main

import (
	"testing"

	"fastlsa"
)

func TestGenerateSingle(t *testing.T) {
	seqs, err := generate(genConfig{n: 100, alphaName: "dna", seed: 3, id: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || seqs[0].Len() != 100 || seqs[0].ID != "x" {
		t.Fatalf("got %v", seqs)
	}
	// Deterministic per seed.
	again, err := generate(genConfig{n: 100, alphaName: "dna", seed: 3, id: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if seqs[0].String() != again[0].String() {
		t.Fatal("generation must be deterministic")
	}
}

func TestGeneratePair(t *testing.T) {
	seqs, err := generate(genConfig{
		n: 200, alphaName: "protein", seed: 5, pair: true,
		sub: 0.2, ins: 0.02, del: 0.02, indelRun: 4, indelExt: 0.3, id: "p",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0].ID != "p_ref" || seqs[1].ID != "p_hom" {
		t.Fatalf("got %d records: %v", len(seqs), seqs)
	}
	if seqs[0].Alphabet != fastlsa.Protein {
		t.Fatal("wrong alphabet")
	}
}

func TestGenerateCorpus(t *testing.T) {
	cfg := genConfig{
		n: 150, alphaName: "dna", seed: 7, id: "c",
		sub: 0.05, ins: 0.01, del: 0.01, indelRun: 4, indelExt: 0.3,
		corpus: 40, homologs: 4,
	}
	seqs, err := generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 40 {
		t.Fatalf("corpus size %d, want 40", len(seqs))
	}
	homs := 0
	for _, s := range seqs {
		if s.ID[len(s.ID)-4:] == "_hom" {
			homs++
		}
	}
	if homs != 4 {
		t.Fatalf("%d planted homologs, want 4", homs)
	}
	// The query is regenerable independently: a plain single-sequence run
	// with the same n/alphabet/seed emits the reference the homologs mutate.
	query, err := generate(genConfig{n: 150, alphaName: "dna", seed: 7, id: "c"})
	if err != nil {
		t.Fatal(err)
	}
	again, err := generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seqs {
		if seqs[i].String() != again[i].String() || seqs[i].ID != again[i].ID {
			t.Fatalf("corpus entry %d not deterministic", i)
		}
	}
	// Homologs must actually resemble the query: identical length scale and
	// shared q-grams well above background.
	ix, err := fastlsa.BuildIndex(seqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	cands, _, err := ix.Candidates(query[0], fastlsa.DNASimple, fastlsa.Linear(-12), 0)
	if err != nil {
		t.Fatal(err)
	}
	shared := make(map[int]int, len(cands))
	for _, c := range cands {
		shared[c.Entry] = c.Shared
	}
	for i, s := range seqs {
		if s.ID[len(s.ID)-4:] == "_hom" && shared[i] < 20 {
			t.Fatalf("homolog %s shares only %d grams with the query", s.ID, shared[i])
		}
	}
}

func TestGenerateCorpusErrors(t *testing.T) {
	if _, err := generate(genConfig{n: 10, alphaName: "dna", corpus: 5, homologs: 9}); err == nil {
		t.Fatal("homologs > corpus must fail")
	}
	if _, err := generate(genConfig{n: 10, alphaName: "dna", corpus: 5, homologs: -1}); err == nil {
		t.Fatal("negative homologs must fail")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := generate(genConfig{n: 0, alphaName: "dna"}); err == nil {
		t.Fatal("zero length must fail")
	}
	if _, err := generate(genConfig{n: 10, alphaName: "klingon"}); err == nil {
		t.Fatal("unknown alphabet must fail")
	}
	if _, err := generate(genConfig{n: 10, alphaName: "dna", pair: true, sub: 1.5}); err == nil {
		t.Fatal("invalid rate must fail")
	}
}
