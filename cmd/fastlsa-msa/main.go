// Command fastlsa-msa builds a progressive multiple sequence alignment of
// the records in a FASTA file: FastLSA pairwise distances, UPGMA guide tree,
// sum-of-pairs profile merging.
//
// Usage:
//
//	fastlsa-msa [flags] family.fasta
//
// Example:
//
//	fastlsa-seqgen -n 500 -pair -seed 1 > f.fa
//	fastlsa-seqgen -n 500 -pair -seed 2 >> f.fa
//	fastlsa-msa -matrix dna -gap -6 f.fa
package main

import (
	"flag"
	"fmt"
	"os"

	"fastlsa"
)

func main() {
	var (
		matrixName = flag.String("matrix", "blosum62", "scoring matrix: table1, mdm78, blosum62, dna, dna-strict, dna-iupac")
		alphaName  = flag.String("alphabet", "", "residue alphabet (default: the matrix's alphabet)")
		gapPen     = flag.Int("gap", -8, "linear gap penalty per gapped position (negative)")
		workers    = flag.Int("workers", 0, "parallel workers for the pairwise stage (0 = all CPUs)")
		width      = flag.Int("width", 60, "alignment columns per output block")
		showTree   = flag.Bool("tree", false, "print the UPGMA guide tree")
	)
	flag.Parse()
	if err := run(*matrixName, *alphaName, *gapPen, *workers, *width, *showTree, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "fastlsa-msa:", err)
		os.Exit(1)
	}
}

func run(matrixName, alphaName string, gapPen, workers, width int, showTree bool, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("want exactly one FASTA file with two or more records")
	}
	matrix, err := fastlsa.MatrixByName(matrixName)
	if err != nil {
		return err
	}
	alphabet := matrix.Alphabet
	if alphaName != "" {
		if alphabet, err = fastlsa.ParseAlphabet(alphaName); err != nil {
			return err
		}
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	seqs, err := fastlsa.ReadFASTA(f, alphabet)
	if err != nil {
		return err
	}
	if len(seqs) < 2 {
		return fmt.Errorf("%s holds %d record(s); need at least two", args[0], len(seqs))
	}

	res, err := fastlsa.AlignMSA(seqs, fastlsa.Options{
		Matrix:  matrix,
		Gap:     fastlsa.Linear(gapPen),
		Workers: workers,
	})
	if err != nil {
		return err
	}
	if showTree {
		fmt.Printf("guide tree: %s\n\n", res.Tree)
	}
	return res.Fprint(os.Stdout, width)
}
