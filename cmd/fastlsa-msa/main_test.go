package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunMSA(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "family.fa")
	content := ">a\nACGTACGTACGTACGTACGT\n>b\nACGTTCGTACGTACGAACGT\n>c\nACGTACGAACGTACGTACGT\n"
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("dna", "", -6, 1, 60, true, []string{p}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMSAErrors(t *testing.T) {
	if err := run("dna", "", -6, 1, 60, false, nil); err == nil {
		t.Fatal("missing file must fail")
	}
	if err := run("nope", "", -6, 1, 60, false, []string{"x"}); err == nil {
		t.Fatal("unknown matrix must fail")
	}
	dir := t.TempDir()
	p := filepath.Join(dir, "one.fa")
	if err := os.WriteFile(p, []byte(">a\nACGT\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("dna", "", -6, 1, 60, false, []string{p}); err == nil {
		t.Fatal("single record must fail")
	}
	if err := run("dna", "klingon", -6, 1, 60, false, []string{p}); err == nil {
		t.Fatal("unknown alphabet must fail")
	}
}
