package main

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"fastlsa/internal/seq"
)

// backendPair produces a homologous DNA pair at the given substitution rate,
// serialised for a JSON request body.
func backendPair(t *testing.T, n int, sub float64, salt int64) (string, string) {
	t.Helper()
	model := seq.MutationModel{
		SubstitutionRate: sub,
		InsertionRate:    sub / 10,
		DeletionRate:     sub / 10,
		MaxIndelRun:      4,
		IndelExtend:      0.5,
	}
	a, b, err := seq.HomologousPair(n, seq.DNA, model, salt)
	if err != nil {
		t.Fatal(err)
	}
	return a.String(), b.String()
}

// TestAlignBackendRouting drives POST /v1/align through the auto router and
// checks the response reports which backend served it: a high-identity DNA
// pair lands on the WFA kernel, a divergent one stays on FastLSA, and an
// explicit algorithm override is honoured as-is.
func TestAlignBackendRouting(t *testing.T) {
	srv := testServer(t)

	similarA, similarB := backendPair(t, 1500, 0.02, 41)
	resp, out := postJSON(t, srv.URL+"/v1/align",
		fmt.Sprintf(`{"a":%q,"b":%q,"matrix":"dna","gap":{"extend":-4}}`, similarA, similarB))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if out["backend"] != "wfa" || out["routeReason"] != "low-divergence" {
		t.Fatalf("high-identity pair served by %v (%v), want wfa (low-divergence)",
			out["backend"], out["routeReason"])
	}

	divergentA, divergentB := backendPair(t, 1500, 0.30, 42)
	resp, out = postJSON(t, srv.URL+"/v1/align",
		fmt.Sprintf(`{"a":%q,"b":%q,"matrix":"dna","gap":{"extend":-4}}`, divergentA, divergentB))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if out["backend"] != "fastlsa" || out["routeReason"] != "high-divergence" {
		t.Fatalf("divergent pair served by %v (%v), want fastlsa (high-divergence)",
			out["backend"], out["routeReason"])
	}

	resp, out = postJSON(t, srv.URL+"/v1/align",
		fmt.Sprintf(`{"a":%q,"b":%q,"matrix":"dna","gap":{"extend":-4},"algorithm":"hirschberg"}`,
			similarA, similarB))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if out["backend"] != "hirschberg" || out["routeReason"] != "explicit" {
		t.Fatalf("forced algorithm served by %v (%v), want hirschberg (explicit)",
			out["backend"], out["routeReason"])
	}

	// Explicit WFA against a uniform matrix works end to end.
	resp, out = postJSON(t, srv.URL+"/v1/align",
		fmt.Sprintf(`{"a":%q,"b":%q,"matrix":"dna","gap":{"extend":-4},"algorithm":"wfa"}`,
			divergentA, divergentB))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explicit wfa status %d: %v", resp.StatusCode, out)
	}
	if out["backend"] != "wfa" || out["routeReason"] != "explicit" {
		t.Fatalf("explicit wfa served by %v (%v)", out["backend"], out["routeReason"])
	}

	// Explicit WFA with an incompatible (non-uniform) matrix is a 422, the
	// same class as other invalid-input rejections.
	resp, out = postJSON(t, srv.URL+"/v1/align",
		`{"a":"TDVLKAD","b":"TLDKLLKD","matrix":"blosum62","gap":{"extend":-10},"algorithm":"wfa"}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("wfa+blosum62 status %d (want 422): %v", resp.StatusCode, out)
	}

	// The routing counter is on /metrics with backend and reason labels.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, want := range []string{
		`fastlsa_backend_total{backend="wfa",reason="low-divergence"} 1`,
		`fastlsa_backend_total{backend="fastlsa",reason="high-divergence"} 1`,
		`fastlsa_backend_total{backend="hirschberg",reason="explicit"} 1`,
		`fastlsa_backend_total{backend="wfa",reason="explicit"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestJobBackendRouting checks async job views inherit the backend fields —
// jobs reuse the same alignTask, so the result body must carry them too.
func TestJobBackendRouting(t *testing.T) {
	srv := testServer(t)
	a, b := backendPair(t, 1500, 0.02, 43)
	resp, out := postJSON(t, srv.URL+"/v1/jobs",
		fmt.Sprintf(`{"type":"align","align":{"a":%q,"b":%q,"matrix":"dna","gap":{"extend":-4}}}`, a, b))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", resp.StatusCode, out)
	}
	done := pollJob(t, srv.URL+"/v1/jobs/"+out["id"].(string), "succeeded", 5*time.Second)
	result, _ := done["result"].(map[string]any)
	if result == nil {
		t.Fatalf("no result: %v", done)
	}
	if result["backend"] != "wfa" || result["routeReason"] != "low-divergence" {
		t.Fatalf("job result served by %v (%v), want wfa (low-divergence)",
			result["backend"], result["routeReason"])
	}
}
