// Command fastlsa-server exposes the fastlsa library as a small JSON HTTP
// service, the deployment surface an adopting team typically wants.
//
// Endpoints:
//
//	GET    /healthz        liveness probe (200 for the process lifetime)
//	GET    /readyz         readiness probe (503 once shutdown drain begins)
//	GET    /v1/matrices    available scoring matrices
//	POST   /v1/align       pairwise alignment (global, ends-free, or local)
//	POST   /v1/msa         progressive multiple sequence alignment
//	POST   /v1/search      homology search with optional E-value statistics
//	GET    /v1/search      streaming corpus search (NDJSON; needs -corpus)
//	POST   /v1/jobs        submit an async job (align, msa or search)
//	GET    /v1/jobs        list retained jobs, newest first
//	GET    /v1/jobs/{id}   poll one job (result included once succeeded)
//	DELETE /v1/jobs/{id}   cancel a job
//	POST   /v1/batch       many pairwise alignments, admitted atomically
//	GET    /v1/stats       engine counters (queue, workers, outcomes)
//	GET    /metrics        Prometheus text-format metrics
//	GET    /v1/slo               SLO burn-rate verdicts (5m/1h windows)
//	GET    /v1/jobs/{id}/events  one job's flight-recorder timeline
//	GET    /v1/debug/incidents   recent 5xx responses and failed jobs
//
// All alignment work — synchronous or async — runs through a bounded job
// engine: a saturated queue rejects with 503 rather than queueing without
// bound, and cancelled or abandoned requests stop consuming CPU promptly.
// Overload 503s carry a Retry-After header and retryAfterMs JSON hint, and a
// breaker sheds synchronous requests while the p95 queue wait is over
// -breaker-wait (async submissions still queue). Jobs and batches accept a
// "retry" policy that re-runs attempts lost to transient faults. On
// SIGINT/SIGTERM /readyz starts failing, the server stops accepting work,
// drains in-flight jobs until the drain deadline, then cancels the remainder
// and exits.
//
// Durability: -data-dir enables the durable job journal — every async job is
// recorded in a CRC-framed append-only WAL (accepted with its full request,
// then started/retried/terminal), FastLSA alignments persist grid-cache
// checkpoints at block-row boundaries, and on restart non-terminal jobs are
// re-enqueued (resuming from their checkpoints) while /readyz reports
// {"phase":"recovering"}. An Idempotency-Key header on POST /v1/jobs makes
// submission retries land on the existing job, across crashes included.
// -journal-fsync picks the durability/latency trade. See docs/DURABILITY.md.
//
// Corpus search: -corpus loads a FASTA database at startup and builds a
// q-gram seed-filter index over it once (see docs/SEARCH.md). GET /v1/search
// (and POST bodies with no inline database) then search the corpus through
// the lossless filter → verify → reconstruct pipeline; GET and ?stream=1
// responses stream NDJSON hits as they are found. -search-rate arms
// per-client token-bucket rate limiting on /v1/search (429 + Retry-After).
//
// Resilience rehearsal: FASTLSA_FAULTS arms the fault-injection harness
// (internal/fault) at startup — e.g.
// FASTLSA_FAULTS="core.fillTile:panic:0.01" — see docs/RESILIENCE.md.
//
// Observability: every request is logged as one structured (JSON) record
// with an X-Request-ID that is honored when the client sent one, echoed in
// the response, and attached to the engine job it spawns. /metrics exposes
// per-route latency histograms, engine queue gauges, service-wide alignment
// counters, SLO burn-rate gauges, per-(backend, phase) CPU attribution and
// process runtime gauges. POST /v1/align?trace=1 (or "trace": true in the
// body) returns a Chrome trace_event JSON profile of the run. Every job
// carries a bounded flight recorder (GET /v1/jobs/{id}/events); recent 5xx
// responses and failed jobs land in the incident ring at
// /v1/debug/incidents. -slo-align-p99 and -slo-error-rate declare the
// objectives behind GET /v1/slo; -breaker-burn couples the overload breaker
// to the error-rate fast burn. -prof-labels (on by default) attaches pprof
// labels (job_id, backend, phase) to alignment work so CPU profiles
// attribute samples per solver phase; -prof-interval starts a continuous
// runtime-capture loop. -debug-addr serves net/http/pprof and expvar on a
// separate listener, so profiling stays off the public port. See
// docs/OBSERVABILITY.md.
//
// Example:
//
//	fastlsa-server -addr :8080 &
//	curl -s localhost:8080/v1/align -d '{
//	    "a": "TDVLKAD", "b": "TLDKLLKD",
//	    "matrix": "table1", "gap": {"extend": -10},
//	    "includeRows": true
//	}'
//	# -> {"score":82, "cigar":"1M1D1M1D3M1I1M", ...}
package main

import (
	"context"
	"errors"
	_ "expvar" // registers /debug/vars on the debug listener
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the debug listener
	"os"
	"os/signal"
	"syscall"
	"time"

	"fastlsa"
	"fastlsa/internal/fault"
	"fastlsa/internal/journal"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		maxLen     = flag.Int("max-len", 1_000_000, "maximum residues per sequence")
		maxBody    = flag.Int64("max-body", 64<<20, "maximum request body bytes")
		maxFamily  = flag.Int("max-family", 64, "maximum sequences per MSA request")
		workers    = flag.Int("workers", 0, "default parallel workers per request (0 = all CPUs)")
		timeoutSec = flag.Int("timeout", 300, "per-request timeout in seconds")
		engWorkers = flag.Int("engine-workers", 0, "job engine worker pool size (0 = all CPUs)")
		queueDepth = flag.Int("queue-depth", 0, "job queue bound; full queues reject with 503 (0 = 4x workers)")
		maxResults = flag.Int("max-results", 0, "retained jobs that keep their full result payload (0 = 64)")
		maxBatch   = flag.Int("max-batch", 64, "maximum pairs per batch request")
		brkWait    = flag.Duration("breaker-wait", 5*time.Second, "p95 queue wait that trips the overload breaker (negative disables)")
		brkCool    = flag.Duration("breaker-cooldown", 5*time.Second, "how long a tripped breaker sheds before re-measuring")
		drainSec   = flag.Int("drain", 30, "shutdown drain deadline in seconds")
		debugAddr  = flag.String("debug-addr", "", "listen address for pprof and expvar (empty = disabled)")
		quiet      = flag.Bool("quiet", false, "disable per-request access logs")

		sloAlignP99  = flag.Duration("slo-align-p99", time.Second, "align-p99 SLO latency threshold (99% of POST /v1/align under this; 0 disables)")
		sloErrRate   = flag.Float64("slo-error-rate", 0.001, "error-rate SLO: allowed fraction of 5xx responses (0 disables)")
		brkBurn      = flag.Float64("breaker-burn", 0, "error-rate fast-burn rate that also sheds synchronous requests (0 disables)")
		profLabels   = flag.Bool("prof-labels", true, "attach pprof labels (job_id, backend, phase) to alignment work")
		profInterval = flag.Duration("prof-interval", 0, "continuous runtime-capture sampling interval (0 disables)")

		dataDir      = flag.String("data-dir", "", "directory for the durable job journal; async jobs survive crashes and restarts (empty = in-memory only)")
		journalFsync = flag.String("journal-fsync", "interval", "journal fsync policy: always, interval or never")

		corpusPath  = flag.String("corpus", "", "FASTA corpus to index at startup for GET /v1/search")
		corpusAlpha = flag.String("corpus-alphabet", "dna", "corpus alphabet (dna or protein)")
		corpusQ     = flag.Int("corpus-q", 0, "q-gram length of the corpus index (0 = per-alphabet default)")
		searchRate  = flag.Float64("search-rate", 0, "per-client /v1/search requests per second (0 = unlimited)")
		searchBurst = flag.Int("search-burst", 10, "per-client /v1/search burst size")
	)
	flag.Parse()

	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}

	// Arm the fault-injection harness when FASTLSA_FAULTS is set, so chaos
	// rehearsals run against the real binary. Disarmed (the default) every
	// injection point is a zero-allocation no-op.
	if armed, err := fault.ArmFromEnv(os.Getenv); err != nil {
		log.Fatalf("%s: %v", fault.EnvSpec, err)
	} else if armed {
		log.Printf("fault injection armed: %s=%q (sites: %v)", fault.EnvSpec, fault.Armed(), fault.Sites())
	}

	var corpus *fastlsa.Corpus
	if *corpusPath != "" {
		alphabet, err := fastlsa.ParseAlphabet(*corpusAlpha)
		if err != nil {
			log.Fatalf("-corpus-alphabet: %v", err)
		}
		corpus, err = fastlsa.LoadCorpus(*corpusPath, alphabet, *corpusQ)
		if err != nil {
			log.Fatalf("-corpus: %v", err)
		}
		ix := corpus.Index
		log.Printf("corpus %s: %d sequences (%d residues), q=%d index with %d grams / %d postings (load %s, build %s)",
			*corpusPath, corpus.Len(), ix.Residues(), ix.Q(), ix.DistinctGrams(), ix.Postings(),
			corpus.LoadDur.Round(time.Millisecond), corpus.BuildDur.Round(time.Millisecond))
	}

	// Flag value 0 means "disable the objective"; the config encodes that as
	// a negative value so its zero value can keep selecting the default.
	alignSLO, errSLO := *sloAlignP99, *sloErrRate
	if alignSLO == 0 {
		alignSLO = -1
	}
	if errSLO == 0 {
		errSLO = -1
	}

	if !journal.ValidFsync(*journalFsync) {
		log.Fatalf("-journal-fsync: unknown policy %q (want always, interval or never)", *journalFsync)
	}

	timeout := time.Duration(*timeoutSec) * time.Second
	app, err := newServerDurable(serverConfig{
		MaxSequenceLen:     *maxLen,
		MaxBodyBytes:       *maxBody,
		MaxMSASequences:    *maxFamily,
		DefaultWorkers:     *workers,
		EngineWorkers:      *engWorkers,
		QueueDepth:         *queueDepth,
		MaxRetainedResults: *maxResults,
		MaxBatch:           *maxBatch,
		BreakerWait:        *brkWait,
		BreakerCooldown:    *brkCool,
		Logger:             logger,
		Corpus:             corpus,
		SearchRate:         *searchRate,
		SearchBurst:        *searchBurst,
		StreamTimeout:      timeout,
		SLOAlignP99:        alignSLO,
		SLOErrorRate:       errSLO,
		BreakerBurn:        *brkBurn,
		ProfLabels:         *profLabels,
		ProfInterval:       *profInterval,
		DataDir:            *dataDir,
		JournalFsync:       *journalFsync,
	})
	if err != nil {
		log.Fatalf("startup: %v", err)
	}
	// The TimeoutHandler buffers whole responses (it never exposes
	// http.Flusher), which would defeat per-hit flushing — streaming search
	// requests route around it and carry their deadline on the request
	// context instead (serverConfig.StreamTimeout).
	buffered := http.TimeoutHandler(app, timeout, `{"error":"request timed out"}`)
	root := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/search" && wantsStream(r) {
			app.ServeHTTP(w, r)
			return
		}
		buffered.ServeHTTP(w, r)
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           root,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("fastlsa-server listening on %s\n", *addr)

	// Profiling/introspection stays on its own listener: net/http/pprof and
	// expvar register on http.DefaultServeMux at import, so serving the
	// default mux exposes /debug/pprof/* and /debug/vars without putting
	// them on the public port.
	if *debugAddr != "" {
		go func() {
			log.Printf("debug listener (pprof, expvar) on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: fail /readyz first so load balancers stop routing
	// here (while /healthz stays 200 — the process is alive and draining),
	// then stop accepting connections, let in-flight requests and queued jobs
	// finish until the drain deadline, and cancel the rest.
	stop()
	app.beginDrain()
	drain := time.Duration(*drainSec) * time.Second
	log.Printf("shutting down (drain deadline %s)", drain)
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := app.shutdown(dctx); err != nil {
		log.Printf("engine shutdown: cancelled remaining jobs: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	log.Printf("bye")
}
