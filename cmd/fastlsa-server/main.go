// Command fastlsa-server exposes the fastlsa library as a small JSON HTTP
// service, the deployment surface an adopting team typically wants.
//
// Endpoints:
//
//	GET  /healthz       liveness probe
//	GET  /v1/matrices   available scoring matrices
//	POST /v1/align      pairwise alignment (global, ends-free, or local)
//	POST /v1/msa        progressive multiple sequence alignment
//	POST /v1/search     homology search with optional E-value statistics
//
// Example:
//
//	fastlsa-server -addr :8080 &
//	curl -s localhost:8080/v1/align -d '{
//	    "a": "TDVLKAD", "b": "TLDKLLKD",
//	    "matrix": "table1", "gap": {"extend": -10},
//	    "includeRows": true
//	}'
//	# -> {"score":82, "cigar":"1M1D1M1D3M1I1M", ...}
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		maxLen     = flag.Int("max-len", 1_000_000, "maximum residues per sequence")
		maxBody    = flag.Int64("max-body", 64<<20, "maximum request body bytes")
		maxFamily  = flag.Int("max-family", 64, "maximum sequences per MSA request")
		workers    = flag.Int("workers", 0, "default parallel workers per request (0 = all CPUs)")
		timeoutSec = flag.Int("timeout", 300, "per-request timeout in seconds")
	)
	flag.Parse()

	handler := newServer(serverConfig{
		MaxSequenceLen:  *maxLen,
		MaxBodyBytes:    *maxBody,
		MaxMSASequences: *maxFamily,
		DefaultWorkers:  *workers,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           http.TimeoutHandler(handler, time.Duration(*timeoutSec)*time.Second, `{"error":"request timed out"}`),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("fastlsa-server listening on %s\n", *addr)
	log.Fatal(srv.ListenAndServe())
}
