// Command fastlsa-server exposes the fastlsa library as a small JSON HTTP
// service, the deployment surface an adopting team typically wants.
//
// Endpoints:
//
//	GET    /healthz        liveness probe
//	GET    /v1/matrices    available scoring matrices
//	POST   /v1/align       pairwise alignment (global, ends-free, or local)
//	POST   /v1/msa         progressive multiple sequence alignment
//	POST   /v1/search      homology search with optional E-value statistics
//	POST   /v1/jobs        submit an async job (align, msa or search)
//	GET    /v1/jobs        list retained jobs, newest first
//	GET    /v1/jobs/{id}   poll one job (result included once succeeded)
//	DELETE /v1/jobs/{id}   cancel a job
//	POST   /v1/batch       many pairwise alignments, admitted atomically
//	GET    /v1/stats       engine counters (queue, workers, outcomes)
//
// All alignment work — synchronous or async — runs through a bounded job
// engine: a saturated queue rejects with 503 rather than queueing without
// bound, and cancelled or abandoned requests stop consuming CPU promptly.
// On SIGINT/SIGTERM the server stops accepting work, drains in-flight jobs
// until the drain deadline, then cancels the remainder and exits.
//
// Example:
//
//	fastlsa-server -addr :8080 &
//	curl -s localhost:8080/v1/align -d '{
//	    "a": "TDVLKAD", "b": "TLDKLLKD",
//	    "matrix": "table1", "gap": {"extend": -10},
//	    "includeRows": true
//	}'
//	# -> {"score":82, "cigar":"1M1D1M1D3M1I1M", ...}
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		maxLen     = flag.Int("max-len", 1_000_000, "maximum residues per sequence")
		maxBody    = flag.Int64("max-body", 64<<20, "maximum request body bytes")
		maxFamily  = flag.Int("max-family", 64, "maximum sequences per MSA request")
		workers    = flag.Int("workers", 0, "default parallel workers per request (0 = all CPUs)")
		timeoutSec = flag.Int("timeout", 300, "per-request timeout in seconds")
		engWorkers = flag.Int("engine-workers", 0, "job engine worker pool size (0 = all CPUs)")
		queueDepth = flag.Int("queue-depth", 0, "job queue bound; full queues reject with 503 (0 = 4x workers)")
		maxResults = flag.Int("max-results", 0, "retained jobs that keep their full result payload (0 = 64)")
		maxBatch   = flag.Int("max-batch", 64, "maximum pairs per batch request")
		drainSec   = flag.Int("drain", 30, "shutdown drain deadline in seconds")
	)
	flag.Parse()

	app := newServer(serverConfig{
		MaxSequenceLen:     *maxLen,
		MaxBodyBytes:       *maxBody,
		MaxMSASequences:    *maxFamily,
		DefaultWorkers:     *workers,
		EngineWorkers:      *engWorkers,
		QueueDepth:         *queueDepth,
		MaxRetainedResults: *maxResults,
		MaxBatch:           *maxBatch,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           http.TimeoutHandler(app, time.Duration(*timeoutSec)*time.Second, `{"error":"request timed out"}`),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("fastlsa-server listening on %s\n", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, let in-flight requests
	// and queued jobs finish until the drain deadline, then cancel the rest.
	stop()
	drain := time.Duration(*drainSec) * time.Second
	log.Printf("shutting down (drain deadline %s)", drain)
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := app.shutdown(dctx); err != nil {
		log.Printf("engine shutdown: cancelled remaining jobs: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	log.Printf("bye")
}
