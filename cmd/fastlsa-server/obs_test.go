package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// scrapeMetrics fetches /metrics and parses the Prometheus text exposition
// strictly: every sample must be preceded by a # TYPE line for its family,
// values must parse as floats, and histogram buckets must be cumulative.
// Samples are returned keyed by their full series name (name{labels}).
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	samples := make(map[string]float64)
	typed := make(map[string]string) // family -> type
	for ln, line := range strings.Split(string(body), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, parts[3])
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: sample without value: %q", ln+1, line)
		}
		series, valstr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valstr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valstr, err)
		}
		family := series
		if i := strings.IndexByte(family, '{'); i >= 0 {
			family = family[:i]
		}
		family = strings.TrimSuffix(family, "_bucket")
		family = strings.TrimSuffix(family, "_sum")
		family = strings.TrimSuffix(family, "_count")
		if _, ok := typed[family]; !ok {
			t.Fatalf("line %d: sample %q has no preceding # TYPE for family %q", ln+1, series, family)
		}
		if _, dup := samples[series]; dup {
			t.Fatalf("line %d: duplicate series %q", ln+1, series)
		}
		samples[series] = v
	}
	if len(samples) == 0 {
		t.Fatal("empty /metrics exposition")
	}
	return samples
}

const alignBody = `{"a": "TDVLKADTDVLKADTDVLKAD", "b": "TLDKLLKDTLDKLLKDTLDKLLKD", "matrix": "table1", "gap": {"extend": -10}}`

func TestMetricsExposition(t *testing.T) {
	srv := testServer(t)

	before := scrapeMetrics(t, srv.URL)
	for _, name := range []string{
		"fastlsa_engine_workers",
		"fastlsa_engine_queue_depth",
		"fastlsa_engine_jobs_submitted_total",
		"fastlsa_align_cells_total",
		"fastlsa_align_mesh_shrinks_total",
		"fastlsa_align_cells_per_second",
	} {
		if _, ok := before[name]; !ok {
			t.Errorf("missing series %q", name)
		}
	}

	resp, _ := postJSON(t, srv.URL+"/v1/align", alignBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("align: status %d", resp.StatusCode)
	}

	after := scrapeMetrics(t, srv.URL)
	if after["fastlsa_align_cells_total"] <= before["fastlsa_align_cells_total"] {
		t.Errorf("cells_total did not grow: before=%v after=%v",
			before["fastlsa_align_cells_total"], after["fastlsa_align_cells_total"])
	}
	reqSeries := `fastlsa_http_requests_total{route="POST /v1/align",method="POST",code="200"}`
	if after[reqSeries] != before[reqSeries]+1 {
		t.Errorf("%s: before=%v after=%v (want +1)", reqSeries, before[reqSeries], after[reqSeries])
	}
	latCount := `fastlsa_http_request_duration_seconds_count{route="POST /v1/align"}`
	if after[latCount] != before[latCount]+1 {
		t.Errorf("%s: before=%v after=%v (want +1)", latCount, before[latCount], after[latCount])
	}

	// Counters must be monotone across scrapes.
	for series, v := range before {
		if strings.Contains(series, "_total") || strings.HasSuffix(series, "_count") {
			if after[series] < v {
				t.Errorf("counter %s went backwards: %v -> %v", series, v, after[series])
			}
		}
	}

	// Histogram buckets are cumulative and capped by _count.
	bucketPrefix := `fastlsa_http_request_duration_seconds_bucket{route="POST /v1/align",le="`
	prev := 0.0
	var les []float64
	for series := range after {
		if strings.HasPrefix(series, bucketPrefix) {
			le := strings.TrimSuffix(strings.TrimPrefix(series, bucketPrefix), `"}`)
			if le == "+Inf" {
				continue
			}
			f, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("bad le %q: %v", le, err)
			}
			les = append(les, f)
		}
	}
	if len(les) == 0 {
		t.Fatal("no latency buckets exposed")
	}
	for i := range les {
		for j := i + 1; j < len(les); j++ {
			if les[j] < les[i] {
				les[i], les[j] = les[j], les[i]
			}
		}
	}
	for _, le := range les {
		v := after[bucketPrefix+strconv.FormatFloat(le, 'g', -1, 64)+`"}`]
		if v < prev {
			t.Errorf("bucket le=%v not cumulative: %v < %v", le, v, prev)
		}
		prev = v
	}
	if inf := after[bucketPrefix+`+Inf"}`]; inf != after[latCount] {
		t.Errorf("+Inf bucket %v != _count %v", inf, after[latCount])
	}
}

// TestStatsAccumulateAcrossConcurrentWork drives concurrent synchronous
// aligns plus a batch and checks that the service-wide /v1/stats alignment
// counters equal the sum of every response's cellsComputed — i.e. no work is
// lost or double-counted when many derived counters merge into the shared
// parent — and that the engine's batch counters saw the batch.
func TestStatsAccumulateAcrossConcurrentWork(t *testing.T) {
	// A deep queue so the concurrent singles and the atomically-admitted
	// batch never trip the 503 admission control this test is not about.
	srv := httptest.NewServer(newServer(serverConfig{DefaultWorkers: 1, QueueDepth: 64}))
	defer srv.Close()

	const singles = 6
	var (
		mu    sync.Mutex
		cells float64
	)
	var wg sync.WaitGroup
	for i := 0; i < singles; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/align", "application/json", strings.NewReader(alignBody))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var out map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("align: status %d: %v", resp.StatusCode, out)
				return
			}
			mu.Lock()
			cells += out["cellsComputed"].(float64)
			mu.Unlock()
		}()
	}

	pairs := make([]string, 4)
	for i := range pairs {
		pairs[i] = `{"a": "TDVLKAD", "b": "TLDKLLKD"}`
	}
	batchBody := fmt.Sprintf(`{"matrix": "table1", "gap": {"extend": -10}, "pairs": [%s]}`,
		strings.Join(pairs, ","))
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader(batchBody))
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		var out struct {
			Units []struct {
				Error  string `json:"error"`
				Result struct {
					Cells float64 `json:"cellsComputed"`
				} `json:"result"`
			} `json:"units"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Error(err)
			return
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("batch: status %d", resp.StatusCode)
			return
		}
		mu.Lock()
		defer mu.Unlock()
		for _, u := range out.Units {
			if u.Error != "" {
				t.Errorf("batch unit failed: %s", u.Error)
				return
			}
			cells += u.Result.Cells
		}
	}()
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	resp, stats := postJSONGet(t, srv.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	al := stats["alignment"].(map[string]any)
	if got := al["cells"].(float64); got != cells {
		t.Errorf("alignment.cells = %v, sum of responses = %v", got, cells)
	}
	if got := stats["batches"].(float64); got != 1 {
		t.Errorf("batches = %v, want 1", got)
	}
	if got := stats["batch_units"].(float64); got != float64(len(pairs)) {
		t.Errorf("batch_units = %v, want %d", got, len(pairs))
	}
	if got := stats["submitted"].(float64); got < singles+float64(len(pairs)) {
		t.Errorf("submitted = %v, want >= %d", got, singles+len(pairs))
	}

	// /metrics reads the same shared counters, so it must agree.
	m := scrapeMetrics(t, srv.URL)
	if got := m["fastlsa_align_cells_total"]; got != cells {
		t.Errorf("fastlsa_align_cells_total = %v, want %v", got, cells)
	}
	if got := m["fastlsa_engine_batch_units_total"]; got != float64(len(pairs)) {
		t.Errorf("fastlsa_engine_batch_units_total = %v, want %d", got, len(pairs))
	}
	if got := m[`fastlsa_batch_size_count`]; got != 1 {
		t.Errorf("fastlsa_batch_size_count = %v, want 1", got)
	}
}

func postJSONGet(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp, out
}

// chromeTrace is the subset of the Chrome trace_event JSON shape the tests
// validate.
type chromeTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Cat  string         `json:"cat"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func checkTrace(t *testing.T, raw json.RawMessage) {
	t.Helper()
	if len(raw) == 0 {
		t.Fatal("no trace in response")
	}
	var tr chromeTrace
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("trace does not parse as Chrome JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	names := make(map[string]int)
	for _, ev := range tr.TraceEvents {
		names[ev.Name]++
	}
	if names["general-case"]+names["base-case"] == 0 {
		t.Errorf("trace has no solver spans; names: %v", names)
	}
	if names["traceback"] == 0 {
		t.Errorf("trace has no traceback span; names: %v", names)
	}
}

func TestAlignTraceQueryParam(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Post(srv.URL+"/v1/align?trace=1", "application/json", strings.NewReader(alignBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("response missing X-Request-ID header")
	}
	var out struct {
		Score int64           `json:"score"`
		Trace json.RawMessage `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	checkTrace(t, out.Trace)

	// Without the flag the response must not carry a trace.
	resp2, plain := postJSON(t, srv.URL+"/v1/align", alignBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp2.StatusCode)
	}
	if _, ok := plain["trace"]; ok {
		t.Error("untraced align response carries a trace field")
	}
}

func TestJobTraceAndRequestID(t *testing.T) {
	srv := testServer(t)
	body := fmt.Sprintf(`{"type": "align", "align": %s}`, alignBody)
	req, err := http.NewRequest("POST", srv.URL+"/v1/jobs?trace=1", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "obs-test-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "obs-test-42" {
		t.Errorf("X-Request-ID = %q, want obs-test-42", got)
	}
	var view struct {
		ID        string `json:"id"`
		RequestID string `json:"requestId"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.RequestID != "obs-test-42" {
		t.Errorf("job requestId = %q, want obs-test-42", view.RequestID)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		r2, out := postJSONGet(t, srv.URL+"/v1/jobs/"+view.ID)
		if r2.StatusCode != http.StatusOK {
			t.Fatalf("poll: status %d", r2.StatusCode)
		}
		switch out["state"] {
		case "succeeded":
			res, err := json.Marshal(out["result"])
			if err != nil {
				t.Fatal(err)
			}
			var ar struct {
				Trace json.RawMessage `json:"trace"`
			}
			if err := json.Unmarshal(res, &ar); err != nil {
				t.Fatal(err)
			}
			checkTrace(t, ar.Trace)
			if out["requestId"] != "obs-test-42" {
				t.Errorf("polled job requestId = %v", out["requestId"])
			}
			return
		case "failed", "cancelled":
			t.Fatalf("job ended %v: %v", out["state"], out["error"])
		}
		if time.Now().After(deadline) {
			t.Fatalf("job did not finish; last state %v", out["state"])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAccessLog checks the structured request log: one JSON record per
// request carrying the route label and the request id echoed in the header.
func TestAccessLog(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(lockedWriter{&mu, &buf}, nil))
	app := newServer(serverConfig{DefaultWorkers: 1, Logger: logger})
	srv := httptest.NewServer(app)
	defer srv.Close()

	resp, _ := postJSON(t, srv.URL+"/v1/align", alignBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Fatal("no X-Request-ID header")
	}

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("want 1 access-log record, got %d: %q", len(lines), lines)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("access log is not JSON: %v", err)
	}
	if rec["route"] != "POST /v1/align" {
		t.Errorf("route = %v", rec["route"])
	}
	if rec["request_id"] != id {
		t.Errorf("request_id = %v, header = %q", rec["request_id"], id)
	}
	if rec["status"] != float64(http.StatusOK) {
		t.Errorf("status = %v", rec["status"])
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
