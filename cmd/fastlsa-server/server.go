package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fastlsa"
	"fastlsa/internal/journal"
	"fastlsa/internal/obs"
)

// serverConfig bounds the service.
type serverConfig struct {
	// MaxSequenceLen caps each input sequence (0 selects 1_000_000).
	MaxSequenceLen int
	// MaxBodyBytes caps the request body (0 selects 64 MiB).
	MaxBodyBytes int64
	// MaxMSASequences caps the MSA family size (0 selects 64).
	MaxMSASequences int
	// DefaultWorkers is used when a request does not set workers.
	DefaultWorkers int
	// EngineWorkers sizes the job engine's worker pool (0 = GOMAXPROCS).
	EngineWorkers int
	// QueueDepth bounds the engine's submission queue; saturated queues
	// reject with 503 (0 = 4x workers).
	QueueDepth int
	// MaxRetained bounds how many finished jobs stay queryable (0 = 256).
	MaxRetained int
	// MaxRetainedResults bounds how many retained jobs keep their full
	// result payload in memory (0 = 64).
	MaxRetainedResults int
	// MaxBatch caps the units of one POST /v1/batch request (0 selects 64).
	MaxBatch int
	// BreakerWait is the p95 queue-wait threshold that trips the overload
	// breaker shedding synchronous requests (0 selects 5s; negative disables
	// the breaker).
	BreakerWait time.Duration
	// BreakerCooldown is how long a tripped breaker sheds before it closes
	// and re-measures (0 selects 5s).
	BreakerCooldown time.Duration
	// BreakerWindow is the sliding sample window the p95 is computed over
	// (0 selects 128 pickups).
	BreakerWindow int
	// Logger, when non-nil, receives one structured access-log record per
	// request (request id, route, status, latency).
	Logger *slog.Logger
	// Corpus, when non-nil, is the pre-indexed sequence database served by
	// corpus searches (GET /v1/search, and POST /v1/search bodies with no
	// inline database). Loaded once at startup via the -corpus flag.
	Corpus *fastlsa.Corpus
	// SearchRate and SearchBurst configure per-client token-bucket rate
	// limiting on /v1/search (tokens per second and bucket size). A rate of
	// 0 disables limiting.
	SearchRate  float64
	SearchBurst int
	// StreamTimeout bounds a streaming search request; streaming responses
	// bypass the buffering http.TimeoutHandler, so the deadline rides on
	// the request context instead (0 = 5 minutes).
	StreamTimeout time.Duration
	// SLOAlignP99 is the latency threshold of the align-p99 objective: 99% of
	// POST /v1/align requests must finish under it (0 selects 1s; negative
	// disables the objective).
	SLOAlignP99 time.Duration
	// SLOErrorRate is the allowed fraction of 5xx responses under the
	// error-rate objective (0 selects 0.001; negative disables it).
	SLOErrorRate float64
	// BreakerBurn, when > 0, also trips the overload breaker's shedding when
	// the error-rate objective's fast (5m) burn rate reaches this value, so
	// an error storm sheds synchronous load even while queue waits look fine.
	BreakerBurn float64
	// ProfLabels switches pprof label attribution (job_id/backend/phase) on
	// for work run through this server (process-wide; see obs.SetProfLabels).
	ProfLabels bool
	// ProfInterval, when > 0, starts the continuous runtime-capture loop: one
	// process snapshot (goroutines, heap, GC, CPU) per interval into a ring
	// served by GET /v1/debug/incidents alongside the incidents.
	ProfInterval time.Duration
	// DataDir, when non-empty, enables the durable job journal: async jobs
	// (POST /v1/jobs) are recorded in an append-only WAL under this
	// directory, grid-cache checkpoints are persisted alongside, and on
	// restart non-terminal jobs are replayed and re-enqueued
	// (docs/DURABILITY.md). Empty keeps the server fully in-memory.
	DataDir string
	// JournalFsync selects the journal's fsync policy: "always",
	// "interval" (default) or "never".
	JournalFsync string
	// JournalSegmentBytes overrides the journal's segment rotation
	// threshold (0 = 4 MiB; tests shrink it to exercise rotation).
	JournalSegmentBytes int64
}

func (c serverConfig) withDefaults() serverConfig {
	if c.MaxSequenceLen == 0 {
		c.MaxSequenceLen = 1_000_000
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxMSASequences == 0 {
		c.MaxMSASequences = 64
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.BreakerWait == 0 {
		c.BreakerWait = 5 * time.Second
	}
	if c.StreamTimeout == 0 {
		c.StreamTimeout = 5 * time.Minute
	}
	if c.SLOAlignP99 == 0 {
		c.SLOAlignP99 = time.Second
	}
	if c.SLOErrorRate == 0 {
		c.SLOErrorRate = 0.001
	}
	return c
}

// server is the handler tree plus the job engine every request routes
// through — synchronous endpoints for admission control and cancellation on
// client disconnect, asynchronous ones for the job lifecycle.
type server struct {
	http.Handler
	cfg serverConfig
	eng *fastlsa.Engine
	// metrics accumulates the alignment work of every request served —
	// each task derives a per-run child from it, so the shared value stays
	// race-free while /v1/stats can report service-wide counters, the
	// memory-degradation ones (mesh shrinks, sequential fill fallbacks)
	// included.
	metrics *fastlsa.Counters
	// reg is the Prometheus-style registry behind GET /metrics; httpm holds
	// the per-route HTTP request counters and latency histograms.
	reg        *obs.Registry
	httpm      *obs.HTTPMetrics
	batchSizes *obs.Histogram
	// backendTotal counts served global alignments by aligner backend and
	// routing reason, so dashboards can watch how often AlgoAuto picks the
	// WFA kernel versus FastLSA (docs/BACKENDS.md).
	backendTotal *obs.CounterVec
	// queueWait tracks per-attempt queue waits; breaker sheds synchronous
	// requests when its p95 crosses cfg.BreakerWait (see resilience.go).
	queueWait *obs.Histogram
	breaker   *breaker
	// draining flips /readyz to 503 during shutdown while /healthz stays OK.
	draining atomic.Bool
	logger   *slog.Logger
	start    time.Time
	// corpus is the pre-indexed search database (nil without -corpus);
	// limiter rate-limits /v1/search per client (nil = unlimited).
	corpus  *fastlsa.Corpus
	limiter *rateLimiter
	// slos tracks the declarative objectives' burn rates (nil when every
	// objective is disabled — the nil *SLOSet is a no-op); sloBurn is their
	// /metrics exposure, refreshed at scrape time.
	slos    *obs.SLOSet
	sloBurn *obs.GaugeVec
	// profCPU exports the per-(backend, phase) CPU attribution accumulated by
	// the pprof label brackets; profSeen holds the last drained totals so the
	// counter only ever receives positive deltas. rtSnap is the runtime
	// snapshot behind the fastlsa_go_* families, cached per scrape. All three
	// are guarded by profMu.
	profCPU  *obs.CounterVec
	profMu   sync.Mutex
	profSeen map[[2]string]time.Duration
	rtSnap   obs.RuntimeSnapshot
	// incidents is the server-wide ring of recent 5xx responses and failed
	// jobs (GET /v1/debug/incidents); sampler is the continuous runtime
	// capture loop (nil unless -prof-interval is set).
	incidents *incidentRing
	sampler   *obs.ProfSampler
	// Durable-journal state (nil/zero without -data-dir; durability.go).
	// journal is the append-only WAL; recovering gates /readyz and POST
	// /v1/jobs while startup replay re-enqueues pre-crash jobs.
	journal    *journal.Journal
	recovering atomic.Bool
	bootID     string
	durableSeq atomic.Uint64
	// durableIDs is the set of journal-backed job ids (the event hook's
	// filter); journalDone holds terminal pre-crash jobs so Idempotency-Key
	// retries find them instead of duplicating work. Both under durableMu.
	durableMu   sync.Mutex
	durableIDs  map[string]struct{}
	journalDone map[string]*journal.JobRecord
	// idemIndex maps Idempotency-Key headers to job ids (rebuilt from the
	// journal on restart).
	idemMu    sync.Mutex
	idemIndex map[string]string
	// recoveryTrace records the startup journal.replay span.
	recoveryTrace *obs.Trace
}

// newServer builds the HTTP handler tree backed by a fresh job engine. With
// cfg.DataDir set it also opens the durable journal, replays it, and
// re-enqueues every pre-crash non-terminal job before returning (a call to
// newServerDurable gets the journal-open error instead of a panic).
func newServer(cfg serverConfig) *server {
	s, err := newServerDurable(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func newServerDurable(cfg serverConfig) (*server, error) {
	cfg = cfg.withDefaults()
	s := &server{
		cfg:         cfg,
		metrics:     &fastlsa.Counters{},
		breaker:     newBreaker(cfg.BreakerWait, cfg.BreakerCooldown, cfg.BreakerWindow),
		reg:         obs.NewRegistry(),
		logger:      cfg.Logger,
		start:       time.Now(),
		corpus:      cfg.Corpus,
		limiter:     newRateLimiter(cfg.SearchRate, cfg.SearchBurst),
		profSeen:    make(map[[2]string]time.Duration),
		incidents:   newIncidentRing(defaultIncidents),
		durableIDs:  make(map[string]struct{}),
		journalDone: make(map[string]*journal.JobRecord),
		idemIndex:   make(map[string]string),
	}
	// Open the journal before the engine exists: the replay summary drives
	// recovery, and the engine's event hook must never observe a nil journal.
	var replay *journal.ReplaySummary
	if cfg.DataDir != "" {
		j, sum, err := journal.Open(cfg.DataDir, journal.Options{
			Fsync:        cfg.JournalFsync,
			SegmentBytes: cfg.JournalSegmentBytes,
		})
		if err != nil {
			return nil, fmt.Errorf("open journal: %w", err)
		}
		s.journal = j
		replay = sum
		s.bootID = fmt.Sprintf("%x", time.Now().UnixNano())
		s.recoveryTrace = obs.NewTrace(0)
		s.recovering.Store(true)
	}
	// Declarative objectives: align-p99 classifies POST /v1/align latency
	// against cfg.SLOAlignP99, error-rate classifies every response's status.
	// A rejected set (all objectives disabled) leaves s.slos nil, which the
	// obs package treats as a no-op.
	var objectives []obs.Objective
	if cfg.SLOAlignP99 > 0 {
		objectives = append(objectives, obs.Objective{
			Name: sloAlign, Target: 0.99, Threshold: cfg.SLOAlignP99,
		})
	}
	if cfg.SLOErrorRate > 0 && cfg.SLOErrorRate < 1 {
		objectives = append(objectives, obs.Objective{
			Name: sloErrors, Target: 1 - cfg.SLOErrorRate,
		})
	}
	if len(objectives) > 0 {
		s.slos, _ = obs.NewSLOSet(objectives...)
	}
	// Optional fast-burn coupling: the breaker also sheds while the
	// error-rate objective burns its budget at >= cfg.BreakerBurn on the
	// short window (docs/RESILIENCE.md).
	if cfg.BreakerBurn > 0 && s.slos != nil {
		s.breaker.burnLimit = cfg.BreakerBurn
		s.breaker.burn = func() float64 { return s.slos.Burn(sloErrors, obs.SLOShortWindow) }
	}
	if cfg.ProfLabels {
		obs.SetProfLabels(true)
	}
	if cfg.ProfInterval > 0 {
		s.sampler = obs.StartProfSampler(cfg.ProfInterval, 0)
	}
	s.httpm = obs.NewHTTPMetrics(s.reg, "fastlsa")
	s.batchSizes = s.reg.Histogram("fastlsa_batch_size",
		"Units per admitted POST /v1/batch request.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128})
	s.backendTotal = s.reg.CounterVec("fastlsa_backend_total",
		"Global alignments served, by aligner backend and routing reason.",
		"backend", "reason")
	s.queueWait = s.reg.Histogram("fastlsa_engine_queue_wait_seconds",
		"Queue wait per job attempt, observed at worker pickup.",
		[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30})
	// Every job pickup feeds both the latency histogram and the overload
	// breaker, which sheds synchronous requests while the p95 is unhealthy.
	engCfg := fastlsa.EngineConfig{
		Workers:            cfg.EngineWorkers,
		QueueDepth:         cfg.QueueDepth,
		MaxRetained:        cfg.MaxRetained,
		MaxRetainedResults: cfg.MaxRetainedResults,
		ObserveQueueWait: func(d time.Duration) {
			s.queueWait.Observe(d.Seconds())
			s.breaker.observe(d)
		},
	}
	if s.journal != nil {
		engCfg.OnJobEvent = s.onJobEvent
	}
	s.eng = fastlsa.NewEngine(engCfg)
	s.registerMetrics()

	mux := http.NewServeMux()
	s.handle(mux, "GET /healthz", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}))
	s.handle(mux, "GET /readyz", http.HandlerFunc(s.handleReadyz))
	// The scrape-time families (SLO burn gauges, CPU-attribution counters,
	// runtime snapshot) are recomputed just before each exposition.
	metricsHandler := s.reg.Handler()
	s.handle(mux, "GET /metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.refreshScrapeMetrics()
		metricsHandler.ServeHTTP(w, r)
	}))
	s.handle(mux, "GET /v1/slo", http.HandlerFunc(s.handleSLO))
	s.handle(mux, "GET /v1/debug/incidents", http.HandlerFunc(s.handleIncidents))
	s.handle(mux, "GET /v1/matrices", http.HandlerFunc(handleMatrices))
	s.handle(mux, "POST /v1/align", withLimits(cfg, s.handleAlign))
	s.handle(mux, "POST /v1/msa", withLimits(cfg, s.handleMSA))
	s.handle(mux, "POST /v1/search", withLimits(cfg, s.handleSearch))
	s.handle(mux, "GET /v1/search", http.HandlerFunc(s.handleSearchGET))
	s.handle(mux, "POST /v1/jobs", withLimits(cfg, s.handleJobSubmit))
	s.handle(mux, "GET /v1/jobs", http.HandlerFunc(s.handleJobList))
	s.handle(mux, "GET /v1/jobs/{id}", http.HandlerFunc(s.handleJobGet))
	s.handle(mux, "GET /v1/jobs/{id}/events", http.HandlerFunc(s.handleJobEvents))
	s.handle(mux, "DELETE /v1/jobs/{id}", http.HandlerFunc(s.handleJobCancel))
	s.handle(mux, "POST /v1/batch", withLimits(cfg, s.handleBatch))
	s.handle(mux, "GET /v1/stats", http.HandlerFunc(s.handleStats))
	s.Handler = mux
	// Replay recovery runs synchronously: by the time the server is handed to
	// a listener every pre-crash job is back in the queue and /readyz reports
	// ready. The recovering flag still gates the handlers, so anything that
	// observes the server mid-construction (or a test exercising the gate)
	// sees the not-ready contract.
	if s.journal != nil {
		s.recoverJobs(replay)
	}
	return s, nil
}

// handle registers pattern on mux behind the observability middleware: every
// request gets an X-Request-ID (honored when the client sent one), a route-
// labelled latency/status observation, a structured access-log record, and a
// completion-hook sample feeding the SLO burn accounting and the incident
// ring. The mux pattern doubles as the route label so /metrics cardinality
// stays bounded by the route table, never by request paths.
func (s *server) handle(mux *http.ServeMux, pattern string, h http.Handler) {
	mux.Handle(pattern, obs.MiddlewareObserved(pattern, s.logger, s.httpm, s.observeRequest, h))
}

// registerMetrics exports the engine scheduler gauges and the service-wide
// alignment counters on /metrics. The closures read live values at scrape
// time, so /metrics and /v1/stats always agree.
func (s *server) registerMetrics() {
	engStat := func(pick func(fastlsa.EngineStats) float64) func() float64 {
		return func() float64 { return pick(s.eng.Stats()) }
	}
	s.reg.GaugeFunc("fastlsa_engine_workers",
		"Size of the job engine worker pool.",
		engStat(func(st fastlsa.EngineStats) float64 { return float64(st.Workers) }))
	s.reg.GaugeFunc("fastlsa_engine_queue_capacity",
		"Bound of the job submission queue.",
		engStat(func(st fastlsa.EngineStats) float64 { return float64(st.QueueDepth) }))
	s.reg.GaugeFunc("fastlsa_engine_queue_depth",
		"Jobs currently waiting in the queue.",
		engStat(func(st fastlsa.EngineStats) float64 { return float64(st.Queued) }))
	s.reg.GaugeFunc("fastlsa_engine_jobs_running",
		"Jobs currently executing on workers.",
		engStat(func(st fastlsa.EngineStats) float64 { return float64(st.Running) }))
	s.reg.CounterFunc("fastlsa_engine_jobs_submitted_total",
		"Jobs admitted to the queue (batch units included).",
		engStat(func(st fastlsa.EngineStats) float64 { return float64(st.Submitted) }))
	s.reg.CounterFunc("fastlsa_engine_jobs_rejected_total",
		"Submissions refused by admission control or after shutdown.",
		engStat(func(st fastlsa.EngineStats) float64 { return float64(st.Rejected) }))
	s.reg.CounterFunc("fastlsa_engine_jobs_succeeded_total",
		"Jobs that finished successfully.",
		engStat(func(st fastlsa.EngineStats) float64 { return float64(st.Succeeded) }))
	s.reg.CounterFunc("fastlsa_engine_jobs_failed_total",
		"Jobs that finished with an error.",
		engStat(func(st fastlsa.EngineStats) float64 { return float64(st.Failed) }))
	s.reg.CounterFunc("fastlsa_engine_jobs_cancelled_total",
		"Jobs cancelled before completion.",
		engStat(func(st fastlsa.EngineStats) float64 { return float64(st.Cancelled) }))
	s.reg.CounterFunc("fastlsa_engine_retries_total",
		"Job attempt re-queues performed by retry policies.",
		engStat(func(st fastlsa.EngineStats) float64 { return float64(st.Retries) }))
	s.reg.GaugeFunc("fastlsa_breaker_state",
		"Overload breaker state: 1 while open (shedding sync requests), 0 closed.",
		func() float64 { return s.breaker.state() })
	s.reg.CounterFunc("fastlsa_breaker_trips_total",
		"Times the overload breaker tripped open on p95 queue wait.",
		func() float64 { return float64(s.breaker.trips.Load()) })
	s.reg.CounterFunc("fastlsa_breaker_shed_total",
		"Synchronous requests shed by the open overload breaker.",
		func() float64 { return float64(s.breaker.shed.Load()) })
	s.reg.CounterFunc("fastlsa_engine_batches_total",
		"Batch submissions admitted.",
		engStat(func(st fastlsa.EngineStats) float64 { return float64(st.Batches) }))
	s.reg.CounterFunc("fastlsa_engine_batch_units_total",
		"Jobs fanned out by batch submissions.",
		engStat(func(st fastlsa.EngineStats) float64 { return float64(st.BatchUnits) }))
	s.reg.CounterFunc("fastlsa_jobs_recovered_total",
		"Jobs re-enqueued from the durable journal after a restart.",
		engStat(func(st fastlsa.EngineStats) float64 { return float64(st.Recovered) }))
	s.reg.CounterFunc("fastlsa_jobs_abandoned_total",
		"Jobs cancelled by the shutdown drain deadline (left non-terminal in the journal for the next boot).",
		engStat(func(st fastlsa.EngineStats) float64 { return float64(st.Abandoned) }))
	s.reg.GaugeFunc("fastlsa_recovery_in_progress",
		"1 while startup journal replay is re-enqueuing pre-crash jobs, 0 otherwise.",
		func() float64 {
			if s.recovering.Load() {
				return 1
			}
			return 0
		})
	if s.journal != nil {
		s.reg.CounterFunc("fastlsa_journal_appends_total",
			"Records appended to the durable job journal.",
			func() float64 { return float64(s.journal.Stats().Appends) })
		s.reg.CounterFunc("fastlsa_journal_bytes_total",
			"Bytes written to the durable job journal (framing included).",
			func() float64 { return float64(s.journal.Stats().Bytes) })
		s.reg.GaugeFunc("fastlsa_journal_segments",
			"Live WAL segment files in the journal directory.",
			func() float64 { return float64(s.journal.Stats().Segments) })
	}

	s.reg.CounterFunc("fastlsa_align_cells_total",
		"DP matrix cells computed across all requests.",
		func() float64 { return float64(s.metrics.Cells.Load()) })
	s.reg.CounterFunc("fastlsa_align_traceback_steps_total",
		"Traceback steps walked across all requests.",
		func() float64 { return float64(s.metrics.TracebackSteps.Load()) })
	s.reg.CounterFunc("fastlsa_align_base_cases_total",
		"FastLSA recursions solved directly in the base-case buffer.",
		func() float64 { return float64(s.metrics.BaseCases.Load()) })
	s.reg.CounterFunc("fastlsa_align_general_cases_total",
		"FastLSA recursions that split into a grid of subproblems.",
		func() float64 { return float64(s.metrics.GeneralCases.Load()) })
	s.reg.CounterFunc("fastlsa_align_fill_tiles_total",
		"Wavefront tiles filled by the parallel grid fill.",
		func() float64 { return float64(s.metrics.FillTiles.Load()) })
	s.reg.CounterFunc("fastlsa_align_mesh_shrinks_total",
		"Parallel fills that shrank their mesh to fit the memory budget.",
		func() float64 { return float64(s.metrics.MeshShrinks.Load()) })
	s.reg.CounterFunc("fastlsa_align_seq_fill_fallbacks_total",
		"Parallel fills degraded to the sequential path by the memory budget.",
		func() float64 { return float64(s.metrics.SeqFillFallbacks.Load()) })
	s.reg.CounterFunc("fastlsa_align_checkpoint_saves_total",
		"Grid-cache snapshots persisted through checkpoint sinks.",
		func() float64 { return float64(s.metrics.CheckpointSaves.Load()) })
	s.reg.CounterFunc("fastlsa_align_checkpoint_restores_total",
		"Runs that resumed their grid cache from a persisted checkpoint.",
		func() float64 { return float64(s.metrics.CheckpointRestores.Load()) })
	s.reg.GaugeFunc("fastlsa_align_peak_grid_entries",
		"Largest grid-cache row count observed by any single run.",
		func() float64 { return float64(s.metrics.PeakGridEntries.Load()) })
	s.reg.CounterFunc("fastlsa_search_scanned_total",
		"Database entries considered by corpus searches.",
		func() float64 { return float64(s.metrics.SearchScanned.Load()) })
	s.reg.CounterFunc("fastlsa_search_candidates_total",
		"Entries that survived the q-gram seed filter.",
		func() float64 { return float64(s.metrics.SearchCandidates.Load()) })
	s.reg.CounterFunc("fastlsa_search_examined_total",
		"Entries scored by the exact verify stage.",
		func() float64 { return float64(s.metrics.SearchExamined.Load()) })
	s.reg.CounterFunc("fastlsa_search_rate_limited_total",
		"Search requests rejected 429 by the per-client rate limit.",
		func() float64 {
			if s.limiter == nil {
				return 0
			}
			return float64(s.limiter.limited.Load())
		})
	if s.corpus != nil {
		s.reg.GaugeFunc("fastlsa_corpus_entries",
			"Sequences in the loaded search corpus.",
			func() float64 { return float64(s.corpus.Len()) })
		s.reg.GaugeFunc("fastlsa_corpus_index_postings",
			"Posting-list entries in the corpus q-gram index.",
			func() float64 { return float64(s.corpus.Index.Postings()) })
	}
	s.reg.GaugeFunc("fastlsa_align_cells_per_second",
		"Service-lifetime average DP cell throughput.",
		func() float64 {
			up := time.Since(s.start).Seconds()
			if up <= 0 {
				return 0
			}
			return float64(s.metrics.Cells.Load()) / up
		})

	// SLO burn rates and CPU attribution: both refreshed by
	// refreshScrapeMetrics just before each /metrics exposition.
	s.sloBurn = s.reg.GaugeVec("fastlsa_slo_burn_rate",
		"Error-budget burn rate per objective and window (1 = burning exactly at the objective's allowance).",
		"slo", "window")
	s.profCPU = s.reg.CounterVec("fastlsa_prof_cpu_seconds_total",
		"Wall-clock seconds attributed to labelled solver phases, by backend and phase (requires pprof labels on).",
		"backend", "phase")

	// Process-level runtime families, read from the snapshot cached per
	// scrape so one scrape costs one runtime read, not one per family.
	s.reg.GaugeFunc("fastlsa_go_goroutines",
		"Goroutines at the last scrape.",
		s.runtimeStat(func(rt obs.RuntimeSnapshot) float64 { return float64(rt.Goroutines) }))
	s.reg.GaugeFunc("fastlsa_go_heap_bytes",
		"Live heap bytes at the last scrape.",
		s.runtimeStat(func(rt obs.RuntimeSnapshot) float64 { return float64(rt.HeapBytes) }))
	s.reg.CounterFunc("fastlsa_go_gc_cycles_total",
		"Completed GC cycles.",
		s.runtimeStat(func(rt obs.RuntimeSnapshot) float64 { return float64(rt.GCCycles) }))
	s.reg.CounterFunc("fastlsa_go_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause time.",
		s.runtimeStat(func(rt obs.RuntimeSnapshot) float64 { return rt.GCPauseSeconds }))
	s.reg.GaugeFunc("fastlsa_process_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })

	// Build identity, the standard always-1 info gauge.
	revision := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" && kv.Value != "" {
				revision = kv.Value
			}
		}
	}
	s.reg.GaugeVec("fastlsa_build_info",
		"Build metadata; the value is always 1.",
		"go_version", "revision").With(runtime.Version(), revision).Set(1)
}

// shutdown flips readiness, stops the runtime sampler, and drains the engine
// (used by main on SIGINT/SIGTERM). The journal closes only after the engine
// has shut down — Shutdown flushes the job-event dispatcher first, so every
// terminal record reaches the WAL before the final sync.
func (s *server) shutdown(ctx context.Context) error {
	s.beginDrain()
	s.sampler.Stop()
	err := s.eng.Shutdown(ctx)
	if s.journal != nil {
		if cerr := s.journal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// runSync executes task through the engine so the synchronous endpoints get
// the same admission control and cancellation semantics as async jobs: the
// job's context derives from the request, so a client disconnect or a
// TimeoutHandler expiry abandons the computation. An open overload breaker
// sheds the request up front with a queue-full 503 (Retry-After attached by
// writeTaskErr) instead of parking it behind an unhealthy queue.
func (s *server) runSync(r *http.Request, kind string, rec *fastlsa.Recorder, task func(ctx context.Context) (any, error)) (any, error) {
	if !s.breaker.allow(time.Now()) {
		return nil, fmt.Errorf("%w: overload breaker open (p95 queue wait over %s)",
			fastlsa.ErrQueueFull, s.cfg.BreakerWait)
	}
	j, err := s.eng.SubmitFunc(kind, task, fastlsa.JobOptions{
		Context:   r.Context(),
		RequestID: obs.RequestID(r.Context()),
		Recorder:  rec,
	})
	if err != nil {
		return nil, err
	}
	s.watchJob(j)
	return j.Wait(r.Context())
}

// errStatus maps an execution error to an HTTP status: 422 is reserved for
// known bad-input failures (an option combination the engines reject, or a
// client-chosen memory budget the run could not fit); anything unrecognized
// is an internal failure — e.g. a kernel invariant violation — and reports
// as 500 rather than being blamed on the client.
func errStatus(err error) int {
	switch {
	case errors.Is(err, fastlsa.ErrQueueFull), errors.Is(err, fastlsa.ErrEngineClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client is gone; the status is mostly for logs.
		return http.StatusServiceUnavailable
	case errors.Is(err, fastlsa.ErrInvalidInput), errors.Is(err, fastlsa.ErrBudgetExceeded),
		errors.Is(err, fastlsa.ErrBudgetTooSmall):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func withLimits(cfg serverConfig, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, cfg.MaxBodyBytes)
		h(w, r)
	}
}

// apiError is the uniform error envelope. RetryAfterMs accompanies overload
// 503s (mirroring the Retry-After header, millisecond precision).
type apiError struct {
	Error        string `json:"error"`
	RetryAfterMs int64  `json:"retryAfterMs,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// gapSpec is the JSON gap model: {"extend": -4} or {"open": -11, "extend": -1}.
type gapSpec struct {
	Open   int `json:"open"`
	Extend int `json:"extend"`
}

func (g gapSpec) toGap() fastlsa.Gap {
	if g.Open == 0 && g.Extend == 0 {
		return fastlsa.PaperGap
	}
	return fastlsa.Affine(g.Open, g.Extend)
}

// alignRequest is the POST /v1/align body.
type alignRequest struct {
	A            string  `json:"a"`
	B            string  `json:"b"`
	AID          string  `json:"aId"`
	BID          string  `json:"bId"`
	Alphabet     string  `json:"alphabet"` // default: the matrix's alphabet
	Matrix       string  `json:"matrix"`   // default blosum62
	Gap          gapSpec `json:"gap"`
	Mode         string  `json:"mode"`      // global (default), overlap, fit-b-in-a, fit-a-in-b
	Algorithm    string  `json:"algorithm"` // auto (default), fastlsa, fm, hirschberg, compact, wfa
	Local        bool    `json:"local"`
	Workers      int     `json:"workers"`
	MemoryBudget int64   `json:"memoryBudget"`
	IncludeRows  bool    `json:"includeRows"`
	// Trace records a span trace of the run and returns it as Chrome
	// trace_event JSON in the response (also enabled by ?trace=1).
	Trace bool `json:"trace"`
}

// alignResponse is the POST /v1/align reply.
type alignResponse struct {
	Score      int64      `json:"score"`
	CIGAR      string     `json:"cigar,omitempty"`
	Columns    int        `json:"columns"`
	Identity   float64    `json:"identity"`
	RowA       string     `json:"rowA,omitempty"`
	RowB       string     `json:"rowB,omitempty"`
	Local      *localSpan `json:"local,omitempty"`
	CellsSpent int64      `json:"cellsComputed"`
	// Backend and RouteReason report which aligner backend served a global
	// run and why it was chosen ("explicit" for a forced algorithm,
	// AlgoAuto's divergence verdict otherwise; docs/BACKENDS.md). Omitted
	// for local runs, which do not route. RouteIdentity is the q-gram
	// identity estimate that drove a divergence verdict (omitted when no
	// estimate was made — forced algorithms, short pairs).
	Backend       string  `json:"backend,omitempty"`
	RouteReason   string  `json:"routeReason,omitempty"`
	RouteIdentity float64 `json:"routeIdentity,omitempty"`
	// Trace is the run's Chrome trace_event JSON (load it in
	// chrome://tracing or Perfetto) when the request asked for one.
	Trace json.RawMessage `json:"trace,omitempty"`
}

type localSpan struct {
	StartA int `json:"startA"`
	EndA   int `json:"endA"`
	StartB int `json:"startB"`
	EndB   int `json:"endB"`
}

func (s *server) handleAlign(w http.ResponseWriter, r *http.Request) {
	var req alignRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if r.URL.Query().Get("trace") == "1" {
		req.Trace = true
	}
	rec := fastlsa.NewRecorder(0)
	task, err := s.alignTask(req, rec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	kind := "align"
	if req.Local {
		kind = "align-local"
	}
	resp, err := s.runSync(r, kind, rec, task)
	if err != nil {
		s.writeTaskErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// alignTask validates req up front (so bad input is a 400, not a job
// failure) and returns the engine task that computes the response. rec (when
// non-nil) is the job's flight recorder, threaded into the run so routing and
// degradation decisions land on the same timeline as the engine lifecycle;
// the Trace, by contrast, is created inside the task, so a retried job's
// trace covers the final attempt rather than accumulating all of them.
func (s *server) alignTask(req alignRequest, rec *fastlsa.Recorder) (func(ctx context.Context) (any, error), error) {
	opt, a, b, err := buildOptions(s.cfg, req)
	if err != nil {
		return nil, err
	}
	return func(ctx context.Context) (any, error) {
		o := opt
		o.Context = ctx
		o.Recorder = rec
		// Journal-backed jobs persist grid-cache checkpoints at block-row
		// boundaries, so a crashed alignment resumes instead of restarting.
		if sink := s.checkpointSink(ctx); sink != nil {
			o.Checkpoint = sink
		}
		// Per-request child of the service-wide counters: the request reads
		// its own work, /v1/stats accumulates everything.
		counters := s.metrics.Derive(nil)
		o.Counters = counters
		var tr *fastlsa.Trace
		if req.Trace {
			tr = fastlsa.NewTrace(0)
			if id := obs.RequestID(ctx); id != "" {
				tr.SetLabel("align " + id)
			}
			o.Trace = tr
		}
		traceJSON := func() json.RawMessage {
			if tr == nil {
				return nil
			}
			b, err := tr.ChromeTrace()
			if err != nil {
				return nil
			}
			return b
		}

		if req.Local {
			loc, err := fastlsa.AlignLocal(a, b, o)
			if err != nil {
				return nil, err
			}
			resp := alignResponse{
				Score:      loc.Score,
				CellsSpent: counters.Cells.Load(),
				Trace:      traceJSON(),
			}
			if loc.Score > 0 {
				resp.CIGAR = loc.Path.CIGAR()
				resp.Columns = loc.Path.Len()
				resp.Local = &localSpan{StartA: loc.StartA, EndA: loc.EndA, StartB: loc.StartB, EndB: loc.EndB}
				sub := &fastlsa.Alignment{A: a.Slice(loc.StartA, loc.EndA), B: b.Slice(loc.StartB, loc.EndB), Path: loc.Path, Score: loc.Score}
				st := sub.Stats()
				resp.Identity = st.Identity
				if req.IncludeRows {
					resp.RowA, resp.RowB = sub.Rows()
				}
			}
			return resp, nil
		}

		var route fastlsa.RouteInfo
		o.Route = &route
		al, err := fastlsa.Align(a, b, o)
		if route.Backend != "" {
			s.backendTotal.With(route.Backend, route.Reason).Inc()
		}
		if err != nil {
			return nil, err
		}
		st := al.Stats()
		resp := alignResponse{
			Score:         al.Score,
			CIGAR:         al.Path.CIGAR(),
			Columns:       st.Columns,
			Identity:      st.Identity,
			CellsSpent:    counters.Cells.Load(),
			Backend:       route.Backend,
			RouteReason:   route.Reason,
			RouteIdentity: route.Identity,
			Trace:         traceJSON(),
		}
		if req.IncludeRows {
			resp.RowA, resp.RowB = al.Rows()
		}
		return resp, nil
	}, nil
}

func buildOptions(cfg serverConfig, req alignRequest) (fastlsa.Options, *fastlsa.Sequence, *fastlsa.Sequence, error) {
	matrixName := req.Matrix
	if matrixName == "" {
		matrixName = "blosum62"
	}
	matrix, err := fastlsa.MatrixByName(matrixName)
	if err != nil {
		return fastlsa.Options{}, nil, nil, err
	}
	alphabet := matrix.Alphabet
	if req.Alphabet != "" {
		if alphabet, err = fastlsa.ParseAlphabet(req.Alphabet); err != nil {
			return fastlsa.Options{}, nil, nil, err
		}
	}
	mode, err := fastlsa.ParseMode(req.Mode)
	if err != nil {
		return fastlsa.Options{}, nil, nil, err
	}
	algo, err := fastlsa.ParseAlgorithm(req.Algorithm)
	if err != nil {
		return fastlsa.Options{}, nil, nil, err
	}
	if len(req.A) > cfg.MaxSequenceLen || len(req.B) > cfg.MaxSequenceLen {
		return fastlsa.Options{}, nil, nil, fmt.Errorf("sequence exceeds the %d-residue limit", cfg.MaxSequenceLen)
	}
	a, err := fastlsa.NewSequence(orDefault(req.AID, "a"), req.A, alphabet)
	if err != nil {
		return fastlsa.Options{}, nil, nil, err
	}
	b, err := fastlsa.NewSequence(orDefault(req.BID, "b"), req.B, alphabet)
	if err != nil {
		return fastlsa.Options{}, nil, nil, err
	}
	workers := req.Workers
	if workers == 0 {
		workers = cfg.DefaultWorkers
	}
	opt := fastlsa.Options{
		Matrix:       matrix,
		Gap:          req.Gap.toGap(),
		Mode:         mode,
		Algorithm:    algo,
		MemoryBudget: req.MemoryBudget,
		Workers:      workers,
	}
	return opt, a, b, nil
}

func orDefault(s, def string) string {
	if strings.TrimSpace(s) == "" {
		return def
	}
	return s
}

// msaRequest is the POST /v1/msa body.
type msaRequest struct {
	Sequences []struct {
		ID      string `json:"id"`
		Letters string `json:"letters"`
	} `json:"sequences"`
	Alphabet string  `json:"alphabet"`
	Matrix   string  `json:"matrix"`
	Gap      gapSpec `json:"gap"`
	Workers  int     `json:"workers"`
}

// msaResponse is the POST /v1/msa reply.
type msaResponse struct {
	Rows       []string `json:"rows"`
	IDs        []string `json:"ids"`
	Columns    int      `json:"columns"`
	SumOfPairs int64    `json:"sumOfPairs"`
	Tree       string   `json:"tree"`
}

func (s *server) handleMSA(w http.ResponseWriter, r *http.Request) {
	var req msaRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	task, err := s.msaTask(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, err := s.runSync(r, "msa", fastlsa.NewRecorder(0), task)
	if err != nil {
		s.writeTaskErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// msaTask validates req and returns the engine task computing the response.
func (s *server) msaTask(req msaRequest) (func(ctx context.Context) (any, error), error) {
	cfg := s.cfg
	if len(req.Sequences) < 2 {
		return nil, fmt.Errorf("need at least two sequences (got %d)", len(req.Sequences))
	}
	if len(req.Sequences) > cfg.MaxMSASequences {
		return nil, fmt.Errorf("family exceeds the %d-sequence limit", cfg.MaxMSASequences)
	}
	matrixName := req.Matrix
	if matrixName == "" {
		matrixName = "blosum62"
	}
	matrix, err := fastlsa.MatrixByName(matrixName)
	if err != nil {
		return nil, err
	}
	alphabet := matrix.Alphabet
	if req.Alphabet != "" {
		if alphabet, err = fastlsa.ParseAlphabet(req.Alphabet); err != nil {
			return nil, err
		}
	}
	seqs := make([]*fastlsa.Sequence, 0, len(req.Sequences))
	ids := make([]string, 0, len(req.Sequences))
	for i, rs := range req.Sequences {
		if len(rs.Letters) > cfg.MaxSequenceLen {
			return nil, fmt.Errorf("sequence %d exceeds the %d-residue limit", i, cfg.MaxSequenceLen)
		}
		sq, err := fastlsa.NewSequence(orDefault(rs.ID, fmt.Sprintf("seq%d", i+1)), rs.Letters, alphabet)
		if err != nil {
			return nil, err
		}
		seqs = append(seqs, sq)
		ids = append(ids, sq.ID)
	}
	workers := req.Workers
	if workers == 0 {
		workers = cfg.DefaultWorkers
	}
	return func(ctx context.Context) (any, error) {
		res, err := fastlsa.AlignMSA(seqs, fastlsa.Options{
			Matrix:   matrix,
			Gap:      req.Gap.toGap(),
			Workers:  workers,
			Context:  ctx,
			Counters: s.metrics, // the facade derives a per-run child
		})
		if err != nil {
			return nil, err
		}
		return msaResponse{
			Rows:       res.Rows,
			IDs:        ids,
			Columns:    res.Columns,
			SumOfPairs: res.SumOfPairs,
			Tree:       res.Tree,
		}, nil
	}, nil
}

// matrixInfo describes one scoring matrix for GET /v1/matrices.
type matrixInfo struct {
	Name     string `json:"name"`
	Alphabet string `json:"alphabet"`
	Min      int    `json:"min"`
	Max      int    `json:"max"`
}

func handleMatrices(w http.ResponseWriter, r *http.Request) {
	names := []string{"table1", "mdm78", "blosum62", "dna", "dna-strict", "dna-iupac"}
	out := make([]matrixInfo, 0, len(names))
	for _, n := range names {
		m, err := fastlsa.MatrixByName(n)
		if err != nil {
			continue
		}
		out = append(out, matrixInfo{Name: n, Alphabet: m.Alphabet.Name, Min: m.Min(), Max: m.Max()})
	}
	writeJSON(w, http.StatusOK, out)
}

// searchRequest is the POST /v1/search body: a query ranked against an
// inline database.
type searchRequest struct {
	Query    string `json:"query"`
	QueryID  string `json:"queryId"`
	Database []struct {
		ID      string `json:"id"`
		Letters string `json:"letters"`
	} `json:"database"`
	Alphabet string  `json:"alphabet"`
	Matrix   string  `json:"matrix"`
	Gap      gapSpec `json:"gap"` // linear only; zero selects -12
	TopK     int     `json:"topK"`
	MinScore int64   `json:"minScore"`
	// FitStats fits Gumbel statistics for the scoring system (adds ~10-100ms)
	// so hits carry E-values; StatsSeed makes the fit reproducible.
	FitStats  bool    `json:"fitStats"`
	StatsSeed int64   `json:"statsSeed"`
	MaxEValue float64 `json:"maxEValue"`
	Workers   int     `json:"workers"`
}

// searchResponse is the POST /v1/search reply.
type searchResponse struct {
	Hits []searchHit `json:"hits"`
	// Stats echoes the fitted parameters when FitStats was set.
	Stats *statsInfo `json:"stats,omitempty"`
	// Funnel reports the filter → verify funnel of a corpus search.
	Funnel *funnelInfo `json:"funnel,omitempty"`
}

// funnelInfo is the seed-filter funnel of one corpus search: how many
// entries the probe scanned, how many survived the filter, and how many the
// exact kernel actually scored.
type funnelInfo struct {
	Scanned     int     `json:"scanned"`
	Candidates  int     `json:"candidates"`
	Examined    int64   `json:"examined"`
	Selectivity float64 `json:"selectivity"`
}

type searchHit struct {
	Index    int     `json:"index"`
	ID       string  `json:"id"`
	Score    int64   `json:"score"`
	EValue   float64 `json:"eValue,omitempty"`
	BitScore float64 `json:"bitScore,omitempty"`
	CIGAR    string  `json:"cigar,omitempty"`
	StartA   int     `json:"startA"`
	EndA     int     `json:"endA"`
	StartB   int     `json:"startB"`
	EndB     int     `json:"endB"`
}

type statsInfo struct {
	Lambda float64 `json:"lambda"`
	K      float64 `json:"k"`
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if !s.allowSearch(w, r) {
		return
	}
	var req searchRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if wantsStream(r) {
		if s.corpus == nil {
			writeErr(w, http.StatusUnprocessableEntity, "streaming search requires a loaded corpus (start the server with -corpus)")
			return
		}
		if len(req.Database) != 0 {
			writeErr(w, http.StatusBadRequest, "streaming search runs against the loaded corpus; omit the inline database")
			return
		}
		cq, err := s.corpusQueryFromRequest(req)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.serveSearchStream(w, r, cq)
		return
	}
	rec := fastlsa.NewRecorder(0)
	task, err := s.searchTask(req, rec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, err := s.runSync(r, "search", rec, task)
	if err != nil {
		s.writeTaskErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// searchTask validates req and returns the engine task computing the
// response. The statistics fit (when requested) runs inside the task so it
// is cancellable along with the search itself. rec (when non-nil) is the
// job's flight recorder, threaded into the search so its phase spans land on
// the job timeline.
func (s *server) searchTask(req searchRequest, rec *fastlsa.Recorder) (func(ctx context.Context) (any, error), error) {
	cfg := s.cfg
	if len(req.Database) == 0 {
		// No inline database: search the loaded corpus through the
		// seed-filter pipeline (buffered response; GET and ?stream=1 give
		// the NDJSON stream).
		if s.corpus == nil {
			return nil, fmt.Errorf("empty database")
		}
		cq, err := s.corpusQueryFromRequest(req)
		if err != nil {
			return nil, err
		}
		return s.corpusSearchTask(cq, s.metrics.Derive(nil), rec, nil), nil
	}
	matrixName := req.Matrix
	if matrixName == "" {
		matrixName = "blosum62"
	}
	matrix, err := fastlsa.MatrixByName(matrixName)
	if err != nil {
		return nil, err
	}
	alphabet := matrix.Alphabet
	if req.Alphabet != "" {
		if alphabet, err = fastlsa.ParseAlphabet(req.Alphabet); err != nil {
			return nil, err
		}
	}
	if len(req.Query) > cfg.MaxSequenceLen {
		return nil, fmt.Errorf("query exceeds the %d-residue limit", cfg.MaxSequenceLen)
	}
	query, err := fastlsa.NewSequence(orDefault(req.QueryID, "query"), req.Query, alphabet)
	if err != nil {
		return nil, err
	}
	if query.Len() == 0 {
		return nil, fmt.Errorf("empty query")
	}
	db := make([]*fastlsa.Sequence, 0, len(req.Database))
	for i, rs := range req.Database {
		if len(rs.Letters) > cfg.MaxSequenceLen {
			return nil, fmt.Errorf("database entry %d exceeds the %d-residue limit", i, cfg.MaxSequenceLen)
		}
		sq, err := fastlsa.NewSequence(orDefault(rs.ID, fmt.Sprintf("db%d", i)), rs.Letters, alphabet)
		if err != nil {
			return nil, fmt.Errorf("database entry %d: %v", i, err)
		}
		db = append(db, sq)
	}

	gap := fastlsa.Linear(-12)
	if req.Gap != (gapSpec{}) {
		if req.Gap.Open != 0 {
			return nil, fmt.Errorf("search supports linear gaps only")
		}
		gap = fastlsa.Linear(req.Gap.Extend)
	}
	workers := req.Workers
	if workers == 0 {
		workers = cfg.DefaultWorkers
	}
	return func(ctx context.Context) (any, error) {
		opt := fastlsa.SearchOptions{
			Matrix:    matrix,
			Gap:       gap,
			TopK:      req.TopK,
			MinScore:  req.MinScore,
			MaxEValue: req.MaxEValue,
			Workers:   workers,
			Context:   ctx,
			Counters:  s.metrics, // Search derives a per-run child
			Recorder:  rec,
		}
		var resp searchResponse
		if req.FitStats || req.MaxEValue > 0 {
			params, err := fastlsa.EstimateStatistics(matrix, gap, 0, 0, req.StatsSeed)
			if err != nil {
				return nil, fmt.Errorf("statistics fit: %w", err)
			}
			opt.Stats = &params
			resp.Stats = &statsInfo{Lambda: params.Lambda, K: params.K}
		}

		hits, err := fastlsa.Search(query, db, opt)
		if err != nil {
			return nil, err
		}
		resp.Hits = make([]searchHit, 0, len(hits))
		for _, h := range hits {
			sh := searchHit{
				Index: h.Index, ID: h.ID, Score: h.Score,
				EValue: h.EValue, BitScore: h.BitScore,
			}
			if h.Alignment != nil {
				sh.CIGAR = h.Alignment.Path.CIGAR()
				sh.StartA, sh.EndA = h.Alignment.StartA, h.Alignment.EndA
				sh.StartB, sh.EndB = h.Alignment.StartB, h.Alignment.EndB
			}
			resp.Hits = append(resp.Hits, sh)
		}
		return resp, nil
	}, nil
}
