package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"fastlsa/internal/fault"
)

// TestRetryAfterOnQueueFull saturates a tiny engine and requires every
// queue-full 503 to carry both the Retry-After header and the retryAfterMs
// JSON hint.
func TestRetryAfterOnQueueFull(t *testing.T) {
	srv := httptest.NewServer(newServer(serverConfig{
		DefaultWorkers: 1, EngineWorkers: 1, QueueDepth: 1,
	}))
	defer srv.Close()

	sawHint := false
	for i := 0; i < 8; i++ {
		resp, out := postJSON(t, srv.URL+"/v1/jobs", slowAlignJob(6000))
		if resp.StatusCode != http.StatusServiceUnavailable {
			continue
		}
		ra := resp.Header.Get("Retry-After")
		if ra == "" {
			t.Fatalf("503 without Retry-After header: %v", out)
		}
		if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
			t.Fatalf("Retry-After %q is not a positive integer of seconds", ra)
		}
		ms, ok := out["retryAfterMs"].(float64)
		if !ok || ms < 1 {
			t.Fatalf("503 body lacks a positive retryAfterMs: %v", out)
		}
		sawHint = true
	}
	if !sawHint {
		t.Fatal("queue never saturated; no 503 observed")
	}
}

// TestReadyzFlipsDuringDrain: /readyz fails once the drain begins while
// /healthz keeps reporting live.
func TestReadyzFlipsDuringDrain(t *testing.T) {
	app := newServer(serverConfig{DefaultWorkers: 1})
	srv := httptest.NewServer(app)
	defer srv.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz before drain = %d, want 200", got)
	}
	app.beginDrain()
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200 (liveness is separate)", got)
	}
}

// TestBreakerTripAndRecovery unit-tests the overload breaker: a window of
// unhealthy p95 queue waits trips it, sync requests shed while open, and it
// closes after the cooldown.
func TestBreakerTripAndRecovery(t *testing.T) {
	b := newBreaker(10*time.Millisecond, 80*time.Millisecond, 16)
	now := time.Now()
	if !b.allow(now) {
		t.Fatal("fresh breaker must be closed")
	}
	for i := 0; i < 16; i++ {
		b.observe(50 * time.Millisecond)
	}
	if b.trips.Load() != 1 {
		t.Fatalf("trips = %d after unhealthy window, want 1", b.trips.Load())
	}
	if b.allow(time.Now()) {
		t.Fatal("tripped breaker must shed")
	}
	if b.shed.Load() != 1 {
		t.Fatalf("shed = %d, want 1", b.shed.Load())
	}
	if b.state() != 1 {
		t.Fatalf("state = %v while open, want 1", b.state())
	}
	if rem := b.remaining(time.Now()); rem <= 0 || rem > 80*time.Millisecond {
		t.Fatalf("remaining = %v, want (0, 80ms]", rem)
	}
	// After the cooldown it closes and re-measures on a fresh window: a few
	// healthy samples must not re-trip.
	time.Sleep(100 * time.Millisecond)
	if !b.allow(time.Now()) {
		t.Fatal("breaker still open after cooldown")
	}
	for i := 0; i < 16; i++ {
		b.observe(time.Millisecond)
	}
	if b.trips.Load() != 1 {
		t.Fatalf("healthy window re-tripped: trips = %d", b.trips.Load())
	}
	if b.state() != 0 {
		t.Fatalf("state = %v while closed, want 0", b.state())
	}
}

// TestBreakerDisabled: a negative threshold disables shedding entirely.
func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(-1, 0, 0)
	for i := 0; i < 200; i++ {
		b.observe(time.Hour)
	}
	if !b.allow(time.Now()) {
		t.Fatal("disabled breaker shed a request")
	}
}

// TestBreakerShedsSyncRequests forces the server's breaker open and requires
// synchronous endpoints to answer 503 + Retry-After without touching the
// engine, while async job submissions still queue.
func TestBreakerShedsSyncRequests(t *testing.T) {
	app := newServer(serverConfig{DefaultWorkers: 1, BreakerWait: time.Millisecond})
	srv := httptest.NewServer(app)
	defer srv.Close()

	for i := 0; i < 128; i++ {
		app.breaker.observe(time.Second)
	}
	rejected := app.eng.Stats().Rejected

	resp, out := postJSON(t, srv.URL+"/v1/align",
		`{"a":"ACGT","b":"ACGT","matrix":"dna","gap":{"extend":-4}}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sync status under open breaker = %d, want 503 (%v)", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("shed response lacks Retry-After: %v", out)
	}
	if got := app.eng.Stats().Rejected; got != rejected {
		t.Fatalf("shed request reached the engine (rejected %d -> %d)", rejected, got)
	}
	if app.breaker.shed.Load() == 0 {
		t.Fatal("shed counter did not move")
	}

	// Async submissions are not shed — their callers opted into queueing.
	jresp, jout := postJSON(t, srv.URL+"/v1/jobs", `{
		"type": "align",
		"align": {"a": "ACGT", "b": "ACGT", "matrix": "dna", "gap": {"extend": -4}}
	}`)
	if jresp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit under open breaker = %d, want 202 (%v)", jresp.StatusCode, jout)
	}
}

// TestJobRetrySurfacesAttempts arms a worker fault that fails every attempt
// and checks the whole retry story end-to-end: the job view reports
// MaxAttempts attempts, /v1/stats counts the re-queues, and /metrics exports
// them.
func TestJobRetrySurfacesAttempts(t *testing.T) {
	if err := fault.Arm("engine.worker:error", 1); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	defer fault.Disarm()

	srv := testServer(t)
	resp, out := postJSON(t, srv.URL+"/v1/jobs", `{
		"type": "align",
		"retry": {"maxAttempts": 3, "backoffMs": 1},
		"align": {"a": "ACGT", "b": "ACGT", "matrix": "dna", "gap": {"extend": -4}}
	}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", resp.StatusCode, out)
	}
	id := out["id"].(string)
	done := pollJob(t, srv.URL+"/v1/jobs/"+id, "failed", 10*time.Second)
	if got, _ := done["attempts"].(float64); got != 3 {
		t.Fatalf("attempts = %v, want 3: %v", done["attempts"], done)
	}

	sresp, stats := doJSON(t, http.MethodGet, srv.URL+"/v1/stats", "")
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", sresp.StatusCode)
	}
	if got, _ := stats["retries"].(float64); got < 2 {
		t.Fatalf("stats retries = %v, want >= 2", stats["retries"])
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	for _, metric := range []string{
		"fastlsa_engine_retries_total",
		"fastlsa_breaker_state",
		"fastlsa_breaker_shed_total",
		"fastlsa_engine_queue_wait_seconds",
	} {
		if !strings.Contains(string(body), metric) {
			t.Errorf("/metrics lacks %s", metric)
		}
	}
}

// TestInjectedDecodeFault: an armed server.decode site must surface as a
// client-level 400, never a 500, and never submit a job.
func TestInjectedDecodeFault(t *testing.T) {
	if err := fault.Arm("server.decode:error", 1); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	defer fault.Disarm()

	app := newServer(serverConfig{DefaultWorkers: 1})
	srv := httptest.NewServer(app)
	defer srv.Close()

	resp, out := postJSON(t, srv.URL+"/v1/align",
		`{"a":"ACGT","b":"ACGT","matrix":"dna","gap":{"extend":-4}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status under decode fault = %d, want 400 (%v)", resp.StatusCode, out)
	}
	if got := app.eng.Stats().Submitted; got != 0 {
		t.Fatalf("decode fault leaked %d job submissions", got)
	}
}

// TestBatchRetryZeroFailedUnits is the server-side slice of the acceptance
// scenario: with a worker fault striking ~30% of attempts, a batch submitted
// with a retry policy completes with zero failed units.
func TestBatchRetryZeroFailedUnits(t *testing.T) {
	if err := fault.Arm("engine.worker:error:0.3", 7); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	defer fault.Disarm()

	srv := httptest.NewServer(newServer(serverConfig{
		DefaultWorkers: 1, EngineWorkers: 4, QueueDepth: 64,
	}))
	defer srv.Close()
	var pairs []string
	for i := 0; i < 16; i++ {
		pairs = append(pairs, `{"a":"ACGTACGTACGT","b":"ACGTTCGTACGA"}`)
	}
	resp, out := postJSON(t, srv.URL+"/v1/batch", `{
		"matrix": "dna", "gap": {"extend": -4},
		"retry": {"maxAttempts": 8, "backoffMs": 1},
		"pairs": [`+strings.Join(pairs, ",")+`]
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %v", resp.StatusCode, out)
	}
	units, _ := out["units"].([]any)
	if len(units) != 16 {
		t.Fatalf("units = %d, want 16", len(units))
	}
	for i, u := range units {
		um := u.(map[string]any)
		if e, _ := um["error"].(string); e != "" {
			t.Errorf("unit %d failed despite retry: %s", i, e)
		}
	}
}
