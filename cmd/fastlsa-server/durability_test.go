package main

// Crash-recovery acceptance tests for the durable job journal: jobs accepted
// through POST /v1/jobs on a -data-dir server survive a hard crash, restart
// exactly once with identical results, resume checkpointed alignments, and
// honor Idempotency-Key retries across the crash (docs/DURABILITY.md).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fastlsa/internal/journal"
)

// durableServer builds a journal-backed server over dir. FsyncAlways keeps
// the tests deterministic: every accepted record is on disk before the 202.
func durableServer(t *testing.T, dir string, engineWorkers int) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServerDurable(serverConfig{
		DefaultWorkers: 1,
		EngineWorkers:  engineWorkers,
		QueueDepth:     64,
		DataDir:        dir,
		JournalFsync:   journal.FsyncAlways,
	})
	if err != nil {
		t.Fatalf("newServerDurable: %v", err)
	}
	h := httptest.NewServer(s)
	t.Cleanup(h.Close)
	return s, h
}

// crashServer simulates a crash: the listener dies and the engine is
// hard-cancelled with no drain (running and queued jobs are abandoned, left
// non-terminal in the journal). The journal close stands in for the OS
// flushing the WAL file — with FsyncAlways every record is already on disk.
func crashServer(t *testing.T, s *server, h *httptest.Server) {
	t.Helper()
	h.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.shutdown(ctx)
}

func submitJob(t *testing.T, base, body string) string {
	t.Helper()
	resp, out := doJSON(t, http.MethodPost, base+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", resp.StatusCode, out)
	}
	id, _ := out["id"].(string)
	if id == "" {
		t.Fatalf("no job id: %v", out)
	}
	return id
}

const paperJob = `{"type":"align","align":{"a":"TDVLKAD","b":"TLDKLLKD","matrix":"table1","gap":{"extend":-10}}}`

// blockerN sizes the long alignment that holds the single worker busy across
// a crash: the kernel fills on the order of 1e9 cells/s, so blockerN^2 cells
// keep it running for seconds — ample room to observe a checkpoint, queue
// jobs behind it, and crash mid-fill.
const blockerN = 40_000

// TestCrashRecoveryExactlyOnce is the crash acceptance test: >= 20 jobs
// accepted, some finished before the crash, the rest recovered after a
// restart on the same data dir — every job runs exactly once and reports the
// same score, and the long alignment resumes from its grid-cache checkpoint
// instead of recomputing from cell (0,0).
func TestCrashRecoveryExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	s1, h1 := durableServer(t, dir, 1)

	// Phase 1: five fast jobs reach a terminal state before the crash.
	var doneIDs []string
	for i := 0; i < 5; i++ {
		id := submitJob(t, h1.URL, paperJob)
		pollJob(t, h1.URL+"/v1/jobs/"+id, "succeeded", 10*time.Second)
		doneIDs = append(doneIDs, id)
	}

	// Phase 2: a long alignment occupies the single worker; crash only after
	// it has persisted at least one grid-cache checkpoint.
	blockerID := submitJob(t, h1.URL, slowAlignJob(blockerN))
	deadline := time.Now().Add(20 * time.Second)
	for s1.journal.LoadCheckpoint(blockerID) == nil {
		if time.Now().After(deadline) {
			t.Fatal("blocker never persisted a checkpoint")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Phase 3: 18 more jobs queue behind the blocker, then the crash.
	var queuedIDs []string
	for i := 0; i < 18; i++ {
		queuedIDs = append(queuedIDs, submitJob(t, h1.URL, paperJob))
	}
	crashServer(t, s1, h1)
	if ab := s1.eng.Stats().Abandoned; ab != 19 {
		t.Fatalf("abandoned = %d, want 19 (1 running + 18 queued)", ab)
	}

	// Restart on the same directory: recovery is synchronous, so by the time
	// the constructor returns every pre-crash non-terminal job is re-enqueued.
	s2, h2 := durableServer(t, dir, 1)
	if got := s2.eng.Stats().Recovered; got != 19 {
		t.Fatalf("recovered = %d, want 19", got)
	}
	if got := s2.eng.Stats().Submitted; got != 19 {
		t.Fatalf("submitted = %d, want 19 (terminal pre-crash jobs must not re-run)", got)
	}

	// Terminal pre-crash jobs are NOT resubmitted but stay queryable from the
	// journal's aggregate.
	for _, id := range doneIDs {
		if _, err := s2.eng.Job(id); err == nil {
			t.Fatalf("terminal job %s was resubmitted after the crash", id)
		}
		resp, out := doJSON(t, http.MethodGet, h2.URL+"/v1/jobs/"+id, "")
		if resp.StatusCode != http.StatusOK || out["state"] != "succeeded" {
			t.Fatalf("journalled view of %s: status %d %v", id, resp.StatusCode, out)
		}
	}

	// Every recovered job finishes with the known score, exactly once.
	blocker := pollJob(t, h2.URL+"/v1/jobs/"+blockerID, "succeeded", 120*time.Second)
	if rec, _ := blocker["recovered"].(bool); !rec {
		t.Fatalf("blocker not marked recovered: %v", blocker)
	}
	for _, id := range queuedIDs {
		done := pollJob(t, h2.URL+"/v1/jobs/"+id, "succeeded", 30*time.Second)
		result, _ := done["result"].(map[string]any)
		if result == nil || result["score"].(float64) != 82 {
			t.Fatalf("recovered job %s: bad result %v", id, done)
		}
		if rec, _ := done["recovered"].(bool); !rec {
			t.Fatalf("job %s not marked recovered: %v", id, done)
		}
	}

	// Checkpoint resume: the blocker's resumed run computed strictly fewer
	// cells than a cold run of the identical alignment.
	if got := s2.metrics.CheckpointRestores.Load(); got < 1 {
		t.Fatalf("checkpoint restores = %d, want >= 1", got)
	}
	blockerResult, _ := blocker["result"].(map[string]any)
	resumedCells := blockerResult["cellsComputed"].(float64)
	seq := strings.Repeat("ACGT", blockerN/4)
	resp, cold := postJSON(t, h2.URL+"/v1/align", fmt.Sprintf(
		`{"a":%q,"b":%q,"matrix":"dna","gap":{"extend":-4},"workers":1,"algorithm":"fastlsa"}`, seq, seq))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold reference align: status %d %v", resp.StatusCode, cold)
	}
	if coldCells := cold["cellsComputed"].(float64); resumedCells >= coldCells {
		t.Fatalf("resumed run computed %v cells, cold run %v — no work was saved", resumedCells, coldCells)
	}
	if blockerResult["score"].(float64) != cold["score"].(float64) {
		t.Fatalf("resumed score %v != cold score %v", blockerResult["score"], cold["score"])
	}

	// The journal and recovery metric families are exposed.
	mresp, err := http.Get(h2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	for _, fam := range []string{
		"fastlsa_journal_appends_total", "fastlsa_journal_bytes_total",
		"fastlsa_jobs_recovered_total 19", "fastlsa_jobs_abandoned_total",
		"fastlsa_recovery_in_progress 0", "fastlsa_align_checkpoint_restores_total",
	} {
		if !strings.Contains(string(body), fam) {
			t.Fatalf("/metrics missing %q", fam)
		}
	}

	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s2.shutdown(dctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

// TestIdempotencyKeyAcrossCrash: retrying a submission with the same
// Idempotency-Key returns the existing job — before the crash from the
// engine, after the crash from the rebuilt journal index.
func TestIdempotencyKeyAcrossCrash(t *testing.T) {
	dir := t.TempDir()
	s1, h1 := durableServer(t, dir, 1)

	post := func(base string) (int, map[string]any) {
		req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", strings.NewReader(paperJob))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", "idem-test-1")
		resp, out := doRequest(t, req)
		return resp.StatusCode, out
	}

	status, first := post(h1.URL)
	if status != http.StatusAccepted {
		t.Fatalf("first submit: status %d %v", status, first)
	}
	id := first["id"].(string)
	pollJob(t, h1.URL+"/v1/jobs/"+id, "succeeded", 10*time.Second)

	// Same key, same server: no duplicate job.
	if status, retry := post(h1.URL); status != http.StatusAccepted || retry["id"] != id {
		t.Fatalf("pre-crash retry: status %d %v, want id %s", status, retry, id)
	}

	crashServer(t, s1, h1)
	s2, h2 := durableServer(t, dir, 1)

	// Same key after the crash: the journalled terminal job answers; nothing
	// is re-enqueued.
	status, retry := post(h2.URL)
	if status != http.StatusAccepted || retry["id"] != id || retry["state"] != "succeeded" {
		t.Fatalf("post-crash retry: status %d %v, want id %s succeeded", status, retry, id)
	}
	if got := s2.eng.Stats().Submitted; got != 0 {
		t.Fatalf("post-crash retry enqueued %d jobs, want 0", got)
	}
}

// TestCancelDuringRecovery: a job that was replayed from the journal but has
// not started yet can be cancelled like any other; the cancellation is
// idempotent, reaches the journal as a terminal record, and the job stays
// dead across the next restart.
func TestCancelDuringRecovery(t *testing.T) {
	dir := t.TempDir()
	s1, h1 := durableServer(t, dir, 1)

	blockerID := submitJob(t, h1.URL, slowAlignJob(blockerN))
	pollJob(t, h1.URL+"/v1/jobs/"+blockerID, "running", 10*time.Second)
	victimID := submitJob(t, h1.URL, paperJob)
	crashServer(t, s1, h1)

	// After the restart the blocker occupies the single worker again, so the
	// victim is a recovered-but-not-started job.
	s2, h2 := durableServer(t, dir, 1)
	resp, out := doJSON(t, http.MethodDelete, h2.URL+"/v1/jobs/"+victimID, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d: %v", resp.StatusCode, out)
	}
	pollJob(t, h2.URL+"/v1/jobs/"+victimID, "cancelled", 10*time.Second)
	// Idempotent: a second DELETE is a no-op, not an error.
	if resp, out := doJSON(t, http.MethodDelete, h2.URL+"/v1/jobs/"+victimID, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat cancel status %d: %v", resp.StatusCode, out)
	}
	if resp, _ := doJSON(t, http.MethodDelete, h2.URL+"/v1/jobs/"+blockerID, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("blocker cancel status %d", resp.StatusCode)
	}
	pollJob(t, h2.URL+"/v1/jobs/"+blockerID, "cancelled", 10*time.Second)
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s2.shutdown(dctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	// Third boot: both cancellations were journalled as terminal, so nothing
	// resurrects.
	s3, h3 := durableServer(t, dir, 1)
	if got := s3.eng.Stats().Recovered; got != 0 {
		t.Fatalf("recovered = %d after clean cancels, want 0", got)
	}
	resp, out = doJSON(t, http.MethodGet, h3.URL+"/v1/jobs/"+victimID, "")
	if resp.StatusCode != http.StatusOK || out["state"] != "cancelled" {
		t.Fatalf("victim after third boot: status %d %v, want cancelled", resp.StatusCode, out)
	}
}

// TestReadyzRecovering: while replay is marked in progress the readiness
// probe reports {"phase":"recovering"}, submissions are rejected 503, and
// the fastlsa_recovery_in_progress gauge reads 1.
func TestReadyzRecovering(t *testing.T) {
	s, h := durableServer(t, t.TempDir(), 1)
	s.recovering.Store(true)

	resp, out := doJSON(t, http.MethodGet, h.URL+"/readyz", "")
	if resp.StatusCode != http.StatusServiceUnavailable || out["phase"] != "recovering" {
		t.Fatalf("readyz during recovery: status %d %v", resp.StatusCode, out)
	}
	resp, out = doJSON(t, http.MethodPost, h.URL+"/v1/jobs", paperJob)
	if resp.StatusCode != http.StatusServiceUnavailable || out["phase"] != "recovering" {
		t.Fatalf("submit during recovery: status %d %v", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("recovering 503 carries no Retry-After")
	}
	mresp, err := http.Get(h.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(body), "fastlsa_recovery_in_progress 1") {
		t.Fatal("gauge not 1 during recovery")
	}

	s.recovering.Store(false)
	if resp, out := doJSON(t, http.MethodGet, h.URL+"/readyz", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after recovery: status %d %v", resp.StatusCode, out)
	}
}

// TestIdempotencyKeyRequiresJournal: the header is rejected up front on an
// in-memory server rather than silently ignored.
func TestIdempotencyKeyRequiresJournal(t *testing.T) {
	srv := testServer(t)
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs", strings.NewReader(paperJob))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", "k")
	resp, out := doRequest(t, req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
}

// TestJournalPersistsAcrossCleanRestart: a graceful shutdown drains queued
// jobs to completion, so the next boot recovers nothing but still serves the
// finished jobs' journalled views.
func TestJournalPersistsAcrossCleanRestart(t *testing.T) {
	dir := t.TempDir()
	s1, h1 := durableServer(t, dir, 1)
	id := submitJob(t, h1.URL, paperJob)
	pollJob(t, h1.URL+"/v1/jobs/"+id, "succeeded", 10*time.Second)
	h1.Close()
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.shutdown(dctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	s2, h2 := durableServer(t, dir, 1)
	if got := s2.eng.Stats().Recovered; got != 0 {
		t.Fatalf("recovered = %d after clean shutdown, want 0", got)
	}
	resp, out := doJSON(t, http.MethodGet, h2.URL+"/v1/jobs/"+id, "")
	if resp.StatusCode != http.StatusOK || out["state"] != "succeeded" {
		t.Fatalf("journalled view: status %d %v", resp.StatusCode, out)
	}
}

func doRequest(t *testing.T, req *http.Request) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	if err := decodeBody(resp, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp, out
}

func decodeBody(resp *http.Response, out *map[string]any) error {
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if len(b) == 0 {
		return nil
	}
	return json.Unmarshal(b, out)
}
