package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fastlsa"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(newServer(serverConfig{DefaultWorkers: 1}))
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url string, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp, out
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestMatrices(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/v1/matrices")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) < 5 {
		t.Fatalf("only %d matrices listed", len(out))
	}
}

// TestAlignPaperExample drives the Figure 1 example through the HTTP API.
func TestAlignPaperExample(t *testing.T) {
	srv := testServer(t)
	resp, out := postJSON(t, srv.URL+"/v1/align", `{
		"a": "TDVLKAD", "b": "TLDKLLKD",
		"matrix": "table1", "gap": {"extend": -10},
		"includeRows": true
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if out["score"].(float64) != 82 {
		t.Fatalf("score = %v, want 82", out["score"])
	}
	if out["rowA"] == "" || out["cigar"] == "" {
		t.Fatalf("missing rows/cigar: %v", out)
	}
}

func TestAlignModesAndEngines(t *testing.T) {
	srv := testServer(t)
	for _, body := range []string{
		`{"a":"ACGTACGT","b":"ACGAACGT","matrix":"dna","gap":{"extend":-4}}`,
		`{"a":"ACGTACGT","b":"ACGAACGT","matrix":"dna","gap":{"extend":-4},"algorithm":"fm"}`,
		`{"a":"ACGTACGT","b":"ACGAACGT","matrix":"dna","gap":{"extend":-4},"algorithm":"hirschberg"}`,
		`{"a":"ACGTACGT","b":"ACGAACGT","matrix":"dna","gap":{"extend":-4},"algorithm":"compact"}`,
		`{"a":"ACGTACGT","b":"ACGAACGT","matrix":"dna","gap":{"extend":-4},"mode":"overlap"}`,
		`{"a":"ACGTACGT","b":"ACGAACGT","matrix":"blosum62","alphabet":"dna","gap":{"open":-6,"extend":-1}}`,
	} {
		resp, out := postJSON(t, srv.URL+"/v1/align", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("body %s -> status %d: %v", body, resp.StatusCode, out)
		}
	}
}

func TestAlignLocalEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, out := postJSON(t, srv.URL+"/v1/align", `{
		"a": "TTTTACGTACGTTTTT", "b": "GGGGGACGTACGTGGG",
		"matrix": "dna", "gap": {"extend": -4}, "local": true, "includeRows": true
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if out["score"].(float64) < 40 {
		t.Fatalf("local score %v too low", out["score"])
	}
	if out["local"] == nil {
		t.Fatal("missing local span")
	}
}

func TestAlignValidation(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		body string
		want int
	}{
		{`not json`, http.StatusBadRequest},
		{`{"a":"ACGT","b":"ACGU","matrix":"dna"}`, http.StatusBadRequest},  // bad residue
		{`{"a":"ACGT","b":"ACGT","matrix":"warp"}`, http.StatusBadRequest}, // bad matrix
		{`{"a":"ACGT","b":"ACGT","matrix":"dna","mode":"x"}`, http.StatusBadRequest},
		{`{"a":"ACGT","b":"ACGT","matrix":"dna","algorithm":"x"}`, http.StatusBadRequest},
		{`{"a":"ACGT","b":"ACGT","matrix":"dna","gap":{"extend":4}}`, http.StatusUnprocessableEntity},
		// A client-chosen memory budget the run cannot fit is the client's
		// problem (422), not a server bug.
		{`{"a":"ACGTACGTACGTACGTACGT","b":"ACGTACGTACGTACGTACGT","matrix":"dna","gap":{"extend":-4},"algorithm":"fm","memoryBudget":4}`, http.StatusUnprocessableEntity},
		{`{"a":"ACGT","b":"ACGT","matrix":"dna","gap":{"extend":-4},"local":true,"mode":"overlap"}`, http.StatusOK},
	}
	for _, tc := range cases {
		resp, out := postJSON(t, srv.URL+"/v1/align", tc.body)
		if resp.StatusCode != tc.want {
			t.Fatalf("body %q -> status %d (want %d): %v", tc.body, resp.StatusCode, tc.want, out)
		}
	}
}

// TestErrStatusClassification pins the error→status mapping: 422 only for
// known bad-input failures, 500 for anything unrecognized (an internal
// invariant failure must not be reported as the client's fault).
func TestErrStatusClassification(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{fastlsa.ErrQueueFull, http.StatusServiceUnavailable},
		{fastlsa.ErrEngineClosed, http.StatusServiceUnavailable},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{context.Canceled, http.StatusServiceUnavailable},
		{fastlsa.ErrInvalidInput, http.StatusUnprocessableEntity},
		{fmt.Errorf("wrapped: %w", fastlsa.ErrInvalidInput), http.StatusUnprocessableEntity},
		{fastlsa.ErrBudgetExceeded, http.StatusUnprocessableEntity},
		{errors.New("core: reverse scan found 3, forward 5"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := errStatus(tc.err); got != tc.want {
			t.Errorf("errStatus(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

func TestAlignSequenceLimit(t *testing.T) {
	srv := httptest.NewServer(newServer(serverConfig{MaxSequenceLen: 8, DefaultWorkers: 1}))
	defer srv.Close()
	resp, _ := postJSON(t, srv.URL+"/v1/align",
		`{"a":"ACGTACGTACGT","b":"ACGT","matrix":"dna","gap":{"extend":-4}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestMSAEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, out := postJSON(t, srv.URL+"/v1/msa", `{
		"matrix": "dna", "gap": {"extend": -6},
		"sequences": [
			{"id": "x", "letters": "ACGTACGTACGTACGT"},
			{"id": "y", "letters": "ACGTTCGTACGAACGT"},
			{"id": "z", "letters": "ACGTACGAACGTACG"}
		]
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	rows := out["rows"].([]any)
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if out["tree"] == "" || out["columns"].(float64) < 16 {
		t.Fatalf("bad msa response: %v", out)
	}
}

func TestMSAValidation(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		body string
		want int
	}{
		{`{}`, http.StatusBadRequest},
		{`{"sequences":[{"letters":"ACGT"}]}`, http.StatusBadRequest},
		{`{"matrix":"x","sequences":[{"letters":"AC"},{"letters":"AC"}]}`, http.StatusBadRequest},
		{`{"matrix":"dna","sequences":[{"letters":"AC"},{"letters":"AU"}]}`, http.StatusBadRequest},
		{`{"matrix":"dna","gap":{"open":-5,"extend":-1},"sequences":[{"letters":"AC"},{"letters":"AC"}]}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		resp, out := postJSON(t, srv.URL+"/v1/msa", tc.body)
		if resp.StatusCode != tc.want {
			t.Fatalf("body %q -> status %d (want %d): %v", tc.body, resp.StatusCode, tc.want, out)
		}
	}
	// Family-size limit.
	small := httptest.NewServer(newServer(serverConfig{MaxMSASequences: 2, DefaultWorkers: 1}))
	defer small.Close()
	resp, _ := postJSON(t, small.URL+"/v1/msa",
		`{"matrix":"dna","gap":{"extend":-4},"sequences":[{"letters":"AC"},{"letters":"AC"},{"letters":"AC"}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("family limit not enforced: %d", resp.StatusCode)
	}
}

func TestSearchEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, out := postJSON(t, srv.URL+"/v1/search", `{
		"matrix": "dna", "gap": {"extend": -12},
		"query": "ACGTACGTACGTACGTACGTACGTACGTACGT",
		"database": [
			{"id": "noise", "letters": "TTGGCCAATTGGCCAATTGGCCAATTGGCCAA"},
			{"id": "match", "letters": "GGGGACGTACGTACGTACGTACGTACGTACGTACGTGGGG"}
		],
		"topK": 3
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	hits := out["hits"].([]any)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	top := hits[0].(map[string]any)
	if top["id"] != "match" {
		t.Fatalf("top hit %v", top)
	}
	if top["cigar"] == "" {
		t.Fatal("top hit missing cigar")
	}
}

func TestSearchEndpointWithStats(t *testing.T) {
	srv := testServer(t)
	resp, out := postJSON(t, srv.URL+"/v1/search", `{
		"matrix": "dna", "gap": {"extend": -12},
		"query": "ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT",
		"database": [{"id": "m", "letters": "ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT"}],
		"fitStats": true, "statsSeed": 4
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if out["stats"] == nil {
		t.Fatal("missing fitted stats")
	}
	top := out["hits"].([]any)[0].(map[string]any)
	if top["eValue"].(float64) > 1e-6 {
		t.Fatalf("perfect match e-value %v", top["eValue"])
	}
}

func TestSearchEndpointValidation(t *testing.T) {
	srv := testServer(t)
	for body, want := range map[string]int{
		`{}`:                           http.StatusBadRequest,
		`{"query":"AC","database":[]}`: http.StatusBadRequest,
		`{"query":"","database":[{"letters":"AC"}],"matrix":"dna"}`:                                       http.StatusBadRequest,
		`{"query":"AU","database":[{"letters":"AC"}],"matrix":"dna"}`:                                     http.StatusBadRequest,
		`{"query":"AC","database":[{"letters":"AU"}],"matrix":"dna"}`:                                     http.StatusBadRequest,
		`{"query":"AC","database":[{"letters":"AC"}],"matrix":"nope"}`:                                    http.StatusBadRequest,
		`{"query":"AC","database":[{"letters":"AC"}],"matrix":"dna","gap":{"open":-5,"extend":-1}}`:       http.StatusBadRequest,
		`{"query":"AC","database":[{"letters":"AC"}],"matrix":"dna","gap":{"extend":-1},"fitStats":true}`: http.StatusUnprocessableEntity,
	} {
		resp, out := postJSON(t, srv.URL+"/v1/search", body)
		if resp.StatusCode != want {
			t.Fatalf("body %q -> %d (want %d): %v", body, resp.StatusCode, want, out)
		}
	}
}
