package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fastlsa"
)

// testCorpus builds a small deterministic DNA corpus: background sequences
// plus one exact copy of the query planted at a known position.
func testCorpus(t *testing.T, n int) (*fastlsa.Corpus, *fastlsa.Sequence, int) {
	t.Helper()
	const length = 200
	seqs := make([]*fastlsa.Sequence, n)
	for i := range seqs {
		seqs[i] = fastlsa.RandomSequence("bg", length, fastlsa.DNA, int64(i+1))
	}
	query := fastlsa.RandomSequence("needle", length, fastlsa.DNA, 999)
	planted := n / 2
	dup, err := fastlsa.NewSequence("planted", query.String(), fastlsa.DNA)
	if err != nil {
		t.Fatal(err)
	}
	seqs[planted] = dup
	corpus, err := fastlsa.NewCorpus(seqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	return corpus, query, planted
}

func corpusServer(t *testing.T, cfg serverConfig) (*httptest.Server, *fastlsa.Sequence, int) {
	t.Helper()
	corpus, query, planted := testCorpus(t, 20)
	cfg.Corpus = corpus
	if cfg.DefaultWorkers == 0 {
		cfg.DefaultWorkers = 1
	}
	srv := httptest.NewServer(newServer(cfg))
	t.Cleanup(srv.Close)
	return srv, query, planted
}

// readNDJSON decodes every line of an NDJSON body into loosely-typed maps.
func readNDJSON(t *testing.T, resp *http.Response) []map[string]any {
	t.Helper()
	var events []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func TestStreamSearchGET(t *testing.T) {
	srv, query, planted := corpusServer(t, serverConfig{})
	resp, err := http.Get(srv.URL + "/v1/search?q=" + query.String() + "&topK=3&minScore=100")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := readNDJSON(t, resp)
	if len(events) < 3 {
		t.Fatalf("only %d events: %v", len(events), events)
	}
	if events[0]["type"] != "query" || events[0]["corpus"].(float64) != 20 {
		t.Fatalf("first event = %v", events[0])
	}
	last := events[len(events)-1]
	if last["type"] != "summary" {
		t.Fatalf("last event = %v", last)
	}
	hits := last["hits"].([]any)
	if len(hits) == 0 {
		t.Fatal("summary has no hits")
	}
	best := hits[0].(map[string]any)
	if int(best["index"].(float64)) != planted || best["id"] != "planted" {
		t.Fatalf("best hit = %v, want planted index %d", best, planted)
	}
	if best["cigar"] == nil || best["cigar"] == "" {
		t.Fatalf("best hit missing alignment: %v", best)
	}
	// The funnel rides on the summary: every corpus entry was scanned by the
	// filter, and the planted homolog was streamed as a provisional hit
	// before the summary.
	if int(last["scanned"].(float64)) != 20 {
		t.Fatalf("funnel scanned = %v, want 20", last["scanned"])
	}
	streamed := false
	for _, ev := range events[1 : len(events)-1] {
		if ev["type"] != "hit" {
			t.Fatalf("mid-stream event %v", ev)
		}
		if int(ev["index"].(float64)) == planted {
			streamed = true
		}
	}
	if !streamed {
		t.Fatal("planted hit never streamed before the summary")
	}
}

func TestStreamSearchPOST(t *testing.T) {
	srv, query, _ := corpusServer(t, serverConfig{})
	body := `{"query":"` + query.String() + `","topK":2,"minScore":100}`
	resp, err := http.Post(srv.URL+"/v1/search?stream=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	events := readNDJSON(t, resp)
	if events[0]["type"] != "query" || events[len(events)-1]["type"] != "summary" {
		t.Fatalf("stream shape wrong: %v", events)
	}
}

func TestStreamSearchPOSTInlineDatabaseRejected(t *testing.T) {
	srv, query, _ := corpusServer(t, serverConfig{})
	body := `{"query":"` + query.String() + `","database":[{"id":"d","letters":"ACGT"}]}`
	resp, err := http.Post(srv.URL+"/v1/search?stream=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestSearchGETWithoutCorpus(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/v1/search?q=ACGTACGT")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}
}

func TestSearchGETValidation(t *testing.T) {
	srv, query, _ := corpusServer(t, serverConfig{})
	for _, qs := range []string{
		"?q=",                                  // empty query
		"?q=ACGT&topK=x",                       // bad number
		"?q=ACXT",                              // invalid residue
		"?q=" + query.String() + "&matrix=blosum62", // wrong alphabet
	} {
		resp, err := http.Get(srv.URL + "/v1/search" + qs)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s -> status %d, want 400", qs, resp.StatusCode)
		}
	}
}

// TestCorpusPOSTBuffered pins the non-streaming corpus path: a POST with no
// inline database searches the loaded corpus and reports the filter funnel.
func TestCorpusPOSTBuffered(t *testing.T) {
	srv, query, planted := corpusServer(t, serverConfig{})
	resp, out := postJSON(t, srv.URL+"/v1/search", `{"query":"`+query.String()+`","topK":3,"minScore":100}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	hits := out["hits"].([]any)
	if len(hits) == 0 {
		t.Fatalf("no hits: %v", out)
	}
	if int(hits[0].(map[string]any)["index"].(float64)) != planted {
		t.Fatalf("best hit %v, want index %d", hits[0], planted)
	}
	funnel, ok := out["funnel"].(map[string]any)
	if !ok {
		t.Fatalf("missing funnel: %v", out)
	}
	if int(funnel["scanned"].(float64)) != 20 {
		t.Fatalf("funnel = %v, want scanned 20", funnel)
	}
}

func TestSearchRateLimit(t *testing.T) {
	srv, query, _ := corpusServer(t, serverConfig{SearchRate: 0.01, SearchBurst: 2})
	url := srv.URL + "/v1/search?q=" + query.String() + "&topK=1&minScore=100"
	for i := 0; i < 2; i++ {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("missing Retry-After header")
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["retryAfterMs"] == nil || out["retryAfterMs"].(float64) <= 0 {
		t.Fatalf("missing retryAfterMs hint: %v", out)
	}
}

func TestRateLimiterRefill(t *testing.T) {
	l := newRateLimiter(10, 1) // 10 tokens/s, burst 1
	now := time.Unix(0, 0)
	if ok, _ := l.allow("a", now); !ok {
		t.Fatal("first request should pass")
	}
	if ok, wait := l.allow("a", now); ok {
		t.Fatal("second immediate request should be limited")
	} else if wait < time.Second {
		t.Fatalf("Retry-After %v below whole-second floor", wait)
	}
	if ok, _ := l.allow("a", now.Add(200*time.Millisecond)); !ok {
		t.Fatal("token should have accrued after 200ms at 10/s")
	}
	// Distinct clients meter independently.
	if ok, _ := l.allow("b", now); !ok {
		t.Fatal("fresh client should pass")
	}
	if l.limited.Load() != 1 {
		t.Fatalf("limited counter = %d, want 1", l.limited.Load())
	}
}

func TestRateLimiterDisabled(t *testing.T) {
	var l *rateLimiter // rate 0 -> newRateLimiter returns nil
	if l = newRateLimiter(0, 5); l != nil {
		t.Fatal("rate 0 should disable limiting")
	}
	if ok, _ := l.allow("anyone", time.Now()); !ok {
		t.Fatal("nil limiter must allow")
	}
}

func TestClientKey(t *testing.T) {
	r := httptest.NewRequest("GET", "/v1/search", nil)
	r.RemoteAddr = "10.1.2.3:5555"
	if k := clientKey(r); k != "10.1.2.3" {
		t.Fatalf("clientKey = %q", k)
	}
	r.Header.Set("X-Forwarded-For", "203.0.113.7, 10.0.0.1")
	if k := clientKey(r); k != "203.0.113.7" {
		t.Fatalf("clientKey with XFF = %q", k)
	}
}

// TestStreamSearchMetrics verifies the search funnel counters surface on
// /metrics after a corpus search.
func TestStreamSearchMetrics(t *testing.T) {
	srv, query, _ := corpusServer(t, serverConfig{})
	resp, err := http.Get(srv.URL + "/v1/search?q=" + query.String() + "&topK=1&minScore=100")
	if err != nil {
		t.Fatal(err)
	}
	readNDJSON(t, resp)
	resp.Body.Close()

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(mresp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	body := sb.String()
	for _, metric := range []string{
		"fastlsa_search_scanned_total",
		"fastlsa_search_candidates_total",
		"fastlsa_search_examined_total",
		"fastlsa_search_rate_limited_total",
		"fastlsa_corpus_entries 20",
	} {
		if !strings.Contains(body, metric) {
			t.Fatalf("/metrics missing %q", metric)
		}
	}
}
