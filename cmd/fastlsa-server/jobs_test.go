package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func doJSON(t *testing.T, method, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

// slowAlignJob is a job body whose alignment is large enough to stay busy
// for a while (n x n cells), so cancellation and queue pressure are
// observable. The FastLSA backend is pinned: under auto the router would
// send this identical pair to WFA, which finishes it in microseconds.
func slowAlignJob(n int) string {
	seq := strings.Repeat("ACGT", n/4)
	return fmt.Sprintf(`{"type":"align","align":{"a":%q,"b":%q,"matrix":"dna","gap":{"extend":-4},"workers":1,"algorithm":"fastlsa"}}`, seq, seq)
}

func pollJob(t *testing.T, url string, want string, deadline time.Duration) map[string]any {
	t.Helper()
	var last map[string]any
	for end := time.Now().Add(deadline); time.Now().Before(end); {
		resp, out := doJSON(t, http.MethodGet, url, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d: %v", resp.StatusCode, out)
		}
		last = out
		if out["state"] == want {
			return out
		}
		if st, _ := out["state"].(string); st == "succeeded" || st == "failed" || st == "cancelled" {
			t.Fatalf("job reached %q, want %q: %v", st, want, out)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job never reached %q (last: %v)", want, last)
	return nil
}

// TestJobLifecycle submits an async align job, polls it to completion, and
// reads the result through GET /v1/jobs/{id}.
func TestJobLifecycle(t *testing.T) {
	srv := testServer(t)
	resp, out := postJSON(t, srv.URL+"/v1/jobs", `{
		"type": "align", "priority": 3,
		"align": {"a": "TDVLKAD", "b": "TLDKLLKD", "matrix": "table1", "gap": {"extend": -10}}
	}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", resp.StatusCode, out)
	}
	id, _ := out["id"].(string)
	if id == "" {
		t.Fatalf("no job id: %v", out)
	}
	if out["priority"].(float64) != 3 {
		t.Fatalf("priority not echoed: %v", out)
	}

	done := pollJob(t, srv.URL+"/v1/jobs/"+id, "succeeded", 5*time.Second)
	result, _ := done["result"].(map[string]any)
	if result == nil || result["score"].(float64) != 82 {
		t.Fatalf("bad result: %v", done)
	}

	// The job shows up in the listing (without its result).
	lresp, _ := doJSON(t, http.MethodGet, srv.URL+"/v1/jobs", "")
	if lresp.StatusCode != http.StatusOK {
		t.Fatalf("list status %d", lresp.StatusCode)
	}
}

// TestJobCancellation cancels a long-running job through DELETE and watches
// it land in the cancelled state.
func TestJobCancellation(t *testing.T) {
	srv := testServer(t)
	resp, out := postJSON(t, srv.URL+"/v1/jobs", slowAlignJob(8000))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", resp.StatusCode, out)
	}
	id := out["id"].(string)

	dresp, dout := doJSON(t, http.MethodDelete, srv.URL+"/v1/jobs/"+id, "")
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d: %v", dresp.StatusCode, dout)
	}
	done := pollJob(t, srv.URL+"/v1/jobs/"+id, "cancelled", 5*time.Second)
	if done["error"] == "" {
		t.Fatalf("cancelled job should carry an error: %v", done)
	}
}

// TestJobQueueFull saturates a 1-worker, depth-1 engine with slow jobs and
// requires admission control to shed load with 503.
func TestJobQueueFull(t *testing.T) {
	srv := httptest.NewServer(newServer(serverConfig{
		DefaultWorkers: 1, EngineWorkers: 1, QueueDepth: 1,
	}))
	defer srv.Close()

	accepted, rejected := 0, 0
	for i := 0; i < 6; i++ {
		resp, _ := postJSON(t, srv.URL+"/v1/jobs", slowAlignJob(6000))
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
		case http.StatusServiceUnavailable:
			rejected++
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if accepted == 0 || rejected == 0 {
		t.Fatalf("accepted=%d rejected=%d, want both > 0", accepted, rejected)
	}
	sresp, stats := doJSON(t, http.MethodGet, srv.URL+"/v1/stats", "")
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", sresp.StatusCode)
	}
	if stats["rejected"].(float64) < float64(rejected) {
		t.Fatalf("stats rejected %v < %d observed", stats["rejected"], rejected)
	}
}

func TestJobNotFound(t *testing.T) {
	srv := testServer(t)
	if resp, _ := doJSON(t, http.MethodGet, srv.URL+"/v1/jobs/job-999", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := doJSON(t, http.MethodDelete, srv.URL+"/v1/jobs/job-999", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delete: status %d, want 404", resp.StatusCode)
	}
}

func TestJobValidation(t *testing.T) {
	srv := testServer(t)
	for body, want := range map[string]int{
		`not json`:          http.StatusBadRequest,
		`{"type":"warp"}`:   http.StatusBadRequest,
		`{"type":"align"}`:  http.StatusBadRequest, // missing align body
		`{"type":"msa"}`:    http.StatusBadRequest,
		`{"type":"search"}`: http.StatusBadRequest,
		`{"type":"align","align":{"a":"ACGU","b":"ACGT","matrix":"dna"}}`: http.StatusBadRequest,
	} {
		resp, out := postJSON(t, srv.URL+"/v1/jobs", body)
		if resp.StatusCode != want {
			t.Fatalf("body %q -> %d (want %d): %v", body, resp.StatusCode, want, out)
		}
	}
}

// TestBatchEndpoint aligns three pairs in one atomically-admitted batch.
func TestBatchEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, out := postJSON(t, srv.URL+"/v1/batch", `{
		"matrix": "table1", "gap": {"extend": -10},
		"pairs": [
			{"a": "TDVLKAD", "b": "TLDKLLKD"},
			{"a": "TDVLKAD", "b": "TDVLKAD"},
			{"a": "KKKK", "b": "DDDD"}
		]
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	units, _ := out["units"].([]any)
	if len(units) != 3 {
		t.Fatalf("units = %v", out)
	}
	first := units[0].(map[string]any)
	res, _ := first["result"].(map[string]any)
	if res == nil || res["score"].(float64) != 82 {
		t.Fatalf("unit 0: %v", first)
	}
}

// TestBatchAtomicRejection: a batch larger than the queue bound is rejected
// whole with 503 — no partial admission.
func TestBatchAtomicRejection(t *testing.T) {
	srv := httptest.NewServer(newServer(serverConfig{
		DefaultWorkers: 1, EngineWorkers: 1, QueueDepth: 2,
	}))
	defer srv.Close()
	resp, out := postJSON(t, srv.URL+"/v1/batch", `{
		"matrix": "dna", "gap": {"extend": -4},
		"pairs": [
			{"a": "ACGT", "b": "ACGT"}, {"a": "ACGT", "b": "ACGT"},
			{"a": "ACGT", "b": "ACGT"}
		]
	}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (want 503): %v", resp.StatusCode, out)
	}
	_, stats := doJSON(t, http.MethodGet, srv.URL+"/v1/stats", "")
	if stats["submitted"].(float64) != 0 {
		t.Fatalf("partial admission: %v", stats)
	}
}

func TestBatchValidation(t *testing.T) {
	srv := httptest.NewServer(newServer(serverConfig{DefaultWorkers: 1, MaxBatch: 2}))
	defer srv.Close()
	for body, want := range map[string]int{
		`{"matrix":"dna","pairs":[]}`: http.StatusBadRequest,
		`{"matrix":"dna","gap":{"extend":-4},"pairs":[{"a":"A","b":"A"},{"a":"A","b":"A"},{"a":"A","b":"A"}]}`: http.StatusBadRequest, // over MaxBatch
		`{"matrix":"dna","gap":{"extend":-4},"pairs":[{"a":"ACGU","b":"A"}]}`:                                  http.StatusBadRequest, // bad residue
	} {
		resp, out := postJSON(t, srv.URL+"/v1/batch", body)
		if resp.StatusCode != want {
			t.Fatalf("body %q -> %d (want %d): %v", body, resp.StatusCode, want, out)
		}
	}
}

// TestStatsEndpoint sanity-checks the counters after some traffic.
func TestStatsEndpoint(t *testing.T) {
	srv := testServer(t)
	postJSON(t, srv.URL+"/v1/align", `{"a":"ACGT","b":"ACGT","matrix":"dna","gap":{"extend":-4}}`)
	resp, out := doJSON(t, http.MethodGet, srv.URL+"/v1/stats", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out["workers"].(float64) < 1 {
		t.Fatalf("workers: %v", out)
	}
	if out["submitted"].(float64) < 1 || out["succeeded"].(float64) < 1 {
		t.Fatalf("sync traffic not routed through the engine: %v", out)
	}
	al, ok := out["alignment"].(map[string]any)
	if !ok {
		t.Fatalf("stats lack the alignment counters: %v", out)
	}
	if al["cells"].(float64) < 1 {
		t.Fatalf("alignment work not accumulated into /v1/stats: %v", al)
	}
	// The degradation counters must be present (zero is fine: nothing was
	// memory-constrained here).
	for _, key := range []string{"mesh_shrinks", "seq_fill_fallbacks", "planned_fill_tiles", "executed_fill_tiles"} {
		if _, ok := al[key]; !ok {
			t.Fatalf("alignment stats lack %q: %v", key, al)
		}
	}
}
