package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"fastlsa"
	"fastlsa/internal/obs"
)

// wantsStream reports whether a /v1/search request asked for the NDJSON
// stream: every GET does, a POST opts in with ?stream=1, "stream": true, or
// an application/x-ndjson Accept header. main.go routes streaming requests
// around the buffering TimeoutHandler using the same predicate.
func wantsStream(r *http.Request) bool {
	if r.Method == http.MethodGet {
		return true
	}
	if r.URL.Query().Get("stream") == "1" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// streamWriter serialises NDJSON events onto a chunked response, flushing
// after every line so hits reach the client as they are found. Events come
// from two goroutine families — the handler itself and the search workers'
// OnHit callbacks, which can outlive the handler when a client disconnects —
// so every write holds the lock and a closed writer drops late events.
type streamWriter struct {
	mu     sync.Mutex
	enc    *json.Encoder
	flush  func()
	closed bool
}

func newStreamWriter(w http.ResponseWriter) *streamWriter {
	sw := &streamWriter{enc: json.NewEncoder(w), flush: func() {}}
	if f, ok := w.(http.Flusher); ok {
		sw.flush = f.Flush
	}
	return sw
}

// send writes one event line and flushes it. No-op once closed.
func (sw *streamWriter) send(v any) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.closed {
		return
	}
	if err := sw.enc.Encode(v); err != nil {
		sw.closed = true
		return
	}
	sw.flush()
}

func (sw *streamWriter) close() {
	sw.mu.Lock()
	sw.closed = true
	sw.mu.Unlock()
}

// Stream events. Every line is one JSON object tagged by "type":
//
//	{"type":"query", ...}    echo of the parsed request, sent first
//	{"type":"hit", ...}      a provisional hit entering the running top-K
//	{"type":"summary", ...}  final ranked hits (with alignments) + funnel
//	{"type":"error", ...}    terminal failure after the stream began
type streamQueryEvent struct {
	Type     string `json:"type"`
	ID       string `json:"id"`
	Corpus   int    `json:"corpus"`
	Q        int    `json:"q"`
	TopK     int    `json:"topK"`
	MinScore int64  `json:"minScore"`
}

type streamHitEvent struct {
	Type     string  `json:"type"`
	Index    int     `json:"index"`
	ID       string  `json:"id"`
	Score    int64   `json:"score"`
	EValue   float64 `json:"eValue,omitempty"`
	BitScore float64 `json:"bitScore,omitempty"`
}

type streamSummaryEvent struct {
	Type string      `json:"type"`
	Hits []searchHit `json:"hits"`
	funnelInfo
	Stats     *statsInfo `json:"stats,omitempty"`
	ElapsedMs int64      `json:"elapsedMs"`
}

type streamErrorEvent struct {
	Type  string `json:"type"`
	Error string `json:"error"`
}

// corpusQuery is a validated search against the server's loaded corpus,
// shared by the GET handler and the streaming POST branch.
type corpusQuery struct {
	query     *fastlsa.Sequence
	matrix    *fastlsa.Matrix
	gap       fastlsa.Gap
	topK      int
	minScore  int64
	maxEValue float64
	fitStats  bool
	statsSeed int64
	workers   int
}

// corpusQueryFromRequest maps a searchRequest (with no inline database) onto
// the loaded corpus.
func (s *server) corpusQueryFromRequest(req searchRequest) (corpusQuery, error) {
	cq := corpusQuery{
		topK:      req.TopK,
		minScore:  req.MinScore,
		maxEValue: req.MaxEValue,
		fitStats:  req.FitStats,
		statsSeed: req.StatsSeed,
		workers:   req.Workers,
	}
	if err := s.fillCorpusQuery(&cq, req.Query, req.QueryID, req.Matrix, req.Gap); err != nil {
		return corpusQuery{}, err
	}
	return cq, nil
}

// corpusQueryFromURL parses the GET /v1/search query string.
func (s *server) corpusQueryFromURL(r *http.Request) (corpusQuery, error) {
	q := r.URL.Query()
	var cq corpusQuery
	var err error
	atoi := func(name string) (int, error) {
		v := q.Get(name)
		if v == "" {
			return 0, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("invalid %s %q", name, v)
		}
		return n, nil
	}
	if cq.topK, err = atoi("topK"); err != nil {
		return corpusQuery{}, err
	}
	if cq.workers, err = atoi("workers"); err != nil {
		return corpusQuery{}, err
	}
	var n int
	if n, err = atoi("minScore"); err != nil {
		return corpusQuery{}, err
	}
	cq.minScore = int64(n)
	if v := q.Get("maxEValue"); v != "" {
		if cq.maxEValue, err = strconv.ParseFloat(v, 64); err != nil {
			return corpusQuery{}, fmt.Errorf("invalid maxEValue %q", v)
		}
	}
	cq.fitStats = q.Get("fitStats") == "1"
	if v := q.Get("statsSeed"); v != "" {
		if cq.statsSeed, err = strconv.ParseInt(v, 10, 64); err != nil {
			return corpusQuery{}, fmt.Errorf("invalid statsSeed %q", v)
		}
	}
	var gap gapSpec
	if n, err = atoi("gap"); err != nil {
		return corpusQuery{}, err
	}
	gap.Extend = n
	if err := s.fillCorpusQuery(&cq, q.Get("q"), q.Get("id"), q.Get("matrix"), gap); err != nil {
		return corpusQuery{}, err
	}
	return cq, nil
}

// fillCorpusQuery resolves the scoring system against the corpus alphabet
// and validates the query letters.
func (s *server) fillCorpusQuery(cq *corpusQuery, letters, id, matrixName string, gap gapSpec) error {
	alphabet := s.corpus.Seqs[0].Alphabet
	if matrixName == "" {
		matrixName = defaultMatrixFor(alphabet)
	}
	matrix, err := fastlsa.MatrixByName(matrixName)
	if err != nil {
		return err
	}
	if matrix.Alphabet.Name != alphabet.Name {
		return fmt.Errorf("matrix %s is for the %s alphabet; the corpus is %s", matrixName, matrix.Alphabet.Name, alphabet.Name)
	}
	if len(letters) > s.cfg.MaxSequenceLen {
		return fmt.Errorf("query exceeds the %d-residue limit", s.cfg.MaxSequenceLen)
	}
	cq.query, err = fastlsa.NewSequence(orDefault(id, "query"), letters, alphabet)
	if err != nil {
		return err
	}
	if cq.query.Len() == 0 {
		return fmt.Errorf("empty query")
	}
	cq.matrix = matrix
	cq.gap = fastlsa.Linear(-12)
	if gap != (gapSpec{}) {
		if gap.Open != 0 {
			return fmt.Errorf("search supports linear gaps only")
		}
		cq.gap = fastlsa.Linear(gap.Extend)
	}
	if cq.workers == 0 {
		cq.workers = s.cfg.DefaultWorkers
	}
	return nil
}

// defaultMatrixFor picks the natural matrix for a corpus alphabet.
func defaultMatrixFor(a *fastlsa.Alphabet) string {
	switch a.Name {
	case "dna":
		return "dna"
	case "dna-iupac":
		return "dna-iupac"
	default:
		return "blosum62"
	}
}

// handleSearchGET streams a corpus search as NDJSON:
//
//	GET /v1/search?q=ACGT...&topK=5&minScore=1400
func (s *server) handleSearchGET(w http.ResponseWriter, r *http.Request) {
	if !s.allowSearch(w, r) {
		return
	}
	if s.corpus == nil {
		writeErr(w, http.StatusUnprocessableEntity, "no corpus loaded (start the server with -corpus)")
		return
	}
	cq, err := s.corpusQueryFromURL(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.serveSearchStream(w, r, cq)
}

// allowSearch spends one rate-limit token; on exhaustion it answers 429
// with a Retry-After hint and reports false.
func (s *server) allowSearch(w http.ResponseWriter, r *http.Request) bool {
	ok, wait := s.limiter.allow(clientKey(r), time.Now())
	if ok {
		return true
	}
	w.Header().Set("Retry-After", strconv.Itoa(int(wait.Seconds()+0.5)))
	writeJSON(w, http.StatusTooManyRequests, apiError{
		Error:        "search rate limit exceeded",
		RetryAfterMs: wait.Milliseconds(),
	})
	return false
}

// serveSearchStream runs one corpus search through the engine, emitting
// NDJSON events as the scan progresses. The response commits to 200 once the
// query event is written; failures after that point arrive as a terminal
// {"type":"error"} line.
func (s *server) serveSearchStream(w http.ResponseWriter, r *http.Request, cq corpusQuery) {
	if !s.breaker.allow(time.Now()) {
		s.writeTaskErr(w, fmt.Errorf("%w: overload breaker open (p95 queue wait over %s)",
			fastlsa.ErrQueueFull, s.cfg.BreakerWait))
		return
	}
	ctx := r.Context()
	if s.cfg.StreamTimeout > 0 {
		// Streaming bypasses the TimeoutHandler (it buffers whole responses),
		// so the deadline rides on the request context instead.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.StreamTimeout)
		defer cancel()
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // disable proxy buffering
	w.WriteHeader(http.StatusOK)
	sw := newStreamWriter(w)
	defer sw.close()
	sw.send(streamQueryEvent{
		Type: "query", ID: cq.query.ID,
		Corpus: s.corpus.Len(), Q: s.corpus.Index.Q(),
		TopK: cq.topK, MinScore: cq.minScore,
	})

	start := time.Now()
	counters := s.metrics.Derive(nil)
	rec := fastlsa.NewRecorder(0)
	task := s.corpusSearchTask(cq, counters, rec, func(h fastlsa.SearchHit) {
		sw.send(streamHitEvent{
			Type: "hit", Index: h.Index, ID: h.ID, Score: h.Score,
			EValue: h.EValue, BitScore: h.BitScore,
		})
	})
	j, err := s.eng.SubmitFunc("search-stream", task, fastlsa.JobOptions{
		Context:   ctx,
		RequestID: obs.RequestID(r.Context()),
		Recorder:  rec,
	})
	if err != nil {
		sw.send(streamErrorEvent{Type: "error", Error: err.Error()})
		return
	}
	s.watchJob(j)
	res, err := j.Wait(ctx)
	if err != nil {
		sw.send(streamErrorEvent{Type: "error", Error: err.Error()})
		return
	}
	resp := res.(searchResponse)
	sw.send(streamSummaryEvent{
		Type:       "summary",
		Hits:       resp.Hits,
		funnelInfo: *resp.Funnel,
		Stats:      resp.Stats,
		ElapsedMs:  time.Since(start).Milliseconds(),
	})
}

// corpusSearchTask is the engine task for a corpus search: seed filter +
// early-abandon verify + reconstruction, reporting the funnel alongside the
// ranked hits. rec (when non-nil) is the job's flight recorder; onHit may be
// nil (buffered responses).
func (s *server) corpusSearchTask(cq corpusQuery, counters *fastlsa.Counters, rec *fastlsa.Recorder, onHit func(fastlsa.SearchHit)) func(ctx context.Context) (any, error) {
	return func(ctx context.Context) (any, error) {
		opt := fastlsa.SearchOptions{
			Matrix:    cq.matrix,
			Gap:       cq.gap,
			TopK:      cq.topK,
			MinScore:  cq.minScore,
			MaxEValue: cq.maxEValue,
			Workers:   cq.workers,
			Context:   ctx,
			Counters:  counters,
			Recorder:  rec,
			Index:     s.corpus.Index,
			Probe:     &fastlsa.SearchProbe{},
			OnHit:     onHit,
		}
		var resp searchResponse
		if cq.fitStats || cq.maxEValue > 0 {
			params, err := fastlsa.EstimateStatistics(cq.matrix, cq.gap, 0, 0, cq.statsSeed)
			if err != nil {
				return nil, fmt.Errorf("statistics fit: %w", err)
			}
			opt.Stats = &params
			resp.Stats = &statsInfo{Lambda: params.Lambda, K: params.K}
		}
		hits, err := fastlsa.Search(cq.query, s.corpus.Seqs, opt)
		if err != nil {
			return nil, err
		}
		resp.Hits = renderHits(hits)
		resp.Funnel = &funnelInfo{
			Scanned:     opt.Probe.Scanned,
			Candidates:  opt.Probe.Candidates,
			Examined:    counters.SearchExamined.Load(),
			Selectivity: opt.Probe.Selectivity,
		}
		return resp, nil
	}
}

// renderHits converts library hits to their JSON form.
func renderHits(hits []fastlsa.SearchHit) []searchHit {
	out := make([]searchHit, 0, len(hits))
	for _, h := range hits {
		sh := searchHit{
			Index: h.Index, ID: h.ID, Score: h.Score,
			EValue: h.EValue, BitScore: h.BitScore,
		}
		if h.Alignment != nil {
			sh.CIGAR = h.Alignment.Path.CIGAR()
			sh.StartA, sh.EndA = h.Alignment.StartA, h.Alignment.EndA
			sh.StartB, sh.EndB = h.Alignment.StartB, h.Alignment.EndB
		}
		out = append(out, sh)
	}
	return out
}
