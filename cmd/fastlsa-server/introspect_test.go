package main

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fastlsa"
	"fastlsa/internal/fault"
	"fastlsa/internal/obs"
	"fastlsa/internal/seq"
	"fastlsa/internal/testutil"
)

// eventsView mirrors the GET /v1/jobs/{id}/events reply.
type eventsView struct {
	ID    string `json:"id"`
	State string `json:"state"`
	fastlsa.RecorderSnapshot
}

func getEvents(t *testing.T, url string) eventsView {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var v eventsView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode events: %v", err)
	}
	return v
}

// pollAttempts polls a job view until it reports at least n attempts.
func pollAttempts(t *testing.T, url string, n int, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		_, out := doJSON(t, http.MethodGet, url, "")
		if got, _ := out["attempts"].(float64); int(got) >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job never reached %d attempts", n)
}

// degradedAlignBody builds an align request whose parallel fill cannot hold
// its tile mesh inside the memory budget, so the run must take at least one
// degradation-ladder step (mesh shrink or sequential-fill fallback).
func degradedAlignBody(t *testing.T) string {
	t.Helper()
	a, b := testutil.HomologousPair(1500, seq.DNA, 21)
	return fmt.Sprintf(
		`{"a": %q, "b": %q, "matrix": "dna", "gap": {"extend": -4}, "workers": 4, "memoryBudget": 15000}`,
		a.String(), b.String())
}

// TestJobEventsTimelineRetriedDegraded is the acceptance scenario for the
// flight recorder: a retried, memory-degraded job's whole story — admission,
// the injected first-attempt fault, the retry backoff, the degradation step,
// the solver phases and the completion — lands on one ordered timeline served
// by GET /v1/jobs/{id}/events.
func TestJobEventsTimelineRetriedDegraded(t *testing.T) {
	if err := fault.Arm("engine.worker:error", 1); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	defer fault.Disarm()

	srv := httptest.NewServer(newServer(serverConfig{DefaultWorkers: 1, QueueDepth: 16}))
	defer srv.Close()

	body := fmt.Sprintf(`{
		"type": "align",
		"retry": {"maxAttempts": 100, "backoffMs": 1},
		"align": %s
	}`, degradedAlignBody(t))
	resp, out := postJSON(t, srv.URL+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", resp.StatusCode, out)
	}
	id := out["id"].(string)

	// Let the fault strike at least once, then clear it so a later attempt
	// succeeds.
	pollAttempts(t, srv.URL+"/v1/jobs/"+id, 2, 10*time.Second)
	fault.Disarm()
	done := pollJob(t, srv.URL+"/v1/jobs/"+id, "succeeded", 20*time.Second)
	attempts := int(done["attempts"].(float64))
	if attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2", attempts)
	}

	ev := getEvents(t, srv.URL+"/v1/jobs/"+id+"/events")
	if ev.ID != id || ev.State != "succeeded" {
		t.Fatalf("events view id/state = %q/%q, want %q/succeeded", ev.ID, ev.State, id)
	}
	if ev.Total != len(ev.Events)+ev.Dropped {
		t.Fatalf("totalEvents %d != retained %d + dropped %d", ev.Total, len(ev.Events), ev.Dropped)
	}
	if len(ev.Events) == 0 {
		t.Fatal("empty timeline")
	}

	// The timeline brackets: admission first, terminal finish last.
	if first := ev.Events[0]; first.Kind != obs.EvAdmit || first.Detail != "align" {
		t.Errorf("events[0] = %+v, want %s/align", first, obs.EvAdmit)
	}
	last := ev.Events[len(ev.Events)-1]
	if last.Kind != obs.EvFinish || last.Detail != "succeeded" || last.Attempt != attempts {
		t.Errorf("final event = %+v, want %s/succeeded attempt %d", last, obs.EvFinish, attempts)
	}

	// Locate the landmarks and check their order and payloads.
	idx := func(pred func(e fastlsa.RecorderEvent) bool) int {
		for i, e := range ev.Events {
			if pred(e) {
				return i
			}
		}
		return -1
	}
	start1 := idx(func(e fastlsa.RecorderEvent) bool { return e.Kind == obs.EvStart && e.Attempt == 1 })
	retry := idx(func(e fastlsa.RecorderEvent) bool { return e.Kind == obs.EvRetry })
	startN := idx(func(e fastlsa.RecorderEvent) bool { return e.Kind == obs.EvStart && e.Attempt == attempts })
	degrade := idx(func(e fastlsa.RecorderEvent) bool {
		return e.Kind == obs.EvMeshShrink || e.Kind == obs.EvSeqFill
	})
	route := idx(func(e fastlsa.RecorderEvent) bool { return e.Kind == obs.EvRoute })
	phase := idx(func(e fastlsa.RecorderEvent) bool { return e.Kind == obs.EvPhase })
	for name, i := range map[string]int{
		"start attempt 1": start1, "retry": retry, "final start": startN,
		"degradation step": degrade, "route decision": route, "phase span": phase,
	} {
		if i < 0 {
			kinds := make([]string, len(ev.Events))
			for j, e := range ev.Events {
				kinds[j] = e.Kind
			}
			t.Fatalf("timeline lacks a %s event: %v", name, kinds)
		}
	}
	if !(start1 < retry && retry < startN && startN < degrade && startN < phase) {
		t.Errorf("timeline out of order: start1=%d retry=%d startN=%d degrade=%d phase=%d",
			start1, retry, startN, degrade, phase)
	}

	// The retry event carries the injected fault and the backoff it cost.
	re := ev.Events[retry]
	if !strings.Contains(re.Detail, "injected") {
		t.Errorf("retry detail = %q, want the injected fault's error", re.Detail)
	}
	if re.Attempt != 1 || re.Duration <= 0 {
		t.Errorf("retry event = %+v, want attempt 1 with a positive backoff", re)
	}

	// Failed attempts never ran the task (the fault strikes before it), so
	// every solver event sits after the final start.
	for i, e := range ev.Events {
		switch e.Kind {
		case obs.EvPhase, obs.EvRoute, obs.EvMeshShrink, obs.EvSeqFill, obs.EvBudgetFallback:
			if i < startN {
				t.Errorf("solver event %s at index %d precedes the final start (%d)", e.Kind, i, startN)
			}
		}
	}
}

// TestJobViewEventsOptIn: the timeline stays out of the plain job view and
// appears under ?events=1.
func TestJobViewEventsOptIn(t *testing.T) {
	srv := testServer(t)
	resp, out := postJSON(t, srv.URL+"/v1/jobs",
		fmt.Sprintf(`{"type": "align", "align": %s}`, alignBody))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", resp.StatusCode, out)
	}
	id := out["id"].(string)
	pollJob(t, srv.URL+"/v1/jobs/"+id, "succeeded", 10*time.Second)

	_, plain := postJSONGet(t, srv.URL+"/v1/jobs/"+id)
	if _, ok := plain["events"]; ok {
		t.Error("plain job view carries events without ?events=1")
	}
	_, with := postJSONGet(t, srv.URL+"/v1/jobs/"+id+"?events=1")
	evs, ok := with["events"].(map[string]any)
	if !ok {
		t.Fatalf("?events=1 view lacks events: %v", with)
	}
	if total, _ := evs["totalEvents"].(float64); total < 3 {
		t.Errorf("totalEvents = %v, want >= 3 (admit, start, finish)", evs["totalEvents"])
	}

	// Unknown jobs 404 on the events endpoint like on the job view.
	r404, err := http.Get(srv.URL + "/v1/jobs/nonesuch/events")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Errorf("events of unknown job: status %d, want 404", r404.StatusCode)
	}
}

// TestSLOVerdictEndpoint: with an absurdly tight latency objective a single
// align consumes the whole error budget, and /v1/slo reports the breach on
// both burn windows.
func TestSLOVerdictEndpoint(t *testing.T) {
	srv := httptest.NewServer(newServer(serverConfig{
		DefaultWorkers: 1,
		SLOAlignP99:    time.Nanosecond, // every real align misses this
	}))
	defer srv.Close()

	if resp, out := postJSON(t, srv.URL+"/v1/align", alignBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("align status %d: %v", resp.StatusCode, out)
	}

	// The SLO observation rides the request-completion hook, which can land
	// just after the response; poll briefly.
	var verdict struct {
		SLOs []struct {
			Name        string  `json:"name"`
			Target      float64 `json:"target"`
			ThresholdMs float64 `json:"thresholdMs,omitempty"`
			Breached    bool    `json:"breached"`
			Windows     []struct {
				Window   string  `json:"window"`
				BurnRate float64 `json:"burnRate"`
			} `json:"windows"`
		} `json:"slos"`
		Breached bool `json:"breached"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/v1/slo")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&verdict)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode /v1/slo: %v", err)
		}
		if verdict.Breached || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	if !verdict.Breached {
		t.Fatalf("verdict not breached after a guaranteed SLO miss: %+v", verdict)
	}
	byName := map[string]int{}
	for i, s := range verdict.SLOs {
		byName[s.Name] = i
	}
	ai, ok := byName["align-p99"]
	if !ok {
		t.Fatalf("no align-p99 objective in %+v", verdict.SLOs)
	}
	align := verdict.SLOs[ai]
	if !align.Breached {
		t.Errorf("align-p99 not breached: %+v", align)
	}
	if len(align.Windows) != 2 || align.Windows[0].Window != "5m" || align.Windows[1].Window != "1h" {
		t.Fatalf("align-p99 windows = %+v, want 5m and 1h", align.Windows)
	}
	for _, w := range align.Windows {
		if w.BurnRate < 1 {
			t.Errorf("window %s burn = %v, want >= 1 (every event was bad)", w.Window, w.BurnRate)
		}
	}
	ei, ok := byName["error-rate"]
	if !ok {
		t.Fatalf("no error-rate objective in %+v", verdict.SLOs)
	}
	if errSLO := verdict.SLOs[ei]; errSLO.Breached {
		t.Errorf("error-rate breached with only 200s served: %+v", errSLO)
	}
}

// TestIncidentRingCapturesFailures: a failed sync align must leave both an
// http-5xx incident (the 500 response) and a job-failed incident carrying the
// job's flight-recorder timeline in /v1/debug/incidents.
func TestIncidentRingCapturesFailures(t *testing.T) {
	if err := fault.Arm("engine.worker:error", 1); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	defer fault.Disarm()

	srv := testServer(t)
	resp, out := postJSON(t, srv.URL+"/v1/align", alignBody)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("align under worker fault: status %d, want 500 (%v)", resp.StatusCode, out)
	}
	fault.Disarm()

	var incidents []map[string]any
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body := postJSONGet(t, srv.URL+"/v1/debug/incidents")
		raw, _ := body["incidents"].([]any)
		incidents = incidents[:0]
		for _, it := range raw {
			incidents = append(incidents, it.(map[string]any))
		}
		if len(incidents) >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	var saw5xx, sawJob bool
	for _, inc := range incidents {
		switch inc["kind"] {
		case "http-5xx":
			saw5xx = true
			if inc["route"] != "POST /v1/align" {
				t.Errorf("http-5xx route = %v", inc["route"])
			}
			if inc["status"].(float64) != 500 {
				t.Errorf("http-5xx status = %v", inc["status"])
			}
		case "job-failed":
			sawJob = true
			if inc["jobKind"] != "align" {
				t.Errorf("job-failed kind = %v", inc["jobKind"])
			}
			if e, _ := inc["error"].(string); !strings.Contains(e, "injected") {
				t.Errorf("job-failed error = %q, want the injected fault", e)
			}
			evs, ok := inc["events"].(map[string]any)
			if !ok {
				t.Fatalf("job-failed incident lacks the flight-recorder timeline: %v", inc)
			}
			list, _ := evs["events"].([]any)
			if len(list) == 0 {
				t.Fatal("job-failed incident has an empty timeline")
			}
			lastEv := list[len(list)-1].(map[string]any)
			if lastEv["kind"] != obs.EvFinish || lastEv["detail"] != "failed" {
				t.Errorf("incident timeline tail = %v, want %s/failed", lastEv, obs.EvFinish)
			}
		}
	}
	if !saw5xx || !sawJob {
		t.Fatalf("incidents = %v, want both http-5xx and job-failed", incidents)
	}
}

// TestBreakerBurnSheds: with -breaker-burn coupling armed, an error storm
// that torches the error-rate budget sheds synchronous requests with a
// Retry-After 503 even though the queue is empty.
func TestBreakerBurnSheds(t *testing.T) {
	if err := fault.Arm("engine.worker:error", 1); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	defer fault.Disarm()

	srv := httptest.NewServer(newServer(serverConfig{
		DefaultWorkers: 1,
		BreakerBurn:    2, // shed when the 5m error-rate burn hits 2x
	}))
	defer srv.Close()

	// One 500 against the default 0.1% error budget burns at 1000x.
	resp, _ := postJSON(t, srv.URL+"/v1/align", alignBody)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("seed failure: status %d, want 500", resp.StatusCode)
	}
	fault.Disarm()

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, out := postJSON(t, srv.URL+"/v1/align", alignBody)
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Error("burn-shed 503 lacks Retry-After")
			}
			if hint, _ := out["retryAfterMs"].(float64); hint <= 0 {
				t.Errorf("burn-shed 503 retryAfterMs = %v, want > 0", out["retryAfterMs"])
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("sync align never shed under fast burn; last status %d", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMetricsNewFamilies lints the whole exposition (scrapeMetrics enforces
// the text format strictly) and pins the families this layer added: SLO burn
// gauges, CPU attribution, runtime health and build info.
func TestMetricsNewFamilies(t *testing.T) {
	srv := httptest.NewServer(newServer(serverConfig{
		DefaultWorkers: 1,
		ProfLabels:     true,
	}))
	defer srv.Close()
	defer obs.SetProfLabels(false) // newServer flipped the global switch

	if resp, out := postJSON(t, srv.URL+"/v1/align", alignBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("align status %d: %v", resp.StatusCode, out)
	}

	m := scrapeMetrics(t, srv.URL)
	series := func(prefix string) []string {
		var hits []string
		for s := range m {
			if strings.HasPrefix(s, prefix) {
				hits = append(hits, s)
			}
		}
		return hits
	}

	// SLO burn: both objectives x both windows, as labelled series.
	for _, want := range []string{
		`fastlsa_slo_burn_rate{slo="align-p99",window="5m"}`,
		`fastlsa_slo_burn_rate{slo="align-p99",window="1h"}`,
		`fastlsa_slo_burn_rate{slo="error-rate",window="5m"}`,
		`fastlsa_slo_burn_rate{slo="error-rate",window="1h"}`,
	} {
		if _, ok := m[want]; !ok {
			t.Errorf("missing series %s (have %v)", want, series("fastlsa_slo_burn_rate"))
		}
	}

	// CPU attribution: the align above ran labelled phases, so at least one
	// (backend, phase) series must expose a positive total.
	prof := series("fastlsa_prof_cpu_seconds_total{")
	if len(prof) == 0 {
		t.Error("no fastlsa_prof_cpu_seconds_total series after a labelled align")
	}
	for _, s := range prof {
		if !strings.Contains(s, `backend="`) || !strings.Contains(s, `phase="`) {
			t.Errorf("prof series %s lacks backend/phase labels", s)
		}
		if m[s] < 0 {
			t.Errorf("prof series %s negative: %v", s, m[s])
		}
	}

	// Runtime health and process identity.
	if m["fastlsa_go_goroutines"] <= 0 {
		t.Errorf("fastlsa_go_goroutines = %v, want > 0", m["fastlsa_go_goroutines"])
	}
	if m["fastlsa_go_heap_bytes"] <= 0 {
		t.Errorf("fastlsa_go_heap_bytes = %v, want > 0", m["fastlsa_go_heap_bytes"])
	}
	if _, ok := m["fastlsa_go_gc_cycles_total"]; !ok {
		t.Error("missing fastlsa_go_gc_cycles_total")
	}
	if _, ok := m["fastlsa_go_gc_pause_seconds_total"]; !ok {
		t.Error("missing fastlsa_go_gc_pause_seconds_total")
	}
	if m["fastlsa_process_uptime_seconds"] < 0 {
		t.Errorf("uptime = %v", m["fastlsa_process_uptime_seconds"])
	}
	info := series("fastlsa_build_info{")
	if len(info) != 1 || m[info[0]] != 1 {
		t.Fatalf("fastlsa_build_info series = %v, want exactly one with value 1", info)
	}
	if !strings.Contains(info[0], `go_version="go`) || !strings.Contains(info[0], `revision="`) {
		t.Errorf("build info labels missing: %s", info[0])
	}

	// A second scrape must keep the prof counters monotone.
	m2 := scrapeMetrics(t, srv.URL)
	for _, s := range prof {
		if m2[s] < m[s] {
			t.Errorf("prof counter %s went backwards: %v -> %v", s, m[s], m2[s])
		}
	}
}

// TestStreamSearchRequestIDAndAccessLog pins request-id propagation on the
// streaming NDJSON path: the header echoes the caller's id and the access log
// records the route, id and status of the completed stream.
func TestStreamSearchRequestIDAndAccessLog(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(lockedWriter{&mu, &buf}, nil))
	srv, query, _ := corpusServer(t, serverConfig{Logger: logger})

	req, err := http.NewRequest(http.MethodGet,
		srv.URL+"/v1/search?stream=1&q="+query.String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "stream-test-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "stream-test-7" {
		t.Errorf("X-Request-ID = %q, want stream-test-7", got)
	}
	events := readNDJSON(t, resp)
	if len(events) < 2 || events[len(events)-1]["type"] != "summary" {
		t.Fatalf("stream shape wrong: %v", events)
	}

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	var rec map[string]any
	for _, line := range lines {
		var cand map[string]any
		if err := json.Unmarshal([]byte(line), &cand); err != nil {
			t.Fatalf("access log line not JSON: %q", line)
		}
		if cand["request_id"] == "stream-test-7" {
			rec = cand
		}
	}
	if rec == nil {
		t.Fatalf("no access-log record for the stream: %q", lines)
	}
	if route, _ := rec["route"].(string); !strings.Contains(route, "/v1/search") {
		t.Errorf("route = %v", rec["route"])
	}
	if rec["status"] != float64(http.StatusOK) {
		t.Errorf("status = %v", rec["status"])
	}
}

// TestRetriedJobTraceCoversFinalAttempt: the trace is created inside the task
// closure, so a job that failed its first attempts returns a trace of the
// final (successful) attempt only — one traceback span, not one per attempt.
func TestRetriedJobTraceCoversFinalAttempt(t *testing.T) {
	if err := fault.Arm("engine.worker:error", 1); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	defer fault.Disarm()

	srv := testServer(t)
	body := fmt.Sprintf(`{
		"type": "align",
		"retry": {"maxAttempts": 100, "backoffMs": 1},
		"align": %s
	}`, alignBody)
	resp, out := postJSON(t, srv.URL+"/v1/jobs?trace=1", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", resp.StatusCode, out)
	}
	id := out["id"].(string)
	pollAttempts(t, srv.URL+"/v1/jobs/"+id, 2, 10*time.Second)
	fault.Disarm()
	done := pollJob(t, srv.URL+"/v1/jobs/"+id, "succeeded", 10*time.Second)
	if got := int(done["attempts"].(float64)); got < 2 {
		t.Fatalf("attempts = %d, want >= 2", got)
	}

	raw, err := json.Marshal(done["result"])
	if err != nil {
		t.Fatal(err)
	}
	var ar struct {
		Trace json.RawMessage `json:"trace"`
	}
	if err := json.Unmarshal(raw, &ar); err != nil {
		t.Fatal(err)
	}
	checkTrace(t, ar.Trace)
	var tr chromeTrace
	if err := json.Unmarshal(ar.Trace, &tr); err != nil {
		t.Fatal(err)
	}
	tracebacks := 0
	for _, ev := range tr.TraceEvents {
		if ev.Name == "traceback" {
			tracebacks++
		}
	}
	if tracebacks != 1 {
		t.Errorf("trace has %d traceback spans, want 1 (the final attempt only)", tracebacks)
	}
}
