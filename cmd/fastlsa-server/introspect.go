package main

// Introspection surface: the SLO verdict endpoint, the per-job flight
// recorder endpoint, and the server-wide incident ring. Together with
// /metrics and ?trace=1 these form the third observability tier
// (docs/OBSERVABILITY.md): metrics say *that* something is wrong, traces say
// *where* one request spent its time, and the flight recorder + incident
// ring say *what happened* to a specific job after the fact.

import (
	"context"
	"net/http"
	"sync"
	"time"

	"fastlsa"
	"fastlsa/internal/obs"
)

// SLO objective names wired at startup (see newServer).
const (
	sloAlign  = "align-p99"
	sloErrors = "error-rate"
)

// defaultIncidents bounds the incident ring.
const defaultIncidents = 64

// incident is one entry of the server-wide incident ring: a 5xx response
// (overload sheds included) or a failed job, captured with enough context —
// request id, attempts, the job's flight-recorder timeline — to debug it
// after the fact without having had a profiler attached.
type incident struct {
	At   time.Time `json:"at"`
	Kind string    `json:"kind"` // "http-5xx" or "job-failed"
	// Route/Status/DurationMs describe an http-5xx incident.
	Route      string  `json:"route,omitempty"`
	Status     int     `json:"status,omitempty"`
	DurationMs float64 `json:"durationMs,omitempty"`
	// JobID/JobKind/Attempts/Error describe a job-failed incident (a panic or
	// an exhausted retry budget surfaces here via the job's final error).
	JobID     string `json:"jobId,omitempty"`
	JobKind   string `json:"jobKind,omitempty"`
	Attempts  int    `json:"attempts,omitempty"`
	Error     string `json:"error,omitempty"`
	RequestID string `json:"requestId,omitempty"`
	// Events is the failed job's flight-recorder timeline, when it had one.
	Events *obs.RecorderSnapshot `json:"events,omitempty"`
}

// incidentRing keeps the newest incidents in a fixed ring.
type incidentRing struct {
	mu   sync.Mutex
	ring []incident
	pos  int
	full bool
}

func newIncidentRing(capacity int) *incidentRing {
	if capacity <= 0 {
		capacity = defaultIncidents
	}
	return &incidentRing{ring: make([]incident, capacity)}
}

func (ir *incidentRing) add(inc incident) {
	ir.mu.Lock()
	ir.ring[ir.pos] = inc
	ir.pos = (ir.pos + 1) % len(ir.ring)
	if ir.pos == 0 {
		ir.full = true
	}
	ir.mu.Unlock()
}

// snapshot returns the retained incidents, newest first.
func (ir *incidentRing) snapshot() []incident {
	ir.mu.Lock()
	defer ir.mu.Unlock()
	n := ir.pos
	if ir.full {
		n = len(ir.ring)
	}
	out := make([]incident, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, ir.ring[(ir.pos-i+len(ir.ring))%len(ir.ring)])
	}
	return out
}

// observeRequest is the completion hook behind every route (wired through
// obs.MiddlewareObserved): it feeds the SLO burn-rate accounting and captures
// 5xx responses — overload sheds included — into the incident ring.
func (s *server) observeRequest(sm obs.RequestSample) {
	if sm.Route == "POST /v1/align" {
		s.slos.Observe(sloAlign, sm.Duration > s.cfg.SLOAlignP99)
	}
	s.slos.Observe(sloErrors, sm.Status >= 500)
	if sm.Status >= 500 {
		s.incidents.add(incident{
			At: time.Now(), Kind: "http-5xx",
			Route: sm.Route, Status: sm.Status,
			DurationMs: float64(sm.Duration) / float64(time.Millisecond),
			RequestID:  sm.RequestID,
		})
	}
}

// watchJob records a job-failed incident once j reaches a terminal state.
// The background wait is safe: shutdown cancels every live job, so the
// goroutine always exits.
func (s *server) watchJob(j *fastlsa.Job) {
	go func() {
		_, _ = j.Wait(context.Background())
		info := j.Info()
		if info.State != fastlsa.JobFailed {
			return
		}
		inc := incident{
			At: time.Now(), Kind: "job-failed",
			JobID: info.ID, JobKind: info.Kind,
			Attempts: info.Attempts, Error: info.Err,
			RequestID: info.RequestID,
		}
		if j.HasRecorder() {
			snap := j.Events()
			inc.Events = &snap
		}
		s.incidents.add(inc)
	}()
}

// sloResponse is the GET /v1/slo reply: every objective's multi-window burn
// rates plus a single roll-up verdict.
type sloResponse struct {
	SLOs []obs.SLOReport `json:"slos"`
	// Breached is true when any objective burns its error budget faster than
	// allowed on both the 5m and 1h windows.
	Breached bool `json:"breached"`
}

// handleSLO reports the declarative objectives' burn-rate verdicts.
func (s *server) handleSLO(w http.ResponseWriter, r *http.Request) {
	reps := s.slos.Report()
	if reps == nil {
		reps = []obs.SLOReport{}
	}
	resp := sloResponse{SLOs: reps}
	for _, rep := range reps {
		if rep.Breached {
			resp.Breached = true
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleIncidents serves the incident ring (newest first) plus the retained
// continuous-capture runtime samples when -prof-interval armed the loop.
func (s *server) handleIncidents(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"incidents": s.incidents.snapshot(),
		"runtime":   s.sampler.Snapshots(),
	})
}

// jobEventsView is the GET /v1/jobs/{id}/events reply: the job's flight-
// recorder timeline plus how much of it was dropped under the retention
// bound.
type jobEventsView struct {
	ID    string `json:"id"`
	State string `json:"state"`
	obs.RecorderSnapshot
}

// handleJobEvents serves one job's flight-recorder timeline.
func (s *server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.eng.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, jobLookupStatus(err), "%v", err)
		return
	}
	if !j.HasRecorder() {
		writeErr(w, http.StatusNotFound,
			"job %s has no flight recorder (evicted, or submitted without one)", r.PathValue("id"))
		return
	}
	info := j.Info()
	writeJSON(w, http.StatusOK, jobEventsView{
		ID: info.ID, State: info.State.String(),
		RecorderSnapshot: j.Events(),
	})
}

// refreshScrapeMetrics recomputes the scrape-time families /metrics cannot
// derive from closures alone: the SLO burn-rate gauges, the per-(backend,
// phase) CPU-attribution counters (diffed from the obs accumulator so the
// exported series stays monotonic), and the cached runtime snapshot behind
// the fastlsa_go_* families. The wrapped /metrics handler calls it before
// every exposition.
func (s *server) refreshScrapeMetrics() {
	for _, rep := range s.slos.Report() {
		for _, w := range rep.Windows {
			s.sloBurn.With(rep.Name, w.Window).Set(w.BurnRate)
		}
	}
	s.profMu.Lock()
	for k, v := range obs.PhaseTimes() {
		if prev := s.profSeen[k]; v > prev {
			s.profCPU.With(k[0], k[1]).Add((v - prev).Seconds())
			s.profSeen[k] = v
		}
	}
	s.rtSnap = obs.ReadRuntime()
	s.profMu.Unlock()
}

// runtimeStat reads one field of the cached runtime snapshot (refreshed by
// refreshScrapeMetrics just before each scrape).
func (s *server) runtimeStat(pick func(obs.RuntimeSnapshot) float64) func() float64 {
	return func() float64 {
		s.profMu.Lock()
		defer s.profMu.Unlock()
		return pick(s.rtSnap)
	}
}
