package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"fastlsa"
	"fastlsa/internal/journal"
	"fastlsa/internal/obs"
)

// jobRequest is the POST /v1/jobs body: one alignment task submitted
// asynchronously. Exactly one of Align/MSA/Search must match Type.
type jobRequest struct {
	// Type selects the task: "align", "msa" or "search".
	Type string `json:"type"`
	// Priority orders the queue (higher first; FIFO among equals).
	Priority int `json:"priority"`
	// TimeoutSec, when > 0, bounds the job's lifetime (queue wait plus
	// execution); expiry cancels it.
	TimeoutSec float64 `json:"timeoutSec"`
	// Retry, when set with maxAttempts > 1, re-runs the job after transient
	// failures (worker panics, injected faults, budget races) with
	// exponential backoff. Invalid input and cancellation never retry.
	Retry *retrySpec `json:"retry,omitempty"`

	Align  *alignRequest  `json:"align,omitempty"`
	MSA    *msaRequest    `json:"msa,omitempty"`
	Search *searchRequest `json:"search,omitempty"`
}

// retrySpec is the JSON shape of a retry policy on job and batch
// submissions. The retry-on classification is fixed to the service's
// transient-fault classifier (fastlsa.RetryTransient).
type retrySpec struct {
	// MaxAttempts caps total executions, first attempt included.
	MaxAttempts int `json:"maxAttempts"`
	// BackoffMs is the base backoff before the first retry (0 selects the
	// engine default, 10ms); it doubles per retry with jitter.
	BackoffMs int64 `json:"backoffMs"`
	// MaxBackoffMs caps the backoff growth (0 selects 2s).
	MaxBackoffMs int64 `json:"maxBackoffMs"`
}

func (r *retrySpec) policy() fastlsa.RetryPolicy {
	if r == nil {
		return fastlsa.RetryPolicy{}
	}
	return fastlsa.RetryPolicy{
		MaxAttempts: r.MaxAttempts,
		BaseDelay:   time.Duration(r.BackoffMs) * time.Millisecond,
		MaxDelay:    time.Duration(r.MaxBackoffMs) * time.Millisecond,
		RetryOn:     fastlsa.RetryTransient,
	}
}

// jobView is the JSON shape of a job for the async API.
type jobView struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	Priority int    `json:"priority"`
	State    string `json:"state"`
	// RequestID ties the job to the submitting request's X-Request-ID for
	// log correlation.
	RequestID string     `json:"requestId,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	// Attempts counts executions started so far (> 1 means the job retried).
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`
	// Recovered marks a job re-enqueued from the durable journal after a
	// restart (docs/DURABILITY.md).
	Recovered bool `json:"recovered,omitempty"`
	// Result carries the endpoint-shaped response once the job succeeded.
	Result any `json:"result,omitempty"`
	// Events is the job's flight-recorder timeline, included when the view
	// was requested with ?events=1 (GET /v1/jobs/{id}).
	Events *fastlsa.RecorderSnapshot `json:"events,omitempty"`
}

func viewOf(info fastlsa.JobInfo, result any) jobView {
	v := jobView{
		ID:        info.ID,
		Kind:      info.Kind,
		Priority:  info.Priority,
		State:     info.State.String(),
		RequestID: info.RequestID,
		Submitted: info.Submitted,
		Attempts:  info.Attempts,
		Error:     info.Err,
		Recovered: info.Recovered,
		Result:    result,
	}
	if !info.Started.IsZero() {
		v.Started = &info.Started
	}
	if !info.Finished.IsZero() {
		v.Finished = &info.Finished
	}
	return v
}

// handleJobSubmit accepts a job and replies 202 with its queued view. The
// job's lifetime is not tied to this request: poll GET /v1/jobs/{id} for the
// outcome, DELETE it to cancel. With the durable journal enabled the job is
// journalled before submission and an Idempotency-Key header makes retries
// of the same submission land on the existing job (docs/DURABILITY.md).
func (s *server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.recovering.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"error": "server is recovering journalled jobs", "phase": "recovering",
		})
		return
	}
	var req jobRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	idemKey := r.Header.Get("Idempotency-Key")
	if idemKey != "" && s.journal == nil {
		writeErr(w, http.StatusBadRequest,
			"Idempotency-Key requires the durable journal (start the server with -data-dir)")
		return
	}
	if idemKey != "" {
		if id := s.idemLookup(idemKey); id != "" {
			s.writeExistingJob(w, id)
			return
		}
	}
	// Every async job gets a flight recorder: the engine logs the lifecycle
	// (admission, attempt starts, retries, completion) and the task builders
	// thread it into the run so routing and degradation decisions land on the
	// same timeline. Snapshot it via GET /v1/jobs/{id}/events or ?events=1.
	rec := fastlsa.NewRecorder(0)
	if req.Align != nil && r.URL.Query().Get("trace") == "1" {
		req.Align.Trace = true
	}
	task, kind, err := s.buildJobTask(req, rec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	jo := fastlsa.JobOptions{
		Priority:  req.Priority,
		Timeout:   time.Duration(req.TimeoutSec * float64(time.Second)),
		RequestID: obs.RequestID(r.Context()),
		Retry:     req.Retry.policy(),
		Recorder:  rec,
	}
	if s.journal != nil {
		// Durable path: mint the id, register it, and journal the accepted
		// record BEFORE the engine can emit any event for the job — a crash
		// after admission must find the accepted record (else the engine's
		// started/terminal appends would be dropped as non-durable and the
		// job would run twice).
		id := s.newDurableID()
		if idemKey != "" {
			if winner, bound := s.idemBind(idemKey, id); !bound {
				s.writeExistingJob(w, winner)
				return
			}
		}
		s.markDurable(id)
		if err := s.journalAccepted(id, kind, idemKey, req); err != nil {
			s.writeTaskErr(w, fmt.Errorf("journal: %w", err))
			return
		}
		jo.ID = id
	}
	j, err := s.eng.SubmitFunc(kind, task, jo)
	if err != nil {
		if jo.ID != "" {
			// Accepted record exists but the job never entered the queue:
			// journal a terminal failure so the next boot cannot resurrect it.
			_ = s.journal.Append(journal.Record{
				Type: journal.TypeTerminal, JobID: jo.ID, At: time.Now(),
				State: "failed", Error: err.Error(),
			})
		}
		s.writeTaskErr(w, err)
		return
	}
	s.watchJob(j)
	writeJSON(w, http.StatusAccepted, viewOf(j.Info(), nil))
}

// writeExistingJob serves an Idempotency-Key hit: the engine's live or
// retained view when available, the journalled terminal view for jobs that
// finished before a crash, 404 when the id has been evicted everywhere.
func (s *server) writeExistingJob(w http.ResponseWriter, id string) {
	if j, err := s.eng.Job(id); err == nil {
		writeJSON(w, http.StatusAccepted, viewOf(j.Info(), nil))
		return
	}
	if v, ok := s.journalledView(id); ok {
		writeJSON(w, http.StatusAccepted, v)
		return
	}
	writeErr(w, http.StatusNotFound, "idempotency key maps to unknown job %s", id)
}

// handleJobGet reports one job, including its result once succeeded.
// ?events=1 opts the flight-recorder timeline into the view. A job the
// engine no longer knows (terminal before a crash, not resubmitted) is
// served from the journal's aggregate.
func (s *server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, err := s.eng.Job(r.PathValue("id"))
	if err != nil {
		if v, ok := s.journalledView(r.PathValue("id")); ok {
			writeJSON(w, http.StatusOK, v)
			return
		}
		writeErr(w, jobLookupStatus(err), "%v", err)
		return
	}
	result, _, _ := j.Result()
	v := viewOf(j.Info(), result)
	if r.URL.Query().Get("events") == "1" && j.HasRecorder() {
		snap := j.Events()
		v.Events = &snap
	}
	writeJSON(w, http.StatusOK, v)
}

// handleJobCancel cancels a job; polling its state shows the effect.
func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.eng.Cancel(id); err != nil {
		writeErr(w, jobLookupStatus(err), "%v", err)
		return
	}
	j, err := s.eng.Job(id)
	if err != nil {
		writeErr(w, jobLookupStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, viewOf(j.Info(), nil))
}

// handleJobList reports every retained job, newest first (no results).
func (s *server) handleJobList(w http.ResponseWriter, r *http.Request) {
	infos := s.eng.List()
	out := make([]jobView, len(infos))
	for i, info := range infos {
		out[i] = viewOf(info, nil)
	}
	writeJSON(w, http.StatusOK, out)
}

// statsView is the GET /v1/stats reply: the engine's job counters at the top
// level (flat, for compatibility) plus the service-wide alignment counters —
// including the memory-degradation ones (mesh_shrinks, seq_fill_fallbacks,
// planned_fill_tiles vs executed_fill_tiles) — under "alignment".
type statsView struct {
	fastlsa.EngineStats
	Alignment fastlsa.CounterSnapshot `json:"alignment"`
}

// handleStats reports the engine and alignment counters.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsView{
		EngineStats: s.eng.Stats(),
		Alignment:   s.metrics.Snapshot(),
	})
}

func jobLookupStatus(err error) int {
	if errors.Is(err, fastlsa.ErrJobNotFound) {
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

// batchRequest is the POST /v1/batch body: many pairs aligned under shared
// options. The embedded alignRequest supplies the options (its A/B fields
// are ignored); admission is atomic — either every pair is queued or the
// whole batch is rejected with 503.
type batchRequest struct {
	alignRequest
	Pairs []struct {
		A   string `json:"a"`
		B   string `json:"b"`
		AID string `json:"aId"`
		BID string `json:"bId"`
	} `json:"pairs"`
	// TimeoutSec, when > 0, bounds each pair's lifetime individually.
	TimeoutSec float64 `json:"timeoutSec"`
	// Retry applies per unit: a pair whose attempt hits a transient fault
	// re-queues without failing the batch.
	Retry *retrySpec `json:"retry,omitempty"`
}

// batchResponse is the POST /v1/batch reply: per-pair outcomes, indexed as
// submitted.
type batchResponse struct {
	BatchID string      `json:"batchId"`
	Units   []batchUnit `json:"units"`
}

type batchUnit struct {
	Index  int    `json:"index"`
	Error  string `json:"error,omitempty"`
	Result any    `json:"result,omitempty"`
}

// handleBatch runs a bounded batch synchronously: all pairs are admitted
// atomically, fan out over the worker pool, and the reply carries every
// outcome. A client disconnect cancels the unfinished remainder.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if len(req.Pairs) == 0 {
		writeErr(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Pairs) > s.cfg.MaxBatch {
		writeErr(w, http.StatusBadRequest, "batch exceeds the %d-pair limit", s.cfg.MaxBatch)
		return
	}
	tasks := make([]func(ctx context.Context) (any, error), len(req.Pairs))
	for i, p := range req.Pairs {
		unit := req.alignRequest
		unit.A, unit.B = p.A, p.B
		unit.AID = orDefault(p.AID, fmt.Sprintf("a%d", i))
		unit.BID = orDefault(p.BID, fmt.Sprintf("b%d", i))
		// Batch units share no recorder: a shared timeline would interleave
		// the pairs' events beyond use.
		task, err := s.alignTask(unit, nil)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "pair %d: %v", i, err)
			return
		}
		tasks[i] = task
	}
	b, err := s.eng.SubmitBatchFunc("batch-align", tasks, fastlsa.JobOptions{
		Timeout:   time.Duration(req.TimeoutSec * float64(time.Second)),
		Context:   r.Context(),
		RequestID: obs.RequestID(r.Context()),
		Retry:     req.Retry.policy(),
	})
	if err != nil {
		s.writeTaskErr(w, err)
		return
	}
	s.batchSizes.Observe(float64(b.Size()))
	results, err := b.Wait(r.Context())
	if err != nil {
		b.Cancel()
		s.writeTaskErr(w, err)
		return
	}
	resp := batchResponse{BatchID: b.ID(), Units: make([]batchUnit, len(results))}
	for i, res := range results {
		u := batchUnit{Index: i, Result: res.Result}
		if res.Err != nil {
			u.Error = res.Err.Error()
			u.Result = nil
		}
		resp.Units[i] = u
	}
	writeJSON(w, http.StatusOK, resp)
}
