package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fastlsa"
	"fastlsa/internal/fault"
)

// siteDecode is the fault-injection point on request-body decoding: armed it
// rehearses malformed-input handling (the server must answer 400, never 500,
// and never leak a job submission for a body it could not parse).
var siteDecode = fault.NewSite("server.decode")

// decodeJSON decodes a request body, striking the server.decode injection
// point first. Every handler that reads a body routes through it.
func decodeJSON(r *http.Request, v any) error {
	if err := siteDecode.Hit(); err != nil {
		return err
	}
	return json.NewDecoder(r.Body).Decode(v)
}

// writeTaskErr maps a task/submission error to its HTTP response. 503s from
// overload (a full queue, an open breaker, a draining engine) carry a
// Retry-After header and a retryAfterMs JSON hint so well-behaved clients
// back off instead of hammering a saturated service; client disconnects
// (context.Canceled with the client gone) get no hint — nobody is listening.
func (s *server) writeTaskErr(w http.ResponseWriter, err error) {
	status := errStatus(err)
	if status == http.StatusServiceUnavailable &&
		(errors.Is(err, fastlsa.ErrQueueFull) || errors.Is(err, fastlsa.ErrEngineClosed)) {
		hint := s.retryAfterHint()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int64((hint+time.Second-1)/time.Second)))
		writeJSON(w, status, apiError{Error: err.Error(), RetryAfterMs: hint.Milliseconds()})
		return
	}
	writeErr(w, status, "%v", err)
}

// retryAfterHint estimates how long a shed client should wait before
// retrying: the breaker's remaining cooldown when it is open, otherwise a
// queue-pressure guess (half a second per queued job), clamped to [1s, 10s].
func (s *server) retryAfterHint() time.Duration {
	hint := time.Second
	if rem := s.breaker.remaining(time.Now()); rem > hint {
		hint = rem
	}
	if queued := s.eng.Stats().Queued; queued > 0 {
		if d := time.Duration(queued) * 500 * time.Millisecond; d > hint {
			hint = d
		}
	}
	if hint > 10*time.Second {
		hint = 10 * time.Second
	}
	return hint
}

// beginDrain flips the readiness probe to failing. main calls it the moment
// shutdown starts, so load balancers stop routing new work while /healthz
// keeps answering 200 — the process is still alive and draining.
func (s *server) beginDrain() { s.draining.Store(true) }

// handleReadyz is the readiness probe: 200 while the server accepts work,
// 503 while startup journal replay is still re-enqueuing pre-crash jobs
// ({"phase": "recovering"}), 503 once draining. Liveness (/healthz) is
// deliberately separate — a recovering or draining server is not ready, but
// it is alive.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.recovering.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "recovering", "phase": "recovering",
		})
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// breaker sheds synchronous requests when the p95 queue wait over a sliding
// window of job pickups crosses a threshold: under that much queueing a
// synchronous caller would mostly hold a connection open to receive an
// eventual timeout, so failing fast with Retry-After is kinder to both
// sides. Async submissions (/v1/jobs, /v1/batch) are not shed — their
// callers opted into queueing. The breaker stays open for a cooldown, then
// closes and re-measures against a fresh window.
type breaker struct {
	threshold time.Duration // <= 0 disables the queue-wait breaker
	cooldown  time.Duration

	// burn/burnLimit optionally couple the breaker to the SLO layer
	// (-breaker-burn): while burn() — the error-rate objective's fast-window
	// burn rate — is at or over burnLimit, synchronous requests are shed even
	// though queue waits look healthy. An error storm consumes the error
	// budget long before it backs up the queue.
	burn      func() float64
	burnLimit float64 // <= 0 disables the burn coupling

	mu        sync.Mutex
	window    []time.Duration // ring of recent queue waits
	n         int             // samples in window (<= len(window))
	idx       int             // next write position
	openUntil time.Time

	trips atomic.Int64
	shed  atomic.Int64
}

func newBreaker(threshold, cooldown time.Duration, window int) *breaker {
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	if window <= 0 {
		window = 128
	}
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		window:    make([]time.Duration, window),
	}
}

// observe records one job pickup's queue wait and trips the breaker when the
// window's p95 crosses the threshold. The window resets on a trip so the
// post-cooldown verdict reflects post-trip traffic, not the overload that
// caused it.
func (b *breaker) observe(d time.Duration) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.window[b.idx] = d
	b.idx = (b.idx + 1) % len(b.window)
	if b.n < len(b.window) {
		b.n++
	}
	// Demand a quorum before judging: a handful of slow pickups right after
	// startup (or a reset) is not an overload signal.
	if b.n < 8 || b.n < len(b.window)/4 {
		return
	}
	if b.p95Locked() <= b.threshold {
		return
	}
	// The window resets on every unhealthy verdict — counted as a trip or
	// not — so the post-cooldown judgment only ever sees samples newer than
	// the last one, never the overload that caused it.
	b.n, b.idx = 0, 0
	now := time.Now()
	if now.Before(b.openUntil) {
		return // already open
	}
	b.openUntil = now.Add(b.cooldown)
	b.trips.Add(1)
}

// p95Locked computes the 95th-percentile queue wait of the current window.
func (b *breaker) p95Locked() time.Duration {
	samples := make([]time.Duration, b.n)
	if b.n < len(b.window) {
		copy(samples, b.window[:b.n])
	} else {
		copy(samples, b.window)
	}
	sort.Slice(samples, func(i, k int) bool { return samples[i] < samples[k] })
	return samples[(b.n-1)*95/100]
}

// allow reports whether a synchronous request may proceed, counting sheds.
// Shedding triggers on either signal: an open queue-wait breaker, or the
// SLO fast-burn coupling reporting the error budget burning at or over
// burnLimit.
func (b *breaker) allow(now time.Time) bool {
	if b.burnLimit > 0 && b.burn != nil && b.burn() >= b.burnLimit {
		b.shed.Add(1)
		return false
	}
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	open := now.Before(b.openUntil)
	b.mu.Unlock()
	if open {
		b.shed.Add(1)
	}
	return !open
}

// remaining reports how much cooldown is left (0 when closed).
func (b *breaker) remaining(now time.Time) time.Duration {
	if b.threshold <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if rem := b.openUntil.Sub(now); rem > 0 {
		return rem
	}
	return 0
}

// state reports 1 while open, 0 while closed (the /metrics gauge).
func (b *breaker) state() float64 {
	if b.remaining(time.Now()) > 0 {
		return 1
	}
	return 0
}
