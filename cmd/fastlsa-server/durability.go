package main

// Durable job journal wiring: when the server runs with -data-dir, every
// async job submitted through POST /v1/jobs is recorded in an append-only
// WAL (internal/journal) — accepted with its full request payload, then
// started/retried/terminal as the engine commits those transitions — and
// FastLSA grid-cache checkpoints are persisted alongside. On restart the
// journal is replayed: non-terminal jobs are re-enqueued under their
// original ids (marked "recovered"), Idempotency-Key mappings are rebuilt
// so client retries land on the existing job, and checkpointed alignments
// resume past their completed block-rows instead of recomputing from cell
// (0,0). See docs/DURABILITY.md.

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"fastlsa"
	"fastlsa/internal/journal"
	"fastlsa/internal/obs"
)

// journalSink binds one job's grid-cache checkpoints to the journal's
// blob store (fastlsa.CheckpointSink).
type journalSink struct {
	j  *journal.Journal
	id string
}

func (s journalSink) Save(blob []byte) error { return s.j.SaveCheckpoint(s.id, blob) }
func (s journalSink) Load() []byte           { return s.j.LoadCheckpoint(s.id) }

// newDurableID mints a journal-scoped job id. Durable jobs carry explicit
// server-minted ids (rather than engine-generated ones) so the id exists —
// and is journalled — before the engine can emit any event for it; the boot
// suffix keeps ids from colliding with those of earlier boots.
func (s *server) newDurableID() string {
	return fmt.Sprintf("job-%s-%d", s.bootID, s.durableSeq.Add(1))
}

// markDurable registers id as journal-backed: the engine event hook appends
// records only for these jobs (synchronous requests and batch units stay
// journal-free).
func (s *server) markDurable(id string) {
	s.durableMu.Lock()
	s.durableIDs[id] = struct{}{}
	s.durableMu.Unlock()
}

func (s *server) isDurable(id string) bool {
	if s.journal == nil {
		return false
	}
	s.durableMu.Lock()
	_, ok := s.durableIDs[id]
	s.durableMu.Unlock()
	return ok
}

// checkpointSink returns the per-job checkpoint sink for the task running
// under ctx, or nil when the job is not journal-backed.
func (s *server) checkpointSink(ctx context.Context) fastlsa.CheckpointSink {
	if s.journal == nil {
		return nil
	}
	id := fastlsa.JobIDFromContext(ctx)
	if id == "" || !s.isDurable(id) {
		return nil
	}
	return journalSink{j: s.journal, id: id}
}

// onJobEvent is the engine's OnJobEvent hook: it appends the lifecycle of
// every journal-backed job. Abandoned jobs (cancelled by the shutdown drain
// deadline) deliberately get no terminal record — the journal keeps them
// non-terminal so the next boot re-enqueues them.
func (s *server) onJobEvent(ev fastlsa.JobEvent) {
	if !s.isDurable(ev.Job.ID) {
		return
	}
	var rec journal.Record
	switch ev.Type {
	case fastlsa.JobEventStarted:
		rec = journal.Record{Type: journal.TypeStarted, Attempt: ev.Job.Attempts}
	case fastlsa.JobEventRetried:
		rec = journal.Record{Type: journal.TypeRetried, Attempt: ev.Job.Attempts, Error: ev.Job.Err}
	case fastlsa.JobEventFinished:
		if ev.Job.Abandoned {
			if s.logger != nil {
				s.logger.Warn("job abandoned at shutdown; will recover on next boot",
					"job", ev.Job.ID, "kind", ev.Job.Kind, "attempts", ev.Job.Attempts)
			}
			return
		}
		rec = journal.Record{Type: journal.TypeTerminal, State: ev.Job.State.String(), Error: ev.Job.Err}
	default: // accepted is journalled by the submit handler, payload included
		return
	}
	rec.JobID = ev.Job.ID
	rec.At = time.Now()
	if err := s.journal.Append(rec); err != nil && s.logger != nil {
		s.logger.Error("journal append failed", "job", ev.Job.ID, "type", rec.Type, "err", err)
	}
}

// journalAccepted records a freshly admitted durable job with its full
// request payload — everything recovery needs to rebuild and resubmit it.
func (s *server) journalAccepted(id, kind, idemKey string, req jobRequest) error {
	payload, err := json.Marshal(req)
	if err != nil {
		return err
	}
	return s.journal.Append(journal.Record{
		Type:     journal.TypeAccepted,
		JobID:    id,
		At:       time.Now(),
		Kind:     kind,
		Priority: req.Priority,
		IdemKey:  idemKey,
		Payload:  payload,
	})
}

// idemLookup resolves an Idempotency-Key to its job id ("" when unseen).
func (s *server) idemLookup(key string) string {
	s.idemMu.Lock()
	defer s.idemMu.Unlock()
	return s.idemIndex[key]
}

// idemBind maps key to id unless the key is already bound; it returns the
// winning id and whether this call bound it.
func (s *server) idemBind(key, id string) (string, bool) {
	s.idemMu.Lock()
	defer s.idemMu.Unlock()
	if prev, ok := s.idemIndex[key]; ok {
		return prev, false
	}
	s.idemIndex[key] = id
	return id, true
}

// journalledView serves a job id known only to the journal: a job that
// reached a terminal state before a crash is not resubmitted, but an
// Idempotency-Key retry must still find it rather than spawn a duplicate.
func (s *server) journalledView(id string) (jobView, bool) {
	s.durableMu.Lock()
	rec, ok := s.journalDone[id]
	s.durableMu.Unlock()
	if !ok {
		return jobView{}, false
	}
	return jobView{
		ID:       rec.ID,
		Kind:     rec.Kind,
		Priority: rec.Priority,
		State:    rec.State,
		Attempts: rec.Attempts,
		Error:    rec.Error,
	}, true
}

// recoverJobs replays the journal's aggregate into the engine: every
// non-terminal job is resubmitted under its original id, marked recovered,
// with its pre-crash attempt count; terminal jobs stay queryable through
// the idempotency index. The server reports not-ready ({"phase":
// "recovering"} on /readyz, 503 on POST /v1/jobs) until this returns.
func (s *server) recoverJobs(sum *journal.ReplaySummary) {
	defer s.recovering.Store(false)
	start := s.recoveryTrace.Begin()
	recovered := 0
	defer func() {
		s.recoveryTrace.End(obs.SpanJournalReplay, obs.CatJournal, start,
			obs.Tags{Rows: sum.Records, Cols: recovered})
	}()

	for id, rec := range sum.Jobs {
		if rec.IdemKey != "" {
			s.idemBind(rec.IdemKey, id)
		}
		if rec.Terminal() {
			s.durableMu.Lock()
			s.journalDone[id] = rec
			s.durableMu.Unlock()
		}
	}

	for _, rec := range sum.Pending {
		if err := s.resubmit(rec); err != nil {
			if s.logger != nil {
				s.logger.Error("recovery resubmit failed", "job", rec.ID, "err", err)
			}
			// A job that cannot be rebuilt must not resurrect forever.
			_ = s.journal.Append(journal.Record{
				Type: journal.TypeTerminal, JobID: rec.ID, At: time.Now(),
				State: "failed", Error: fmt.Sprintf("recovery: %v", err),
			})
			continue
		}
		recovered++
	}
	if s.logger != nil {
		s.logger.Info("journal replay complete",
			"records", sum.Records, "segments", sum.Segments, "truncated", sum.Truncated,
			"jobs", len(sum.Jobs), "recovered", recovered)
	}
}

// resubmit re-enqueues one journalled job from its accepted payload.
func (s *server) resubmit(rec *journal.JobRecord) error {
	var req jobRequest
	if err := json.Unmarshal(rec.Payload, &req); err != nil {
		return fmt.Errorf("payload: %w", err)
	}
	recorder := fastlsa.NewRecorder(0)
	task, kind, err := s.buildJobTask(req, recorder)
	if err != nil {
		return err
	}
	extra := ""
	if rec.HasCheckpoint {
		extra = "resumed"
	}
	recorder.Add(fastlsa.RecorderEvent{
		Kind: obs.EvRecover, Detail: kind, Extra: extra, Attempt: rec.Attempts,
	})
	s.markDurable(rec.ID)
	j, err := s.eng.SubmitFunc(kind, task, fastlsa.JobOptions{
		ID:            rec.ID,
		Recovered:     true,
		PriorAttempts: rec.Attempts,
		Priority:      rec.Priority,
		Timeout:       time.Duration(req.TimeoutSec * float64(time.Second)),
		Retry:         req.Retry.policy(),
		Recorder:      recorder,
	})
	if err != nil {
		return err
	}
	s.watchJob(j)
	return nil
}

// buildJobTask validates a jobRequest and returns the engine task plus its
// kind label — shared by the POST /v1/jobs handler and journal recovery.
func (s *server) buildJobTask(req jobRequest, rec *fastlsa.Recorder) (func(ctx context.Context) (any, error), string, error) {
	switch req.Type {
	case "align":
		if req.Align == nil {
			return nil, "", fmt.Errorf(`"align" body required for type align`)
		}
		kind := "align"
		if req.Align.Local {
			kind = "align-local"
		}
		task, err := s.alignTask(*req.Align, rec)
		return task, kind, err
	case "msa":
		if req.MSA == nil {
			return nil, "", fmt.Errorf(`"msa" body required for type msa`)
		}
		task, err := s.msaTask(*req.MSA)
		return task, "msa", err
	case "search":
		if req.Search == nil {
			return nil, "", fmt.Errorf(`"search" body required for type search`)
		}
		task, err := s.searchTask(*req.Search, rec)
		return task, "search", err
	default:
		return nil, "", fmt.Errorf("unknown job type %q (want align, msa or search)", req.Type)
	}
}
