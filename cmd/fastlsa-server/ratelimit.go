package main

import (
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// rateLimiter is a per-client token bucket guarding /v1/search: each client
// key (IP) accrues rate tokens per second up to burst, and a request costs
// one token. A nil limiter (rate disabled) allows everything.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	clients map[string]*bucket
	// maxClients bounds the map; when full, the stalest bucket is evicted
	// (a full bucket carries no state worth keeping anyway).
	maxClients int
	// limited counts rejected requests, exported on /metrics.
	limited atomic.Int64
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newRateLimiter returns nil when rate <= 0 (limiting disabled).
func newRateLimiter(rate float64, burst int) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = 10
	}
	return &rateLimiter{
		rate:       rate,
		burst:      float64(burst),
		clients:    make(map[string]*bucket),
		maxClients: 1024,
	}
}

// allow spends one token for key, reporting whether the request may proceed
// and — when it may not — how long until a token accrues (the Retry-After
// hint).
func (l *rateLimiter) allow(key string, now time.Time) (bool, time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.clients[key]
	if b == nil {
		if len(l.clients) >= l.maxClients {
			l.evictStalest()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.clients[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	l.limited.Add(1)
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second // Retry-After has whole-second precision
	}
	return false, wait
}

// evictStalest drops the bucket with the oldest refill time. Called with the
// lock held; linear scan is fine at the 1024-client bound.
func (l *rateLimiter) evictStalest() {
	var oldestKey string
	var oldest time.Time
	first := true
	for k, b := range l.clients {
		if first || b.last.Before(oldest) {
			oldestKey, oldest, first = k, b.last, false
		}
	}
	if oldestKey != "" {
		delete(l.clients, oldestKey)
	}
}

// clientKey identifies the client for rate limiting: the first hop of
// X-Forwarded-For when present (the address a trusted proxy saw), else the
// connection's remote IP.
func clientKey(r *http.Request) string {
	if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
		if i := strings.IndexByte(xff, ','); i >= 0 {
			xff = xff[:i]
		}
		if ip := strings.TrimSpace(xff); ip != "" {
			return ip
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}
