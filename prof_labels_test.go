package fastlsa_test

import (
	"bytes"
	"compress/gzip"
	"io"
	"runtime/pprof"
	"testing"
	"time"

	"fastlsa"
	"fastlsa/internal/obs"
	"fastlsa/internal/seq"
	"fastlsa/internal/testutil"
)

// TestCPUProfileCarriesBackendPhaseLabels is the CPU-attribution acceptance
// test: a CPU profile captured during mixed FastLSA/WFA load must attribute
// samples to both backends and their phases via pprof labels. The profile is
// a gzipped protobuf; with no profile decoder available, the assertion scans
// the decompressed string table — label keys and values are plain strings
// there, so their presence proves labelled samples were taken.
func TestCPUProfileCarriesBackendPhaseLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("burns ~1.5s of CPU to collect profile samples")
	}
	obs.SetProfLabels(true)
	defer obs.SetProfLabels(false)

	a, b := testutil.HomologousPair(2000, seq.DNA, 3)
	sa, err := fastlsa.NewSequence("a", a.String(), fastlsa.DNA)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := fastlsa.NewSequence("b", b.String(), fastlsa.DNA)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Fatalf("StartCPUProfile: %v", err)
	}
	// ~700ms of wall time per backend: at the default 100 Hz sampling rate
	// that is on the order of 70 samples each, far more than the one labelled
	// sample per backend the assertion needs.
	for _, algo := range []fastlsa.Algorithm{fastlsa.AlgoFastLSA, fastlsa.AlgoWFA} {
		for start := time.Now(); time.Since(start) < 700*time.Millisecond; {
			if _, err := fastlsa.Align(sa, sb, fastlsa.Options{
				Matrix:    fastlsa.DNASimple,
				Gap:       fastlsa.Linear(-4),
				Algorithm: algo,
			}); err != nil {
				pprof.StopCPUProfile()
				t.Fatalf("align (%v): %v", algo, err)
			}
		}
	}
	pprof.StopCPUProfile()

	gz, err := gzip.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("profile is not gzip: %v", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		t.Fatalf("decompress profile: %v", err)
	}

	for _, want := range []string{
		"backend", "phase", // the label keys
		"fastlsa", "wfa", // both backends' label values
		obs.SpanGridFill, // a FastLSA phase
		obs.SpanWFABi,    // a WFA phase (AlgoWFA's global mode runs BiWFA)
	} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("profile string table lacks %q: labelled samples missing", want)
		}
	}
}
