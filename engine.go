package fastlsa

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fastlsa/internal/engine"
)

// Engine-facing aliases and errors: the scheduler lives in internal/engine;
// these make it part of the public API surface.
type (
	// EngineConfig tunes the worker pool, queue bound and retention.
	EngineConfig = engine.Config
	// EngineStats is a snapshot of the scheduler counters.
	EngineStats = engine.Stats
	// Job is a handle on one submitted job.
	Job = engine.Job
	// JobInfo is a point-in-time public view of a job.
	JobInfo = engine.Info
	// JobState is a job lifecycle stage.
	JobState = engine.State
	// Batch is a handle on a batch submission.
	Batch = engine.Batch
	// BatchResult is one batch unit's outcome.
	BatchResult = engine.BatchResult
	// RetryPolicy re-queues a job after transient failures: max attempts,
	// exponential backoff with jitter, and a retry-on classifier (see
	// RetryTransient). Cancellation and deadline expiry never retry.
	RetryPolicy = engine.RetryPolicy
	// JobEvent is one job lifecycle notification delivered to
	// EngineConfig.OnJobEvent (the durability hook; see docs/DURABILITY.md).
	JobEvent = engine.JobEvent
)

// Job lifecycle event types (JobEvent.Type).
const (
	JobEventAccepted = engine.EventAccepted
	JobEventStarted  = engine.EventStarted
	JobEventRetried  = engine.EventRetried
	JobEventFinished = engine.EventFinished
)

// Job lifecycle stages.
const (
	JobQueued    = engine.Queued
	JobRunning   = engine.Running
	JobSucceeded = engine.Succeeded
	JobFailed    = engine.Failed
	JobCancelled = engine.Cancelled
)

// Engine error sentinels (test with errors.Is).
var (
	// ErrQueueFull rejects a submission when the queue is at capacity.
	ErrQueueFull = engine.ErrQueueFull
	// ErrEngineClosed rejects submissions after Shutdown.
	ErrEngineClosed = engine.ErrClosed
	// ErrJobNotFound reports an unknown job id.
	ErrJobNotFound = engine.ErrNotFound
	// ErrJobPanic wraps the failure of a job whose task panicked. The panic
	// is isolated to the job (the pool survives) and RetryTransient classifies
	// it as retryable.
	ErrJobPanic = engine.ErrJobPanic
	// ErrDuplicateJobID rejects a submission whose explicit JobOptions.ID is
	// already registered.
	ErrDuplicateJobID = engine.ErrDuplicateID
)

// JobIDFromContext returns the engine job id embedded in a task's context
// ("" outside an engine task). Use it inside a submitted task to bind
// per-job resources — e.g. a per-job Options.Checkpoint sink.
func JobIDFromContext(ctx context.Context) string { return engine.JobIDFromContext(ctx) }

// RetryTransient is the retry classifier for alignment jobs: it retries
// panics (ErrJobPanic), injected faults, and transient resource pressure
// (ErrBudgetExceeded — a budget race against concurrent runs can clear), but
// never cancellation/deadline expiry, ErrInvalidInput, or ErrBudgetTooSmall
// (deterministic: the same submission will fail the same way every attempt).
// Use it as JobOptions.Retry.RetryOn.
func RetryTransient(err error) bool {
	if !engine.Retryable(err) {
		return false
	}
	if errors.Is(err, ErrInvalidInput) || errors.Is(err, ErrBudgetTooSmall) {
		return false
	}
	return true
}

// JobOptions tunes one submission to an Engine.
type JobOptions struct {
	// ID, when non-empty, submits the job under an explicit id instead of an
	// engine-generated one (journal recovery resubmits jobs under their
	// pre-crash ids); a collision fails with ErrDuplicateJobID.
	ID string
	// Recovered marks a job re-enqueued from a durable journal after a
	// restart: echoed in JobInfo, counted in EngineStats.Recovered, and
	// exempt from the queue-depth admission check.
	Recovered bool
	// PriorAttempts offsets JobInfo.Attempts by the attempts a journal had
	// recorded before a crash (recovery only).
	PriorAttempts int
	// Priority orders the queue (higher first; FIFO among equals).
	Priority int
	// Timeout, when > 0, bounds the job's total lifetime (queue wait plus
	// execution).
	Timeout time.Duration
	// Context, when non-nil, parents the job's context — pass an HTTP
	// request context so a client disconnect cancels the job.
	Context context.Context
	// RequestID, when non-empty, ties the job to the originating request for
	// log correlation; it is echoed in JobInfo.
	RequestID string
	// Retry, when enabled (MaxAttempts > 1), re-queues the job after
	// retryable failures with exponential backoff. Pair it with RetryTransient
	// as the RetryOn classifier for alignment work.
	Retry RetryPolicy
	// Recorder, when non-nil, is the job's flight recorder: the engine logs
	// lifecycle events (admission, attempt starts, retries, completion) into
	// it, and the Submit* helpers thread it into the run's Options so routing
	// decisions, degradation steps and phase completions land on the same
	// timeline. Snapshot it with Job.Events. Batch submissions ignore it (a
	// shared recorder would interleave the units' timelines).
	Recorder *Recorder
}

func (jo JobOptions) submission(kind string, task engine.Task) engine.Submission {
	return engine.Submission{
		Kind:          kind,
		ID:            jo.ID,
		Recovered:     jo.Recovered,
		PriorAttempts: jo.PriorAttempts,
		Priority:      jo.Priority,
		Timeout:       jo.Timeout,
		Parent:        jo.Context,
		RequestID:     jo.RequestID,
		Retry:         jo.Retry,
		Recorder:      jo.Recorder,
		Task:          task,
	}
}

// Engine schedules alignment work over a bounded queue and a fixed worker
// pool, with per-job priorities, deadlines and cancellation. Each job runs
// with a context derived from its submission; cancelling it (Job.Cancel, a
// parent-context cancellation, deadline expiry, or Shutdown) makes the DP
// kernels abort promptly, so abandoned work stops consuming CPU.
type Engine struct {
	e *engine.Engine
}

// NewEngine starts an engine. The zero config selects GOMAXPROCS workers, a
// queue of 4x that, and retention of the last 256 finished jobs.
func NewEngine(cfg EngineConfig) *Engine {
	return &Engine{e: engine.New(cfg)}
}

// SubmitFunc submits an arbitrary task under the given kind label.
func (en *Engine) SubmitFunc(kind string, task func(ctx context.Context) (any, error), jo JobOptions) (*Job, error) {
	return en.e.Submit(jo.submission(kind, task))
}

// SubmitAlign queues a pairwise alignment; the job's result is *Alignment.
// opt.Context is overridden with the job's own context.
func (en *Engine) SubmitAlign(a, b *Sequence, opt Options, jo JobOptions) (*Job, error) {
	return en.e.Submit(jo.submission("align", func(ctx context.Context) (any, error) {
		o := opt
		o.Context = ctx
		if o.Recorder == nil {
			o.Recorder = jo.Recorder
		}
		return Align(a, b, o)
	}))
}

// SubmitAlignLocal queues a local alignment; the result is *LocalAlignment.
func (en *Engine) SubmitAlignLocal(a, b *Sequence, opt Options, jo JobOptions) (*Job, error) {
	return en.e.Submit(jo.submission("align-local", func(ctx context.Context) (any, error) {
		o := opt
		o.Context = ctx
		if o.Recorder == nil {
			o.Recorder = jo.Recorder
		}
		return AlignLocal(a, b, o)
	}))
}

// SubmitMSA queues a progressive multiple alignment; the result is *MSA.
func (en *Engine) SubmitMSA(seqs []*Sequence, opt Options, jo JobOptions) (*Job, error) {
	return en.e.Submit(jo.submission("msa", func(ctx context.Context) (any, error) {
		o := opt
		o.Context = ctx
		return AlignMSA(seqs, o)
	}))
}

// SubmitSearch queues a homology search; the result is []SearchHit.
func (en *Engine) SubmitSearch(query *Sequence, db []*Sequence, opt SearchOptions, jo JobOptions) (*Job, error) {
	return en.e.Submit(jo.submission("search", func(ctx context.Context) (any, error) {
		o := opt
		o.Context = ctx
		if o.Recorder == nil {
			o.Recorder = jo.Recorder
		}
		return Search(query, db, o)
	}))
}

// SequencePair is one unit of an alignment batch.
type SequencePair struct {
	A, B *Sequence
}

// SubmitAlignBatch queues one alignment per pair as a single batch: all
// units are admitted atomically (ErrQueueFull when the queue cannot take
// them all) and their results stream on Batch.Results as each pair finishes.
// Each unit's result is *Alignment.
func (en *Engine) SubmitAlignBatch(pairs []SequencePair, opt Options, jo JobOptions) (*Batch, error) {
	tasks := make([]engine.Task, len(pairs))
	for i, p := range pairs {
		if p.A == nil || p.B == nil {
			return nil, fmt.Errorf("fastlsa: batch pair %d has a nil sequence", i)
		}
		a, b := p.A, p.B
		tasks[i] = func(ctx context.Context) (any, error) {
			o := opt
			o.Context = ctx
			return Align(a, b, o)
		}
	}
	return en.e.SubmitBatch(engine.BatchSubmission{
		Kind:      "batch-align",
		Priority:  jo.Priority,
		Timeout:   jo.Timeout,
		Parent:    jo.Context,
		RequestID: jo.RequestID,
		Retry:     jo.Retry,
		Tasks:     tasks,
	})
}

// SubmitBatchFunc submits arbitrary tasks as one atomically-admitted batch.
func (en *Engine) SubmitBatchFunc(kind string, tasks []func(ctx context.Context) (any, error), jo JobOptions) (*Batch, error) {
	ts := make([]engine.Task, len(tasks))
	for i, t := range tasks {
		ts[i] = t
	}
	return en.e.SubmitBatch(engine.BatchSubmission{
		Kind:      kind,
		Priority:  jo.Priority,
		Timeout:   jo.Timeout,
		Parent:    jo.Context,
		RequestID: jo.RequestID,
		Retry:     jo.Retry,
		Tasks:     ts,
	})
}

// Job looks up a job by id (ErrJobNotFound when unknown or evicted).
func (en *Engine) Job(id string) (*Job, error) { return en.e.Job(id) }

// Cancel cancels a job by id.
func (en *Engine) Cancel(id string) error { return en.e.Cancel(id) }

// List snapshots all retained jobs, newest first.
func (en *Engine) List() []JobInfo { return en.e.List() }

// Stats snapshots the engine counters.
func (en *Engine) Stats() EngineStats { return en.e.Stats() }

// Shutdown stops admissions and drains until ctx is cancelled, then cancels
// whatever is still running and waits for the workers to exit.
func (en *Engine) Shutdown(ctx context.Context) error { return en.e.Shutdown(ctx) }
