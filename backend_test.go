package fastlsa_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"fastlsa"
	"fastlsa/internal/backend"
	"fastlsa/internal/core"
	"fastlsa/internal/fm"
	"fastlsa/internal/hirschberg"
	"fastlsa/internal/seq"
)

// TestAlgorithmRoundTrip is the registry-derived ParseAlgorithm/String
// round-trip: the table comes from backend.All(), so a newly registered
// backend that is not wired into the enum (or vice versa) fails here
// instead of drifting silently.
func TestAlgorithmRoundTrip(t *testing.T) {
	if got, err := fastlsa.ParseAlgorithm("auto"); err != nil || got != fastlsa.AlgoAuto {
		t.Fatalf(`ParseAlgorithm("auto") = %v, %v`, got, err)
	}
	if got, err := fastlsa.ParseAlgorithm(""); err != nil || got != fastlsa.AlgoAuto {
		t.Fatalf(`ParseAlgorithm("") = %v, %v`, got, err)
	}
	if got := fastlsa.AlgoAuto.String(); got != "auto" {
		t.Fatalf("AlgoAuto.String() = %q", got)
	}
	infos := backend.All()
	for i, info := range infos {
		algo := fastlsa.Algorithm(i + 1)
		if got := algo.String(); got != info.Name {
			t.Fatalf("Algorithm(%d).String() = %q, registry slot %d is %q", i+1, got, i, info.Name)
		}
		for _, name := range append([]string{info.Name}, info.Aliases...) {
			got, err := fastlsa.ParseAlgorithm(name)
			if err != nil {
				t.Fatalf("ParseAlgorithm(%q): %v", name, err)
			}
			if got != algo {
				t.Fatalf("ParseAlgorithm(%q) = %v, want %v", name, got, algo)
			}
		}
	}
	// The enum ends exactly where the registry does.
	if got := fastlsa.Algorithm(len(infos) + 1).String(); !strings.HasPrefix(got, "Algorithm(") {
		t.Fatalf("value past the registry renders %q", got)
	}
	if _, err := fastlsa.ParseAlgorithm("no-such-backend"); !errors.Is(err, fastlsa.ErrInvalidInput) {
		t.Fatalf("unknown name error %v", err)
	}
	// The WFA constant is wired to its registry slot.
	if got := fastlsa.AlgoWFA.String(); got != "wfa" {
		t.Fatalf("AlgoWFA.String() = %q", got)
	}
}

// TestBackendRegistryEquivalence pins the refactor byte-for-byte: for each
// rebased backend, the facade (now dispatching through the registry) must
// produce exactly the alignment the underlying engine produces when called
// directly — same score, same move sequence.
func TestBackendRegistryEquivalence(t *testing.T) {
	a, b, err := fastlsa.HomologousPair(260, fastlsa.DNA, fastlsa.DefaultHomology, 41)
	if err != nil {
		t.Fatal(err)
	}
	matrix, gap := fastlsa.DNASimple, fastlsa.Linear(-4)
	direct := map[fastlsa.Algorithm]func() (fm.Result, error){
		fastlsa.AlgoFastLSA: func() (fm.Result, error) {
			return core.Align(a, b, matrix, gap, core.Options{Workers: 1})
		},
		fastlsa.AlgoFullMatrix: func() (fm.Result, error) {
			return fm.Align(a, b, matrix, gap, nil, nil)
		},
		fastlsa.AlgoHirschberg: func() (fm.Result, error) {
			return hirschberg.Align(a, b, matrix, gap, hirschberg.Options{}, nil)
		},
		fastlsa.AlgoCompact: func() (fm.Result, error) {
			return fm.AlignCompact(a, b, matrix, gap, nil, nil)
		},
	}
	for algo, call := range direct {
		t.Run(algo.String(), func(t *testing.T) {
			want, err := call()
			if err != nil {
				t.Fatal(err)
			}
			var route fastlsa.RouteInfo
			got, err := fastlsa.Align(a, b, fastlsa.Options{
				Matrix: matrix, Gap: gap, Algorithm: algo, Workers: 1, Route: &route,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got.Score != want.Score {
				t.Fatalf("facade score %d, direct %d", got.Score, want.Score)
			}
			if got.Path.String() != want.Path.String() {
				t.Fatalf("facade path differs from direct path:\n%s\n%s", got.Path.String(), want.Path.String())
			}
			if route.Backend != algo.String() || route.Reason != backend.ReasonExplicit {
				t.Fatalf("route %+v", route)
			}
		})
	}
}

func divergencePair(t *testing.T, n int, sub float64, seed int64) (*fastlsa.Sequence, *fastlsa.Sequence) {
	t.Helper()
	a, b, err := fastlsa.HomologousPair(n, fastlsa.DNA, fastlsa.MutationModel{
		SubstitutionRate: sub,
		InsertionRate:    sub / 10,
		DeletionRate:     sub / 10,
		MaxIndelRun:      4,
		IndelExtend:      0.5,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// TestAutoRouting is the acceptance anchor: under AlgoAuto a ≥95%-identity
// DNA pair runs on WFA, a ≤70%-identity pair on FastLSA, with the decision
// reported through Options.Route and a backend.route trace span — and the
// WFA-routed run returns the same optimal score as the kernel layer.
func TestAutoRouting(t *testing.T) {
	matrix, gap := fastlsa.DNASimple, fastlsa.Linear(-4)

	t.Run("high-identity-to-wfa", func(t *testing.T) {
		a, b := divergencePair(t, 2000, 0.02, 51)
		tr := fastlsa.NewTrace(0)
		var route fastlsa.RouteInfo
		got, err := fastlsa.Align(a, b, fastlsa.Options{
			Matrix: matrix, Gap: gap, Route: &route, Trace: tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		if route.Backend != "wfa" || route.Reason != backend.ReasonLowDivergence {
			t.Fatalf("route %+v", route)
		}
		if route.Identity < backend.RouteIdentityThreshold {
			t.Fatalf("identity estimate %.3f below threshold", route.Identity)
		}
		want, err := fastlsa.Score(a, b, fastlsa.Options{Matrix: matrix, Gap: gap})
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want {
			t.Fatalf("wfa-routed score %d, kernel score %d", got.Score, want)
		}
		found := false
		for _, s := range tr.Spans() {
			if s.Name == fastlsa.SpanNameBackendRoute {
				found = true
				if s.Tags.Backend != "wfa" || s.Tags.Reason != backend.ReasonLowDivergence {
					t.Fatalf("span tags %+v", s.Tags)
				}
			}
		}
		if !found {
			t.Fatal("no backend.route span recorded")
		}
	})

	t.Run("high-divergence-to-fastlsa", func(t *testing.T) {
		a, b := divergencePair(t, 2000, 0.30, 52)
		var route fastlsa.RouteInfo
		if _, err := fastlsa.Align(a, b, fastlsa.Options{
			Matrix: matrix, Gap: gap, Route: &route,
		}); err != nil {
			t.Fatal(err)
		}
		if route.Backend != "fastlsa" || route.Reason != backend.ReasonHighDivergence {
			t.Fatalf("route %+v", route)
		}
	})

	t.Run("explicit-params-pin-fastlsa", func(t *testing.T) {
		a, b := divergencePair(t, 2000, 0.02, 53)
		var route fastlsa.RouteInfo
		if _, err := fastlsa.Align(a, b, fastlsa.Options{
			Matrix: matrix, Gap: gap, K: 8, Route: &route,
		}); err != nil {
			t.Fatal(err)
		}
		if route.Backend != "fastlsa" || route.Reason != backend.ReasonExplicitParams {
			t.Fatalf("route %+v", route)
		}
	})

	t.Run("ends-free-pins-fastlsa", func(t *testing.T) {
		a, b := divergencePair(t, 2000, 0.02, 54)
		var route fastlsa.RouteInfo
		if _, err := fastlsa.Align(a, b, fastlsa.Options{
			Matrix: matrix, Gap: gap, Mode: fastlsa.ModeOverlap, Route: &route,
		}); err != nil {
			t.Fatal(err)
		}
		if route.Backend != "fastlsa" || route.Reason != backend.ReasonEndsFree {
			t.Fatalf("route %+v", route)
		}
	})

	t.Run("non-uniform-matrix-pins-fastlsa", func(t *testing.T) {
		a, b, err := fastlsa.HomologousPair(500, fastlsa.Protein, fastlsa.MutationModel{SubstitutionRate: 0.02}, 55)
		if err != nil {
			t.Fatal(err)
		}
		var route fastlsa.RouteInfo
		if _, err := fastlsa.Align(a, b, fastlsa.Options{
			Matrix: fastlsa.BLOSUM62, Route: &route,
		}); err != nil {
			t.Fatal(err)
		}
		if route.Backend != "fastlsa" || route.Reason != backend.ReasonIncompatibleScoring {
			t.Fatalf("route %+v", route)
		}
	})
}

// TestAutoBudgetFallback: an auto-routed WFA run that outgrows the memory
// budget reruns on budget-planned FastLSA instead of failing, reporting the
// budget-fallback reason, and still returns the optimal score.
func TestAutoBudgetFallback(t *testing.T) {
	a, b := divergencePair(t, 2000, 0.04, 61)
	var route fastlsa.RouteInfo
	opt := fastlsa.Options{
		Matrix: fastlsa.DNASimple, Gap: fastlsa.Linear(-4),
		MemoryBudget: 20_000, Route: &route,
	}
	got, err := fastlsa.Align(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if route.Backend != "fastlsa" || route.Reason != backend.ReasonBudgetFallback {
		t.Skipf("WFA fit the budget on this pair (route %+v); fallback not exercised", route)
	}
	want, err := fastlsa.Score(a, b, fastlsa.Options{Matrix: opt.Matrix, Gap: opt.Gap})
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != want {
		t.Fatalf("fallback score %d, kernel score %d", got.Score, want)
	}
}

// TestExplicitWFA covers the forced-backend path: AlgoWFA serves uniform
// DNA scoring, rejects non-uniform matrices with ErrInvalidInput, and
// rejects ends-free modes like the other global-only backends.
func TestExplicitWFA(t *testing.T) {
	a, b := divergencePair(t, 400, 0.05, 71)
	var route fastlsa.RouteInfo
	got, err := fastlsa.Align(a, b, fastlsa.Options{
		Matrix: fastlsa.DNASimple, Gap: fastlsa.Linear(-4),
		Algorithm: fastlsa.AlgoWFA, Route: &route,
	})
	if err != nil {
		t.Fatal(err)
	}
	if route.Backend != "wfa" || route.Reason != backend.ReasonExplicit {
		t.Fatalf("route %+v", route)
	}
	want, err := fastlsa.Score(a, b, fastlsa.Options{Matrix: fastlsa.DNASimple, Gap: fastlsa.Linear(-4)})
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != want {
		t.Fatalf("wfa score %d, kernel score %d", got.Score, want)
	}

	pa, pb, err := fastlsa.HomologousPair(200, fastlsa.Protein, fastlsa.MutationModel{SubstitutionRate: 0.05}, 72)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fastlsa.Align(pa, pb, fastlsa.Options{
		Matrix: fastlsa.BLOSUM62, Algorithm: fastlsa.AlgoWFA,
	}); !errors.Is(err, fastlsa.ErrInvalidInput) {
		t.Fatalf("non-uniform matrix error %v", err)
	}
	if _, err := fastlsa.Align(a, b, fastlsa.Options{
		Matrix: fastlsa.DNASimple, Algorithm: fastlsa.AlgoWFA, Mode: fastlsa.ModeOverlap,
	}); !errors.Is(err, fastlsa.ErrInvalidInput) {
		t.Fatalf("ends-free wfa error %v", err)
	}
}

// TestWFADifferentialFacade reruns the WFA-vs-kernel differential at the
// facade level across divergence levels (the internal/wfa suite covers the
// kernel directly; this pins the facade threading).
func TestWFADifferentialFacade(t *testing.T) {
	for _, d := range []float64{0.01, 0.1, 0.3} {
		t.Run(fmt.Sprintf("div=%.2f", d), func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				a, b, err := seq.HomologousPair(300, seq.DNA, seq.MutationModel{
					SubstitutionRate: d, InsertionRate: d / 10, DeletionRate: d / 10,
					MaxIndelRun: 4, IndelExtend: 0.5,
				}, seed)
				if err != nil {
					t.Fatal(err)
				}
				opt := fastlsa.Options{Matrix: fastlsa.DNASimple, Gap: fastlsa.Linear(-4), Algorithm: fastlsa.AlgoWFA}
				got, err := fastlsa.Align(a, b, opt)
				if err != nil {
					t.Fatal(err)
				}
				want, err := fastlsa.Score(a, b, fastlsa.Options{Matrix: opt.Matrix, Gap: opt.Gap})
				if err != nil {
					t.Fatal(err)
				}
				if got.Score != want {
					t.Fatalf("seed %d: wfa %d, kernel %d", seed, got.Score, want)
				}
			}
		})
	}
}
