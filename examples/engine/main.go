// Engine tour: schedule alignment work through fastlsa.Engine — submit a
// batch of pairs that streams results as they finish, submit a large
// alignment job and cancel it mid-flight (showing it stops consuming CPU
// promptly), then print the scheduler's counters.
//
// Run: go run ./examples/engine
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"fastlsa"
)

func main() {
	eng := fastlsa.NewEngine(fastlsa.EngineConfig{Workers: 2, QueueDepth: 16})
	defer eng.Shutdown(context.Background())

	opt := fastlsa.Options{
		Matrix:  fastlsa.DNASimple,
		Gap:     fastlsa.Linear(-4),
		Workers: 1, // parallelism comes from the engine's pool here
	}

	// 1. A batch of homologous pairs, admitted atomically, results streaming
	// in completion order.
	pairs := make([]fastlsa.SequencePair, 6)
	for i := range pairs {
		a, b, err := fastlsa.HomologousPair(2000, fastlsa.DNA, fastlsa.DefaultHomology, int64(i+1))
		if err != nil {
			log.Fatal(err)
		}
		pairs[i] = fastlsa.SequencePair{A: a, B: b}
	}
	batch, err := eng.SubmitAlignBatch(pairs, opt, fastlsa.JobOptions{Priority: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch %s: %d pairs over 2 workers\n", batch.ID(), batch.Size())
	for r := range batch.Results() {
		al := r.Result.(*fastlsa.Alignment)
		fmt.Printf("  pair %d done: score %d, %d columns\n", r.Index, al.Score, al.Path.Len())
	}

	// 2. A job big enough to run for a while — cancel it mid-flight and
	// watch it abort promptly instead of burning CPU to completion.
	big1 := fastlsa.RandomSequence("x", 30000, fastlsa.DNA, 7)
	big2 := fastlsa.RandomSequence("y", 30000, fastlsa.DNA, 8)
	job, err := eng.SubmitAlign(big1, big2, opt, fastlsa.JobOptions{})
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let it get well into the fill
	start := time.Now()
	job.Cancel()
	if _, err := job.Wait(context.Background()); errors.Is(err, context.Canceled) {
		fmt.Printf("job %s cancelled mid-flight, aborted in %v\n", job.ID(), time.Since(start).Round(time.Microsecond))
	} else {
		fmt.Printf("job %s: unexpected outcome: %v\n", job.ID(), err)
	}

	// 3. A job with a deadline it cannot meet.
	job2, err := eng.SubmitAlign(big1, big2, opt, fastlsa.JobOptions{Timeout: 30 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := job2.Wait(context.Background()); errors.Is(err, context.DeadlineExceeded) {
		fmt.Printf("job %s expired at its 30ms deadline: %v\n", job2.ID(), job2.Info().State)
	}

	st := eng.Stats()
	fmt.Printf("\nengine stats: submitted=%d succeeded=%d cancelled=%d rejected=%d (workers=%d queue=%d)\n",
		st.Submitted, st.Succeeded, st.Cancelled, st.Rejected, st.Workers, st.QueueDepth)
}
