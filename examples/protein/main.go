// Protein: homology search between protein sequences — the application of
// the paper's §1.1. Aligns a pair of related proteins under three scoring
// schemes (the full Dayhoff-derived MDM78 matrix the paper's tooling used,
// BLOSUM62 with linear gaps, and BLOSUM62 with affine gaps), comparing all
// three algorithm families on each and confirming they agree.
//
// Run: go run ./examples/protein [-n 2000]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"fastlsa"
)

func main() {
	n := flag.Int("n", 2000, "protein length (residues)")
	flag.Parse()

	a, b, err := fastlsa.HomologousPair(*n, fastlsa.Protein, fastlsa.MutationModel{
		SubstitutionRate: 0.25,
		InsertionRate:    0.03,
		DeletionRate:     0.03,
		MaxIndelRun:      5,
		IndelExtend:      0.4,
	}, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proteins: %d and %d residues\n\n", a.Len(), b.Len())

	schemes := []struct {
		name   string
		matrix *fastlsa.Matrix
		gap    fastlsa.Gap
	}{
		{"MDM78 (Dayhoff), linear -10", fastlsa.MDM78, fastlsa.Linear(-10)},
		{"BLOSUM62, linear -6", fastlsa.BLOSUM62, fastlsa.Linear(-6)},
		{"BLOSUM62, affine -11/-1", fastlsa.BLOSUM62, fastlsa.Affine(-11, -1)},
	}
	engines := []fastlsa.Algorithm{fastlsa.AlgoFastLSA, fastlsa.AlgoFullMatrix, fastlsa.AlgoHirschberg}

	for _, sc := range schemes {
		fmt.Printf("— %s —\n", sc.name)
		var ref int64
		for i, algo := range engines {
			opt := fastlsa.Options{Matrix: sc.matrix, Gap: sc.gap, Algorithm: algo, Workers: 1}
			start := time.Now()
			al, err := fastlsa.Align(a, b, opt)
			if err != nil {
				log.Fatal(err)
			}
			elapsed := time.Since(start)
			st := al.Stats()
			fmt.Printf("  %-11s score=%-8d identity=%4.1f%%  %v\n",
				algo, al.Score, 100*st.Identity, elapsed.Round(time.Microsecond))
			if i == 0 {
				ref = al.Score
			} else if al.Score != ref {
				log.Fatalf("engines disagree: %d vs %d", al.Score, ref)
			}
		}
	}

	// Show the head of one alignment.
	al, err := fastlsa.Align(a, b, fastlsa.Options{Matrix: fastlsa.BLOSUM62, Gap: fastlsa.Affine(-11, -1)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nalignment head (BLOSUM62, affine gaps):")
	var buf bytes.Buffer
	if err := al.Fprint(&buf, fastlsa.FormatOptions{Width: 60, Matrix: fastlsa.BLOSUM62, ShowRuler: true}); err != nil {
		log.Fatal(err)
	}
	lines := strings.SplitAfter(buf.String(), "\n")
	if len(lines) > 12 {
		lines = lines[:12]
	}
	fmt.Print(strings.Join(lines, ""))
	fmt.Println("  ...")
}
