// Localsearch: linear-space local alignment — finding a conserved region
// shared by two otherwise unrelated sequences, using FastLSA as the path
// reconstruction engine (the Smith-Waterman matrix is never stored; see
// internal/core.AlignLocal).
//
// The program plants a mutated copy of a "gene" inside two long unrelated
// backgrounds, then recovers it with both the linear-space engine and the
// full-matrix Smith-Waterman, comparing results and memory.
//
// Run: go run ./examples/localsearch [-n 20000] [-gene 1500]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"fastlsa"
)

func main() {
	n := flag.Int("n", 20000, "background length per sequence")
	gene := flag.Int("gene", 1500, "conserved gene length")
	flag.Parse()

	// The shared gene, mutated independently in each genome.
	geneRef := fastlsa.RandomSequence("gene", *gene, fastlsa.DNA, 501)
	model := fastlsa.MutationModel{SubstitutionRate: 0.08, InsertionRate: 0.01, DeletionRate: 0.01, MaxIndelRun: 4, IndelExtend: 0.3}
	geneA, err := model.Mutate("geneA", geneRef, 502)
	if err != nil {
		log.Fatal(err)
	}
	geneB, err := model.Mutate("geneB", geneRef, 503)
	if err != nil {
		log.Fatal(err)
	}

	flankA1 := fastlsa.RandomSequence("", *n/2, fastlsa.DNA, 504).String()
	flankA2 := fastlsa.RandomSequence("", *n/2, fastlsa.DNA, 505).String()
	flankB1 := fastlsa.RandomSequence("", *n/3, fastlsa.DNA, 506).String()
	flankB2 := fastlsa.RandomSequence("", 2**n/3, fastlsa.DNA, 507).String()

	a, err := fastlsa.NewSequence("genomeA", flankA1+geneA.String()+flankA2, fastlsa.DNA)
	if err != nil {
		log.Fatal(err)
	}
	b, err := fastlsa.NewSequence("genomeB", flankB1+geneB.String()+flankB2, fastlsa.DNA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("genomes: %d and %d bases; planted gene: %d bases at a[%d] and b[%d]\n\n",
		a.Len(), b.Len(), *gene, len(flankA1), len(flankB1))

	opt := fastlsa.Options{Matrix: fastlsa.DNASimple, Gap: fastlsa.Linear(-6)}

	start := time.Now()
	loc, err := fastlsa.AlignLocal(a, b, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("linear-space local alignment (%v):\n", time.Since(start).Round(time.Millisecond))
	report(loc, len(flankA1), len(flankB1), *gene)

	// Full-matrix Smith-Waterman for comparison (stores (m+1)(n+1) cells).
	optFM := opt
	optFM.Algorithm = fastlsa.AlgoFullMatrix
	start = time.Now()
	locFM, err := fastlsa.AlignLocal(a, b, optFM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full-matrix Smith-Waterman (%v):\n", time.Since(start).Round(time.Millisecond))
	report(locFM, len(flankA1), len(flankB1), *gene)

	if loc.Score != locFM.Score {
		log.Fatalf("engines disagree: %d vs %d", loc.Score, locFM.Score)
	}
	full := int64(a.Len()+1) * int64(b.Len()+1)
	fmt.Printf("full SW matrix: %d entries (%.1f GB at 8 bytes/entry); the linear-space engine held two rows plus FastLSA's grid\n",
		full, float64(full)*8/1e9)
}

func report(loc *fastlsa.LocalAlignment, geneStartA, geneStartB, gene int) {
	fmt.Printf("  score=%d  a[%d:%d] x b[%d:%d] (%d x %d bases)\n",
		loc.Score, loc.StartA, loc.EndA, loc.StartB, loc.EndB,
		loc.EndA-loc.StartA, loc.EndB-loc.StartB)
	overlapA := overlap(loc.StartA, loc.EndA, geneStartA, geneStartA+gene)
	overlapB := overlap(loc.StartB, loc.EndB, geneStartB, geneStartB+gene)
	fmt.Printf("  recovered %.0f%% of the planted gene in a, %.0f%% in b\n\n",
		100*float64(overlapA)/float64(gene), 100*float64(overlapB)/float64(gene))
}

func overlap(lo1, hi1, lo2, hi2 int) int {
	lo := lo1
	if lo2 > lo {
		lo = lo2
	}
	hi := hi1
	if hi2 < hi {
		hi = hi2
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}
