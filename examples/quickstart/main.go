// Quickstart: the paper's running example (§1.1, Table 1, Figure 1) through
// the public API. Aligns TDVLKAD against TLDKLLKD with the modified Dayhoff
// excerpt and a -10 gap penalty, printing the optimal alignment and its
// score (82).
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"fastlsa"
)

func main() {
	a, err := fastlsa.NewSequence("query", "TDVLKAD", fastlsa.Table1Alphabet)
	if err != nil {
		log.Fatal(err)
	}
	b, err := fastlsa.NewSequence("target", "TLDKLLKD", fastlsa.Table1Alphabet)
	if err != nil {
		log.Fatal(err)
	}

	al, err := fastlsa.Align(a, b, fastlsa.Options{
		Matrix: fastlsa.Table1,      // the paper's Table 1 similarity scores
		Gap:    fastlsa.Linear(-10), // the paper's gap penalty
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("optimal score: %d (paper: 82)\n\n", al.Score)
	if err := al.Fprint(os.Stdout, fastlsa.FormatOptions{}); err != nil {
		log.Fatal(err)
	}

	rowA, rowB := al.Rows()
	fmt.Printf("rows: %s / %s\n", rowA, rowB)
	fmt.Printf("cigar: %s  extended: %s\n", al.Path.CIGAR(), al.ExtendedCIGAR())
	st := al.Stats()
	fmt.Printf("identity: %.0f%% (%d of %d columns)\n", 100*st.Identity, st.Matches, st.Columns)
}
