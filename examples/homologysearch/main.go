// Homologysearch: the paper's motivating application end to end — scan a
// query against a sequence database, rank hits by optimal local alignment
// score, attach E-values from fitted Gumbel statistics, and print the best
// alignment. Two true homologs (one close, one remote) are planted among
// unrelated background sequences.
//
// Run: go run ./examples/homologysearch [-db 200] [-n 400]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"fastlsa"
)

func main() {
	dbSize := flag.Int("db", 200, "database size (sequences)")
	n := flag.Int("n", 400, "query length (bases)")
	flag.Parse()

	query := fastlsa.RandomSequence("query", *n, fastlsa.DNA, 2001)

	// Database: background noise plus two planted homologs.
	db := make([]*fastlsa.Sequence, 0, *dbSize)
	for i := 0; i < *dbSize-2; i++ {
		db = append(db, fastlsa.RandomSequence(fmt.Sprintf("bg%04d", i), 300+i%400, fastlsa.DNA, 3000+int64(i)))
	}
	close_, err := fastlsa.MutationModel{SubstitutionRate: 0.05, InsertionRate: 0.01, DeletionRate: 0.01, MaxIndelRun: 3, IndelExtend: 0.3}.Mutate("close-homolog", query, 2002)
	if err != nil {
		log.Fatal(err)
	}
	remote, err := fastlsa.MutationModel{SubstitutionRate: 0.30, InsertionRate: 0.04, DeletionRate: 0.04, MaxIndelRun: 5, IndelExtend: 0.4}.Mutate("remote-homolog", query, 2003)
	if err != nil {
		log.Fatal(err)
	}
	db = append(db, close_, remote)
	fmt.Printf("query: %d bases; database: %d sequences\n", query.Len(), len(db))

	gap := fastlsa.Linear(-12)
	fmt.Print("fitting Gumbel statistics for the scoring system... ")
	start := time.Now()
	params, err := fastlsa.EstimateStatistics(fastlsa.DNASimple, gap, 200, 80, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %v\n  %s\n\n", time.Since(start).Round(time.Millisecond), params)

	start = time.Now()
	hits, err := fastlsa.Search(query, db, fastlsa.SearchOptions{
		Matrix:     fastlsa.DNASimple,
		Gap:        gap,
		TopK:       8,
		Alignments: 1,
		Stats:      &params,
		Workers:    0, // all CPUs
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scanned %d sequences in %v\n\n", len(db), time.Since(start).Round(time.Millisecond))

	fmt.Printf("%-4s %-16s %8s %12s %8s\n", "#", "id", "score", "e-value", "bits")
	for i, h := range hits {
		marker := ""
		if h.EValue < 1e-3 {
			marker = "  <- significant"
		}
		fmt.Printf("%-4d %-16s %8d %12.3g %8.1f%s\n", i+1, h.ID, h.Score, h.EValue, h.BitScore, marker)
	}

	if len(hits) > 0 && hits[0].Alignment != nil {
		loc := hits[0].Alignment
		fmt.Printf("\nbest alignment (%s, query[%d:%d] x target[%d:%d]):\n",
			hits[0].ID, loc.StartA, loc.EndA, loc.StartB, loc.EndB)
		sub := &fastlsa.Alignment{
			A:     query.Slice(loc.StartA, loc.EndA),
			B:     db[hits[0].Index].Slice(loc.StartB, loc.EndB),
			Path:  loc.Path,
			Score: loc.Score,
		}
		if err := sub.Fprint(os.Stdout, fastlsa.FormatOptions{Width: 60, Matrix: fastlsa.DNASimple, ShowRuler: true}); err != nil {
			log.Fatal(err)
		}
	}
}
