// Genome: whole-genome-scale alignment under a memory budget — the
// scenario that motivates FastLSA (paper §1: "aligning two sequences with
// 10,000 letters each requires 400 Mbytes" for the full matrix).
//
// The program generates a pair of homologous DNA sequences (default 50,000
// bases, ~2.5 billion DPM cells would need ~20 GB as a stored matrix),
// aligns them with Parallel FastLSA under a budget of a few megabytes, and
// reports throughput, memory, and identity.
//
// Run: go run ./examples/genome [-n 50000] [-budget 2000000] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"fastlsa"
)

func main() {
	n := flag.Int("n", 50000, "reference genome length (bases)")
	budget := flag.Int64("budget", 2_000_000, "memory budget in DPM entries (8 bytes each)")
	workers := flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
	flag.Parse()

	fmt.Printf("generating a homologous pair of ~%d bases...\n", *n)
	a, b, err := fastlsa.HomologousPair(*n, fastlsa.DNA, fastlsa.DefaultHomology, 2024)
	if err != nil {
		log.Fatal(err)
	}
	fullMatrix := int64(a.Len()+1) * int64(b.Len()+1)
	fmt.Printf("sequences: %d x %d bases\n", a.Len(), b.Len())
	fmt.Printf("full DP matrix would need %d entries (%.1f GB); budget is %d entries (%.1f MB)\n",
		fullMatrix, float64(fullMatrix)*8/1e9, *budget, float64(*budget)*8/1e6)

	var counters fastlsa.Counters
	// A span trace gives the per-phase time breakdown below; recording adds
	// one ring-buffer append per tile, nothing on the cell loops.
	trace := fastlsa.NewTrace(0)
	opt := fastlsa.Options{
		Matrix:       fastlsa.DNASimple,
		Gap:          fastlsa.Linear(-4),
		Algorithm:    fastlsa.AlgoAuto, // FastLSA adapted to the budget
		MemoryBudget: *budget,
		Workers:      *workers,
		Counters:     &counters,
		Trace:        trace,
	}

	start := time.Now()
	al, err := fastlsa.Align(a, b, opt)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	st := al.Stats()
	snap := counters.Snapshot()
	p := *workers
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("\naligned in %v with %d workers\n", elapsed.Round(time.Millisecond), p)
	fmt.Printf("score: %d, identity: %.1f%%, alignment columns: %d\n", al.Score, 100*st.Identity, st.Columns)
	fmt.Printf("cells computed: %d (%.2fx the matrix; Hirschberg would be ~2x)\n",
		snap.Cells, float64(snap.Cells)/(float64(a.Len())*float64(b.Len())))
	fmt.Printf("throughput: %.1f Mcells/s\n", float64(snap.Cells)/elapsed.Seconds()/1e6)
	fmt.Printf("fill tiles: %d (wavefront phases %d/%d/%d)\n",
		snap.FillTiles, snap.Phase1Tiles, snap.Phase2Tiles, snap.Phase3Tiles)
	// Degradation report: under a tight budget the parallel fill shrinks its
	// tile mesh (or falls back to the sequential block loop) instead of
	// failing — these counters say how often that happened.
	fmt.Printf("memory degradation: %d mesh shrinks, %d sequential-fill fallbacks, fill tiles planned/executed: %d/%d\n",
		snap.MeshShrinks, snap.SeqFillFallbacks, snap.PlannedFillTiles, snap.ExecutedFillTiles)

	// Where the time went, from the recorded spans: total tile-fill time per
	// wavefront phase (Figure 13: ramp-up / saturated / ramp-down) plus the
	// base-case and traceback totals. Phase-2 should dominate on big inputs —
	// that is where all P workers are busy.
	fmt.Printf("\nper-phase time breakdown (sum of span durations across workers):\n")
	var fillTotal time.Duration
	for _, tot := range trace.Totals() {
		if tot.Name == fastlsa.SpanNameFillTile {
			fillTotal += tot.Total
		}
	}
	for _, tot := range trace.Totals() {
		switch tot.Name {
		case fastlsa.SpanNameFillTile:
			share := 0.0
			if fillTotal > 0 {
				share = 100 * float64(tot.Total) / float64(fillTotal)
			}
			fmt.Printf("  fill phase %d: %10v over %6d tiles (%4.1f%% of fill time)\n",
				tot.Phase, tot.Total.Round(time.Microsecond), tot.Count, share)
		case fastlsa.SpanNameFillBlock:
			fmt.Printf("  fill (sequential blocks): %10v over %6d blocks\n",
				tot.Total.Round(time.Microsecond), tot.Count)
		case fastlsa.SpanNameBaseCase:
			fmt.Printf("  base cases:   %10v over %6d runs\n", tot.Total.Round(time.Microsecond), tot.Count)
		case fastlsa.SpanNameTraceback:
			fmt.Printf("  traceback:    %10v over %6d walks\n", tot.Total.Round(time.Microsecond), tot.Count)
		}
	}
	if trace.Dropped() > 0 {
		fmt.Printf("  (ring dropped %d spans; totals above remain exact)\n", trace.Dropped())
	}
}
