// Family: multiple sequence alignment of a protein family — the downstream
// workflow pairwise alignment exists to serve. The program simulates a
// family (one ancestor, several diverged descendants), builds a progressive
// MSA (FastLSA pairwise distances, UPGMA guide tree, sum-of-pairs profile
// merging), and prints the guide tree, the alignment head, and a consensus
// line.
//
// Run: go run ./examples/family [-members 6] [-n 400]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"strings"

	"fastlsa"
)

func main() {
	members := flag.Int("members", 6, "family size")
	n := flag.Int("n", 400, "ancestor length (residues)")
	flag.Parse()

	// Simulate the family: descendants diverge from one ancestor.
	ancestor := fastlsa.RandomSequence("ancestor", *n, fastlsa.Protein, 41)
	model := fastlsa.MutationModel{
		SubstitutionRate: 0.18,
		InsertionRate:    0.02,
		DeletionRate:     0.02,
		MaxIndelRun:      4,
		IndelExtend:      0.4,
	}
	seqs := []*fastlsa.Sequence{ancestor}
	for i := 1; i < *members; i++ {
		m, err := model.Mutate(fmt.Sprintf("member%d", i), ancestor, 41+int64(i)*7)
		if err != nil {
			log.Fatal(err)
		}
		seqs = append(seqs, m)
	}
	fmt.Printf("family of %d proteins, %d..%d residues\n\n", len(seqs), minLen(seqs), maxLen(seqs))

	res, err := fastlsa.AlignMSA(seqs, fastlsa.Options{
		Matrix: fastlsa.BLOSUM62,
		Gap:    fastlsa.Linear(-8),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guide tree: %s\n", res.Tree)
	fmt.Printf("alignment: %d columns, sum-of-pairs score %d\n\n", res.Columns, res.SumOfPairs)

	// Print the first blocks plus a consensus row.
	var buf bytes.Buffer
	if err := res.Fprint(&buf, 60); err != nil {
		log.Fatal(err)
	}
	lines := strings.SplitAfter(buf.String(), "\n")
	blockLines := len(seqs) + 1
	if len(lines) > 2*blockLines {
		lines = lines[:2*blockLines]
	}
	fmt.Print(strings.Join(lines, ""))
	fmt.Println("...")

	cons, conserved := consensus(res.Rows)
	fmt.Printf("\nconsensus (first 60): %s\n", cons[:min(60, len(cons))])
	fmt.Printf("fully conserved columns: %d of %d (%.0f%%)\n",
		conserved, res.Columns, 100*float64(conserved)/float64(res.Columns))
}

// consensus returns the majority letter per column ('.' where no residue
// reaches half) and the count of fully conserved columns.
func consensus(rows []string) (string, int) {
	if len(rows) == 0 {
		return "", 0
	}
	cols := len(rows[0])
	out := make([]byte, cols)
	conserved := 0
	for c := 0; c < cols; c++ {
		counts := map[byte]int{}
		for _, r := range rows {
			counts[r[c]]++
		}
		bestCh, bestN := byte('.'), 0
		for ch, n := range counts {
			if ch != '-' && (n > bestN || (n == bestN && ch < bestCh)) {
				bestCh, bestN = ch, n
			}
		}
		if bestN == len(rows) {
			conserved++
		}
		if bestN*2 >= len(rows) {
			out[c] = bestCh
		} else {
			out[c] = '.'
		}
	}
	return string(out), conserved
}

func minLen(seqs []*fastlsa.Sequence) int {
	m := seqs[0].Len()
	for _, s := range seqs {
		if s.Len() < m {
			m = s.Len()
		}
	}
	return m
}

func maxLen(seqs []*fastlsa.Sequence) int {
	m := 0
	for _, s := range seqs {
		if s.Len() > m {
			m = s.Len()
		}
	}
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
