// Tuning: the paper's central case study (§1, §3-§5) in miniature — how the
// parameters k (grid divisions), BM (base-case buffer) and P (workers) trade
// memory for recomputation and parallel efficiency on one problem.
//
// The program sweeps each parameter while holding the others fixed and
// prints the measured wall-clock, cells computed (recomputation factor) and
// peak budgeted memory, mirroring experiments E5-E7.
//
// Run: go run ./examples/tuning [-n 4000]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"fastlsa"
)

func main() {
	n := flag.Int("n", 4000, "sequence length")
	flag.Parse()

	a, b, err := fastlsa.HomologousPair(*n, fastlsa.DNA, fastlsa.DefaultHomology, 99)
	if err != nil {
		log.Fatal(err)
	}
	area := float64(a.Len()) * float64(b.Len())
	fmt.Printf("problem: %d x %d DNA (full matrix = %.0f cells)\n\n", a.Len(), b.Len(), area)

	measure := func(opt fastlsa.Options) (time.Duration, float64, int64) {
		var c fastlsa.Counters
		opt.Matrix = fastlsa.DNASimple
		opt.Gap = fastlsa.Linear(-4)
		opt.Algorithm = fastlsa.AlgoFastLSA
		opt.Counters = &c
		start := time.Now()
		if _, err := fastlsa.Align(a, b, opt); err != nil {
			log.Fatal(err)
		}
		d := time.Since(start)
		return d, float64(c.Cells.Load()) / area, c.PeakGridEntries.Load()
	}

	fmt.Println("— effect of k (BM=16Ki, sequential) —")
	fmt.Println("   k    time        recompute   bound (k/(k-1))^2")
	for _, k := range []int{2, 3, 4, 6, 8, 16, 32} {
		budget := int64(8*k*(a.Len()+b.Len())) + 64*1024
		d, f, _ := measure(fastlsa.Options{K: k, BaseCells: 16 * 1024, Workers: 1, MemoryBudget: budget})
		bound := float64(k*k) / float64((k-1)*(k-1))
		fmt.Printf("  %2d    %-10v  %.3f       %.3f\n", k, d.Round(time.Millisecond), f, bound)
	}

	fmt.Println("\n— effect of BM (k=8, sequential) —")
	fmt.Println("   BM        time        recompute   base-cases")
	for _, bm := range []int{1 << 8, 1 << 12, 1 << 16, 1 << 20} {
		var c fastlsa.Counters
		start := time.Now()
		if _, err := fastlsa.Align(a, b, fastlsa.Options{
			Matrix: fastlsa.DNASimple, Gap: fastlsa.Linear(-4),
			Algorithm: fastlsa.AlgoFastLSA, K: 8, BaseCells: bm, Workers: 1, Counters: &c,
		}); err != nil {
			log.Fatal(err)
		}
		d := time.Since(start)
		fmt.Printf("  %-8d  %-10v  %.3f       %d\n",
			bm, d.Round(time.Millisecond), float64(c.Cells.Load())/area, c.BaseCases.Load())
	}

	fmt.Printf("\n— effect of P (k=8, BM=64Ki; host has %d CPUs) —\n", runtime.GOMAXPROCS(0))
	fmt.Println("   P    time        speedup")
	var base time.Duration
	for _, p := range []int{1, 2, 4, 8} {
		d, _, _ := measure(fastlsa.Options{K: 8, BaseCells: 64 * 1024, Workers: p})
		if p == 1 {
			base = d
		}
		fmt.Printf("  %2d    %-10v  %.2fx\n", p, d.Round(time.Millisecond), float64(base)/float64(d))
	}
}
