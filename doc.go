// Package fastlsa is a production-quality Go implementation of FastLSA —
// the Fast Linear-Space Alignment algorithm of Driga, Lu, Schaeffer,
// Szafron, Charter and Parsons ("FastLSA: A Fast, Linear-Space, Parallel and
// Sequential Algorithm for Sequence Alignment", ICPP 2003) — together with
// the full-matrix (Needleman-Wunsch / Smith-Waterman) and Hirschberg
// baselines the paper compares against.
//
// # Overview
//
// Pairwise optimal alignment of sequences of lengths m and n is a dynamic
// program over an (m+1) x (n+1) matrix. The three families implemented here
// trade space for recomputation:
//
//   - Full matrix (FM): O(mn) space, every cell computed once.
//   - Hirschberg: O(min(m,n)) space, ~2x cell recomputation.
//   - FastLSA(k, BM): adapts between the two — a k x k grid of cached
//     boundary lines plus a BM-entry base-case buffer bound recomputation by
//     (k/(k-1))^2 while keeping space linear; with BM >= (m+1)(n+1) it
//     degenerates to FM with no recomputation.
//
// All three produce the same optimal alignment for a given scoring function;
// FastLSA and FM produce byte-identical paths.
//
// Parallel FastLSA executes every grid fill and large base case with a
// diagonal-wavefront pool of P goroutine workers over an R x C tiling.
//
// # Quick start
//
//	a, _ := fastlsa.NewSequence("query", "TDVLKAD", fastlsa.Table1Alphabet)
//	b, _ := fastlsa.NewSequence("target", "TLDKLLKD", fastlsa.Table1Alphabet)
//	al, err := fastlsa.Align(a, b, fastlsa.Options{
//	    Matrix: fastlsa.Table1,
//	    Gap:    fastlsa.Linear(-10),
//	})
//	if err != nil { ... }
//	fmt.Println(al.Score) // 82, the paper's Figure 1 example
//
// See the examples/ directory for runnable programs and DESIGN.md /
// EXPERIMENTS.md for the paper-reproduction map.
package fastlsa
