package fastlsa_test

import (
	"fmt"

	"fastlsa"
)

// The paper's Figure 1 worked example through every engine.
func ExampleAlign_engines() {
	a, _ := fastlsa.NewSequence("a", "TDVLKAD", fastlsa.Table1Alphabet)
	b, _ := fastlsa.NewSequence("b", "TLDKLLKD", fastlsa.Table1Alphabet)
	for _, algo := range []fastlsa.Algorithm{
		fastlsa.AlgoFastLSA, fastlsa.AlgoFullMatrix, fastlsa.AlgoHirschberg, fastlsa.AlgoCompact,
	} {
		al, err := fastlsa.Align(a, b, fastlsa.Options{
			Matrix: fastlsa.Table1, Gap: fastlsa.Linear(-10), Algorithm: algo, Workers: 1,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d\n", algo, al.Score)
	}
	// Output:
	// fastlsa: 82
	// fm: 82
	// hirschberg: 82
	// compact: 82
}

func ExampleScore() {
	a, _ := fastlsa.NewSequence("a", "ACGTACGT", fastlsa.DNA)
	b, _ := fastlsa.NewSequence("b", "ACGAACGT", fastlsa.DNA)
	score, err := fastlsa.Score(a, b, fastlsa.Options{
		Matrix: fastlsa.DNASimple, Gap: fastlsa.Linear(-4),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(score) // 7 matches * 5 - 4
	// Output: 31
}

func ExampleAlignLocal() {
	a, _ := fastlsa.NewSequence("a", "TTTTACGTACGTTTTT", fastlsa.DNA)
	b, _ := fastlsa.NewSequence("b", "GGGGGACGTACGTGGG", fastlsa.DNA)
	loc, err := fastlsa.AlignLocal(a, b, fastlsa.Options{
		Matrix: fastlsa.DNASimple, Gap: fastlsa.Linear(-4), Workers: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("score %d at a[%d:%d]\n", loc.Score, loc.StartA, loc.EndA)
	// Output: score 40 at a[4:12]
}

func ExampleAlignMSA() {
	s1, _ := fastlsa.NewSequence("s1", "ACGTACGTAC", fastlsa.DNA)
	s2, _ := fastlsa.NewSequence("s2", "ACGTTCGTAC", fastlsa.DNA)
	s3, _ := fastlsa.NewSequence("s3", "ACGACGTAC", fastlsa.DNA)
	res, err := fastlsa.AlignMSA([]*fastlsa.Sequence{s1, s2, s3}, fastlsa.Options{
		Matrix: fastlsa.DNASimple, Gap: fastlsa.Linear(-6), Workers: 1,
	})
	if err != nil {
		panic(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row)
	}
	// Output:
	// ACGTACGTAC
	// ACGTTCGTAC
	// ACG-ACGTAC
}

func ExampleAlign_overlap() {
	// The suffix of a overlaps the prefix of b.
	a, _ := fastlsa.NewSequence("a", "TTTTTTACGTACGT", fastlsa.DNA)
	b, _ := fastlsa.NewSequence("b", "ACGTACGTGGGGGG", fastlsa.DNA)
	al, err := fastlsa.Align(a, b, fastlsa.Options{
		Matrix: fastlsa.DNASimple, Gap: fastlsa.Linear(-12),
		Mode: fastlsa.ModeOverlap, Workers: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(al.Score) // 8 overlapping matches * 5
	// Output: 40
}

func ExampleAlignment_EditScript() {
	a, _ := fastlsa.NewSequence("a", "ACGTACGT", fastlsa.DNA)
	b, _ := fastlsa.NewSequence("b", "ACGACGTT", fastlsa.DNA)
	al, err := fastlsa.Align(a, b, fastlsa.Options{
		Matrix: fastlsa.DNASimple, Gap: fastlsa.Linear(-4), Workers: 1,
	})
	if err != nil {
		panic(err)
	}
	rebuilt, err := fastlsa.ApplyEditScript(a, al.EditScript(), fastlsa.DNA)
	if err != nil {
		panic(err)
	}
	fmt.Println(rebuilt.String() == b.String())
	// Output: true
}

func ExampleTranslate() {
	gene, _ := fastlsa.NewSequence("gene", "ATGGATAAATTAGTTTAA", fastlsa.DNA)
	prot, err := fastlsa.Translate(gene, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(prot.String())
	// Output: MDKLV
}
