package fastlsa

import (
	"context"
	"errors"
	"fmt"
	"io"

	"fastlsa/internal/align"
	"fastlsa/internal/backend"
	"fastlsa/internal/core"
	"fastlsa/internal/fm"
	"fastlsa/internal/hirschberg"
	"fastlsa/internal/index"
	"fastlsa/internal/kernel"
	"fastlsa/internal/memory"
	"fastlsa/internal/msa"
	"fastlsa/internal/obs"
	"fastlsa/internal/scoring"
	"fastlsa/internal/search"
	"fastlsa/internal/seq"
	"fastlsa/internal/significance"
	"fastlsa/internal/stats"
	"fastlsa/internal/wfa"
)

// Re-exported substrate types. These aliases make the internal packages'
// types part of the public API surface without duplicating them.
type (
	// Sequence is a validated residue sequence over an Alphabet.
	Sequence = seq.Sequence
	// Alphabet is a residue universe (DNA, Protein, or custom).
	Alphabet = seq.Alphabet
	// MutationModel derives homologous sequence pairs for benchmarking.
	MutationModel = seq.MutationModel
	// Matrix is a symmetric residue-similarity table.
	Matrix = scoring.Matrix
	// Gap is a linear or affine gap-penalty model.
	Gap = scoring.Gap
	// Path is a DPM traceback path.
	Path = align.Path
	// Alignment is a scored pairwise alignment.
	Alignment = align.Alignment
	// Stats is an alignment-column summary (matches, gaps, identity).
	Stats = align.Stats
	// Counters collects instrumentation (cells computed, base cases, ...).
	Counters = stats.Counters
	// CounterSnapshot is a plain-value copy of Counters (Counters.Snapshot),
	// JSON-servable — degradation counters included.
	CounterSnapshot = stats.Snapshot
	// Trace records spans of a run (general/base cases, grid fills, phase-
	// tagged wavefront tiles, tracebacks) for Chrome trace_event export.
	// Nil-safe like Counters: an absent trace costs nothing.
	Trace = obs.Trace
	// TraceTags carries a span's dimensions (rows, cols, phase, worker).
	TraceTags = obs.Tags
	// TraceSpan is one recorded interval of a Trace.
	TraceSpan = obs.Span
	// Recorder is a bounded per-job flight recorder: the engine, router and
	// solver kernels log admission, retries, routing decisions, degradation
	// steps and phase completions into it (NewRecorder; nil-safe).
	Recorder = obs.Recorder
	// RecorderEvent is one flight-recorder entry.
	RecorderEvent = obs.Event
	// RecorderSnapshot is a point-in-time copy of a Recorder's timeline.
	RecorderSnapshot = obs.RecorderSnapshot
	// SpanTotal is one (name, phase) aggregate row of Trace.Totals.
	SpanTotal = obs.SpanTotal
	// FormatOptions controls Alignment pretty-printing.
	FormatOptions = align.FormatOptions
	// Mode selects which terminal gaps are free (ends-free alignment).
	Mode = align.Mode
	// LocalAlignment is a Smith-Waterman local alignment result.
	LocalAlignment = fm.LocalResult
	// MSA is a progressive multiple sequence alignment result.
	MSA = msa.Result
	// SearchHit is one ranked database match from Search.
	SearchHit = search.Hit
	// Index is a q-gram inverted index over a sequence database — the
	// lossless seed filter behind corpus-scale Search (BuildIndex).
	Index = index.Index
	// Corpus is a sequence database paired with its Index (LoadCorpus /
	// NewCorpus), the cached substrate of a search server.
	Corpus = index.Corpus
	// SearchProbe is the filter-phase accounting of an indexed search
	// (entries scanned, candidates kept, prune reasons, selectivity).
	SearchProbe = index.Probe
	// GumbelParams are fitted extreme-value statistics for local scores.
	GumbelParams = significance.Params
	// EditOp is one operation of an edit script (Alignment.EditScript).
	EditOp = align.EditOp
	// CheckpointSink persists grid-cache snapshots for one run and supplies
	// the previous snapshot on resume (Options.Checkpoint; see
	// docs/DURABILITY.md for the blob format and resume semantics).
	CheckpointSink = core.CheckpointSink
)

// Span names recorded by a Trace, for filtering Trace.Spans / Trace.Totals.
const (
	// SpanNameGeneralCase is a FastLSA general-case recursion.
	SpanNameGeneralCase = obs.SpanGeneralCase
	// SpanNameBaseCase is a recursion solved directly in the base-case buffer.
	SpanNameBaseCase = obs.SpanBaseCase
	// SpanNameGridFill is one grid-cache fill (sequential or parallel).
	SpanNameGridFill = obs.SpanGridFill
	// SpanNameFillTile is one wavefront tile, tagged with its Figure 13
	// phase (1 ramp-up, 2 saturated, 3 ramp-down) and worker lane.
	SpanNameFillTile = obs.SpanFillTile
	// SpanNameFillBlock is one block of the sequential grid fill.
	SpanNameFillBlock = obs.SpanFillBlock
	// SpanNameTraceback is one traceback walk.
	SpanNameTraceback = obs.SpanTraceback
	// SpanNameSearchFilter is the q-gram index probe of a corpus search.
	SpanNameSearchFilter = obs.SpanSearchFilter
	// SpanNameSearchVerify is the score-only verify scan of a corpus search.
	SpanNameSearchVerify = obs.SpanSearchVerify
	// SpanNameSearchReconstruct is the exact-alignment reconstruction of the
	// leading search hits.
	SpanNameSearchReconstruct = obs.SpanSearchReconstruct
	// SpanNameBackendRoute is the backend routing decision of one Align
	// call; its tags carry the chosen backend and the routing reason.
	SpanNameBackendRoute = obs.SpanBackendRoute
	// SpanNameWFAFill is the per-score wavefront loop of a WFA run.
	SpanNameWFAFill = obs.SpanWFAFill
	// SpanNameWFABi is one bidirectional (linear-space) WFA run: score
	// pass, recursive split passes and path stitch together.
	SpanNameWFABi = obs.SpanWFABi
)

// Alphabets and scoring tables.
var (
	// DNA is the 4-letter nucleotide alphabet.
	DNA = seq.DNA
	// Protein is the 20-letter amino-acid alphabet.
	Protein = seq.Protein
	// Table1Alphabet covers the six residues of the paper's Table 1.
	Table1Alphabet = scoring.Table1Alphabet

	// Table1 is the paper's modified-Dayhoff excerpt (Figure 1 example).
	Table1 = scoring.Table1
	// MDM78 is the full non-negative Dayhoff-derived protein matrix.
	MDM78 = scoring.MDM78
	// PAM250 is the classic Dayhoff log-odds matrix.
	PAM250 = scoring.PAM250
	// BLOSUM62 is the standard BLOSUM62 protein matrix.
	BLOSUM62 = scoring.BLOSUM62
	// DNASimple scores nucleotides +5/-4.
	DNASimple = scoring.DNASimple
	// DNAStrict scores nucleotides +1/-1.
	DNAStrict = scoring.DNAStrict
	// DNAIUPAC scores the 15-letter IUPAC nucleotide alphabet (NUC.4.4-style
	// expectation scores over ambiguity sets).
	DNAIUPAC = scoring.DNAIUPAC
	// DNAIUPACAlphabet is the IUPAC nucleotide alphabet (ACGT + ambiguity).
	DNAIUPACAlphabet = seq.DNAIUPAC
)

// NewTrace returns a span recorder for Options.Trace with the given ring
// capacity (<= 0 selects the default of 32Ki spans; older spans are dropped,
// but per-span-kind totals stay exact). Export the result with
// Trace.WriteChrome / Trace.ChromeTrace — the JSON loads in chrome://tracing
// and https://ui.perfetto.dev.
func NewTrace(capacity int) *Trace { return obs.NewTrace(capacity) }

// NewRecorder returns a flight recorder for Options.Recorder /
// JobOptions.Recorder with the given event capacity (<= 0 selects the
// default of 256). The first events and the most recent ones are always
// retained; overflow drops from the middle, counted in the snapshot.
func NewRecorder(capacity int) *Recorder { return obs.NewRecorder(capacity) }

// Linear returns the paper's linear gap model (each gapped position costs g).
func Linear(g int) Gap { return scoring.Linear(g) }

// Affine returns a Gotoh affine gap model (open + length*extend).
func Affine(open, extend int) Gap { return scoring.Affine(open, extend) }

// PaperGap is the -10 linear model of the paper's worked examples.
var PaperGap = scoring.PaperGap

// Ends-free alignment modes.
var (
	// ModeGlobal charges every terminal gap (the default).
	ModeGlobal = align.Global
	// ModeOverlap makes all four terminal gaps free (semiglobal).
	ModeOverlap = align.Overlap
	// ModeFitBInA aligns all of B against a substring of A.
	ModeFitBInA = align.FitBInA
	// ModeFitAInB aligns all of A against a substring of B.
	ModeFitAInB = align.FitAInB
)

// ParseMode resolves "global", "overlap"/"semiglobal", "fit-b-in-a"/"fit",
// "fit-a-in-b".
func ParseMode(name string) (Mode, error) { return align.ParseMode(name) }

// NewSequence validates letters against the alphabet (nil selects DNA).
func NewSequence(id, letters string, a *Alphabet) (*Sequence, error) {
	return seq.New(id, letters, a)
}

// NewAlphabet builds a custom residue alphabet.
func NewAlphabet(name, letters string) (*Alphabet, error) { return seq.NewAlphabet(name, letters) }

// ParseAlphabet resolves "dna" or "protein".
func ParseAlphabet(name string) (*Alphabet, error) { return seq.ParseAlphabet(name) }

// MatrixByName resolves a built-in scoring matrix: "table1", "mdm78"
// ("dayhoff"), "blosum62", "dna", "dna-strict".
func MatrixByName(name string) (*Matrix, error) { return scoring.ByName(name) }

// NewMatrix builds a custom symmetric matrix from pair scores.
func NewMatrix(name string, a *Alphabet, defaultScore int, pairs map[string]int) (*Matrix, error) {
	return scoring.NewMatrix(name, a, defaultScore, pairs)
}

// ReadFASTA parses FASTA records (nil alphabet selects DNA).
func ReadFASTA(r io.Reader, a *Alphabet) ([]*Sequence, error) { return seq.ReadFASTA(r, a) }

// WriteFASTA renders sequences as FASTA (width <= 0 selects 70 columns).
func WriteFASTA(w io.Writer, width int, seqs ...*Sequence) error {
	return seq.WriteFASTA(w, width, seqs...)
}

// RandomSequence generates n i.i.d. residues (deterministic per seed).
func RandomSequence(id string, n int, a *Alphabet, seed int64) *Sequence {
	return seq.Random(id, n, a, seed)
}

// HomologousPair generates a reference of length n and a mutated relative
// using the model (seq.DefaultHomology-style models give 70-80% identity).
func HomologousPair(n int, a *Alphabet, model MutationModel, seed int64) (*Sequence, *Sequence, error) {
	return seq.HomologousPair(n, a, model, seed)
}

// DefaultHomology is a mutation model producing ~75%-identity pairs.
var DefaultHomology = seq.DefaultHomology

// Translate converts DNA to protein in the given reading frame (0..2) under
// the standard genetic code, stopping at the first stop codon. The paper's
// Table 1 lists exactly these codon assignments for its example residues.
func Translate(s *Sequence, frame int) (*Sequence, error) { return seq.Translate(s, frame) }

// ReverseComplement reverse-complements a DNA or IUPAC sequence.
func ReverseComplement(s *Sequence) (*Sequence, error) { return seq.ReverseComplement(s) }

// SixFrames translates all six reading frames (DNA-vs-protein search prep).
func SixFrames(s *Sequence) ([]*Sequence, error) { return seq.SixFrames(s) }

// ApplyEditScript transforms a by an edit script from Alignment.EditScript,
// reconstructing the aligned partner.
func ApplyEditScript(a *Sequence, ops []EditOp, alphabet *Alphabet) (*Sequence, error) {
	return align.ApplyEditScript(a, ops, alphabet)
}

// InvertEditScript returns the script transforming B back into A.
func InvertEditScript(a *Sequence, ops []EditOp) ([]EditOp, error) {
	return align.InvertEditScript(a, ops)
}

// Algorithm selects the alignment engine. Every non-auto value names one
// registered backend (internal/backend); AlgoAuto is the router.
type Algorithm int

const (
	// AlgoAuto routes each run to a backend — the paper's headline adaptive
	// mode, extended with a WFA fast path. Global-mode pairs whose scoring
	// system is WFA-compatible (uniform match/mismatch matrix, see AlgoWFA)
	// and whose estimated identity (a bounded q-gram sample of both
	// sequences) is at least backend.RouteIdentityThreshold (75%) run on
	// the wavefront backend — O(ns) time and, since it serves the
	// bidirectional BiWFA mode, O(s) memory; everything else — ends-free
	// modes,
	// non-uniform matrices, short or divergent or unestimable pairs — runs
	// FastLSA with parameters planned against MemoryBudget. Explicit K or
	// BaseCells overrides take precedence over the divergence estimate:
	// they are FastLSA parameters, so setting either pins the run to the
	// FastLSA backend, where they act as planning inputs re-validated
	// against the budget (never past it). An auto-routed WFA run that
	// outgrows MemoryBudget mid-flight is rerun on budget-planned FastLSA
	// instead of failing. Every decision is observable: Options.Route, the
	// backend.route trace span, and the server's
	// fastlsa_backend_total{backend,reason} metric all report the chosen
	// backend and reason (docs/BACKENDS.md lists the full rule table).
	AlgoAuto Algorithm = iota
	// AlgoFastLSA forces FastLSA with the explicit K/BaseCells parameters.
	AlgoFastLSA
	// AlgoFullMatrix forces the Needleman-Wunsch full-matrix algorithm.
	AlgoFullMatrix
	// AlgoHirschberg forces Hirschberg's linear-space algorithm
	// (Myers-Miller under affine gaps).
	AlgoHirschberg
	// AlgoCompact forces the traceback-bit full-matrix variant (paper §2.1:
	// direction bits instead of stored scores — one eighth the footprint).
	// Linear gap models only.
	AlgoCompact
	// AlgoWFA forces the wavefront backend: exact gap-affine alignment in
	// O(ns) time, orders of magnitude faster than any mn-cell DP on
	// low-divergence pairs. Requires a uniform scoring matrix (one match
	// score on the diagonal, one mismatch score off it — "dna" and
	// "dna-strict" qualify) and global mode.
	AlgoWFA
)

// algoNames and algoValues are derived from the backend registry at init
// time: enum value i+1 names registry slot i, so a new backend is one
// Register call plus one constant (pinned by the round-trip test).
var (
	algoNames  map[Algorithm]string
	algoValues map[string]Algorithm
)

func init() {
	infos := backend.All()
	algoNames = make(map[Algorithm]string, len(infos)+1)
	algoValues = make(map[string]Algorithm, 2*len(infos)+2)
	algoNames[AlgoAuto] = "auto"
	algoValues["auto"] = AlgoAuto
	algoValues[""] = AlgoAuto
	for i, info := range infos {
		algo := Algorithm(i + 1)
		algoNames[algo] = info.Name
		algoValues[info.Name] = algo
		for _, alias := range info.Aliases {
			algoValues[alias] = algo
		}
	}
}

// String implements fmt.Stringer; non-auto values render their backend's
// canonical registry name.
func (a Algorithm) String() string {
	if name, ok := algoNames[a]; ok {
		return name
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm resolves an algorithm name or alias ("auto", "fastlsa",
// "fm", "full-matrix", "hirschberg", "compact", "wfa", ...). The accepted
// set derives from the backend registry.
func ParseAlgorithm(name string) (Algorithm, error) {
	if a, ok := algoValues[name]; ok {
		return a, nil
	}
	return 0, badInput("unknown algorithm %q", name)
}

// Input-classification sentinels (test with errors.Is). They let callers —
// the HTTP server in particular — distinguish bad requests from internal
// failures.
var (
	// ErrInvalidInput tags failures caused by invalid caller input: a missing
	// matrix, a malformed gap model, an unsupported mode/algorithm/gap
	// combination, or an unusable statistics scoring system.
	ErrInvalidInput = errors.New("fastlsa: invalid input")
	// ErrBudgetExceeded reports a run that could not fit the caller's
	// Options.MemoryBudget.
	ErrBudgetExceeded = memory.ErrExceeded
	// ErrBudgetTooSmall reports a MemoryBudget below FastLSA's linear-space
	// floor for the problem: no parameter choice can make the run fit, so
	// the request is rejected up front instead of failing mid-run. Like
	// ErrInvalidInput it classifies a caller mistake, not an internal fault.
	ErrBudgetTooSmall = core.ErrBudgetTooSmall
)

// badInput wraps a validation failure with ErrInvalidInput.
func badInput(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidInput, fmt.Sprintf(format, args...))
}

// Options configures Align / AlignLocal / Score. The zero value (plus a
// Matrix) aligns with FastLSA defaults: k=8, 64Ki-entry base buffer,
// unlimited memory, all CPUs.
type Options struct {
	// Matrix is the similarity table (required).
	Matrix *Matrix
	// Gap is the gap model (zero value selects the paper's -10 linear gap).
	Gap Gap
	// Mode selects ends-free alignment (zero value = global). Non-global
	// modes require the auto, fastlsa or fm engines; both gap models work.
	Mode Mode
	// Algorithm selects the engine (default AlgoAuto).
	Algorithm Algorithm
	// MemoryBudget caps memory in DPM entries (8 bytes each); 0 = unlimited.
	// Full-matrix runs exceeding the budget fail with memory.ErrExceeded;
	// FastLSA adapts its parameters to fit.
	MemoryBudget int64
	// Workers is the parallelism degree P (0 = GOMAXPROCS, 1 = sequential).
	Workers int
	// K and BaseCells override FastLSA's parameters (0 = defaults; see
	// package internal/core).
	K, BaseCells int
	// Counters, when non-nil, collects instrumentation.
	Counters *Counters
	// Trace, when non-nil, records spans of the run (general/base cases,
	// grid fills, phase-tagged wavefront tiles, tracebacks) for Chrome
	// trace_event export. Unlike Counters a Trace is per-run state: share one
	// across concurrent runs only if interleaved spans are acceptable.
	Trace *Trace
	// Context, when non-nil, bounds the run: cancelling it (or passing its
	// deadline) makes the fill kernels abort promptly with an error wrapping
	// context.Canceled / context.DeadlineExceeded. The signal rides on a
	// per-run child of Counters, so both this Options value and its Counters
	// may safely be shared by concurrent runs with different contexts; the
	// shared Counters still accumulates every run's work.
	Context context.Context
	// Route, when non-nil, receives the backend routing decision of an
	// Align call (the backend that actually ran and why — AlgoAuto's
	// divergence verdict, or "explicit" for a forced Algorithm). It is
	// written even when the run then fails, so error reports can name the
	// backend. Like Trace it is per-run state: do not share one Route
	// across concurrent runs.
	Route *RouteInfo
	// Recorder, when non-nil, is the run's flight recorder: the router logs
	// its decision (and any budget fallback) into it, and the solver kernels
	// append phase completions and degradation-ladder steps. Per-run state
	// like Trace; nil-safe and allocation-free when absent.
	Recorder *Recorder
	// Checkpoint, when non-nil, persists grid-cache snapshots of the run's
	// root fill at block-row boundaries and is consulted on start to resume a
	// crashed run past its completed rows. FastLSA runs only (other backends
	// ignore it); per-run state like Trace — the server binds one sink per
	// job. A failed save or an unusable snapshot degrades to a cold run,
	// never an error.
	Checkpoint CheckpointSink
}

// RouteInfo reports which backend served an Align call and why (see the
// backend.Reason* constants in internal/backend; docs/BACKENDS.md lists
// the rule table).
type RouteInfo struct {
	// Backend is the canonical backend name ("fastlsa", "wfa", ...).
	Backend string `json:"backend"`
	// Reason is the routing reason ("explicit", "low-divergence", ...).
	Reason string `json:"reason"`
	// Identity is the q-gram identity estimate that drove an AlgoAuto
	// decision (0 when no estimate was made).
	Identity float64 `json:"identity,omitempty"`
}

func (o Options) normalise() (Options, error) {
	if o.Matrix == nil {
		return o, badInput("Options.Matrix is required")
	}
	if o.Gap == (Gap{}) {
		o.Gap = PaperGap
	}
	if err := o.Gap.Validate(); err != nil {
		return o, fmt.Errorf("%w: %w", ErrInvalidInput, err)
	}
	if o.MemoryBudget < 0 {
		return o, badInput("negative MemoryBudget %d", o.MemoryBudget)
	}
	if o.Context != nil {
		if err := o.Context.Err(); err != nil {
			return o, fmt.Errorf("fastlsa: run abandoned before start: %w", err)
		}
		if o.Context.Done() != nil {
			// The cancellation signal rides on a per-run child of the caller's
			// Counters (Derive), never on the shared value itself: an Options
			// (and its Counters) may be reused across concurrent runs — e.g.
			// every unit of an Engine batch — each with its own context.
			o.Counters = o.Counters.Derive(o.Context)
		}
	}
	return o, nil
}

func (o Options) budget() (*memory.Budget, error) {
	if o.MemoryBudget == 0 {
		return nil, nil
	}
	return memory.NewBudget(o.MemoryBudget)
}

// backendRequest translates Options into a backend-layer Request. planned
// selects budget-planned FastLSA parameters (the AlgoAuto contract:
// explicit K / BaseCells overrides become planning inputs there, re-run
// through the whole feasibility check so an override can never push the run
// past the budget the plan was sized for).
func (o Options) backendRequest(planned bool) backend.Request {
	return backend.Request{
		Matrix:       o.Matrix,
		Gap:          o.Gap,
		Mode:         o.Mode,
		Planned:      planned,
		MemoryBudget: o.MemoryBudget,
		Workers:      o.Workers,
		K:            o.K,
		BaseCells:    o.BaseCells,
		Counters:     o.Counters,
		Trace:        o.Trace,
		Recorder:     o.Recorder,
		Checkpoint:   o.Checkpoint,
		Prof:         o.Context,
	}
}

func (o Options) coreOptions(m, n int) (core.Options, error) {
	return backend.CoreOptions(o.backendRequest(o.Algorithm == AlgoAuto), m, n)
}

// Align computes the optimal global alignment of a and b.
func Align(a, b *Sequence, opt Options) (*Alignment, error) {
	opt, err := opt.normalise()
	if err != nil {
		return nil, err
	}
	res, route, err := dispatchAlign(a, b, opt)
	if opt.Route != nil {
		*opt.Route = route
	}
	if err != nil {
		return nil, err
	}
	return align.New(a, b, res.Path, res.Score)
}

// routeAlign resolves which backend serves this run: the divergence-adaptive
// router under AlgoAuto, or the named backend (capability-checked) when the
// caller forced one. The decision is recorded as a backend.route span.
func routeAlign(a, b *Sequence, opt Options) (RouteInfo, error) {
	var route RouteInfo
	start := opt.Trace.Begin()
	if opt.Algorithm == AlgoAuto {
		r := backend.Decide(a, b, opt.Matrix, opt.Gap, opt.Mode, opt.K != 0 || opt.BaseCells != 0)
		route = RouteInfo{Backend: r.Backend, Reason: r.Reason, Identity: r.Identity}
	} else {
		name := opt.Algorithm.String()
		bk, ok := backend.Lookup(name)
		if !ok {
			return RouteInfo{}, badInput("unknown algorithm %v", opt.Algorithm)
		}
		if !opt.Mode.IsGlobal() && !bk.Caps().EndsFree {
			return RouteInfo{}, badInput("ends-free modes support the auto, fastlsa and fm engines (got %v)", opt.Algorithm)
		}
		if bk.Caps().UniformScoresOnly {
			if _, werr := wfa.FromScoring(opt.Matrix, a.Alphabet, opt.Gap); werr != nil {
				return RouteInfo{}, fmt.Errorf("%w: %w", ErrInvalidInput, werr)
			}
		}
		route = RouteInfo{Backend: name, Reason: backend.ReasonExplicit}
	}
	opt.Trace.End(SpanNameBackendRoute, obs.CatBackend, start, obs.Tags{Backend: route.Backend, Reason: route.Reason})
	opt.Recorder.Add(obs.Event{Kind: obs.EvRoute, Detail: route.Backend, Extra: route.Reason, Value: route.Identity})
	return route, nil
}

// dispatchAlign routes the run and executes it on the chosen backend. An
// auto-routed WFA run whose wavefronts outgrow the memory budget — possible
// when the divergence estimate undershoots — reruns on budget-planned
// FastLSA, which by construction fits any budget PlanOptions accepts.
func dispatchAlign(a, b *Sequence, opt Options) (core.Result, RouteInfo, error) {
	route, err := routeAlign(a, b, opt)
	if err != nil {
		return core.Result{}, route, err
	}
	run := func(r RouteInfo) (core.Result, error) {
		bk, ok := backend.Lookup(r.Backend)
		if !ok {
			return core.Result{}, badInput("unknown backend %q", r.Backend)
		}
		planned := opt.Algorithm == AlgoAuto && r.Backend == backend.NameFastLSA
		return bk.Align(a, b, opt.backendRequest(planned))
	}
	res, err := run(route)
	if err != nil && opt.Algorithm == AlgoAuto && route.Backend == backend.NameWFA && errors.Is(err, ErrBudgetExceeded) {
		opt.Recorder.Add(obs.Event{Kind: obs.EvBudgetFallback, Detail: err.Error()})
		route = RouteInfo{Backend: backend.NameFastLSA, Reason: backend.ReasonBudgetFallback, Identity: route.Identity}
		start := opt.Trace.Begin()
		opt.Trace.End(SpanNameBackendRoute, obs.CatBackend, start, obs.Tags{Backend: route.Backend, Reason: route.Reason})
		res, err = run(route)
		opt.Recorder.Add(obs.Event{Kind: obs.EvRoute, Detail: route.Backend, Extra: route.Reason, Value: route.Identity})
	}
	return res, route, err
}

// Score computes only the optimal alignment score, in linear space
// regardless of the selected algorithm. Ends-free modes and both gap models
// are supported.
func Score(a, b *Sequence, opt Options) (int64, error) {
	opt, err := opt.normalise()
	if err != nil {
		return 0, err
	}
	if !opt.Mode.IsGlobal() {
		return modeScore(a, b, opt)
	}
	return hirschberg.Score(a, b, opt.Matrix, opt.Gap, opt.Counters)
}

// rowPool recycles the boundary and output vectors of score-only sweeps.
var rowPool = memory.NewRowPool()

// modeScore computes the ends-free score with one kernel sweep (the gap
// model selects one linear plane or the three affine planes).
func modeScore(a, b *Sequence, opt Options) (int64, error) {
	k := kernel.New(opt.Matrix, kernel.FromGap(opt.Gap), rowPool, opt.Counters)
	top := k.ModeEdge(b.Len(), opt.Mode.FreeStartB)
	left := k.ModeEdge(a.Len(), opt.Mode.FreeStartA)
	outRow := k.NewEdge(b.Len())
	outCol := k.NewEdge(a.Len())
	defer k.PutEdge(top)
	defer k.PutEdge(left)
	defer k.PutEdge(outRow)
	defer k.PutEdge(outCol)
	if err := k.Forward(a.Residues, b.Residues, top, left, outRow, outCol); err != nil {
		return 0, err
	}
	_, _, score := fm.ModeEndFromEdges(outRow.H, outCol.H, opt.Mode)
	return score, nil
}

// AlignLocal computes the optimal Smith-Waterman local alignment under
// either gap model. AlgoAuto and AlgoFastLSA run in FastLSA-bounded space;
// AlgoFullMatrix stores the complete matrix.
func AlignLocal(a, b *Sequence, opt Options) (*LocalAlignment, error) {
	opt, err := opt.normalise()
	if err != nil {
		return nil, err
	}
	switch opt.Algorithm {
	case AlgoAuto, AlgoFastLSA:
		copt, cerr := opt.coreOptions(a.Len(), b.Len())
		if cerr != nil {
			return nil, cerr
		}
		res, lerr := core.AlignLocal(a, b, opt.Matrix, opt.Gap, copt)
		if lerr != nil {
			return nil, lerr
		}
		return &res, nil
	case AlgoFullMatrix:
		budget, berr := opt.budget()
		if berr != nil {
			return nil, berr
		}
		res, lerr := fm.AlignLocal(a, b, opt.Matrix, opt.Gap, budget, opt.Counters)
		if lerr != nil {
			return nil, lerr
		}
		return &res, nil
	default:
		return nil, badInput("local alignment supports auto, fastlsa and fm engines (got %v)", opt.Algorithm)
	}
}

// AlignMSA builds a progressive multiple sequence alignment of the inputs:
// pairwise FastLSA distances, a UPGMA guide tree, and sum-of-pairs profile
// merging. Linear gap models only; Options.Workers parallelises the
// pairwise stage.
func AlignMSA(seqs []*Sequence, opt Options) (*MSA, error) {
	opt, err := opt.normalise()
	if err != nil {
		return nil, err
	}
	if !opt.Gap.IsLinear() {
		return nil, badInput("AlignMSA requires a linear gap model")
	}
	copt, err := opt.coreOptions(0, 0)
	if err != nil {
		return nil, err
	}
	return msa.Align(seqs, msa.Options{
		Matrix:   opt.Matrix,
		Gap:      opt.Gap,
		Pairwise: copt,
	})
}

// AlignBanded computes a banded global alignment: only cells within the
// given diagonal band are evaluated (O((m+n)*band) time and space). The
// result is the global optimum whenever the optimal path fits in the band
// (guaranteed for band >= max(m, n)); otherwise it is the best alignment
// confined to the band. band <= 0 selects the adaptive variant, which
// doubles the band until the score converges and is therefore always exact.
// Linear gap models only.
func AlignBanded(a, b *Sequence, opt Options, band int) (*Alignment, error) {
	opt, err := opt.normalise()
	if err != nil {
		return nil, err
	}
	budget, err := opt.budget()
	if err != nil {
		return nil, err
	}
	var res fm.Result
	if band <= 0 {
		res, _, err = fm.AlignBandedAdaptive(a, b, opt.Matrix, opt.Gap, 0, budget, opt.Counters)
	} else {
		res, err = fm.AlignBanded(a, b, opt.Matrix, opt.Gap, band, budget, opt.Counters)
	}
	if err != nil {
		return nil, err
	}
	return align.New(a, b, res.Path, res.Score)
}

// EstimateStatistics fits Karlin-Altschul-style Gumbel parameters (lambda,
// K) for the scoring system by Monte-Carlo simulation, enabling E-values and
// bit scores for local alignment hits. Deterministic per seed; linear gap
// models only. sampleLen/samples <= 0 select 200/100.
func EstimateStatistics(matrix *Matrix, gap Gap, sampleLen, samples int, seed int64) (GumbelParams, error) {
	opt := significance.Options{Seed: seed}
	if sampleLen > 0 {
		opt.SampleLen = sampleLen
	}
	if samples > 0 {
		opt.Samples = samples
	}
	params, err := significance.Estimate(matrix, gap, opt)
	if err != nil {
		// Every failure mode here is input-shaped: the caller's scoring
		// system or sampling parameters are unusable for a Gumbel fit.
		return GumbelParams{}, fmt.Errorf("%w: %w", ErrInvalidInput, err)
	}
	return params, nil
}

// SearchOptions configures Search.
type SearchOptions struct {
	// Matrix and Gap define the scoring system (linear gaps; zero Gap
	// selects Linear(-12), a tail-friendly default for +5/-4-style tables).
	Matrix *Matrix
	Gap    Gap
	// TopK bounds the returned hits (0 selects 10); Alignments bounds how
	// many of them get full alignments reconstructed (0 = all of TopK).
	TopK, Alignments int
	// MinScore drops weaker candidates; MaxEValue (requires Stats) drops
	// insignificant ones.
	MinScore  int64
	MaxEValue float64
	// Stats annotates hits with E-values and bit scores.
	Stats *GumbelParams
	// Workers parallelises the database scan.
	Workers int
	// Counters, when non-nil, accumulates the scan's DP work and the search
	// funnel (scanned / candidates / examined).
	Counters *Counters
	// Context, when non-nil, bounds the search the same way Options.Context
	// bounds an alignment run.
	Context context.Context
	// Index, when non-nil, is a q-gram index built over exactly this
	// database (BuildIndex(db, q) or Corpus.Index): the seed filter prunes
	// entries that provably cannot reach MinScore and the verify scan
	// early-abandons entries whose score upper bound falls below the running
	// top-K floor. Both prunes are lossless: the hits are identical to an
	// index-free search.
	Index *Index
	// Probe, when non-nil, receives the filter-phase accounting of an
	// indexed search (untouched when Index is nil).
	Probe *SearchProbe
	// OnHit, when non-nil, streams provisional hits as the scan finds them
	// (serialised, unordered; the final ranked hits are the return value).
	OnHit func(SearchHit)
	// Trace, when non-nil, records filter/verify/reconstruct phase spans.
	Trace *Trace
	// Recorder, when non-nil, receives flight-recorder phase events for the
	// filter/verify/reconstruct pipeline. Nil-safe like Trace.
	Recorder *Recorder
}

// Search ranks database sequences by optimal local alignment score against
// the query (homology search — the application the paper's introduction
// motivates). The scan uses the O(min) score-only kernel; the top hits'
// alignments are reconstructed in FastLSA-bounded space.
func Search(query *Sequence, db []*Sequence, opt SearchOptions) ([]SearchHit, error) {
	if opt.Context != nil {
		if err := opt.Context.Err(); err != nil {
			return nil, fmt.Errorf("fastlsa: search abandoned before start: %w", err)
		}
		if opt.Context.Done() != nil {
			// Per-run child, as in Options.normalise: the caller's Counters
			// may be shared across concurrent searches.
			opt.Counters = opt.Counters.Derive(opt.Context)
		}
	}
	return search.Query(query, db, search.Options{
		Matrix:     opt.Matrix,
		Gap:        opt.Gap,
		TopK:       opt.TopK,
		Alignments: opt.Alignments,
		MinScore:   opt.MinScore,
		MaxEValue:  opt.MaxEValue,
		Stats:      opt.Stats,
		Workers:    opt.Workers,
		Pairwise:   core.Options{Workers: 1},
		Counters:   opt.Counters,
		Index:      opt.Index,
		Probe:      opt.Probe,
		OnHit:      opt.OnHit,
		Trace:      opt.Trace,
		Recorder:   opt.Recorder,
		Prof:       opt.Context,
	})
}

// BuildIndex builds a q-gram inverted index over the database for use as
// SearchOptions.Index (q <= 0 selects a per-alphabet default: the largest q
// whose gram space stays small). The index is immutable once built and safe
// for concurrent searches.
func BuildIndex(db []*Sequence, q int) (*Index, error) {
	ix, err := index.Build(db, q)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidInput, err)
	}
	return ix, nil
}

// NewCorpus indexes an in-memory sequence set (q <= 0 selects the default).
func NewCorpus(seqs []*Sequence, q int) (*Corpus, error) {
	c, err := index.New(seqs, q)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidInput, err)
	}
	return c, nil
}

// LoadCorpus reads a FASTA file and indexes it — the server's -corpus
// startup path (nil alphabet selects DNA; q <= 0 selects the default).
func LoadCorpus(path string, a *Alphabet, q int) (*Corpus, error) {
	return index.Load(path, a, q)
}
