package fastlsa_test

import (
	"fmt"
	"testing"

	"fastlsa"
)

func TestFacadeSearch(t *testing.T) {
	query := fastlsa.RandomSequence("query", 250, fastlsa.DNA, 301)
	hom, err := fastlsa.DefaultHomology.Mutate("homolog", query, 302)
	if err != nil {
		t.Fatal(err)
	}
	db := []*fastlsa.Sequence{hom}
	for i := 0; i < 12; i++ {
		db = append(db, fastlsa.RandomSequence(fmt.Sprintf("bg%d", i), 300, fastlsa.DNA, 400+int64(i)))
	}

	params, err := fastlsa.EstimateStatistics(fastlsa.DNASimple, fastlsa.Linear(-12), 120, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := fastlsa.Search(query, db, fastlsa.SearchOptions{
		Matrix:  fastlsa.DNASimple,
		Gap:     fastlsa.Linear(-12),
		TopK:    5,
		Stats:   &params,
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].ID != "homolog" {
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].EValue > 1e-6 {
		t.Fatalf("homolog e-value %g", hits[0].EValue)
	}
	if hits[0].Alignment == nil {
		t.Fatal("top hit missing alignment")
	}
	// Zero-gap default and missing matrix validation.
	if _, err := fastlsa.Search(query, db, fastlsa.SearchOptions{}); err == nil {
		t.Fatal("missing matrix must fail")
	}
	hits2, err := fastlsa.Search(query, db, fastlsa.SearchOptions{Matrix: fastlsa.DNASimple, TopK: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits2) == 0 || hits2[0].ID != "homolog" {
		t.Fatalf("default-gap search: %v", hits2)
	}
}

func TestFacadeEstimateStatisticsErrors(t *testing.T) {
	if _, err := fastlsa.EstimateStatistics(fastlsa.DNASimple, fastlsa.Affine(-5, -1), 0, 0, 1); err == nil {
		t.Fatal("affine must be rejected")
	}
	if _, err := fastlsa.EstimateStatistics(fastlsa.DNASimple, fastlsa.Linear(-1), 100, 20, 1); err == nil {
		t.Fatal("linear-phase scoring must be rejected")
	}
}
