package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultLatencyBuckets are the fixed histogram bucket bounds (seconds) used
// for request and job latencies: 1ms to 10s, roughly ×3 apart.
var DefaultLatencyBuckets = []float64{0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10}

// Counter is a monotonically increasing metric.
type Counter struct {
	// bits holds the float64 value; updated with CAS so Add is lock-free.
	bits atomic.Uint64
}

// Add increases the counter by v (negative deltas are ignored; counters
// never go down).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		newv := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, newv) {
			return
		}
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		newv := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, newv) {
			return
		}
	}
}

// Value reports the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets, Prometheus
// style (each bucket counts observations <= its upper bound; +Inf is
// implicit and equals the total count).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is the +Inf overflow
	sum    float64
	count  uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// snapshot returns cumulative bucket counts (aligned with bounds, +Inf
// last), the sum, and the count.
func (h *Histogram) snapshot() ([]uint64, float64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return cum, h.sum, h.count
}

// metricKind drives the # TYPE line and rendering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered family: either a single unlabeled series or a
// set of labeled children.
type metric struct {
	name       string
	help       string
	kind       metricKind
	labels     []string // label names for Vec families
	buckets    []float64
	counter    *Counter
	gauge      *Gauge
	histogram  *Histogram
	valueFunc  func() float64 // for CounterFunc/GaugeFunc
	mu         sync.Mutex
	children   map[string]*child
	childOrder []string
}

type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	histogram   *Histogram
}

// CounterVec is a counter family with labels.
type CounterVec struct{ m *metric }

// With returns the child counter for the given label values (one per label
// name, in registration order), creating it on first use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	c := v.m.child(labelValues)
	return c.counter
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ m *metric }

// With returns the child gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	c := v.m.child(labelValues)
	return c.gauge
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ m *metric }

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	c := v.m.child(labelValues)
	return c.histogram
}

func (m *metric) child(labelValues []string) *child {
	if len(labelValues) != len(m.labels) {
		panic(fmt.Sprintf("obs: metric %s expects %d label values, got %d",
			m.name, len(m.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.children[key]; ok {
		return c
	}
	c := &child{labelValues: append([]string(nil), labelValues...)}
	switch m.kind {
	case kindCounter:
		c.counter = &Counter{}
	case kindGauge:
		c.gauge = &Gauge{}
	case kindHistogram:
		c.histogram = newHistogram(m.buckets)
	}
	m.children[key] = c
	m.childOrder = append(m.childOrder, key)
	return c
}

func newHistogram(buckets []float64) *Histogram {
	b := append([]float64(nil), buckets...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	order   []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[m.name]; dup {
		panic("obs: duplicate metric " + m.name)
	}
	r.metrics[m.name] = m
	r.order = append(r.order, m.name)
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	m := &metric{name: name, help: help, kind: kindCounter,
		labels: append([]string(nil), labels...), children: make(map[string]*child)}
	r.register(m)
	return &CounterVec{m: m}
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time. fn must be monotonically non-decreasing and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindCounter, valueFunc: fn})
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGauge, valueFunc: fn})
}

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	m := &metric{name: name, help: help, kind: kindGauge,
		labels: append([]string(nil), labels...), children: make(map[string]*child)}
	r.register(m)
	return &GaugeVec{m: m}
}

// Histogram registers and returns an unlabeled histogram with the given
// bucket upper bounds (nil selects DefaultLatencyBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefaultLatencyBuckets
	}
	h := newHistogram(buckets)
	r.register(&metric{name: name, help: help, kind: kindHistogram,
		buckets: h.bounds, histogram: h})
	return h
}

// HistogramVec registers a histogram family with label names (nil buckets
// selects DefaultLatencyBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefaultLatencyBuckets
	}
	b := append([]float64(nil), buckets...)
	sort.Float64s(b)
	m := &metric{name: name, help: help, kind: kindHistogram, buckets: b,
		labels: append([]string(nil), labels...), children: make(map[string]*child)}
	r.register(m)
	return &HistogramVec{m: m}
}

// formatValue renders a float in the exposition format (integers without a
// decimal point, like the reference client).
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func labelPairs(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// WritePrometheus renders every registered family in the text exposition
// format, families in registration order, children sorted by label values
// for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	metrics := make([]*metric, 0, len(names))
	for _, n := range names {
		metrics = append(metrics, r.metrics[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, m := range metrics {
		fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "# TYPE %s counter\n", m.name)
		case kindGauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n", m.name)
		case kindHistogram:
			fmt.Fprintf(&b, "# TYPE %s histogram\n", m.name)
		}
		switch {
		case m.valueFunc != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatValue(m.valueFunc()))
		case m.counter != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatValue(m.counter.Value()))
		case m.gauge != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatValue(m.gauge.Value()))
		case m.histogram != nil:
			writeHistogram(&b, m.name, "", m.buckets, m.histogram)
		case m.children != nil:
			m.mu.Lock()
			keys := append([]string(nil), m.childOrder...)
			kids := make([]*child, 0, len(keys))
			for _, k := range keys {
				kids = append(kids, m.children[k])
			}
			m.mu.Unlock()
			sort.Slice(kids, func(i, j int) bool {
				return strings.Join(kids[i].labelValues, "\x00") <
					strings.Join(kids[j].labelValues, "\x00")
			})
			for _, c := range kids {
				pairs := labelPairs(m.labels, c.labelValues)
				if c.counter != nil {
					fmt.Fprintf(&b, "%s%s %s\n", m.name, pairs, formatValue(c.counter.Value()))
				} else if c.gauge != nil {
					fmt.Fprintf(&b, "%s%s %s\n", m.name, pairs, formatValue(c.gauge.Value()))
				} else if c.histogram != nil {
					writeHistogram(&b, m.name, pairs, m.buckets, c.histogram)
				}
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders the _bucket/_sum/_count series of one histogram.
// pairs is the rendered base label set ("{route=\"...\"}" or "").
func writeHistogram(b *strings.Builder, name, pairs string, bounds []float64, h *Histogram) {
	cum, sum, count := h.snapshot()
	base := strings.TrimSuffix(strings.TrimPrefix(pairs, "{"), "}")
	for i, bound := range bounds {
		le := fmt.Sprintf("%g", bound)
		if base != "" {
			fmt.Fprintf(b, "%s_bucket{%s,le=\"%s\"} %d\n", name, base, le, cum[i])
		} else {
			fmt.Fprintf(b, "%s_bucket{le=\"%s\"} %d\n", name, le, cum[i])
		}
	}
	if base != "" {
		fmt.Fprintf(b, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, base, count)
		fmt.Fprintf(b, "%s_sum{%s} %s\n", name, base, formatValue(sum))
		fmt.Fprintf(b, "%s_count{%s} %d\n", name, base, count)
	} else {
		fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, count)
		fmt.Fprintf(b, "%s_sum %s\n", name, formatValue(sum))
		fmt.Fprintf(b, "%s_count %d\n", name, count)
	}
}

// Handler returns an http.Handler serving the registry in the Prometheus
// text exposition format, suitable for mounting at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
