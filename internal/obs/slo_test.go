package obs

import (
	"math"
	"testing"
	"time"
)

func newTestSLOSet(t *testing.T, objs ...Objective) (*SLOSet, *time.Time) {
	t.Helper()
	s, err := NewSLOSet(objs...)
	if err != nil {
		t.Fatalf("NewSLOSet: %v", err)
	}
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	s.setClock(func() time.Time { return now })
	return s, &now
}

func TestSLOSetRejectsBadTargets(t *testing.T) {
	for _, target := range []float64{0, 1, -0.5, 1.5} {
		if _, err := NewSLOSet(Objective{Name: "x", Target: target}); err == nil {
			t.Errorf("target %v accepted, want error", target)
		}
	}
}

func TestSLOBurnRateMath(t *testing.T) {
	// Target 0.99 allows 1% bad. 10 bad out of 100 is a 10% bad fraction:
	// burn = 0.10 / 0.01 = 10.
	s, _ := newTestSLOSet(t, Objective{Name: "lat", Target: 0.99})
	for i := 0; i < 90; i++ {
		s.Observe("lat", false)
	}
	for i := 0; i < 10; i++ {
		s.Observe("lat", true)
	}
	if burn := s.Burn("lat", SLOShortWindow); math.Abs(burn-10) > 1e-9 {
		t.Errorf("burn = %v, want 10", burn)
	}
	// Exactly at the allowance: 1 bad in 100 -> burn 1.
	s2, _ := newTestSLOSet(t, Objective{Name: "lat", Target: 0.99})
	for i := 0; i < 99; i++ {
		s2.Observe("lat", false)
	}
	s2.Observe("lat", true)
	if burn := s2.Burn("lat", SLOShortWindow); math.Abs(burn-1) > 1e-9 {
		t.Errorf("burn at allowance = %v, want 1", burn)
	}
	// An empty window burns nothing.
	s3, _ := newTestSLOSet(t, Objective{Name: "lat", Target: 0.99})
	if burn := s3.Burn("lat", SLOShortWindow); burn != 0 {
		t.Errorf("empty-window burn = %v, want 0", burn)
	}
}

// TestSLOWindowRotation checks that events age out of the short window but
// stay inside the long one, and that a long idle gap clears everything.
func TestSLOWindowRotation(t *testing.T) {
	s, now := newTestSLOSet(t, Objective{Name: "err", Target: 0.9})
	s.Observe("err", true) // 1 bad, burn = (1/1)/0.1 = 10 on both windows

	if burn := s.Burn("err", SLOShortWindow); math.Abs(burn-10) > 1e-9 {
		t.Fatalf("initial short burn = %v, want 10", burn)
	}
	// Advance past the short window: the bad event leaves the 5m window but
	// stays inside the 1h one.
	*now = now.Add(SLOShortWindow + sloBucket)
	if burn := s.Burn("err", SLOShortWindow); burn != 0 {
		t.Errorf("short burn after %v = %v, want 0", SLOShortWindow+sloBucket, burn)
	}
	if burn := s.Burn("err", SLOLongWindow); math.Abs(burn-10) > 1e-9 {
		t.Errorf("long burn inside the hour = %v, want 10", burn)
	}
	// Advance past the long window: everything ages out.
	*now = now.Add(SLOLongWindow + sloBucket)
	if burn := s.Burn("err", SLOLongWindow); burn != 0 {
		t.Errorf("long burn after expiry = %v, want 0", burn)
	}
}

func TestSLOReportBreachNeedsBothWindows(t *testing.T) {
	s, now := newTestSLOSet(t, Objective{Name: "err", Target: 0.9, Threshold: 250 * time.Millisecond})

	// Sustained failure: every event bad -> burn 10 on both windows.
	s.Observe("err", true)
	rep := s.Report()
	if len(rep) != 1 {
		t.Fatalf("got %d reports, want 1", len(rep))
	}
	if !rep[0].Breached {
		t.Errorf("sustained burn not reported as breached: %+v", rep[0])
	}
	if rep[0].ThresholdMs != 250 {
		t.Errorf("ThresholdMs = %v, want 250", rep[0].ThresholdMs)
	}
	if len(rep[0].Windows) != 2 || rep[0].Windows[0].Window != "5m" || rep[0].Windows[1].Window != "1h" {
		t.Fatalf("windows = %+v, want 5m then 1h", rep[0].Windows)
	}

	// A blip that has left the short window must not count as a breach even
	// though the long window still burns.
	*now = now.Add(SLOShortWindow + sloBucket)
	s.Observe("err", false) // keep the short window non-empty and healthy
	rep = s.Report()
	if rep[0].Windows[0].BurnRate != 0 {
		t.Errorf("short burn = %v, want 0", rep[0].Windows[0].BurnRate)
	}
	if rep[0].Windows[1].BurnRate == 0 {
		t.Errorf("long burn = 0, want > 0 (the blip is still inside the hour)")
	}
	if rep[0].Breached {
		t.Errorf("old blip reported as breached: %+v", rep[0])
	}
}

func TestSLOUnknownNameIgnored(t *testing.T) {
	s, _ := newTestSLOSet(t, Objective{Name: "err", Target: 0.9})
	s.Observe("nonesuch", true)
	if burn := s.Burn("nonesuch", SLOShortWindow); burn != 0 {
		t.Errorf("unknown objective burn = %v, want 0", burn)
	}
	if burn := s.Burn("err", SLOShortWindow); burn != 0 {
		t.Errorf("err burn = %v, want 0 (the observation targeted another name)", burn)
	}
}

func TestSLONilSetIsNoOp(t *testing.T) {
	var s *SLOSet
	s.Observe("x", true) // must not panic
	if burn := s.Burn("x", SLOShortWindow); burn != 0 {
		t.Errorf("nil Burn = %v, want 0", burn)
	}
	if rep := s.Report(); rep != nil {
		t.Errorf("nil Report = %+v, want nil", rep)
	}
}
