package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddlewareRequestID(t *testing.T) {
	var seen string
	h := Middleware("GET /x", nil, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestID(r.Context())
		w.WriteHeader(204)
	}))

	// Generated id: present in context and echoed on the response.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if seen == "" {
		t.Error("no request id in context")
	}
	if got := rec.Header().Get(RequestIDHeader); got != seen {
		t.Errorf("response header id %q != context id %q", got, seen)
	}

	// Client-supplied id is honoured.
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set(RequestIDHeader, "client-42")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "client-42" {
		t.Errorf("context id = %q, want client-42", seen)
	}
}

func TestMiddlewareMetricsAndLogs(t *testing.T) {
	reg := NewRegistry()
	hm := NewHTTPMetrics(reg, "test")
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))

	h := Middleware("POST /v1/align", logger, hm, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(422)
		w.Write([]byte("bad"))
	}))
	for i := 0; i < 3; i++ {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/align", nil))
	}

	var expo strings.Builder
	if err := reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	text := expo.String()
	if !strings.Contains(text, `test_http_requests_total{route="POST /v1/align",method="POST",code="422"} 3`) {
		t.Errorf("missing request counter:\n%s", text)
	}
	if !strings.Contains(text, `test_http_request_duration_seconds_count{route="POST /v1/align"} 3`) {
		t.Errorf("missing latency histogram count:\n%s", text)
	}
	if !strings.Contains(text, "test_http_requests_in_flight 0") {
		t.Errorf("in-flight gauge not back to 0:\n%s", text)
	}

	// One JSON log line per request with the expected attributes.
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d log lines, want 3", len(lines))
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("log line not JSON: %v", err)
	}
	if entry["route"] != "POST /v1/align" || entry["status"] != float64(422) {
		t.Errorf("log entry = %v", entry)
	}
	if id, _ := entry["request_id"].(string); id == "" {
		t.Error("log entry missing request_id")
	}
}

func TestStatusWriterDefaultsTo200(t *testing.T) {
	reg := NewRegistry()
	hm := NewHTTPMetrics(reg, "d")
	h := Middleware("GET /ok", nil, hm, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok")) // implicit 200, no WriteHeader
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/ok", nil))

	var expo strings.Builder
	if err := reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expo.String(), `d_http_requests_total{route="GET /ok",method="GET",code="200"} 1`) {
		t.Errorf("implicit 200 not recorded:\n%s", expo.String())
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if len(id) != 16 {
			t.Fatalf("id %q length %d, want 16", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestItoa(t *testing.T) {
	for _, n := range []int{0, 1, 99, 100, 200, 404, 999, 1234} {
		if got, want := itoa(n), strings.TrimSpace(jsonInt(n)); got != want {
			t.Errorf("itoa(%d) = %q, want %q", n, got, want)
		}
	}
}

func jsonInt(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}
