package obs

// CPU attribution: runtime/pprof labels around solver phases and engine
// workers, so a live /debug/pprof/profile attributes samples to
// (job_id, backend, phase, mode); a wall-clock per-(backend, phase)
// accumulator behind the fastlsa_prof_cpu_seconds_total metric; and a
// lightweight continuous-capture sampler of process-level deltas.
//
// Labelling is gated behind one atomic flag (SetProfLabels): disabled — the
// library default — ProfPhaseBegin costs one atomic load and allocates
// nothing (AllocsPerRun-guarded like the disabled Trace and fault sites).
// Label brackets are applied at phase granularity (a handful per alignment),
// never inside tile or cell loops.

import (
	"context"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

var profLabelsOn atomic.Bool

// SetProfLabels switches pprof label attribution (and the per-phase CPU
// accumulator) on or off process-wide. Off by default.
func SetProfLabels(on bool) { profLabelsOn.Store(on) }

// ProfLabelsEnabled reports whether label attribution is on.
func ProfLabelsEnabled() bool { return profLabelsOn.Load() }

// ProfSpan is the in-flight state of one labelled phase, returned by
// ProfPhaseBegin and closed by End. The zero value (labels disabled) is a
// no-op. Passed by value; never allocates on the disabled path.
type ProfSpan struct {
	prev, lc       context.Context
	start          time.Time
	backend, phase string
}

// Context returns the labelled context installed by ProfPhaseBegin, for
// threading into nested phases (their End then restores this span's labels,
// not the job's). fallback is returned when the span is a disabled no-op.
func (s ProfSpan) Context(fallback context.Context) context.Context {
	if s.lc == nil {
		return fallback
	}
	return s.lc
}

// ProfPhaseBegin attaches {backend, phase} pprof labels to the calling
// goroutine, merging with the labels of base (pass the labelled context
// threaded from the engine worker so job_id/mode survive; nil means no outer
// labels). The returned span must be closed with End on the same goroutine.
//
// Goroutines spawned while the labels are set (e.g. parallel fill workers)
// inherit them.
func ProfPhaseBegin(base context.Context, backend, phase string) ProfSpan {
	if !profLabelsOn.Load() {
		return ProfSpan{}
	}
	if base == nil {
		base = context.Background()
	}
	lc := pprof.WithLabels(base, pprof.Labels("backend", backend, "phase", phase))
	pprof.SetGoroutineLabels(lc)
	return ProfSpan{prev: base, lc: lc, start: time.Now(), backend: backend, phase: phase}
}

// End restores the labels active before the matching ProfPhaseBegin and
// charges the phase's wall time to the (backend, phase) accumulator.
func (s ProfSpan) End() {
	if s.prev == nil {
		return
	}
	pprof.SetGoroutineLabels(s.prev)
	addPhaseTime(s.backend, s.phase, time.Since(s.start))
}

// phaseTimes accumulates wall-clock per (backend, phase); the server drains
// it into fastlsa_prof_cpu_seconds_total at scrape time.
var phaseTimes struct {
	mu sync.Mutex
	m  map[[2]string]time.Duration
}

func addPhaseTime(backend, phase string, d time.Duration) {
	if d < 0 {
		d = 0
	}
	phaseTimes.mu.Lock()
	if phaseTimes.m == nil {
		phaseTimes.m = make(map[[2]string]time.Duration)
	}
	phaseTimes.m[[2]string{backend, phase}] += d
	phaseTimes.mu.Unlock()
}

// PhaseTimes snapshots the cumulative labelled phase time per
// (backend, phase). Totals only grow, so the caller can export them as
// counters by diffing against the last snapshot.
func PhaseTimes() map[[2]string]time.Duration {
	phaseTimes.mu.Lock()
	defer phaseTimes.mu.Unlock()
	out := make(map[[2]string]time.Duration, len(phaseTimes.m))
	for k, v := range phaseTimes.m {
		out[k] = v
	}
	return out
}

// runtime/metrics sample names read by RuntimeSnapshot. Unknown names (older
// runtimes) read as zero.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/cycles/total:gc-cycles",
	"/cpu/classes/total:cpu-seconds",
}

// RuntimeSnapshot is one point-in-time process sample.
type RuntimeSnapshot struct {
	At             time.Time `json:"at"`
	Goroutines     int64     `json:"goroutines"`
	HeapBytes      uint64    `json:"heapBytes"`
	GCCycles       uint64    `json:"gcCycles"`
	GCPauseSeconds float64   `json:"gcPauseSeconds"`
	CPUSeconds     float64   `json:"cpuSeconds"`
}

// ReadRuntime samples the runtime: goroutines, live heap bytes, GC cycle
// count and total CPU seconds via runtime/metrics, plus the cumulative GC
// pause total. Cheap enough to call per scrape.
func ReadRuntime() RuntimeSnapshot {
	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		samples[i].Name = name
	}
	metrics.Read(samples)
	snap := RuntimeSnapshot{At: time.Now()}
	for i, s := range samples {
		switch runtimeSampleNames[i] {
		case "/sched/goroutines:goroutines":
			if s.Value.Kind() == metrics.KindUint64 {
				snap.Goroutines = int64(s.Value.Uint64())
			}
		case "/memory/classes/heap/objects:bytes":
			if s.Value.Kind() == metrics.KindUint64 {
				snap.HeapBytes = s.Value.Uint64()
			}
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() == metrics.KindUint64 {
				snap.GCCycles = s.Value.Uint64()
			}
		case "/cpu/classes/total:cpu-seconds":
			if s.Value.Kind() == metrics.KindFloat64 {
				snap.CPUSeconds = s.Value.Float64()
			}
		}
	}
	if snap.Goroutines == 0 {
		snap.Goroutines = int64(runtime.NumGoroutine())
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	snap.GCPauseSeconds = float64(ms.PauseTotalNs) / float64(time.Second)
	if snap.HeapBytes == 0 {
		snap.HeapBytes = ms.HeapAlloc
	}
	return snap
}

// ProfSampler runs the continuous-capture loop: one RuntimeSnapshot per
// interval into a bounded ring, so "what was the process doing just before
// the incident" is answerable without an attached profiler.
type ProfSampler struct {
	mu   sync.Mutex
	ring []RuntimeSnapshot
	pos  int
	full bool
	stop chan struct{}
	done chan struct{}
}

// StartProfSampler begins sampling every interval, keeping the newest
// capacity snapshots (default 120 when capacity <= 0). Stop it with Stop.
func StartProfSampler(interval time.Duration, capacity int) *ProfSampler {
	if capacity <= 0 {
		capacity = 120
	}
	p := &ProfSampler{
		ring: make([]RuntimeSnapshot, capacity),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go p.loop(interval)
	return p
}

func (p *ProfSampler) loop(interval time.Duration) {
	defer close(p.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	p.record(ReadRuntime())
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.record(ReadRuntime())
		}
	}
}

func (p *ProfSampler) record(s RuntimeSnapshot) {
	p.mu.Lock()
	p.ring[p.pos] = s
	p.pos = (p.pos + 1) % len(p.ring)
	if p.pos == 0 {
		p.full = true
	}
	p.mu.Unlock()
}

// Snapshots returns the retained samples, oldest first.
func (p *ProfSampler) Snapshots() []RuntimeSnapshot {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.full {
		return append([]RuntimeSnapshot(nil), p.ring[:p.pos]...)
	}
	out := make([]RuntimeSnapshot, 0, len(p.ring))
	out = append(out, p.ring[p.pos:]...)
	out = append(out, p.ring[:p.pos]...)
	return out
}

// Stop ends the sampling loop and waits for it to exit. Nil-safe.
func (p *ProfSampler) Stop() {
	if p == nil {
		return
	}
	close(p.stop)
	<-p.done
}
