package obs

import (
	"bufio"
	"fmt"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// parseExposition is a strict-enough parser for the Prometheus text format:
// it validates the # HELP / # TYPE preamble ordering and returns every
// sample as name{labels} -> value.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	types := map[string]string{}
	var lastFamily string
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("malformed HELP line: %q", line)
			}
			lastFamily = parts[0]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if parts[0] != lastFamily {
				t.Fatalf("TYPE %q does not follow its HELP line", parts[0])
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown metric type %q", parts[1])
			}
			types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line: %q", line)
		}
		// Sample line: name{labels} value  or  name value.
		sep := strings.LastIndex(line, " ")
		if sep < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		key, valStr := line[:sep], line[sep+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("sample %q has non-numeric value %q", key, valStr)
		}
		base := key
		if i := strings.IndexByte(base, '{'); i >= 0 {
			if !strings.HasSuffix(base, "}") {
				t.Fatalf("unterminated label set in %q", line)
			}
			base = base[:i]
		}
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(base,
			"_bucket"), "_sum"), "_count")
		if _, ok := types[family]; !ok {
			if _, ok := types[base]; !ok {
				t.Fatalf("sample %q appears before its TYPE line", line)
			}
		}
		samples[key] = val
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return samples
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Total operations.")
	g := r.Gauge("test_queue_depth", "Queue depth.")
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	vec := r.CounterVec("test_requests_total", "Requests.", "route", "code")
	r.GaugeFunc("test_uptime_seconds", "Uptime.", func() float64 { return 42.5 })

	c.Add(3)
	c.Inc()
	g.Set(7)
	g.Add(-2)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	vec.With("/v1/align", "200").Inc()
	vec.With("/v1/align", "200").Inc()
	vec.With("/v1/align", "422").Inc()

	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	samples := parseExposition(t, buf.String())

	want := map[string]float64{
		"test_ops_total":      4,
		"test_queue_depth":    5,
		"test_uptime_seconds": 42.5,
		`test_requests_total{route="/v1/align",code="200"}`: 2,
		`test_requests_total{route="/v1/align",code="422"}`: 1,
		`test_latency_seconds_bucket{le="0.1"}`:             1,
		`test_latency_seconds_bucket{le="1"}`:               2,
		`test_latency_seconds_bucket{le="+Inf"}`:            3,
		"test_latency_seconds_count":                        3,
	}
	for k, v := range want {
		if got, ok := samples[k]; !ok || got != v {
			t.Errorf("sample %q = %v (present %v), want %v", k, got, ok, v)
		}
	}
	if sum := samples["test_latency_seconds_sum"]; sum < 5.54 || sum > 5.56 {
		t.Errorf("histogram sum = %v, want ~5.55", sum)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("t_seconds", "T.", []float64{1, 2, 3}, "route")
	for _, v := range []float64{0.5, 1.5, 1.7, 2.5, 9} {
		hv.With("a").Observe(v)
	}
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, buf.String())
	bounds := []string{"1", "2", "3"}
	wantCum := []float64{1, 3, 4}
	var prev float64
	for i, le := range bounds {
		key := fmt.Sprintf(`t_seconds_bucket{route="a",le="%s"}`, le)
		got := samples[key]
		if got != wantCum[i] {
			t.Errorf("bucket le=%s = %v, want %v", le, got, wantCum[i])
		}
		if got < prev {
			t.Errorf("bucket le=%s = %v not cumulative (prev %v)", le, got, prev)
		}
		prev = got
	}
	if inf := samples[`t_seconds_bucket{route="a",le="+Inf"}`]; inf != 5 {
		t.Errorf("+Inf bucket = %v, want 5", inf)
	}
}

func TestCounterMonotonic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mono_total", "M.")
	read := func() float64 {
		var buf strings.Builder
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return parseExposition(t, buf.String())["mono_total"]
	}
	prev := read()
	for i := 0; i < 5; i++ {
		c.Add(float64(i))
		c.Add(-100) // negative deltas must be ignored
		cur := read()
		if cur < prev {
			t.Fatalf("counter went down: %v -> %v", prev, cur)
		}
		prev = cur
	}
	if prev != 10 {
		t.Errorf("final counter = %v, want 10", prev)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %v, want 8000", c.Value())
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "H.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "h_total 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

func TestDuplicateMetricPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "D.")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "D.")
}

func TestChildOrderingDeterministic(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("ord_total", "O.", "route")
	for _, route := range []string{"zebra", "alpha", "mid"} {
		vec.With(route).Inc()
	}
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "ord_total{") {
			got = append(got, line)
		}
	}
	if !sort.StringsAreSorted(got) {
		t.Errorf("children not sorted:\n%s", strings.Join(got, "\n"))
	}
}

func TestGaugeVecExposition(t *testing.T) {
	reg := NewRegistry()
	burn := reg.GaugeVec("slo_burn_rate", "Burn rate by objective and window.", "slo", "window")
	burn.With("align-p99", "5m").Set(2.5)
	burn.With("align-p99", "1h").Set(0.5)
	burn.With("error-rate", "5m").Set(0)
	// Re-setting an existing child must update in place, not duplicate.
	burn.With("align-p99", "5m").Set(3.5)

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE slo_burn_rate gauge",
		`slo_burn_rate{slo="align-p99",window="5m"} 3.5`,
		`slo_burn_rate{slo="align-p99",window="1h"} 0.5`,
		`slo_burn_rate{slo="error-rate",window="5m"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, `slo="align-p99",window="5m"`); n != 1 {
		t.Errorf("duplicate series for re-set child: %d occurrences", n)
	}
}
