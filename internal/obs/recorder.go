package obs

import (
	"sync"
	"time"
)

// Flight-recorder event kinds. The recorder is schema-free — any string is a
// valid kind — but the instrumented layers stick to this vocabulary so
// consumers (the /v1/jobs/{id}/events endpoint, the incident ring, tests)
// can match on it.
const (
	// EvAdmit marks queue admission: the job entered the engine's bounded
	// queue. Detail is the job kind.
	EvAdmit = "queue.admit"
	// EvStart marks a worker picking the job up. Attempt is the 1-based
	// attempt number; Duration is the queue wait.
	EvStart = "job.start"
	// EvRetry marks a failed attempt being re-queued. Attempt is the attempt
	// that failed, Detail the error that caused it (injected faults surface
	// here), and Duration the backoff delay before the next attempt.
	EvRetry = "job.retry"
	// EvFinish is the terminal event. Detail is the final state
	// (succeeded/failed/cancelled), Extra the error when there is one.
	EvFinish = "job.finish"
	// EvPhase marks the completion of one solver/search phase span. Detail
	// is the span name (grid-fill, traceback, wfa-fill, …), Extra the span
	// category, Duration the phase's wall time.
	EvPhase = "phase"
	// EvMeshShrink marks the degradation ladder shrinking a parallel fill's
	// tile mesh under memory pressure. Detail is "UxV->uxv" (requested ->
	// granted subdivision).
	EvMeshShrink = "degrade.mesh-shrink"
	// EvSeqFill marks the final rung of the degradation ladder: the parallel
	// fill fell back to the sequential fill.
	EvSeqFill = "degrade.seq-fill"
	// EvRoute records the aligner-backend routing decision. Detail is the
	// backend, Extra the reason, Value the q-gram identity estimate when one
	// was computed (0 otherwise).
	EvRoute = "route"
	// EvBudgetFallback marks a WFA run exceeding its memory budget and being
	// transparently re-run on planned FastLSA. Detail is the WFA error.
	EvBudgetFallback = "route.budget-fallback"
	// EvRecover marks a job re-enqueued from the durable journal after a
	// restart (docs/DURABILITY.md). Detail is the job kind, Extra "resumed"
	// when a grid-cache checkpoint existed for it, Attempt the attempts the
	// journal had recorded before the crash.
	EvRecover = "job.recover"
)

// Event is one flight-recorder entry. Offset is the monotonic time since the
// recorder's creation; the remaining fields are a small fixed vocabulary so
// recording never builds maps or nested structures.
type Event struct {
	// Offset is the time since the recorder's epoch (monotonic clock).
	Offset time.Duration `json:"offsetNs"`
	// Kind is the event type (see the Ev* constants).
	Kind string `json:"kind"`
	// Detail and Extra carry kind-specific strings (error text, span name,
	// backend, …).
	Detail string `json:"detail,omitempty"`
	Extra  string `json:"extra,omitempty"`
	// Attempt is the engine attempt number, when relevant.
	Attempt int `json:"attempt,omitempty"`
	// Duration carries a kind-specific duration (queue wait, backoff delay,
	// phase wall time).
	Duration time.Duration `json:"durationNs,omitempty"`
	// Value carries a kind-specific number (e.g. the routing identity
	// estimate).
	Value float64 `json:"value,omitempty"`
}

// DefaultRecorderEvents is the default Recorder capacity: the head keeps the
// first events of a job verbatim and a small tail ring keeps the most recent
// ones, so both the admission story and the terminal events of a long, noisy
// job survive.
const DefaultRecorderEvents = 256

// tailFraction of the capacity is reserved for the most-recent-events ring.
const tailFraction = 4

// Recorder is a bounded, allocation-light per-job flight recorder. A nil
// *Recorder is a valid no-op whose Add path allocates nothing (guarded by an
// AllocsPerRun test, like the disabled Trace). A non-nil recorder is safe for
// concurrent use.
//
// Retention is head+tail: the first events are kept verbatim, and once the
// head is full a small ring keeps the newest events, dropping from the
// middle. Dropped events stay counted, so a snapshot always reports how much
// of the timeline is missing.
type Recorder struct {
	mu      sync.Mutex
	epoch   time.Time
	head    []Event // first headCap events, in order
	headCap int
	tail    []Event // ring of the newest events once head is full
	tailPos int     // next write position in tail once len(tail) == cap(tail)
	dropped int
	total   int
}

// NewRecorder returns a recorder holding at most capacity events
// (DefaultRecorderEvents when capacity <= 0). The epoch — the zero offset of
// every event — is the moment of creation.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderEvents
	}
	tailCap := capacity / tailFraction
	if tailCap < 1 {
		tailCap = 1
	}
	headCap := capacity - tailCap
	if headCap < 1 {
		headCap = 1
	}
	return &Recorder{
		epoch:   time.Now(),
		headCap: headCap,
		tail:    make([]Event, 0, tailCap),
	}
}

// Add records one event, stamping its Offset from the recorder's epoch. The
// caller fills every other field. Nil-safe and allocation-free on a nil
// receiver.
func (r *Recorder) Add(e Event) {
	if r == nil {
		return
	}
	e.Offset = time.Since(r.epoch)
	r.mu.Lock()
	r.total++
	switch {
	case len(r.head) < r.headCap:
		if r.head == nil {
			r.head = make([]Event, 0, r.headCap)
		}
		r.head = append(r.head, e)
	case len(r.tail) < cap(r.tail):
		r.tail = append(r.tail, e)
	default:
		r.tail[r.tailPos] = e
		r.tailPos = (r.tailPos + 1) % len(r.tail)
		r.dropped++
	}
	r.mu.Unlock()
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.head) + len(r.tail)
}

// RecorderSnapshot is a point-in-time copy of a recorder's timeline.
type RecorderSnapshot struct {
	// Events is the retained timeline in recording order. When Dropped > 0
	// there is a gap between the head events and the trailing ring.
	Events []Event `json:"events"`
	// Dropped counts events lost from the middle of the timeline.
	Dropped int `json:"droppedEvents,omitempty"`
	// Total counts every event ever recorded (len(Events) + Dropped).
	Total int `json:"totalEvents"`
}

// Snapshot copies the retained timeline. Nil-safe: a nil recorder snapshots
// as empty.
func (r *Recorder) Snapshot() RecorderSnapshot {
	if r == nil {
		return RecorderSnapshot{Events: []Event{}}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.head)+len(r.tail))
	out = append(out, r.head...)
	out = append(out, r.tail[r.tailPos:]...)
	out = append(out, r.tail[:r.tailPos]...)
	return RecorderSnapshot{Events: out, Dropped: r.dropped, Total: r.total}
}
