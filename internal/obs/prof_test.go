package obs

import (
	"context"
	"runtime/pprof"
	"testing"
	"time"
)

// Labels disabled is the library default, so ProfPhaseBegin/End must cost
// nothing on that path — one atomic load, no allocation (same contract as
// the nil Recorder and disabled Trace).
func TestProfPhaseDisabledDoesNotAllocate(t *testing.T) {
	SetProfLabels(false)
	if allocs := testing.AllocsPerRun(200, func() {
		ps := ProfPhaseBegin(nil, "fastlsa", SpanGridFill)
		ps.End()
	}); allocs != 0 {
		t.Errorf("disabled ProfPhaseBegin/End allocates %v per call, want 0", allocs)
	}
}

func TestProfPhaseDisabledContextFallback(t *testing.T) {
	SetProfLabels(false)
	ps := ProfPhaseBegin(nil, "wfa", SpanWFABi)
	fallback := context.Background()
	if got := ps.Context(fallback); got != fallback {
		t.Errorf("disabled span Context = %v, want the fallback", got)
	}
	ps.End() // must be a no-op, not a panic
}

func TestProfPhaseSetsLabels(t *testing.T) {
	SetProfLabels(true)
	defer SetProfLabels(false)

	ps := ProfPhaseBegin(nil, "fastlsa", SpanGridFill)
	lc := ps.Context(nil)
	if lc == nil {
		t.Fatal("enabled span returned a nil labelled context")
	}
	if v, ok := pprof.Label(lc, "backend"); !ok || v != "fastlsa" {
		t.Errorf("backend label = %q (ok=%v), want fastlsa", v, ok)
	}
	if v, ok := pprof.Label(lc, "phase"); !ok || v != SpanGridFill {
		t.Errorf("phase label = %q (ok=%v), want %s", v, ok, SpanGridFill)
	}
	ps.End()
}

// Nested phases must restore the *outer phase's* labels on End, not the
// job's — the BiWFA recursion brackets inner fills inside the wfa-biwfa span.
func TestProfPhaseNestedRestore(t *testing.T) {
	SetProfLabels(true)
	defer SetProfLabels(false)

	outer := ProfPhaseBegin(nil, "wfa", SpanWFABi)
	inner := ProfPhaseBegin(outer.Context(nil), "wfa", SpanWFAFill)
	if v, _ := pprof.Label(inner.Context(nil), "phase"); v != SpanWFAFill {
		t.Errorf("inner phase label = %q, want %s", v, SpanWFAFill)
	}
	// The inner End restores inner.prev: when the caller threaded the outer
	// span's context (as BiAlign does), that context carries the outer
	// phase's labels, not the job's.
	if v, _ := pprof.Label(inner.prev, "phase"); v != SpanWFABi {
		t.Errorf("inner restore target phase label = %q, want %s", v, SpanWFABi)
	}
	inner.End()
	outer.End()
}

func TestPhaseTimesAccumulate(t *testing.T) {
	SetProfLabels(true)
	defer SetProfLabels(false)

	key := [2]string{"test-backend", "test-phase"}
	before := PhaseTimes()[key]
	ps := ProfPhaseBegin(nil, key[0], key[1])
	time.Sleep(2 * time.Millisecond)
	ps.End()
	after := PhaseTimes()[key]
	if after <= before {
		t.Errorf("PhaseTimes[%v] did not grow: before %v, after %v", key, before, after)
	}
	if after-before < time.Millisecond {
		t.Errorf("accumulated %v, want >= 1ms", after-before)
	}
}

func TestProfSamplerRetainsNewest(t *testing.T) {
	p := StartProfSampler(time.Millisecond, 4)
	defer p.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(p.Snapshots()) == 4 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	snaps := p.Snapshots()
	if len(snaps) != 4 {
		t.Fatalf("retained %d snapshots, want the full ring of 4", len(snaps))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].At.Before(snaps[i-1].At) {
			t.Errorf("snapshots not oldest-first: %v then %v", snaps[i-1].At, snaps[i].At)
		}
	}
	if snaps[len(snaps)-1].Goroutines <= 0 {
		t.Errorf("latest snapshot has %d goroutines, want > 0", snaps[len(snaps)-1].Goroutines)
	}
}

func TestProfSamplerNilSafe(t *testing.T) {
	var p *ProfSampler
	p.Stop() // must not panic
	if got := p.Snapshots(); got != nil {
		t.Errorf("nil Snapshots = %v, want nil", got)
	}
}

func TestReadRuntime(t *testing.T) {
	rt := ReadRuntime()
	if rt.Goroutines <= 0 {
		t.Errorf("Goroutines = %d, want > 0", rt.Goroutines)
	}
	if rt.HeapBytes == 0 {
		t.Errorf("HeapBytes = 0, want > 0")
	}
	if rt.At.IsZero() {
		t.Errorf("At is zero")
	}
}
