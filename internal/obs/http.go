package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"time"
)

// RequestIDHeader is the header a client may use to supply its own request
// id; the same header carries the id back on every response.
const RequestIDHeader = "X-Request-ID"

type ctxKey int

const requestIDKey ctxKey = iota

// NewRequestID returns a fresh 16-hex-digit request id.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back to a
		// constant rather than propagate an error through logging paths.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID stores a request id in the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID extracts the request id from the context ("" if absent).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// statusWriter records the response status and size for logging/metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the wrapped writer when it supports flushing, so
// streaming handlers keep working behind the middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// HTTPMetrics is the standard per-route HTTP instrumentation: a request
// counter labeled by route/method/status and a latency histogram labeled by
// route. Create one per Registry with NewHTTPMetrics.
type HTTPMetrics struct {
	requests *CounterVec
	latency  *HistogramVec
	inflight *Gauge
}

// NewHTTPMetrics registers the HTTP metric families on r under the given
// namespace prefix (e.g. "fastlsa" -> fastlsa_http_requests_total).
func NewHTTPMetrics(r *Registry, namespace string) *HTTPMetrics {
	prefix := ""
	if namespace != "" {
		prefix = namespace + "_"
	}
	return &HTTPMetrics{
		requests: r.CounterVec(prefix+"http_requests_total",
			"HTTP requests by route, method and status code.",
			"route", "method", "code"),
		latency: r.HistogramVec(prefix+"http_request_duration_seconds",
			"HTTP request latency by route.", nil, "route"),
		inflight: r.Gauge(prefix+"http_requests_in_flight",
			"HTTP requests currently being served."),
	}
}

// RequestSample summarises one completed request for observer hooks: SLO
// classification, incident capture, burn-rate accounting.
type RequestSample struct {
	Route, Method, RequestID string
	Status                   int
	Duration                 time.Duration
}

// Middleware wraps h with request-id propagation, structured access
// logging, and per-route metrics. route is the registered pattern label
// (passed explicitly — patterns are not recoverable from the request under
// go1.22); logger may be nil to disable access logs; m may be nil to
// disable metrics.
func Middleware(route string, logger *slog.Logger, m *HTTPMetrics, h http.Handler) http.Handler {
	return MiddlewareObserved(route, logger, m, nil, h)
}

// MiddlewareObserved is Middleware plus a completion hook: onDone (when
// non-nil) receives one RequestSample after every request, after the status
// and latency are final. The hook runs on the request goroutine — keep it
// cheap.
func MiddlewareObserved(route string, logger *slog.Logger, m *HTTPMetrics, onDone func(RequestSample), h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		r = r.WithContext(WithRequestID(r.Context(), id))

		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		if m != nil {
			m.inflight.Add(1)
		}
		h.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		if m != nil {
			m.inflight.Add(-1)
			m.requests.With(route, r.Method, statusText(sw.status)).Inc()
			m.latency.With(route).Observe(elapsed.Seconds())
		}
		if onDone != nil {
			onDone(RequestSample{
				Route: route, Method: r.Method, RequestID: id,
				Status: sw.status, Duration: elapsed,
			})
		}
		if logger != nil {
			logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("request_id", id),
				slog.String("route", route),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("duration", elapsed),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}

// statusText formats a status code as a metric label without fmt overhead
// on the common path.
func statusText(code int) string {
	switch code {
	case 200:
		return "200"
	case 202:
		return "202"
	case 400:
		return "400"
	case 404:
		return "404"
	case 422:
		return "422"
	case 503:
		return "503"
	}
	return itoa(code)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 && i > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
