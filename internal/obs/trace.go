// Package obs is the observability layer of the repository: a lightweight
// run tracer whose spans export as Chrome trace_event JSON
// (chrome://tracing-loadable), a minimal Prometheus-text metrics registry,
// and HTTP middleware for structured request logging with request IDs.
//
// Everything is standard library only, safe for concurrent use, and — like
// stats.Counters — nil-receiver safe: an uninstrumented run passes a nil
// *Trace through every layer and pays nothing, which is what keeps the DP
// fill hot paths allocation-free when tracing is off (pinned by the
// benchmark guard in trace_test.go).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span names emitted by the FastLSA layers. Centralising them here keeps the
// trace vocabulary documented in one place (docs/OBSERVABILITY.md lists the
// same names).
const (
	// SpanGeneralCase covers one FastLSA general-case split: the grid fill
	// plus the recursive walk through the blocks the path crosses.
	SpanGeneralCase = "general-case"
	// SpanBaseCase covers one full-matrix base-case solve (fill + traceback).
	SpanBaseCase = "base-case"
	// SpanGridFill covers one Fill Cache (sequential block loop or parallel
	// wavefront, whichever ran).
	SpanGridFill = "grid-fill"
	// SpanFillTile covers one wavefront tile of a parallel fill, tagged with
	// its Figure 13 phase (1 ramp-up, 2 saturated, 3 ramp-down) and the
	// worker that executed it.
	SpanFillTile = "fill-tile"
	// SpanFillBlock covers one grid block of a sequential Fill Cache.
	SpanFillBlock = "fill-block"
	// SpanTraceback covers one base-case traceback walk.
	SpanTraceback = "traceback"
	// SpanSearchFilter covers the q-gram index probe of a corpus search.
	SpanSearchFilter = "search-filter"
	// SpanSearchVerify covers the score-only verify scan over the
	// candidates (or the whole database on a brute-force search).
	SpanSearchVerify = "search-verify"
	// SpanSearchReconstruct covers the exact-alignment reconstruction of
	// the leading hits.
	SpanSearchReconstruct = "search-reconstruct"
	// SpanBackendRoute covers the backend routing decision of one facade
	// Align call: AlgoAuto's divergence estimate, or the explicit pick. Its
	// tags carry the chosen backend and the routing reason.
	SpanBackendRoute = "backend.route"
	// SpanWFAFill covers the per-score wavefront loop of a WFA run.
	SpanWFAFill = "wfa-fill"
	// SpanWFABi covers one bidirectional (meet-in-the-middle) WFA run:
	// the windowed score pass, the recursive split passes and the path
	// stitch together.
	SpanWFABi = "wfa-biwfa"
	// SpanJournalReplay covers the startup replay of the durable job
	// journal: segment scan, per-job aggregation and re-enqueue. Its tags
	// carry the record count (Rows) and recovered-job count (Cols).
	SpanJournalReplay = "journal.replay"
)

// Span categories (the "cat" field of Chrome trace events).
const (
	// CatFastLSA tags the recursion-level spans.
	CatFastLSA = "fastlsa"
	// CatWavefront tags the parallel tile spans.
	CatWavefront = "wavefront"
	// CatHTTP tags request-level spans recorded by servers.
	CatHTTP = "http"
	// CatSearch tags corpus-search phase spans.
	CatSearch = "search"
	// CatBackend tags backend-layer routing spans.
	CatBackend = "backend"
	// CatWFA tags wavefront-kernel spans.
	CatWFA = "wfa"
	// CatJournal tags durability-layer spans (journal replay).
	CatJournal = "journal"
)

// DefaultTraceSpans is the default ring-buffer capacity of a Trace. At ~80
// bytes per span this bounds a trace to a few megabytes; older spans are
// dropped (counted in Dropped) once the ring wraps.
const DefaultTraceSpans = 1 << 15

// Tags carries the optional dimensions of a span. The zero value means "no
// tags"; zero fields are omitted from the Chrome export.
type Tags struct {
	// Rows and Cols give the subproblem or tile extent in DP cells.
	Rows, Cols int
	// Phase is the Figure 13 wavefront phase (1..3; 0 = not a tile span).
	Phase int
	// Worker is the 1-based worker lane that executed the span (0 = the
	// run's main goroutine). It becomes the Chrome thread id, so parallel
	// tiles render on separate tracks.
	Worker int
	// Backend and Reason carry the routing decision of a backend.route
	// span (which aligner backend the run was dispatched to, and why);
	// empty on every other span kind.
	Backend, Reason string
}

// Span is one recorded interval.
type Span struct {
	// Name and Cat identify the span kind (see the Span*/Cat* constants).
	Name, Cat string
	// Start is the offset from the trace epoch; Dur the span length.
	Start, Dur time.Duration
	// Tags carries the optional dimensions.
	Tags Tags
}

// totalKey aggregates spans by (name, phase) for the running totals that
// survive ring-buffer overwrites.
type totalKey struct {
	name  string
	phase int
}

type totalVal struct {
	count int64
	total time.Duration
}

// Trace is a ring-buffered span recorder. Attach one to a run through
// core.Options / fastlsa.Options; every method is safe for concurrent use
// and nil-receiver safe, so the same code path serves traced and untraced
// runs.
//
// The recording API is allocation-free by construction: Begin reads the
// clock (or returns 0 on a nil receiver, without a clock read), End appends
// one fixed-size Span into the pre-allocated ring. Ring overflow drops the
// oldest spans but keeps per-(name, phase) running totals exact, so Totals
// stays correct on runs bigger than the buffer.
type Trace struct {
	mu      sync.Mutex
	label   string
	epoch   time.Time
	buf     []Span
	head    int // next write slot
	n       int // spans currently buffered (<= cap)
	total   int64
	dropped int64
	totals  map[totalKey]totalVal
}

// NewTrace returns a trace with the given ring capacity (<= 0 selects
// DefaultTraceSpans). The epoch — the zero point of every span offset — is
// the moment of creation.
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceSpans
	}
	return &Trace{
		epoch:  time.Now(),
		buf:    make([]Span, capacity),
		totals: make(map[totalKey]totalVal),
	}
}

// SetLabel names the traced run ("align req-42", a job id, ...). The label
// becomes the process name in the Chrome export.
func (t *Trace) SetLabel(label string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.label = label
	t.mu.Unlock()
}

// Enabled reports whether spans are being recorded (false on nil).
func (t *Trace) Enabled() bool { return t != nil }

// Begin returns the current offset from the trace epoch, the start token
// for a subsequent End. On a nil receiver it returns 0 without reading the
// clock, so a disabled hot path costs two nil checks and nothing else.
func (t *Trace) Begin() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch)
}

// End records a span that started at the Begin-token start and ends now.
// No-op on a nil receiver.
func (t *Trace) End(name, cat string, start time.Duration, tags Tags) {
	if t == nil {
		return
	}
	dur := time.Since(t.epoch) - start
	if dur < 0 {
		dur = 0
	}
	t.mu.Lock()
	t.buf[t.head] = Span{Name: name, Cat: cat, Start: start, Dur: dur, Tags: tags}
	t.head = (t.head + 1) % len(t.buf)
	if t.n < len(t.buf) {
		t.n++
	} else {
		t.dropped++
	}
	t.total++
	k := totalKey{name: name, phase: tags.Phase}
	v := t.totals[k]
	v.count++
	v.total += dur
	t.totals[k] = v
	t.mu.Unlock()
}

// Len reports the number of buffered spans; Dropped how many were evicted
// by ring overflow.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped reports how many spans were evicted by ring overflow.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans copies the buffered spans in recording order (oldest first).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spansLocked()
}

func (t *Trace) spansLocked() []Span {
	out := make([]Span, 0, t.n)
	start := t.head - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	return out
}

// SpanTotal is one row of Totals: the aggregate of every span with the same
// (Name, Phase), exact even when the ring dropped individual spans.
type SpanTotal struct {
	Name  string
	Phase int
	Count int64
	Total time.Duration
}

// Totals aggregates all recorded spans by (name, phase), sorted by name then
// phase. Unlike Spans, the totals cover every span ever recorded, including
// those the ring has dropped.
func (t *Trace) Totals() []SpanTotal {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanTotal, 0, len(t.totals))
	for k, v := range t.totals {
		out = append(out, SpanTotal{Name: k.name, Phase: k.phase, Count: v.count, Total: v.total})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// chromeEvent is one trace_event object. Only the fields chrome://tracing
// (and Perfetto) consume are emitted.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`            // microseconds since epoch
	Dur  int64          `json:"dur,omitempty"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the JSON-object form of the trace_event format.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	// Metadata documents the exporter and any ring-buffer loss.
	Metadata map[string]any `json:"metadata,omitempty"`
}

// ChromeTrace renders the buffered spans in Chrome trace_event JSON (the
// object form with a traceEvents array), loadable in chrome://tracing or
// https://ui.perfetto.dev. Spans are complete events ("ph":"X"); the worker
// tag maps to the thread id so parallel tiles get their own tracks.
func (t *Trace) ChromeTrace() ([]byte, error) {
	if t == nil {
		return json.Marshal(chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"})
	}
	// One locked snapshot: spans and the recorded/dropped counts must come
	// from the same instant, or a concurrently recording run could export a
	// trace whose metadata disagrees with its own event list (e.g. a
	// dropped_spans count that excludes spans evicted between two reads).
	t.mu.Lock()
	spans := t.spansLocked()
	label, dropped, total := t.label, t.dropped, t.total
	t.mu.Unlock()
	if label == "" {
		label = "fastlsa"
	}

	events := make([]chromeEvent, 0, len(spans)+2)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": label},
	})
	tids := map[int]bool{}
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			TS:   s.Start.Microseconds(),
			Dur:  s.Dur.Microseconds(),
			PID:  1,
			TID:  s.Tags.Worker,
		}
		if s.Tags != (Tags{}) {
			args := make(map[string]any, 4)
			if s.Tags.Rows != 0 || s.Tags.Cols != 0 {
				args["rows"] = s.Tags.Rows
				args["cols"] = s.Tags.Cols
			}
			if s.Tags.Phase != 0 {
				args["phase"] = s.Tags.Phase
			}
			if s.Tags.Backend != "" {
				args["backend"] = s.Tags.Backend
			}
			if s.Tags.Reason != "" {
				args["reason"] = s.Tags.Reason
			}
			if len(args) > 0 {
				ev.Args = args
			}
		}
		events = append(events, ev)
		tids[ev.TID] = true
	}
	for tid := range tids {
		name := "main"
		if tid > 0 {
			name = fmt.Sprintf("worker-%d", tid)
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": name},
		})
	}
	return json.Marshal(chromeFile{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		Metadata: map[string]any{
			"exporter":       "fastlsa/internal/obs",
			"spans_recorded": total,
			// dropped_spans is the documented key; spans_dropped is kept for
			// consumers of the earlier export shape.
			"dropped_spans": dropped,
			"spans_dropped": dropped,
		},
	})
}

// WriteChrome writes the Chrome trace_event JSON to w.
func (t *Trace) WriteChrome(w io.Writer) error {
	b, err := t.ChromeTrace()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}
