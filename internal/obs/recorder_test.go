package obs

import (
	"sync"
	"testing"
	"time"
)

func TestRecorderRecordsInOrder(t *testing.T) {
	r := NewRecorder(16)
	r.Add(Event{Kind: EvAdmit, Detail: "align"})
	r.Add(Event{Kind: EvStart, Attempt: 1, Duration: 3 * time.Millisecond})
	r.Add(Event{Kind: EvFinish, Detail: "succeeded"})

	snap := r.Snapshot()
	if snap.Dropped != 0 {
		t.Errorf("Dropped = %d, want 0", snap.Dropped)
	}
	if snap.Total != 3 {
		t.Errorf("Total = %d, want 3", snap.Total)
	}
	kinds := make([]string, len(snap.Events))
	for i, e := range snap.Events {
		kinds[i] = e.Kind
	}
	want := []string{EvAdmit, EvStart, EvFinish}
	if len(kinds) != len(want) {
		t.Fatalf("got %d events, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("events[%d].Kind = %q, want %q", i, kinds[i], want[i])
		}
	}
	// Offsets are stamped from the epoch and never decrease.
	for i := 1; i < len(snap.Events); i++ {
		if snap.Events[i].Offset < snap.Events[i-1].Offset {
			t.Errorf("offsets not monotonic: %v then %v",
				snap.Events[i-1].Offset, snap.Events[i].Offset)
		}
	}
	if snap.Events[1].Attempt != 1 || snap.Events[1].Duration != 3*time.Millisecond {
		t.Errorf("start event lost its fields: %+v", snap.Events[1])
	}
}

// TestRecorderHeadTailRetention floods a small recorder and checks the
// head+tail shape: the earliest events survive verbatim, the newest survive
// in the tail ring, and the middle is dropped but counted.
func TestRecorderHeadTailRetention(t *testing.T) {
	const capacity = 8 // head 6, tail 2
	r := NewRecorder(capacity)
	const total = 20
	for i := 0; i < total; i++ {
		r.Add(Event{Kind: EvPhase, Attempt: i})
	}

	snap := r.Snapshot()
	if snap.Total != total {
		t.Errorf("Total = %d, want %d", snap.Total, total)
	}
	if len(snap.Events) != capacity {
		t.Fatalf("retained %d events, want %d", len(snap.Events), capacity)
	}
	if want := total - capacity; snap.Dropped != want {
		t.Errorf("Dropped = %d, want %d", snap.Dropped, want)
	}
	// Head: the first 6 events, in order.
	for i := 0; i < 6; i++ {
		if snap.Events[i].Attempt != i {
			t.Errorf("head[%d].Attempt = %d, want %d", i, snap.Events[i].Attempt, i)
		}
	}
	// Tail: the newest 2 events, in order.
	for i, want := range []int{total - 2, total - 1} {
		got := snap.Events[6+i].Attempt
		if got != want {
			t.Errorf("tail[%d].Attempt = %d, want %d", i, got, want)
		}
	}
}

func TestRecorderNilIsSafe(t *testing.T) {
	var r *Recorder
	r.Add(Event{Kind: EvAdmit}) // must not panic
	if r.Len() != 0 {
		t.Errorf("nil Len = %d, want 0", r.Len())
	}
	snap := r.Snapshot()
	if snap.Events == nil || len(snap.Events) != 0 || snap.Total != 0 {
		t.Errorf("nil Snapshot = %+v, want empty non-nil events", snap)
	}
}

// The nil recorder is the library default: alignment hot paths call Add
// unconditionally, so the disabled path must not allocate (same contract as
// the disabled Trace and the disarmed fault sites).
func TestRecorderNilAddDoesNotAllocate(t *testing.T) {
	var r *Recorder
	ev := Event{Kind: EvPhase, Detail: SpanGridFill}
	if allocs := testing.AllocsPerRun(200, func() { r.Add(ev) }); allocs != 0 {
		t.Errorf("nil Recorder.Add allocates %v per call, want 0", allocs)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	const writers, per = 8, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Add(Event{Kind: EvPhase, Attempt: w})
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Total != writers*per {
		t.Errorf("Total = %d, want %d", snap.Total, writers*per)
	}
	if len(snap.Events)+snap.Dropped != snap.Total {
		t.Errorf("retained %d + dropped %d != total %d",
			len(snap.Events), snap.Dropped, snap.Total)
	}
}

func TestRecorderDefaultCapacity(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < DefaultRecorderEvents; i++ {
		r.Add(Event{Kind: EvPhase})
	}
	if got := r.Len(); got != DefaultRecorderEvents {
		t.Errorf("Len after filling default capacity = %d, want %d", got, DefaultRecorderEvents)
	}
	r.Add(Event{Kind: EvPhase})
	if got := r.Len(); got != DefaultRecorderEvents {
		t.Errorf("Len after overflow = %d, want %d (bounded)", got, DefaultRecorderEvents)
	}
}
