package obs

import (
	"fmt"
	"sync"
	"time"
)

// SLO windows: burn rates are computed over a short (fast-burn) and a long
// (slow-burn) window, the standard multi-window alerting shape. Both are
// served by one ring of sloBucket-sized buckets covering SLOLongWindow.
const (
	SLOShortWindow = 5 * time.Minute
	SLOLongWindow  = time.Hour
	sloBucket      = 15 * time.Second
	sloBuckets     = int(SLOLongWindow / sloBucket)
)

// Objective is one declarative service-level objective: a name, the fraction
// of events that must be good, and — for latency objectives — the threshold
// that separates good from bad.
type Objective struct {
	// Name identifies the objective ("align-p99", "error-rate").
	Name string
	// Target is the required good fraction in (0, 1), e.g. 0.99.
	Target float64
	// Threshold is the latency bound of a latency objective (informational;
	// the caller classifies events before calling Observe).
	Threshold time.Duration
}

// SLOWindowReport is one objective's burn over one window.
type SLOWindowReport struct {
	// Window is the human label ("5m", "1h").
	Window string `json:"window"`
	// BurnRate is (bad/total)/(1-Target): 1.0 means the error budget is
	// being consumed exactly as fast as the objective allows; above 1 the
	// budget is burning down.
	BurnRate float64 `json:"burnRate"`
	// Good and Bad are the event counts inside the window.
	Good uint64 `json:"good"`
	Bad  uint64 `json:"bad"`
}

// SLOReport is one objective's verdict.
type SLOReport struct {
	Name        string            `json:"name"`
	Target      float64           `json:"objective"`
	ThresholdMs float64           `json:"thresholdMs,omitempty"`
	Windows     []SLOWindowReport `json:"windows"`
	// Breached reports burn >= 1 on both windows: the short window says the
	// budget is burning now, the long window says it is not a blip.
	Breached bool `json:"breached"`
}

// sloState is one objective's bucketed good/bad history.
type sloState struct {
	Objective
	good, bad [sloBuckets]uint64
}

// SLOSet tracks a set of objectives in rotating 15-second buckets and
// computes multi-window burn rates from them. Safe for concurrent use; a nil
// *SLOSet is a no-op.
type SLOSet struct {
	mu       sync.Mutex
	objs     []*sloState
	cur      int       // current bucket index, shared by all objectives
	curStart time.Time // start of the current bucket
	now      func() time.Time
}

// NewSLOSet builds a tracker for the given objectives. Objectives with a
// Target outside (0, 1) are rejected.
func NewSLOSet(objs ...Objective) (*SLOSet, error) {
	s := &SLOSet{now: time.Now}
	for _, o := range objs {
		if o.Target <= 0 || o.Target >= 1 {
			return nil, fmt.Errorf("obs: objective %q target %v outside (0, 1)", o.Name, o.Target)
		}
		s.objs = append(s.objs, &sloState{Objective: o})
	}
	s.curStart = s.now()
	return s, nil
}

// setClock injects a fake clock (tests only).
func (s *SLOSet) setClock(now func() time.Time) {
	s.mu.Lock()
	s.now = now
	s.curStart = now()
	s.mu.Unlock()
}

// rotateLocked advances the current bucket to cover now, zeroing any buckets
// skipped while no events arrived.
func (s *SLOSet) rotateLocked() {
	now := s.now()
	steps := int(now.Sub(s.curStart) / sloBucket)
	if steps <= 0 {
		return
	}
	if steps > sloBuckets {
		steps = sloBuckets
	}
	for i := 0; i < steps; i++ {
		s.cur = (s.cur + 1) % sloBuckets
		for _, o := range s.objs {
			o.good[s.cur] = 0
			o.bad[s.cur] = 0
		}
	}
	s.curStart = s.curStart.Add(time.Duration(steps) * sloBucket)
	// After a long idle gap the bucket start may still lag far behind; snap
	// it to now so the next rotation is not a full sweep again.
	if now.Sub(s.curStart) > SLOLongWindow {
		s.curStart = now
	}
}

// Observe records one event against the named objective. Unknown names are
// ignored (the caller wires a fixed set at startup).
func (s *SLOSet) Observe(name string, bad bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rotateLocked()
	for _, o := range s.objs {
		if o.Name != name {
			continue
		}
		if bad {
			o.bad[s.cur]++
		} else {
			o.good[s.cur]++
		}
		break
	}
	s.mu.Unlock()
}

// windowCountsLocked sums the newest n buckets of one objective.
func (s *SLOSet) windowCountsLocked(o *sloState, n int) (good, bad uint64) {
	idx := s.cur
	for i := 0; i < n; i++ {
		good += o.good[idx]
		bad += o.bad[idx]
		idx--
		if idx < 0 {
			idx = sloBuckets - 1
		}
	}
	return good, bad
}

// burnRate is (bad/total)/(1-target); 0 when the window saw no events.
func burnRate(good, bad uint64, target float64) float64 {
	total := good + bad
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - target)
}

// Burn returns the named objective's burn rate over the given window
// (rounded up to whole buckets, capped at the long window).
func (s *SLOSet) Burn(name string, window time.Duration) float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rotateLocked()
	n := bucketsFor(window)
	for _, o := range s.objs {
		if o.Name == name {
			good, bad := s.windowCountsLocked(o, n)
			return burnRate(good, bad, o.Target)
		}
	}
	return 0
}

func bucketsFor(window time.Duration) int {
	n := int((window + sloBucket - 1) / sloBucket)
	if n < 1 {
		n = 1
	}
	if n > sloBuckets {
		n = sloBuckets
	}
	return n
}

// Report snapshots every objective's verdict over the short and long
// windows. Nil-safe: a nil set reports nothing.
func (s *SLOSet) Report() []SLOReport {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rotateLocked()
	out := make([]SLOReport, 0, len(s.objs))
	for _, o := range s.objs {
		rep := SLOReport{
			Name:        o.Name,
			Target:      o.Target,
			ThresholdMs: float64(o.Threshold) / float64(time.Millisecond),
		}
		breached := true
		for _, w := range []struct {
			label string
			d     time.Duration
		}{{"5m", SLOShortWindow}, {"1h", SLOLongWindow}} {
			good, bad := s.windowCountsLocked(o, bucketsFor(w.d))
			burn := burnRate(good, bad, o.Target)
			rep.Windows = append(rep.Windows, SLOWindowReport{
				Window: w.label, BurnRate: burn, Good: good, Bad: bad,
			})
			if burn < 1 {
				breached = false
			}
		}
		rep.Breached = breached
		out = append(out, rep)
	}
	return out
}
