package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestTraceRecordsSpans(t *testing.T) {
	tr := NewTrace(16)
	s := tr.Begin()
	time.Sleep(time.Millisecond)
	tr.End(SpanBaseCase, CatFastLSA, s, Tags{Rows: 10, Cols: 20})

	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Name != SpanBaseCase || sp.Cat != CatFastLSA {
		t.Errorf("span identity = %q/%q", sp.Name, sp.Cat)
	}
	if sp.Dur <= 0 {
		t.Errorf("span duration = %v, want > 0", sp.Dur)
	}
	if sp.Tags.Rows != 10 || sp.Tags.Cols != 20 {
		t.Errorf("tags = %+v", sp.Tags)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	s := tr.Begin()
	tr.End("x", "y", s, Tags{})
	tr.SetLabel("ignored")
	if tr.Enabled() {
		t.Error("nil trace reports Enabled")
	}
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Spans() != nil || tr.Totals() != nil {
		t.Error("nil trace not empty")
	}
	b, err := tr.ChromeTrace()
	if err != nil {
		t.Fatalf("nil ChromeTrace: %v", err)
	}
	var f struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &f); err != nil {
		t.Fatalf("nil ChromeTrace JSON: %v", err)
	}
	if len(f.TraceEvents) != 0 {
		t.Errorf("nil trace emitted %d events", len(f.TraceEvents))
	}
}

func TestTraceRingOverflow(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.End("span", "cat", tr.Begin(), Tags{Rows: i})
	}
	if got := tr.Len(); got != 4 {
		t.Errorf("Len = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
	spans := tr.Spans()
	// The survivors must be the newest four, oldest first.
	for i, sp := range spans {
		if want := 6 + i; sp.Tags.Rows != want {
			t.Errorf("spans[%d].Rows = %d, want %d", i, sp.Tags.Rows, want)
		}
	}
	// Totals cover all ten, including the dropped ones.
	totals := tr.Totals()
	if len(totals) != 1 || totals[0].Count != 10 {
		t.Errorf("Totals = %+v, want one entry with Count 10", totals)
	}
}

func TestTraceTotalsByPhase(t *testing.T) {
	tr := NewTrace(64)
	for phase := 1; phase <= 3; phase++ {
		for i := 0; i < phase; i++ {
			tr.End(SpanFillTile, CatWavefront, tr.Begin(), Tags{Phase: phase})
		}
	}
	tr.End(SpanTraceback, CatFastLSA, tr.Begin(), Tags{})

	totals := tr.Totals()
	if len(totals) != 4 {
		t.Fatalf("got %d total rows, want 4: %+v", len(totals), totals)
	}
	// Sorted by name then phase: fill-tile 1..3, then traceback.
	for i, want := range []SpanTotal{
		{Name: SpanFillTile, Phase: 1, Count: 1},
		{Name: SpanFillTile, Phase: 2, Count: 2},
		{Name: SpanFillTile, Phase: 3, Count: 3},
		{Name: SpanTraceback, Phase: 0, Count: 1},
	} {
		got := totals[i]
		if got.Name != want.Name || got.Phase != want.Phase || got.Count != want.Count {
			t.Errorf("totals[%d] = %+v, want %+v", i, got, want)
		}
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	tr := NewTrace(64)
	tr.SetLabel("unit-test")
	tr.End(SpanGeneralCase, CatFastLSA, tr.Begin(), Tags{Rows: 100, Cols: 200})
	tr.End(SpanFillTile, CatWavefront, tr.Begin(), Tags{Rows: 32, Cols: 32, Phase: 2, Worker: 3})
	tr.End(SpanTraceback, CatFastLSA, tr.Begin(), Tags{})

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}

	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   *int64         `json:"ts"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		Metadata map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}

	byName := map[string]int{}
	var procName string
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "X":
			byName[ev.Name]++
			if ev.TS == nil {
				t.Errorf("event %q missing ts", ev.Name)
			}
			if ev.Name == SpanFillTile {
				if ev.TID != 3 {
					t.Errorf("fill-tile tid = %d, want worker 3", ev.TID)
				}
				if ev.Args["phase"] != float64(2) {
					t.Errorf("fill-tile phase arg = %v, want 2", ev.Args["phase"])
				}
			}
		case "M":
			if ev.Name == "process_name" {
				procName, _ = ev.Args["name"].(string)
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	for _, name := range []string{SpanGeneralCase, SpanFillTile, SpanTraceback} {
		if byName[name] != 1 {
			t.Errorf("event %q count = %d, want 1", name, byName[name])
		}
	}
	if procName != "unit-test" {
		t.Errorf("process name = %q, want unit-test", procName)
	}
	if f.Metadata["spans_recorded"] != float64(3) {
		t.Errorf("metadata spans_recorded = %v, want 3", f.Metadata["spans_recorded"])
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.End(SpanFillTile, CatWavefront, tr.Begin(), Tags{Worker: w + 1})
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 128 {
		t.Errorf("Len = %d, want full ring 128", tr.Len())
	}
	var total int64
	for _, row := range tr.Totals() {
		total += row.Count
	}
	if total != 800 {
		t.Errorf("total spans = %d, want 800", total)
	}
}

// TestDisabledTraceZeroAlloc is the acceptance guard: with tracing off (nil
// *Trace) a Begin/End pair on the fill path must not allocate.
func TestDisabledTraceZeroAlloc(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(1000, func() {
		s := tr.Begin()
		tr.End(SpanFillTile, CatWavefront, s, Tags{Rows: 32, Cols: 32, Phase: 2, Worker: 1})
	})
	if allocs != 0 {
		t.Fatalf("disabled trace allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestEnabledTraceSteadyStateZeroAlloc pins that recording itself stays
// allocation-free once the ring and totals map are warm, so tracing can be
// left on in production without GC pressure from the tile loop.
func TestEnabledTraceSteadyStateZeroAlloc(t *testing.T) {
	tr := NewTrace(64)
	// Warm the totals map entry.
	tr.End(SpanFillTile, CatWavefront, tr.Begin(), Tags{Phase: 2})
	allocs := testing.AllocsPerRun(1000, func() {
		s := tr.Begin()
		tr.End(SpanFillTile, CatWavefront, s, Tags{Rows: 32, Cols: 32, Phase: 2, Worker: 1})
	})
	if allocs != 0 {
		t.Fatalf("enabled trace steady state allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkDisabledTrace measures the cost the fill hot path pays when
// tracing is off: two nil checks.
func BenchmarkDisabledTrace(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Begin()
		tr.End(SpanFillTile, CatWavefront, s, Tags{Rows: 32, Cols: 32})
	}
}

// BenchmarkEnabledTrace measures steady-state recording cost with tracing
// on (clock reads + one mutex-protected ring write).
func BenchmarkEnabledTrace(b *testing.B) {
	tr := NewTrace(DefaultTraceSpans)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Begin()
		tr.End(SpanFillTile, CatWavefront, s, Tags{Rows: 32, Cols: 32, Phase: 2})
	}
}

// Regression: a ring-overflowed trace must report how many spans its export
// is missing — a Perfetto view that silently hides dropped spans reads as a
// complete timeline when it is not.
func TestChromeTraceReportsDroppedSpans(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.End(SpanFillTile, CatWavefront, tr.Begin(), Tags{Rows: i})
	}
	b, err := tr.ChromeTrace()
	if err != nil {
		t.Fatalf("ChromeTrace: %v", err)
	}
	var f struct {
		Metadata map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal(b, &f); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}
	if f.Metadata["dropped_spans"] != float64(6) {
		t.Errorf("metadata dropped_spans = %v, want 6", f.Metadata["dropped_spans"])
	}
	if f.Metadata["spans_recorded"] != float64(10) {
		t.Errorf("metadata spans_recorded = %v, want 10", f.Metadata["spans_recorded"])
	}
}
