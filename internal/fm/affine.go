package fm

import (
	"fmt"
	"math"

	"fastlsa/internal/align"
	"fastlsa/internal/memory"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/stats"
)

// NegInf is the "minus infinity" sentinel for unreachable affine DP states.
// It is far below any reachable score yet safe to add gap penalties to
// without wrapping.
const NegInf = math.MinInt64 / 4

// AlignAffine computes the optimal global alignment under an affine
// (Gotoh) gap model: a gap of length L costs Open + L*Extend. This is the
// gap-model extension of the paper's FM algorithm; three (m+1)*(n+1)
// matrices (H, E, F) are stored and charged to the budget.
//
// State meaning: H = best score ending in a Diag move (or at a boundary),
// E = best score ending in an Up move (gap in b), F = best score ending in a
// Left move (gap in a). Overall best at a node is max(H,E,F), held in H here
// (H is the "closed" state).
func AlignAffine(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, budget *memory.Budget, c *stats.Counters) (Result, error) {
	if err := gap.Validate(); err != nil {
		return Result{}, err
	}
	ra, rb := a.Residues, b.Residues
	rows, cols := len(ra)+1, len(rb)+1
	entries := int64(rows) * int64(cols)
	if err := budget.Reserve(3 * entries); err != nil {
		return Result{}, fmt.Errorf("fm: affine DPM of 3 x %d x %d entries: %w", rows, cols, err)
	}
	defer budget.Release(3 * entries)

	open, ext := int64(gap.Open), int64(gap.Extend)
	H := make([]int64, entries)
	E := make([]int64, entries)
	F := make([]int64, entries)

	H[0] = 0
	for j := 1; j < cols; j++ {
		H[j] = open + int64(j)*ext
		F[j] = H[j]
		E[j] = NegInf
	}
	for r := 1; r < rows; r++ {
		base := r * cols
		H[base] = open + int64(r)*ext
		E[base] = H[base]
		F[base] = NegInf
	}

	stride := stats.PollStride(len(rb))
	for r := 1; r < rows; r++ {
		if r%stride == 0 {
			if err := c.Cancelled(); err != nil {
				return Result{}, err
			}
		}
		base := r * cols
		prev := base - cols
		srow := m.Row(ra[r-1])
		for j := 1; j < cols; j++ {
			e := E[prev+j] + ext
			if v := H[prev+j] + open + ext; v > e {
				e = v
			}
			E[base+j] = e
			f := F[base+j-1] + ext
			if v := H[base+j-1] + open + ext; v > f {
				f = v
			}
			F[base+j] = f
			h := H[prev+j-1] + int64(srow[rb[j-1]])
			if e > h {
				h = e
			}
			if f > h {
				h = f
			}
			H[base+j] = h
		}
	}
	c.AddCells(int64(len(ra)) * int64(len(rb)))

	bld := align.NewBuilder(len(ra) + len(rb))
	r, cc, _ := TracebackAffine(ra, rb, m, open, ext, H, E, F, bld, len(ra), len(rb), StateH, c)
	for ; r > 0; r-- {
		bld.Push(align.Up)
	}
	for ; cc > 0; cc-- {
		bld.Push(align.Left)
	}
	return Result{Score: H[entries-1], Path: bld.Path()}, nil
}

// Affine traceback states. FastLSA threads these across block boundaries:
// a gap can span several subproblems, and the traceback must resume inside
// it.
const (
	// StateH is the closed state: the next decision considers all three
	// predecessors (this is also the "overall best" matrix, since H holds
	// max(diag-closed, E, F)).
	StateH = iota
	// StateE is inside a vertical gap (a run of Up moves).
	StateE
	// StateF is inside a horizontal gap (a run of Left moves).
	StateF
)

// TracebackAffine traces an affine-gap path backwards from (fromR, fromC) in
// the given state until node row 0 or column 0, pushing moves on bld and
// returning the exit node together with the state at the exit node (so a
// caller recursing across block boundaries can resume mid-gap). Tie-break
// within H: Diag > E (Up) > F (Left); within a gap state: extend > close
// (produces maximal-length gaps, matching the FastLSA affine base case).
func TracebackAffine(a, b []byte, m *scoring.Matrix, open, ext int64, H, E, F []int64, bld *align.Builder, fromR, fromC, state int, c *stats.Counters) (exitR, exitC, exitState int) {
	cols := len(b) + 1
	r, cc := fromR, fromC
	steps := int64(0)
	for r > 0 && cc > 0 {
		idx := r*cols + cc
		switch state {
		case StateH:
			cur := H[idx]
			switch {
			case H[idx-cols-1]+int64(m.Score(a[r-1], b[cc-1])) == cur:
				bld.Push(align.Diag)
				r--
				cc--
			case E[idx] == cur:
				state = StateE
				continue // no move yet; E will emit
			case F[idx] == cur:
				state = StateF
				continue
			default:
				panic(fmt.Sprintf("fm: affine traceback stuck in H at (%d,%d)", r, cc))
			}
		case StateE:
			cur := E[idx]
			bld.Push(align.Up)
			switch {
			case E[idx-cols]+ext == cur:
				// stay in E
			case H[idx-cols]+open+ext == cur:
				state = StateH
			default:
				panic(fmt.Sprintf("fm: affine traceback stuck in E at (%d,%d)", r, cc))
			}
			r--
		case StateF:
			cur := F[idx]
			bld.Push(align.Left)
			switch {
			case F[idx-1]+ext == cur:
				// stay in F
			case H[idx-1]+open+ext == cur:
				state = StateH
			default:
				panic(fmt.Sprintf("fm: affine traceback stuck in F at (%d,%d)", r, cc))
			}
			cc--
		}
		steps++
	}
	c.AddTraceback(steps)
	return r, cc, state
}
