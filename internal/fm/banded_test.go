package fm_test

import (
	"testing"

	"fastlsa/internal/memory"

	"fastlsa/internal/fm"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/stats"
	"fastlsa/internal/testutil"
)

// TestBandedWideEqualsFull: a band covering the whole matrix reproduces the
// unrestricted optimum, path-exactly.
func TestBandedWideEqualsFull(t *testing.T) {
	gap := scoring.Linear(-3)
	for seed := int64(0); seed < 15; seed++ {
		la := int(seed*7%40) + 1
		lb := int(seed*11%40) + 1
		a, b := testutil.RandomPair(la, lb, seq.DNA, seed+920)
		m := testutil.RandomMatrix(seq.DNA, seed+920)
		want, err := fm.Align(a, b, m, gap, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fm.AlignBanded(a, b, m, gap, la+lb, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want.Score || !got.Path.Equal(want.Path) {
			t.Fatalf("seed %d: wide band diverges (%d vs %d)", seed, got.Score, want.Score)
		}
	}
}

// TestBandedIsLowerBound: any band's score never exceeds the unrestricted
// optimum, and the returned path rescores to the reported score.
func TestBandedIsLowerBound(t *testing.T) {
	gap := scoring.Linear(-4)
	m := scoring.DNASimple
	a, b := testutil.RandomPair(120, 140, seq.DNA, 930)
	full, err := fm.Align(a, b, m, gap, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(-1 << 62)
	for _, band := range []int{0, 1, 2, 4, 8, 16, 64, 200} {
		res, err := fm.AlignBanded(a, b, m, gap, band, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Score > full.Score {
			t.Fatalf("band %d: score %d exceeds optimum %d", band, res.Score, full.Score)
		}
		if res.Score < prev {
			t.Fatalf("band %d: score %d decreased from %d (must be monotone in band)", band, res.Score, prev)
		}
		prev = res.Score
		if msg := testutil.CheckAlignment(a, b, res.Path, res.Score, m, gap); msg != "" {
			t.Fatalf("band %d: %s", band, msg)
		}
	}
	if prev != full.Score {
		t.Fatalf("widest band %d != optimum %d", prev, full.Score)
	}
}

// TestBandedHomologousSmallBand: for a high-identity pair a narrow band
// already recovers the global optimum at a fraction of the cells.
func TestBandedHomologousSmallBand(t *testing.T) {
	a, b := testutil.HomologousPair(800, seq.DNA, 931)
	gap := scoring.Linear(-4)
	m := scoring.DNASimple
	var cFull, cBand stats.Counters
	full, err := fm.Align(a, b, m, gap, nil, &cFull)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fm.AlignBanded(a, b, m, gap, 64, nil, &cBand)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != full.Score {
		t.Fatalf("band 64: %d, full %d (75%%-identity pair should fit)", res.Score, full.Score)
	}
	if cBand.Cells.Load()*2 >= cFull.Cells.Load() {
		t.Fatalf("banded cells %d not substantially below full %d", cBand.Cells.Load(), cFull.Cells.Load())
	}
}

func TestBandedAdaptive(t *testing.T) {
	a, b := testutil.HomologousPair(400, seq.DNA, 932)
	gap := scoring.Linear(-4)
	m := scoring.DNASimple
	full, err := fm.Align(a, b, m, gap, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, band, err := fm.AlignBandedAdaptive(a, b, m, gap, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != full.Score {
		t.Fatalf("adaptive (band %d): %d, full %d", band, res.Score, full.Score)
	}
	if band >= 400 {
		t.Fatalf("adaptive band %d did not converge early", band)
	}
}

func TestBandedValidation(t *testing.T) {
	a, b := testutil.RandomPair(5, 5, seq.DNA, 1)
	if _, err := fm.AlignBanded(a, b, scoring.DNASimple, scoring.Linear(-4), -1, nil, nil); err == nil {
		t.Fatal("negative band must fail")
	}
	if _, err := fm.AlignBanded(a, b, scoring.DNASimple, scoring.Affine(-5, -1), 3, nil, nil); err == nil {
		t.Fatal("affine must be rejected")
	}
	// band 0 still connects the corners when m == n (pure diagonal).
	res, err := fm.AlignBanded(a, b, scoring.DNASimple, scoring.Linear(-4), 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path.String() != "DDDDD" {
		t.Fatalf("band 0 path %q", res.Path)
	}
	// Empty sequences.
	empty := seq.MustNew("e", "", seq.DNA)
	res, err = fm.AlignBanded(empty, b, scoring.DNASimple, scoring.Linear(-4), 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path.String() != "LLLLL" {
		t.Fatalf("empty-a band path %q", res.Path)
	}
}

func TestBandedBudget(t *testing.T) {
	a, b := testutil.RandomPair(1000, 1000, seq.DNA, 933)
	// Band 16 needs ~1001*33 entries — well under the full million.
	budget, err := newBudget(t, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fm.AlignBanded(a, b, scoring.DNASimple, scoring.Linear(-4), 16, budget, nil); err != nil {
		t.Fatalf("banded run rejected by a 50k budget: %v", err)
	}
	if budget.Used() != 0 {
		t.Fatalf("budget leak: %d", budget.Used())
	}
	if _, err := fm.Align(a, b, scoring.DNASimple, scoring.Linear(-4), budget, nil); err == nil {
		t.Fatal("full matrix must exceed the same budget")
	}
}

func newBudget(t *testing.T, n int64) (*memory.Budget, error) {
	t.Helper()
	return memory.NewBudget(n)
}
