// Package fm implements the full-matrix (FM) dynamic-programming alignment
// algorithms of the paper's §2.1: Needleman-Wunsch global alignment with the
// two phases FindScore (fill the complete DPM) and FindPath (trace the
// optimal path backwards through the stored matrix), plus the Smith-Waterman
// local variant and a wavefront-parallel matrix fill. FM algorithms minimise
// operations (every cell exactly once) at the price of O(m*n) space; they are
// both the baseline FastLSA is compared against and the solver FastLSA uses
// for its base case.
//
// Both gap models run through the shared internal/kernel layer: linear gaps
// store one H plane, affine (Gotoh) gaps the three (H, E, F) planes.
package fm

import (
	"fmt"

	"fastlsa/internal/align"
	"fastlsa/internal/kernel"
	"fastlsa/internal/memory"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/stats"
)

// pool recycles boundary edges and scratch rows across fm calls (the stored
// planes themselves are allocated per call — they are budget-charged and
// usually too large to be worth pooling).
var pool = memory.NewRowPool()

// Result is a scored global alignment path.
type Result struct {
	// Score is the optimal global alignment score (DPM bottom-right entry).
	Score int64
	// Path is the optimal path, with the deterministic tie-break
	// diagonal > up > left shared by every algorithm in this repository.
	Path align.Path
}

// Align computes the optimal global alignment of a and b with the full-matrix
// algorithm, selecting the plane count from the gap model (one linear plane,
// or the three Gotoh planes when gap.Open < 0). The plane set is charged
// against budget (nil budget = unlimited) and released before returning;
// budget exhaustion surfaces as memory.ErrExceeded.
func Align(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, budget *memory.Budget, c *stats.Counters) (Result, error) {
	if err := gap.Validate(); err != nil {
		return Result{}, err
	}
	return alignModel(a, b, m, kernel.FromGap(gap), budget, c)
}

// AlignAffine computes the optimal global alignment under an affine (Gotoh)
// gap model: a gap of length L costs Open + L*Extend. Unlike Align it always
// runs the three-plane recurrence, even for Open == 0 — for which it returns
// byte-identical results to the linear path (the degeneration pinned by the
// kernel's equivalence property test).
func AlignAffine(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, budget *memory.Budget, c *stats.Counters) (Result, error) {
	if err := gap.Validate(); err != nil {
		return Result{}, err
	}
	return alignModel(a, b, m, kernel.Affine(int64(gap.Open), int64(gap.Extend)), budget, c)
}

// alignModel is the gap-generic full-matrix engine: fill the stored planes
// from leading-gap boundaries, trace back from (m, n), and extend along the
// boundary to (0,0).
func alignModel(a, b *seq.Sequence, m *scoring.Matrix, mod kernel.Model, budget *memory.Budget, c *stats.Counters) (Result, error) {
	ra, rb := a.Residues, b.Residues
	rows, cols := len(ra)+1, len(rb)+1
	entries := int64(rows) * int64(cols)
	planes := int64(mod.Planes())
	if err := budget.Reserve(planes * entries); err != nil {
		return Result{}, fmt.Errorf("fm: DPM of %d x %d x %d entries: %w", planes, rows, cols, err)
	}
	defer budget.Release(planes * entries)

	k := kernel.New(m, mod, pool, c)
	rt := k.MakeRect(rows * cols)
	top := k.LeadEdge(len(rb), 0)
	left := k.LeadEdge(len(ra), 0)
	defer k.PutEdge(top)
	defer k.PutEdge(left)
	if err := k.FillRect(ra, rb, top, left, rt); err != nil {
		return Result{}, err
	}

	bld := align.NewBuilder(len(ra) + len(rb))
	r, cc, _ := k.Traceback(ra, rb, rt, bld, len(ra), len(rb), kernel.StateH)
	// Finish along the boundary to (0,0).
	for ; r > 0; r-- {
		bld.Push(align.Up)
	}
	for ; cc > 0; cc-- {
		bld.Push(align.Left)
	}
	return Result{Score: rt.H[entries-1], Path: bld.Path()}, nil
}

// Score computes only the optimal global score, still using the full matrix
// (FindScore phase of the FM algorithm). Exposed for tests comparing phase
// costs; prefer lastrow.Score for linear-space scoring.
func Score(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, budget *memory.Budget, c *stats.Counters) (int64, error) {
	res, err := Align(a, b, m, gap, budget, c)
	if err != nil {
		return 0, err
	}
	return res.Score, nil
}
