// Package fm implements the full-matrix (FM) dynamic-programming alignment
// algorithms of the paper's §2.1: Needleman-Wunsch global alignment with the
// two phases FindScore (fill the complete DPM) and FindPath (trace the
// optimal path backwards through the stored matrix), plus the Smith-Waterman
// local variant and a wavefront-parallel matrix fill. FM algorithms minimise
// operations (every cell exactly once) at the price of O(m*n) space; they are
// both the baseline FastLSA is compared against and the solver FastLSA uses
// for its base case.
package fm

import (
	"fmt"

	"fastlsa/internal/align"
	"fastlsa/internal/lastrow"
	"fastlsa/internal/memory"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/stats"
)

// Result is a scored global alignment path.
type Result struct {
	// Score is the optimal global alignment score (DPM bottom-right entry).
	Score int64
	// Path is the optimal path, with the deterministic tie-break
	// diagonal > up > left shared by every algorithm in this repository.
	Path align.Path
}

// Align computes the optimal global alignment of a and b with the full-matrix
// algorithm. The (m+1)*(n+1)-entry DPM is charged against budget (nil budget
// = unlimited) and released before returning; budget exhaustion surfaces as
// memory.ErrExceeded.
func Align(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, budget *memory.Budget, c *stats.Counters) (Result, error) {
	if err := gap.Validate(); err != nil {
		return Result{}, err
	}
	if !gap.IsLinear() {
		return AlignAffine(a, b, m, gap, budget, c)
	}
	ra, rb := a.Residues, b.Residues
	rows, cols := len(ra)+1, len(rb)+1
	entries := int64(rows) * int64(cols)
	if err := budget.Reserve(entries); err != nil {
		return Result{}, fmt.Errorf("fm: DPM of %d x %d entries: %w", rows, cols, err)
	}
	defer budget.Release(entries)

	g := int64(gap.Extend)
	buf := make([]int64, entries)
	if err := FillRect(ra, rb, m, g,
		lastrow.Boundary(buf[:cols], len(rb), 0, g),
		boundaryCol(buf, rows, cols, 0, g),
		buf, c); err != nil {
		return Result{}, err
	}

	bld := align.NewBuilder(len(ra) + len(rb))
	r, cc := TracebackRect(ra, rb, m, g, buf, bld, len(ra), len(rb), c)
	// Finish along the boundary to (0,0).
	for ; r > 0; r-- {
		bld.Push(align.Up)
	}
	for ; cc > 0; cc-- {
		bld.Push(align.Left)
	}
	c.AddTraceback(int64(bld.Len()))
	return Result{Score: buf[entries-1], Path: bld.Path()}, nil
}

// boundaryCol writes the leading-gap column into the matrix and returns a
// view of it (stride cols). Only used by Align above.
func boundaryCol(buf []int64, rows, cols int, corner, g int64) []int64 {
	col := make([]int64, rows)
	v := corner
	for r := 0; r < rows; r++ {
		col[r] = v
		buf[r*cols] = v
		v += g
	}
	return col
}

// FillRect fills the full DPM of a rectangle into buf (row-major,
// (len(a)+1) x (len(b)+1) entries) from its top row and left column boundary
// values. top (len n+1) and left (len m+1) must agree on the corner. buf row
// 0 and column 0 are set from the boundaries. The fill aborts with the
// context error when the run attached to c is cancelled.
func FillRect(a, b []byte, m *scoring.Matrix, gap int64, top, left []int64, buf []int64, c *stats.Counters) error {
	n := len(b)
	cols := n + 1
	copy(buf[:cols], top)
	stride := stats.PollStride(n)
	for r := 1; r <= len(a); r++ {
		if r%stride == 0 {
			if err := c.Cancelled(); err != nil {
				return err
			}
		}
		base := r * cols
		buf[base] = left[r]
		srow := m.Row(a[r-1])
		prev := base - cols
		rv := buf[base]
		for j := 1; j <= n; j++ {
			best := buf[prev+j-1] + int64(srow[b[j-1]])
			if v := buf[prev+j] + gap; v > best {
				best = v
			}
			if v := rv + gap; v > best {
				best = v
			}
			buf[base+j] = best
			rv = best
		}
	}
	c.AddCells(int64(len(a)) * int64(n))
	return nil
}

// TracebackRect traces the optimal path backwards from node (fromR, fromC)
// through the stored rectangle matrix until it reaches node row 0 or node
// column 0 of the rectangle, pushing moves on bld (in trace order). It
// returns the exit node. Tie-break: diagonal > up > left.
func TracebackRect(a, b []byte, m *scoring.Matrix, gap int64, buf []int64, bld *align.Builder, fromR, fromC int, c *stats.Counters) (exitR, exitC int) {
	cols := len(b) + 1
	r, cc := fromR, fromC
	steps := int64(0)
	for r > 0 && cc > 0 {
		cur := buf[r*cols+cc]
		switch {
		case buf[(r-1)*cols+cc-1]+int64(m.Score(a[r-1], b[cc-1])) == cur:
			bld.Push(align.Diag)
			r--
			cc--
		case buf[(r-1)*cols+cc]+gap == cur:
			bld.Push(align.Up)
			r--
		case buf[r*cols+cc-1]+gap == cur:
			bld.Push(align.Left)
			cc--
		default:
			// The matrix was produced by FillRect, so one predecessor always
			// matches; reaching here means memory corruption or a caller bug.
			panic(fmt.Sprintf("fm: traceback stuck at node (%d,%d): value %d has no consistent predecessor", r, cc, cur))
		}
		steps++
	}
	c.AddTraceback(steps)
	return r, cc
}

// Score computes only the optimal global score, still using the full matrix
// (FindScore phase of the FM algorithm). Exposed for tests comparing phase
// costs; prefer lastrow.Score for linear-space scoring.
func Score(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, budget *memory.Budget, c *stats.Counters) (int64, error) {
	res, err := Align(a, b, m, gap, budget, c)
	if err != nil {
		return 0, err
	}
	return res.Score, nil
}
