package fm

import (
	"fmt"

	"fastlsa/internal/align"
	"fastlsa/internal/lastrow"
	"fastlsa/internal/memory"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/stats"
)

// AlignMode computes an optimal ends-free alignment (align.Mode) with the
// full-matrix algorithm: free-start flags zero the corresponding DPM
// boundary, free-end flags move the traceback start to the best entry of
// the last column (FreeEndA) and/or last row (FreeEndB). The returned path
// still spans the full (m, n) rectangle — its free terminal runs simply
// carry no score — and Result.Score is the mode score (equal to
// align.ScorePathMode of the path). Both linear and affine gap models are
// supported.
func AlignMode(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, md align.Mode, budget *memory.Budget, c *stats.Counters) (Result, error) {
	if err := gap.Validate(); err != nil {
		return Result{}, err
	}
	if md.IsGlobal() {
		return Align(a, b, m, gap, budget, c)
	}
	if !gap.IsLinear() {
		return alignModeAffine(a, b, m, gap, md, budget, c)
	}
	ra, rb := a.Residues, b.Residues
	rows, cols := len(ra)+1, len(rb)+1
	entries := int64(rows) * int64(cols)
	if err := budget.Reserve(entries); err != nil {
		return Result{}, fmt.Errorf("fm: mode DPM of %d x %d entries: %w", rows, cols, err)
	}
	defer budget.Release(entries)

	g := int64(gap.Extend)
	buf := make([]int64, entries)
	top := ModeTopBoundary(nil, len(rb), g, md)
	left := ModeLeftBoundary(nil, len(ra), g, md)
	for r := 0; r < rows; r++ {
		buf[r*cols] = left[r]
	}
	if err := FillRect(ra, rb, m, g, top, left, buf, c); err != nil {
		return Result{}, err
	}

	endR, endC, score := ModeEnd(buf, rows, cols, md)

	bld := align.NewBuilder(len(ra) + len(rb))
	// Free trailing moves sit at the end of the path: push them first
	// (the builder accumulates in trace order).
	for i := len(ra); i > endR; i-- {
		bld.Push(align.Up)
	}
	for j := len(rb); j > endC; j-- {
		bld.Push(align.Left)
	}
	r, cc := TracebackRect(ra, rb, m, g, buf, bld, endR, endC, c)
	for ; r > 0; r-- {
		bld.Push(align.Up)
	}
	for ; cc > 0; cc-- {
		bld.Push(align.Left)
	}
	return Result{Score: score, Path: bld.Path()}, nil
}

// ModeTopBoundary builds DPM row 0 for the mode. Moves along row 0 consume
// B residues against gaps, so the row is zero-initialised when B's prefix is
// free to dangle (FreeStartB); otherwise it carries the usual leading-gap
// penalties.
func ModeTopBoundary(dst []int64, n int, g int64, md align.Mode) []int64 {
	if md.FreeStartB {
		if cap(dst) < n+1 {
			dst = make([]int64, n+1)
		}
		dst = dst[:n+1]
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	return lastrow.Boundary(dst, n, 0, g)
}

// ModeLeftBoundary builds DPM column 0 for the mode (zeros when FreeStartA).
func ModeLeftBoundary(dst []int64, m int, g int64, md align.Mode) []int64 {
	if md.FreeStartA {
		if cap(dst) < m+1 {
			dst = make([]int64, m+1)
		}
		dst = dst[:m+1]
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	return lastrow.Boundary(dst, m, 0, g)
}

// ModeEnd locates the traceback start for the mode in a filled row-major
// matrix: the best entry among (m, n), the last column if FreeEndA, and the
// last row if FreeEndB. Ties resolve to (m, n) first, then to larger
// indices (longer aligned cores).
func ModeEnd(buf []int64, rows, cols int, md align.Mode) (endR, endC int, score int64) {
	endR, endC = rows-1, cols-1
	score = buf[int64(rows)*int64(cols)-1]
	if md.FreeEndA {
		for r := rows - 2; r >= 0; r-- {
			if v := buf[r*cols+cols-1]; v > score {
				score, endR, endC = v, r, cols-1
			}
		}
	}
	if md.FreeEndB {
		for j := cols - 2; j >= 0; j-- {
			if v := buf[(rows-1)*cols+j]; v > score {
				score, endR, endC = v, rows-1, j
			}
		}
	}
	return endR, endC, score
}

// ModeEndFromEdges is ModeEnd over the last row and last column vectors
// (for linear-space engines that never store the matrix).
func ModeEndFromEdges(lastRow, lastCol []int64, md align.Mode) (endR, endC int, score int64) {
	m, n := len(lastCol)-1, len(lastRow)-1
	endR, endC = m, n
	score = lastRow[n]
	if md.FreeEndA {
		for r := m - 1; r >= 0; r-- {
			if lastCol[r] > score {
				score, endR, endC = lastCol[r], r, n
			}
		}
	}
	if md.FreeEndB {
		for j := n - 1; j >= 0; j-- {
			if lastRow[j] > score {
				score, endR, endC = lastRow[j], m, j
			}
		}
	}
	return endR, endC, score
}
