package fm

import (
	"fmt"

	"fastlsa/internal/align"
	"fastlsa/internal/kernel"
	"fastlsa/internal/memory"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/stats"
)

// AlignMode computes an optimal ends-free alignment (align.Mode) with the
// full-matrix algorithm: free-start flags zero the corresponding DPM
// boundary, free-end flags move the traceback start to the best entry of
// the last column (FreeEndA) and/or last row (FreeEndB). The returned path
// still spans the full (m, n) rectangle — its free terminal runs simply
// carry no score — and Result.Score is the mode score (equal to
// align.ScorePathMode of the path). Both linear and affine gap models are
// supported; they share one kernel-backed engine.
func AlignMode(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, md align.Mode, budget *memory.Budget, c *stats.Counters) (Result, error) {
	if err := gap.Validate(); err != nil {
		return Result{}, err
	}
	if md.IsGlobal() {
		return Align(a, b, m, gap, budget, c)
	}
	mod := kernel.FromGap(gap)
	ra, rb := a.Residues, b.Residues
	rows, cols := len(ra)+1, len(rb)+1
	entries := int64(rows) * int64(cols)
	planes := int64(mod.Planes())
	if err := budget.Reserve(planes * entries); err != nil {
		return Result{}, fmt.Errorf("fm: mode DPM of %d x %d x %d entries: %w", planes, rows, cols, err)
	}
	defer budget.Release(planes * entries)

	k := kernel.New(m, mod, pool, c)
	rt := k.MakeRect(rows * cols)
	top := k.ModeEdge(len(rb), md.FreeStartB)
	left := k.ModeEdge(len(ra), md.FreeStartA)
	defer k.PutEdge(top)
	defer k.PutEdge(left)
	if err := k.FillRect(ra, rb, top, left, rt); err != nil {
		return Result{}, err
	}

	endR, endC, score := ModeEnd(rt.H, rows, cols, md)

	bld := align.NewBuilder(len(ra) + len(rb))
	// Free trailing moves sit at the end of the path: push them first
	// (the builder accumulates in trace order).
	for i := len(ra); i > endR; i-- {
		bld.Push(align.Up)
	}
	for j := len(rb); j > endC; j-- {
		bld.Push(align.Left)
	}
	r, cc, _ := k.Traceback(ra, rb, rt, bld, endR, endC, kernel.StateH)
	for ; r > 0; r-- {
		bld.Push(align.Up)
	}
	for ; cc > 0; cc-- {
		bld.Push(align.Left)
	}
	return Result{Score: score, Path: bld.Path()}, nil
}

// ModeEnd locates the traceback start for the mode in a filled row-major
// matrix: the best entry among (m, n), the last column if FreeEndA, and the
// last row if FreeEndB. Ties resolve to (m, n) first, then to larger
// indices (longer aligned cores).
func ModeEnd(buf []int64, rows, cols int, md align.Mode) (endR, endC int, score int64) {
	endR, endC = rows-1, cols-1
	score = buf[int64(rows)*int64(cols)-1]
	if md.FreeEndA {
		for r := rows - 2; r >= 0; r-- {
			if v := buf[r*cols+cols-1]; v > score {
				score, endR, endC = v, r, cols-1
			}
		}
	}
	if md.FreeEndB {
		for j := cols - 2; j >= 0; j-- {
			if v := buf[(rows-1)*cols+j]; v > score {
				score, endR, endC = v, rows-1, j
			}
		}
	}
	return endR, endC, score
}

// ModeEndFromEdges is ModeEnd over the last row and last column vectors
// (for linear-space engines that never store the matrix).
func ModeEndFromEdges(lastRow, lastCol []int64, md align.Mode) (endR, endC int, score int64) {
	m, n := len(lastCol)-1, len(lastRow)-1
	endR, endC = m, n
	score = lastRow[n]
	if md.FreeEndA {
		for r := m - 1; r >= 0; r-- {
			if lastCol[r] > score {
				score, endR, endC = lastCol[r], r, n
			}
		}
	}
	if md.FreeEndB {
		for j := n - 1; j >= 0; j-- {
			if lastRow[j] > score {
				score, endR, endC = lastRow[j], m, j
			}
		}
	}
	return endR, endC, score
}
