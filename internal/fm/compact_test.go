package fm_test

import (
	"testing"

	"fastlsa/internal/align"
	"fastlsa/internal/fm"
	"fastlsa/internal/memory"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/testutil"
)

// TestAlignCompactIdenticalToAlign: the traceback-bit variant (paper §2.1)
// must return the same score and byte-identical path as the score-matrix
// variant.
func TestAlignCompactIdenticalToAlign(t *testing.T) {
	gap := scoring.Linear(-3)
	for seed := int64(0); seed < 25; seed++ {
		la := int(seed*7%60) + 1
		lb := int(seed*19%60) + 1
		a, b := testutil.RandomPair(la, lb, seq.DNA, seed+400)
		m := testutil.RandomMatrix(seq.DNA, seed+400)
		want, err := fm.Align(a, b, m, gap, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fm.AlignCompact(a, b, m, gap, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want.Score || !got.Path.Equal(want.Path) {
			t.Fatalf("seed %d: compact diverges (score %d vs %d, path %s vs %s)",
				seed, got.Score, want.Score, got.Path, want.Path)
		}
	}
}

// TestAlignCompactBudget: the compact variant must fit in roughly 1/8 the
// budget of the score-matrix variant.
func TestAlignCompactBudget(t *testing.T) {
	a, b := testutil.RandomPair(300, 300, seq.DNA, 3)
	full := int64(301) * 301
	budget, err := memory.NewBudget(full/4 + 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fm.Align(a, b, scoring.DNASimple, scoring.Linear(-4), budget, nil); err == nil {
		t.Fatal("score-matrix variant must exceed a quarter-size budget")
	}
	if _, err := fm.AlignCompact(a, b, scoring.DNASimple, scoring.Linear(-4), budget, nil); err != nil {
		t.Fatalf("compact variant must fit: %v", err)
	}
	if budget.Used() != 0 {
		t.Fatalf("budget leak: %d", budget.Used())
	}
}

func TestAlignCompactEdges(t *testing.T) {
	empty := seq.MustNew("e", "", seq.DNA)
	b := seq.MustNew("b", "ACG", seq.DNA)
	res, err := fm.AlignCompact(empty, b, scoring.DNAStrict, scoring.Linear(-1), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path.String() != "LLL" || res.Score != -3 {
		t.Fatalf("got %d %q", res.Score, res.Path)
	}
	if _, err := fm.AlignCompact(b, b, scoring.DNAStrict, scoring.Affine(-3, -1), nil, nil); err == nil {
		t.Fatal("affine must be rejected")
	}
}

// enumerateOptimalCount counts optimal paths by brute force for tiny inputs.
func enumerateOptimalCount(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap) int64 {
	best := testutil.EnumerateBest(a, b, m, gap)
	var count int64
	moves := make([]align.Move, 0, a.Len()+b.Len())
	var walk func(i, j int)
	walk = func(i, j int) {
		if i == a.Len() && j == b.Len() {
			if align.ScorePath(a, b, align.NewPath(moves), m, gap) == best {
				count++
			}
			return
		}
		if i < a.Len() && j < b.Len() {
			moves = append(moves, align.Diag)
			walk(i+1, j+1)
			moves = moves[:len(moves)-1]
		}
		if i < a.Len() {
			moves = append(moves, align.Up)
			walk(i+1, j)
			moves = moves[:len(moves)-1]
		}
		if j < b.Len() {
			moves = append(moves, align.Left)
			walk(i, j+1)
			moves = moves[:len(moves)-1]
		}
	}
	walk(0, 0)
	return count
}

// TestCountOptimalPaths compares the direction-bit path counter against
// exhaustive enumeration.
func TestCountOptimalPaths(t *testing.T) {
	gap := scoring.Linear(-2)
	for seed := int64(0); seed < 15; seed++ {
		a, b := testutil.RandomPair(int(seed%5)+1, int((seed+3)%5)+1, seq.DNA, seed+450)
		m := testutil.RandomMatrix(seq.DNA, seed+450)
		got, err := fm.CountOptimalPaths(a, b, m, gap, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := enumerateOptimalCount(a, b, m, gap)
		if got != want {
			t.Fatalf("seed %d (%q vs %q): counted %d, oracle %d", seed, a, b, got, want)
		}
	}
}

// TestCountOptimalPathsDegenerate: an all-identical pair under a uniform
// matrix has a known path count; also exercises saturation.
func TestCountOptimalPathsDegenerate(t *testing.T) {
	// Aligning AA vs AA with match 2, mismatch/gap penalties: unique path.
	a := seq.MustNew("a", "AA", seq.DNA)
	m, err := scoring.Uniform(seq.DNA, 2, -3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fm.CountOptimalPaths(a, a, m, scoring.Linear(-3), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("identical pair: %d optimal paths, want 1", got)
	}
	// The paper states of Figure 1: "in our example, there is a single
	// optimal path" (the two 5-identity alignments of §1.1 tie on identical
	// letters, not on the score-82 objective).
	got, err = fm.CountOptimalPaths(testutil.Figure1A, testutil.Figure1B, scoring.Table1, scoring.PaperGap, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("Figure 1 example: %d optimal paths, want exactly 1 (paper: single optimal path)", got)
	}
	// Saturation clamps at the limit.
	long := seq.MustNew("l", "AAAAAAAAAA", seq.DNA)
	other := seq.MustNew("o", "TTTTTTTTTT", seq.DNA)
	sat, err := fm.CountOptimalPaths(long, other, scoring.DNAStrict, scoring.Linear(-1), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sat > 5 {
		t.Fatalf("saturated count %d exceeds limit", sat)
	}
}
