package fm

import (
	"fmt"

	"fastlsa/internal/align"
	"fastlsa/internal/memory"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/stats"
)

// LocalResult is a Smith-Waterman local alignment: the best-scoring pair of
// subsequences a[StartA..EndA) and b[StartB..EndB) and the path between them.
type LocalResult struct {
	// Score is the optimal local alignment score (>= 0).
	Score int64
	// Path aligns a[StartA..EndA) against b[StartB..EndB).
	Path align.Path
	// StartA/EndA and StartB/EndB delimit the aligned subsequences
	// (0-based, half-open residue ranges).
	StartA, EndA int
	StartB, EndB int
}

// AlignLocal computes the optimal local alignment with the full-matrix
// Smith-Waterman algorithm (linear gap model; the paper's §2 mentions
// Smith-Waterman as the local counterpart of Needleman-Wunsch). The matrix is
// charged to budget. Ties for the maximum cell resolve to the smallest
// (row, column) in row-major order; traceback tie-break is diag > up > left.
func AlignLocal(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, budget *memory.Budget, c *stats.Counters) (LocalResult, error) {
	if err := gap.Validate(); err != nil {
		return LocalResult{}, err
	}
	if !gap.IsLinear() {
		return LocalResult{}, fmt.Errorf("fm: AlignLocal: affine gaps not supported by the local variant (use linear)")
	}
	ra, rb := a.Residues, b.Residues
	rows, cols := len(ra)+1, len(rb)+1
	entries := int64(rows) * int64(cols)
	if err := budget.Reserve(entries); err != nil {
		return LocalResult{}, fmt.Errorf("fm: local DPM of %d x %d entries: %w", rows, cols, err)
	}
	defer budget.Release(entries)

	g := int64(gap.Extend)
	buf := make([]int64, entries) // row 0 and column 0 stay 0
	bestScore := int64(0)
	bestR, bestC := 0, 0
	stride := stats.PollStride(len(rb))
	for r := 1; r < rows; r++ {
		if r%stride == 0 {
			if err := c.Cancelled(); err != nil {
				return LocalResult{}, err
			}
		}
		base := r * cols
		prev := base - cols
		srow := m.Row(ra[r-1])
		rv := int64(0)
		for j := 1; j < cols; j++ {
			best := buf[prev+j-1] + int64(srow[rb[j-1]])
			if v := buf[prev+j] + g; v > best {
				best = v
			}
			if v := rv + g; v > best {
				best = v
			}
			if best < 0 {
				best = 0
			}
			buf[base+j] = best
			rv = best
			if best > bestScore {
				bestScore = best
				bestR, bestC = r, j
			}
		}
	}
	c.AddCells(int64(len(ra)) * int64(len(rb)))

	if bestScore == 0 {
		// No positive-scoring pair exists; the empty alignment is optimal.
		return LocalResult{}, nil
	}

	bld := align.NewBuilder(bestR + bestC)
	r, cc := bestR, bestC
	steps := int64(0)
	for r > 0 && cc > 0 && buf[r*cols+cc] != 0 {
		cur := buf[r*cols+cc]
		switch {
		case buf[(r-1)*cols+cc-1]+int64(m.Score(ra[r-1], rb[cc-1])) == cur:
			bld.Push(align.Diag)
			r--
			cc--
		case buf[(r-1)*cols+cc]+g == cur:
			bld.Push(align.Up)
			r--
		case buf[r*cols+cc-1]+g == cur:
			bld.Push(align.Left)
			cc--
		default:
			panic(fmt.Sprintf("fm: local traceback stuck at (%d,%d)", r, cc))
		}
		steps++
	}
	c.AddTraceback(steps)
	return LocalResult{
		Score:  bestScore,
		Path:   bld.Path(),
		StartA: r, EndA: bestR,
		StartB: cc, EndB: bestC,
	}, nil
}

// ScoreLocal computes only the optimal local alignment score (and its end
// cell) in O(min(m,n)) space — the scan that database search uses to rank
// candidates before reconstructing the few best alignments.
func ScoreLocal(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, c *stats.Counters) (score int64, endA, endB int, err error) {
	if err := gap.Validate(); err != nil {
		return 0, 0, 0, err
	}
	if !gap.IsLinear() {
		return 0, 0, 0, fmt.Errorf("fm: ScoreLocal: affine gaps not supported (use linear)")
	}
	ra, rb := a.Residues, b.Residues
	g := int64(gap.Extend)
	n := len(rb)
	row := make([]int64, n+1)
	stride := stats.PollStride(n)
	for r := 1; r <= len(ra); r++ {
		if r%stride == 0 {
			if cerr := c.Cancelled(); cerr != nil {
				return 0, 0, 0, cerr
			}
		}
		srow := m.Row(ra[r-1])
		diag := row[0]
		rv := int64(0)
		for j := 1; j <= n; j++ {
			up := row[j]
			v := diag + int64(srow[rb[j-1]])
			if x := up + g; x > v {
				v = x
			}
			if x := rv + g; x > v {
				v = x
			}
			if v < 0 {
				v = 0
			}
			row[j] = v
			rv = v
			diag = up
			if v > score {
				score = v
				endA, endB = r, j
			}
		}
	}
	c.AddCells(int64(len(ra)) * int64(n))
	return score, endA, endB, nil
}
