package fm

import (
	"fmt"

	"fastlsa/internal/align"
	"fastlsa/internal/kernel"
	"fastlsa/internal/memory"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/stats"
)

// LocalResult is a Smith-Waterman local alignment: the best-scoring pair of
// subsequences a[StartA..EndA) and b[StartB..EndB) and the path between them.
type LocalResult struct {
	// Score is the optimal local alignment score (>= 0).
	Score int64
	// Path aligns a[StartA..EndA) against b[StartB..EndB).
	Path align.Path
	// StartA/EndA and StartB/EndB delimit the aligned subsequences
	// (0-based, half-open residue ranges).
	StartA, EndA int
	StartB, EndB int
}

// AlignLocal computes the optimal local alignment with the full-matrix
// Smith-Waterman algorithm (the paper's §2 mentions Smith-Waterman as the
// local counterpart of Needleman-Wunsch), under either gap model: linear
// gaps clamp the single plane at zero, affine gaps run the clamped Gotoh
// recurrence. The plane set is charged to budget. Ties for the maximum cell
// resolve to the smallest (row, column) in row-major order; traceback
// tie-break is diag > up > left.
func AlignLocal(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, budget *memory.Budget, c *stats.Counters) (LocalResult, error) {
	if err := gap.Validate(); err != nil {
		return LocalResult{}, err
	}
	mod := kernel.FromGap(gap)
	ra, rb := a.Residues, b.Residues
	rows, cols := len(ra)+1, len(rb)+1
	entries := int64(rows) * int64(cols)
	planes := int64(mod.Planes())
	if err := budget.Reserve(planes * entries); err != nil {
		return LocalResult{}, fmt.Errorf("fm: local DPM of %d x %d x %d entries: %w", planes, rows, cols, err)
	}
	defer budget.Release(planes * entries)

	k := kernel.New(m, mod, pool, c)
	rt := k.MakeRect(rows * cols)
	best, bestR, bestC, err := k.FillLocal(ra, rb, rt)
	if err != nil {
		return LocalResult{}, err
	}
	if best == 0 {
		// No positive-scoring pair exists; the empty alignment is optimal.
		return LocalResult{}, nil
	}

	bld := align.NewBuilder(bestR + bestC)
	r, cc := k.TracebackLocal(ra, rb, rt, bld, bestR, bestC)
	return LocalResult{
		Score:  best,
		Path:   bld.Path(),
		StartA: r, EndA: bestR,
		StartB: cc, EndB: bestC,
	}, nil
}

// ScoreLocal computes only the optimal local alignment score (and its end
// cell) in O(min(m,n)) space — the scan that database search uses to rank
// candidates before reconstructing the few best alignments. Both gap models
// are supported (one rolling row linear, two rolling rows affine).
func ScoreLocal(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, c *stats.Counters) (score int64, endA, endB int, err error) {
	if err := gap.Validate(); err != nil {
		return 0, 0, 0, err
	}
	k := kernel.New(m, kernel.FromGap(gap), pool, c)
	return k.LocalScore(a.Residues, b.Residues)
}
