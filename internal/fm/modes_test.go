package fm_test

import (
	"strings"
	"testing"

	"fastlsa/internal/align"
	"fastlsa/internal/fm"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/testutil"
)

var allModes = []align.Mode{
	align.Global,
	align.Overlap,
	align.FitBInA,
	align.FitAInB,
	{FreeStartA: true},
	{FreeEndB: true},
	{FreeStartA: true, FreeEndB: true},
	{FreeStartB: true, FreeEndA: true},
}

// TestAlignModeMatchesOracle checks every mode against the exhaustive
// mode-aware path enumerator on tiny inputs.
func TestAlignModeMatchesOracle(t *testing.T) {
	gap := scoring.Linear(-3)
	for _, md := range allModes {
		for seed := int64(0); seed < 12; seed++ {
			a, b := testutil.RandomPair(int(seed%6)+1, int((seed+2)%6)+1, seq.DNA, seed+300)
			m := testutil.RandomMatrix(seq.DNA, seed+300)
			res, err := fm.AlignMode(a, b, m, gap, md, nil, nil)
			if err != nil {
				t.Fatalf("%v seed %d: %v", md, seed, err)
			}
			want := testutil.EnumerateBestMode(a, b, m, gap, md)
			if res.Score != want {
				t.Fatalf("%v seed %d: score %d, oracle %d", md, seed, res.Score, want)
			}
			if err := res.Path.Validate(a.Len(), b.Len()); err != nil {
				t.Fatalf("%v seed %d: %v", md, seed, err)
			}
			if got := align.ScorePathMode(a, b, res.Path, m, gap, md); got != res.Score {
				t.Fatalf("%v seed %d: path rescoring %d != %d", md, seed, got, res.Score)
			}
		}
	}
}

// TestAlignModeOverlapDetectsOverlap: the classic overlap use case — the
// suffix of A equals the prefix of B; overlap mode must align exactly that
// region with no terminal-gap charge.
func TestAlignModeOverlapDetectsOverlap(t *testing.T) {
	shared := seq.Random("s", 50, seq.DNA, 601).String()
	a := seq.MustNew("a", seq.Random("", 70, seq.DNA, 602).String()+shared, seq.DNA)
	b := seq.MustNew("b", shared+seq.Random("", 90, seq.DNA, 603).String(), seq.DNA)
	res, err := fm.AlignMode(a, b, scoring.DNASimple, scoring.Linear(-4), align.Overlap, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score < 50*5 {
		t.Fatalf("overlap score %d < %d (perfect 50-base overlap)", res.Score, 50*5)
	}
	// Global alignment of the same pair is dominated by terminal gaps.
	global, err := fm.Align(a, b, scoring.DNASimple, scoring.Linear(-4), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if global.Score >= res.Score {
		t.Fatalf("global %d should be far below overlap %d here", global.Score, res.Score)
	}
}

// TestAlignModeFit embeds B inside A and checks the fit mode recovers it.
func TestAlignModeFit(t *testing.T) {
	inner := seq.Random("inner", 40, seq.DNA, 611)
	a := seq.MustNew("a", seq.Random("", 60, seq.DNA, 612).String()+inner.String()+seq.Random("", 60, seq.DNA, 613).String(), seq.DNA)
	res, err := fm.AlignMode(a, inner, scoring.DNASimple, scoring.Linear(-4), align.FitBInA, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 40*5 {
		t.Fatalf("fit score %d, want %d (perfect embedded copy)", res.Score, 40*5)
	}
	// The path must be: free Ups, 40 Diags, free Ups.
	ps := res.Path.String()
	if strings.Count(ps, "D") != 40 || strings.Contains(strings.Trim(ps, "U"), "U") {
		t.Fatalf("fit path unexpected: %s", ps)
	}
}

func TestAlignModeGlobalDelegates(t *testing.T) {
	a, b := testutil.RandomPair(20, 25, seq.DNA, 614)
	m := scoring.DNASimple
	gap := scoring.Linear(-4)
	want, err := fm.Align(a, b, m, gap, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fm.AlignMode(a, b, m, gap, align.Global, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Path.Equal(want.Path) || got.Score != want.Score {
		t.Fatal("global mode must delegate to Align")
	}
}

func TestAlignModeAffineGlobalDelegates(t *testing.T) {
	a, b := testutil.RandomPair(15, 18, seq.DNA, 1)
	gap := scoring.Affine(-5, -1)
	want, err := fm.AlignAffine(a, b, scoring.DNASimple, gap, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fm.AlignMode(a, b, scoring.DNASimple, gap, align.Global, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != want.Score || !got.Path.Equal(want.Path) {
		t.Fatal("global affine mode must delegate to AlignAffine")
	}
}

func TestModeParsingAndString(t *testing.T) {
	for name, want := range map[string]align.Mode{
		"global": align.Global, "": align.Global,
		"overlap": align.Overlap, "semiglobal": align.Overlap,
		"fit": align.FitBInA, "fit-a-in-b": align.FitAInB,
	} {
		got, err := align.ParseMode(name)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := align.ParseMode("sideways"); err == nil {
		t.Fatal("unknown mode must fail")
	}
	if align.Overlap.String() != "overlap" || !align.Global.IsGlobal() {
		t.Fatal("mode helpers broken")
	}
	if !strings.Contains((align.Mode{FreeStartA: true}).String(), "true") {
		t.Fatal("custom mode rendering broken")
	}
}

// TestScorePathModeTrimming: free terminal runs contribute nothing,
// interleaved order of leading Up/Left runs notwithstanding.
func TestScorePathModeTrimming(t *testing.T) {
	a := seq.MustNew("a", "AC", seq.DNA)
	b := seq.MustNew("b", "AC", seq.DNA)
	m := scoring.DNAStrict // +1/-1
	gap := scoring.Linear(-2)
	// Path LLUU DD is invalid for 2x2... use a=3 residues, b=3:
	a3 := seq.MustNew("a", "GAC", seq.DNA)
	b3 := seq.MustNew("b", "TAC", seq.DNA)
	// Path: U L D D — leading U (dangling G), leading L (dangling T), then align AC/AC.
	p, err := align.ParseCIGAR("1I1D2M")
	if err != nil {
		t.Fatal(err)
	}
	full := align.ScorePath(a3, b3, p, m, gap)
	if full != -2-2+2 {
		t.Fatalf("charged score = %d", full)
	}
	// Only the FIRST run is free: the Up run is trimmed, the following
	// Left run stays charged (standard ends-free semantics).
	if got := align.ScorePathMode(a3, b3, p, m, gap, align.Overlap); got != -2+2 {
		t.Fatalf("overlap score = %d, want 0", got)
	}
	// Reversed leading order (L then U): the Left run is free, the Up run
	// charged — same total here.
	p2, err := align.ParseCIGAR("1D1I2M")
	if err != nil {
		t.Fatal(err)
	}
	if got := align.ScorePathMode(a3, b3, p2, m, gap, align.Overlap); got != -2+2 {
		t.Fatalf("overlap score (LU order) = %d, want 0", got)
	}
	// Only FreeStartA: the leading Up run is free in UL order...
	if got := align.ScorePathMode(a3, b3, p, m, gap, align.Mode{FreeStartA: true}); got != -2+2 {
		t.Fatalf("freeStartA score = %d, want 0", got)
	}
	// ...but in LU order the first run is a Left, which FreeStartA does not
	// cover, so nothing is trimmed.
	if got := align.ScorePathMode(a3, b3, p2, m, gap, align.Mode{FreeStartA: true}); got != -2-2+2 {
		t.Fatalf("freeStartA (LU order) score = %d, want -2", got)
	}
	_ = a
	_ = b
}

// TestAlignModeAffineMatchesOracle checks the affine ends-free engine
// against the exhaustive mode-aware enumerator.
func TestAlignModeAffineMatchesOracle(t *testing.T) {
	gap := scoring.Affine(-5, -2)
	for _, md := range allModes {
		for seed := int64(0); seed < 10; seed++ {
			a, b := testutil.RandomPair(int(seed%6)+1, int((seed+2)%6)+1, seq.DNA, seed+350)
			m := testutil.RandomMatrix(seq.DNA, seed+350)
			res, err := fm.AlignMode(a, b, m, gap, md, nil, nil)
			if err != nil {
				t.Fatalf("%v seed %d: %v", md, seed, err)
			}
			want := testutil.EnumerateBestMode(a, b, m, gap, md)
			if res.Score != want {
				t.Fatalf("%v seed %d (%q x %q): affine score %d, oracle %d", md, seed, a, b, res.Score, want)
			}
			if err := res.Path.Validate(a.Len(), b.Len()); err != nil {
				t.Fatalf("%v seed %d: %v", md, seed, err)
			}
			if got := align.ScorePathMode(a, b, res.Path, m, gap, md); got != res.Score {
				t.Fatalf("%v seed %d: path rescoring %d != %d", md, seed, got, res.Score)
			}
		}
	}
}

// TestAlignModeAffineOverlap: overlap mode with affine gaps on a planted
// overlap pair.
func TestAlignModeAffineOverlap(t *testing.T) {
	shared := seq.Random("s", 40, seq.DNA, 621).String()
	a := seq.MustNew("a", seq.Random("", 50, seq.DNA, 622).String()+shared, seq.DNA)
	b := seq.MustNew("b", shared+seq.Random("", 60, seq.DNA, 623).String(), seq.DNA)
	res, err := fm.AlignMode(a, b, scoring.DNASimple, scoring.Affine(-10, -2), align.Overlap, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score < 40*5 {
		t.Fatalf("affine overlap score %d < 200", res.Score)
	}
}
