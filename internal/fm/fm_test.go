package fm_test

import (
	"testing"

	"fastlsa/internal/align"
	"fastlsa/internal/fm"
	"fastlsa/internal/memory"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/stats"
	"fastlsa/internal/testutil"
)

// TestFigure1 reproduces the paper's worked example end to end: the modified
// Dayhoff Table 1 scores with gap -10 align TDVLKAD against TLDKLLKD with
// optimal score 82 (experiment E1).
func TestFigure1(t *testing.T) {
	res, err := fm.Align(testutil.Figure1A, testutil.Figure1B, scoring.Table1, scoring.PaperGap, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != testutil.Figure1Score {
		t.Fatalf("score = %d, want %d", res.Score, testutil.Figure1Score)
	}
	al, err := align.New(testutil.Figure1A, testutil.Figure1B, res.Path, res.Score)
	if err != nil {
		t.Fatal(err)
	}
	rowA, rowB := al.Rows()
	// The paper lists two optimal alignments; both have 9 columns and
	// rescore to 82. Check shape and score rather than one specific tie.
	if len(rowA) != len(rowB) {
		t.Fatalf("row lengths differ: %d vs %d", len(rowA), len(rowB))
	}
	if got := al.Rescore(scoring.Table1, scoring.PaperGap); got != 82 {
		t.Fatalf("rescore = %d, want 82", got)
	}
}

// TestFigure1MatrixValues spot-checks DPM entries the paper prints in
// Figure 1 (computed via prefix alignments).
func TestFigure1MatrixValues(t *testing.T) {
	// D[1][1] = 20 ([T,T]), D[1][2] = 10 ([T,L]), D[2][3] = 30 ([D,D] in
	// paper's path), and the corner D[7][8] = 82.
	cases := []struct {
		ar, bc int
		want   int64
	}{
		{1, 1, 20},
		{1, 2, 10},
		{2, 3, 30},
		{7, 8, 82},
	}
	for _, tc := range cases {
		a := testutil.Figure1A.Slice(0, tc.ar)
		b := testutil.Figure1B.Slice(0, tc.bc)
		res, err := fm.Align(a, b, scoring.Table1, scoring.PaperGap, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Score != tc.want {
			t.Errorf("D[%d][%d] = %d, want %d", tc.ar, tc.bc, res.Score, tc.want)
		}
	}
}

func TestAlignMatchesExhaustiveOracle(t *testing.T) {
	gap := scoring.Linear(-3)
	for seed := int64(0); seed < 20; seed++ {
		a, b := testutil.RandomPair(int(seed%6)+1, int((seed+3)%7)+1, seq.DNA, seed)
		m := testutil.RandomMatrix(seq.DNA, seed)
		res, err := fm.Align(a, b, m, gap, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := testutil.EnumerateBest(a, b, m, gap)
		if res.Score != int64(want) {
			t.Fatalf("seed %d: score %d, oracle %d", seed, res.Score, want)
		}
		if msg := testutil.CheckAlignment(a, b, res.Path, res.Score, m, gap); msg != "" {
			t.Fatalf("seed %d: %s", seed, msg)
		}
	}
}

func TestAlignAffineMatchesExhaustiveOracle(t *testing.T) {
	gap := scoring.Affine(-5, -2)
	for seed := int64(0); seed < 20; seed++ {
		a, b := testutil.RandomPair(int(seed%6)+1, int((seed+2)%6)+1, seq.DNA, seed+100)
		m := testutil.RandomMatrix(seq.DNA, seed+100)
		res, err := fm.Align(a, b, m, gap, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := testutil.EnumerateBest(a, b, m, gap)
		if res.Score != int64(want) {
			t.Fatalf("seed %d: affine score %d, oracle %d", seed, res.Score, want)
		}
		if msg := testutil.CheckAlignment(a, b, res.Path, res.Score, m, gap); msg != "" {
			t.Fatalf("seed %d: %s", seed, msg)
		}
	}
}

func TestAlignEmptySequences(t *testing.T) {
	gap := scoring.Linear(-2)
	m := scoring.DNAStrict
	empty := seq.MustNew("e", "", seq.DNA)
	b := seq.MustNew("b", "ACGT", seq.DNA)

	res, err := fm.Align(empty, b, m, gap, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != -8 {
		t.Fatalf("empty vs ACGT score = %d, want -8", res.Score)
	}
	if got := res.Path.String(); got != "LLLL" {
		t.Fatalf("path = %q, want LLLL", got)
	}

	res, err = fm.Align(b, empty, m, gap, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Path.String(); got != "UUUU" {
		t.Fatalf("path = %q, want UUUU", got)
	}

	res, err = fm.Align(empty, empty, m, gap, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 0 || res.Path.Len() != 0 {
		t.Fatalf("empty vs empty: score %d len %d", res.Score, res.Path.Len())
	}
}

func TestAlignBudgetRejection(t *testing.T) {
	b, err := memory.NewBudget(10)
	if err != nil {
		t.Fatal(err)
	}
	x, y := testutil.RandomPair(50, 50, seq.DNA, 1)
	if _, err := fm.Align(x, y, scoring.DNASimple, scoring.Linear(-4), b, nil); err == nil {
		t.Fatal("expected budget rejection for 51x51 matrix against 10-entry budget")
	}
	if b.Used() != 0 {
		t.Fatalf("budget leak: %d entries still reserved", b.Used())
	}
}

func TestAlignCountsCells(t *testing.T) {
	var c stats.Counters
	a, b := testutil.RandomPair(13, 17, seq.DNA, 2)
	if _, err := fm.Align(a, b, scoring.DNASimple, scoring.Linear(-4), nil, &c); err != nil {
		t.Fatal(err)
	}
	if got := c.Cells.Load(); got != 13*17 {
		t.Fatalf("cells = %d, want %d", got, 13*17)
	}
}

func TestGapValidation(t *testing.T) {
	a, b := testutil.RandomPair(4, 4, seq.DNA, 3)
	if _, err := fm.Align(a, b, scoring.DNASimple, scoring.Linear(0), nil, nil); err == nil {
		t.Fatal("gap penalty 0 must be rejected")
	}
	if _, err := fm.Align(a, b, scoring.DNASimple, scoring.Affine(3, -1), nil, nil); err == nil {
		t.Fatal("positive gap open must be rejected")
	}
}

func TestAlignLocalBasics(t *testing.T) {
	gap := scoring.Linear(-4)
	m := scoring.DNASimple
	// Identical core ACGTACGT embedded in unrelated flanks.
	a := seq.MustNew("a", "TTTTACGTACGTTTTT", seq.DNA)
	b := seq.MustNew("b", "GGGGGACGTACGTGGG", seq.DNA)
	res, err := fm.AlignLocal(a, b, m, gap, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score <= 0 {
		t.Fatalf("expected positive local score, got %d", res.Score)
	}
	subA := a.Slice(res.StartA, res.EndA)
	subB := b.Slice(res.StartB, res.EndB)
	if msg := testutil.CheckAlignment(subA, subB, res.Path, res.Score, m, gap); msg != "" {
		t.Fatal(msg)
	}
	// The shared 8-mer (plus the mutual T at the flank boundary) must be
	// found: score at least 8 matches * 5.
	if res.Score < 40 {
		t.Fatalf("local score %d < 40; found %q vs %q", res.Score, subA, subB)
	}
}

func TestAlignLocalAllNegative(t *testing.T) {
	// Disjoint alphabet halves: every pair mismatches.
	a := seq.MustNew("a", "AAAA", seq.DNA)
	b := seq.MustNew("b", "TTTT", seq.DNA)
	res, err := fm.AlignLocal(a, b, scoring.DNASimple, scoring.Linear(-4), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 0 || res.Path.Len() != 0 {
		t.Fatalf("expected empty local alignment, got score %d len %d", res.Score, res.Path.Len())
	}
}

// TestAlignLocalIsBestOverSubranges cross-checks Smith-Waterman against
// global alignments of all subranges on tiny inputs.
func TestAlignLocalIsBestOverSubranges(t *testing.T) {
	gap := scoring.Linear(-3)
	for seed := int64(0); seed < 8; seed++ {
		a, b := testutil.RandomPair(5, 6, seq.DNA, seed+40)
		m := testutil.RandomMatrix(seq.DNA, seed+40)
		res, err := fm.AlignLocal(a, b, m, gap, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		best := int64(0)
		for i0 := 0; i0 <= a.Len(); i0++ {
			for i1 := i0; i1 <= a.Len(); i1++ {
				for j0 := 0; j0 <= b.Len(); j0++ {
					for j1 := j0; j1 <= b.Len(); j1++ {
						if i0 == i1 && j0 == j1 {
							continue
						}
						s := testutil.EnumerateBest(a.Slice(i0, i1), b.Slice(j0, j1), m, gap)
						if int64(s) > best {
							best = int64(s)
						}
					}
				}
			}
		}
		if res.Score != best {
			t.Fatalf("seed %d: local score %d, subrange oracle %d", seed, res.Score, best)
		}
	}
}

func TestScoreLocalMatchesAlignLocal(t *testing.T) {
	gap := scoring.Linear(-4)
	for seed := int64(0); seed < 10; seed++ {
		a, b := testutil.RandomPair(int(seed*7%80)+1, int(seed*13%80)+1, seq.DNA, seed+960)
		m := testutil.RandomMatrix(seq.DNA, seed+960)
		full, err := fm.AlignLocal(a, b, m, gap, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		score, endA, endB, err := fm.ScoreLocal(a, b, m, gap, nil)
		if err != nil {
			t.Fatal(err)
		}
		if score != full.Score {
			t.Fatalf("seed %d: scan %d, full %d", seed, score, full.Score)
		}
		if score > 0 && (endA != full.EndA || endB != full.EndB) {
			t.Fatalf("seed %d: scan end (%d,%d), full end (%d,%d)", seed, endA, endB, full.EndA, full.EndB)
		}
	}
}

// TestScoreLocalAffineMatchesAlignLocal is the affine counterpart: the
// rolling-row Gotoh scan agrees with the stored-matrix local solve.
func TestScoreLocalAffineMatchesAlignLocal(t *testing.T) {
	gap := scoring.Affine(-5, -1)
	for seed := int64(0); seed < 8; seed++ {
		a, b := testutil.RandomPair(int(seed*7%60)+1, int(seed*13%60)+1, seq.Protein, seed+530)
		m := testutil.RandomMatrix(seq.Protein, seed+530)
		full, err := fm.AlignLocal(a, b, m, gap, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		score, endA, endB, err := fm.ScoreLocal(a, b, m, gap, nil)
		if err != nil {
			t.Fatal(err)
		}
		if score != full.Score {
			t.Fatalf("seed %d: scan %d, full %d", seed, score, full.Score)
		}
		if score > 0 && (endA != full.EndA || endB != full.EndB) {
			t.Fatalf("seed %d: scan end (%d,%d), full end (%d,%d)", seed, endA, endB, full.EndA, full.EndB)
		}
	}
}
