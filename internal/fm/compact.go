package fm

import (
	"fmt"

	"fastlsa/internal/align"
	"fastlsa/internal/kernel"
	"fastlsa/internal/memory"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/stats"
)

// Direction bits stored per DPM entry by the compact variant (paper §2.1:
// "An alternative approach is to store three bits in each DPM entry to
// record the backward path. Each bit corresponds to one of the directions,
// diagonal, up or left.").
const (
	dirDiag byte = 1 << iota
	dirUp
	dirLeft
)

// AlignCompact is the traceback-bit full-matrix variant of §2.1: instead of
// the full score matrix it keeps one live score row plus a byte of direction
// bits per cell, cutting the quadratic footprint eightfold (1 byte vs one
// 8-byte score). All optimal predecessors are recorded, so the traceback can
// follow the same deterministic diag > up > left choice as Align — the two
// variants return byte-identical paths.
//
// The budget is charged (m+1)(n+1)/8 entries (bytes scaled to the 8-byte
// entry unit) plus one score row. Linear gap models only.
func AlignCompact(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, budget *memory.Budget, c *stats.Counters) (Result, error) {
	if err := gap.Validate(); err != nil {
		return Result{}, err
	}
	if !gap.IsLinear() {
		return Result{}, fmt.Errorf("fm: AlignCompact: affine gaps not supported (use Align)")
	}
	ra, rb := a.Residues, b.Residues
	rows, cols := len(ra)+1, len(rb)+1
	cells := int64(rows) * int64(cols)
	charged := (cells+7)/8 + int64(cols)
	if err := budget.Reserve(charged); err != nil {
		return Result{}, fmt.Errorf("fm: compact DPM of %d direction bytes: %w", cells, err)
	}
	defer budget.Release(charged)

	dirs, row, err := fillDirs(ra, rb, m, int64(gap.Extend), c)
	if err != nil {
		return Result{}, err
	}

	bld := align.NewBuilder(len(ra) + len(rb))
	r, cc := len(ra), len(rb)
	steps := int64(0)
	for r > 0 || cc > 0 {
		d := dirs[r*cols+cc]
		switch {
		case d&dirDiag != 0:
			bld.Push(align.Diag)
			r--
			cc--
		case d&dirUp != 0:
			bld.Push(align.Up)
			r--
		case d&dirLeft != 0:
			bld.Push(align.Left)
			cc--
		default:
			panic(fmt.Sprintf("fm: compact traceback stuck at (%d,%d)", r, cc))
		}
		steps++
	}
	c.AddTraceback(steps)
	return Result{Score: row[len(rb)], Path: bld.Path()}, nil
}

// CountOptimalPaths counts the distinct optimal paths through the DPM using
// the direction bits (the paper notes "in general it is possible for more
// than one path to be optimal"). The count saturates at limit (pass <= 0 for
// a default of 1<<62) to avoid overflow on highly degenerate inputs.
func CountOptimalPaths(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, limit int64, c *stats.Counters) (int64, error) {
	if err := gap.Validate(); err != nil {
		return 0, err
	}
	if !gap.IsLinear() {
		return 0, fmt.Errorf("fm: CountOptimalPaths: affine gaps not supported")
	}
	if limit <= 0 {
		limit = 1 << 62
	}
	ra, rb := a.Residues, b.Residues
	rows, cols := len(ra)+1, len(rb)+1

	dirs, _, err := fillDirs(ra, rb, m, int64(gap.Extend), c)
	if err != nil {
		return 0, err
	}

	// Count paths backwards from (m, n): one row of counts suffices.
	cnt := make([]int64, cols)
	next := make([]int64, cols)
	sat := func(x, y int64) int64 {
		s := x + y
		if s > limit || s < 0 {
			return limit
		}
		return s
	}
	// Bottom row r = rows-1 processed first going upwards.
	// cnt holds row r+1 of path counts; next is row r, built right to left
	// so next[j+1] is available when next[j] is computed. A node's
	// successors are the nodes whose direction bits point back at it.
	for r := rows - 1; r >= 0; r-- {
		for j := cols - 1; j >= 0; j-- {
			if r == rows-1 && j == cols-1 {
				next[j] = 1
				continue
			}
			var total int64
			if d := dirAt(dirs, cols, rows, r, j+1); d&dirLeft != 0 {
				total = sat(total, next[j+1])
			}
			if r+1 < rows {
				if d := dirs[(r+1)*cols+j]; d&dirUp != 0 {
					total = sat(total, cnt[j])
				}
				if j+1 < cols {
					if d := dirs[(r+1)*cols+j+1]; d&dirDiag != 0 {
						total = sat(total, cnt[j+1])
					}
				}
			}
			next[j] = total
		}
		cnt, next = next, cnt
	}
	return cnt[0], nil
}

// fillDirs computes the direction-bit matrix and the final score row with a
// single live score row.
func fillDirs(ra, rb []byte, m *scoring.Matrix, g int64, c *stats.Counters) (dirs []byte, row []int64, err error) {
	rows, cols := len(ra)+1, len(rb)+1
	dirs = make([]byte, rows*cols)
	row = kernel.Boundary(nil, len(rb), 0, g)

	// Row 0: only Left is possible; column 0: only Up.
	for j := 1; j < cols; j++ {
		dirs[j] = dirLeft
	}
	for r := 1; r < rows; r++ {
		dirs[r*cols] = dirUp
	}

	poll := c.StartPoll()
	for r := 1; r < rows; r++ {
		if err := poll.Tick(len(rb)); err != nil {
			return nil, nil, err
		}
		srow := m.Row(ra[r-1])
		diag := row[0]
		rv := int64(r) * g
		row[0] = rv
		base := r * cols
		for j := 1; j < cols; j++ {
			up := row[j]
			dv := diag + int64(srow[rb[j-1]])
			uv := up + g
			best := dv
			if uv > best {
				best = uv
			}
			lv := rv + g
			if lv > best {
				best = lv
			}
			var d byte
			if dv == best {
				d |= dirDiag
			}
			if uv == best {
				d |= dirUp
			}
			if lv == best {
				d |= dirLeft
			}
			dirs[base+j] = d
			row[j] = best
			rv = best
			diag = up
		}
	}
	c.AddCells(int64(len(ra)) * int64(len(rb)))
	return dirs, row, nil
}

func dirAt(dirs []byte, cols, rows, r, j int) byte {
	if j >= cols || r >= rows {
		return 0
	}
	return dirs[r*cols+j]
}
