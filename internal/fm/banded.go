package fm

import (
	"fmt"

	"fastlsa/internal/align"
	"fastlsa/internal/kernel"
	"fastlsa/internal/memory"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/stats"
)

// NegInf marks band cells outside the reachable region. Aliased from the
// kernel so the band code shares the one sentinel.
const NegInf = kernel.NegInf

// AlignBanded computes a banded global alignment: only DPM cells whose
// diagonal j-i lies within [min(0, n-m)-band, max(0, n-m)+band] are
// evaluated, using O((m+1) * width) memory and time where width ~ 2*band +
// |n-m| + 1. The classic k-band accelerator for pairs known to be similar:
// if the optimal unrestricted path stays inside the band (always true for
// band >= max(m, n)), the result is the global optimum; otherwise it is the
// best alignment confined to the band — a lower bound on the optimum.
// Widening the band until the score stops improving recovers exactness
// (see AlignBandedAdaptive). Linear gap models only.
func AlignBanded(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, band int, budget *memory.Budget, c *stats.Counters) (Result, error) {
	if err := gap.Validate(); err != nil {
		return Result{}, err
	}
	if !gap.IsLinear() {
		return Result{}, fmt.Errorf("fm: AlignBanded: affine gaps not supported")
	}
	if band < 0 {
		return Result{}, fmt.Errorf("fm: AlignBanded: negative band %d", band)
	}
	ra, rb := a.Residues, b.Residues
	mlen, nlen := len(ra), len(rb)

	// Diagonal range [lo, hi] guarantees (0,0) and (m,n) are inside.
	lo := -band
	if nlen-mlen < 0 {
		lo = nlen - mlen - band
	}
	hi := band
	if nlen-mlen > 0 {
		hi = nlen - mlen + band
	}
	width := hi - lo + 1

	entries := int64(mlen+1) * int64(width)
	if err := budget.Reserve(entries); err != nil {
		return Result{}, fmt.Errorf("fm: banded DPM of %d x %d entries: %w", mlen+1, width, err)
	}
	defer budget.Release(entries)

	g := int64(gap.Extend)
	buf := make([]int64, entries)
	for i := range buf {
		buf[i] = NegInf
	}
	// idx maps node (i, j) with lo <= j-i <= hi into the band buffer.
	idx := func(i, j int) int { return i*width + (j - i - lo) }
	at := func(i, j int) int64 {
		if j < 0 || j > nlen || j-i < lo || j-i > hi {
			return NegInf
		}
		return buf[idx(i, j)]
	}

	// Row 0 within the band.
	for j := 0; j <= nlen && j <= hi; j++ {
		buf[idx(0, j)] = int64(j) * g
	}
	cells := int64(0)
	poll := c.StartPoll()
	for i := 1; i <= mlen; i++ {
		if err := poll.Tick(width); err != nil {
			return Result{}, err
		}
		srow := m.Row(ra[i-1])
		jLo := i + lo
		if jLo < 0 {
			jLo = 0
		}
		jHi := i + hi
		if jHi > nlen {
			jHi = nlen
		}
		for j := jLo; j <= jHi; j++ {
			if j == 0 {
				buf[idx(i, 0)] = int64(i) * g
				continue
			}
			best := int64(NegInf)
			if d := at(i-1, j-1); d > NegInf {
				best = d + int64(srow[rb[j-1]])
			}
			if u := at(i-1, j); u > NegInf && u+g > best {
				best = u + g
			}
			if l := at(i, j-1); l > NegInf && l+g > best {
				best = l + g
			}
			buf[idx(i, j)] = best
			cells++
		}
	}
	c.AddCells(cells)

	score := at(mlen, nlen)
	if score <= NegInf {
		return Result{}, fmt.Errorf("fm: band of %d disconnects (0,0) from (%d,%d)", band, mlen, nlen)
	}

	// Traceback within the band.
	bld := align.NewBuilder(mlen + nlen)
	i, j := mlen, nlen
	steps := int64(0)
	for i > 0 && j > 0 {
		cur := buf[idx(i, j)]
		switch {
		case at(i-1, j-1) > NegInf && at(i-1, j-1)+int64(m.Score(ra[i-1], rb[j-1])) == cur:
			bld.Push(align.Diag)
			i--
			j--
		case at(i-1, j) > NegInf && at(i-1, j)+g == cur:
			bld.Push(align.Up)
			i--
		case at(i, j-1) > NegInf && at(i, j-1)+g == cur:
			bld.Push(align.Left)
			j--
		default:
			panic(fmt.Sprintf("fm: banded traceback stuck at (%d,%d)", i, j))
		}
		steps++
	}
	for ; i > 0; i-- {
		bld.Push(align.Up)
	}
	for ; j > 0; j-- {
		bld.Push(align.Left)
	}
	c.AddTraceback(steps)
	return Result{Score: score, Path: bld.Path()}, nil
}

// AlignBandedAdaptive runs AlignBanded with a doubling band until the score
// stops improving and the band provably contains an optimal path: once two
// consecutive widths agree — or the band covers the whole matrix — the
// result is the global optimum. startBand <= 0 selects 8.
func AlignBandedAdaptive(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, startBand int, budget *memory.Budget, c *stats.Counters) (Result, int, error) {
	if startBand <= 0 {
		startBand = 8
	}
	maxDim := a.Len()
	if b.Len() > maxDim {
		maxDim = b.Len()
	}
	band := startBand
	prev, err := AlignBanded(a, b, m, gap, band, budget, c)
	if err != nil {
		return Result{}, 0, err
	}
	for band < maxDim {
		next := band * 2
		if next > maxDim {
			next = maxDim
		}
		res, err := AlignBanded(a, b, m, gap, next, budget, c)
		if err != nil {
			return Result{}, 0, err
		}
		if res.Score == prev.Score {
			return res, next, nil
		}
		prev, band = res, next
	}
	return prev, band, nil
}
