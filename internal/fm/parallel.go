package fm

import (
	"fmt"

	"fastlsa/internal/align"
	"fastlsa/internal/kernel"
	"fastlsa/internal/memory"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/stats"
	"fastlsa/internal/wavefront"
)

// AlignParallel is the wavefront-parallel full-matrix algorithm: the stored
// DPM is filled by P workers over a tile grid (the FindScore phase
// parallelises; the FindPath traceback stays sequential). It is the
// quadratic-space baseline that Parallel FastLSA is compared against in the
// parallel experiments. Linear gap models only.
func AlignParallel(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, workers int, budget *memory.Budget, c *stats.Counters) (Result, error) {
	if err := gap.Validate(); err != nil {
		return Result{}, err
	}
	if !gap.IsLinear() {
		return Result{}, fmt.Errorf("fm: AlignParallel: affine gaps not supported (use Align)")
	}
	if workers <= 1 {
		return Align(a, b, m, gap, budget, c)
	}
	ra, rb := a.Residues, b.Residues
	rows, cols := len(ra), len(rb)
	stride := cols + 1
	entries := int64(rows+1) * int64(stride)
	if err := budget.Reserve(entries); err != nil {
		return Result{}, fmt.Errorf("fm: parallel DPM of %dx%d entries: %w", rows+1, stride, err)
	}
	defer budget.Release(entries)

	g := int64(gap.Extend)
	k := kernel.New(m, kernel.Linear(g), pool, c)
	rt := kernel.Rect{H: make([]int64, entries)}
	kernel.Boundary(rt.H[:stride], cols, 0, g)
	v := int64(0)
	for r := 0; r <= rows; r++ {
		rt.H[r*stride] = v
		v += g
	}

	if rows > 0 && cols > 0 {
		R := workers * 2
		if R > rows {
			R = rows
		}
		C := workers * 2
		if C > cols {
			C = cols
		}
		trs := tileBounds(rows, R)
		tcs := tileBounds(cols, C)
		wf := &wavefront.Grid{
			Rows:    R,
			Cols:    C,
			Workers: workers,
			Exec: func(ti, tj int) error {
				if err := k.FillRegion(ra, rb, rt, trs[ti], trs[ti+1], tcs[tj], tcs[tj+1]); err != nil {
					return err
				}
				c.AddFillTile()
				return nil
			},
		}
		ph := wavefront.ClassifyPhases(R, C, workers, nil)
		c.AddPhaseTiles(1, ph.Tiles1)
		c.AddPhaseTiles(2, ph.Tiles2)
		c.AddPhaseTiles(3, ph.Tiles3)
		if err := wf.Run(); err != nil {
			return Result{}, err
		}
	}

	bld := align.NewBuilder(rows + cols)
	r, cc, _ := k.Traceback(ra, rb, rt, bld, rows, cols, kernel.StateH)
	for ; r > 0; r-- {
		bld.Push(align.Up)
	}
	for ; cc > 0; cc-- {
		bld.Push(align.Left)
	}
	return Result{Score: rt.H[entries-1], Path: bld.Path()}, nil
}

// tileBounds splits [0, n] into t near-equal segments.
func tileBounds(n, t int) []int {
	bs := make([]int, t+1)
	for i := 0; i <= t; i++ {
		bs[i] = n * i / t
	}
	return bs
}
