package fm

import (
	"fmt"

	"fastlsa/internal/align"
	"fastlsa/internal/lastrow"
	"fastlsa/internal/memory"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/stats"
)

// alignModeAffine is the affine-gap ends-free full-matrix engine: free-start
// flags zero the H boundary of the corresponding edge (terminal gaps along
// that edge carry no charge, and paths may effectively start anywhere on
// it), free-end flags move the traceback start to the best H entry of the
// last column / row.
func alignModeAffine(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, md align.Mode, budget *memory.Budget, c *stats.Counters) (Result, error) {
	ra, rb := a.Residues, b.Residues
	rows, cols := len(ra)+1, len(rb)+1
	entries := int64(rows) * int64(cols)
	if err := budget.Reserve(3 * entries); err != nil {
		return Result{}, fmt.Errorf("fm: affine mode DPM of 3 x %d x %d entries: %w", rows, cols, err)
	}
	defer budget.Release(3 * entries)

	open, ext := int64(gap.Open), int64(gap.Extend)
	H := make([]int64, entries)
	E := make([]int64, entries)
	F := make([]int64, entries)

	// Boundaries: free edges are zero in H and dead in the gap lanes (a
	// restart on the boundary is always at least as good as continuing a
	// free gap, so the gap lanes need no boundary values).
	for j := 1; j < cols; j++ {
		if md.FreeStartB {
			H[j] = 0
		} else {
			H[j] = open + int64(j)*ext
		}
		E[j] = NegInf
		F[j] = NegInf
	}
	for r := 1; r < rows; r++ {
		base := r * cols
		if md.FreeStartA {
			H[base] = 0
		} else {
			H[base] = open + int64(r)*ext
		}
		E[base] = NegInf
		F[base] = NegInf
	}

	stride := stats.PollStride(len(rb))
	for r := 1; r < rows; r++ {
		if r%stride == 0 {
			if err := c.Cancelled(); err != nil {
				return Result{}, err
			}
		}
		base := r * cols
		prev := base - cols
		srow := m.Row(ra[r-1])
		for j := 1; j < cols; j++ {
			e := E[prev+j] + ext
			if v := H[prev+j] + open + ext; v > e {
				e = v
			}
			E[base+j] = e
			f := F[base+j-1] + ext
			if v := H[base+j-1] + open + ext; v > f {
				f = v
			}
			F[base+j] = f
			h := H[prev+j-1] + int64(srow[rb[j-1]])
			if e > h {
				h = e
			}
			if f > h {
				h = f
			}
			H[base+j] = h
		}
	}
	c.AddCells(int64(len(ra)) * int64(len(rb)))

	endR, endC, score := ModeEnd(H, rows, cols, md)

	bld := align.NewBuilder(len(ra) + len(rb))
	for i := len(ra); i > endR; i-- {
		bld.Push(align.Up)
	}
	for j := len(rb); j > endC; j-- {
		bld.Push(align.Left)
	}
	r, cc, _ := TracebackAffine(ra, rb, m, open, ext, H, E, F, bld, endR, endC, StateH, c)
	for ; r > 0; r-- {
		bld.Push(align.Up)
	}
	for ; cc > 0; cc-- {
		bld.Push(align.Left)
	}
	return Result{Score: score, Path: bld.Path()}, nil
}

// AffineModeBoundaries builds the mode-aware affine boundary vectors for a
// linear-space sweep (H lanes; the gap lanes are NegInf at free or global
// boundaries alike, since E is never live on row 0 nor F on column 0).
func AffineModeBoundaries(mlen, nlen int, open, ext int64, md align.Mode) (topH, topE, leftH, leftF []int64) {
	topH = make([]int64, nlen+1)
	topE = make([]int64, nlen+1)
	leftH = make([]int64, mlen+1)
	leftF = make([]int64, mlen+1)
	for j := 1; j <= nlen; j++ {
		if !md.FreeStartB {
			topH[j] = open + int64(j)*ext
		}
	}
	for i := 0; i <= nlen; i++ {
		topE[i] = lastrow.NegInf
	}
	topE[0] = lastrow.NegInf
	for r := 1; r <= mlen; r++ {
		if !md.FreeStartA {
			leftH[r] = open + int64(r)*ext
		}
	}
	for i := 0; i <= mlen; i++ {
		leftF[i] = lastrow.NegInf
	}
	return topH, topE, leftH, leftF
}
