// Package wfa implements the wavefront alignment algorithm (WFA): exact
// global gap-affine alignment in O(ns) time and space, where s is the
// alignment cost in an equivalent unit-penalty model. On high-identity pairs
// s ≪ m, so WFA skips almost all of the mn cells any full DP must fill —
// the backend layer (internal/backend) routes low-divergence pairs here and
// everything else to FastLSA.
//
// WFA minimises edit penalties, while the rest of the repository maximises
// similarity scores. The two are equivalent exactly when the scoring matrix
// is uniform — every diagonal entry scores M, every off-diagonal entry
// scores X, with M > X (DNASimple and DNAStrict qualify; BLOSUM62 and
// DNAIUPAC do not). FromScoring performs the conversion:
//
//	mismatch x = 2(M − X), gap-open o = −2·Open, gap-extend e = M − 2·Extend
//
// and the similarity score is recovered from the optimal penalty E as
// S = (M·(m+n) − E)/2 (the parity always works out; see the derivation in
// docs/BACKENDS.md). Linear gap models are the o = 0 special case of the
// same recurrence.
//
// The kernel stores one wavefront per (penalty, component) as a packed
// []uint32 over a contiguous diagonal range: each cell carries the
// furthest-reaching offset plus a 3-bit backtrace op, so the traceback never
// recomputes a wave. Slices are pooled (sync.Pool), memory is charged
// against the caller's memory.Budget as wavefronts grow, and cancellation is
// polled through stats.Poll like every other kernel in the repository.
package wfa

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"fastlsa/internal/align"
	"fastlsa/internal/fm"
	"fastlsa/internal/memory"
	"fastlsa/internal/obs"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/stats"
)

// MaxLen bounds each input sequence: offsets pack into 29 bits of a uint32
// cell (3 bits carry the backtrace op).
const MaxLen = 1<<29 - 2

// Penalties is the unit-penalty model a WFA run minimises, derived from a
// uniform similarity scoring system by FromScoring. All penalty fields are
// non-negative, with Mismatch and GapExtend strictly positive.
type Penalties struct {
	// Match and MismatchScore are the uniform similarity scores the
	// penalties were derived from (M and X above); Match recovers the
	// similarity score after the run.
	Match, MismatchScore int
	// Mismatch is the penalty of one substitution column: 2(M − X).
	Mismatch int
	// GapOpen is the penalty of opening a gap: −2·Open (0 under a linear
	// gap model).
	GapOpen int
	// GapExtend is the penalty of each gap column: M − 2·Extend.
	GapExtend int
}

// FromScoring derives WFA penalties from a similarity scoring system, or
// reports why the system is not WFA-compatible: the matrix must be uniform
// over the alphabet (one match score M on the diagonal, one mismatch score
// X = everywhere else, M > X) and the gap model valid in the usual sense
// (Extend < 0, Open <= 0).
func FromScoring(m *scoring.Matrix, a *seq.Alphabet, gap scoring.Gap) (Penalties, error) {
	if m == nil || a == nil {
		return Penalties{}, errors.New("wfa: scoring matrix and alphabet are required")
	}
	if err := gap.Validate(); err != nil {
		return Penalties{}, fmt.Errorf("wfa: %w", err)
	}
	letters := a.Letters
	if len(letters) < 2 {
		return Penalties{}, fmt.Errorf("wfa: alphabet %s has fewer than two letters", a.Name)
	}
	match := m.Score(letters[0], letters[0])
	mis, haveMis := 0, false
	for i, x := range letters {
		if s := m.Score(x, x); s != match {
			return Penalties{}, fmt.Errorf("wfa: matrix %s is not uniform: match %c/%c scores %d, %c/%c scores %d",
				m.Name, letters[0], letters[0], match, x, x, s)
		}
		for _, y := range letters[i+1:] {
			s := m.Score(x, y)
			if !haveMis {
				mis, haveMis = s, true
			} else if s != mis {
				return Penalties{}, fmt.Errorf("wfa: matrix %s is not uniform: mismatch scores differ (%d vs %d at %c/%c)",
					m.Name, mis, s, x, y)
			}
		}
	}
	if match <= mis {
		return Penalties{}, fmt.Errorf("wfa: matrix %s scores matches (%d) no better than mismatches (%d)", m.Name, match, mis)
	}
	p := Penalties{
		Match:         match,
		MismatchScore: mis,
		Mismatch:      2 * (match - mis),
		GapOpen:       -2 * gap.Open,
		GapExtend:     match - 2*gap.Extend,
	}
	if p.GapExtend <= 0 {
		return Penalties{}, fmt.Errorf("wfa: match score %d and gap extend %d yield a non-positive gap penalty", match, gap.Extend)
	}
	return p, nil
}

// Compatible reports whether the scoring system admits an exact WFA run.
func Compatible(m *scoring.Matrix, a *seq.Alphabet, gap scoring.Gap) bool {
	_, err := FromScoring(m, a, gap)
	return err == nil
}

// Options carries the optional resource hooks of a WFA run; the zero value
// runs unbudgeted, uncounted and untraced.
type Options struct {
	// Budget bounds wavefront memory (in the repository's 8-byte DP-entry
	// unit; two packed uint32 cells count as one entry). Exceeding it
	// returns an error wrapping memory.ErrExceeded.
	Budget *memory.Budget
	// Counters receives cell counts and serves cancellation polls.
	Counters *stats.Counters
	// Trace records wfa-fill and traceback spans.
	Trace *obs.Trace
	// Recorder, when non-nil, receives flight-recorder phase events
	// mirroring the trace spans. Nil-safe.
	Recorder *obs.Recorder
	// Prof, when non-nil, is the pprof-labelled base context the run's
	// {backend="wfa", phase} CPU-attribution labels merge into.
	Prof context.Context
}

// Backtrace ops, stored in the low 3 bits of a packed cell. The remaining
// bits hold offset+1, so a zero cell means "diagonal not reached".
const (
	opNone    uint32 = iota // initial M[0][0] cell
	opMism                  // M from M[s−x][k] + substitution
	opFromI                 // M closes an insertion: I[s][k]
	opFromD                 // M closes a deletion: D[s][k]
	opInsOpen               // I opens from M[s−o−e][k−1]
	opInsExt                // I extends from I[s−e][k−1]
	opDelOpen               // D opens from M[s−o−e][k+1]
	opDelExt                // D extends from D[s−e][k+1]
)

func pack(offset int, op uint32) uint32 { return uint32(offset+1)<<3 | op }

// wavefront is the furthest-reaching front of one (penalty, component): a
// packed cell per diagonal in [lo, lo+len(cells)).
type wavefront struct {
	lo    int
	cells []uint32
}

// get returns the offset and op stored for diagonal k, or ok=false when the
// diagonal is outside the front or not reached.
func (w *wavefront) get(k int) (offset int, op uint32, ok bool) {
	if w == nil || k < w.lo || k >= w.lo+len(w.cells) {
		return 0, 0, false
	}
	c := w.cells[k-w.lo]
	if c == 0 {
		return 0, 0, false
	}
	return int(c>>3) - 1, c & 7, true
}

// maxPooledCells caps the capacity of slices returned to the pool, so one
// huge run does not pin its peak wavefront width forever.
const maxPooledCells = 1 << 22

var wavefrontPool = sync.Pool{New: func() any { return new(wavefront) }}

type solver struct {
	a, b       []byte
	m, n       int
	pen        Penalties
	mw, iw, dw []*wavefront // per-penalty fronts of the M/I/D components
	budget     *memory.Budget
	reserved   int64
	counters   *stats.Counters
	poll       stats.Poll
}

// Align computes the optimal global alignment of a and b under a uniform
// scoring system, returning the same similarity score and an equally optimal
// path as the full-matrix DP (the path itself may differ between backends;
// both validate and re-score identically).
func Align(a, b *seq.Sequence, mat *scoring.Matrix, gap scoring.Gap, opt Options) (fm.Result, error) {
	if a == nil || b == nil {
		return fm.Result{}, errors.New("wfa: both sequences are required")
	}
	pen, err := FromScoring(mat, a.Alphabet, gap)
	if err != nil {
		return fm.Result{}, err
	}
	ra, rb := a.Residues, b.Residues
	m, n := len(ra), len(rb)
	if m > MaxLen || n > MaxLen {
		return fm.Result{}, fmt.Errorf("wfa: sequence longer than %d residues", MaxLen)
	}
	if m == 0 || n == 0 {
		// One (or both) sequences empty: the alignment is a single gap.
		return fm.Result{Score: int64(gap.Cost(m + n)), Path: gapPath(m, n)}, nil
	}

	path, cost, err := alignFull(ra, rb, pen, opt)
	if err != nil {
		return fm.Result{}, err
	}
	score, err := pen.Score(m, n, int64(cost))
	if err != nil {
		return fm.Result{}, err
	}
	return fm.Result{Score: score, Path: path}, nil
}

// gapPath is the all-gap path of an alignment with one empty side: every
// column of b, then every row of a.
func gapPath(m, n int) align.Path {
	moves := make([]align.Move, 0, m+n)
	for i := 0; i < n; i++ {
		moves = append(moves, align.Left)
	}
	for i := 0; i < m; i++ {
		moves = append(moves, align.Up)
	}
	return align.NewPath(moves)
}

// Score recovers the similarity score of an alignment whose optimal penalty
// is cost: S = (M·(m+n) − cost)/2. The parity always works out for paths of
// the converted penalty model; an odd sum means the caller mixed models.
func (p Penalties) Score(m, n int, cost int64) (int64, error) {
	total := int64(p.Match)*int64(m+n) - cost
	if total%2 != 0 {
		return 0, fmt.Errorf("wfa: internal error: odd score sum %d", total)
	}
	return total / 2, nil
}

// penaltyBound is the terminating upper bound of a penalty search: mismatch
// along the whole shorter sequence plus one gap for the length difference.
// Computed in int64 so pathological penalty × length products near MaxLen
// cannot wrap a 32-bit int; bounds past the platform int range are rejected
// (such a search could never be iterated anyway).
func penaltyBound(m, n int, pen Penalties) (int, error) {
	diff := int64(m) - int64(n)
	if diff < 0 {
		diff = -diff
	}
	minLen := int64(m)
	if int64(n) < minLen {
		minLen = int64(n)
	}
	bound := int64(pen.Mismatch) * minLen
	if diff > 0 {
		bound += int64(pen.GapOpen) + int64(pen.GapExtend)*diff
	}
	if bound > int64(math.MaxInt)-1 {
		return 0, fmt.Errorf("wfa: penalty bound %d overflows the platform int", bound)
	}
	return int(bound), nil
}

// alignFull runs the full-history unidirectional kernel over raw residue
// slices (both non-empty), returning the backtraced path and the optimal
// penalty. This is the memory-hungry engine — every per-penalty wavefront is
// retained for backtrace — so BiAlign only invokes it on small subproblems.
func alignFull(ra, rb []byte, pen Penalties, opt Options) (align.Path, int, error) {
	m, n := len(ra), len(rb)
	s := &solver{
		a: ra, b: rb, m: m, n: n, pen: pen,
		budget: opt.Budget, counters: opt.Counters, poll: opt.Counters.StartPoll(),
	}
	defer s.release()

	// The loop must terminate below the bound; running past it means the
	// recurrence is broken.
	bound, err := penaltyBound(m, n, pen)
	if err != nil {
		return align.Path{}, 0, err
	}

	fillStart := opt.Trace.Begin()
	fillProf := obs.ProfPhaseBegin(opt.Prof, "wfa", obs.SpanWFAFill)
	fillT0 := phaseStart(opt)
	kFin := n - m
	cost := -1
	for sc := 0; sc <= bound; sc++ {
		if err := s.compute(sc); err != nil {
			fillProf.End()
			return align.Path{}, 0, err
		}
		if off, _, ok := s.mw[sc].get(kFin); ok && off >= n {
			cost = sc
			break
		}
	}
	fillProf.End()
	phaseEvent(opt, obs.SpanWFAFill, fillT0)
	opt.Trace.End(obs.SpanWFAFill, obs.CatWFA, fillStart, obs.Tags{Rows: m, Cols: n})
	if cost < 0 {
		return align.Path{}, 0, fmt.Errorf("wfa: internal error: no alignment within penalty bound %d", bound)
	}

	tbStart := opt.Trace.Begin()
	tbProf := obs.ProfPhaseBegin(opt.Prof, "wfa", obs.SpanTraceback)
	tbT0 := phaseStart(opt)
	path, err := s.backtrace(cost)
	tbProf.End()
	if err != nil {
		return align.Path{}, 0, err
	}
	phaseEvent(opt, obs.SpanTraceback, tbT0)
	opt.Trace.End(obs.SpanTraceback, obs.CatWFA, tbStart, obs.Tags{Rows: m, Cols: n})
	return path, cost, nil
}

// phaseStart stamps a flight-recorder phase start (zero when no recorder is
// attached, so the disabled path never reads the clock).
func phaseStart(opt Options) time.Time {
	if opt.Recorder == nil {
		return time.Time{}
	}
	return time.Now()
}

// phaseEvent logs one completed phase span into the run's flight recorder.
func phaseEvent(opt Options, name string, start time.Time) {
	if start.IsZero() {
		return
	}
	opt.Recorder.Add(obs.Event{
		Kind: obs.EvPhase, Detail: name, Extra: obs.CatWFA,
		Duration: time.Since(start),
	})
}

// valid reports whether offset h on diagonal k is inside the DP matrix
// (h columns of b and h−k rows of a consumed).
func (s *solver) valid(h, k int) bool {
	v := h - k
	return h >= 0 && h <= s.n && v >= 0 && v <= s.m
}

// extend advances offset h along diagonal k while residues match.
func (s *solver) extend(h, k int) int {
	v := h - k
	for h < s.n && v < s.m && s.a[v] == s.b[h] {
		h++
		v++
	}
	return h
}

// newWavefront reserves and returns a zeroed front over diagonals [lo, hi].
func (s *solver) newWavefront(lo, hi int) (*wavefront, error) {
	width := hi - lo + 1
	charge := int64(width+1) / 2 // two uint32 cells per 8-byte budget entry
	if err := s.budget.Reserve(charge); err != nil {
		return nil, err
	}
	s.reserved += charge
	w := wavefrontPool.Get().(*wavefront)
	w.lo = lo
	if cap(w.cells) < width {
		w.cells = make([]uint32, width)
	} else {
		w.cells = w.cells[:width]
		clear(w.cells)
	}
	return w, nil
}

func (s *solver) release() {
	for _, fronts := range [][]*wavefront{s.mw, s.iw, s.dw} {
		for _, w := range fronts {
			if w == nil {
				continue
			}
			if cap(w.cells) > maxPooledCells {
				w.cells = nil
			}
			wavefrontPool.Put(w)
		}
	}
	s.mw, s.iw, s.dw = nil, nil, nil
	s.budget.Release(s.reserved)
	s.reserved = 0
}

// bounds returns the union diagonal range of the given fronts.
func bounds(fronts ...*wavefront) (lo, hi int, any bool) {
	for _, w := range fronts {
		if w == nil || len(w.cells) == 0 {
			continue
		}
		wlo, whi := w.lo, w.lo+len(w.cells)-1
		if !any {
			lo, hi, any = wlo, whi, true
			continue
		}
		if wlo < lo {
			lo = wlo
		}
		if whi > hi {
			hi = whi
		}
	}
	return lo, hi, any
}

// compute fills the penalty-sc wavefronts of all three components from the
// earlier fronts the recurrence references.
func (s *solver) compute(sc int) error {
	p := s.pen
	if sc == 0 {
		w, err := s.newWavefront(0, 0)
		if err != nil {
			return err
		}
		w.cells[0] = pack(s.extend(0, 0), opNone)
		s.mw = append(s.mw, w)
		s.iw = append(s.iw, nil)
		s.dw = append(s.dw, nil)
		return nil
	}

	var mx, mo, ie, de *wavefront
	if sc >= p.Mismatch {
		mx = s.mw[sc-p.Mismatch]
	}
	if sc >= p.GapOpen+p.GapExtend {
		mo = s.mw[sc-p.GapOpen-p.GapExtend]
	}
	if sc >= p.GapExtend {
		ie = s.iw[sc-p.GapExtend]
		de = s.dw[sc-p.GapExtend]
	}
	lo, hi, any := bounds(mx, mo, ie, de)
	if !any {
		s.mw = append(s.mw, nil)
		s.iw = append(s.iw, nil)
		s.dw = append(s.dw, nil)
		return nil
	}
	lo--
	hi++
	if lo < -s.m {
		lo = -s.m
	}
	if hi > s.n {
		hi = s.n
	}
	wi, err := s.newWavefront(lo, hi)
	if err != nil {
		return err
	}
	wd, err := s.newWavefront(lo, hi)
	if err != nil {
		return err
	}
	wm, err := s.newWavefront(lo, hi)
	if err != nil {
		return err
	}
	for k := lo; k <= hi; k++ {
		// I: one more column of b (offset and diagonal both advance).
		bi, oi := -1, opNone
		if off, _, ok := mo.get(k - 1); ok && s.valid(off+1, k) {
			bi, oi = off+1, opInsOpen
		}
		if off, _, ok := ie.get(k - 1); ok && off+1 > bi && s.valid(off+1, k) {
			bi, oi = off+1, opInsExt
		}
		if bi >= 0 {
			wi.cells[k-lo] = pack(bi, oi)
		}
		// D: one more row of a (offset fixed, diagonal falls).
		bd, od := -1, opNone
		if off, _, ok := mo.get(k + 1); ok && s.valid(off, k) {
			bd, od = off, opDelOpen
		}
		if off, _, ok := de.get(k + 1); ok && off > bd && s.valid(off, k) {
			bd, od = off, opDelExt
		}
		if bd >= 0 {
			wd.cells[k-lo] = pack(bd, od)
		}
		// M: substitution or gap close, then greedy diagonal extension.
		// The preference order mism ≥ deletion ≥ insertion echoes the DP
		// kernels' diag > up > left tie-break.
		bm, om := -1, opNone
		if off, _, ok := mx.get(k); ok && s.valid(off+1, k) {
			bm, om = off+1, opMism
		}
		if off, _, ok := wd.get(k); ok && off > bm {
			bm, om = off, opFromD
		}
		if off, _, ok := wi.get(k); ok && off > bm {
			bm, om = off, opFromI
		}
		if bm >= 0 {
			wm.cells[k-lo] = pack(s.extend(bm, k), om)
		}
	}
	s.iw = append(s.iw, wi)
	s.dw = append(s.dw, wd)
	s.mw = append(s.mw, wm)
	cells := 3 * (hi - lo + 1)
	s.counters.AddCells(int64(cells))
	return s.poll.Tick(cells)
}

// Backtrace components.
const (
	compM = iota
	compI
	compD
)

var errBacktrace = errors.New("wfa: internal error: broken backtrace chain")

// backtrace walks the stored ops backwards from the terminal M cell,
// emitting moves into an align.Builder (which reverses once at the end).
// Cancellation is polled on the stats.Poll cadence throughout the walk —
// the walk is O(m+n+s) long, so a cancelled job must not stay live for all
// of it the way it would if only the terminal branch checked.
func (s *solver) backtrace(cost int) (align.Path, error) {
	p := s.pen
	bld := align.NewBuilder(s.m + s.n)
	comp := compM
	sc, k := cost, s.n-s.m
	h, _, ok := s.mw[sc].get(k)
	if !ok {
		return align.Path{}, errBacktrace
	}
	for steps := int64(0); ; steps++ {
		if steps > 2*(int64(s.m)+int64(s.n))+int64(cost) {
			return align.Path{}, errBacktrace
		}
		if err := s.poll.Tick(1); err != nil {
			return align.Path{}, err
		}
		switch comp {
		case compM:
			_, op, ok := s.mw[sc].get(k)
			if !ok {
				return align.Path{}, errBacktrace
			}
			if op == opNone {
				if sc != 0 || k != 0 {
					return align.Path{}, errBacktrace
				}
				if err := s.poll.Tick(h); err != nil {
					return align.Path{}, err
				}
				for ; h > 0; h-- {
					bld.Push(align.Diag)
				}
				s.counters.AddTraceback(int64(bld.Len()))
				return bld.Path(), nil
			}
			// Rewind the greedy match extension down to the pre-extension
			// base offset of the stored op.
			var base int
			switch op {
			case opMism:
				off, _, ok := s.mw[sc-p.Mismatch].get(k)
				if !ok {
					return align.Path{}, errBacktrace
				}
				base = off + 1
			case opFromI:
				off, _, ok := s.iw[sc].get(k)
				if !ok {
					return align.Path{}, errBacktrace
				}
				base = off
			case opFromD:
				off, _, ok := s.dw[sc].get(k)
				if !ok {
					return align.Path{}, errBacktrace
				}
				base = off
			default:
				return align.Path{}, errBacktrace
			}
			if err := s.poll.Tick(h - base); err != nil {
				return align.Path{}, err
			}
			for t := h - base; t > 0; t-- {
				bld.Push(align.Diag)
			}
			h = base
			switch op {
			case opMism:
				bld.Push(align.Diag) // the substitution column
				sc -= p.Mismatch
				h--
			case opFromI:
				comp = compI
			case opFromD:
				comp = compD
			}
		case compI:
			_, op, ok := s.iw[sc].get(k)
			if !ok {
				return align.Path{}, errBacktrace
			}
			bld.Push(align.Left)
			h--
			k--
			switch op {
			case opInsOpen:
				sc -= p.GapOpen + p.GapExtend
				comp = compM
			case opInsExt:
				sc -= p.GapExtend
			default:
				return align.Path{}, errBacktrace
			}
		case compD:
			_, op, ok := s.dw[sc].get(k)
			if !ok {
				return align.Path{}, errBacktrace
			}
			bld.Push(align.Up)
			k++
			switch op {
			case opDelOpen:
				sc -= p.GapOpen + p.GapExtend
				comp = compM
			case opDelExt:
				sc -= p.GapExtend
			default:
				return align.Path{}, errBacktrace
			}
		}
	}
}
