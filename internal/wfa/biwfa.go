// Bidirectional WFA (BiWFA): the linear-space mode of the wavefront kernel.
//
// The unidirectional solver in wfa.go retains every per-penalty wavefront so
// the backtrace can walk stored ops — O(s²) cells for an optimal penalty s.
// BiAlign instead works meet-in-the-middle, Hirschberg-style:
//
//  1. A score-only pass runs the same wavefront recurrence but keeps just a
//     bounded window of recent fronts (the recurrence looks back at most
//     max(Mismatch, GapOpen+GapExtend) penalties), yielding the optimal
//     penalty S in O(s) memory.
//  2. A split pass runs forward fronts from (0,0) up to penalty P = S/2 and
//     reverse fronts (the same kernel over the reversed residues) up to
//     S−P+window, each recording the pre-extension base offset of its M
//     cells. A cell covered by the forward M stretch [base, offset] at
//     penalty sf has a concrete prefix alignment of cost exactly sf ending
//     in the match state; a cell covered by the reverse M stretch at
//     sr = S−sf has a concrete suffix of cost exactly sr starting in the
//     match state. Where the two stretches intersect, prefix + suffix is a
//     full alignment of cost sf+sr = S — optimal — so both halves are
//     optimal for their subproblems and the recursion is exact.
//  3. Recurse on the two halves with their (now known) optimal penalties,
//     down to a small-penalty cutoff served by the unidirectional kernel,
//     appending moves left-to-right into one shared slice.
//
// Splitting inside a gap run is the classic BiWFA wrinkle: an I–I (or D–D)
// overlap stitches only with a gap-open correction (the two halves each pay
// the open the merged run pays once), and the resulting halves need
// boundary-state-constrained subproblems our kernels do not model. We keep
// the invariant simple instead: only match-state overlaps split, and when no
// M–M overlap lands inside the retained window (the optimum straddles a long
// gap there), the subproblem falls back to hirschberg.Align — also exact and
// linear-space, just without the wavefront speedup — so correctness never
// depends on the overlap existing. See docs/BACKENDS.md.

package wfa

import (
	"fmt"
	"sync"

	"fastlsa/internal/align"
	"fastlsa/internal/fm"
	"fastlsa/internal/hirschberg"
	"fastlsa/internal/obs"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/stats"
)

// biFront is one windowed wavefront of a bidirectional pass: offset+1 per
// diagonal (zero means unreached — no backtrace ops are kept, the
// bidirectional mode never backtraces), plus the pre-extension base offsets
// on M fronts of split passes.
type biFront struct {
	lo     int
	cells  []uint32
	base   []uint32
	charge int64
}

// get returns the offset stored for diagonal k, or ok=false when the
// diagonal is outside the front or not reached.
func (f *biFront) get(k int) (offset int, ok bool) {
	if f == nil || k < f.lo || k >= f.lo+len(f.cells) {
		return 0, false
	}
	c := f.cells[k-f.lo]
	if c == 0 {
		return 0, false
	}
	return int(c) - 1, true
}

// getBase returns the pre-extension base offset for diagonal k.
func (f *biFront) getBase(k int) (offset int, ok bool) {
	if f == nil || f.base == nil || k < f.lo || k >= f.lo+len(f.base) {
		return 0, false
	}
	c := f.base[k-f.lo]
	if c == 0 {
		return 0, false
	}
	return int(c) - 1, true
}

var biFrontPool = sync.Pool{New: func() any { return new(biFront) }}

// maxLookback is the deepest penalty the wavefront recurrence references
// when computing one front: sc−Mismatch for substitutions and
// sc−(GapOpen+GapExtend) for gap opens (extends look back only GapExtend,
// which never exceeds the open distance... unless GapOpen is 0, in which
// case they coincide).
func maxLookback(pen Penalties) int {
	l := pen.Mismatch
	if oe := pen.GapOpen + pen.GapExtend; oe > l {
		l = oe
	}
	return l
}

// biSolver runs the wavefront recurrence keeping only the window of fronts
// the recurrence itself looks back at: maxLookback+1 M fronts and
// GapExtend+1 I/D fronts, in per-penalty ring buffers. Older fronts are
// evicted (and their budget charge released) as new ones are computed, so
// the live charge is O(s) instead of the unidirectional solver's O(s²)
// retained history.
type biSolver struct {
	a, b       []byte
	m, n       int
	pen        Penalties
	mKeep      int // M ring length: max recurrence lookback, plus one
	idKeep     int // I/D ring length: the extend lookback, plus one
	mw, iw, dw []*biFront
	recordBase bool
	opt        Options
	reserved   int64
	poll       stats.Poll
}

func newBiSolver(a, b []byte, pen Penalties, opt Options, recordBase bool) *biSolver {
	mKeep := maxLookback(pen) + 1
	idKeep := pen.GapExtend + 1
	return &biSolver{
		a: a, b: b, m: len(a), n: len(b), pen: pen,
		mKeep: mKeep, idKeep: idKeep,
		mw:         make([]*biFront, mKeep),
		iw:         make([]*biFront, idKeep),
		dw:         make([]*biFront, idKeep),
		recordBase: recordBase,
		opt:        opt,
		poll:       opt.Counters.StartPoll(),
	}
}

func (s *biSolver) valid(h, k int) bool {
	v := h - k
	return h >= 0 && h <= s.n && v >= 0 && v <= s.m
}

func (s *biSolver) extend(h, k int) int {
	v := h - k
	for h < s.n && v < s.m && s.a[v] == s.b[h] {
		h++
		v++
	}
	return h
}

// newFront reserves and returns a zeroed windowed front over [lo, hi].
func (s *biSolver) newFront(lo, hi int, withBase bool) (*biFront, error) {
	width := hi - lo + 1
	charge := (int64(width) + 1) / 2 // two uint32 cells per 8-byte entry
	if withBase {
		charge *= 2
	}
	if err := s.opt.Budget.Reserve(charge); err != nil {
		return nil, err
	}
	s.reserved += charge
	f := biFrontPool.Get().(*biFront)
	f.lo = lo
	f.charge = charge
	if cap(f.cells) < width {
		f.cells = make([]uint32, width)
	} else {
		f.cells = f.cells[:width]
		clear(f.cells)
	}
	if !withBase {
		f.base = nil
	} else if cap(f.base) < width {
		f.base = make([]uint32, width)
	} else {
		f.base = f.base[:width]
		clear(f.base)
	}
	return f, nil
}

// freeFront returns a front to the pool and releases its budget charge.
func (s *biSolver) freeFront(f *biFront) {
	if f == nil {
		return
	}
	s.opt.Budget.Release(f.charge)
	s.reserved -= f.charge
	if cap(f.cells) > maxPooledCells {
		f.cells, f.base = nil, nil
	}
	biFrontPool.Put(f)
}

// dropID releases the I and D rings early: once a direction has finished
// stepping, only its M fronts (and their bases) feed the overlap scan.
func (s *biSolver) dropID() {
	for i := range s.iw {
		s.freeFront(s.iw[i])
		s.iw[i] = nil
	}
	for i := range s.dw {
		s.freeFront(s.dw[i])
		s.dw[i] = nil
	}
}

func (s *biSolver) release() {
	for _, ring := range [][]*biFront{s.mw, s.iw, s.dw} {
		for i := range ring {
			s.freeFront(ring[i])
			ring[i] = nil
		}
	}
}

// mfront returns the retained M front of penalty sc. The caller must only
// ask for penalties inside the ring window — an out-of-window sc would alias
// a newer front's slot.
func (s *biSolver) mfront(sc int) *biFront {
	if sc < 0 {
		return nil
	}
	return s.mw[sc%s.mKeep]
}

// biBounds returns the union diagonal range of the given fronts.
func biBounds(fronts ...*biFront) (lo, hi int, any bool) {
	for _, f := range fronts {
		if f == nil || len(f.cells) == 0 {
			continue
		}
		flo, fhi := f.lo, f.lo+len(f.cells)-1
		if !any {
			lo, hi, any = flo, fhi, true
			continue
		}
		if flo < lo {
			lo = flo
		}
		if fhi > hi {
			hi = fhi
		}
	}
	return lo, hi, any
}

// step computes the penalty-sc fronts of all three components, evicting the
// fronts that fall out of the lookback window. Penalties must be stepped
// sequentially from 0.
func (s *biSolver) step(sc int) error {
	p := s.pen
	mi, ii := sc%s.mKeep, sc%s.idKeep
	s.freeFront(s.mw[mi])
	s.mw[mi] = nil
	s.freeFront(s.iw[ii])
	s.iw[ii] = nil
	s.freeFront(s.dw[ii])
	s.dw[ii] = nil
	if sc == 0 {
		f, err := s.newFront(0, 0, s.recordBase)
		if err != nil {
			return err
		}
		f.cells[0] = uint32(s.extend(0, 0)) + 1
		if s.recordBase {
			f.base[0] = 1
		}
		s.mw[0] = f
		s.opt.Counters.AddCells(1)
		return s.poll.Tick(1)
	}

	var mx, mo, ie, de *biFront
	if sc >= p.Mismatch {
		mx = s.mw[(sc-p.Mismatch)%s.mKeep]
	}
	if sc >= p.GapOpen+p.GapExtend {
		mo = s.mw[(sc-p.GapOpen-p.GapExtend)%s.mKeep]
	}
	if sc >= p.GapExtend {
		ie = s.iw[(sc-p.GapExtend)%s.idKeep]
		de = s.dw[(sc-p.GapExtend)%s.idKeep]
	}
	lo, hi, any := biBounds(mx, mo, ie, de)
	if !any {
		return nil
	}
	lo--
	hi++
	if lo < -s.m {
		lo = -s.m
	}
	if hi > s.n {
		hi = s.n
	}
	wi, err := s.newFront(lo, hi, false)
	if err != nil {
		return err
	}
	wd, err := s.newFront(lo, hi, false)
	if err != nil {
		s.freeFront(wi)
		return err
	}
	wm, err := s.newFront(lo, hi, s.recordBase)
	if err != nil {
		s.freeFront(wi)
		s.freeFront(wd)
		return err
	}
	for k := lo; k <= hi; k++ {
		// Same recurrence and tie-breaks as solver.compute, minus the ops.
		bi := -1
		if off, ok := mo.get(k - 1); ok && s.valid(off+1, k) {
			bi = off + 1
		}
		if off, ok := ie.get(k - 1); ok && off+1 > bi && s.valid(off+1, k) {
			bi = off + 1
		}
		if bi >= 0 {
			wi.cells[k-lo] = uint32(bi) + 1
		}
		bd := -1
		if off, ok := mo.get(k + 1); ok && s.valid(off, k) {
			bd = off
		}
		if off, ok := de.get(k + 1); ok && off > bd && s.valid(off, k) {
			bd = off
		}
		if bd >= 0 {
			wd.cells[k-lo] = uint32(bd) + 1
		}
		bm := -1
		if off, ok := mx.get(k); ok && s.valid(off+1, k) {
			bm = off + 1
		}
		if bd > bm {
			bm = bd
		}
		if bi > bm {
			bm = bi
		}
		if bm >= 0 {
			wm.cells[k-lo] = uint32(s.extend(bm, k)) + 1
			if s.recordBase {
				wm.base[k-lo] = uint32(bm) + 1
			}
		}
	}
	s.iw[ii] = wi
	s.dw[ii] = wd
	s.mw[mi] = wm
	cells := 3 * (hi - lo + 1)
	s.opt.Counters.AddCells(int64(cells))
	return s.poll.Tick(cells)
}

// biScore runs the windowed score-only pass, returning the optimal penalty.
func biScore(ra, rb []byte, pen Penalties, opt Options) (int, error) {
	s := newBiSolver(ra, rb, pen, opt, false)
	defer s.release()
	bound, err := penaltyBound(len(ra), len(rb), pen)
	if err != nil {
		return 0, err
	}
	kFin := len(rb) - len(ra)
	for sc := 0; sc <= bound; sc++ {
		if err := s.step(sc); err != nil {
			return 0, err
		}
		if off, ok := s.mfront(sc).get(kFin); ok && off >= len(rb) {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("wfa: internal error: no alignment within penalty bound %d", bound)
}

// biCutoff is the penalty below which a subproblem runs on the
// unidirectional kernel: its retained history at a penalty this small is a
// few hundred cells, cheaper than two more windowed passes. It is also the
// floor that keeps the split sound — S > 2·(maxLookback+1) guarantees the
// forward pass stops strictly past the retained window (sf ≥ 1) and the
// reverse pass strictly short of S.
func biCutoff(pen Penalties) int {
	c := 2 * (maxLookback(pen) + 1)
	if c < 48 {
		c = 48
	}
	return c
}

var errBiSplit = fmt.Errorf("wfa: internal error: bidirectional split penalty mismatch")

// biSplit is one provably-optimal split cell: the optimal alignment passes
// through (v, h) in match state with a prefix of penalty exactly sf.
type biSplit struct {
	sf, v, h int
	ok       bool
}

// findSplit runs the forward pass to P = S/2 and the reverse pass to
// S−P+window−1, then scans the retained M fronts for an overlap: a cell
// inside the forward M stretch [base, offset] at penalty sf and inside the
// reverse M stretch at penalty S−sf. Such a cell carries concrete prefix and
// suffix alignments of cost exactly sf and S−sf; their sum equals the
// optimum, so both halves are optimal and splitting there is exact. Not
// finding one (the optimum straddles a gap run longer than the window right
// at P) returns ok=false and the caller falls back.
func findSplit(fwd, rev *biSolver, S int) (biSplit, error) {
	P := S / 2
	for sc := 0; sc <= P; sc++ {
		if err := fwd.step(sc); err != nil {
			return biSplit{}, err
		}
	}
	fwd.dropID() // the scan only reads M fronts
	revTo := S - P + fwd.mKeep - 1
	for sc := 0; sc <= revTo; sc++ {
		if err := rev.step(sc); err != nil {
			return biSplit{}, err
		}
	}
	rev.dropID()
	m, n := fwd.m, fwd.n
	for sf := P; sf > P-fwd.mKeep && sf > 0; sf-- {
		fmf, rmf := fwd.mfront(sf), rev.mfront(S-sf)
		if fmf == nil || rmf == nil {
			continue
		}
		for i, c := range fmf.cells {
			if c == 0 {
				continue
			}
			k := fmf.lo + i
			offF := int(c) - 1
			baseF := int(fmf.base[i]) - 1
			// The reverse problem aligns the reversed residues: its cell
			// (vr, hr) is our cell (m−vr, n−hr), so its diagonal kr maps to
			// k = (n−m)−kr and its offsets map through h = n−hr.
			offR, ok := rmf.get((n - m) - k)
			if !ok {
				continue
			}
			baseR, ok := rmf.getBase((n - m) - k)
			if !ok {
				continue
			}
			lo, hi := n-offR, n-baseR
			if baseF > lo {
				lo = baseF
			}
			if offF < hi {
				hi = offF
			}
			for h := lo; h <= hi; h++ {
				// The corners cannot split anything; skip them (a corner
				// overlap would imply a full alignment cheaper than S).
				if v := h - k; (v != 0 || h != 0) && (v != m || h != n) {
					return biSplit{sf: sf, v: v, h: h, ok: true}, nil
				}
			}
		}
	}
	return biSplit{}, nil
}

// biRunner carries the shared state of one bidirectional recursion: the
// scoring system (for the hirschberg fallback), the resource hooks, and the
// move slice the subproblems append to left-to-right.
type biRunner struct {
	pen       Penalties
	mat       *scoring.Matrix
	gap       scoring.Gap
	alphabet  *seq.Alphabet
	opt       Options
	moves     []align.Move
	fallbacks int
}

// solve aligns a against b given their optimal penalty S, appending the
// path. ar and br are the reversed residues of a and b (reversed once at the
// top; subproblems slice them: the reverse of a[:v] is ar[len(a)-v:]).
func (r *biRunner) solve(a, ar, b, br []byte, S int) error {
	m, n := len(a), len(b)
	if m == 0 || n == 0 {
		want := 0
		if m+n > 0 {
			want = r.pen.GapOpen + r.pen.GapExtend*(m+n)
		}
		if S != want {
			return errBiSplit
		}
		for i := 0; i < n; i++ {
			r.moves = append(r.moves, align.Left)
		}
		for i := 0; i < m; i++ {
			r.moves = append(r.moves, align.Up)
		}
		return nil
	}
	if S <= biCutoff(r.pen) {
		// Trace and Recorder are deliberately not threaded: the many base-case
		// sub-alignments would swamp both; the whole BiAlign run is one span /
		// phase event at the top. Prof is threaded so the sub-runs' labels nest
		// under (and restore to) the wfa-biwfa labels.
		path, cost, err := alignFull(a, b, r.pen, Options{Budget: r.opt.Budget, Counters: r.opt.Counters, Prof: r.opt.Prof})
		if err != nil {
			return err
		}
		if cost != S {
			return errBiSplit
		}
		r.moves = append(r.moves, path.Moves()...)
		return nil
	}

	fwd := newBiSolver(a, b, r.pen, r.opt, true)
	rev := newBiSolver(ar, br, r.pen, r.opt, true)
	sp, err := findSplit(fwd, rev, S)
	fwd.release()
	rev.release()
	if err != nil {
		return err
	}
	if !sp.ok {
		return r.fallback(a, b, S)
	}
	if err := r.solve(a[:sp.v], ar[m-sp.v:], b[:sp.h], br[n-sp.h:], sp.sf); err != nil {
		return err
	}
	return r.solve(a[sp.v:], ar[:m-sp.v], b[sp.h:], br[:n-sp.h], S-sp.sf)
}

// fallback aligns a subproblem whose optimum has no match-state overlap in
// the retained window with hirschberg.Align — exact and linear-space — and
// cross-checks its score against the penalty the split derivation promised.
func (r *biRunner) fallback(a, b []byte, S int) error {
	r.fallbacks++
	sa := &seq.Sequence{ID: "biwfa-a", Residues: a, Alphabet: r.alphabet}
	sb := &seq.Sequence{ID: "biwfa-b", Residues: b, Alphabet: r.alphabet}
	res, err := hirschberg.Align(sa, sb, r.mat, r.gap, hirschberg.Options{}, r.opt.Counters)
	if err != nil {
		return err
	}
	want, err := r.pen.Score(len(a), len(b), int64(S))
	if err != nil {
		return err
	}
	if res.Score != want {
		return errBiSplit
	}
	r.moves = append(r.moves, res.Path.Moves()...)
	return nil
}

// BiAlign computes the optimal global alignment of a and b under a uniform
// scoring system in O(s) memory, where s is the optimal penalty: the
// bidirectional (meet-in-the-middle) mode of the WFA kernel. Scores equal
// Align's exactly; paths validate and re-score identically. This is what the
// wfa backend serves — Align remains the reference kernel for small
// subproblems and differential tests.
func BiAlign(a, b *seq.Sequence, mat *scoring.Matrix, gap scoring.Gap, opt Options) (fm.Result, error) {
	if a == nil || b == nil {
		return fm.Result{}, fmt.Errorf("wfa: both sequences are required")
	}
	pen, err := FromScoring(mat, a.Alphabet, gap)
	if err != nil {
		return fm.Result{}, err
	}
	ra, rb := a.Residues, b.Residues
	m, n := len(ra), len(rb)
	if m > MaxLen || n > MaxLen {
		return fm.Result{}, fmt.Errorf("wfa: sequence longer than %d residues", MaxLen)
	}
	if m == 0 || n == 0 {
		return fm.Result{Score: int64(gap.Cost(m + n)), Path: gapPath(m, n)}, nil
	}

	start := opt.Trace.Begin()
	ps := obs.ProfPhaseBegin(opt.Prof, "wfa", obs.SpanWFABi)
	defer ps.End()
	t0 := phaseStart(opt)
	S, err := biScore(ra, rb, pen, opt)
	if err != nil {
		return fm.Result{}, err
	}
	// The reversed copies are O(m+n) input scratch, uncharged like the
	// linear-space kernels' row buffers; subproblems slice them.
	inner := opt
	inner.Prof = ps.Context(opt.Prof)
	r := &biRunner{
		pen: pen, mat: mat, gap: gap, alphabet: a.Alphabet, opt: inner,
		moves: make([]align.Move, 0, m+n),
	}
	if err := r.solve(ra, reversed(ra), rb, reversed(rb), S); err != nil {
		return fm.Result{}, err
	}
	phaseEvent(opt, obs.SpanWFABi, t0)
	opt.Trace.End(obs.SpanWFABi, obs.CatWFA, start, obs.Tags{Rows: m, Cols: n})
	score, err := pen.Score(m, n, int64(S))
	if err != nil {
		return fm.Result{}, err
	}
	return fm.Result{Score: score, Path: align.NewPath(r.moves)}, nil
}

func reversed(s []byte) []byte {
	r := make([]byte, len(s))
	for i, c := range s {
		r[len(s)-1-i] = c
	}
	return r
}
