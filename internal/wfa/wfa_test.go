package wfa_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"fastlsa/internal/align"
	"fastlsa/internal/hirschberg"
	"fastlsa/internal/memory"
	"fastlsa/internal/obs"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/stats"
	"fastlsa/internal/wfa"
)

// model builds a mutation model with the given substitution rate and an
// indel rate one tenth of it on each side.
func model(d float64) seq.MutationModel {
	return seq.MutationModel{
		SubstitutionRate: d,
		InsertionRate:    d / 10,
		DeletionRate:     d / 10,
		MaxIndelRun:      4,
		IndelExtend:      0.5,
	}
}

// TestAlignDifferential is the WFA-vs-kernel-layer property suite: across
// divergence levels, scoring systems and seeds, the WFA score must equal the
// Hirschberg (kernel-layer) score, and the WFA path must be a valid
// (0,0)→(m,n) walk that re-scores to exactly the reported score.
func TestAlignDifferential(t *testing.T) {
	systems := []struct {
		name   string
		matrix *scoring.Matrix
		gap    scoring.Gap
	}{
		{"dna-linear", scoring.DNASimple, scoring.Linear(-4)},
		{"dna-affine", scoring.DNASimple, scoring.Affine(-6, -2)},
		{"strict-linear", scoring.DNAStrict, scoring.Linear(-1)},
	}
	divergences := []float64{0, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5}
	for _, sys := range systems {
		for _, d := range divergences {
			t.Run(fmt.Sprintf("%s/div=%.2f", sys.name, d), func(t *testing.T) {
				t.Parallel()
				for seed := int64(1); seed <= 4; seed++ {
					a, b, err := seq.HomologousPair(220, seq.DNA, model(d), seed)
					if err != nil {
						t.Fatal(err)
					}
					var c stats.Counters
					res, err := wfa.Align(a, b, sys.matrix, sys.gap, wfa.Options{Counters: &c})
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					want, err := hirschberg.Score(a, b, sys.matrix, sys.gap, nil)
					if err != nil {
						t.Fatal(err)
					}
					if res.Score != want {
						t.Fatalf("seed %d: wfa score %d, hirschberg %d", seed, res.Score, want)
					}
					if err := res.Path.Validate(a.Len(), b.Len()); err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if got := align.ScorePath(a, b, res.Path, sys.matrix, sys.gap); got != res.Score {
						t.Fatalf("seed %d: path re-scores to %d, reported %d", seed, got, res.Score)
					}
					if c.Cells.Load() == 0 && d > 0 {
						t.Fatalf("seed %d: no cells counted", seed)
					}
				}
			})
		}
	}
}

// TestAlignLengthSkew covers strongly unequal lengths, where the terminal
// diagonal sits far from the origin and gaps dominate.
func TestAlignLengthSkew(t *testing.T) {
	gap := scoring.Linear(-4)
	for _, tc := range [][2]string{
		{"ACGT", "ACGTACGTACGTACGT"},
		{"ACGTACGTACGTACGT", "ACG"},
		{"A", "TTTT"},
		{"ACACACAC", "ACAC"},
	} {
		a := mustSeq(t, "a", tc[0])
		b := mustSeq(t, "b", tc[1])
		res, err := wfa.Align(a, b, scoring.DNASimple, gap, wfa.Options{})
		if err != nil {
			t.Fatalf("%q vs %q: %v", tc[0], tc[1], err)
		}
		want, err := hirschberg.Score(a, b, scoring.DNASimple, gap, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Score != want {
			t.Fatalf("%q vs %q: score %d, want %d", tc[0], tc[1], res.Score, want)
		}
		if err := res.Path.Validate(a.Len(), b.Len()); err != nil {
			t.Fatal(err)
		}
		if got := align.ScorePath(a, b, res.Path, scoring.DNASimple, gap); got != res.Score {
			t.Fatalf("%q vs %q: path re-scores to %d", tc[0], tc[1], got)
		}
	}
}

func TestAlignEmpty(t *testing.T) {
	gap := scoring.Affine(-6, -2)
	empty := mustSeq(t, "e", "")
	full := mustSeq(t, "f", "ACGTT")
	for _, tc := range []struct {
		a, b  *seq.Sequence
		score int64
		moves int
	}{
		{empty, empty, 0, 0},
		{empty, full, int64(gap.Cost(5)), 5},
		{full, empty, int64(gap.Cost(5)), 5},
	} {
		res, err := wfa.Align(tc.a, tc.b, scoring.DNASimple, gap, wfa.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Score != tc.score || res.Path.Len() != tc.moves {
			t.Fatalf("got score %d len %d, want %d/%d", res.Score, res.Path.Len(), tc.score, tc.moves)
		}
		if err := res.Path.Validate(tc.a.Len(), tc.b.Len()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAlignIdentical(t *testing.T) {
	a := mustSeq(t, "a", "ACGTACGTACGT")
	res, err := wfa.Align(a, a, scoring.DNASimple, scoring.Linear(-4), wfa.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(5 * a.Len()); res.Score != want {
		t.Fatalf("score %d, want %d", res.Score, want)
	}
	for _, m := range res.Path.Moves() {
		if m != align.Diag {
			t.Fatalf("identical pair produced non-diagonal move")
		}
	}
}

// TestFromScoring pins the compatibility contract: uniform DNA matrices
// convert (with the documented penalty values), non-uniform ones are
// rejected with a diagnostic.
func TestFromScoring(t *testing.T) {
	p, err := wfa.FromScoring(scoring.DNASimple, seq.DNA, scoring.Linear(-4))
	if err != nil {
		t.Fatal(err)
	}
	if p.Mismatch != 18 || p.GapOpen != 0 || p.GapExtend != 13 {
		t.Fatalf("DNASimple penalties %+v", p)
	}
	p, err = wfa.FromScoring(scoring.DNASimple, seq.DNA, scoring.Affine(-6, -2))
	if err != nil {
		t.Fatal(err)
	}
	if p.GapOpen != 12 || p.GapExtend != 9 {
		t.Fatalf("affine penalties %+v", p)
	}
	for _, tc := range []struct {
		name   string
		matrix *scoring.Matrix
		alpha  *seq.Alphabet
		gap    scoring.Gap
	}{
		{"blosum62", scoring.BLOSUM62, seq.Protein, scoring.Linear(-4)},
		{"iupac", scoring.DNAIUPAC, scoring.DNAIUPAC.Alphabet, scoring.Linear(-4)},
		{"table1", scoring.Table1, scoring.Table1Alphabet, scoring.PaperGap},
		{"bad-gap", scoring.DNASimple, seq.DNA, scoring.Gap{Open: 0, Extend: 1}},
	} {
		if wfa.Compatible(tc.matrix, tc.alpha, tc.gap) {
			t.Fatalf("%s unexpectedly WFA-compatible", tc.name)
		}
	}
}

func TestAlignBudget(t *testing.T) {
	a, b, err := seq.HomologousPair(600, seq.DNA, model(0.4), 5)
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := memory.NewBudget(64)
	if err != nil {
		t.Fatal(err)
	}
	_, err = wfa.Align(a, b, scoring.DNASimple, scoring.Linear(-4), wfa.Options{Budget: tiny})
	if !errors.Is(err, memory.ErrExceeded) {
		t.Fatalf("want ErrExceeded, got %v", err)
	}
	if tiny.Used() != 0 {
		t.Fatalf("budget leak: %d entries still reserved", tiny.Used())
	}
	// A divergent run inside a generous budget reserves and then releases
	// everything.
	big, err := memory.NewBudget(1 << 24)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wfa.Align(a, b, scoring.DNASimple, scoring.Linear(-4), wfa.Options{Budget: big}); err != nil {
		t.Fatal(err)
	}
	if big.Used() != 0 {
		t.Fatalf("budget leak: %d entries still reserved", big.Used())
	}
	if big.Peak() == 0 {
		t.Fatal("peak accounting missing")
	}
}

func TestAlignCancellation(t *testing.T) {
	a, b, err := seq.HomologousPair(2000, seq.DNA, model(0.5), 9)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := (*stats.Counters)(nil).Derive(ctx)
	_, err = wfa.Align(a, b, scoring.DNASimple, scoring.Linear(-4), wfa.Options{Counters: c})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestAlignTraceSpans(t *testing.T) {
	a, b, err := seq.HomologousPair(300, seq.DNA, model(0.1), 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace(0)
	if _, err := wfa.Align(a, b, scoring.DNASimple, scoring.Linear(-4), wfa.Options{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, s := range tr.Spans() {
		names[s.Name] = true
	}
	if !names[obs.SpanWFAFill] || !names[obs.SpanTraceback] {
		t.Fatalf("missing kernel spans, got %v", names)
	}
}

func mustSeq(t *testing.T, id, residues string) *seq.Sequence {
	t.Helper()
	s, err := seq.New(id, residues, seq.DNA)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func BenchmarkAlignWFA(b *testing.B) {
	for _, d := range []float64{0.01, 0.1, 0.3} {
		b.Run(fmt.Sprintf("div=%.2f", d), func(b *testing.B) {
			x, y, err := seq.HomologousPair(2000, seq.DNA, model(d), 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := wfa.Align(x, y, scoring.DNASimple, scoring.Linear(-4), wfa.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
