package wfa_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"fastlsa/internal/align"
	"fastlsa/internal/hirschberg"
	"fastlsa/internal/memory"
	"fastlsa/internal/obs"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/stats"
	"fastlsa/internal/wfa"
)

// TestBiAlignDifferential is the linear-space pin: across divergence levels,
// scoring systems and seeds, BiAlign must agree with the unidirectional
// kernel and the kernel-layer (hirschberg) score, and its stitched path must
// be a valid (0,0)→(m,n) walk re-scoring to exactly the reported score.
func TestBiAlignDifferential(t *testing.T) {
	systems := []struct {
		name   string
		matrix *scoring.Matrix
		gap    scoring.Gap
	}{
		{"dna-linear", scoring.DNASimple, scoring.Linear(-4)},
		{"dna-affine", scoring.DNASimple, scoring.Affine(-6, -2)},
		{"strict-linear", scoring.DNAStrict, scoring.Linear(-1)},
	}
	divergences := []float64{0, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5}
	for _, sys := range systems {
		for _, d := range divergences {
			t.Run(fmt.Sprintf("%s/div=%.2f", sys.name, d), func(t *testing.T) {
				t.Parallel()
				for seed := int64(1); seed <= 4; seed++ {
					a, b, err := seq.HomologousPair(220, seq.DNA, model(d), seed)
					if err != nil {
						t.Fatal(err)
					}
					var c stats.Counters
					res, err := wfa.BiAlign(a, b, sys.matrix, sys.gap, wfa.Options{Counters: &c})
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					uni, err := wfa.Align(a, b, sys.matrix, sys.gap, wfa.Options{})
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if res.Score != uni.Score {
						t.Fatalf("seed %d: biwfa score %d, wfa %d", seed, res.Score, uni.Score)
					}
					want, err := hirschberg.Score(a, b, sys.matrix, sys.gap, nil)
					if err != nil {
						t.Fatal(err)
					}
					if res.Score != want {
						t.Fatalf("seed %d: biwfa score %d, hirschberg %d", seed, res.Score, want)
					}
					if err := res.Path.Validate(a.Len(), b.Len()); err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if got := align.ScorePath(a, b, res.Path, sys.matrix, sys.gap); got != res.Score {
						t.Fatalf("seed %d: path re-scores to %d, reported %d", seed, got, res.Score)
					}
					if c.Cells.Load() == 0 && d > 0 {
						t.Fatalf("seed %d: no cells counted", seed)
					}
				}
			})
		}
	}
}

// TestBiAlignLongPairs exercises enough optimal penalty for several
// recursion levels above the base-case cutoff.
func TestBiAlignLongPairs(t *testing.T) {
	for _, d := range []float64{0.01, 0.05, 0.15} {
		for seed := int64(1); seed <= 2; seed++ {
			a, b, err := seq.HomologousPair(2500, seq.DNA, model(d), seed)
			if err != nil {
				t.Fatal(err)
			}
			res, err := wfa.BiAlign(a, b, scoring.DNASimple, scoring.Linear(-4), wfa.Options{})
			if err != nil {
				t.Fatalf("div %.2f seed %d: %v", d, seed, err)
			}
			want, err := hirschberg.Score(a, b, scoring.DNASimple, scoring.Linear(-4), nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Score != want {
				t.Fatalf("div %.2f seed %d: score %d, want %d", d, seed, res.Score, want)
			}
			if err := res.Path.Validate(a.Len(), b.Len()); err != nil {
				t.Fatalf("div %.2f seed %d: %v", d, seed, err)
			}
			if got := align.ScorePath(a, b, res.Path, scoring.DNASimple, scoring.Linear(-4)); got != res.Score {
				t.Fatalf("div %.2f seed %d: path re-scores to %d", d, seed, got)
			}
		}
	}
}

// TestBiAlignLengthSkew: gap-dominated optima have no match-state overlap
// to split on, driving the hirschberg fallback path.
func TestBiAlignLengthSkew(t *testing.T) {
	gap := scoring.Linear(-4)
	for _, tc := range [][2]string{
		{"ACGT", "ACGTACGTACGTACGT"},
		{"ACGTACGTACGTACGT", "ACG"},
		{"A", "TTTT"},
		{"ACACACAC", "ACAC"},
		{"AAAA", "AAAACCCCCCCCCCCCCCCCCCCCCCCCCCCCCCCCCCCCAAAA"},
	} {
		a := mustSeq(t, "a", tc[0])
		b := mustSeq(t, "b", tc[1])
		res, err := wfa.BiAlign(a, b, scoring.DNASimple, gap, wfa.Options{})
		if err != nil {
			t.Fatalf("%q vs %q: %v", tc[0], tc[1], err)
		}
		want, err := hirschberg.Score(a, b, scoring.DNASimple, gap, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Score != want {
			t.Fatalf("%q vs %q: score %d, want %d", tc[0], tc[1], res.Score, want)
		}
		if err := res.Path.Validate(a.Len(), b.Len()); err != nil {
			t.Fatal(err)
		}
		if got := align.ScorePath(a, b, res.Path, scoring.DNASimple, gap); got != res.Score {
			t.Fatalf("%q vs %q: path re-scores to %d", tc[0], tc[1], got)
		}
	}
}

func TestBiAlignEmptyAndIdentical(t *testing.T) {
	gap := scoring.Affine(-6, -2)
	empty := mustSeq(t, "e", "")
	full := mustSeq(t, "f", "ACGTT")
	for _, tc := range []struct {
		a, b  *seq.Sequence
		score int64
		moves int
	}{
		{empty, empty, 0, 0},
		{empty, full, int64(gap.Cost(5)), 5},
		{full, empty, int64(gap.Cost(5)), 5},
	} {
		res, err := wfa.BiAlign(tc.a, tc.b, scoring.DNASimple, gap, wfa.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Score != tc.score || res.Path.Len() != tc.moves {
			t.Fatalf("got score %d len %d, want %d/%d", res.Score, res.Path.Len(), tc.score, tc.moves)
		}
	}
	a := mustSeq(t, "a", "ACGTACGTACGTACGTACGTACGT")
	res, err := wfa.BiAlign(a, a, scoring.DNASimple, scoring.Linear(-4), wfa.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(5 * a.Len()); res.Score != want {
		t.Fatalf("score %d, want %d", res.Score, want)
	}
	for _, m := range res.Path.Moves() {
		if m != align.Diag {
			t.Fatal("identical pair produced non-diagonal move")
		}
	}
}

// TestBiAlignMemory pins the tentpole claim at test scale: the bidirectional
// mode's budget high-water must sit far below the unidirectional kernel's
// retained history on a low-divergence pair, with the same score. (Bench E15
// pins the full ≥10× criterion at n=3000; this guards the mechanism under
// -race with a softer factor so it cannot silently regress to full
// retention.)
func TestBiAlignMemory(t *testing.T) {
	a, b, err := seq.HomologousPair(2000, seq.DNA, model(0.02), 3)
	if err != nil {
		t.Fatal(err)
	}
	uniBudget, err := memory.NewBudget(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	biBudget, err := memory.NewBudget(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := wfa.Align(a, b, scoring.DNASimple, scoring.Linear(-4), wfa.Options{Budget: uniBudget})
	if err != nil {
		t.Fatal(err)
	}
	bi, err := wfa.BiAlign(a, b, scoring.DNASimple, scoring.Linear(-4), wfa.Options{Budget: biBudget})
	if err != nil {
		t.Fatal(err)
	}
	if uni.Score != bi.Score {
		t.Fatalf("scores differ: %d vs %d", uni.Score, bi.Score)
	}
	if biBudget.Used() != 0 || uniBudget.Used() != 0 {
		t.Fatalf("budget leak: uni %d, bi %d", uniBudget.Used(), biBudget.Used())
	}
	if biBudget.Peak() == 0 {
		t.Fatal("bi peak accounting missing")
	}
	if 4*biBudget.Peak() > uniBudget.Peak() {
		t.Fatalf("bi peak %d not well below uni peak %d", biBudget.Peak(), uniBudget.Peak())
	}
}

// TestBiAlignBudget: exceeding a tiny budget fails cleanly (wrapping
// memory.ErrExceeded, the facade's fallback trigger) with nothing leaked.
func TestBiAlignBudget(t *testing.T) {
	a, b, err := seq.HomologousPair(600, seq.DNA, model(0.4), 5)
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := memory.NewBudget(16)
	if err != nil {
		t.Fatal(err)
	}
	_, err = wfa.BiAlign(a, b, scoring.DNASimple, scoring.Linear(-4), wfa.Options{Budget: tiny})
	if !errors.Is(err, memory.ErrExceeded) {
		t.Fatalf("want ErrExceeded, got %v", err)
	}
	if tiny.Used() != 0 {
		t.Fatalf("budget leak: %d entries still reserved", tiny.Used())
	}
}

func TestBiAlignCancellation(t *testing.T) {
	a, b, err := seq.HomologousPair(2000, seq.DNA, model(0.5), 9)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := (*stats.Counters)(nil).Derive(ctx)
	_, err = wfa.BiAlign(a, b, scoring.DNASimple, scoring.Linear(-4), wfa.Options{Counters: c})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestBiAlignTraceSpan(t *testing.T) {
	a, b, err := seq.HomologousPair(300, seq.DNA, model(0.1), 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace(0)
	if _, err := wfa.BiAlign(a, b, scoring.DNASimple, scoring.Linear(-4), wfa.Options{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Spans() {
		if s.Name == obs.SpanWFABi {
			return
		}
	}
	t.Fatalf("no %s span recorded", obs.SpanWFABi)
}

// countingCtx is a stub context whose Done channel reads as closed while
// Err keeps answering nil, so a kernel's cancellation poller runs the full
// computation and we can count how often it actually checked.
type countingCtx struct {
	done chan struct{}
	errs int
}

func newCountingCtx() *countingCtx {
	c := &countingCtx{done: make(chan struct{})}
	close(c.done)
	return c
}

func (c *countingCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countingCtx) Done() <-chan struct{}       { return c.done }
func (c *countingCtx) Err() error                  { c.errs++; return nil }
func (c *countingCtx) Value(any) any               { return nil }

// TestBacktracePollsCancellation is the regression test for the backtrace
// polling bug: the walk used to check cancellation only in its terminal
// branch, so a cancelled job stayed live for the entire O(m+n+s) walk. The
// pair below interleaves a mismatch every PollTargetCells matches: the fill
// is tiny (the optimal penalty is 12 mismatches) but the backtrace rewinds
// twelve ~8Ki match stretches, each of which must tick the poller. Without
// the walk polls the total check count stays in low single digits.
func TestBacktracePollsCancellation(t *testing.T) {
	const stretches = 12
	var buf bytes.Buffer
	for i := 0; i < stretches; i++ {
		for j := 0; j < stats.PollTargetCells; j++ {
			buf.WriteByte("ACGT"[j%4])
		}
		buf.WriteByte('A')
	}
	sa := buf.String()
	// Mutate only the single residue after each stretch so the pair stays
	// gap-free: flip the trailing 'A' of every stretch to 'T' in b.
	rb := []byte(sa)
	for i := 1; i <= stretches; i++ {
		rb[i*(stats.PollTargetCells+1)-1] = 'T'
	}
	a := mustSeq(t, "a", sa)
	b := mustSeq(t, "b", string(rb))

	ctx := newCountingCtx()
	c := (*stats.Counters)(nil).Derive(ctx)
	res, err := wfa.Align(a, b, scoring.DNASimple, scoring.Linear(-4), wfa.Options{Counters: c})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Path.Validate(a.Len(), b.Len()); err != nil {
		t.Fatal(err)
	}
	if ctx.errs < stretches {
		t.Fatalf("cancellation polled %d times; want >= %d (backtrace walk must poll periodically)", ctx.errs, stretches)
	}
}

// FuzzWFADifferential cross-checks both WFA modes against the kernel layer
// on fuzzer-chosen sequences and mutation rates. Seeds come from the E13
// divergence ladder.
func FuzzWFADifferential(f *testing.F) {
	for _, d := range []float64{0.001, 0.01, 0.05, 0.10, 0.20, 0.30} {
		f.Add("ACGTACGTACGTACGTACGTTGCAACGTACGTGGTACCA", d, int64(1000*d)+13)
	}
	f.Add("", 0.5, int64(1))
	f.Add("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAA", 0.9, int64(2))
	f.Fuzz(func(t *testing.T, raw string, rate float64, seed int64) {
		if len(raw) > 400 {
			raw = raw[:400]
		}
		letters := []byte(nil)
		for i := 0; i < len(raw); i++ {
			letters = append(letters, "ACGT"[raw[i]%4])
		}
		a, err := seq.New("a", string(letters), seq.DNA)
		if err != nil || a.Len() == 0 {
			t.Skip()
		}
		if rate < 0 || rate > 1 {
			rate = 0.25
		}
		m := model(rate)
		if err := m.Validate(); err != nil {
			t.Skip()
		}
		b, err := m.Mutate("b", a, seed)
		if err != nil {
			t.Skip()
		}
		for _, sys := range []struct {
			matrix *scoring.Matrix
			gap    scoring.Gap
		}{
			{scoring.DNASimple, scoring.Linear(-4)},
			{scoring.DNASimple, scoring.Affine(-6, -2)},
		} {
			want, err := hirschberg.Score(a, b, sys.matrix, sys.gap, nil)
			if err != nil {
				t.Fatal(err)
			}
			uni, err := wfa.Align(a, b, sys.matrix, sys.gap, wfa.Options{})
			if err != nil {
				t.Fatal(err)
			}
			bi, err := wfa.BiAlign(a, b, sys.matrix, sys.gap, wfa.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if uni.Score != want || bi.Score != want {
				t.Fatalf("scores diverge: hirschberg %d, wfa %d, biwfa %d", want, uni.Score, bi.Score)
			}
			if err := bi.Path.Validate(a.Len(), b.Len()); err != nil {
				t.Fatal(err)
			}
			if got := align.ScorePath(a, b, bi.Path, sys.matrix, sys.gap); got != want {
				t.Fatalf("biwfa path re-scores to %d, want %d", got, want)
			}
		}
	})
}

func BenchmarkBiAlign(b *testing.B) {
	for _, d := range []float64{0.01, 0.1} {
		b.Run(fmt.Sprintf("div=%.2f", d), func(b *testing.B) {
			x, y, err := seq.HomologousPair(2000, seq.DNA, model(d), 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := wfa.BiAlign(x, y, scoring.DNASimple, scoring.Linear(-4), wfa.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
