package search_test

import (
	"fmt"
	"testing"

	"fastlsa/internal/core"
	"fastlsa/internal/scoring"
	"fastlsa/internal/search"
	"fastlsa/internal/seq"
	"fastlsa/internal/significance"
	"fastlsa/internal/stats"
)

// buildDB creates a database of unrelated sequences with one planted
// homolog of the query at the given index.
func buildDB(t *testing.T, query *seq.Sequence, size, homologAt int) []*seq.Sequence {
	t.Helper()
	db := make([]*seq.Sequence, size)
	for i := range db {
		db[i] = seq.Random(fmt.Sprintf("db%d", i), 400+i%100, seq.DNA, 5000+int64(i))
	}
	hom, err := (seq.MutationModel{SubstitutionRate: 0.06, InsertionRate: 0.01, DeletionRate: 0.01, MaxIndelRun: 3, IndelExtend: 0.3}).Mutate("homolog", query, 999)
	if err != nil {
		t.Fatal(err)
	}
	// Embed the homolog inside background sequence.
	flank := seq.Random("", 150, seq.DNA, 888).String()
	db[homologAt] = seq.MustNew("homolog", flank+hom.String()+flank, seq.DNA)
	return db
}

func baseOpts() search.Options {
	return search.Options{
		Matrix:   scoring.DNASimple,
		Gap:      scoring.Linear(-12),
		TopK:     5,
		Workers:  1,
		Pairwise: core.Options{Workers: 1},
	}
}

func TestQueryFindsPlantedHomolog(t *testing.T) {
	query := seq.Random("query", 300, seq.DNA, 77)
	db := buildDB(t, query, 30, 17)
	hits, err := search.Query(query, db, baseOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if hits[0].ID != "homolog" || hits[0].Index != 17 {
		t.Fatalf("top hit %+v, want the planted homolog at 17", hits[0])
	}
	if hits[0].Score < 300*5*6/10 {
		t.Fatalf("homolog score %d suspiciously low", hits[0].Score)
	}
	// Ranked descending.
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatal("hits not sorted")
		}
	}
	// The top hit carries a reconstructed alignment matching its score.
	if hits[0].Alignment == nil || hits[0].Alignment.Score != hits[0].Score {
		t.Fatalf("top alignment missing or inconsistent: %+v", hits[0].Alignment)
	}
}

func TestQueryParallelMatchesSequential(t *testing.T) {
	query := seq.Random("query", 250, seq.DNA, 78)
	db := buildDB(t, query, 24, 5)
	seqHits, err := search.Query(query, db, baseOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 16, 100} {
		opt := baseOpts()
		opt.Workers = w
		parHits, err := search.Query(query, db, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(parHits) != len(seqHits) {
			t.Fatalf("workers=%d: %d hits vs %d", w, len(parHits), len(seqHits))
		}
		for i := range parHits {
			if parHits[i].Index != seqHits[i].Index || parHits[i].Score != seqHits[i].Score {
				t.Fatalf("workers=%d: hit %d differs", w, i)
			}
		}
	}
}

func TestQueryEValues(t *testing.T) {
	params, err := significance.Estimate(scoring.DNASimple, scoring.Linear(-12), significance.Options{
		SampleLen: 120, Samples: 40, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	query := seq.Random("query", 300, seq.DNA, 79)
	db := buildDB(t, query, 20, 3)
	opt := baseOpts()
	opt.Stats = &params
	hits, err := search.Query(query, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	if hits[0].ID != "homolog" {
		t.Fatalf("top hit %v", hits[0])
	}
	if hits[0].EValue > 1e-6 {
		t.Fatalf("homolog E-value %g not significant", hits[0].EValue)
	}
	if hits[0].BitScore <= 0 {
		t.Fatalf("bit score %g", hits[0].BitScore)
	}
	// E-value filter keeps only the real hit.
	opt.MaxEValue = 1e-3
	filtered, err := search.Query(query, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range filtered {
		if h.EValue > 1e-3 {
			t.Fatalf("hit %v above the E-value cutoff", h)
		}
	}
	if len(filtered) == 0 || filtered[0].ID != "homolog" {
		t.Fatalf("filter lost the homolog: %v", filtered)
	}
}

func TestQueryOptionsValidation(t *testing.T) {
	q := seq.Random("q", 50, seq.DNA, 1)
	db := []*seq.Sequence{seq.Random("d", 50, seq.DNA, 2)}
	if _, err := search.Query(q, db, search.Options{}); err == nil {
		t.Fatal("missing matrix must fail")
	}
	opt := baseOpts()
	opt.Gap = scoring.Affine(-5, -1)
	if _, err := search.Query(q, db, opt); err == nil {
		t.Fatal("affine must be rejected")
	}
	empty := seq.MustNew("e", "", seq.DNA)
	if _, err := search.Query(empty, db, baseOpts()); err == nil {
		t.Fatal("empty query must fail")
	}
	hits, err := search.Query(q, nil, baseOpts())
	if err != nil || hits != nil {
		t.Fatalf("empty db: %v %v", hits, err)
	}
	opt = baseOpts()
	opt.MaxEValue = 1
	if _, err := search.Query(q, db, opt); err == nil {
		t.Fatal("MaxEValue without Stats must fail")
	}
}

func TestQueryTopKAndAlignments(t *testing.T) {
	query := seq.Random("query", 200, seq.DNA, 80)
	db := buildDB(t, query, 40, 9)
	opt := baseOpts()
	opt.TopK = 3
	opt.Alignments = 1
	var c stats.Counters
	opt.Counters = &c
	hits, err := search.Query(query, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) > 3 {
		t.Fatalf("%d hits exceed TopK", len(hits))
	}
	if hits[0].Alignment == nil {
		t.Fatal("first hit must carry an alignment")
	}
	for _, h := range hits[1:] {
		if h.Alignment != nil {
			t.Fatal("only the first hit should carry an alignment")
		}
	}
	if c.Cells.Load() == 0 {
		t.Fatal("scan cells not counted")
	}
}

func TestQueryMinScore(t *testing.T) {
	query := seq.Random("query", 200, seq.DNA, 81)
	db := buildDB(t, query, 15, 2)
	opt := baseOpts()
	opt.MinScore = 500 // only the homolog clears this
	hits, err := search.Query(query, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].ID != "homolog" {
		t.Fatalf("MinScore filter: %v", hits)
	}
}
