package search_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"fastlsa/internal/core"
	"fastlsa/internal/index"
	"fastlsa/internal/scoring"
	"fastlsa/internal/search"
	"fastlsa/internal/seq"
	"fastlsa/internal/significance"
	"fastlsa/internal/stats"
)

// recallCorpus builds a deterministic corpus with planted homologs of the
// query at several identity levels, plus unrelated background.
func recallCorpus(t *testing.T, query *seq.Sequence, size int) []*seq.Sequence {
	t.Helper()
	db := make([]*seq.Sequence, size)
	for i := range db {
		db[i] = seq.Random(fmt.Sprintf("bg%d", i), 200+i%80, seq.DNA, 7000+int64(i))
	}
	rates := []float64{0.01, 0.04, 0.08, 0.15, 0.25}
	for j, r := range rates {
		model := seq.MutationModel{SubstitutionRate: r, InsertionRate: r / 4, DeletionRate: r / 4, MaxIndelRun: 3, IndelExtend: 0.3}
		hom, err := model.Mutate(fmt.Sprintf("hom%d", j), query, int64(600+j))
		if err != nil {
			t.Fatal(err)
		}
		db[(j+1)*size/(len(rates)+1)] = hom
	}
	return db
}

// TestRecallMatchesBruteForce is the satellite recall property: for any
// MinScore and any worker count, a seed-filtered search returns the exact
// Hit slice of the brute-force reference scan.
func TestRecallMatchesBruteForce(t *testing.T) {
	query := seq.Random("query", 250, seq.DNA, 42)
	db := recallCorpus(t, query, 250)
	ix, err := index.Build(db, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, minScore := range []int64{0, 1, 300, 700, 1000, 5000} {
		opt := search.Options{
			Matrix:     scoring.DNASimple,
			Gap:        scoring.Linear(-12),
			TopK:       8,
			Alignments: 2,
			MinScore:   minScore,
			Workers:    1,
			Pairwise:   core.Options{Workers: 1},
		}
		brute, err := search.Query(query, db, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4, 0} {
			fopt := opt
			fopt.Workers = workers
			fopt.Index = ix
			var probe index.Probe
			fopt.Probe = &probe
			filtered, err := search.Query(query, db, fopt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(brute, filtered) {
				t.Fatalf("minScore=%d workers=%d: filtered hits differ from brute force\nbrute:    %+v\nfiltered: %+v",
					minScore, workers, brute, filtered)
			}
			if probe.Scanned != len(db) {
				t.Fatalf("probe not filled: %+v", probe)
			}
		}
	}
}

// TestRecallWithEValueFilter pins the subtle interaction between the
// early-abandon floor and the E-value eligibility filter: the floor may only
// count hits that pass every filter, or entries the brute-force scan would
// have kept get abandoned.
func TestRecallWithEValueFilter(t *testing.T) {
	params, err := significance.Estimate(scoring.DNASimple, scoring.Linear(-12), significance.Options{
		SampleLen: 120, Samples: 40, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	query := seq.Random("query", 250, seq.DNA, 43)
	db := recallCorpus(t, query, 150)
	ix, err := index.Build(db, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, maxE := range []float64{0, 10, 1e-3} {
		opt := search.Options{
			Matrix:     scoring.DNASimple,
			Gap:        scoring.Linear(-12),
			TopK:       4,
			Alignments: 1,
			MinScore:   100,
			Workers:    2,
			Stats:      &params,
			MaxEValue:  maxE,
			Pairwise:   core.Options{Workers: 1},
		}
		brute, err := search.Query(query, db, opt)
		if err != nil {
			t.Fatal(err)
		}
		fopt := opt
		fopt.Index = ix
		filtered, err := search.Query(query, db, fopt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(brute, filtered) {
			t.Fatalf("maxE=%g: filtered hits differ from brute force\nbrute:    %+v\nfiltered: %+v", maxE, brute, filtered)
		}
	}
}

// TestOnHitCoversFinalHits checks the streaming contract: every hit in the
// final ranked slice was reported through OnHit during the scan (possibly
// alongside provisional hits that were later displaced).
func TestOnHitCoversFinalHits(t *testing.T) {
	query := seq.Random("query", 250, seq.DNA, 44)
	db := recallCorpus(t, query, 120)
	ix, err := index.Build(db, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, withIndex := range []bool{false, true} {
		streamed := map[int]bool{} // OnHit is serialised: plain map is safe
		opt := search.Options{
			Matrix:     scoring.DNASimple,
			Gap:        scoring.Linear(-12),
			TopK:       5,
			Alignments: 1,
			MinScore:   100,
			Workers:    4,
			Pairwise:   core.Options{Workers: 1},
			OnHit:      func(h search.Hit) { streamed[h.Index] = true },
		}
		if withIndex {
			opt.Index = ix
		}
		hits, err := search.Query(query, db, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) == 0 {
			t.Fatal("no hits")
		}
		for _, h := range hits {
			if !streamed[h.Index] {
				t.Fatalf("index=%v: final hit %d (%s, score %d) never streamed through OnHit", withIndex, h.Index, h.ID, h.Score)
			}
		}
	}
}

// TestCancelledSearchStopsScan exercises the per-entry cancellation poll in
// the verify workers: a cancelled run context aborts the scan with the
// context error instead of finishing the corpus.
func TestCancelledSearchStopsScan(t *testing.T) {
	query := seq.Random("query", 200, seq.DNA, 45)
	db := recallCorpus(t, query, 60)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var root stats.Counters
	opt := search.Options{
		Matrix:   scoring.DNASimple,
		Gap:      scoring.Linear(-12),
		Workers:  2,
		Pairwise: core.Options{Workers: 1},
		Counters: root.Derive(ctx),
	}
	if _, err := search.Query(query, db, opt); err != context.Canceled {
		t.Fatalf("cancelled scan returned %v, want context.Canceled", err)
	}
	if root.SearchExamined.Load() != 0 {
		t.Fatalf("cancelled scan still examined %d entries", root.SearchExamined.Load())
	}
}

// TestFilteredSearchExaminesFewer pins the funnel accounting: with a
// selective threshold the verify stage must touch well under the full
// corpus, and the counters must record the funnel.
func TestFilteredSearchExaminesFewer(t *testing.T) {
	query := seq.Random("query", 250, seq.DNA, 46)
	model := seq.MutationModel{SubstitutionRate: 0.005, InsertionRate: 0.001, DeletionRate: 0.001, MaxIndelRun: 2, IndelExtend: 0.2}
	db := make([]*seq.Sequence, 200)
	for i := range db {
		db[i] = seq.Random(fmt.Sprintf("bg%d", i), 250, seq.DNA, 9000+int64(i))
	}
	hom, err := model.Mutate("hom", query, 47)
	if err != nil {
		t.Fatal(err)
	}
	db[137] = hom
	ix, err := index.Build(db, 8)
	if err != nil {
		t.Fatal(err)
	}
	var c stats.Counters
	var probe index.Probe
	hits, err := search.Query(query, db, search.Options{
		Matrix:   scoring.DNASimple,
		Gap:      scoring.Linear(-12),
		TopK:     5,
		MinScore: 1150,
		Workers:  2,
		Pairwise: core.Options{Workers: 1},
		Counters: &c,
		Index:    ix,
		Probe:    &probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Index != 137 {
		t.Fatalf("hits = %+v, want only the planted homolog", hits)
	}
	if c.SearchScanned.Load() != 200 {
		t.Fatalf("scanned %d", c.SearchScanned.Load())
	}
	if got := c.SearchCandidates.Load(); got >= 40 {
		t.Fatalf("filter kept %d of 200 entries; expected <20%%", got)
	}
	if ex := c.SearchExamined.Load(); ex > c.SearchCandidates.Load() || ex == 0 {
		t.Fatalf("examined %d of %d candidates", ex, c.SearchCandidates.Load())
	}
	if probe.Selectivity <= 0 || probe.SeedFloor <= 0 {
		t.Fatalf("probe accounting: %+v", probe)
	}
}
