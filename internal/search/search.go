// Package search implements homology search — the paper's motivating
// application (§1: "Pairwise sequence alignment is used to determine
// homology ... in both DNA and protein sequences"): a query is scanned
// against a database of sequences, candidates are ranked by optimal local
// alignment score using the O(min) score-only kernel, the top hits get their
// full alignments reconstructed in FastLSA-bounded space, and (optionally)
// each hit is annotated with Karlin-Altschul E-values from a fitted Gumbel
// tail. The database scan parallelises across entries with a worker pool.
package search

import (
	"fmt"
	"sort"
	"sync"

	"fastlsa/internal/core"
	"fastlsa/internal/fm"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/significance"
	"fastlsa/internal/stats"
)

// Hit is one database match.
type Hit struct {
	// Index is the database position; ID the sequence identifier.
	Index int
	ID    string
	// Score is the optimal local alignment score against the query.
	Score int64
	// EValue and BitScore are set when Options.Stats is provided.
	EValue   float64
	BitScore float64
	// Alignment is the reconstructed local alignment (only for the top
	// Options.Alignments hits; nil otherwise).
	Alignment *fm.LocalResult
}

// Options configures a search.
type Options struct {
	// Matrix and Gap define the scoring system (linear gaps only).
	Matrix *scoring.Matrix
	Gap    scoring.Gap
	// TopK bounds the number of hits returned (0 selects 10).
	TopK int
	// Alignments is how many of the top hits get full alignments
	// reconstructed (0 selects TopK; capped at TopK).
	Alignments int
	// MinScore drops candidates below the threshold (0 keeps everything
	// positive).
	MinScore int64
	// Workers parallelises the database scan (0 = GOMAXPROCS via the
	// FastLSA options, 1 = sequential).
	Workers int
	// Stats, when non-nil, annotates hits with E-values and bit scores.
	Stats *significance.Params
	// MaxEValue drops hits with a larger E-value (0 = no filter; requires
	// Stats).
	MaxEValue float64
	// Pairwise tunes the FastLSA reconstruction runs.
	Pairwise core.Options
	// Counters, when non-nil, accumulates the scan's DP work.
	Counters *stats.Counters
}

// Query scans the database and returns ranked hits (best first; ties by
// database order). The result is identical for any worker count.
func Query(query *seq.Sequence, db []*seq.Sequence, opt Options) ([]Hit, error) {
	if opt.Matrix == nil {
		return nil, fmt.Errorf("search: Options.Matrix is required")
	}
	gap := opt.Gap
	if gap == (scoring.Gap{}) {
		gap = scoring.Linear(-12)
	}
	if err := gap.Validate(); err != nil {
		return nil, err
	}
	if !gap.IsLinear() {
		return nil, fmt.Errorf("search: affine gap models not supported (the local kernel is linear-gap)")
	}
	if query.Len() == 0 {
		return nil, fmt.Errorf("search: empty query")
	}
	if len(db) == 0 {
		return nil, nil
	}
	if opt.MaxEValue > 0 && opt.Stats == nil {
		return nil, fmt.Errorf("search: MaxEValue requires Options.Stats")
	}
	topK := opt.TopK
	if topK <= 0 {
		topK = 10
	}

	// Phase 1: parallel score-only scan.
	type scored struct {
		idx   int
		score int64
		err   error
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(db) {
		workers = len(db)
	}
	results := make([]scored, len(db))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				s, _, _, err := fm.ScoreLocal(query, db[i], opt.Matrix, gap, opt.Counters)
				results[i] = scored{idx: i, score: s, err: err}
			}
		}()
	}
	for i := range db {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("search: database entry %d: %w", r.idx, r.err)
		}
	}

	// Phase 2: rank and cut.
	sort.SliceStable(results, func(i, j int) bool {
		if results[i].score != results[j].score {
			return results[i].score > results[j].score
		}
		return results[i].idx < results[j].idx
	})
	hits := make([]Hit, 0, topK)
	for _, r := range results {
		if len(hits) == topK {
			break
		}
		if r.score <= 0 || r.score < opt.MinScore {
			continue
		}
		h := Hit{Index: r.idx, ID: db[r.idx].ID, Score: r.score}
		if opt.Stats != nil {
			h.EValue = opt.Stats.EValue(r.score, query.Len(), db[r.idx].Len())
			h.BitScore = opt.Stats.BitScore(r.score)
			if opt.MaxEValue > 0 && h.EValue > opt.MaxEValue {
				continue
			}
		}
		hits = append(hits, h)
	}

	// Phase 3: reconstruct alignments for the leading hits in
	// FastLSA-bounded space.
	nAlign := opt.Alignments
	if nAlign <= 0 || nAlign > len(hits) {
		nAlign = len(hits)
	}
	popt := opt.Pairwise
	if popt.Workers == 0 {
		popt.Workers = 1
	}
	if popt.Counters == nil {
		// Reconstruction runs inherit the scan's counters — and with them the
		// run's cancellation signal.
		popt.Counters = opt.Counters
	}
	for i := 0; i < nAlign; i++ {
		if err := opt.Counters.Cancelled(); err != nil {
			return nil, err
		}
		loc, err := core.AlignLocal(query, db[hits[i].Index], opt.Matrix, gap, popt)
		if err != nil {
			return nil, fmt.Errorf("search: reconstructing hit %d (db %d): %w", i, hits[i].Index, err)
		}
		if loc.Score != hits[i].Score {
			return nil, fmt.Errorf("search: hit %d reconstruction scored %d, scan said %d (internal invariant)",
				i, loc.Score, hits[i].Score)
		}
		locCopy := loc
		hits[i].Alignment = &locCopy
	}
	return hits, nil
}
