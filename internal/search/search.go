// Package search implements homology search — the paper's motivating
// application (§1: "Pairwise sequence alignment is used to determine
// homology ... in both DNA and protein sequences") — as a three-phase
// pipeline:
//
//  1. filter: when Options.Index is set, a q-gram index probe prunes
//     database entries that provably cannot reach MinScore (the pruning is
//     lossless; see internal/index),
//  2. verify: the surviving candidates are scored with the O(min-space)
//     score-only kernel, in candidate order of decreasing score upper
//     bound, early-abandoning entries whose bound falls below the running
//     top-K floor,
//  3. reconstruct: the leading hits get their full alignments rebuilt in
//     FastLSA-bounded space.
//
// Without an index the verify phase degenerates to the exact brute-force
// scan of every entry — the reference semantics the filtered path must
// reproduce bit-for-bit above MinScore (pinned by recall_test.go). Hits are
// optionally annotated with Karlin-Altschul E-values from a fitted Gumbel
// tail. The scan parallelises across entries with a worker pool and the
// result is identical for any worker count.
package search

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fastlsa/internal/core"
	"fastlsa/internal/fm"
	"fastlsa/internal/index"
	"fastlsa/internal/obs"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/significance"
	"fastlsa/internal/stats"
)

// Hit is one database match.
type Hit struct {
	// Index is the database position; ID the sequence identifier.
	Index int
	ID    string
	// Score is the optimal local alignment score against the query.
	Score int64
	// EValue and BitScore are set when Options.Stats is provided.
	EValue   float64
	BitScore float64
	// Alignment is the reconstructed local alignment (only for the top
	// Options.Alignments hits; nil otherwise).
	Alignment *fm.LocalResult
}

// Options configures a search.
type Options struct {
	// Matrix and Gap define the scoring system (linear gaps only).
	Matrix *scoring.Matrix
	Gap    scoring.Gap
	// TopK bounds the number of hits returned (0 selects 10).
	TopK int
	// Alignments is how many of the top hits get full alignments
	// reconstructed (0 selects TopK; capped at TopK).
	Alignments int
	// MinScore drops candidates below the threshold (0 keeps everything
	// positive).
	MinScore int64
	// Workers parallelises the database scan (0 = GOMAXPROCS,
	// 1 = sequential).
	Workers int
	// Stats, when non-nil, annotates hits with E-values and bit scores.
	Stats *significance.Params
	// MaxEValue drops hits with a larger E-value (0 = no filter; requires
	// Stats).
	MaxEValue float64
	// Pairwise tunes the FastLSA reconstruction runs.
	Pairwise core.Options
	// Counters, when non-nil, accumulates the scan's DP work and the
	// search funnel (SearchScanned / SearchCandidates / SearchExamined).
	Counters *stats.Counters
	// Index, when non-nil, is a q-gram index built over exactly this
	// database (index.Build(db, q)): the seed filter prunes entries that
	// cannot reach MinScore and the verify scan early-abandons entries
	// whose score upper bound falls below the running top-K floor. Both
	// prunes are lossless: the hits are identical to an index-free search.
	Index *index.Index
	// Probe, when non-nil, receives the filter-phase accounting of an
	// indexed search (untouched when Index is nil).
	Probe *index.Probe
	// OnHit, when non-nil, is called for each hit that enters the running
	// top-K during the verify scan — the streaming feed behind the
	// server's NDJSON /v1/search. Calls are serialised (never concurrent)
	// but hits are provisional and unordered: a later, better hit can push
	// an already-reported one out of the final top-K, and alignments and
	// final ranks are only in the returned slice.
	OnHit func(Hit)
	// Trace, when non-nil, records filter/verify/reconstruct phase spans.
	Trace *obs.Trace
	// Recorder, when non-nil, receives flight-recorder phase events
	// mirroring the trace spans. Nil-safe.
	Recorder *obs.Recorder
	// Prof, when non-nil, is the pprof-labelled base context the search's
	// {backend="search", phase} CPU-attribution labels merge into.
	Prof context.Context
}

// phaseStart stamps a flight-recorder phase start (zero when no recorder is
// attached, so the disabled path never reads the clock).
func (o Options) phaseStart() time.Time {
	if o.Recorder == nil {
		return time.Time{}
	}
	return time.Now()
}

// phaseEvent logs one completed phase span into the search's flight recorder.
func (o Options) phaseEvent(name string, start time.Time) {
	if start.IsZero() {
		return
	}
	o.Recorder.Add(obs.Event{
		Kind: obs.EvPhase, Detail: name, Extra: obs.CatSearch,
		Duration: time.Since(start),
	})
}

// topKFloor tracks the k-th best eligible score seen so far (a min-heap of
// at most k scores). The floor only rises, so a verify worker that reads a
// stale floor only abandons less aggressively — never incorrectly.
type topKFloor struct {
	mu    sync.Mutex
	k     int
	heap  []int64 // min-heap
	onHit func(Hit)
}

// floor returns the current k-th best score, or -1 while fewer than k
// eligible hits have been seen (every score of interest is positive).
func (f *topKFloor) floor() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.heap) < f.k {
		return -1
	}
	return f.heap[0]
}

// offer records an eligible hit. If it enters the running top-K the OnHit
// callback (if any) fires while the lock is held, serialising the stream.
func (f *topKFloor) offer(h Hit) {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch {
	case len(f.heap) < f.k:
		f.heap = append(f.heap, h.Score)
		f.siftUp(len(f.heap) - 1)
	case h.Score > f.heap[0]:
		f.heap[0] = h.Score
		f.siftDown(0)
	case h.Score == f.heap[0]:
		// A floor tie can still reach the final top-K through the
		// database-order tie-break: report it, but the floor is unchanged.
	default:
		return
	}
	if f.onHit != nil {
		f.onHit(h)
	}
}

func (f *topKFloor) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if f.heap[p] <= f.heap[i] {
			return
		}
		f.heap[p], f.heap[i] = f.heap[i], f.heap[p]
		i = p
	}
}

func (f *topKFloor) siftDown(i int) {
	for {
		l, r, min := 2*i+1, 2*i+2, i
		if l < len(f.heap) && f.heap[l] < f.heap[min] {
			min = l
		}
		if r < len(f.heap) && f.heap[r] < f.heap[min] {
			min = r
		}
		if min == i {
			return
		}
		f.heap[i], f.heap[min] = f.heap[min], f.heap[i]
		i = min
	}
}

// Query scans the database and returns ranked hits (best first; ties by
// database order). The result is identical for any worker count and — above
// MinScore — for indexed and brute-force scans alike.
func Query(query *seq.Sequence, db []*seq.Sequence, opt Options) ([]Hit, error) {
	if opt.Matrix == nil {
		return nil, fmt.Errorf("search: Options.Matrix is required")
	}
	gap := opt.Gap
	if gap == (scoring.Gap{}) {
		gap = scoring.Linear(-12)
	}
	if err := gap.Validate(); err != nil {
		return nil, err
	}
	if !gap.IsLinear() {
		return nil, fmt.Errorf("search: affine gap models not supported (the local kernel is linear-gap)")
	}
	if query.Len() == 0 {
		return nil, fmt.Errorf("search: empty query")
	}
	if len(db) == 0 {
		return nil, nil
	}
	if opt.MaxEValue > 0 && opt.Stats == nil {
		return nil, fmt.Errorf("search: MaxEValue requires Options.Stats")
	}
	topK := opt.TopK
	if topK <= 0 {
		topK = 10
	}

	// Phase 1: seed filter. Without an index every entry is a candidate
	// and the verify scan below is the exact brute-force reference.
	var cands []index.Candidate
	if opt.Index != nil {
		if got := opt.Index.Entries(); got != len(db) {
			return nil, fmt.Errorf("search: index covers %d entries, database has %d (build the index over the same database)", got, len(db))
		}
		start := opt.Trace.Begin()
		fp := obs.ProfPhaseBegin(opt.Prof, "search", obs.SpanSearchFilter)
		f0 := opt.phaseStart()
		list, probe, err := opt.Index.Candidates(query, opt.Matrix, gap, opt.MinScore)
		fp.End()
		opt.phaseEvent(obs.SpanSearchFilter, f0)
		opt.Trace.End(obs.SpanSearchFilter, obs.CatSearch, start, obs.Tags{Rows: probe.Scanned, Cols: probe.Candidates})
		if err != nil {
			return nil, err
		}
		cands = list
		if opt.Probe != nil {
			*opt.Probe = probe
		}
		opt.Counters.AddSearchScanned(int64(probe.Scanned))
		opt.Counters.AddSearchCandidates(int64(len(cands)))
	} else {
		cands = make([]index.Candidate, len(db))
		for i := range db {
			cands[i] = index.Candidate{Entry: i}
		}
		opt.Counters.AddSearchScanned(int64(len(db)))
		opt.Counters.AddSearchCandidates(int64(len(db)))
	}

	// Phase 2: parallel score-only verify over the candidates.
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers < 1 {
		workers = 1
	}
	type verified struct {
		score    int64
		evalue   float64
		bits     float64
		eligible bool
	}
	results := make([]verified, len(cands))
	floor := &topKFloor{k: topK, onHit: opt.OnHit}
	var (
		next     atomic.Int64
		abandon  atomic.Bool // indexed scans: bound fell below the floor
		examined atomic.Int64
		errMu    sync.Mutex
		scanErr  error
		scanIdx  int
	)
	setErr := func(dbIdx int, err error) {
		errMu.Lock()
		if scanErr == nil || dbIdx < scanIdx {
			scanErr, scanIdx = err, dbIdx
		}
		errMu.Unlock()
	}
	vStart := opt.Trace.Begin()
	vp := obs.ProfPhaseBegin(opt.Prof, "search", obs.SpanSearchVerify)
	v0 := opt.phaseStart()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cands) {
					return
				}
				if err := opt.Counters.Cancelled(); err != nil {
					setErr(-1, err)
					return
				}
				c := cands[i]
				if opt.Index != nil {
					// Candidates are sorted by decreasing upper bound, so
					// once one bound drops strictly below the floor every
					// later candidate's does too. Ties must still be
					// examined: an equal score can win on the index
					// tie-break.
					if abandon.Load() {
						return
					}
					if fl := floor.floor(); fl >= 0 && c.UpperBound < fl {
						abandon.Store(true)
						return
					}
				}
				s, _, _, err := fm.ScoreLocal(query, db[c.Entry], opt.Matrix, gap, opt.Counters)
				if err != nil {
					setErr(c.Entry, fmt.Errorf("search: database entry %d: %w", c.Entry, err))
					return
				}
				examined.Add(1)
				v := verified{score: s}
				if s > 0 && s >= opt.MinScore {
					v.eligible = true
					if opt.Stats != nil {
						v.evalue = opt.Stats.EValue(s, query.Len(), db[c.Entry].Len())
						v.bits = opt.Stats.BitScore(s)
						if opt.MaxEValue > 0 && v.evalue > opt.MaxEValue {
							v.eligible = false
						}
					}
				}
				results[i] = v
				if v.eligible {
					floor.offer(Hit{Index: c.Entry, ID: db[c.Entry].ID, Score: s, EValue: v.evalue, BitScore: v.bits})
				}
			}
		}()
	}
	wg.Wait()
	vp.End()
	opt.phaseEvent(obs.SpanSearchVerify, v0)
	opt.Trace.End(obs.SpanSearchVerify, obs.CatSearch, vStart, obs.Tags{Rows: len(cands), Cols: int(examined.Load())})
	opt.Counters.AddSearchExamined(examined.Load())
	if scanErr != nil {
		return nil, scanErr
	}

	// Phase 3: rank and cut. Only eligible entries compete, so the result
	// is exactly the top-K eligible set by (score desc, database order) —
	// the invariant the early-abandon above preserves: a skipped entry's
	// true score is strictly below the floor at skip time, and the floor
	// only rises.
	order := make([]int, 0, len(cands))
	for i := range cands {
		if results[i].eligible {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if results[ia].score != results[ib].score {
			return results[ia].score > results[ib].score
		}
		return cands[ia].Entry < cands[ib].Entry
	})
	if len(order) > topK {
		order = order[:topK]
	}
	hits := make([]Hit, 0, len(order))
	for _, i := range order {
		e := cands[i].Entry
		hits = append(hits, Hit{
			Index: e, ID: db[e].ID, Score: results[i].score,
			EValue: results[i].evalue, BitScore: results[i].bits,
		})
	}

	// Phase 4: reconstruct alignments for the leading hits in
	// FastLSA-bounded space.
	nAlign := opt.Alignments
	if nAlign <= 0 || nAlign > len(hits) {
		nAlign = len(hits)
	}
	popt := opt.Pairwise
	if popt.Workers == 0 {
		popt.Workers = 1
	}
	if popt.Counters == nil {
		// Reconstruction runs inherit the scan's counters — and with them the
		// run's cancellation signal.
		popt.Counters = opt.Counters
	}
	rStart := opt.Trace.Begin()
	rp := obs.ProfPhaseBegin(opt.Prof, "search", obs.SpanSearchReconstruct)
	defer rp.End()
	r0 := opt.phaseStart()
	for i := 0; i < nAlign; i++ {
		if err := opt.Counters.Cancelled(); err != nil {
			return nil, err
		}
		loc, err := core.AlignLocal(query, db[hits[i].Index], opt.Matrix, gap, popt)
		if err != nil {
			return nil, fmt.Errorf("search: reconstructing hit %d (db %d): %w", i, hits[i].Index, err)
		}
		if loc.Score != hits[i].Score {
			return nil, fmt.Errorf("search: hit %d reconstruction scored %d, scan said %d (internal invariant)",
				i, loc.Score, hits[i].Score)
		}
		locCopy := loc
		hits[i].Alignment = &locCopy
	}
	opt.phaseEvent(obs.SpanSearchReconstruct, r0)
	opt.Trace.End(obs.SpanSearchReconstruct, obs.CatSearch, rStart, obs.Tags{Rows: nAlign})
	return hits, nil
}
