package backend_test

import (
	"testing"

	"fastlsa/internal/align"
	"fastlsa/internal/backend"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
)

func routerModel(d float64) seq.MutationModel {
	return seq.MutationModel{
		SubstitutionRate: d,
		InsertionRate:    d / 10,
		DeletionRate:     d / 10,
		MaxIndelRun:      4,
		IndelExtend:      0.5,
	}
}

// TestDecide pins every routing rule (docs/BACKENDS.md), including the two
// acceptance anchors: a ≥95%-identity DNA pair routes to WFA and a
// ≤70%-identity pair routes to FastLSA.
func TestDecide(t *testing.T) {
	dna := scoring.DNASimple
	gap := scoring.Linear(-4)
	similar95A, similar95B, err := seq.HomologousPair(2000, seq.DNA, routerModel(0.03), 21)
	if err != nil {
		t.Fatal(err)
	}
	divergent70A, divergent70B, err := seq.HomologousPair(2000, seq.DNA, routerModel(0.30), 22)
	if err != nil {
		t.Fatal(err)
	}
	protA, protB, err := seq.HomologousPair(2000, seq.Protein, routerModel(0.03), 23)
	if err != nil {
		t.Fatal(err)
	}
	short := seq.Random("s", 32, seq.DNA, 24)

	tests := []struct {
		name           string
		a, b           *seq.Sequence
		matrix         *scoring.Matrix
		gap            scoring.Gap
		mode           align.Mode
		explicitParams bool
		wantBackend    string
		wantReason     string
	}{
		{
			name: "low-divergence-to-wfa", a: similar95A, b: similar95B,
			matrix: dna, gap: gap,
			wantBackend: backend.NameWFA, wantReason: backend.ReasonLowDivergence,
		},
		{
			name: "low-divergence-affine-to-wfa", a: similar95A, b: similar95B,
			matrix: dna, gap: scoring.Affine(-6, -2),
			wantBackend: backend.NameWFA, wantReason: backend.ReasonLowDivergence,
		},
		{
			name: "high-divergence-to-fastlsa", a: divergent70A, b: divergent70B,
			matrix: dna, gap: gap,
			wantBackend: backend.NameFastLSA, wantReason: backend.ReasonHighDivergence,
		},
		{
			name: "ends-free-to-fastlsa", a: similar95A, b: similar95B,
			matrix: dna, gap: gap, mode: align.Overlap,
			wantBackend: backend.NameFastLSA, wantReason: backend.ReasonEndsFree,
		},
		{
			name: "explicit-params-to-fastlsa", a: similar95A, b: similar95B,
			matrix: dna, gap: gap, explicitParams: true,
			wantBackend: backend.NameFastLSA, wantReason: backend.ReasonExplicitParams,
		},
		{
			name: "non-uniform-matrix-to-fastlsa", a: protA, b: protB,
			matrix: scoring.BLOSUM62, gap: gap,
			wantBackend: backend.NameFastLSA, wantReason: backend.ReasonIncompatibleScoring,
		},
		{
			name: "short-input-to-fastlsa", a: short, b: short,
			matrix: dna, gap: gap,
			wantBackend: backend.NameFastLSA, wantReason: backend.ReasonSmallInput,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			r := backend.Decide(tc.a, tc.b, tc.matrix, tc.gap, tc.mode, tc.explicitParams)
			if r.Backend != tc.wantBackend || r.Reason != tc.wantReason {
				t.Fatalf("routed to %s (%s), want %s (%s); identity estimate %.3f",
					r.Backend, r.Reason, tc.wantBackend, tc.wantReason, r.Identity)
			}
			if r.Reason == backend.ReasonLowDivergence && r.Identity < backend.RouteIdentityThreshold {
				t.Fatalf("WFA route with identity %.3f below threshold", r.Identity)
			}
			if _, ok := backend.Lookup(r.Backend); !ok {
				t.Fatalf("routed to unregistered backend %q", r.Backend)
			}
		})
	}
}
