package backend

import (
	"fastlsa/internal/core"
	"fastlsa/internal/fm"
	"fastlsa/internal/hirschberg"
	"fastlsa/internal/seq"
	"fastlsa/internal/wfa"
)

// The built-in backends, registered in the order the facade's Algorithm
// enum expects. Each adapter reproduces the dispatch the facade's old
// Algorithm switch performed, byte-for-byte (pinned by the equivalence
// tests in the root package).
func init() {
	Register(Info{
		Name:    NameFastLSA,
		Aliases: []string{"lsa"},
		Summary: "FastLSA k-row grid cache (the paper's algorithm); plans to the memory budget under auto",
		Impl:    fastlsaBackend{},
	})
	Register(Info{
		Name:    NameFullMatrix,
		Aliases: []string{"full-matrix", "nw", "needleman-wunsch"},
		Summary: "Needleman-Wunsch full matrix; wavefront-parallel under linear gaps",
		Impl:    fmBackend{},
	})
	Register(Info{
		Name:    NameHirschberg,
		Aliases: []string{"mm", "myers-miller"},
		Summary: "Hirschberg divide-and-conquer (Myers-Miller under affine gaps), linear space",
		Impl:    hirschbergBackend{},
	})
	Register(Info{
		Name:    NameCompact,
		Aliases: []string{"fm-bits", "traceback-bits"},
		Summary: "full matrix with traceback bits (paper §2.1), one eighth the footprint; linear gaps only",
		Impl:    compactBackend{},
	})
	Register(Info{
		Name:    NameWFA,
		Aliases: []string{"wavefront"},
		Summary: "bidirectional wavefront alignment (BiWFA), O(ns) time and O(s) memory on low-divergence pairs; uniform match/mismatch matrices only",
		Impl:    wfaBackend{},
	})
}

type fastlsaBackend struct{}

func (fastlsaBackend) Name() string { return NameFastLSA }

func (fastlsaBackend) Caps() Capabilities {
	return Capabilities{EndsFree: true, AffineGaps: true, LinearSpace: true, Parallel: true, PlansToBudget: true}
}

func (fastlsaBackend) Align(a, b *seq.Sequence, req Request) (fm.Result, error) {
	copt, err := CoreOptions(req, a.Len(), b.Len())
	if err != nil {
		return fm.Result{}, err
	}
	if req.Mode.IsGlobal() {
		return core.Align(a, b, req.Matrix, req.Gap, copt)
	}
	return core.AlignMode(a, b, req.Matrix, req.Gap, req.Mode, copt)
}

type fmBackend struct{}

func (fmBackend) Name() string { return NameFullMatrix }

func (fmBackend) Caps() Capabilities {
	return Capabilities{EndsFree: true, AffineGaps: true, Parallel: true}
}

func (fmBackend) Align(a, b *seq.Sequence, req Request) (fm.Result, error) {
	budget, err := req.Budget()
	if err != nil {
		return fm.Result{}, err
	}
	switch {
	case !req.Mode.IsGlobal():
		return fm.AlignMode(a, b, req.Matrix, req.Gap, req.Mode, budget, req.Counters)
	case req.Workers > 1 && req.Gap.IsLinear():
		return fm.AlignParallel(a, b, req.Matrix, req.Gap, req.Workers, budget, req.Counters)
	default:
		return fm.Align(a, b, req.Matrix, req.Gap, budget, req.Counters)
	}
}

type hirschbergBackend struct{}

func (hirschbergBackend) Name() string { return NameHirschberg }

func (hirschbergBackend) Caps() Capabilities {
	return Capabilities{AffineGaps: true, LinearSpace: true}
}

func (hirschbergBackend) Align(a, b *seq.Sequence, req Request) (fm.Result, error) {
	return hirschberg.Align(a, b, req.Matrix, req.Gap, hirschberg.Options{BaseCells: req.BaseCells}, req.Counters)
}

type compactBackend struct{}

func (compactBackend) Name() string { return NameCompact }

func (compactBackend) Caps() Capabilities {
	return Capabilities{}
}

func (compactBackend) Align(a, b *seq.Sequence, req Request) (fm.Result, error) {
	budget, err := req.Budget()
	if err != nil {
		return fm.Result{}, err
	}
	return fm.AlignCompact(a, b, req.Matrix, req.Gap, budget, req.Counters)
}

type wfaBackend struct{}

func (wfaBackend) Name() string { return NameWFA }

func (wfaBackend) Caps() Capabilities {
	return Capabilities{AffineGaps: true, LinearSpace: true, UniformScoresOnly: true}
}

func (wfaBackend) Align(a, b *seq.Sequence, req Request) (fm.Result, error) {
	budget, err := req.Budget()
	if err != nil {
		return fm.Result{}, err
	}
	// BiAlign is the bidirectional (meet-in-the-middle) mode: same scores
	// and an equally optimal path as the unidirectional kernel, but O(s)
	// memory instead of the O(s²) retained wavefront history.
	return wfa.BiAlign(a, b, req.Matrix, req.Gap, wfa.Options{
		Budget:   budget,
		Counters: req.Counters,
		Trace:    req.Trace,
		Recorder: req.Recorder,
		Prof:     req.Prof,
	})
}
