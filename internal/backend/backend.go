// Package backend is the pluggable aligner layer behind the fastlsa facade:
// a Backend interface with declared capabilities, a registry the facade's
// Algorithm enum is derived from, and the divergence-adaptive router that
// picks a backend under AlgoAuto (docs/BACKENDS.md).
//
// The facade used to dispatch through a hard-coded Algorithm switch; every
// engine now registers here instead, so adding a backend is one Register
// call plus an enum constant — the name tables, capability checks and CLI
// help all derive from the registry.
package backend

import (
	"context"
	"fmt"

	"fastlsa/internal/align"
	"fastlsa/internal/core"
	"fastlsa/internal/fm"
	"fastlsa/internal/memory"
	"fastlsa/internal/obs"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/stats"
)

// Canonical backend names, in registry order. The facade's Algorithm enum
// mirrors this order (AlgoFastLSA = slot 0 + 1, ...), pinned by the
// registry round-trip test.
const (
	NameFastLSA    = "fastlsa"
	NameFullMatrix = "fm"
	NameHirschberg = "hirschberg"
	NameCompact    = "compact"
	NameWFA        = "wfa"
)

// Capabilities declares what a backend supports, so the facade and router
// can reject or re-route a request before the backend runs.
type Capabilities struct {
	// EndsFree: serves ends-free Modes in addition to global alignment.
	EndsFree bool
	// AffineGaps: serves affine gap models (linear is universal).
	AffineGaps bool
	// LinearSpace: memory grows sub-quadratically in the problem size.
	LinearSpace bool
	// Parallel: exploits Request.Workers > 1.
	Parallel bool
	// UniformScoresOnly: requires a uniform match/mismatch matrix
	// (WFA's penalty-model constraint; see wfa.FromScoring).
	UniformScoresOnly bool
	// PlansToBudget: adapts its parameters to fit Request.MemoryBudget
	// instead of failing when a fixed-shape run would not fit.
	PlansToBudget bool
}

// Request carries one alignment problem plus the resource and
// instrumentation hooks every backend threads through: a memory budget,
// cancellation-capable counters, and a trace.
type Request struct {
	// Matrix and Gap define the scoring system (both validated upstream by
	// the facade).
	Matrix *scoring.Matrix
	Gap    scoring.Gap
	// Mode selects ends-free alignment (zero value = global). Backends
	// without the EndsFree capability are never handed a non-global Mode.
	Mode align.Mode
	// Planned selects budget-planned parameters for the FastLSA backend
	// (core.PlanOptions, the AlgoAuto contract); other backends ignore it.
	Planned bool
	// MemoryBudget caps memory in DP entries (8 bytes each); 0 = unlimited.
	MemoryBudget int64
	// Workers is the parallelism degree (0 = GOMAXPROCS).
	Workers int
	// K and BaseCells override FastLSA's parameters (0 = defaults).
	K, BaseCells int
	// Counters collects instrumentation and carries cancellation.
	Counters *stats.Counters
	// Trace records solver spans.
	Trace *obs.Trace
	// Recorder, when non-nil, is the job's flight recorder (phase events,
	// degradation steps). Nil-safe.
	Recorder *obs.Recorder
	// Checkpoint, when non-nil, is the run's grid-cache checkpoint sink
	// (core.Options.Checkpoint): the FastLSA backend snapshots its root grid
	// at block-row boundaries and resumes from the sink's blob after a crash.
	// Backends without a grid cache ignore it.
	Checkpoint core.CheckpointSink
	// Prof, when non-nil, is the pprof-labelled base context for CPU
	// attribution (obs.ProfPhaseBegin); solver phases merge their
	// {backend, phase} labels into it.
	Prof context.Context
}

// Budget materialises the request's memory budget (nil = unlimited).
func (r Request) Budget() (*memory.Budget, error) {
	if r.MemoryBudget == 0 {
		return nil, nil
	}
	return memory.NewBudget(r.MemoryBudget)
}

// Backend is one alignment engine: it solves a global (or, with the
// EndsFree capability, ends-free) pairwise alignment exactly.
type Backend interface {
	Name() string
	Caps() Capabilities
	Align(a, b *seq.Sequence, req Request) (fm.Result, error)
}

// Info is one registry row.
type Info struct {
	// Name is the canonical backend name.
	Name string
	// Aliases are accepted alternative spellings (ParseAlgorithm).
	Aliases []string
	// Summary is a one-line description for CLI help and docs.
	Summary string
	// Impl is the backend itself.
	Impl Backend
}

var (
	registry []Info
	byName   = map[string]Backend{}
)

// Register adds a backend to the registry. Registration order is part of
// the facade contract (the Algorithm enum indexes it); duplicate names or
// aliases panic at init time.
func Register(info Info) {
	if info.Name == "" || info.Impl == nil {
		panic("backend: Register requires a name and an implementation")
	}
	if _, dup := byName[info.Name]; dup {
		panic(fmt.Sprintf("backend: duplicate name %q", info.Name))
	}
	registry = append(registry, info)
	byName[info.Name] = info.Impl
	for _, alias := range info.Aliases {
		if _, dup := byName[alias]; dup {
			panic(fmt.Sprintf("backend: duplicate alias %q", alias))
		}
		byName[alias] = info.Impl
	}
}

// All returns the registry rows in registration order.
func All() []Info {
	out := make([]Info, len(registry))
	copy(out, registry)
	return out
}

// Names returns the canonical backend names in registration order.
func Names() []string {
	out := make([]string, len(registry))
	for i, info := range registry {
		out[i] = info.Name
	}
	return out
}

// Lookup resolves a canonical name or alias to its backend.
func Lookup(name string) (Backend, bool) {
	b, ok := byName[name]
	return b, ok
}

// CoreOptions materialises core solver options from a Request: planned
// requests run core.PlanOptions against the memory budget (the AlgoAuto
// contract — explicit K/BaseCells overrides are planning inputs there, so
// an override can never push the run past the budget), unplanned requests
// take K/BaseCells literally with a fixed budget.
func CoreOptions(req Request, m, n int) (core.Options, error) {
	if req.Planned {
		copt, err := core.PlanOptions(m, n, req.MemoryBudget, req.Workers, !req.Gap.IsLinear(), req.K, req.BaseCells)
		if err != nil {
			return core.Options{}, err
		}
		copt.Counters = req.Counters
		copt.Trace = req.Trace
		copt.Recorder = req.Recorder
		copt.Prof = req.Prof
		copt.Checkpoint = req.Checkpoint
		return copt, nil
	}
	b, err := req.Budget()
	if err != nil {
		return core.Options{}, err
	}
	return core.Options{
		K:          req.K,
		BaseCells:  req.BaseCells,
		Budget:     b,
		Workers:    req.Workers,
		Counters:   req.Counters,
		Trace:      req.Trace,
		Recorder:   req.Recorder,
		Prof:       req.Prof,
		Checkpoint: req.Checkpoint,
	}, nil
}
