package backend

import (
	"fastlsa/internal/align"
	"fastlsa/internal/index"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/wfa"
)

// Routing reasons, surfaced through Options.Route, the backend.route trace
// span and the fastlsa_backend_total{backend,reason} metric.
const (
	// ReasonExplicit: the caller forced a backend (Algorithm != AlgoAuto).
	ReasonExplicit = "explicit"
	// ReasonLowDivergence: the q-gram identity estimate cleared
	// RouteIdentityThreshold, so the O(ns) WFA kernel wins.
	ReasonLowDivergence = "low-divergence"
	// ReasonHighDivergence: the identity estimate fell short, so the
	// budget-planned FastLSA engine is the safe choice.
	ReasonHighDivergence = "high-divergence"
	// ReasonIncompatibleScoring: the matrix or gap model has no exact WFA
	// penalty equivalent (wfa.FromScoring).
	ReasonIncompatibleScoring = "incompatible-scoring"
	// ReasonEndsFree: the request asked for an ends-free mode, which only
	// FastLSA serves under auto.
	ReasonEndsFree = "ends-free"
	// ReasonExplicitParams: the caller pinned FastLSA parameters (K or
	// BaseCells), which only make sense on the FastLSA backend.
	ReasonExplicitParams = "explicit-params"
	// ReasonSmallInput: the pair is too short for routing to matter (or for
	// the q-gram estimate to be meaningful).
	ReasonSmallInput = "small-input"
	// ReasonNoEstimate: the divergence could not be estimated, so routing
	// falls back to the engine that is never catastrophically wrong.
	ReasonNoEstimate = "no-estimate"
	// ReasonBudgetFallback: an auto-routed WFA run outgrew the memory
	// budget mid-flight and was rerun on budget-planned FastLSA.
	ReasonBudgetFallback = "budget-fallback"
)

// RouteIdentityThreshold is the estimated-identity floor for routing to
// WFA under AlgoAuto. WFA's time grows with the square of the unit-cost
// distance (cells ≈ E²/e), so the floor sits where the time crossover
// against FastLSA's flat mn cost lives: the E13/E15 curves put it near
// 0.70–0.75 identity. It used to be a memory-conservative 0.90 — the
// unidirectional kernel retained its whole O(s²) wavefront history — but
// the backend now serves the bidirectional BiWFA mode, whose memory is O(s)
// and comfortably below FastLSA's own footprint everywhere near the
// crossover, so time is the only axis left to be conservative about.
// ErrBudgetExceeded still falls back to budget-planned FastLSA as the
// safety net (ReasonBudgetFallback).
const RouteIdentityThreshold = 0.75

// MinRouteLen is the per-sequence length floor for WFA routing: below it a
// full DP is microseconds anyway and the q-gram estimate has too few grams
// to mean anything.
const MinRouteLen = 64

// Route is one routing decision.
type Route struct {
	// Backend is the canonical name of the chosen backend.
	Backend string
	// Reason is one of the Reason* constants.
	Reason string
	// Identity is the q-gram identity estimate that drove the decision
	// (0 when no estimate was made).
	Identity float64
}

// Decide picks the backend for an AlgoAuto request: WFA for long,
// WFA-compatible, low-divergence global pairs; budget-planned FastLSA for
// everything else. explicitParams reports whether the caller pinned K or
// BaseCells (FastLSA parameters, which force the FastLSA backend).
func Decide(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, mode align.Mode, explicitParams bool) Route {
	if !mode.IsGlobal() {
		return Route{Backend: NameFastLSA, Reason: ReasonEndsFree}
	}
	if explicitParams {
		return Route{Backend: NameFastLSA, Reason: ReasonExplicitParams}
	}
	if a == nil || b == nil || a.Len() < MinRouteLen || b.Len() < MinRouteLen {
		return Route{Backend: NameFastLSA, Reason: ReasonSmallInput}
	}
	if !wfa.Compatible(m, a.Alphabet, gap) {
		return Route{Backend: NameFastLSA, Reason: ReasonIncompatibleScoring}
	}
	identity, ok := index.EstimateIdentity(a, b, 0)
	if !ok {
		return Route{Backend: NameFastLSA, Reason: ReasonNoEstimate}
	}
	if identity >= RouteIdentityThreshold {
		return Route{Backend: NameWFA, Reason: ReasonLowDivergence, Identity: identity}
	}
	return Route{Backend: NameFastLSA, Reason: ReasonHighDivergence, Identity: identity}
}
