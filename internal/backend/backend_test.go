package backend_test

import (
	"testing"

	"fastlsa/internal/backend"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
)

// TestRegistryShape pins the registration order and alias sets the facade's
// Algorithm enum is derived from.
func TestRegistryShape(t *testing.T) {
	want := []string{
		backend.NameFastLSA,
		backend.NameFullMatrix,
		backend.NameHirschberg,
		backend.NameCompact,
		backend.NameWFA,
	}
	names := backend.Names()
	if len(names) != len(want) {
		t.Fatalf("registry has %d backends, want %d", len(names), len(want))
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("slot %d is %q, want %q", i, names[i], n)
		}
	}
	for _, info := range backend.All() {
		if info.Impl.Name() != info.Name {
			t.Fatalf("backend %q reports name %q", info.Name, info.Impl.Name())
		}
		if info.Summary == "" {
			t.Fatalf("backend %q has no summary", info.Name)
		}
		for _, alias := range append([]string{info.Name}, info.Aliases...) {
			impl, ok := backend.Lookup(alias)
			if !ok || impl != info.Impl {
				t.Fatalf("lookup %q does not resolve to backend %q", alias, info.Name)
			}
		}
	}
	if _, ok := backend.Lookup("auto"); ok {
		t.Fatal("auto is the router, not a backend")
	}
}

// TestCapabilities pins the capability matrix documented in
// docs/BACKENDS.md.
func TestCapabilities(t *testing.T) {
	caps := map[string]backend.Capabilities{}
	for _, info := range backend.All() {
		caps[info.Name] = info.Impl.Caps()
	}
	if c := caps[backend.NameFastLSA]; !c.EndsFree || !c.AffineGaps || !c.LinearSpace || !c.Parallel || !c.PlansToBudget || c.UniformScoresOnly {
		t.Fatalf("fastlsa caps %+v", c)
	}
	if c := caps[backend.NameFullMatrix]; !c.EndsFree || !c.AffineGaps || c.LinearSpace || !c.Parallel {
		t.Fatalf("fm caps %+v", c)
	}
	if c := caps[backend.NameHirschberg]; c.EndsFree || !c.AffineGaps || !c.LinearSpace {
		t.Fatalf("hirschberg caps %+v", c)
	}
	if c := caps[backend.NameCompact]; c.EndsFree || c.AffineGaps || c.LinearSpace {
		t.Fatalf("compact caps %+v", c)
	}
	if c := caps[backend.NameWFA]; c.EndsFree || !c.AffineGaps || !c.UniformScoresOnly {
		t.Fatalf("wfa caps %+v", c)
	}
}

// TestBackendsAgreeOnScore runs every registered backend on the same global
// problem and requires one optimal score from all of them.
func TestBackendsAgreeOnScore(t *testing.T) {
	a, b, err := seq.HomologousPair(180, seq.DNA, seq.DefaultHomology, 17)
	if err != nil {
		t.Fatal(err)
	}
	req := backend.Request{Matrix: scoring.DNASimple, Gap: scoring.Linear(-4), Workers: 1}
	scores := map[string]int64{}
	for _, info := range backend.All() {
		res, err := info.Impl.Align(a, b, req)
		if err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		if err := res.Path.Validate(a.Len(), b.Len()); err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		scores[info.Name] = res.Score
	}
	for name, s := range scores {
		if s != scores[backend.NameFastLSA] {
			t.Fatalf("scores disagree: %v (offender %s)", scores, name)
		}
	}
}
