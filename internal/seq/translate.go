package seq

import (
	"fmt"
	"strings"
)

// The standard genetic code. The paper's Table 1 cites exactly these codon
// assignments for its six example residues (A=GC*, D=GAT/GAC, K=AAA/AAG,
// L=TTA/TTG/CT*, T=AC*, V=GT*), which the tests pin.
var geneticCode = map[string]byte{
	"TTT": 'F', "TTC": 'F', "TTA": 'L', "TTG": 'L',
	"CTT": 'L', "CTC": 'L', "CTA": 'L', "CTG": 'L',
	"ATT": 'I', "ATC": 'I', "ATA": 'I', "ATG": 'M',
	"GTT": 'V', "GTC": 'V', "GTA": 'V', "GTG": 'V',
	"TCT": 'S', "TCC": 'S', "TCA": 'S', "TCG": 'S',
	"CCT": 'P', "CCC": 'P', "CCA": 'P', "CCG": 'P',
	"ACT": 'T', "ACC": 'T', "ACA": 'T', "ACG": 'T',
	"GCT": 'A', "GCC": 'A', "GCA": 'A', "GCG": 'A',
	"TAT": 'Y', "TAC": 'Y', "TAA": Stop, "TAG": Stop,
	"CAT": 'H', "CAC": 'H', "CAA": 'Q', "CAG": 'Q',
	"AAT": 'N', "AAC": 'N', "AAA": 'K', "AAG": 'K',
	"GAT": 'D', "GAC": 'D', "GAA": 'E', "GAG": 'E',
	"TGT": 'C', "TGC": 'C', "TGA": Stop, "TGG": 'W',
	"CGT": 'R', "CGC": 'R', "CGA": 'R', "CGG": 'R',
	"AGT": 'S', "AGC": 'S', "AGA": 'R', "AGG": 'R',
	"GGT": 'G', "GGC": 'G', "GGA": 'G', "GGG": 'G',
}

// Stop is the translation terminator marker returned by Codon for the three
// stop codons.
const Stop byte = '*'

// Codon translates one triplet (case-insensitive) under the standard
// genetic code, returning Stop for stop codons. Unknown or non-DNA triplets
// return an error.
func Codon(triplet string) (byte, error) {
	if len(triplet) != 3 {
		return 0, fmt.Errorf("seq: codon %q is not a triplet", triplet)
	}
	aa, ok := geneticCode[strings.ToUpper(triplet)]
	if !ok {
		return 0, fmt.Errorf("seq: unknown codon %q", triplet)
	}
	return aa, nil
}

// Translate converts a DNA sequence to protein in the given reading frame
// (0, 1 or 2), stopping at the first stop codon (which is not included).
// Trailing bases that do not fill a codon are ignored. The input must be
// over the plain DNA alphabet (ambiguity codes cannot be translated).
func Translate(s *Sequence, frame int) (*Sequence, error) {
	if frame < 0 || frame > 2 {
		return nil, fmt.Errorf("seq: reading frame %d, want 0..2", frame)
	}
	for _, c := range s.Residues {
		if !DNA.Contains(c) {
			return nil, fmt.Errorf("seq: Translate: %q is not a plain DNA base", c)
		}
	}
	out := make([]byte, 0, (s.Len()-frame)/3)
	for i := frame; i+3 <= s.Len(); i += 3 {
		aa, err := Codon(string(s.Residues[i : i+3]))
		if err != nil {
			return nil, err
		}
		if aa == Stop {
			break
		}
		out = append(out, aa)
	}
	id := s.ID
	if id != "" {
		id = fmt.Sprintf("%s_frame%d", id, frame)
	}
	return New(id, string(out), Protein)
}

// ReverseComplement returns the reverse complement of a DNA or IUPAC
// sequence (ambiguity codes complement to their set complements, e.g.
// R=AG -> Y=CT).
func ReverseComplement(s *Sequence) (*Sequence, error) {
	comp := func(c byte) (byte, bool) {
		switch c {
		case 'A':
			return 'T', true
		case 'T':
			return 'A', true
		case 'C':
			return 'G', true
		case 'G':
			return 'C', true
		case 'R':
			return 'Y', true
		case 'Y':
			return 'R', true
		case 'S':
			return 'S', true
		case 'W':
			return 'W', true
		case 'K':
			return 'M', true
		case 'M':
			return 'K', true
		case 'B':
			return 'V', true
		case 'V':
			return 'B', true
		case 'D':
			return 'H', true
		case 'H':
			return 'D', true
		case 'N':
			return 'N', true
		default:
			return 0, false
		}
	}
	out := make([]byte, s.Len())
	for i, c := range s.Residues {
		cc, ok := comp(c)
		if !ok {
			return nil, fmt.Errorf("seq: ReverseComplement: %q is not a nucleotide code", c)
		}
		out[s.Len()-1-i] = cc
	}
	id := s.ID
	if id != "" {
		id += "_rc"
	}
	return &Sequence{ID: id, Residues: out, Alphabet: s.Alphabet}, nil
}

// SixFrames translates all six reading frames (three forward, three on the
// reverse complement), the standard preprocessing step for searching DNA
// against a protein database.
func SixFrames(s *Sequence) ([]*Sequence, error) {
	rc, err := ReverseComplement(s)
	if err != nil {
		return nil, err
	}
	out := make([]*Sequence, 0, 6)
	for frame := 0; frame < 3; frame++ {
		f, err := Translate(s, frame)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
		r, err := Translate(rc, frame)
		if err != nil {
			return nil, err
		}
		if r.ID != "" {
			r.ID += "_rc"
		}
		out = append(out, r)
	}
	return out, nil
}
