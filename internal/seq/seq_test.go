package seq_test

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"fastlsa/internal/seq"
)

func TestNewValidates(t *testing.T) {
	if _, err := seq.New("x", "ACGT", seq.DNA); err != nil {
		t.Fatal(err)
	}
	if _, err := seq.New("x", "acgt", seq.DNA); err != nil {
		t.Fatalf("lowercase must canonicalise: %v", err)
	}
	if _, err := seq.New("x", "ACGU", seq.DNA); err == nil {
		t.Fatal("U must be rejected by the DNA alphabet")
	}
	if _, err := seq.New("x", "MKWV", seq.Protein); err != nil {
		t.Fatal(err)
	}
	if _, err := seq.New("x", "MKZ", seq.Protein); err == nil {
		t.Fatal("Z must be rejected by the protein alphabet")
	}
	s := seq.MustNew("x", "acgt", seq.DNA)
	if s.String() != "ACGT" {
		t.Fatalf("canonical form = %q", s.String())
	}
}

func TestAlphabet(t *testing.T) {
	if seq.DNA.Size() != 4 || seq.Protein.Size() != 20 {
		t.Fatalf("alphabet sizes: dna=%d protein=%d", seq.DNA.Size(), seq.Protein.Size())
	}
	if seq.DNA.Index('C') != 1 || seq.DNA.Index('c') != 1 {
		t.Fatal("Index must be case-insensitive")
	}
	if seq.DNA.Index('X') != -1 {
		t.Fatal("Index of a non-member must be -1")
	}
	if _, err := seq.NewAlphabet("dup", "AAB"); err == nil {
		t.Fatal("duplicate letters must be rejected")
	}
	if _, err := seq.NewAlphabet("empty", ""); err == nil {
		t.Fatal("empty alphabet must be rejected")
	}
	if a, err := seq.ParseAlphabet("protein"); err != nil || a != seq.Protein {
		t.Fatalf("ParseAlphabet(protein) = %v, %v", a, err)
	}
	if _, err := seq.ParseAlphabet("rna"); err == nil {
		t.Fatal("unknown alphabet name must be rejected")
	}
}

func TestReverseAndSlice(t *testing.T) {
	s := seq.MustNew("x", "ACGTT", seq.DNA)
	r := s.Reverse()
	if r.String() != "TTGCA" {
		t.Fatalf("reverse = %q", r.String())
	}
	if rr := r.Reverse(); rr.String() != s.String() {
		t.Fatalf("double reverse = %q", rr.String())
	}
	sub := s.Slice(1, 4)
	if sub.String() != "CGT" {
		t.Fatalf("slice = %q", sub.String())
	}
	comp := s.Composition()
	if comp['T'] != 2 || comp['A'] != 1 {
		t.Fatalf("composition = %v", comp)
	}
}

func TestFASTARoundTrip(t *testing.T) {
	a := seq.MustNew("chr1", strings.Repeat("ACGT", 100), seq.DNA)
	b := seq.MustNew("chr2", "GGGCCCAT", seq.DNA)
	var buf bytes.Buffer
	if err := seq.WriteFASTA(&buf, 60, a, b); err != nil {
		t.Fatal(err)
	}
	got, err := seq.ReadFASTA(&buf, seq.DNA)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("records = %d", len(got))
	}
	if got[0].ID != "chr1" || !seq.Equal(got[0], a) {
		t.Fatalf("record 0 mismatch: %s", got[0].ID)
	}
	if got[1].ID != "chr2" || !seq.Equal(got[1], b) {
		t.Fatalf("record 1 mismatch: %s", got[1].ID)
	}
}

func TestFASTAParsing(t *testing.T) {
	in := ">id1 description here\nACGT\nacgt\n\n; legacy comment\n>id2\nTTTT\n"
	got, err := seq.ReadFASTA(strings.NewReader(in), seq.DNA)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "id1" || got[0].String() != "ACGTACGT" || got[1].String() != "TTTT" {
		t.Fatalf("parsed %v", got)
	}

	bad := []string{
		"ACGT\n",      // data before header
		">\nACGT\n",   // empty header
		">ok\nACGU\n", // invalid residue
		"",            // no records
		">lonely header junkless\n>second\nAC\n>third\nGG\nXX\n", // invalid at end
	}
	for _, in := range bad {
		if _, err := seq.ReadFASTA(strings.NewReader(in), seq.DNA); err == nil {
			t.Fatalf("input %q must fail", in)
		}
	}
}

func TestRandomDeterminism(t *testing.T) {
	a := seq.Random("r", 500, seq.Protein, 42)
	b := seq.Random("r", 500, seq.Protein, 42)
	c := seq.Random("r", 500, seq.Protein, 43)
	if !seq.Equal(a, b) {
		t.Fatal("same seed must reproduce the sequence")
	}
	if seq.Equal(a, c) {
		t.Fatal("different seeds should differ")
	}
	for _, ch := range a.Residues {
		if !seq.Protein.Contains(ch) {
			t.Fatalf("letter %q outside alphabet", ch)
		}
	}
}

func TestRandomWeighted(t *testing.T) {
	w := []float64{8, 0, 0, 2} // A-heavy, no C/G
	s, err := seq.RandomWeighted("w", 4000, seq.DNA, w, 7)
	if err != nil {
		t.Fatal(err)
	}
	comp := s.Composition()
	if comp['C'] != 0 || comp['G'] != 0 {
		t.Fatalf("zero-weight letters appeared: %v", comp)
	}
	if frac := float64(comp['A']) / 4000; frac < 0.7 || frac > 0.9 {
		t.Fatalf("A fraction %.2f far from 0.8", frac)
	}
	if _, err := seq.RandomWeighted("w", 10, seq.DNA, []float64{1, 2}, 1); err == nil {
		t.Fatal("wrong weight count must fail")
	}
	if _, err := seq.RandomWeighted("w", 10, seq.DNA, []float64{-1, 1, 1, 1}, 1); err == nil {
		t.Fatal("negative weight must fail")
	}
	if _, err := seq.RandomWeighted("w", 10, seq.DNA, []float64{0, 0, 0, 0}, 1); err == nil {
		t.Fatal("zero-sum weights must fail")
	}
}

func TestMutationModel(t *testing.T) {
	ref := seq.Random("ref", 2000, seq.DNA, 21)
	mut, err := seq.DefaultHomology.Mutate("mut", ref, 22)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Equal(ref, mut) {
		t.Fatal("default model should perturb the sequence")
	}
	// Length stays in the same ballpark (indel rates are symmetric).
	if mut.Len() < ref.Len()*3/4 || mut.Len() > ref.Len()*5/4 {
		t.Fatalf("mutated length %d far from %d", mut.Len(), ref.Len())
	}
	// Identity mutation model is the identity function.
	id, err := seq.MutationModel{}.Mutate("id", ref, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(ref, id) {
		t.Fatal("zero-rate model must return the reference unchanged")
	}
	// Invalid rates fail.
	if _, err := (seq.MutationModel{SubstitutionRate: 1.5}).Mutate("x", ref, 1); err != nil {
		// expected
	} else {
		t.Fatal("rate > 1 must fail")
	}
}

func TestMutationDeterminism(t *testing.T) {
	ref := seq.Random("ref", 300, seq.Protein, 5)
	a, err := seq.DefaultHomology.Mutate("a", ref, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := seq.DefaultHomology.Mutate("b", ref, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("mutation must be deterministic for a fixed seed")
	}
}

// TestMutatePreservesAlphabet is a quick property: mutated output stays in
// the reference alphabet for arbitrary seeds.
func TestMutatePreservesAlphabet(t *testing.T) {
	ref := seq.Random("ref", 200, seq.DNA, 1)
	f := func(seed int64) bool {
		m, err := seq.DefaultHomology.Mutate("m", ref, seed)
		if err != nil {
			return false
		}
		for _, c := range m.Residues {
			if !seq.DNA.Contains(c) {
				return false
			}
		}
		return m.Len() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHomologousPair(t *testing.T) {
	a, b, err := seq.HomologousPair(400, seq.DNA, seq.DefaultHomology, 31)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 400 || b.Len() == 0 {
		t.Fatalf("lengths %d, %d", a.Len(), b.Len())
	}
}
