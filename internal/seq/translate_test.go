package seq_test

import (
	"strings"
	"testing"

	"fastlsa/internal/seq"
)

// TestPaperTable1Codons pins the codon assignments the paper's Table 1
// prints next to its six residues: A=GC*, D=GAT/GAC, K=AAA/AAG,
// L=TTA/TTG/CT*, T=AC*, V=GT*.
func TestPaperTable1Codons(t *testing.T) {
	cases := map[string]byte{
		"GCA": 'A', "GCC": 'A', "GCG": 'A', "GCT": 'A',
		"GAT": 'D', "GAC": 'D',
		"AAA": 'K', "AAG": 'K',
		"TTA": 'L', "TTG": 'L', "CTA": 'L', "CTC": 'L', "CTG": 'L', "CTT": 'L',
		"ACA": 'T', "ACC": 'T', "ACG": 'T', "ACT": 'T',
		"GTA": 'V', "GTC": 'V', "GTG": 'V', "GTT": 'V',
	}
	for codon, want := range cases {
		got, err := seq.Codon(codon)
		if err != nil {
			t.Fatalf("Codon(%s): %v", codon, err)
		}
		if got != want {
			t.Errorf("Codon(%s) = %c, want %c", codon, got, want)
		}
	}
	// Stops and case folding.
	for _, stop := range []string{"TAA", "TAG", "TGA", "taa"} {
		if got, err := seq.Codon(stop); err != nil || got != seq.Stop {
			t.Fatalf("Codon(%s) = %c, %v", stop, got, err)
		}
	}
	if _, err := seq.Codon("AC"); err == nil {
		t.Fatal("short codon must fail")
	}
	if _, err := seq.Codon("AXC"); err == nil {
		t.Fatal("unknown codon must fail")
	}
}

func TestTranslate(t *testing.T) {
	// ATG GAT AAA TTA GTT TAA -> M D K L V (stop).
	dna := seq.MustNew("gene", "ATGGATAAATTAGTTTAACCC", seq.DNA)
	prot, err := seq.Translate(dna, 0)
	if err != nil {
		t.Fatal(err)
	}
	if prot.String() != "MDKLV" {
		t.Fatalf("frame 0 = %q, want MDKLV", prot.String())
	}
	if prot.Alphabet != seq.Protein {
		t.Fatal("translation must be a protein sequence")
	}
	if !strings.Contains(prot.ID, "frame0") {
		t.Fatalf("id %q", prot.ID)
	}
	// Frame 1 shifts by one base; trailing partial codons ignored.
	p1, err := seq.Translate(dna, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Len() == 0 {
		t.Fatal("frame 1 empty")
	}
	// Invalid frames and non-DNA input.
	if _, err := seq.Translate(dna, 3); err == nil {
		t.Fatal("frame 3 must fail")
	}
	iupac := seq.MustNew("n", "ATGN", seq.DNAIUPAC)
	if _, err := seq.Translate(iupac, 0); err == nil {
		t.Fatal("ambiguity codes must fail to translate")
	}
}

func TestReverseComplement(t *testing.T) {
	s := seq.MustNew("s", "AACGTT", seq.DNA)
	rc, err := seq.ReverseComplement(s)
	if err != nil {
		t.Fatal(err)
	}
	if rc.String() != "AACGTT" { // palindrome
		t.Fatalf("rc = %q", rc.String())
	}
	s2 := seq.MustNew("s2", "AAACCC", seq.DNA)
	rc2, err := seq.ReverseComplement(s2)
	if err != nil {
		t.Fatal(err)
	}
	if rc2.String() != "GGGTTT" {
		t.Fatalf("rc2 = %q", rc2.String())
	}
	// Double reverse complement is the identity.
	back, err := seq.ReverseComplement(rc2)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Equal(back, s2) {
		t.Fatal("double rc not identity")
	}
	// IUPAC codes complement set-wise.
	amb := seq.MustNew("a", "RYN", seq.DNAIUPAC)
	rca, err := seq.ReverseComplement(amb)
	if err != nil {
		t.Fatal(err)
	}
	if rca.String() != "NRY" {
		t.Fatalf("iupac rc = %q", rca.String())
	}
	// Letters outside the nucleotide codes fail (M, K, W are also IUPAC
	// nucleotide codes, so use residues that are not).
	prot := seq.MustNew("p", "LEQ", seq.Protein)
	if _, err := seq.ReverseComplement(prot); err == nil {
		t.Fatal("non-nucleotide letters must fail")
	}
}

func TestSixFrames(t *testing.T) {
	dna := seq.Random("d", 120, seq.DNA, 55)
	frames, err := seq.SixFrames(dna)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 6 {
		t.Fatalf("%d frames", len(frames))
	}
	for i, f := range frames {
		if f.Alphabet != seq.Protein {
			t.Fatalf("frame %d not protein", i)
		}
		// Frames cannot be longer than len/3.
		if f.Len() > dna.Len()/3 {
			t.Fatalf("frame %d too long: %d", i, f.Len())
		}
	}
	// Forward frame 0 of an ORF with no stop covers the full length.
	orf := seq.MustNew("orf", strings.Repeat("GCT", 30), seq.DNA) // AAA... of alanines
	frames, err = seq.SixFrames(orf)
	if err != nil {
		t.Fatal(err)
	}
	if frames[0].String() != strings.Repeat("A", 30) {
		t.Fatalf("orf frame 0 = %q", frames[0].String())
	}
}
