package seq_test

import (
	"bytes"
	"strings"
	"testing"

	"fastlsa/internal/seq"
)

// FuzzReadFASTA: the parser never panics, and everything it accepts
// round-trips through WriteFASTA -> ReadFASTA unchanged.
func FuzzReadFASTA(f *testing.F) {
	f.Add(">a\nACGT\n")
	f.Add(">a desc\nAC\nGT\n>b\nTTTT\n")
	f.Add("; comment\n>x\n\n")
	f.Add("ACGT")
	f.Add(">")
	// Malformed headers: empty, unterminated, whitespace-only, non-ASCII.
	f.Add(">\nACGT\n")
	f.Add(">a")
	f.Add("> \t \nACGT\n")
	f.Add(">a\xffb\nACGT\n")
	// Partial and degenerate records: header with no residues, a record cut
	// mid-stream, residues before any header, blank-line and CRLF mixes,
	// interior whitespace in residue lines.
	f.Add(">a\n")
	f.Add(">a\nACGT\n>b")
	f.Add("ACGT\n>a\nACGT\n")
	f.Add("\n\n>a\n\nAC\n\nGT\n\n")
	f.Add(">a\r\nAC\r\nGT\r\n")
	f.Add(">a\nAC GT\n")
	f.Add(">a\nacgt\nNRYK\n")
	f.Fuzz(func(t *testing.T, in string) {
		recs, err := seq.ReadFASTA(strings.NewReader(in), seq.DNAIUPAC)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := seq.WriteFASTA(&buf, 60, recs...); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		again, err := seq.ReadFASTA(&buf, seq.DNAIUPAC)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip count %d != %d", len(again), len(recs))
		}
		for i := range recs {
			if !seq.Equal(recs[i], again[i]) {
				t.Fatalf("record %d diverged", i)
			}
		}
	})
}

// FuzzMutate: the mutation channel never panics and always emits residues of
// the reference alphabet.
func FuzzMutate(f *testing.F) {
	f.Add(int64(1), 0.1, 0.05, 0.05)
	f.Fuzz(func(t *testing.T, seed int64, sub, ins, del float64) {
		ref := seq.Random("r", 64, seq.DNA, 9)
		m := seq.MutationModel{SubstitutionRate: sub, InsertionRate: ins, DeletionRate: del, MaxIndelRun: 4, IndelExtend: 0.5}
		out, err := m.Mutate("m", ref, seed)
		if err != nil {
			return // invalid rates are rejected, not panicked on
		}
		if out.Len() == 0 {
			t.Fatal("empty mutation output")
		}
		for _, c := range out.Residues {
			if !seq.DNA.Contains(c) {
				t.Fatalf("letter %q outside alphabet", c)
			}
		}
	})
}
