package seq

import (
	"fmt"
	"math/rand"
)

// Random returns a sequence of n i.i.d. uniform residues drawn from the
// alphabet using the given seed. Deterministic for a fixed (seed, n, a).
func Random(id string, n int, a *Alphabet, seed int64) *Sequence {
	if a == nil {
		a = DNA
	}
	rng := rand.New(rand.NewSource(seed))
	res := make([]byte, n)
	for i := range res {
		res[i] = a.Letters[rng.Intn(len(a.Letters))]
	}
	return &Sequence{ID: id, Residues: res, Alphabet: a}
}

// RandomWeighted returns a sequence of n residues drawn from the alphabet with
// the supplied per-letter weights (parallel to a.Letters). Weights need not be
// normalised; they must be non-negative with a positive sum.
func RandomWeighted(id string, n int, a *Alphabet, weights []float64, seed int64) (*Sequence, error) {
	if a == nil {
		a = DNA
	}
	if len(weights) != a.Size() {
		return nil, fmt.Errorf("seq: RandomWeighted: %d weights for alphabet of size %d", len(weights), a.Size())
	}
	var total float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("seq: RandomWeighted: negative weight %g for letter %q", w, a.Letters[i])
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("seq: RandomWeighted: weights sum to %g, want > 0", total)
	}
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	cum[len(cum)-1] = 1.0 // guard against rounding
	rng := rand.New(rand.NewSource(seed))
	res := make([]byte, n)
	for i := range res {
		u := rng.Float64()
		j := 0
		for cum[j] < u {
			j++
		}
		res[i] = a.Letters[j]
	}
	return &Sequence{ID: id, Residues: res, Alphabet: a}, nil
}

// MutationModel is a point-substitution / indel channel. It derives a second
// sequence from a reference so that the pair has a controlled level of
// homology, which is the property that matters for alignment-path structure.
// This is the synthetic stand-in for the paper's biological test pairs
// (DESIGN.md §4).
type MutationModel struct {
	// SubstitutionRate is the per-residue probability of replacing the
	// residue with a uniformly chosen different letter.
	SubstitutionRate float64
	// InsertionRate is the per-position probability of inserting a run of
	// random residues after the current residue.
	InsertionRate float64
	// DeletionRate is the per-residue probability of dropping the residue.
	DeletionRate float64
	// MaxIndelRun bounds the geometric run length of a single insertion or
	// deletion event (<=0 selects 1).
	MaxIndelRun int
	// IndelExtend is the probability of extending an indel run by one more
	// residue (geometric runs; 0 gives runs of exactly one).
	IndelExtend float64
}

// Validate reports the first invalid field.
func (m MutationModel) Validate() error {
	check := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("seq: MutationModel.%s = %g out of [0,1]", name, v)
		}
		return nil
	}
	if err := check("SubstitutionRate", m.SubstitutionRate); err != nil {
		return err
	}
	if err := check("InsertionRate", m.InsertionRate); err != nil {
		return err
	}
	if err := check("DeletionRate", m.DeletionRate); err != nil {
		return err
	}
	if err := check("IndelExtend", m.IndelExtend); err != nil {
		return err
	}
	return nil
}

// DefaultHomology is a mutation model producing pairs of roughly 70-80%
// identity, comparable to the related biological pairs used in alignment
// benchmarking.
var DefaultHomology = MutationModel{
	SubstitutionRate: 0.15,
	InsertionRate:    0.02,
	DeletionRate:     0.02,
	MaxIndelRun:      8,
	IndelExtend:      0.5,
}

// Mutate applies the channel to ref and returns the derived sequence.
// Deterministic for a fixed (ref, model, seed).
func (m MutationModel) Mutate(id string, ref *Sequence, seed int64) (*Sequence, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	a := ref.Alphabet
	if a.Size() < 2 && m.SubstitutionRate > 0 {
		return nil, fmt.Errorf("seq: Mutate: alphabet %s too small for substitutions", a.Name)
	}
	maxRun := m.MaxIndelRun
	if maxRun <= 0 {
		maxRun = 1
	}
	rng := rand.New(rand.NewSource(seed))
	runLen := func() int {
		n := 1
		for n < maxRun && rng.Float64() < m.IndelExtend {
			n++
		}
		return n
	}
	out := make([]byte, 0, ref.Len()+ref.Len()/8)
	for i := 0; i < ref.Len(); i++ {
		c := ref.Residues[i]
		switch {
		case rng.Float64() < m.DeletionRate:
			// drop c (and possibly a run of following residues)
			i += runLen() - 1
			continue
		case rng.Float64() < m.SubstitutionRate:
			out = append(out, otherLetter(a, c, rng))
		default:
			out = append(out, c)
		}
		if rng.Float64() < m.InsertionRate {
			for j, n := 0, runLen(); j < n; j++ {
				out = append(out, a.Letters[rng.Intn(a.Size())])
			}
		}
	}
	if len(out) == 0 {
		// Degenerate channel (e.g. DeletionRate=1); keep one residue so the
		// result is a usable sequence.
		out = append(out, ref.Residues[0])
	}
	return &Sequence{ID: id, Residues: out, Alphabet: a}, nil
}

// HomologousPair generates a reference of length n and a mutated partner in
// one call. The partner's length varies around n according to the model.
func HomologousPair(n int, a *Alphabet, model MutationModel, seed int64) (*Sequence, *Sequence, error) {
	ref := Random(fmt.Sprintf("ref_%d", n), n, a, seed)
	mut, err := model.Mutate(fmt.Sprintf("hom_%d", n), ref, seed+1)
	if err != nil {
		return nil, nil, err
	}
	return ref, mut, nil
}

func otherLetter(a *Alphabet, c byte, rng *rand.Rand) byte {
	for {
		l := a.Letters[rng.Intn(a.Size())]
		if l != c {
			return l
		}
	}
}
