package seq

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// ReadFASTA parses all records from r. Each record is validated against the
// alphabet. Header lines start with '>'; the ID is the first whitespace-
// separated token of the header. Blank lines are ignored; ';' comment lines
// (legacy FASTA) are skipped.
func ReadFASTA(r io.Reader, a *Alphabet) ([]*Sequence, error) {
	if a == nil {
		a = DNA
	}
	var (
		out    []*Sequence
		id     string
		desc   bool
		body   bytes.Buffer
		lineNo int
	)
	flush := func() error {
		if !desc {
			return nil
		}
		s, err := New(id, body.String(), a)
		if err != nil {
			return err
		}
		out = append(out, s)
		body.Reset()
		desc = false
		return nil
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, ";"):
			continue
		case strings.HasPrefix(line, ">"):
			if err := flush(); err != nil {
				return nil, err
			}
			header := strings.TrimSpace(line[1:])
			if header == "" {
				return nil, fmt.Errorf("seq: fasta line %d: empty header", lineNo)
			}
			id = strings.Fields(header)[0]
			desc = true
		default:
			if !desc {
				return nil, fmt.Errorf("seq: fasta line %d: sequence data before first header", lineNo)
			}
			body.WriteString(line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seq: fasta read: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("seq: fasta input contains no records")
	}
	return out, nil
}

// WriteFASTA renders records to w, wrapping residue lines at width columns
// (width <= 0 selects the conventional 70).
func WriteFASTA(w io.Writer, width int, seqs ...*Sequence) error {
	if width <= 0 {
		width = 70
	}
	bw := bufio.NewWriter(w)
	for i, s := range seqs {
		id := s.ID
		if id == "" {
			id = fmt.Sprintf("seq%d", i+1)
		}
		if _, err := fmt.Fprintf(bw, ">%s\n", id); err != nil {
			return err
		}
		for off := 0; off < len(s.Residues); off += width {
			end := off + width
			if end > len(s.Residues) {
				end = len(s.Residues)
			}
			if _, err := bw.Write(s.Residues[off:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
		if s.Len() == 0 {
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
