// Package seq provides the biological-sequence substrate used throughout the
// FastLSA reproduction: residue alphabets, validated sequences, FASTA I/O,
// seeded random sequence generators, and a homology mutation channel that
// derives realistic "related pair" workloads (the stand-in for the paper's
// proprietary biological test data; see DESIGN.md §4).
package seq

import (
	"fmt"
	"strings"
)

// Sequence is a validated residue string over a specific Alphabet.
// The zero value is an empty DNA sequence and is ready to use.
type Sequence struct {
	// ID is an optional identifier (FASTA header, generator tag, ...).
	ID string
	// Residues holds the residue letters, one byte each, already validated
	// against Alphabet (uppercase canonical form).
	Residues []byte
	// Alphabet describes the residue universe of this sequence.
	Alphabet *Alphabet
}

// New validates letters against the alphabet and returns a Sequence.
// Lowercase input letters are canonicalised to uppercase. An error names the
// first offending letter and its position.
func New(id string, letters string, a *Alphabet) (*Sequence, error) {
	if a == nil {
		a = DNA
	}
	res := make([]byte, len(letters))
	for i := 0; i < len(letters); i++ {
		c := upper(letters[i])
		if !a.Contains(c) {
			return nil, fmt.Errorf("seq: sequence %q: letter %q at position %d not in alphabet %s", id, letters[i], i, a.Name)
		}
		res[i] = c
	}
	return &Sequence{ID: id, Residues: res, Alphabet: a}, nil
}

// MustNew is New but panics on invalid input. For tests and examples.
func MustNew(id string, letters string, a *Alphabet) *Sequence {
	s, err := New(id, letters, a)
	if err != nil {
		panic(err)
	}
	return s
}

// Len reports the number of residues.
func (s *Sequence) Len() int { return len(s.Residues) }

// At returns the residue at position i (0-based).
func (s *Sequence) At(i int) byte { return s.Residues[i] }

// String renders the residues as a plain string.
func (s *Sequence) String() string { return string(s.Residues) }

// Clone returns a deep copy of the sequence.
func (s *Sequence) Clone() *Sequence {
	r := make([]byte, len(s.Residues))
	copy(r, s.Residues)
	return &Sequence{ID: s.ID, Residues: r, Alphabet: s.Alphabet}
}

// Reverse returns a new sequence with the residues in reverse order.
// Hirschberg-style algorithms align one half against a reversed sequence.
func (s *Sequence) Reverse() *Sequence {
	r := make([]byte, len(s.Residues))
	for i, c := range s.Residues {
		r[len(r)-1-i] = c
	}
	id := s.ID
	if id != "" {
		id += "_rev"
	}
	return &Sequence{ID: id, Residues: r, Alphabet: s.Alphabet}
}

// Slice returns the subsequence covering residues [lo, hi) as a view
// (no copy). The returned sequence shares backing storage with s.
func (s *Sequence) Slice(lo, hi int) *Sequence {
	return &Sequence{ID: s.ID, Residues: s.Residues[lo:hi], Alphabet: s.Alphabet}
}

// Equal reports whether two sequences have identical residues.
func Equal(a, b *Sequence) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Residues {
		if a.Residues[i] != b.Residues[i] {
			return false
		}
	}
	return true
}

// Composition counts each residue letter.
func (s *Sequence) Composition() map[byte]int {
	m := make(map[byte]int, len(s.Alphabet.Letters))
	for _, c := range s.Residues {
		m[c]++
	}
	return m
}

func upper(c byte) byte {
	if 'a' <= c && c <= 'z' {
		return c - 'a' + 'A'
	}
	return c
}

// Alphabet is a residue universe. Letters are canonical uppercase bytes.
type Alphabet struct {
	// Name identifies the alphabet ("dna", "protein", ...).
	Name string
	// Letters is the ordered canonical letter set.
	Letters []byte

	member [256]bool
	index  [256]int8
}

// NewAlphabet builds an alphabet from a letter string. Duplicate letters are
// rejected; letters are canonicalised to uppercase.
func NewAlphabet(name, letters string) (*Alphabet, error) {
	if letters == "" {
		return nil, fmt.Errorf("seq: alphabet %q has no letters", name)
	}
	a := &Alphabet{Name: name}
	for i := range a.index {
		a.index[i] = -1
	}
	for i := 0; i < len(letters); i++ {
		c := upper(letters[i])
		if a.member[c] {
			return nil, fmt.Errorf("seq: alphabet %q: duplicate letter %q", name, c)
		}
		a.member[c] = true
		a.index[c] = int8(len(a.Letters))
		a.Letters = append(a.Letters, c)
	}
	return a, nil
}

func mustAlphabet(name, letters string) *Alphabet {
	a, err := NewAlphabet(name, letters)
	if err != nil {
		panic(err)
	}
	return a
}

// Contains reports whether c (case-insensitively) is a letter of the alphabet.
func (a *Alphabet) Contains(c byte) bool { return a.member[upper(c)] }

// Index returns the 0-based position of c within the alphabet letters, or -1.
func (a *Alphabet) Index(c byte) int { return int(a.index[upper(c)]) }

// Size reports the number of letters.
func (a *Alphabet) Size() int { return len(a.Letters) }

// String implements fmt.Stringer.
func (a *Alphabet) String() string {
	return fmt.Sprintf("%s[%s]", a.Name, string(a.Letters))
}

// Standard alphabets.
var (
	// DNA is the four-nucleotide alphabet.
	DNA = mustAlphabet("dna", "ACGT")
	// DNAIUPAC extends DNA with the eleven IUPAC ambiguity codes
	// (R=AG, Y=CT, S=GC, W=AT, K=GT, M=AC, B=CGT, D=AGT, H=ACT, V=ACG,
	// N=ACGT), as real sequencing data contains them.
	DNAIUPAC = mustAlphabet("dna-iupac", "ACGTRYSWKMBDHVN")
	// Protein is the 20-residue amino-acid alphabet in the conventional
	// single-letter order used by scoring matrices in internal/scoring.
	Protein = mustAlphabet("protein", "ARNDCQEGHILKMFPSTWYV")
)

// IUPACBases expands an IUPAC nucleotide code to its concrete base set
// (e.g. 'R' -> "AG"; plain bases map to themselves). Unknown codes return "".
func IUPACBases(code byte) string {
	switch upper(code) {
	case 'A':
		return "A"
	case 'C':
		return "C"
	case 'G':
		return "G"
	case 'T':
		return "T"
	case 'R':
		return "AG"
	case 'Y':
		return "CT"
	case 'S':
		return "GC"
	case 'W':
		return "AT"
	case 'K':
		return "GT"
	case 'M':
		return "AC"
	case 'B':
		return "CGT"
	case 'D':
		return "AGT"
	case 'H':
		return "ACT"
	case 'V':
		return "ACG"
	case 'N':
		return "ACGT"
	default:
		return ""
	}
}

// ParseAlphabet resolves an alphabet by name ("dna" or "protein").
func ParseAlphabet(name string) (*Alphabet, error) {
	switch strings.ToLower(name) {
	case "dna", "nucleotide":
		return DNA, nil
	case "dna-iupac", "iupac":
		return DNAIUPAC, nil
	case "protein", "aa", "amino":
		return Protein, nil
	default:
		return nil, fmt.Errorf("seq: unknown alphabet %q (want dna, dna-iupac or protein)", name)
	}
}
