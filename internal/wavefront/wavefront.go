// Package wavefront implements the diagonal-wavefront parallel execution
// substrate of the paper's §5 (Figures 7 and 13): a rectangular grid of
// tiles, where tile (r,c) depends on its left neighbour (r,c-1) and its up
// neighbour (r-1,c), executed by a fixed pool of P workers. Tiles on the same
// anti-diagonal are independent and run in parallel.
//
// The package also provides the phase accounting of Figure 13: wavefront
// lines (anti-diagonals) holding fewer than P tiles at the start form phase
// 1 (ramp-up), trailing lines with fewer than P tiles form phase 3
// (ramp-down), and the saturated middle is phase 2 — the "true parallel
// phase" of the paper's Theorem 4 analysis.
package wavefront

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ErrTilePanic is the sentinel wrapped by the error Run returns when a tile's
// Exec panicked. The panic is confined to that run: the worker that caught it
// keeps draining (so the dependency counters never wedge), the remaining
// tiles are cancelled, and Run returns normally — callers' deferred cleanup
// (budget releases, pool returns) executes as for any other tile error.
var ErrTilePanic = errors.New("wavefront: tile panicked")

// PanicError is the error Run returns for a panicking tile. It wraps
// ErrTilePanic (test with errors.Is) and carries the tile, the recovered
// value and the goroutine stack at the point of the panic.
type PanicError struct {
	// R, C locate the tile that panicked.
	R, C int
	// Value is the recovered panic value.
	Value any
	// Stack is the worker goroutine's stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("wavefront: tile (%d,%d) panicked: %v", e.R, e.C, e.Value)
}

// Unwrap makes errors.Is(err, ErrTilePanic) work through the chain.
func (e *PanicError) Unwrap() error { return ErrTilePanic }

// Grid describes a tile grid execution.
type Grid struct {
	// Rows and Cols give the tile-grid dimensions (both >= 1).
	Rows, Cols int
	// Workers is the number of parallel workers P (<= 0 selects GOMAXPROCS).
	Workers int
	// Skip, when non-nil, marks tiles that must not be executed. Skipped
	// tiles are treated as instantly complete for dependency purposes
	// (FastLSA skips the tiles of the bottom-right block during Fill Cache).
	Skip func(r, c int) bool
	// Exec runs one tile. It is called at most once per non-skipped tile,
	// possibly concurrently with other tiles on the same wavefront line.
	// The first error cancels the run: no new tiles start, and Run returns
	// that error after in-flight tiles finish.
	Exec func(r, c int) error
	// ExecW, when non-nil, is used instead of Exec and additionally receives
	// the 0-based worker lane executing the tile — the hook run tracing uses
	// to attribute tiles to workers without per-tile goroutine lookups.
	ExecW func(worker, r, c int) error
}

// Run executes the grid and returns the first tile error, if any.
func (g *Grid) Run() error {
	if g.Rows < 1 || g.Cols < 1 {
		return fmt.Errorf("wavefront: grid %dx%d must be at least 1x1", g.Rows, g.Cols)
	}
	if g.Exec == nil && g.ExecW == nil {
		return fmt.Errorf("wavefront: nil Exec")
	}
	workers := g.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	total := g.Rows * g.Cols
	if workers > total {
		workers = total
	}

	// Per-tile remaining-dependency counters.
	deps := make([]int32, total)
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			var d int32
			if r > 0 {
				d++
			}
			if c > 0 {
				d++
			}
			deps[r*g.Cols+c] = d
		}
	}

	ready := make(chan int, total)
	ready <- 0 // tile (0,0)

	var (
		firstErr  atomic.Value
		cancelled atomic.Bool
		done      atomic.Int64
		wg        sync.WaitGroup
	)

	// exec runs one tile with panic isolation: a panicking Exec must not take
	// down the process (the pool goroutines are not covered by any caller's
	// recover) and must not skip the completion bookkeeping below, or the
	// dependency counters would never drain and Run would hang.
	exec := func(lane, r, c int) (err error) {
		defer func() {
			if v := recover(); v != nil {
				err = &PanicError{R: r, C: c, Value: v, Stack: debug.Stack()}
			}
		}()
		if g.ExecW != nil {
			return g.ExecW(lane, r, c)
		}
		return g.Exec(r, c)
	}

	complete := func(idx int) {
		// Release dependents; enqueue any that become ready.
		r, c := idx/g.Cols, idx%g.Cols
		if c+1 < g.Cols {
			if atomic.AddInt32(&deps[idx+1], -1) == 0 {
				ready <- idx + 1
			}
		}
		if r+1 < g.Rows {
			if atomic.AddInt32(&deps[idx+g.Cols], -1) == 0 {
				ready <- idx + g.Cols
			}
		}
		if done.Add(1) == int64(total) {
			close(ready)
		}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for idx := range ready {
				r, c := idx/g.Cols, idx%g.Cols
				skipped := g.Skip != nil && g.Skip(r, c)
				if !skipped && !cancelled.Load() {
					if err := exec(lane, r, c); err != nil {
						if cancelled.CompareAndSwap(false, true) {
							firstErr.Store(err)
						}
					}
				}
				complete(idx)
			}
		}(w)
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return err
	}
	return nil
}

// Phases classifies the grid's wavefront lines into the three phases of
// Figure 13 for P workers, counting only non-skipped tiles.
type Phases struct {
	// Lines1, Lines2, Lines3 count wavefront lines per phase.
	Lines1, Lines2, Lines3 int
	// Tiles1, Tiles2, Tiles3 count tiles per phase.
	Tiles1, Tiles2, Tiles3 int64
}

// Total reports the total non-skipped tile count.
func (p Phases) Total() int64 { return p.Tiles1 + p.Tiles2 + p.Tiles3 }

// PhaseOfDiagonal reports which Figure 13 phase anti-diagonal d of a grid
// with the given diagonal count belongs to (1 ramp-up, 2 saturated, 3
// ramp-down). The phases are contiguous diagonal ranges by construction, so
// the first Lines1 diagonals are phase 1 and the last Lines3 are phase 3.
func (p Phases) PhaseOfDiagonal(d, diagonals int) int {
	if d < p.Lines1 {
		return 1
	}
	if d >= diagonals-p.Lines3 {
		return 3
	}
	return 2
}

// ClassifyPhases computes the Figure 13 phase decomposition: the leading
// anti-diagonals holding fewer than P tiles form phase 1, the trailing ones
// with fewer than P tiles form phase 3, and everything between is phase 2.
// Empty diagonals (all tiles skipped) at the edges belong to the adjacent
// ramp phase.
func ClassifyPhases(rows, cols, workers int, skip func(r, c int) bool) Phases {
	if workers < 1 {
		workers = 1
	}
	nd := rows + cols - 1
	counts := make([]int64, nd)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if skip != nil && skip(r, c) {
				continue
			}
			counts[r+c]++
		}
	}
	var p Phases
	lo := 0
	for lo < nd && counts[lo] < int64(workers) {
		p.Lines1++
		p.Tiles1 += counts[lo]
		lo++
	}
	hi := nd - 1
	for hi >= lo && counts[hi] < int64(workers) {
		p.Lines3++
		p.Tiles3 += counts[hi]
		hi--
	}
	for d := lo; d <= hi; d++ {
		p.Lines2++
		p.Tiles2 += counts[d]
	}
	return p
}

// DiagonalOrder returns the tiles in sequential wavefront order (Figure 7):
// anti-diagonal by anti-diagonal, top-to-bottom within a diagonal. Used by
// tests and by deterministic single-threaded fills.
func DiagonalOrder(rows, cols int) [][2]int {
	out := make([][2]int, 0, rows*cols)
	for d := 0; d < rows+cols-1; d++ {
		rLo := d - (cols - 1)
		if rLo < 0 {
			rLo = 0
		}
		rHi := d
		if rHi > rows-1 {
			rHi = rows - 1
		}
		for r := rLo; r <= rHi; r++ {
			out = append(out, [2]int{r, d - r})
		}
	}
	return out
}
