package wavefront

import (
	"sync"
	"testing"
)

func TestPhaseOfDiagonal(t *testing.T) {
	// 6x6 grid, 3 workers: diagonals 0,1 hold 1,2 tiles (phase 1), diagonals
	// 9,10 hold 2,1 (phase 3), everything between is saturated (phase 2).
	p := ClassifyPhases(6, 6, 3, nil)
	nd := 6 + 6 - 1
	var tiles [4]int64
	for d := 0; d < nd; d++ {
		lo, hi := d-5, d
		if lo < 0 {
			lo = 0
		}
		if hi > 5 {
			hi = 5
		}
		tiles[p.PhaseOfDiagonal(d, nd)] += int64(hi - lo + 1)
	}
	if tiles[1] != p.Tiles1 || tiles[2] != p.Tiles2 || tiles[3] != p.Tiles3 {
		t.Errorf("per-diagonal phases give tiles %v, want %d/%d/%d",
			tiles[1:], p.Tiles1, p.Tiles2, p.Tiles3)
	}
	if p.PhaseOfDiagonal(0, nd) != 1 || p.PhaseOfDiagonal(nd-1, nd) != 3 {
		t.Error("edge diagonals not in ramp phases")
	}
	if p.PhaseOfDiagonal(nd/2, nd) != 2 {
		t.Error("middle diagonal not in saturated phase")
	}
}

func TestExecWReceivesWorkerLanes(t *testing.T) {
	const workers = 4
	var mu sync.Mutex
	lanes := map[int]int{}
	g := &Grid{
		Rows: 16, Cols: 16, Workers: workers,
		ExecW: func(w, r, c int) error {
			mu.Lock()
			lanes[w]++
			mu.Unlock()
			return nil
		},
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	var total int
	for w, n := range lanes {
		if w < 0 || w >= workers {
			t.Errorf("worker lane %d out of range [0,%d)", w, workers)
		}
		total += n
	}
	if total != 16*16 {
		t.Errorf("executed %d tiles, want 256", total)
	}
}
