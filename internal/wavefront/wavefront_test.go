package wavefront_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"fastlsa/internal/wavefront"
)

// TestRunRespectsDependencies executes a grid and records completion order;
// every tile must complete after its up and left neighbours.
func TestRunRespectsDependencies(t *testing.T) {
	const rows, cols = 13, 9
	var mu sync.Mutex
	order := make(map[[2]int]int)
	step := 0
	g := &wavefront.Grid{
		Rows:    rows,
		Cols:    cols,
		Workers: 4,
		Exec: func(r, c int) error {
			mu.Lock()
			order[[2]int{r, c}] = step
			step++
			mu.Unlock()
			return nil
		},
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != rows*cols {
		t.Fatalf("executed %d tiles, want %d", len(order), rows*cols)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if r > 0 && order[[2]int{r - 1, c}] > order[[2]int{r, c}] {
				t.Fatalf("tile (%d,%d) ran before its up-dependency", r, c)
			}
			if c > 0 && order[[2]int{r, c - 1}] > order[[2]int{r, c}] {
				t.Fatalf("tile (%d,%d) ran before its left-dependency", r, c)
			}
		}
	}
}

func TestRunSkip(t *testing.T) {
	var count atomic.Int64
	skip := func(r, c int) bool { return r >= 2 && c >= 2 }
	g := &wavefront.Grid{
		Rows: 4, Cols: 4, Workers: 3,
		Skip: skip,
		Exec: func(r, c int) error {
			if skip(r, c) {
				t.Errorf("skipped tile (%d,%d) executed", r, c)
			}
			count.Add(1)
			return nil
		},
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 12 {
		t.Fatalf("executed %d tiles, want 12", count.Load())
	}
}

func TestRunErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	var after atomic.Int64
	g := &wavefront.Grid{
		Rows: 20, Cols: 20, Workers: 4,
		Exec: func(r, c int) error {
			if r == 1 && c == 1 {
				return boom
			}
			after.Add(1)
			return nil
		},
	}
	err := g.Run()
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want boom", err)
	}
	// Cancellation is best-effort but must prevent most of the grid.
	if after.Load() == 20*20-1 {
		t.Fatal("cancellation had no effect")
	}
}

func TestRunValidation(t *testing.T) {
	if err := (&wavefront.Grid{Rows: 0, Cols: 3, Exec: func(int, int) error { return nil }}).Run(); err == nil {
		t.Fatal("0 rows must fail")
	}
	if err := (&wavefront.Grid{Rows: 3, Cols: 3}).Run(); err == nil {
		t.Fatal("nil Exec must fail")
	}
}

func TestRunSingleTile(t *testing.T) {
	ran := false
	g := &wavefront.Grid{Rows: 1, Cols: 1, Workers: 8, Exec: func(r, c int) error {
		ran = true
		return nil
	}}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("single tile did not run")
	}
}

// TestDiagonalOrder checks the Figure 7 sequential wavefront enumeration.
func TestDiagonalOrder(t *testing.T) {
	got := wavefront.DiagonalOrder(2, 3)
	want := [][2]int{{0, 0}, {0, 1}, {1, 0}, {0, 2}, {1, 1}, {1, 2}}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestClassifyPhasesFigure13 reproduces the paper's Figure 13 configuration:
// P=8 workers, k=6, u=2, v=3 gives a 12x18 tile grid whose bottom-right
// block (2x3 tiles) is skipped. Phase 1 must hold P(P-1)/2 = 28 tiles
// (wavefront lines of 1..P-1 tiles) and the phase partition must cover all
// R*C - u*v tiles.
func TestClassifyPhasesFigure13(t *testing.T) {
	const P, k, u, v = 8, 6, 2, 3
	R, C := k*u, k*v
	skip := func(r, c int) bool { return r >= (k-1)*u && c >= (k-1)*v }
	ph := wavefront.ClassifyPhases(R, C, P, skip)
	if ph.Total() != int64(R*C-u*v) {
		t.Fatalf("total = %d, want %d", ph.Total(), R*C-u*v)
	}
	if ph.Tiles1 != P*(P-1)/2 {
		t.Fatalf("phase 1 tiles = %d, want %d", ph.Tiles1, P*(P-1)/2)
	}
	if ph.Lines1 != P-1 {
		t.Fatalf("phase 1 lines = %d, want %d", ph.Lines1, P-1)
	}
	// Theorem 4's lower bound for phase 3: at least P(P-1)/2 - u*v tiles.
	if ph.Tiles3 < int64(P*(P-1)/2-u*v) {
		t.Fatalf("phase 3 tiles = %d, below the paper's lower bound %d", ph.Tiles3, P*(P-1)/2-u*v)
	}
	if ph.Tiles2 <= 0 {
		t.Fatal("saturated phase must be non-empty for this configuration")
	}
}

func TestClassifyPhasesSmallGrid(t *testing.T) {
	// Grid narrower than P: everything is ramp (no phase 2).
	ph := wavefront.ClassifyPhases(3, 3, 8, nil)
	if ph.Tiles2 != 0 {
		t.Fatalf("phase 2 tiles = %d, want 0", ph.Tiles2)
	}
	if ph.Total() != 9 {
		t.Fatalf("total = %d", ph.Total())
	}
}

// TestClassifyPhasesQuick: the phase decomposition always covers exactly the
// non-skipped tiles, for arbitrary grid shapes and worker counts.
func TestClassifyPhasesQuick(t *testing.T) {
	f := func(r8, c8, p8 uint8) bool {
		rows := int(r8%20) + 1
		cols := int(c8%20) + 1
		p := int(p8%16) + 1
		ph := wavefront.ClassifyPhases(rows, cols, p, nil)
		return ph.Total() == int64(rows*cols)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRunManyWorkers exercises worker counts exceeding the tile count.
func TestRunManyWorkers(t *testing.T) {
	var n atomic.Int64
	g := &wavefront.Grid{Rows: 2, Cols: 2, Workers: 64, Exec: func(r, c int) error {
		n.Add(1)
		return nil
	}}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 4 {
		t.Fatalf("executed %d", n.Load())
	}
}

// TestRunTilePanicIsolated: a panic inside one tile must fail the run with a
// PanicError wrapping ErrTilePanic — never crash the process or wedge the
// scheduler — and the remaining tiles must be cancelled, not executed.
func TestRunTilePanicIsolated(t *testing.T) {
	var executed atomic.Int64
	g := &wavefront.Grid{Rows: 8, Cols: 8, Workers: 4, Exec: func(r, c int) error {
		if r == 2 && c == 2 {
			panic("injected tile failure")
		}
		executed.Add(1)
		return nil
	}}
	err := g.Run()
	if err == nil {
		t.Fatal("panicking tile produced no error")
	}
	if !errors.Is(err, wavefront.ErrTilePanic) {
		t.Fatalf("error %v does not wrap ErrTilePanic", err)
	}
	var pe *wavefront.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a *PanicError", err)
	}
	if pe.R != 2 || pe.C != 2 {
		t.Errorf("panic attributed to tile (%d,%d), want (2,2)", pe.R, pe.C)
	}
	if pe.Value != "injected tile failure" || len(pe.Stack) == 0 {
		t.Errorf("PanicError value/stack not captured: %v / %d bytes", pe.Value, len(pe.Stack))
	}
	// Cancellation: the 38 tiles strictly dependent on (2,2) can never run,
	// and in-flight-or-later tiles may be shed; all that is guaranteed is
	// progress stopped early and Run still returned (no wedge).
	if n := executed.Load(); n >= 8*8-1 {
		t.Errorf("executed %d tiles after a panic at (2,2)", n)
	}

	// The scheduler is per-run state: a fresh run on the same shape must be
	// unaffected by the previous panic.
	var n atomic.Int64
	g2 := &wavefront.Grid{Rows: 8, Cols: 8, Workers: 4, Exec: func(r, c int) error {
		n.Add(1)
		return nil
	}}
	if err := g2.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 64 {
		t.Fatalf("follow-up run executed %d tiles, want 64", n.Load())
	}
}
