package wavefront

import "container/heap"

// Simulate performs event-driven list scheduling of the tile grid on P
// identical workers and returns the makespan and the total work, in the
// units of the per-tile cost function. Tiles become ready when their up and
// left neighbours finish; ready tiles are started on the earliest-free
// worker (ties broken by diagonal order, matching the runtime scheduler's
// natural tendency).
//
// This is the machine-independent reproduction of the paper's parallel
// analysis: on a host with fewer physical CPUs than the paper's testbed, the
// measured wall-clock cannot show the speedup curves of §6, but the
// schedule itself — identical to the one the goroutine pool executes — can
// be replayed against a virtual clock. With uniform tile costs the result
// matches Theorem 4's three-phase bound: makespan <= (R*C/P + 2(P-1)) * T.
func Simulate(rows, cols, workers int, skip func(r, c int) bool, cost func(r, c int) int64) (makespan, totalWork int64) {
	if rows < 1 || cols < 1 {
		return 0, 0
	}
	if workers < 1 {
		workers = 1
	}

	deps := make([]int32, rows*cols)
	done := make([]int64, rows*cols) // completion times
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			var d int32
			if r > 0 {
				d++
			}
			if c > 0 {
				d++
			}
			deps[r*cols+c] = d
		}
	}

	// Worker pool as a min-heap of free times.
	wk := make(workerHeap, workers)
	heap.Init(&wk)

	// Ready queue ordered by (ready time, diagonal, row).
	rq := &readyHeap{cols: cols}
	heap.Init(rq)
	heap.Push(rq, tileEntry{idx: 0, ready: 0})

	for rq.Len() > 0 {
		e := heap.Pop(rq).(tileEntry)
		r, c := e.idx/cols, e.idx%cols

		var fin int64
		if skip != nil && skip(r, c) {
			// Skipped tiles complete instantly at their ready time and
			// consume no worker.
			fin = e.ready
		} else {
			w := heap.Pop(&wk).(int64)
			start := max64(w, e.ready)
			tc := cost(r, c)
			totalWork += tc
			fin = start + tc
			heap.Push(&wk, fin)
			if fin > makespan {
				makespan = fin
			}
		}
		done[e.idx] = fin

		release := func(idx int) {
			if deps[idx]--; deps[idx] == 0 {
				ready := int64(0)
				rr, cc := idx/cols, idx%cols
				if rr > 0 && done[idx-cols] > ready {
					ready = done[idx-cols]
				}
				if cc > 0 && done[idx-1] > ready {
					ready = done[idx-1]
				}
				heap.Push(rq, tileEntry{idx: idx, ready: ready})
			}
		}
		if c+1 < cols {
			release(e.idx + 1)
		}
		if r+1 < rows {
			release(e.idx + cols)
		}
	}
	return makespan, totalWork
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

type tileEntry struct {
	idx   int
	ready int64
}

type readyHeap struct {
	cols    int
	entries []tileEntry
}

func (h *readyHeap) Len() int { return len(h.entries) }
func (h *readyHeap) Less(i, j int) bool {
	a, b := h.entries[i], h.entries[j]
	if a.ready != b.ready {
		return a.ready < b.ready
	}
	da := a.idx/h.cols + a.idx%h.cols
	db := b.idx/h.cols + b.idx%h.cols
	if da != db {
		return da < db
	}
	return a.idx < b.idx
}
func (h *readyHeap) Swap(i, j int) { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *readyHeap) Push(x any)    { h.entries = append(h.entries, x.(tileEntry)) }
func (h *readyHeap) Pop() any {
	old := h.entries
	n := len(old)
	e := old[n-1]
	h.entries = old[:n-1]
	return e
}

type workerHeap []int64

func (h workerHeap) Len() int           { return len(h) }
func (h workerHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h workerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *workerHeap) Push(x any)        { *h = append(*h, x.(int64)) }
func (h *workerHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
