package wavefront_test

import (
	"testing"
	"testing/quick"

	"fastlsa/internal/wavefront"
)

func uniformCost(int, int) int64 { return 100 }

func TestSimulateSequential(t *testing.T) {
	// One worker: makespan == total work.
	ms, total := wavefront.Simulate(7, 5, 1, nil, uniformCost)
	if ms != 3500 || total != 3500 {
		t.Fatalf("ms=%d total=%d, want 3500", ms, total)
	}
}

func TestSimulateInfiniteWorkers(t *testing.T) {
	// Unbounded workers: makespan = critical path = (rows+cols-1) * T.
	ms, _ := wavefront.Simulate(10, 14, 1000, nil, uniformCost)
	if ms != int64(10+14-1)*100 {
		t.Fatalf("ms=%d, want %d", ms, (10+14-1)*100)
	}
}

// TestSimulateTheorem4Bound: for uniform costs the makespan never exceeds
// the paper's three-phase bound (R*C/P + 2(P-1)) * T.
func TestSimulateTheorem4Bound(t *testing.T) {
	for _, tc := range []struct{ r, c, p int }{
		{12, 18, 8}, {16, 16, 4}, {8, 32, 8}, {20, 20, 16}, {5, 5, 3},
	} {
		ms, _ := wavefront.Simulate(tc.r, tc.c, tc.p, nil, uniformCost)
		bound := (int64(tc.r*tc.c)/int64(tc.p) + 2*int64(tc.p-1) + 1) * 100
		if ms > bound {
			t.Fatalf("%dx%d P=%d: makespan %d exceeds Theorem 4 bound %d", tc.r, tc.c, tc.p, ms, bound)
		}
		// And it is at least the trivial work/P and critical-path bounds.
		if ms < int64(tc.r*tc.c)*100/int64(tc.p) || ms < int64(tc.r+tc.c-1)*100 && tc.p >= minInt(tc.r, tc.c) {
			t.Fatalf("%dx%d P=%d: makespan %d below lower bounds", tc.r, tc.c, tc.p, ms)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestSimulateSkip: skipped tiles contribute no work and no time.
func TestSimulateSkip(t *testing.T) {
	skip := func(r, c int) bool { return r >= 2 && c >= 2 }
	_, total := wavefront.Simulate(4, 4, 2, skip, uniformCost)
	if total != 12*100 {
		t.Fatalf("total=%d, want 1200", total)
	}
}

// TestSimulateMonotoneInWorkers: adding workers never increases makespan.
func TestSimulateMonotoneInWorkers(t *testing.T) {
	cost := func(r, c int) int64 { return int64(1 + (r*31+c*17)%97) }
	prev := int64(1 << 62)
	for _, p := range []int{1, 2, 3, 4, 8, 16, 64} {
		ms, _ := wavefront.Simulate(15, 22, p, nil, cost)
		if ms > prev {
			t.Fatalf("P=%d: makespan %d grew from %d", p, ms, prev)
		}
		prev = ms
	}
}

// TestSimulateSpeedupShape: on a saturating grid, speedup at P=8 must be
// near-linear (the paper's §6 claim in simulated form).
func TestSimulateSpeedupShape(t *testing.T) {
	seq, _ := wavefront.Simulate(64, 64, 1, nil, uniformCost)
	par, _ := wavefront.Simulate(64, 64, 8, nil, uniformCost)
	speedup := float64(seq) / float64(par)
	if speedup < 7.0 {
		t.Fatalf("simulated speedup %.2f < 7.0 on a 64x64 grid with P=8", speedup)
	}
}

// TestSimulateQuick: makespan always lies between max(work/P, criticalPath)
// and work, for arbitrary small grids.
func TestSimulateQuick(t *testing.T) {
	f := func(r8, c8, p8 uint8) bool {
		rows := int(r8%12) + 1
		cols := int(c8%12) + 1
		p := int(p8%8) + 1
		ms, total := wavefront.Simulate(rows, cols, p, nil, uniformCost)
		if total != int64(rows*cols)*100 {
			return false
		}
		lower := total / int64(p)
		if cp := int64(rows+cols-1) * 100; cp > lower && ms < cp {
			return false
		}
		return ms >= lower && ms <= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
