package theory_test

import (
	"math"
	"testing"
	"testing/quick"

	"fastlsa/internal/bench"
	"fastlsa/internal/core"
	"fastlsa/internal/memory"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/stats"
	"fastlsa/internal/theory"
)

// TestSequentialRecurrenceUnderBound: the exact recurrence never exceeds
// Theorem 2's closed form (with the +1-per-dimension base-case slack).
func TestSequentialRecurrenceUnderBound(t *testing.T) {
	for _, k := range []int{2, 3, 4, 8, 16} {
		for _, n := range []int{100, 1000, 10000, 100000} {
			cells, err := theory.SequentialCells(n, n, k, 4096)
			if err != nil {
				t.Fatal(err)
			}
			bound := theory.SequentialBound(n, n, k) * 1.10
			if float64(cells) > bound {
				t.Fatalf("k=%d n=%d: recurrence %d exceeds bound %.0f", k, n, cells, bound)
			}
			if cells < int64(n)*int64(n) {
				t.Fatalf("k=%d n=%d: recurrence %d below m*n", k, n, cells)
			}
		}
	}
}

// TestRecurrenceDominatesImplementation: the instrumented implementation
// never computes more cells than the worst-case recurrence predicts.
func TestRecurrenceDominatesImplementation(t *testing.T) {
	for _, tc := range []struct{ n, k, bm int }{
		{500, 4, 256}, {900, 8, 1024}, {1200, 2, 64},
	} {
		a, b, err := seq.HomologousPair(tc.n, seq.DNA, seq.DefaultHomology, int64(tc.n))
		if err != nil {
			t.Fatal(err)
		}
		var c stats.Counters
		if _, err := core.Align(a, b, scoring.DNASimple, scoring.Linear(-4), core.Options{
			K: tc.k, BaseCells: tc.bm, Workers: 1, Counters: &c,
		}); err != nil {
			t.Fatal(err)
		}
		// The recurrence is evaluated at the actual (possibly unequal)
		// lengths; take the max dimension for a safe over-approximation.
		m := a.Len()
		n := b.Len()
		pred, err := theory.SequentialCells(m, n, tc.k, tc.bm)
		if err != nil {
			t.Fatal(err)
		}
		// Allow the +1 boundary slack per base case.
		if got := c.Cells.Load(); float64(got) > float64(pred)*1.05 {
			t.Fatalf("n=%d k=%d bm=%d: measured %d exceeds recurrence %d", tc.n, tc.k, tc.bm, got, pred)
		}
	}
}

func TestAlphaMatchesBenchHelper(t *testing.T) {
	for _, tc := range []struct{ p, r, c int }{{1, 4, 4}, {8, 16, 16}, {8, 12, 18}} {
		if got, want := theory.Alpha(tc.p, tc.r, tc.c), bench.TheoremAlpha(tc.p, tc.r, tc.c); math.Abs(got-want) > 1e-12 {
			t.Fatalf("alpha mismatch for %+v: %v vs %v", tc, got, want)
		}
	}
}

// TestParallelRecurrenceUnderBound: Equation 28's exact evaluation stays
// under Theorem 4's closed form.
func TestParallelRecurrenceUnderBound(t *testing.T) {
	for _, tc := range []struct{ n, k, p, u, v int }{
		{2000, 8, 8, 2, 2}, {5000, 6, 8, 2, 3}, {10000, 8, 4, 2, 2}, {4000, 4, 16, 4, 4},
	} {
		wt, err := theory.ParallelTime(tc.n, tc.n, tc.k, tc.p, tc.u, tc.v, 4096)
		if err != nil {
			t.Fatal(err)
		}
		bound := theory.ParallelBound(tc.n, tc.n, tc.k, tc.p, tc.u, tc.v) * 1.10
		if wt > bound {
			t.Fatalf("%+v: WT %.0f exceeds bound %.0f", tc, wt, bound)
		}
		// And it cannot beat perfect speedup on the mandatory m*n work.
		if wt < float64(tc.n)*float64(tc.n)/float64(tc.p) {
			t.Fatalf("%+v: WT %.0f below mn/P", tc, wt)
		}
	}
}

// TestTheoryMatchesSimulator: the analytic model speedup and the
// list-scheduling simulation agree within a modest tolerance (the theory is
// an upper-bound-style approximation of the same schedule).
func TestTheoryMatchesSimulator(t *testing.T) {
	const n, k, p, u, v, bm = 4000, 8, 8, 2, 2, 65536
	analytic, err := theory.ModelSpeedup(n, n, k, p, u, v, bm)
	if err != nil {
		t.Fatal(err)
	}
	simulated := bench.ModelSpeedup(n, n, bench.ModelConfig{K: k, BaseCells: bm, Workers: p, TileRows: u, TileCols: v})
	if math.Abs(analytic-simulated)/simulated > 0.25 {
		t.Fatalf("analytic %.2f vs simulated %.2f diverge by more than 25%%", analytic, simulated)
	}
	// Both show the near-linear-at-P=8 shape.
	if analytic < 5.5 || simulated < 5.5 {
		t.Fatalf("speedups too low: analytic %.2f, simulated %.2f", analytic, simulated)
	}
}

// TestGridMemoryLinear: the predicted grid footprint is O(k*(m+n)) with the
// geometric tail, i.e. far below quadratic, and the implementation's peak
// stays under it.
func TestGridMemoryLinear(t *testing.T) {
	gm, err := theory.GridMemory(4000, 4000, 8, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if gm > int64(8*(4000+4000+2))*2+4096 {
		t.Fatalf("grid memory %d exceeds ~2*k*(m+n)", gm)
	}
	a, b, err := seq.HomologousPair(1500, seq.DNA, seq.DefaultHomology, 3)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := theory.GridMemory(a.Len(), b.Len(), 8, 4096)
	if err != nil {
		t.Fatal(err)
	}
	budget, err := memory.NewBudget(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Align(a, b, scoring.DNASimple, scoring.Linear(-4), core.Options{
		K: 8, BaseCells: 4096, Workers: 1, Budget: budget,
	}); err != nil {
		t.Fatal(err)
	}
	if budget.Peak() > pred*2 {
		t.Fatalf("implementation peak %d far above predicted %d", budget.Peak(), pred)
	}
}

// TestValidation rejects malformed parameters.
func TestValidation(t *testing.T) {
	if _, err := theory.SequentialCells(10, 10, 1, 64); err == nil {
		t.Fatal("k=1 must fail")
	}
	if _, err := theory.SequentialCells(-1, 10, 2, 64); err == nil {
		t.Fatal("negative dims must fail")
	}
	if _, err := theory.SequentialCells(10, 10, 2, 1); err == nil {
		t.Fatal("tiny bm must fail")
	}
	if _, err := theory.ParallelTime(10, 10, 2, 0, 1, 1, 64); err == nil {
		t.Fatal("P=0 must fail")
	}
	if _, err := theory.ModelSpeedup(100, 100, 4, 4, 1, 1, 64); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInvariants: for arbitrary parameters, (1) the sequential
// recurrence stays within [m*n, Theorem-2 bound + slack]; (2) the parallel
// time never implies super-linear speedup (WT >= work/P). Note that WT is
// NOT monotone in P for small tile grids — the paper's own point that the
// ramp phases dominate when R*C is small relative to P^2 — so monotonicity
// is deliberately not asserted.
func TestQuickInvariants(t *testing.T) {
	f := func(n16 uint16, k8, p8 uint8) bool {
		n := int(n16%4000) + 100
		k := int(k8%14) + 2
		p := int(p8%15) + 1
		cells, err := theory.SequentialCells(n, n, k, 1024)
		if err != nil {
			return false
		}
		if cells < int64(n)*int64(n) || float64(cells) > theory.SequentialBound(n, n, k)*1.15 {
			return false
		}
		wt, err := theory.ParallelTime(n, n, k, p, 2, 2, 1024)
		if err != nil {
			return false
		}
		return wt >= float64(cells)/float64(p)-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestOverParallelisationHurts demonstrates the non-monotonicity explicitly:
// with a tiny tile grid, pushing P far past R*C raises alpha and the
// analysis' parallel time — the trade-off the paper's §5 tuning discussion
// warns about.
func TestOverParallelisationHurts(t *testing.T) {
	// R = C = k*u = 4: alpha grows once P^2 >> 16.
	small, err := theory.ParallelTime(2000, 2000, 2, 2, 2, 2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	big, err := theory.ParallelTime(2000, 2000, 2, 15, 2, 2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if big < small {
		// alpha(15, 4x4) = (1+210/16)/15 ~ 0.94 vs alpha(2) = (1+2/16)/2 ~ 0.56
		t.Fatalf("expected over-parallelisation to hurt: P=15 time %.0f < P=2 time %.0f", big, small)
	}
}
