// Package theory makes the paper's Appendix A executable: the worst-case
// operation recurrences of sequential FastLSA (Theorem 2) and Parallel
// FastLSA (Theorem 4, Equations 28-36) are evaluated exactly, next to their
// closed-form bounds. The test suite cross-checks the recurrences against
// the closed forms, against the wavefront schedule simulator, and against
// the instrumented implementation — three independent routes to the same
// quantities.
package theory

import "fmt"

// SequentialCells evaluates the worst-case cell-count recurrence of
// sequential FastLSA exactly:
//
//	T(m, n) = (m+1)(n+1)            if (m+1)(n+1) <= bm  (base case)
//	T(m, n) = m*n + (2k-1) * T(m/k, n/k)   otherwise     (fill + path blocks)
//
// This is Equation 6's shape with the base case made explicit. The result
// upper-bounds what the implementation's Cells counter reports for the same
// (m, n, k, bm): real paths cross at most 2k-1 blocks and usually fewer.
func SequentialCells(m, n, k, bm int) (int64, error) {
	if err := checkParams(m, n, k); err != nil {
		return 0, err
	}
	if bm < 4 {
		return 0, fmt.Errorf("theory: base-case buffer %d too small", bm)
	}
	return seqCells(m, n, k, bm), nil
}

func seqCells(m, n, k, bm int) int64 {
	if m <= 0 || n <= 0 {
		return 0
	}
	if (m+1)*(n+1) <= bm || m == 1 || n == 1 {
		return int64(m) * int64(n)
	}
	keff := k
	if keff > m {
		keff = m
	}
	if keff > n {
		keff = n
	}
	return int64(m)*int64(n) + int64(2*keff-1)*seqCells(m/keff, n/keff, k, bm)
}

// SequentialBound is Theorem 2's closed form: T(m,n) <= m*n * (k/(k-1))^2.
func SequentialBound(m, n, k int) float64 {
	return float64(m) * float64(n) * float64(k*k) / float64((k-1)*(k-1))
}

// Alpha is Equation 32: the per-cell parallel-time coefficient of one Fill
// Cache computed on P processors over an R x C tiling,
// alpha = (1 + (P^2 - P) / (R*C)) / P.
func Alpha(p, r, c int) float64 {
	if p < 1 {
		p = 1
	}
	return (1 + float64(p*p-p)/float64(r*c)) / float64(p)
}

// ParallelTime evaluates Equation 28 exactly:
//
//	WT(m, n) = m*n*alpha + (2k-1) * WT(m/k, n/k)
//
// terminating in the parallel base case (Equation 33, also m*n*alpha). The
// unit is "sequential cell times"; dividing total work by this gives the
// model speedup of the paper's analysis.
func ParallelTime(m, n, k, p, u, v, bm int) (float64, error) {
	if err := checkParams(m, n, k); err != nil {
		return 0, err
	}
	if p < 1 || u < 1 || v < 1 {
		return 0, fmt.Errorf("theory: P=%d u=%d v=%d must all be >= 1", p, u, v)
	}
	return parTime(m, n, k, p, u, v, bm), nil
}

func parTime(m, n, k, p, u, v, bm int) float64 {
	if m <= 0 || n <= 0 {
		return 0
	}
	if (m+1)*(n+1) <= bm || m == 1 || n == 1 {
		// Parallel base case (Equation 33) over a 2P x 2P tiling, matching
		// the implementation's parallel base-case grid.
		r := minInt(2*p, m)
		c := minInt(2*p, n)
		return float64(m) * float64(n) * Alpha(p, maxInt(r, 1), maxInt(c, 1))
	}
	keff := k
	if keff > m {
		keff = m
	}
	if keff > n {
		keff = n
	}
	r, c := keff*u, keff*v
	if r > m {
		r = m
	}
	if c > n {
		c = n
	}
	fill := float64(m) * float64(n) * Alpha(p, r, c)
	return fill + float64(2*keff-1)*parTime(m/keff, n/keff, k, p, u, v, bm)
}

// ParallelBound is Theorem 4's closed form:
//
//	WT(m,n,k,P) <= (m*n/P) * (1 + (P^2-P)/(R*C)) * (k/(k-1))^2
//
// with R = u*k, C = v*k at the top level.
func ParallelBound(m, n, k, p, u, v int) float64 {
	return float64(m) * float64(n) * Alpha(p, u*k, v*k) *
		float64(k*k) / float64((k-1)*(k-1))
}

// ModelSpeedup is the analysis' predicted speedup: total sequential work
// over parallel time, both from the recurrences.
func ModelSpeedup(m, n, k, p, u, v, bm int) (float64, error) {
	seq, err := SequentialCells(m, n, k, bm)
	if err != nil {
		return 0, err
	}
	par, err := ParallelTime(m, n, k, p, u, v, bm)
	if err != nil {
		return 0, err
	}
	if par <= 0 {
		return 0, fmt.Errorf("theory: degenerate parallel time")
	}
	return float64(seq) / par, nil
}

// GridMemory is the peak grid-cache footprint of the recursion in DPM
// entries: each live level holds k row lines and k column lines of its
// subproblem, and levels shrink geometrically (paper §3's space analysis).
func GridMemory(m, n, k, bm int) (int64, error) {
	if err := checkParams(m, n, k); err != nil {
		return 0, err
	}
	var total int64
	for m > 1 && n > 1 && (m+1)*(n+1) > bm {
		keff := k
		if keff > m {
			keff = m
		}
		if keff > n {
			keff = n
		}
		total += int64(keff) * int64(m+1+n+1)
		m /= keff
		n /= keff
	}
	return total + int64(bm), nil
}

func checkParams(m, n, k int) error {
	if m < 0 || n < 0 {
		return fmt.Errorf("theory: negative dimensions %dx%d", m, n)
	}
	if k < 2 {
		return fmt.Errorf("theory: k=%d must be >= 2", k)
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
