package align

import (
	"fmt"
	"strings"

	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
)

// GapByte is the gap character used in rendered alignments (paper §1.1).
const GapByte = '-'

// Alignment is a pairwise global alignment of sequences A (rows) and B
// (columns): the path through the DPM plus the score the producing algorithm
// reported for it.
type Alignment struct {
	// A and B are the aligned input sequences.
	A, B *seq.Sequence
	// Path is the DPM path from (0,0) to (len(A), len(B)).
	Path Path
	// Score is the alignment score reported by the algorithm.
	Score int64
}

// New builds an Alignment after validating that the path spans the two
// sequences exactly.
func New(a, b *seq.Sequence, p Path, score int64) (*Alignment, error) {
	if err := p.Validate(a.Len(), b.Len()); err != nil {
		return nil, err
	}
	return &Alignment{A: a, B: b, Path: p, Score: score}, nil
}

// Rows renders the two gapped rows of the alignment (equal lengths).
func (al *Alignment) Rows() (rowA, rowB string) {
	var ba, bb strings.Builder
	ba.Grow(al.Path.Len())
	bb.Grow(al.Path.Len())
	i, j := 0, 0
	for _, mv := range al.Path.Moves() {
		switch mv {
		case Diag:
			ba.WriteByte(al.A.At(i))
			bb.WriteByte(al.B.At(j))
			i++
			j++
		case Up:
			ba.WriteByte(al.A.At(i))
			bb.WriteByte(GapByte)
			i++
		case Left:
			ba.WriteByte(GapByte)
			bb.WriteByte(al.B.At(j))
			j++
		}
	}
	return ba.String(), bb.String()
}

// Stats summarises an alignment column-by-column.
type Stats struct {
	Columns    int     // total alignment columns
	Matches    int     // identical residue pairs
	Mismatches int     // differing residue pairs
	GapsA      int     // gap characters in row A
	GapsB      int     // gap characters in row B
	Identity   float64 // Matches / Columns (0 for empty alignments)
}

// Stats computes the column statistics of the alignment.
func (al *Alignment) Stats() Stats {
	var s Stats
	i, j := 0, 0
	for _, mv := range al.Path.Moves() {
		s.Columns++
		switch mv {
		case Diag:
			if al.A.At(i) == al.B.At(j) {
				s.Matches++
			} else {
				s.Mismatches++
			}
			i++
			j++
		case Up:
			s.GapsB++
			i++
		case Left:
			s.GapsA++
			j++
		}
	}
	if s.Columns > 0 {
		s.Identity = float64(s.Matches) / float64(s.Columns)
	}
	return s
}

// Rescore recomputes the alignment score under the given scoring model,
// independently of whatever DP produced the path. This is the primary test
// oracle: for every algorithm, Rescore(path) must equal the reported score.
func (al *Alignment) Rescore(m *scoring.Matrix, gap scoring.Gap) int64 {
	return ScorePath(al.A, al.B, al.Path, m, gap)
}

// ScorePath scores an arbitrary path over (a, b) under matrix m and gap
// model g. For affine models, consecutive Up moves (and, separately,
// consecutive Left moves) form a single gap charged one Open.
func ScorePath(a, b *seq.Sequence, p Path, m *scoring.Matrix, g scoring.Gap) int64 {
	score := int64(0)
	i, j := 0, 0
	prev := Move(255) // sentinel: no previous move
	for _, mv := range p.Moves() {
		switch mv {
		case Diag:
			score += int64(m.Score(a.At(i), b.At(j)))
			i++
			j++
		case Up:
			if prev != Up {
				score += int64(g.Open)
			}
			score += int64(g.Extend)
			i++
		case Left:
			if prev != Left {
				score += int64(g.Open)
			}
			score += int64(g.Extend)
			j++
		}
		prev = mv
	}
	return score
}

// String renders a compact one-line summary.
func (al *Alignment) String() string {
	st := al.Stats()
	return fmt.Sprintf("align(%s x %s: score=%d cols=%d id=%.1f%%)",
		name(al.A), name(al.B), al.Score, st.Columns, 100*st.Identity)
}

func name(s *seq.Sequence) string {
	if s.ID != "" {
		return s.ID
	}
	return fmt.Sprintf("len%d", s.Len())
}
