package align

import (
	"fmt"
	"strconv"
	"strings"
)

// CIGAR encodes the path in SAM-style run-length form with respect to the
// row sequence A as the "read": M = aligned pair (Diag), I = residue of A
// against a gap (Up), D = gap in A against a residue of B (Left).
func (p Path) CIGAR() string {
	var b strings.Builder
	run := 0
	var cur byte
	flush := func() {
		if run > 0 {
			b.WriteString(strconv.Itoa(run))
			b.WriteByte(cur)
		}
	}
	for _, mv := range p.moves {
		var op byte
		switch mv {
		case Diag:
			op = 'M'
		case Up:
			op = 'I'
		case Left:
			op = 'D'
		}
		if op != cur {
			flush()
			cur, run = op, 0
		}
		run++
	}
	flush()
	return b.String()
}

// ExtendedCIGAR is like CIGAR but distinguishes matches '=' from mismatches
// 'X', which requires the aligned residues.
func (al *Alignment) ExtendedCIGAR() string {
	var b strings.Builder
	run := 0
	var cur byte
	flush := func() {
		if run > 0 {
			b.WriteString(strconv.Itoa(run))
			b.WriteByte(cur)
		}
	}
	i, j := 0, 0
	for _, mv := range al.Path.Moves() {
		var op byte
		switch mv {
		case Diag:
			if al.A.At(i) == al.B.At(j) {
				op = '='
			} else {
				op = 'X'
			}
			i++
			j++
		case Up:
			op = 'I'
			i++
		case Left:
			op = 'D'
			j++
		}
		if op != cur {
			flush()
			cur, run = op, 0
		}
		run++
	}
	flush()
	return b.String()
}

// ParseCIGAR reconstructs a Path from a CIGAR string produced by
// Path.CIGAR (ops M, I, D; '=' and 'X' are accepted as M).
func ParseCIGAR(s string) (Path, error) {
	var moves []Move
	n := 0
	sawDigit := false
	for idx := 0; idx < len(s); idx++ {
		c := s[idx]
		switch {
		case '0' <= c && c <= '9':
			n = n*10 + int(c-'0')
			sawDigit = true
			// Cap well inside a 32-bit int: anything larger could not be
			// expanded into moves anyway, and the bound must not itself
			// overflow on 386 (the CI vet gate builds for it).
			if n > 1<<30 {
				return Path{}, fmt.Errorf("align: ParseCIGAR: run length overflow at byte %d", idx)
			}
		case c == 'M' || c == '=' || c == 'X' || c == 'I' || c == 'D':
			if !sawDigit || n == 0 {
				return Path{}, fmt.Errorf("align: ParseCIGAR: op %q at byte %d lacks a positive run length", c, idx)
			}
			var mv Move
			switch c {
			case 'M', '=', 'X':
				mv = Diag
			case 'I':
				mv = Up
			case 'D':
				mv = Left
			}
			for k := 0; k < n; k++ {
				moves = append(moves, mv)
			}
			n, sawDigit = 0, false
		default:
			return Path{}, fmt.Errorf("align: ParseCIGAR: unexpected byte %q at %d", c, idx)
		}
	}
	if sawDigit {
		return Path{}, fmt.Errorf("align: ParseCIGAR: trailing run length without op")
	}
	return NewPath(moves), nil
}
