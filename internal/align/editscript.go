package align

import (
	"fmt"
	"strings"

	"fastlsa/internal/seq"
)

// EditOp is one operation of an edit script: how to transform sequence A
// into sequence B along an alignment path.
type EditOp struct {
	// Kind is 'M' (copy, possibly with substitution), 'I' (insert B
	// residues absent from A), or 'D' (delete A residues absent from B).
	Kind byte
	// PosA is the 0-based position in A where the operation applies.
	PosA int
	// Text is the residue run: for 'M' the B-side residues (which may
	// differ from A's — substitutions), for 'I' the inserted residues, for
	// 'D' the deleted residues.
	Text string
}

// EditScript derives the operation list transforming A into B along the
// alignment's path. Applying the script to A (see ApplyEditScript)
// reconstructs B exactly.
func (al *Alignment) EditScript() []EditOp {
	var ops []EditOp
	moves := al.Path.Moves()
	i, j := 0, 0
	for k := 0; k < len(moves); {
		switch moves[k] {
		case Diag:
			start := i
			var b strings.Builder
			for k < len(moves) && moves[k] == Diag {
				b.WriteByte(al.B.At(j))
				i++
				j++
				k++
			}
			ops = append(ops, EditOp{Kind: 'M', PosA: start, Text: b.String()})
		case Up:
			start := i
			var b strings.Builder
			for k < len(moves) && moves[k] == Up {
				b.WriteByte(al.A.At(i))
				i++
				k++
			}
			ops = append(ops, EditOp{Kind: 'D', PosA: start, Text: b.String()})
		case Left:
			start := i
			var b strings.Builder
			for k < len(moves) && moves[k] == Left {
				b.WriteByte(al.B.At(j))
				j++
				k++
			}
			ops = append(ops, EditOp{Kind: 'I', PosA: start, Text: b.String()})
		}
	}
	return ops
}

// ApplyEditScript transforms a by the script, returning the reconstructed
// target sequence (validated against the alphabet). The script must have
// been produced against a sequence with a's content.
func ApplyEditScript(a *seq.Sequence, ops []EditOp, alphabet *seq.Alphabet) (*seq.Sequence, error) {
	var out strings.Builder
	pos := 0
	for n, op := range ops {
		if op.PosA < pos || op.PosA > a.Len() {
			return nil, fmt.Errorf("align: edit op %d at A-position %d is out of order (cursor %d)", n, op.PosA, pos)
		}
		// Copy the untouched span before the op (scripts from EditScript
		// never have one, but tolerate sparse scripts).
		out.WriteString(a.String()[pos:op.PosA])
		pos = op.PosA
		switch op.Kind {
		case 'M':
			if pos+len(op.Text) > a.Len() {
				return nil, fmt.Errorf("align: edit op %d overruns A (pos %d + %d > %d)", n, pos, len(op.Text), a.Len())
			}
			out.WriteString(op.Text)
			pos += len(op.Text)
		case 'D':
			if pos+len(op.Text) > a.Len() {
				return nil, fmt.Errorf("align: edit op %d deletes past the end of A", n)
			}
			if got := a.String()[pos : pos+len(op.Text)]; got != op.Text {
				return nil, fmt.Errorf("align: edit op %d deletes %q but A has %q", n, op.Text, got)
			}
			pos += len(op.Text)
		case 'I':
			out.WriteString(op.Text)
		default:
			return nil, fmt.Errorf("align: edit op %d has unknown kind %q", n, op.Kind)
		}
	}
	out.WriteString(a.String()[pos:])
	return seq.New(a.ID+"_edited", out.String(), alphabet)
}

// InvertEditScript returns the script transforming B back into A. Requires
// the original A to recover substituted and deleted residues.
func InvertEditScript(a *seq.Sequence, ops []EditOp) ([]EditOp, error) {
	inv := make([]EditOp, 0, len(ops))
	posA, posB := 0, 0
	for n, op := range ops {
		if op.PosA != posA {
			return nil, fmt.Errorf("align: edit op %d at %d, cursor %d (sparse scripts cannot be inverted)", n, op.PosA, posA)
		}
		switch op.Kind {
		case 'M':
			if posA+len(op.Text) > a.Len() {
				return nil, fmt.Errorf("align: edit op %d overruns A", n)
			}
			inv = append(inv, EditOp{Kind: 'M', PosA: posB, Text: a.String()[posA : posA+len(op.Text)]})
			posA += len(op.Text)
			posB += len(op.Text)
		case 'D':
			inv = append(inv, EditOp{Kind: 'I', PosA: posB, Text: op.Text})
			posA += len(op.Text)
		case 'I':
			inv = append(inv, EditOp{Kind: 'D', PosA: posB, Text: op.Text})
			posB += len(op.Text)
		default:
			return nil, fmt.Errorf("align: edit op %d has unknown kind %q", n, op.Kind)
		}
	}
	return inv, nil
}
