package align_test

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"fastlsa/internal/align"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
)

func mustPath(t *testing.T, s string) align.Path {
	t.Helper()
	moves := make([]align.Move, len(s))
	for i, c := range s {
		switch c {
		case 'D':
			moves[i] = align.Diag
		case 'U':
			moves[i] = align.Up
		case 'L':
			moves[i] = align.Left
		default:
			t.Fatalf("bad move rune %q", c)
		}
	}
	return align.NewPath(moves)
}

func TestPathBasics(t *testing.T) {
	p := mustPath(t, "DULDD")
	if p.Len() != 5 {
		t.Fatalf("len = %d", p.Len())
	}
	m, n := p.Dims()
	if m != 4 || n != 4 {
		t.Fatalf("dims = %d,%d", m, n)
	}
	d, u, l := p.Counts()
	if d != 3 || u != 1 || l != 1 {
		t.Fatalf("counts = %d,%d,%d", d, u, l)
	}
	if p.String() != "DULDD" {
		t.Fatalf("string = %q", p.String())
	}
	nodes := p.Nodes()
	if len(nodes) != 6 || nodes[0] != [2]int{0, 0} || nodes[5] != [2]int{4, 4} {
		t.Fatalf("nodes = %v", nodes)
	}
	if err := p.Validate(4, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(3, 4); err == nil {
		t.Fatal("wrong dims must fail validation")
	}
}

func TestBuilderReversal(t *testing.T) {
	// Trace order (backwards): L, D, U means forward path U, D, L.
	b := align.NewBuilder(3)
	b.Push(align.Left)
	b.Push(align.Diag)
	b.Push(align.Up)
	if got := b.Path().String(); got != "UDL" {
		t.Fatalf("path = %q, want UDL", got)
	}
}

func TestRowsAndStats(t *testing.T) {
	a := seq.MustNew("a", "TDVLKAD", scoring.Table1Alphabet)
	b := seq.MustNew("b", "TLDKLLKD", scoring.Table1Alphabet)
	// Paper §2.1 alignment: TLDKLLK-D / T-D-VLKAD (from b's perspective the
	// rows swap: our rows are a=TDVLKAD).
	// Path for rows=a, cols=b: D L D L D D D U D would be 7 rows/8 cols:
	// count: diag 6, up 1? Let's use the one the paper spells:
	//   a: T-D-VLKAD  (gaps where b consumes alone -> Left moves)
	//   b: TLDKLLK-D
	p := mustPath(t, "DLDLDDDUD")
	if err := p.Validate(a.Len(), b.Len()); err != nil {
		t.Fatal(err)
	}
	al, err := align.New(a, b, p, 82)
	if err != nil {
		t.Fatal(err)
	}
	rowA, rowB := al.Rows()
	if rowA != "T-D-VLKAD" || rowB != "TLDKLLK-D" {
		t.Fatalf("rows = %q / %q", rowA, rowB)
	}
	if got := al.Rescore(scoring.Table1, scoring.PaperGap); got != 82 {
		t.Fatalf("rescore = %d, want 82 (the paper's optimal score)", got)
	}
	st := al.Stats()
	if st.Columns != 9 || st.Matches != 5 {
		t.Fatalf("stats = %+v, want 9 columns / 5 matches (paper highlights 5 stars)", st)
	}
	if st.GapsA != 2 || st.GapsB != 1 {
		t.Fatalf("gaps = %d/%d", st.GapsA, st.GapsB)
	}
}

func TestNewRejectsMismatchedPath(t *testing.T) {
	a := seq.MustNew("a", "AC", seq.DNA)
	b := seq.MustNew("b", "ACG", seq.DNA)
	if _, err := align.New(a, b, mustPath(t, "DD"), 0); err == nil {
		t.Fatal("path not covering b must fail")
	}
}

func TestScorePathAffineRuns(t *testing.T) {
	a := seq.MustNew("a", "AAAA", seq.DNA)
	b := seq.MustNew("b", "AA", seq.DNA)
	m, err := scoring.Uniform(seq.DNA, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	gap := scoring.Affine(-5, -1)
	// One vertical run of 2: DDUU -> 2+2 + (open -5 + 2*-1) = -3.
	if got := align.ScorePath(a, b, mustPath(t, "DDUU"), m, gap); got != -3 {
		t.Fatalf("DDUU = %d, want -3", got)
	}
	// Split runs: DUDU -> 2+2 + 2*(-5-1) = -8.
	if got := align.ScorePath(a, b, mustPath(t, "DUDU"), m, gap); got != -8 {
		t.Fatalf("DUDU = %d, want -8", got)
	}
	// Adjacent Up and Left runs are distinct gaps.
	b2 := seq.MustNew("b2", "AAA", seq.DNA)
	if got := align.ScorePath(a, b2, mustPath(t, "DDDULL"), m, scoring.Affine(-5, -1)); got != 2*3+(-5-1)+(-5-2) {
		t.Fatalf("DDDULL = %d", got)
	}
}

func TestCIGAR(t *testing.T) {
	p := mustPath(t, "DDDUULDD")
	if got := p.CIGAR(); got != "3M2I1D2M" {
		t.Fatalf("cigar = %q", got)
	}
	back, err := align.ParseCIGAR("3M2I1D2M")
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(p) {
		t.Fatalf("round trip = %q", back.String())
	}
	if _, err := align.ParseCIGAR("3M2"); err == nil {
		t.Fatal("trailing count must fail")
	}
	if _, err := align.ParseCIGAR("M"); err == nil {
		t.Fatal("op without count must fail")
	}
	if _, err := align.ParseCIGAR("0M"); err == nil {
		t.Fatal("zero run must fail")
	}
	if _, err := align.ParseCIGAR("3Q"); err == nil {
		t.Fatal("unknown op must fail")
	}
}

func TestExtendedCIGAR(t *testing.T) {
	a := seq.MustNew("a", "ACGT", seq.DNA)
	b := seq.MustNew("b", "AGGT", seq.DNA)
	al, err := align.New(a, b, mustPath(t, "DDDD"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := al.ExtendedCIGAR(); got != "1=1X2=" {
		t.Fatalf("extended cigar = %q", got)
	}
	// '=' and 'X' parse back as Diag.
	back, err := align.ParseCIGAR("1=1X2=")
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != "DDDD" {
		t.Fatalf("parsed = %q", back.String())
	}
}

func TestCIGARRoundTripQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) > 200 {
			raw = raw[:200]
		}
		moves := make([]align.Move, len(raw))
		for i, v := range raw {
			moves[i] = align.Move(v % 3)
		}
		p := align.NewPath(moves)
		back, err := align.ParseCIGAR(p.CIGAR())
		return err == nil && back.Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFprint(t *testing.T) {
	a := seq.MustNew("seqA", "ACGTACGTACGT", seq.DNA)
	b := seq.MustNew("seqB", "ACGTTCGTACGT", seq.DNA)
	al, err := align.New(a, b, mustPath(t, "DDDDDDDDDDDD"), 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := al.Fprint(&buf, align.FormatOptions{Width: 8, Matrix: scoring.DNASimple, ShowRuler: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"seqA", "seqB", "|", "score=7"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
	}
	// Without a matrix, identities render as '*' (paper style).
	buf.Reset()
	if err := al.Fprint(&buf, align.FormatOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Fatalf("paper-style midline missing:\n%s", buf.String())
	}
}

func TestMoveString(t *testing.T) {
	if align.Diag.String() != "D" || align.Up.String() != "U" || align.Left.String() != "L" {
		t.Fatal("move rendering broken")
	}
	if !strings.Contains(align.Move(9).String(), "9") {
		t.Fatal("unknown move rendering broken")
	}
}
