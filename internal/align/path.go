// Package align defines the shared output representation of every alignment
// algorithm in this repository: DP paths through the logical dynamic
// programming matrix (DPM), gapped alignments built from them, CIGAR
// encoding, pretty-printing, and the validation/re-scoring oracles used by
// the test suite.
//
// Conventions (paper §2.1, Figure 1): the DPM has nodes (r,c) with
// 0 <= r <= m and 0 <= c <= n, sequence a (length m) indexed by rows and
// sequence b (length n) indexed by columns. A path step from (r-1,c-1) to
// (r,c) aligns a[r] with b[c]; from (r-1,c) to (r,c) aligns a[r] with a gap;
// from (r,c-1) to (r,c) aligns a gap with b[c].
package align

import (
	"fmt"
	"strings"
)

// Move is one traceback step direction through the DPM.
type Move uint8

const (
	// Diag aligns a residue of each sequence (match or mismatch).
	Diag Move = iota
	// Up consumes a residue of the row sequence a against a gap.
	Up
	// Left consumes a residue of the column sequence b against a gap.
	Left
)

// String implements fmt.Stringer.
func (m Move) String() string {
	switch m {
	case Diag:
		return "D"
	case Up:
		return "U"
	case Left:
		return "L"
	default:
		return fmt.Sprintf("Move(%d)", uint8(m))
	}
}

// Path is a monotone DPM path from node (0,0) to node (m,n), stored as the
// forward sequence of moves.
type Path struct {
	moves []Move
}

// NewPath wraps a forward move slice (no copy).
func NewPath(moves []Move) Path { return Path{moves: moves} }

// Moves exposes the forward move slice (callers must not mutate).
func (p Path) Moves() []Move { return p.moves }

// Len reports the number of moves (alignment columns).
func (p Path) Len() int { return len(p.moves) }

// Dims returns the DPM dimensions (m, n) implied by the path: m = #Diag+#Up,
// n = #Diag+#Left.
func (p Path) Dims() (m, n int) {
	for _, mv := range p.moves {
		switch mv {
		case Diag:
			m++
			n++
		case Up:
			m++
		case Left:
			n++
		}
	}
	return m, n
}

// Counts tallies the moves by kind.
func (p Path) Counts() (diag, up, left int) {
	for _, mv := range p.moves {
		switch mv {
		case Diag:
			diag++
		case Up:
			up++
		case Left:
			left++
		}
	}
	return
}

// Equal reports whether two paths are identical move-for-move.
func (p Path) Equal(q Path) bool {
	if len(p.moves) != len(q.moves) {
		return false
	}
	for i := range p.moves {
		if p.moves[i] != q.moves[i] {
			return false
		}
	}
	return true
}

// String renders the move string, e.g. "DDULD".
func (p Path) String() string {
	var b strings.Builder
	b.Grow(len(p.moves))
	for _, m := range p.moves {
		b.WriteString(m.String())
	}
	return b.String()
}

// Nodes expands the path into the full node list (m+n+1 entries at most),
// starting at (0,0). Primarily for tests and small examples.
func (p Path) Nodes() [][2]int {
	nodes := make([][2]int, 0, len(p.moves)+1)
	r, c := 0, 0
	nodes = append(nodes, [2]int{0, 0})
	for _, m := range p.moves {
		switch m {
		case Diag:
			r++
			c++
		case Up:
			r++
		case Left:
			c++
		}
		nodes = append(nodes, [2]int{r, c})
	}
	return nodes
}

// Builder accumulates a path *backwards*, the way every traceback in this
// repository produces it: moves are pushed in trace order (from (m,n) toward
// (0,0)) and Path() reverses once. FastLSA's "prepend to flsaPath" maps to
// Push on this builder.
type Builder struct {
	rev []Move
}

// NewBuilder returns a builder with capacity for hint moves.
func NewBuilder(hint int) *Builder {
	if hint < 0 {
		hint = 0
	}
	return &Builder{rev: make([]Move, 0, hint)}
}

// Push records the move that *precedes* the current path head.
func (b *Builder) Push(m Move) { b.rev = append(b.rev, m) }

// Len reports the number of moves recorded so far.
func (b *Builder) Len() int { return len(b.rev) }

// Path reverses the accumulated moves into a forward Path. The builder may
// not be reused afterwards.
func (b *Builder) Path() Path {
	for i, j := 0, len(b.rev)-1; i < j; i, j = i+1, j-1 {
		b.rev[i], b.rev[j] = b.rev[j], b.rev[i]
	}
	return Path{moves: b.rev}
}

// Validate checks that the path is exactly a monotone (0,0)->(m,n) walk.
func (p Path) Validate(m, n int) error {
	pm, pn := p.Dims()
	if pm != m || pn != n {
		return fmt.Errorf("align: path covers (%d,%d), want (%d,%d)", pm, pn, m, n)
	}
	for i, mv := range p.moves {
		if mv > Left {
			return fmt.Errorf("align: invalid move %d at index %d", uint8(mv), i)
		}
	}
	return nil
}
