package align_test

import (
	"testing"
	"testing/quick"

	"fastlsa/internal/align"
	"fastlsa/internal/fm"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/testutil"
)

func alignmentFor(t *testing.T, a, b *seq.Sequence) *align.Alignment {
	t.Helper()
	res, err := fm.Align(a, b, scoring.DNASimple, scoring.Linear(-4), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	al, err := align.New(a, b, res.Path, res.Score)
	if err != nil {
		t.Fatal(err)
	}
	return al
}

// TestEditScriptRoundTrip: applying the script to A reconstructs B, and the
// inverted script applied to B reconstructs A — over random homologous
// pairs.
func TestEditScriptRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		a, b := testutil.HomologousPair(int(seed*31%300)+20, seq.DNA, seed+60)
		al := alignmentFor(t, a, b)
		script := al.EditScript()

		got, err := align.ApplyEditScript(a, script, seq.DNA)
		if err != nil {
			t.Fatalf("seed %d: apply: %v", seed, err)
		}
		if got.String() != b.String() {
			t.Fatalf("seed %d: apply(A) != B", seed)
		}

		inv, err := align.InvertEditScript(a, script)
		if err != nil {
			t.Fatalf("seed %d: invert: %v", seed, err)
		}
		back, err := align.ApplyEditScript(b, inv, seq.DNA)
		if err != nil {
			t.Fatalf("seed %d: apply inverse: %v", seed, err)
		}
		if back.String() != a.String() {
			t.Fatalf("seed %d: apply(invert)(B) != A", seed)
		}
	}
}

func TestEditScriptStructure(t *testing.T) {
	a := seq.MustNew("a", "ACGTACGT", seq.DNA)
	b := seq.MustNew("b", "ACGACGTT", seq.DNA)
	al := alignmentFor(t, a, b)
	script := al.EditScript()
	if len(script) == 0 {
		t.Fatal("empty script")
	}
	// Ops must be run-length maximal: no two adjacent ops share a kind.
	for i := 1; i < len(script); i++ {
		if script[i].Kind == script[i-1].Kind {
			t.Fatalf("adjacent ops %d and %d share kind %c", i-1, i, script[i].Kind)
		}
	}
	// Identity alignment yields a single M op.
	self := alignmentFor(t, a, a)
	script = self.EditScript()
	if len(script) != 1 || script[0].Kind != 'M' || script[0].Text != a.String() {
		t.Fatalf("identity script %v", script)
	}
}

func TestApplyEditScriptValidation(t *testing.T) {
	a := seq.MustNew("a", "ACGT", seq.DNA)
	if _, err := align.ApplyEditScript(a, []align.EditOp{{Kind: 'D', PosA: 0, Text: "TT"}}, seq.DNA); err == nil {
		t.Fatal("mismatched deletion must fail")
	}
	if _, err := align.ApplyEditScript(a, []align.EditOp{{Kind: 'M', PosA: 3, Text: "GG"}}, seq.DNA); err == nil {
		t.Fatal("overrun must fail")
	}
	if _, err := align.ApplyEditScript(a, []align.EditOp{{Kind: 'Q', PosA: 0, Text: "A"}}, seq.DNA); err == nil {
		t.Fatal("unknown op must fail")
	}
	if _, err := align.ApplyEditScript(a, []align.EditOp{{Kind: 'M', PosA: 2, Text: "GG"}, {Kind: 'M', PosA: 0, Text: "AC"}}, seq.DNA); err == nil {
		t.Fatal("out-of-order ops must fail")
	}
	// Sparse scripts are tolerated by Apply (untouched spans copied).
	got, err := align.ApplyEditScript(a, []align.EditOp{{Kind: 'I', PosA: 2, Text: "TT"}}, seq.DNA)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "ACTTGT" {
		t.Fatalf("sparse apply = %q", got.String())
	}
	// ...but cannot be inverted.
	if _, err := align.InvertEditScript(a, []align.EditOp{{Kind: 'I', PosA: 2, Text: "TT"}}); err == nil {
		t.Fatal("sparse invert must fail")
	}
}

// TestEditScriptQuick: round-trip property over arbitrary random pairs.
func TestEditScriptQuick(t *testing.T) {
	letters := []byte("ACGT")
	f := func(xa, xb []uint8) bool {
		if len(xa) > 60 {
			xa = xa[:60]
		}
		if len(xb) > 60 {
			xb = xb[:60]
		}
		ra := make([]byte, len(xa))
		for i, v := range xa {
			ra[i] = letters[int(v)%4]
		}
		rb := make([]byte, len(xb))
		for i, v := range xb {
			rb[i] = letters[int(v)%4]
		}
		a := seq.MustNew("a", string(ra), seq.DNA)
		b := seq.MustNew("b", string(rb), seq.DNA)
		res, err := fm.Align(a, b, scoring.DNASimple, scoring.Linear(-4), nil, nil)
		if err != nil {
			return false
		}
		al, err := align.New(a, b, res.Path, res.Score)
		if err != nil {
			return false
		}
		got, err := align.ApplyEditScript(a, al.EditScript(), seq.DNA)
		return err == nil && got.String() == b.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
