package align

import (
	"fmt"
	"io"
	"strings"

	"fastlsa/internal/scoring"
)

// FormatOptions controls Fprint rendering.
type FormatOptions struct {
	// Width is the number of alignment columns per block (<=0 selects 60).
	Width int
	// Matrix, when non-nil, upgrades the midline: '|' for identity, ':' for
	// positive-similarity pairs, ' ' otherwise. With a nil matrix the midline
	// marks identities with '*' in the style of the paper's §1.1 example.
	Matrix *scoring.Matrix
	// ShowRuler adds residue-offset ruler columns on each block edge.
	ShowRuler bool
}

// Fprint renders the alignment in blocks with a midline, BLAST-style.
func (al *Alignment) Fprint(w io.Writer, opt FormatOptions) error {
	width := opt.Width
	if width <= 0 {
		width = 60
	}
	rowA, rowB := al.Rows()
	mid := midline(rowA, rowB, opt.Matrix)

	labelA, labelB := name(al.A), name(al.B)
	lw := len(labelA)
	if len(labelB) > lw {
		lw = len(labelB)
	}

	posA, posB := 0, 0
	for off := 0; off < len(rowA); off += width {
		end := off + width
		if end > len(rowA) {
			end = len(rowA)
		}
		segA, segB, segM := rowA[off:end], rowB[off:end], mid[off:end]
		startA, startB := posA+1, posB+1
		posA += len(segA) - strings.Count(segA, string(GapByte))
		posB += len(segB) - strings.Count(segB, string(GapByte))
		if opt.ShowRuler {
			if _, err := fmt.Fprintf(w, "%-*s %6d %s %d\n%-*s        %s\n%-*s %6d %s %d\n\n",
				lw, labelA, startA, segA, posA,
				lw, "", segM,
				lw, labelB, startB, segB, posB); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintf(w, "%-*s %s\n%-*s %s\n%-*s %s\n\n",
				lw, labelA, segA, lw, "", segM, lw, labelB, segB); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "score=%d %+v\n", al.Score, al.Stats())
	return err
}

func midline(rowA, rowB string, m *scoring.Matrix) string {
	var b strings.Builder
	b.Grow(len(rowA))
	for i := 0; i < len(rowA); i++ {
		ca, cb := rowA[i], rowB[i]
		switch {
		case ca == GapByte || cb == GapByte:
			b.WriteByte(' ')
		case ca == cb:
			if m == nil {
				b.WriteByte('*')
			} else {
				b.WriteByte('|')
			}
		case m != nil && m.Score(ca, cb) > 0:
			b.WriteByte(':')
		default:
			b.WriteByte(' ')
		}
	}
	return b.String()
}
