package align_test

import (
	"testing"

	"fastlsa/internal/align"
)

// FuzzParseCIGAR: parsing never panics, and anything that parses must
// round-trip through CIGAR() -> ParseCIGAR to an equal path.
func FuzzParseCIGAR(f *testing.F) {
	for _, s := range []string{"", "3M", "1I2D3M", "10M1I1D", "0M", "M", "3Q", "3M2", "=X", "1=1X"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := align.ParseCIGAR(s)
		if err != nil {
			return
		}
		back, err := align.ParseCIGAR(p.CIGAR())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", p.CIGAR(), err)
		}
		if !back.Equal(p) {
			t.Fatalf("round trip of %q diverged", s)
		}
		m, n := p.Dims()
		if err := p.Validate(m, n); err != nil {
			t.Fatalf("parsed path invalid: %v", err)
		}
	})
}

// FuzzPathBuilder: the backward builder always inverts to the pushed moves.
func FuzzPathBuilder(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 1000 {
			raw = raw[:1000]
		}
		b := align.NewBuilder(len(raw))
		want := make([]align.Move, len(raw))
		for i, v := range raw {
			m := align.Move(v % 3)
			want[len(raw)-1-i] = m
			b.Push(m)
		}
		got := b.Path()
		if got.Len() != len(raw) {
			t.Fatal("length mismatch")
		}
		for i, m := range got.Moves() {
			if m != want[i] {
				t.Fatalf("move %d: %v != %v", i, m, want[i])
			}
		}
	})
}
