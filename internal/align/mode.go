package align

import (
	"fmt"

	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
)

// Mode selects which terminal gaps of a global alignment are free — the
// standard "ends-free" family. Each flag names the sequence whose residues
// may dangle unaligned at no cost:
//
//   - FreeStartA: a prefix of A may be unaligned (the path's leading Up run
//     is free; DPM column 0 is zero-initialised).
//   - FreeEndA: a suffix of A may be unaligned (a trailing Up run is free;
//     the path may effectively end anywhere on the last column).
//   - FreeStartB / FreeEndB: the same for B (row 0 / last row).
//
// The zero value is ordinary global alignment. All four flags give overlap
// (semiglobal) alignment; FreeStartA+FreeEndA fits B inside A.
type Mode struct {
	FreeStartA, FreeEndA bool
	FreeStartB, FreeEndB bool
}

// Predefined modes.
var (
	// Global charges every terminal gap (Needleman-Wunsch).
	Global = Mode{}
	// Overlap makes all four terminal gaps free (semiglobal): the classic
	// mode for detecting overlapping fragments.
	Overlap = Mode{FreeStartA: true, FreeEndA: true, FreeStartB: true, FreeEndB: true}
	// FitBInA aligns all of B against a substring of A (A's flanks free).
	FitBInA = Mode{FreeStartA: true, FreeEndA: true}
	// FitAInB aligns all of A against a substring of B.
	FitAInB = Mode{FreeStartB: true, FreeEndB: true}
)

// IsGlobal reports whether no terminal gap is free.
func (md Mode) IsGlobal() bool { return md == Mode{} }

// String implements fmt.Stringer.
func (md Mode) String() string {
	switch md {
	case Global:
		return "global"
	case Overlap:
		return "overlap"
	case FitBInA:
		return "fit-b-in-a"
	case FitAInB:
		return "fit-a-in-b"
	}
	return fmt.Sprintf("mode{A:%v,%v B:%v,%v}", md.FreeStartA, md.FreeEndA, md.FreeStartB, md.FreeEndB)
}

// ParseMode resolves a mode name: "global", "overlap" ("semiglobal"),
// "fit-b-in-a" ("fit"), "fit-a-in-b".
func ParseMode(name string) (Mode, error) {
	switch name {
	case "", "global":
		return Global, nil
	case "overlap", "semiglobal", "ends-free":
		return Overlap, nil
	case "fit", "fit-b-in-a":
		return FitBInA, nil
	case "fit-a-in-b":
		return FitAInB, nil
	default:
		return Mode{}, fmt.Errorf("align: unknown mode %q", name)
	}
}

// ScorePathMode scores a path under the ends-free mode: the leading and
// trailing terminal gap runs that the mode declares free contribute nothing.
// Exactly one run can be free at each end (the path's first and last run) —
// the standard ends-free convention, under which the path effectively starts
// and ends on a DPM edge. Linear and affine models are supported (a
// partially-free run is impossible: a terminal run is either free in full or
// charged in full).
func ScorePathMode(a, b *seq.Sequence, p Path, m *scoring.Matrix, g scoring.Gap, md Mode) int64 {
	moves := p.Moves()
	lo, hi := 0, len(moves)

	// Trim the free leading run. A leading Up run is A residues dangling
	// before B starts — free when FreeStartA; a leading Left run dangles B —
	// free when FreeStartB.
	// Only the path's first run and last run can be terminal gaps (standard
	// ends-free semantics: the path effectively starts and ends on a DPM
	// edge; a doubly-dangling start in both sequences is not a free start).
	i, j := 0, 0 // residue cursors for the charged scorer below
	if lo < hi {
		switch {
		case moves[lo] == Up && md.FreeStartA:
			for lo < hi && moves[lo] == Up {
				lo++
				i++
			}
		case moves[lo] == Left && md.FreeStartB:
			for lo < hi && moves[lo] == Left {
				lo++
				j++
			}
		}
	}
	if hi > lo {
		switch {
		case moves[hi-1] == Up && md.FreeEndA:
			for hi > lo && moves[hi-1] == Up {
				hi--
			}
		case moves[hi-1] == Left && md.FreeEndB:
			for hi > lo && moves[hi-1] == Left {
				hi--
			}
		}
	}

	score := int64(0)
	prev := Move(255)
	for _, mv := range moves[lo:hi] {
		switch mv {
		case Diag:
			score += int64(m.Score(a.At(i), b.At(j)))
			i++
			j++
		case Up:
			if prev != Up {
				score += int64(g.Open)
			}
			score += int64(g.Extend)
			i++
		case Left:
			if prev != Left {
				score += int64(g.Open)
			}
			score += int64(g.Extend)
			j++
		}
		prev = mv
	}
	return score
}
