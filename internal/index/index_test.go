package index_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"fastlsa/internal/fm"
	"fastlsa/internal/index"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
)

func mustBuild(t *testing.T, db []*seq.Sequence, q int) *index.Index {
	t.Helper()
	ix, err := index.Build(db, q)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestBuildValidation(t *testing.T) {
	if _, err := index.Build(nil, 8); err == nil {
		t.Fatal("empty corpus must fail")
	}
	db := []*seq.Sequence{seq.Random("a", 50, seq.DNA, 1)}
	if _, err := index.Build(db, 1); err == nil {
		t.Fatal("q=1 must fail")
	}
	if _, err := index.Build(db, 20); err == nil {
		t.Fatal("4^20 grams must exceed the limit")
	}
	mixed := []*seq.Sequence{seq.Random("a", 50, seq.DNA, 1), seq.Random("b", 50, seq.Protein, 2)}
	if _, err := index.Build(mixed, 3); err == nil {
		t.Fatal("mixed alphabets must fail")
	}
	ix := mustBuild(t, db, 8)
	if ix.Entries() != 1 || ix.Q() != 8 {
		t.Fatalf("shape: entries=%d q=%d", ix.Entries(), ix.Q())
	}
	if ix.Postings() == 0 || ix.DistinctGrams() == 0 {
		t.Fatal("no postings recorded")
	}
}

func TestDefaultQ(t *testing.T) {
	if q := index.DefaultQ(seq.DNA); q != 8 {
		t.Fatalf("DNA default q = %d, want 8", q)
	}
	if q := index.DefaultQ(seq.Protein); q != 3 {
		t.Fatalf("protein default q = %d, want 3", q)
	}
	if q := index.DefaultQ(seq.DNAIUPAC); q != 4 {
		t.Fatalf("IUPAC default q = %d, want 4", q)
	}
}

func TestSharedGramCountsExactly(t *testing.T) {
	// Two identical sequences share every gram; the upper bound must allow
	// the perfect score and the probe must rank the identical entry first.
	s := seq.Random("s", 120, seq.DNA, 7)
	db := []*seq.Sequence{seq.Random("bg", 120, seq.DNA, 99), s.Clone()}
	ix := mustBuild(t, db, 8)
	cands, pr, err := ix.Candidates(s, scoring.DNASimple, scoring.Linear(-12), 400)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Scanned != 2 {
		t.Fatalf("scanned %d", pr.Scanned)
	}
	if len(cands) == 0 || cands[0].Entry != 1 {
		t.Fatalf("identical entry not ranked first: %+v", cands)
	}
	if want := 120 - 8 + 1; cands[0].Shared != want {
		t.Fatalf("identical entry shares %d grams, want %d", cands[0].Shared, want)
	}
	if cands[0].UpperBound < 5*120 {
		t.Fatalf("upper bound %d below the perfect score %d", cands[0].UpperBound, 5*120)
	}
}

func TestCandidatesPrunesShortEntries(t *testing.T) {
	// An entry too short to ever reach minScore must be pruned by the
	// length bound even though the seed floor is zero for it.
	q := seq.Random("q", 200, seq.DNA, 3)
	db := []*seq.Sequence{seq.Random("tiny", 10, seq.DNA, 4), q.Clone()}
	ix := mustBuild(t, db, 8)
	cands, pr, err := ix.Candidates(q, scoring.DNASimple, scoring.Linear(-12), 200)
	if err != nil {
		t.Fatal(err)
	}
	if pr.PrunedShort != 1 {
		t.Fatalf("short entry not pruned: %+v", pr)
	}
	for _, c := range cands {
		if c.Entry == 0 {
			t.Fatal("short entry survived")
		}
	}
}

// TestLemmaLossless is the core safety property: for random sequence pairs
// and sweeps of minScore, whenever the true local score reaches minScore the
// entry must survive the filter. This exercises MinSharedGrams and
// ScoreUpperBound against the real Smith-Waterman kernel.
func TestLemmaLossless(t *testing.T) {
	gap := scoring.Linear(-12)
	model := seq.MutationModel{SubstitutionRate: 0.04, InsertionRate: 0.01, DeletionRate: 0.01, MaxIndelRun: 4, IndelExtend: 0.4}
	for trial := 0; trial < 30; trial++ {
		n := 60 + trial*9%140
		query := seq.Random("q", n, seq.DNA, int64(1000+trial))
		var entry *seq.Sequence
		switch trial % 3 {
		case 0: // unrelated
			entry = seq.Random("e", n+trial%50, seq.DNA, int64(2000+trial))
		case 1: // homolog
			var err error
			entry, err = model.Mutate("e", query, int64(3000+trial))
			if err != nil {
				t.Fatal(err)
			}
		default: // partial overlap: homologous core with random flanks
			core, err := model.Mutate("c", query.Slice(n/4, 3*n/4), int64(4000+trial))
			if err != nil {
				t.Fatal(err)
			}
			flank := seq.Random("", 40, seq.DNA, int64(5000+trial)).String()
			entry = seq.MustNew("e", flank+core.String()+flank, seq.DNA)
		}
		score, _, _, err := fm.ScoreLocal(query, entry, scoring.DNASimple, gap, nil)
		if err != nil {
			t.Fatal(err)
		}
		ix := mustBuild(t, []*seq.Sequence{entry}, 8)
		for _, minScore := range []int64{1, score / 2, score, score + 1, score * 2} {
			if minScore < 1 {
				continue
			}
			cands, _, err := ix.Candidates(query, scoring.DNASimple, gap, minScore)
			if err != nil {
				t.Fatal(err)
			}
			kept := len(cands) == 1
			if score >= minScore && !kept {
				t.Fatalf("trial %d: entry with score %d pruned at minScore %d (lossless violated)", trial, score, minScore)
			}
			if kept && cands[0].UpperBound < score {
				t.Fatalf("trial %d: upper bound %d below the true score %d", trial, cands[0].UpperBound, score)
			}
		}
	}
}

func TestSeedFloorPrunesBackground(t *testing.T) {
	// With a high threshold on an identity-dominant matrix, random
	// background must be pruned while a high-identity homolog survives.
	query := seq.Random("q", 300, seq.DNA, 11)
	model := seq.MutationModel{SubstitutionRate: 0.005, InsertionRate: 0.001, DeletionRate: 0.001, MaxIndelRun: 2, IndelExtend: 0.2}
	hom, err := model.Mutate("hom", query, 12)
	if err != nil {
		t.Fatal(err)
	}
	db := []*seq.Sequence{hom}
	for i := 0; i < 99; i++ {
		db = append(db, seq.Random(fmt.Sprintf("bg%d", i), 300, seq.DNA, int64(100+i)))
	}
	ix := mustBuild(t, db, 8)
	cands, pr, err := ix.Candidates(query, scoring.DNASimple, scoring.Linear(-12), 1400)
	if err != nil {
		t.Fatal(err)
	}
	if pr.SeedFloor <= 0 {
		t.Fatalf("seed floor %d not positive at minScore 1400", pr.SeedFloor)
	}
	found := false
	for _, c := range cands {
		if c.Entry == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("homolog pruned: %+v", pr)
	}
	if pr.Candidates > pr.Scanned/5 {
		t.Fatalf("filter kept %d of %d entries; expected strong pruning", pr.Candidates, pr.Scanned)
	}
}

func TestNonIdentityMatrixDisablesSeedPruning(t *testing.T) {
	// BLOSUM has positive off-diagonal scores: the lemma must declare
	// itself unusable and the filter must keep every long-enough entry.
	b := index.ScoringBound(scoring.BLOSUM62, seq.Protein, scoring.Linear(-12))
	if b.Usable {
		t.Fatal("BLOSUM must not be identity-dominant")
	}
	if f := index.MinSharedGrams(3, b, 100, 200); f != 0 {
		t.Fatalf("floor %d for an unusable bound, want 0", f)
	}
	query := seq.Random("q", 120, seq.Protein, 21)
	db := []*seq.Sequence{seq.Random("a", 120, seq.Protein, 22), seq.Random("b", 130, seq.Protein, 23)}
	ix := mustBuild(t, db, 3)
	cands, _, err := ix.Candidates(query, scoring.BLOSUM62, scoring.Linear(-12), 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("unusable bound pruned entries: %d of 2 kept", len(cands))
	}
}

func TestScoringBound(t *testing.T) {
	b := index.ScoringBound(scoring.DNASimple, seq.DNA, scoring.Linear(-12))
	if !b.Usable || b.Match != 5 || b.ErrCost != 4 {
		t.Fatalf("DNASimple bound %+v, want match 5 errCost 4 usable", b)
	}
	b = index.ScoringBound(scoring.DNAStrict, seq.DNA, scoring.Linear(-2))
	if !b.Usable || b.Match != 1 || b.ErrCost != 1 {
		t.Fatalf("DNAStrict bound %+v", b)
	}
}

func TestCorpusNewAndLoad(t *testing.T) {
	seqs := make([]*seq.Sequence, 20)
	for i := range seqs {
		seqs[i] = seq.Random(fmt.Sprintf("s%d", i), 80, seq.DNA, int64(i))
	}
	c, err := index.New(seqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 20 || c.Index.Q() != 8 {
		t.Fatalf("corpus shape: len=%d q=%d", c.Len(), c.Index.Q())
	}

	path := t.TempDir() + "/corpus.fa"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.WriteFASTA(f, 70, seqs...); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := index.Load(path, seq.DNA, 0)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 20 || loaded.Path != path {
		t.Fatalf("loaded corpus: len=%d path=%q", loaded.Len(), loaded.Path)
	}
	if _, err := index.Load(t.TempDir()+"/missing.fa", seq.DNA, 0); err == nil {
		t.Fatal("missing corpus file must fail")
	}
}

// TestConcurrentProbes pins the advertised concurrency contract: an Index
// is immutable after Build, so concurrent Candidates calls must be
// race-free (run under -race in the CI search-service job).
func TestConcurrentProbes(t *testing.T) {
	db := make([]*seq.Sequence, 64)
	for i := range db {
		db[i] = seq.Random(fmt.Sprintf("s%d", i), 150+i, seq.DNA, int64(10+i))
	}
	ix := mustBuild(t, db, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				q := seq.Random("q", 100+((w*20+i)%80), seq.DNA, int64(w*1000+i))
				if _, _, err := ix.Candidates(q, scoring.DNASimple, scoring.Linear(-12), int64(50+i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
