package index

import (
	"fmt"
	"os"
	"time"

	"fastlsa/internal/seq"
)

// Corpus is a sequence database paired with its q-gram index — the cached
// search substrate a server loads once at startup (-corpus) and reuses
// across every request, instead of re-reading and re-indexing per query.
type Corpus struct {
	// Seqs are the database entries, in file order.
	Seqs []*seq.Sequence
	// Index is the q-gram inverted index over Seqs.
	Index *Index
	// Path is the FASTA file the corpus was loaded from ("" for in-memory
	// corpora built with New).
	Path string
	// LoadDur and BuildDur record how long the FASTA parse and the index
	// build took, for startup logs.
	LoadDur, BuildDur time.Duration
}

// New indexes an in-memory sequence set (q = 0 selects DefaultQ).
func New(seqs []*seq.Sequence, q int) (*Corpus, error) {
	start := time.Now()
	ix, err := Build(seqs, q)
	if err != nil {
		return nil, err
	}
	return &Corpus{Seqs: seqs, Index: ix, BuildDur: time.Since(start)}, nil
}

// Load reads a FASTA corpus and indexes it (q = 0 selects DefaultQ for the
// alphabet; a nil alphabet selects DNA, matching seq.ReadFASTA).
func Load(path string, a *seq.Alphabet, q int) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: corpus: %w", err)
	}
	defer f.Close()
	start := time.Now()
	seqs, err := seq.ReadFASTA(f, a)
	if err != nil {
		return nil, fmt.Errorf("index: corpus %s: %w", path, err)
	}
	if len(seqs) == 0 {
		return nil, fmt.Errorf("index: corpus %s holds no sequences", path)
	}
	loadDur := time.Since(start)
	c, err := New(seqs, q)
	if err != nil {
		return nil, fmt.Errorf("index: corpus %s: %w", path, err)
	}
	c.Path = path
	c.LoadDur = loadDur
	return c, nil
}

// Len reports the number of corpus entries.
func (c *Corpus) Len() int { return len(c.Seqs) }
