package index

import (
	"testing"

	"fastlsa/internal/seq"
)

// TestSampleStrideBounds: the probe stride must always yield between
// identitySamples/2 and identitySamples probes (inclusive) once the gram
// total exceeds the sample target, and probe every gram below it. The
// truncating divide this replaces probed up to ~2x identitySamples on
// totals just under an exact multiple of the target.
func TestSampleStrideBounds(t *testing.T) {
	totals := []int{
		1, 2, identitySamples - 1, identitySamples, identitySamples + 1,
		2*identitySamples - 1, // worst case of the old truncating stride
		2 * identitySamples, 2*identitySamples + 1,
		3*identitySamples - 1, 100 * identitySamples,
		identityWindow, identityWindow - 7,
	}
	for _, total := range totals {
		stride := sampleStride(total)
		if stride < 1 {
			t.Fatalf("total %d: stride %d < 1", total, stride)
		}
		samples := (total + stride - 1) / stride // probes at i = 0, stride, 2*stride, ...
		if total <= identitySamples {
			if samples != total {
				t.Fatalf("total %d below target: %d samples, want all %d", total, samples, total)
			}
			continue
		}
		if samples > identitySamples {
			t.Fatalf("total %d: %d samples exceed target %d (stride %d)", total, samples, identitySamples, stride)
		}
		if samples < identitySamples/2 {
			t.Fatalf("total %d: only %d samples, want at least %d (stride %d)", total, samples, identitySamples/2, stride)
		}
	}
}

// TestEstimateIdentityAllocs guards the scratch pooling: steady-state
// estimates must not reallocate the gram-count array (1 MiB at the DNA
// q=8 universe), only the two per-call gramCodes closures.
func TestEstimateIdentityAllocs(t *testing.T) {
	a, b, err := seq.HomologousPair(20_000, seq.DNA, seq.MutationModel{
		SubstitutionRate: 0.05, InsertionRate: 0.005, DeletionRate: 0.005,
		MaxIndelRun: 4, IndelExtend: 0.5,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pool so the measured runs reuse the scratch.
	if _, ok := EstimateIdentity(a, b, 0); !ok {
		t.Fatal("no estimate")
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, ok := EstimateIdentity(a, b, 0); !ok {
			t.Fatal("no estimate")
		}
	})
	// The two emit closures may escape; the 256 Ki-entry counts array must
	// not be among the per-run allocations.
	if allocs > 4 {
		t.Fatalf("EstimateIdentity allocates %.0f objects per run, want <= 4", allocs)
	}
}
