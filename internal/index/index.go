// Package index implements the q-gram seed filter that turns corpus search
// from a brute-force O(corpus·mn) scan into a filter-then-verify pipeline
// (the architecture of ALAE; see PAPERS.md): an inverted index maps every
// length-q substring ("q-gram") of a sequence corpus to the entries
// containing it, a probe counts the q-grams an entry shares with the query,
// and the q-gram lemma converts a minimum-score threshold into a minimum
// shared-seed count, so entries below the floor provably cannot reach the
// threshold and are pruned without ever running the exact kernel.
//
// # Losslessness
//
// Pruning is lossless by construction: Candidates only drops an entry when
// the scoring system proves no local alignment of score >= minScore can
// exist against it. The proof needs an identity-dominant matrix — every
// off-diagonal score non-positive, so only exact residue matches contribute
// positively (DNASimple, DNAStrict). For matrices with positive off-diagonal
// entries (BLOSUM, IUPAC) the seed floor degenerates to zero and the filter
// keeps every entry long enough to reach the threshold: still lossless, just
// without seed pruning (Probe.Lossy stays false either way).
//
// # The bound
//
// Consider any local alignment with score >= S under match score at most a,
// and every error column (mismatch or gap position) costing at least d > 0.
// With M identity columns and E error columns, a·M − d·E >= S, so
// E <= (a·M − S)/d, and M >= ceil(S/a). The M identities split into at most
// E+1 runs; a run of length r contributes max(0, r−q+1) q-grams that occur
// as exact substrings of both query and entry, so the multiset-shared q-gram
// count is at least
//
//	g(M) = M − (q−1)·(floor((a·M − S)/d) + 1)
//
// minimised over feasible M (ceil(S/a) <= M <= min(queryLen, entryLen)).
// MinSharedGrams clamps the minimum at zero; a positive floor prunes. The
// same inequality inverted gives ScoreUpperBound: from an observed shared
// count the best attainable score, used to rank candidates (verify the most
// promising first) and to abandon hopeless ones early.
package index

import (
	"fmt"
	"sort"

	"fastlsa/internal/fault"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
)

// siteProbe is the fault-injection point struck by every index probe, so
// chaos rehearsals cover the filter path of the search pipeline.
var siteProbe = fault.NewSite("index.probe")

// MaxGrams bounds the gram universe (alphabet^q) an index will allocate
// posting-list headers for; Build rejects larger q.
const MaxGrams = 4 << 20

// posting is one entry of an inverted list: the corpus position and how many
// times the gram occurs there (clamped at MaxUint32, which no real sequence
// reaches).
type posting struct {
	entry int32
	count uint32
}

// Index is an immutable q-gram inverted index over a sequence corpus. Build
// once, probe concurrently: Candidates performs no writes to shared state,
// so any number of goroutines may probe the same Index.
type Index struct {
	q        int
	alphabet *seq.Alphabet
	sigma    int
	powQ     int // sigma^q, the gram-code modulus
	lens     []int32
	grams    [][]posting
	distinct int
	postings int64
	residues int64
}

// Build constructs the inverted index for db with gram length q. Every entry
// must share one alphabet; alphabet^q must stay within MaxGrams (q up to 11
// for DNA, 4 for protein). Entries shorter than q contribute no grams but
// remain known to the index (they are handled by the length bound, not the
// seed floor). q = 0 selects DefaultQ for the corpus alphabet.
func Build(db []*seq.Sequence, q int) (*Index, error) {
	if len(db) == 0 {
		return nil, fmt.Errorf("index: empty corpus")
	}
	a := db[0].Alphabet
	if q == 0 {
		q = DefaultQ(a)
	}
	if q < 2 {
		return nil, fmt.Errorf("index: gram length %d must be >= 2", q)
	}
	powQ := 1
	for i := 0; i < q; i++ {
		if powQ > MaxGrams/a.Size() {
			return nil, fmt.Errorf("index: %s^%d grams exceed the %d limit (use a smaller q)", a.Name, q, MaxGrams)
		}
		powQ *= a.Size()
	}
	ix := &Index{
		q:        q,
		alphabet: a,
		sigma:    a.Size(),
		powQ:     powQ,
		lens:     make([]int32, len(db)),
		grams:    make([][]posting, powQ),
	}
	counts := make(map[int]uint32, 1024)
	for e, s := range db {
		if s.Alphabet.Name != a.Name {
			return nil, fmt.Errorf("index: entry %d uses alphabet %s, corpus is %s", e, s.Alphabet.Name, a.Name)
		}
		ix.lens[e] = int32(s.Len())
		ix.residues += int64(s.Len())
		clear(counts)
		gramCodes(s.Residues, a, q, powQ, func(code int) {
			counts[code]++
		})
		for code, n := range counts {
			if len(ix.grams[code]) == 0 {
				ix.distinct++
			}
			ix.grams[code] = append(ix.grams[code], posting{entry: int32(e), count: n})
			ix.postings++
		}
	}
	return ix, nil
}

// DefaultQ picks the largest gram length whose universe fits 4^8 codes:
// 8 for DNA, 4 for IUPAC DNA, 3 for protein. Bigger alphabets already
// discriminate well at short q; DNA needs longer grams for the same power.
func DefaultQ(a *seq.Alphabet) int {
	q := 1
	pow := a.Size()
	for pow*a.Size() <= 1<<16 {
		pow *= a.Size()
		q++
	}
	if q < 2 {
		q = 2
	}
	return q
}

// gramCodes streams the base-sigma code of every length-q window of res.
func gramCodes(res []byte, a *seq.Alphabet, q, powQ int, emit func(code int)) {
	if len(res) < q {
		return
	}
	sigma := a.Size()
	code := 0
	for i, c := range res {
		code = code*sigma + a.Index(c)
		if i >= q {
			code -= a.Index(res[i-q]) * powQ
		}
		if i >= q-1 {
			emit(code)
		}
	}
}

// Q reports the gram length; Entries the corpus size; Alphabet the residue
// universe; DistinctGrams and Postings the index shape; Residues the total
// corpus residue count.
func (ix *Index) Q() int                  { return ix.q }
func (ix *Index) Entries() int            { return len(ix.lens) }
func (ix *Index) Alphabet() *seq.Alphabet { return ix.alphabet }
func (ix *Index) DistinctGrams() int      { return ix.distinct }
func (ix *Index) Postings() int64         { return ix.postings }
func (ix *Index) Residues() int64         { return ix.residues }

// EntryLen reports the residue length of corpus entry e.
func (ix *Index) EntryLen(e int) int { return int(ix.lens[e]) }

// Bound is the scoring-system abstraction the q-gram lemma runs on.
type Bound struct {
	// Match is the maximum diagonal (identity) score a.
	Match int
	// ErrCost is the minimum cost d of one error column — the cheapest of
	// the mismatch penalties and the per-position gap penalty.
	ErrCost int
	// Usable reports whether the lemma applies: identity-dominant matrix
	// (no positive off-diagonal score) and ErrCost > 0. When false the
	// filter cannot seed-prune and falls back to length/score-cap bounds.
	Usable bool
	// MaxScore is the maximum matrix entry, the per-column score cap used
	// for the fallback upper bound when the lemma is not usable.
	MaxScore int
}

// ScoringBound derives the lemma parameters from a scoring system.
func ScoringBound(m *scoring.Matrix, a *seq.Alphabet, gap scoring.Gap) Bound {
	b := Bound{MaxScore: m.Max()}
	offMax := 0
	first := true
	for _, x := range a.Letters {
		if s := m.Score(x, x); s > b.Match {
			b.Match = s
		}
		for _, y := range a.Letters {
			if x == y {
				continue
			}
			s := m.Score(x, y)
			if first || s > offMax {
				offMax = s
				first = false
			}
		}
	}
	if first {
		// Single-letter alphabet: no mismatches exist; the gap penalty is
		// the only error cost.
		offMax = -(-gap.Extend)
	}
	b.ErrCost = -offMax
	if g := -gap.Extend; g < b.ErrCost {
		b.ErrCost = g
	}
	b.Usable = offMax <= 0 && b.ErrCost > 0 && b.Match > 0
	return b
}

// MinSharedGrams is the q-gram lemma floor: any local alignment scoring at
// least minScore against an entry allowing at most maxMatches identity
// columns (min of query and entry length) shares at least the returned
// number of q-grams with it. Zero means the bound cannot prune.
func MinSharedGrams(q int, b Bound, minScore int64, maxMatches int) int {
	if !b.Usable || minScore <= 0 {
		return 0
	}
	lo := int((minScore + int64(b.Match) - 1) / int64(b.Match)) // ceil(S/a)
	if lo > maxMatches {
		// No alignment can reach minScore at all; the caller prunes on the
		// length bound before consulting the seed floor.
		return 0
	}
	min := 0
	for m := lo; m <= maxMatches; m++ {
		e := (int64(b.Match)*int64(m) - minScore) / int64(b.ErrCost)
		g := m - (q-1)*(int(e)+1)
		if m == lo || g < min {
			min = g
		}
		if min <= 0 {
			return 0
		}
	}
	return min
}

// ScoreUpperBound inverts the lemma: the best local alignment score
// attainable against an entry sharing `shared` q-grams with the query, with
// at most maxMatches identity columns. Used to rank candidates and to
// abandon entries whose ceiling is already below the running top-K floor.
func ScoreUpperBound(q int, b Bound, shared, maxMatches int) int64 {
	if maxMatches <= 0 {
		return 0
	}
	if !b.Usable {
		perCol := b.MaxScore
		if perCol < 0 {
			perCol = 0
		}
		return int64(perCol) * int64(maxMatches)
	}
	// The feasible region is M <= shared + (q-1)(E+1), M <= maxMatches,
	// scored a·M − d·E. The optimum sits either at the error-free ceiling
	// (M = shared + q − 1) or at full matches with the fewest errors the
	// shared count allows; take the larger.
	mFree := shared + q - 1
	if mFree > maxMatches {
		mFree = maxMatches
	}
	ub := int64(b.Match) * int64(mFree)
	if maxMatches > shared {
		e := int64((maxMatches-shared+q-2)/(q-1)) - 1
		if e < 0 {
			e = 0
		}
		if alt := int64(b.Match)*int64(maxMatches) - int64(b.ErrCost)*e; alt > ub {
			ub = alt
		}
	}
	if ub < 0 {
		ub = 0
	}
	return ub
}

// Candidate is one corpus entry surviving the seed filter.
type Candidate struct {
	// Entry is the corpus position.
	Entry int
	// Shared is the multiset-shared q-gram count with the query.
	Shared int
	// UpperBound is the best local alignment score consistent with Shared
	// (see ScoreUpperBound). Candidates sort by it descending, so verifying
	// in order raises the top-K floor as fast as possible.
	UpperBound int64
}

// Probe reports what one Candidates call did, for selectivity accounting.
type Probe struct {
	// Scanned is the corpus size; Candidates how many entries survived.
	Scanned, Candidates int
	// PrunedShort counts entries too short to ever reach minScore,
	// PrunedSeeds entries below the q-gram lemma floor, and PrunedBound
	// entries whose score upper bound falls below minScore.
	PrunedShort, PrunedSeeds, PrunedBound int
	// SeedFloor is the lemma floor for a full-length entry (0 = the scoring
	// system admits no seed pruning).
	SeedFloor int
	// Selectivity is Candidates/Scanned.
	Selectivity float64
}

// Candidates probes the index: entries that could align against query with
// score >= minScore (max(minScore, 1) — a reportable hit must be positive),
// sorted by score upper bound descending. The pruning is lossless: every
// entry holding a local alignment of score >= minScore is returned (see the
// package comment for the argument).
func (ix *Index) Candidates(query *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, minScore int64) ([]Candidate, Probe, error) {
	pr := Probe{Scanned: ix.Entries()}
	if err := siteProbe.Hit(); err != nil {
		return nil, pr, fmt.Errorf("index: probe: %w", err)
	}
	if query.Alphabet.Name != ix.alphabet.Name {
		return nil, pr, fmt.Errorf("index: query alphabet %s does not match corpus alphabet %s", query.Alphabet.Name, ix.alphabet.Name)
	}
	if minScore < 1 {
		minScore = 1
	}
	b := ScoringBound(m, ix.alphabet, gap)
	qlen := query.Len()
	if b.Match <= 0 {
		// No positive-scoring column exists; no entry can produce a hit.
		return nil, pr, nil
	}
	mLo := int((minScore + int64(b.Match) - 1) / int64(b.Match))

	// Shared-gram accumulation: walk the query's gram multiset through the
	// posting lists. The accumulator is per-call state, so concurrent
	// probes never share writes.
	qCounts := make(map[int]uint32, qlen)
	gramCodes(query.Residues, ix.alphabet, ix.q, ix.powQ, func(code int) {
		qCounts[code]++
	})
	shared := make([]int32, ix.Entries())
	for code, qc := range qCounts {
		for _, p := range ix.grams[code] {
			c := p.count
			if qc < c {
				c = qc
			}
			shared[p.entry] += int32(c)
		}
	}

	// Seed floor per entry length, memoised over the (few) distinct
	// min(qlen, entryLen) values via a prefix-min over M.
	memo := make(map[int]int, 8)
	lookup := func(maxM int) int {
		if f, ok := memo[maxM]; ok {
			return f
		}
		f := MinSharedGrams(ix.q, b, minScore, maxM)
		memo[maxM] = f
		return f
	}
	pr.SeedFloor = lookup(qlen)

	cands := make([]Candidate, 0, 64)
	for e := range ix.lens {
		maxM := int(ix.lens[e])
		if qlen < maxM {
			maxM = qlen
		}
		if maxM < mLo {
			pr.PrunedShort++
			continue
		}
		sh := int(shared[e])
		if sh < lookup(maxM) {
			pr.PrunedSeeds++
			continue
		}
		ub := ScoreUpperBound(ix.q, b, sh, maxM)
		if ub < minScore {
			pr.PrunedBound++
			continue
		}
		cands = append(cands, Candidate{Entry: e, Shared: sh, UpperBound: ub})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].UpperBound != cands[j].UpperBound {
			return cands[i].UpperBound > cands[j].UpperBound
		}
		return cands[i].Entry < cands[j].Entry
	})
	pr.Candidates = len(cands)
	if pr.Scanned > 0 {
		pr.Selectivity = float64(pr.Candidates) / float64(pr.Scanned)
	}
	return cands, pr, nil
}
