package index_test

import (
	"fmt"
	"testing"

	"fastlsa/internal/index"
	"fastlsa/internal/seq"
)

func homologModel(d float64) seq.MutationModel {
	return seq.MutationModel{
		SubstitutionRate: d,
		InsertionRate:    d / 10,
		DeletionRate:     d / 10,
		MaxIndelRun:      4,
		IndelExtend:      0.5,
	}
}

// TestEstimateIdentityTracksDivergence checks the estimator's ordering and
// coarse calibration: identical pairs estimate 1, high-identity pairs
// estimate high, divergent pairs estimate low, and the estimate decreases
// as planted divergence grows.
func TestEstimateIdentityTracksDivergence(t *testing.T) {
	type level struct {
		d        float64
		min, max float64
	}
	// The f^(1/q) back-conversion is biased low on indel-bearing pairs
	// (indels shift frames, breaking q grams per event), so the bands are
	// deliberately wide; the router only needs a coarse signal.
	levels := []level{
		{0, 0.999, 1.0},
		{0.01, 0.93, 1.0},
		{0.05, 0.85, 0.99},
		{0.30, 0.0, 0.85},
		// Chance 8-gram collisions alone would floor the raw shared
		// fraction near (window grams)/4^8; the estimator subtracts that
		// background, so deeply divergent pairs must estimate well below
		// the 0.75 routing threshold instead of riding the floor.
		{0.60, 0.0, 0.70},
	}
	prev := 2.0
	for _, lv := range levels {
		t.Run(fmt.Sprintf("div=%.2f", lv.d), func(t *testing.T) {
			a, b, err := seq.HomologousPair(4000, seq.DNA, homologModel(lv.d), 11)
			if err != nil {
				t.Fatal(err)
			}
			id, ok := index.EstimateIdentity(a, b, 0)
			if !ok {
				t.Fatal("no estimate")
			}
			if id < lv.min || id > lv.max {
				t.Fatalf("divergence %.2f estimated identity %.3f, want [%.2f, %.2f]", lv.d, id, lv.min, lv.max)
			}
			if id > prev {
				t.Fatalf("estimate %.3f not monotone (previous level %.3f)", id, prev)
			}
			prev = id
		})
	}
}

func TestEstimateIdentityUnrelated(t *testing.T) {
	// Longer pairs fill more of the 4^8 code space with chance collisions,
	// so before the background correction the estimate grew with length
	// (an unrelated 8k pair estimated 0.76 — above the 0.75 routing
	// threshold, sending random pairs to the wavefront kernel's worst
	// case). Every length must stay far below the threshold now.
	for _, n := range []int{2000, 8000, 50_000} {
		a := seq.Random("a", n, seq.DNA, 1)
		b := seq.Random("b", n, seq.DNA, 999)
		id, ok := index.EstimateIdentity(a, b, 0)
		if !ok {
			t.Fatalf("n=%d: no estimate", n)
		}
		if id > 0.5 {
			t.Fatalf("unrelated n=%d pair estimated identity %.3f", n, id)
		}
	}
}

func TestEstimateIdentityUnestimable(t *testing.T) {
	short, err := seq.New("s", "ACG", seq.DNA)
	if err != nil {
		t.Fatal(err)
	}
	long := seq.Random("l", 100, seq.DNA, 3)
	prot := seq.Random("p", 100, seq.Protein, 4)
	if _, ok := index.EstimateIdentity(short, long, 0); ok {
		t.Fatal("sub-gram sequence should not estimate")
	}
	if _, ok := index.EstimateIdentity(long, prot, 0); ok {
		t.Fatal("mismatched alphabets should not estimate")
	}
	if _, ok := index.EstimateIdentity(nil, long, 0); ok {
		t.Fatal("nil sequence should not estimate")
	}
	if _, ok := index.EstimateIdentity(long, long, 64); ok {
		t.Fatal("oversized gram universe should not estimate")
	}
}

func TestEstimateIdentityLongInputsBounded(t *testing.T) {
	// Longer than the sampling window on both sides: the estimator must
	// still answer (from the windows) and stay fast.
	a, b, err := seq.HomologousPair(3_000_000, seq.DNA, homologModel(0.02), 5)
	if err != nil {
		t.Fatal(err)
	}
	id, ok := index.EstimateIdentity(a, b, 0)
	if !ok {
		t.Fatal("no estimate")
	}
	if id < 0.9 {
		t.Fatalf("high-identity long pair estimated %.3f", id)
	}
}
