package index

import (
	"math"
	"sync"

	"fastlsa/internal/seq"
)

// Windowing bounds of EstimateIdentity: at most identityWindow residues of
// each sequence are examined (further bounded by a quarter of the gram
// universe, so the chance-collision background stays small — see the f0
// correction below), and at most identitySamples grams of the longer window
// are probed, so an estimate costs O(window + samples) no matter how long
// the inputs are.
const (
	identityWindow  = 1 << 20
	identitySamples = 4096
	// identityMaxCodes bounds the gram-count array (int32 per code).
	identityMaxCodes = 1 << 18
)

// identityScratch is the reusable gram-count state of one estimate: a counts
// array sized for the largest permitted gram universe, and the list of codes
// actually incremented so resetting zeroes only the touched entries instead
// of memsetting the whole (up to 1 MiB) array.
type identityScratch struct {
	counts  []int32
	touched []int32
}

var identityScratchPool = sync.Pool{New: func() any { return new(identityScratch) }}

// reset zeroes every touched count and empties the touched list, leaving the
// scratch ready for reuse.
func (sc *identityScratch) reset() {
	for _, code := range sc.touched {
		sc.counts[code] = 0
	}
	sc.touched = sc.touched[:0]
}

// sampleStride returns the probe stride that spreads at most identitySamples
// probes evenly across total grams: ceil(total/identitySamples), so the
// sample count is bounded by identitySamples (a truncating divide would
// probe up to twice that on totals just under an exact multiple).
func sampleStride(total int) int {
	if total <= identitySamples {
		return 1
	}
	return (total + identitySamples - 1) / identitySamples
}

// EstimateIdentity cheaply estimates the per-residue identity of a sequence
// pair from shared q-gram content, the signal the backend router uses to
// pick WFA for low-divergence pairs. q <= 0 selects DefaultQ for the
// alphabet.
//
// The estimator counts the grams of the shorter sequence (one pass over a
// bounded prefix window) and probes a bounded stride-sample of the longer
// sequence's grams against those counts as a multiset (each hit consumes a
// count, so repeats are not over-credited). An unrelated probe gram still
// hits a reference multiset of R grams with probability about
// 1 − e^(−R/|codes|); that chance-collision background f0 is subtracted
// from the observed shared fraction and the remainder rescaled, so
// unrelated pairs estimate near zero regardless of window length (without
// this, long random pairs saturate the code space and estimate identity
// near one). If a background-corrected fraction f of sampled grams is
// shared, each residue independently surviving with probability p makes a
// whole gram survive with p^q, so the estimate is f^(1/q).
//
// ok is false when no estimate is possible: mismatched or missing
// alphabets, a sequence shorter than one gram, or a gram universe too large
// to count. Callers must treat !ok as "unknown", not "divergent".
func EstimateIdentity(a, b *seq.Sequence, q int) (identity float64, ok bool) {
	if a == nil || b == nil || a.Alphabet == nil || b.Alphabet == nil ||
		a.Alphabet.Name != b.Alphabet.Name {
		return 0, false
	}
	al := a.Alphabet
	if q <= 0 {
		q = DefaultQ(al)
	}
	powQ := 1
	for i := 0; i < q; i++ {
		if powQ > identityMaxCodes/al.Size() {
			return 0, false
		}
		powQ *= al.Size()
	}
	ra, rb := a.Residues, b.Residues
	window := powQ / 4
	if window > identityWindow {
		window = identityWindow
	}
	if len(ra) > window {
		ra = ra[:window]
	}
	if len(rb) > window {
		rb = rb[:window]
	}
	if len(ra) < q || len(rb) < q {
		return 0, false
	}
	ref, probe := ra, rb
	if len(rb) < len(ra) {
		ref, probe = rb, ra
	}
	sc := identityScratchPool.Get().(*identityScratch)
	if cap(sc.counts) < powQ {
		sc.counts = make([]int32, identityMaxCodes)
	}
	counts := sc.counts[:powQ]
	touched := sc.touched
	gramCodes(ref, al, q, powQ, func(code int) {
		if counts[code] == 0 {
			touched = append(touched, int32(code))
		}
		counts[code]++
	})
	total := len(probe) - q + 1
	stride := sampleStride(total)
	samples, hits, i := 0, 0, 0
	gramCodes(probe, al, q, powQ, func(code int) {
		if i%stride == 0 {
			samples++
			if counts[code] > 0 {
				counts[code]--
				hits++
			}
		}
		i++
	})
	sc.touched = touched
	sc.reset()
	identityScratchPool.Put(sc)
	if samples == 0 {
		return 0, false
	}
	f := float64(hits) / float64(samples)
	refGrams := len(ref) - q + 1
	f0 := 1 - math.Exp(-float64(refGrams)/float64(powQ))
	if f <= f0 {
		return 0, true
	}
	f = (f - f0) / (1 - f0)
	return math.Pow(f, 1/float64(q)), true
}
