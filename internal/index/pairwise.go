package index

import (
	"math"

	"fastlsa/internal/seq"
)

// Windowing bounds of EstimateIdentity: at most identityWindow residues of
// each sequence are examined, and at most identitySamples grams of the
// longer window are probed, so an estimate costs O(window + samples) no
// matter how long the inputs are.
const (
	identityWindow  = 1 << 20
	identitySamples = 4096
	// identityMaxCodes bounds the gram-count array (int32 per code).
	identityMaxCodes = 1 << 18
)

// EstimateIdentity cheaply estimates the per-residue identity of a sequence
// pair from shared q-gram content, the signal the backend router uses to
// pick WFA for low-divergence pairs. q <= 0 selects DefaultQ for the
// alphabet.
//
// The estimator counts the grams of the shorter sequence (one pass over a
// bounded prefix window) and probes a bounded stride-sample of the longer
// sequence's grams against those counts as a multiset (each hit consumes a
// count, so repeats are not over-credited). If a fraction f of sampled
// grams is shared, each residue independently surviving with probability p
// makes a whole gram survive with p^q, so the estimate is f^(1/q).
//
// ok is false when no estimate is possible: mismatched or missing
// alphabets, a sequence shorter than one gram, or a gram universe too large
// to count. Callers must treat !ok as "unknown", not "divergent".
func EstimateIdentity(a, b *seq.Sequence, q int) (identity float64, ok bool) {
	if a == nil || b == nil || a.Alphabet == nil || b.Alphabet == nil ||
		a.Alphabet.Name != b.Alphabet.Name {
		return 0, false
	}
	al := a.Alphabet
	if q <= 0 {
		q = DefaultQ(al)
	}
	powQ := 1
	for i := 0; i < q; i++ {
		if powQ > identityMaxCodes/al.Size() {
			return 0, false
		}
		powQ *= al.Size()
	}
	ra, rb := a.Residues, b.Residues
	if len(ra) > identityWindow {
		ra = ra[:identityWindow]
	}
	if len(rb) > identityWindow {
		rb = rb[:identityWindow]
	}
	if len(ra) < q || len(rb) < q {
		return 0, false
	}
	ref, probe := ra, rb
	if len(rb) < len(ra) {
		ref, probe = rb, ra
	}
	counts := make([]int32, powQ)
	gramCodes(ref, al, q, powQ, func(code int) {
		counts[code]++
	})
	total := len(probe) - q + 1
	stride := 1
	if total > identitySamples {
		stride = total / identitySamples
	}
	samples, hits, i := 0, 0, 0
	gramCodes(probe, al, q, powQ, func(code int) {
		if i%stride == 0 {
			samples++
			if counts[code] > 0 {
				counts[code]--
				hits++
			}
		}
		i++
	})
	if samples == 0 {
		return 0, false
	}
	f := float64(hits) / float64(samples)
	return math.Pow(f, 1/float64(q)), true
}
