package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// checkpointDir is the subdirectory of a journal holding grid-cache
// checkpoint blobs, one file per job. The blobs are opaque here — encoding
// and validation live in internal/core (see core.Checkpoint) — the store
// only guarantees atomic whole-file replacement via write-to-temp + rename,
// so a crash mid-save leaves the previous checkpoint intact rather than a
// torn one.
const checkpointDir = "checkpoints"

// checkpointPath maps a job ID to its blob file. Job IDs are engine-generated
// ("job-N"), but sanitize anyway: a path separator in an ID must not escape
// the store.
func (j *Journal) checkpointPath(jobID string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, jobID)
	return filepath.Join(j.dir, checkpointDir, safe+".ckpt")
}

// SaveCheckpoint atomically replaces the job's checkpoint blob and journals
// a checkpointed record so replay knows to look for it.
func (j *Journal) SaveCheckpoint(jobID string, blob []byte) error {
	path := j.checkpointPath(jobID)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return fmt.Errorf("journal: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: checkpoint: %w", err)
	}
	return j.Append(Record{Type: TypeCheckpointed, JobID: jobID})
}

// LoadCheckpoint returns the job's checkpoint blob, or nil when none exists.
// A missing checkpoint is not an error: resume falls back to a cold run.
func (j *Journal) LoadCheckpoint(jobID string) []byte {
	blob, err := os.ReadFile(j.checkpointPath(jobID))
	if err != nil {
		return nil
	}
	return blob
}

// RemoveCheckpoint deletes the job's checkpoint blob (terminal jobs don't
// need one). Missing files are fine.
func (j *Journal) RemoveCheckpoint(jobID string) {
	os.Remove(j.checkpointPath(jobID))
}
