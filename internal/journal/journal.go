// Package journal is the durability layer of the repository: a CRC32-framed,
// length-prefixed append-only write-ahead log recording job lifecycle events
// (accepted with the full request payload, started, retried, checkpointed,
// terminal), plus a sibling checkpoint store for grid-cache snapshots
// (internal/core's Options.Checkpoint sink writes through it).
//
// The format is deliberately boring — see docs/DURABILITY.md for the frame
// layout. The properties that matter:
//
//   - Every frame is independently verifiable: a 4-byte little-endian length,
//     a CRC32 (IEEE) of the payload, then the JSON payload. A torn tail —
//     short frame, bad CRC, absurd length — ends replay of that segment at
//     the last valid frame. Replay never panics on hostile bytes
//     (FuzzJournalReplay pins this).
//   - Segments rotate at a size threshold, and Open compacts: terminal jobs'
//     records and checkpoints are dropped, live jobs are rewritten into a
//     fresh segment, so the journal stays proportional to live work rather
//     than history.
//   - Fsync policy is explicit: "always" (sync every append — strongest,
//     slowest), "interval" (background sync, bounded loss window), "never"
//     (rely on the OS; crash-consistent but not power-fail-safe).
//
// Fault sites journal.append, journal.fsync and journal.replay make the
// layer chaos-testable (docs/RESILIENCE.md).
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fastlsa/internal/fault"
)

// Record types, in lifecycle order. A job's journal history is an accepted
// record (carrying the full request payload needed to rebuild its task),
// zero or more started/retried/checkpointed records, and at most one
// terminal record. A job whose history lacks a terminal record is re-enqueued
// on the next boot.
const (
	TypeAccepted     = "accepted"
	TypeStarted      = "started"
	TypeRetried      = "retried"
	TypeCheckpointed = "checkpointed"
	TypeTerminal     = "terminal"
)

// Record is one journal entry. Payload is opaque to the journal: the server
// stores the original POST /v1/jobs body there so recovery can rebuild the
// task without the client.
type Record struct {
	Type  string    `json:"type"`
	JobID string    `json:"jobId"`
	At    time.Time `json:"at,omitempty"`
	// Kind is the job kind ("align", "msa", "search"), set on accepted.
	Kind string `json:"kind,omitempty"`
	// Priority/TimeoutSec mirror the submission knobs, set on accepted.
	Priority int `json:"priority,omitempty"`
	// IdemKey is the client's Idempotency-Key header, set on accepted.
	IdemKey string `json:"idemKey,omitempty"`
	// Payload is the original request body, set on accepted.
	Payload json.RawMessage `json:"payload,omitempty"`
	// Attempt counts executions started so far, set on started/retried.
	Attempt int `json:"attempt,omitempty"`
	// State is the terminal state name (succeeded/failed/cancelled).
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
}

// Fsync policies.
const (
	FsyncAlways   = "always"
	FsyncInterval = "interval"
	FsyncNever    = "never"
)

// Options tunes a journal. The zero value is usable: 4 MiB segments,
// interval fsync every 100ms, compaction on open.
type Options struct {
	// SegmentBytes is the rotation threshold (default 4 MiB).
	SegmentBytes int64
	// Fsync selects the durability/latency trade: FsyncAlways, FsyncInterval
	// (default) or FsyncNever.
	Fsync string
	// FsyncEvery is the FsyncInterval period (default 100ms).
	FsyncEvery time.Duration
	// NoCompact disables the rewrite-on-open compaction (tests only; a
	// production journal without compaction grows without bound).
	NoCompact bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	switch o.Fsync {
	case FsyncAlways, FsyncInterval, FsyncNever:
	case "":
		o.Fsync = FsyncInterval
	default:
		o.Fsync = FsyncInterval
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 100 * time.Millisecond
	}
	return o
}

// ValidFsync reports whether s names a known fsync policy ("" selects the
// default).
func ValidFsync(s string) bool {
	switch s {
	case "", FsyncAlways, FsyncInterval, FsyncNever:
		return true
	}
	return false
}

// Stats is a point-in-time snapshot of a journal's counters, exported by the
// server as fastlsa_journal_appends_total / fastlsa_journal_bytes_total.
type Stats struct {
	// Appends counts frames written since open.
	Appends int64
	// Bytes counts frame bytes written since open (length + CRC + payload).
	Bytes int64
	// Truncated counts frames dropped during replay (torn tails, bad CRCs).
	Truncated int64
	// Compacted counts records discarded by the open-time compaction.
	Compacted int64
	// Segments is the current on-disk segment count.
	Segments int
}

// JobRecord is the aggregated replay state of one job: everything the server
// needs to re-enqueue it (or map an Idempotency-Key retry onto it).
type JobRecord struct {
	ID       string
	Kind     string
	Priority int
	IdemKey  string
	Payload  json.RawMessage
	Accepted time.Time
	// Attempts is the highest attempt number journalled (0 = never started).
	Attempts int
	// State is the terminal state name, "" while the job is live.
	State string
	Error string
	// HasCheckpoint reports a checkpointed record was seen; the blob itself
	// lives in the checkpoint store (LoadCheckpoint).
	HasCheckpoint bool
	seq           int // accept order
}

// Terminal reports whether the job reached a terminal state before the
// journal was last written.
func (j *JobRecord) Terminal() bool { return j.State != "" }

// ReplaySummary is the outcome of reading a journal directory.
type ReplaySummary struct {
	// Jobs holds every job seen, keyed by ID.
	Jobs map[string]*JobRecord
	// Pending lists the non-terminal jobs in accept order — the re-enqueue
	// worklist after a crash.
	Pending []*JobRecord
	// Records counts valid frames decoded.
	Records int
	// Truncated counts frames dropped (torn tail, bad CRC, bad JSON).
	Truncated int
	// Segments counts segment files read.
	Segments int
}

// Fault-injection points (see internal/fault and docs/RESILIENCE.md).
var (
	// siteAppend strikes before a frame is written: an injected error here
	// rehearses a full disk or I/O error on the append path.
	siteAppend = fault.NewSite("journal.append")
	// siteReplay strikes once per segment during replay.
	siteReplay = fault.NewSite("journal.replay")
	// siteFsync strikes before each sync; a delay here rehearses a slow disk.
	siteFsync = fault.NewSite("journal.fsync")
)

// Frame layout constants.
const (
	frameHeader = 8 // uint32 length + uint32 CRC32(payload), little-endian
	// maxFrame caps a decoded frame length: a corrupt length field must not
	// drive a multi-gigabyte allocation. 16 MiB comfortably exceeds any
	// request payload the server accepts.
	maxFrame = 16 << 20
)

// Journal is an open, writable journal. Safe for concurrent use.
type Journal struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File
	size    int64 // bytes in the current segment
	seq     int   // current segment number
	nseg    int   // total live segments
	closed  bool
	dirty   bool // appended since last sync
	stopSyn chan struct{}
	syncWG  sync.WaitGroup

	appends   atomic.Int64
	bytes     atomic.Int64
	truncated atomic.Int64
	compacted atomic.Int64
}

// Open opens (creating if needed) the journal under dir, replays every
// segment, compacts terminal jobs away, and returns the writable journal
// plus the replay summary. The summary's Pending list is the re-enqueue
// worklist. Corrupt or torn frames are dropped, never fatal.
func Open(dir string, opts Options) (*Journal, *ReplaySummary, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(filepath.Join(dir, checkpointDir), 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	sum, err := Replay(dir)
	if err != nil {
		return nil, nil, err
	}
	j := &Journal{dir: dir, opts: opts}
	j.truncated.Store(int64(sum.Truncated))
	if err := j.compact(sum); err != nil {
		return nil, nil, err
	}
	if j.f == nil { // compaction skipped: continue the newest segment
		if err := j.continueOrRotate(); err != nil {
			return nil, nil, err
		}
	}
	if opts.Fsync == FsyncInterval {
		j.stopSyn = make(chan struct{})
		j.syncWG.Add(1)
		go j.syncLoop()
	}
	return j, sum, nil
}

// Replay reads every segment under dir (read-only) and aggregates per-job
// state. Missing directory is an empty journal, not an error. Frames after
// a corrupt point in a segment are dropped (longest valid prefix); replay
// continues with the next segment.
func Replay(dir string) (*ReplaySummary, error) {
	sum := &ReplaySummary{Jobs: make(map[string]*JobRecord)}
	segs, err := segments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return sum, nil
		}
		return nil, err
	}
	for _, seg := range segs {
		if err := siteReplay.Hit(); err != nil {
			return nil, fmt.Errorf("journal: replay %s: %w", filepath.Base(seg), err)
		}
		data, err := os.ReadFile(seg)
		if err != nil {
			return nil, fmt.Errorf("journal: replay: %w", err)
		}
		recs, dropped := decodeSegment(data)
		sum.Segments++
		sum.Truncated += dropped
		for i := range recs {
			sum.apply(&recs[i])
		}
	}
	sort.Slice(sum.Pending, func(a, b int) bool { return sum.Pending[a].seq < sum.Pending[b].seq })
	return sum, nil
}

// apply folds one record into the aggregate. Records for jobs with no
// accepted record (compacted away or interleaved segments) still create an
// entry, so a terminal-only history doesn't resurrect on the next boot.
func (s *ReplaySummary) apply(r *Record) {
	s.Records++
	if r.JobID == "" {
		return
	}
	job := s.Jobs[r.JobID]
	if job == nil {
		job = &JobRecord{ID: r.JobID, seq: s.Records}
		s.Jobs[r.JobID] = job
	}
	switch r.Type {
	case TypeAccepted:
		job.Kind = r.Kind
		job.Priority = r.Priority
		job.IdemKey = r.IdemKey
		job.Payload = r.Payload
		job.Accepted = r.At
	case TypeStarted, TypeRetried:
		if r.Attempt > job.Attempts {
			job.Attempts = r.Attempt
		}
	case TypeCheckpointed:
		job.HasCheckpoint = true
	case TypeTerminal:
		job.State = r.State
		job.Error = r.Error
	}
	// Rebuild Pending lazily: cheaper to filter once at the end, but the
	// list is small and replay is startup-only — recompute terminality here.
	s.Pending = s.Pending[:0]
	for _, j := range s.Jobs {
		if !j.Terminal() && len(j.Payload) > 0 {
			s.Pending = append(s.Pending, j)
		}
	}
}

// decodeSegment decodes frames until the data ends or a frame fails to
// verify; the remainder is dropped and counted. This is the function the
// fuzzer drives: it must terminate and never panic on arbitrary input.
func decodeSegment(data []byte) (recs []Record, dropped int) {
	for len(data) > 0 {
		if len(data) < frameHeader {
			return recs, dropped + 1 // torn header
		}
		n := binary.LittleEndian.Uint32(data[0:4])
		sum := binary.LittleEndian.Uint32(data[4:8])
		if n == 0 || n > maxFrame || int(n) > len(data)-frameHeader {
			return recs, dropped + 1 // absurd or torn length
		}
		payload := data[frameHeader : frameHeader+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, dropped + 1 // bit flip
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, dropped + 1 // valid CRC over garbage JSON
		}
		recs = append(recs, rec)
		data = data[frameHeader+int(n):]
	}
	return recs, dropped
}

// Append writes one record as a framed entry, rotating the segment at the
// size threshold and syncing per the fsync policy.
func (j *Journal) Append(rec Record) error {
	if err := siteAppend.Hit(); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: append on closed journal")
	}
	if j.size+int64(len(frame)) > j.opts.SegmentBytes && j.size > 0 {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	j.size += int64(len(frame))
	j.appends.Add(1)
	j.bytes.Add(int64(len(frame)))
	j.dirty = true
	if j.opts.Fsync == FsyncAlways {
		return j.syncLocked()
	}
	return nil
}

// Sync forces an fsync of the current segment.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || j.f == nil {
		return nil
	}
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if !j.dirty {
		return nil
	}
	if err := siteFsync.Hit(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.dirty = false
	return nil
}

func (j *Journal) syncLoop() {
	defer j.syncWG.Done()
	t := time.NewTicker(j.opts.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = j.Sync() // a failed background sync retries next tick
		case <-j.stopSyn:
			return
		}
	}
}

// Close syncs and closes the journal. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	stop := j.stopSyn
	f := j.f
	var err error
	if f != nil && j.dirty {
		err = f.Sync()
		j.dirty = false
	}
	j.mu.Unlock()
	if stop != nil {
		close(stop)
		j.syncWG.Wait()
	}
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Stats snapshots the journal's counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	nseg := j.nseg
	j.mu.Unlock()
	return Stats{
		Appends:   j.appends.Load(),
		Bytes:     j.bytes.Load(),
		Truncated: j.truncated.Load(),
		Compacted: j.compacted.Load(),
		Segments:  nseg,
	}
}

// Dir returns the journal's directory.
func (j *Journal) Dir() string { return j.dir }

// segment file naming: wal-0000000001.log, ordered by number.
func segName(seq int) string { return fmt.Sprintf("wal-%010d.log", seq) }

func segments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []string
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && len(name) == len("wal-0000000001.log") &&
			name[:4] == "wal-" && filepath.Ext(name) == ".log" {
			segs = append(segs, filepath.Join(dir, name))
		}
	}
	sort.Strings(segs)
	return segs, nil
}

func segSeq(path string) int {
	var n int
	fmt.Sscanf(filepath.Base(path), "wal-%d.log", &n)
	return n
}

// continueOrRotate opens the newest segment for append (or creates the
// first). A segment with a torn tail is truncated to its valid prefix so
// new frames don't land after garbage.
func (j *Journal) continueOrRotate() error {
	segs, err := segments(j.dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.nseg = len(segs)
	if len(segs) == 0 {
		j.seq = 1
		j.nseg = 1
		return j.openSegment()
	}
	last := segs[len(segs)-1]
	j.seq = segSeq(last)
	data, err := os.ReadFile(last)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	valid := validPrefix(data)
	f, err := os.OpenFile(last, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if int64(valid) < int64(len(data)) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return fmt.Errorf("journal: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	j.f, j.size = f, int64(valid)
	return nil
}

// validPrefix returns the byte length of the longest decodable frame prefix.
func validPrefix(data []byte) int {
	off := 0
	for {
		rest := data[off:]
		if len(rest) < frameHeader {
			return off
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n == 0 || n > maxFrame || int(n) > len(rest)-frameHeader {
			return off
		}
		payload := rest[frameHeader : frameHeader+int(n)]
		if crc32.ChecksumIEEE(payload) != sum || !json.Valid(payload) {
			return off
		}
		off += frameHeader + int(n)
	}
}

func (j *Journal) openSegment() error {
	f, err := os.OpenFile(filepath.Join(j.dir, segName(j.seq)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.f, j.size = f, 0
	return nil
}

// rotateLocked closes the current segment and starts the next.
func (j *Journal) rotateLocked() error {
	if j.f != nil {
		if err := j.syncLocked(); err != nil {
			return err
		}
		if err := j.f.Close(); err != nil {
			return fmt.Errorf("journal: rotate: %w", err)
		}
	}
	j.seq++
	j.nseg++
	return j.openSegment()
}

// compact rewrites the journal to just the live jobs: one accepted record
// each (plus a checkpointed marker when a checkpoint exists), into a fresh
// segment; old segments and terminal jobs' checkpoints are deleted. Skipped
// when there is nothing to reclaim (single segment, no terminal jobs) or
// when Options.NoCompact is set.
func (j *Journal) compact(sum *ReplaySummary) error {
	if j.opts.NoCompact {
		return nil
	}
	terminal := len(sum.Jobs) - len(sum.Pending)
	if sum.Segments <= 1 && terminal == 0 {
		return nil
	}
	segs, err := segments(j.dir)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	next := 1
	if len(segs) > 0 {
		next = segSeq(segs[len(segs)-1]) + 1
	}
	j.seq, j.nseg = next, 1
	if err := j.openSegment(); err != nil {
		return err
	}
	for _, job := range sum.Pending {
		recs := []Record{{
			Type: TypeAccepted, JobID: job.ID, At: job.Accepted,
			Kind: job.Kind, Priority: job.Priority,
			IdemKey: job.IdemKey, Payload: job.Payload,
		}}
		if job.Attempts > 0 {
			recs = append(recs, Record{Type: TypeStarted, JobID: job.ID, Attempt: job.Attempts})
		}
		if job.HasCheckpoint {
			recs = append(recs, Record{Type: TypeCheckpointed, JobID: job.ID})
		}
		for _, rec := range recs {
			if err := j.Append(rec); err != nil {
				return err
			}
		}
	}
	if err := j.Sync(); err != nil {
		return err
	}
	for _, seg := range segs {
		if err := os.Remove(seg); err != nil {
			return fmt.Errorf("journal: compact: %w", err)
		}
	}
	for id, job := range sum.Jobs {
		if job.Terminal() {
			j.RemoveCheckpoint(id)
		}
	}
	j.compacted.Add(int64(sum.Records - len(sum.Pending)))
	return nil
}
