package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fastlsa/internal/fault"
)

func accept(t *testing.T, j *Journal, id, kind string, payload string) {
	t.Helper()
	if err := j.Append(Record{
		Type: TypeAccepted, JobID: id, Kind: kind, At: time.Now(),
		Payload: json.RawMessage(payload),
	}); err != nil {
		t.Fatalf("append accepted %s: %v", id, err)
	}
}

func terminal(t *testing.T, j *Journal, id, state string) {
	t.Helper()
	if err := j.Append(Record{Type: TypeTerminal, JobID: id, State: state}); err != nil {
		t.Fatalf("append terminal %s: %v", id, err)
	}
}

// TestRoundTrip: append a lifecycle, close, replay, and the aggregate must
// reflect every record.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, sum, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(sum.Jobs) != 0 {
		t.Fatalf("fresh journal has %d jobs", len(sum.Jobs))
	}
	accept(t, j, "job-1", "align", `{"type":"align"}`)
	if err := j.Append(Record{Type: TypeStarted, JobID: "job-1", Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	accept(t, j, "job-2", "search", `{"type":"search"}`)
	terminal(t, j, "job-2", "succeeded")
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	sum, err = Replay(dir)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if sum.Records != 4 || sum.Truncated != 0 {
		t.Fatalf("records=%d truncated=%d, want 4/0", sum.Records, sum.Truncated)
	}
	if len(sum.Pending) != 1 || sum.Pending[0].ID != "job-1" {
		t.Fatalf("pending = %+v, want [job-1]", sum.Pending)
	}
	j1 := sum.Jobs["job-1"]
	if j1.Kind != "align" || j1.Attempts != 1 || j1.Terminal() {
		t.Fatalf("job-1 aggregate wrong: %+v", j1)
	}
	if !sum.Jobs["job-2"].Terminal() || sum.Jobs["job-2"].State != "succeeded" {
		t.Fatalf("job-2 aggregate wrong: %+v", sum.Jobs["job-2"])
	}
}

// TestTornTail: a partial final frame (simulated crash mid-write) must be
// dropped on replay and truncated away on reopen so new appends are clean.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	accept(t, j, "job-1", "align", `{}`)
	accept(t, j, "job-2", "align", `{}`)
	j.Close()

	segs, _ := segments(dir)
	if len(segs) != 1 {
		t.Fatalf("segments = %d, want 1", len(segs))
	}
	data, _ := os.ReadFile(segs[0])
	// Chop mid-way through the last frame.
	if err := os.WriteFile(segs[0], data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	sum, err := Replay(dir)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if sum.Records != 1 || sum.Truncated != 1 {
		t.Fatalf("records=%d truncated=%d, want 1/1", sum.Records, sum.Truncated)
	}

	// Reopen (NoCompact so we exercise the truncate-and-continue path) and
	// append; the new record must be readable.
	j, _, err = Open(dir, Options{Fsync: FsyncNever, NoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	accept(t, j, "job-3", "align", `{}`)
	j.Close()
	sum, _ = Replay(dir)
	if sum.Records != 2 || sum.Truncated != 0 {
		t.Fatalf("after reopen: records=%d truncated=%d, want 2/0", sum.Records, sum.Truncated)
	}
	if sum.Jobs["job-3"] == nil {
		t.Fatal("job-3 lost after torn-tail reopen")
	}
}

// TestBitFlip: flipping a byte inside a frame drops that frame and the rest
// of the segment, never panics.
func TestBitFlip(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := Open(dir, Options{Fsync: FsyncNever})
	for _, id := range []string{"a", "b", "c"} {
		accept(t, j, id, "align", `{}`)
	}
	j.Close()
	segs, _ := segments(dir)
	data, _ := os.ReadFile(segs[0])
	mid := len(data) / 2
	data[mid] ^= 0x40
	os.WriteFile(segs[0], data, 0o644)
	sum, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Truncated == 0 || sum.Records >= 3 {
		t.Fatalf("bit flip not detected: records=%d truncated=%d", sum.Records, sum.Truncated)
	}
}

// TestRotation: appends beyond the segment threshold rotate; replay reads
// across segments in order.
func TestRotation(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncNever, SegmentBytes: 256, NoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		accept(t, j, "job-"+string(rune('a'+i)), "align", `{"pad":"0123456789012345678901234567890123456789"}`)
	}
	j.Close()
	segs, _ := segments(dir)
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", len(segs))
	}
	sum, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Records != 20 || len(sum.Pending) != 20 {
		t.Fatalf("records=%d pending=%d, want 20/20", sum.Records, len(sum.Pending))
	}
}

// TestCompaction: reopening a journal with terminal jobs rewrites it down to
// the live set and deletes terminal checkpoints.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := Open(dir, Options{Fsync: FsyncNever, SegmentBytes: 128})
	accept(t, j, "live", "align", `{"a":1}`)
	for i := 0; i < 10; i++ {
		id := "dead-" + string(rune('0'+i))
		accept(t, j, id, "align", `{}`)
		terminal(t, j, id, "succeeded")
	}
	if err := j.SaveCheckpoint("live", []byte("blob")); err != nil {
		t.Fatal(err)
	}
	if err := j.SaveCheckpoint("dead-0", []byte("stale")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, sum, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(sum.Pending) != 1 || sum.Pending[0].ID != "live" {
		t.Fatalf("pending after compaction = %+v", sum.Pending)
	}
	if !sum.Pending[0].HasCheckpoint {
		t.Fatal("live job lost its checkpoint marker")
	}
	if got := j2.LoadCheckpoint("live"); string(got) != "blob" {
		t.Fatalf("live checkpoint = %q", got)
	}
	if got := j2.LoadCheckpoint("dead-0"); got != nil {
		t.Fatal("terminal job's checkpoint survived compaction")
	}
	segs, _ := segments(dir)
	if len(segs) != 1 {
		t.Fatalf("segments after compaction = %d, want 1", len(segs))
	}
	// The compacted journal must replay to the same live set.
	sum2, _ := Replay(dir)
	if len(sum2.Pending) != 1 || sum2.Pending[0].ID != "live" ||
		string(sum2.Pending[0].Payload) != `{"a":1}` {
		t.Fatalf("compacted replay = %+v", sum2.Pending)
	}
	if j2.Stats().Compacted == 0 {
		t.Fatal("Stats.Compacted not counted")
	}
}

// TestIdempotencyKeyAggregation: the accepted record's IdemKey survives
// replay, which is what maps client retries across a crash.
func TestIdempotencyKeyAggregation(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := Open(dir, Options{Fsync: FsyncNever})
	j.Append(Record{Type: TypeAccepted, JobID: "job-1", IdemKey: "k-42",
		Kind: "align", Payload: json.RawMessage(`{}`)})
	j.Close()
	sum, _ := Replay(dir)
	if sum.Jobs["job-1"].IdemKey != "k-42" {
		t.Fatalf("idemKey = %q", sum.Jobs["job-1"].IdemKey)
	}
}

// TestConcurrentAppend: appends from many goroutines interleave without
// frame corruption (run under -race in CI).
func TestConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := Open(dir, Options{Fsync: FsyncInterval, FsyncEvery: time.Millisecond, SegmentBytes: 512})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				j.Append(Record{Type: TypeStarted, JobID: "job-1", Attempt: g*25 + i})
			}
		}(g)
	}
	wg.Wait()
	j.Close()
	sum, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Records != 200 || sum.Truncated != 0 {
		t.Fatalf("records=%d truncated=%d, want 200/0", sum.Records, sum.Truncated)
	}
	if st := j.Stats(); st.Appends != 200 || st.Bytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestAppendAfterClose fails cleanly (the shutdown path relies on this:
// abandoned jobs' events race the close and must not corrupt anything).
func TestAppendAfterClose(t *testing.T) {
	j, _, _ := Open(t.TempDir(), Options{Fsync: FsyncNever})
	j.Close()
	if err := j.Append(Record{Type: TypeStarted, JobID: "x"}); err == nil {
		t.Fatal("append after close succeeded")
	}
}

// TestFaultInjection: an armed journal.append error site must surface as an
// append error and leave the journal readable.
func TestFaultInjection(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := Open(dir, Options{Fsync: FsyncNever})
	accept(t, j, "ok", "align", `{}`)
	if err := fault.Arm("journal.append:error", 1); err != nil {
		t.Fatal(err)
	}
	defer fault.Disarm()
	err := j.Append(Record{Type: TypeStarted, JobID: "ok"})
	if err == nil {
		t.Fatal("armed journal.append did not inject")
	}
	fault.Disarm()
	accept(t, j, "ok2", "align", `{}`)
	j.Close()
	sum, _ := Replay(dir)
	if sum.Records != 2 || sum.Truncated != 0 {
		t.Fatalf("journal corrupted by injected append failure: %+v", sum)
	}
}

// TestValidFsync covers the flag-validation helper.
func TestValidFsync(t *testing.T) {
	for _, ok := range []string{"", FsyncAlways, FsyncInterval, FsyncNever} {
		if !ValidFsync(ok) {
			t.Errorf("ValidFsync(%q) = false", ok)
		}
	}
	if ValidFsync("sometimes") {
		t.Error(`ValidFsync("sometimes") = true`)
	}
}

// FuzzJournalReplay drives the segment decoder with arbitrary bytes split
// across two segments: it must terminate, never panic, and — when the input
// is a valid prefix plus garbage — recover exactly the valid prefix.
func FuzzJournalReplay(f *testing.F) {
	// Seed with a real journal: a lifecycle like the chaos test writes.
	seedDir := f.TempDir()
	j, _, err := Open(seedDir, Options{Fsync: FsyncNever, NoCompact: true})
	if err != nil {
		f.Fatal(err)
	}
	accept := func(id string) {
		j.Append(Record{Type: TypeAccepted, JobID: id, Kind: "align",
			Payload: json.RawMessage(`{"type":"align","align":{"a":"ACGT","b":"ACGA"}}`)})
	}
	accept("job-1")
	j.Append(Record{Type: TypeStarted, JobID: "job-1", Attempt: 1})
	accept("job-2")
	j.Append(Record{Type: TypeCheckpointed, JobID: "job-1"})
	j.Append(Record{Type: TypeTerminal, JobID: "job-2", State: "succeeded"})
	j.Close()
	segs, _ := segments(seedDir)
	seed, _ := os.ReadFile(segs[0])
	f.Add(seed, len(seed)/2)
	f.Add(seed[:len(seed)-3], 0)       // torn tail
	f.Add([]byte{}, 0)                 // empty
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}, 4) // absurd length
	flipped := bytes.Clone(seed)
	if len(flipped) > 20 {
		flipped[20] ^= 1
	}
	f.Add(flipped, 7)

	f.Fuzz(func(t *testing.T, data []byte, split int) {
		// Decode directly (must never panic)…
		recs, _ := decodeSegment(data)
		// …and the valid prefix must re-decode to the same records.
		vp := validPrefix(data)
		again, dropped := decodeSegment(data[:vp])
		if dropped != 0 {
			t.Fatalf("valid prefix of length %d re-decoded with %d drops", vp, dropped)
		}
		if len(again) != len(recs) {
			t.Fatalf("prefix decode %d records, full decode %d", len(again), len(recs))
		}
		// Full replay over two interleaved segment files must not panic and
		// must count every valid frame.
		dir := t.TempDir()
		if split < 0 {
			split = 0
		}
		if split > len(data) {
			split = len(data)
		}
		os.WriteFile(filepath.Join(dir, segName(1)), data[:split], 0o644)
		os.WriteFile(filepath.Join(dir, segName(2)), data[split:], 0o644)
		sum, err := Replay(dir)
		if err != nil {
			t.Fatalf("replay errored on hostile input: %v", err)
		}
		if sum.Records < len(decodeOnly(data[:split])) {
			t.Fatalf("replay lost records from the first segment")
		}
	})
}

func decodeOnly(data []byte) []Record {
	recs, _ := decodeSegment(data)
	return recs
}

// TestFrameEncoding pins the on-disk layout documented in DURABILITY.md:
// little-endian length, CRC32-IEEE of the payload, JSON payload.
func TestFrameEncoding(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := Open(dir, Options{Fsync: FsyncNever})
	accept(t, j, "job-1", "align", `{}`)
	j.Close()
	segs, _ := segments(dir)
	data, _ := os.ReadFile(segs[0])
	if len(data) < frameHeader {
		t.Fatal("frame shorter than header")
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	sum := binary.LittleEndian.Uint32(data[4:8])
	payload := data[frameHeader : frameHeader+int(n)]
	if crc32.ChecksumIEEE(payload) != sum {
		t.Fatal("CRC mismatch on freshly written frame")
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil || rec.JobID != "job-1" {
		t.Fatalf("payload not the record: %v %+v", err, rec)
	}
}
