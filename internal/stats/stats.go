// Package stats provides the per-run instrumentation and run control shared
// by every algorithm in the repository: DP-cell counters, wall-clock phase
// timers, derived quantities such as the recomputation factor that Theorems
// 1-4 of the paper bound analytically, and a cheap cancellation poll that the
// fill kernels consult between row sweeps so an abandoned run stops
// computing. All counters are safe for concurrent use and all methods are
// nil-receiver safe, so uninstrumented runs pay (almost) nothing.
package stats

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Counters accumulates the work performed by one alignment run.
type Counters struct {
	// Cells counts DP matrix entries computed (the paper's unit of work).
	Cells atomic.Int64
	// TracebackSteps counts FindPath moves produced.
	TracebackSteps atomic.Int64
	// BaseCases counts FastLSA base-case invocations.
	BaseCases atomic.Int64
	// GeneralCases counts FastLSA general-case invocations.
	GeneralCases atomic.Int64
	// FillTiles counts tiles executed by parallel fill phases.
	FillTiles atomic.Int64
	// PeakGridEntries tracks the maximum number of grid-cache entries live
	// at once (FastLSA space accounting).
	PeakGridEntries atomic.Int64
	// Phase1Tiles, Phase2Tiles, Phase3Tiles classify wavefront tiles into
	// the three phases of Figure 13 (ramp-up diagonals with < P tiles,
	// saturated middle, ramp-down).
	Phase1Tiles, Phase2Tiles, Phase3Tiles atomic.Int64
	// MeshShrinks counts parallel fills whose transient tile mesh was shrunk
	// below the requested (u, v) subdivision to fit the memory budget.
	MeshShrinks atomic.Int64
	// SeqFillFallbacks counts parallel fills that degraded all the way to the
	// sequential fill because even the minimum k-aligned mesh did not fit.
	SeqFillFallbacks atomic.Int64
	// PlannedFillTiles and ExecutedFillTiles compare the tile grid the
	// requested (u, v) subdivision would have run against the grid that
	// actually ran after budget-driven shrinking (0 executed on a sequential
	// fallback). Equal values mean no fill was degraded.
	PlannedFillTiles, ExecutedFillTiles atomic.Int64
	// SearchScanned counts database entries considered by corpus searches
	// (the index probe's scan, or every entry on a brute-force scan).
	SearchScanned atomic.Int64
	// SearchCandidates counts entries that survived the q-gram seed filter.
	// SearchCandidates / SearchScanned is the filter selectivity.
	SearchCandidates atomic.Int64
	// SearchExamined counts entries actually scored by the exact kernel at
	// the verify stage (candidates minus early-abandoned ones).
	SearchExamined atomic.Int64
	// CheckpointSaves counts grid-cache snapshots persisted through an
	// Options.Checkpoint sink (one per completed block-row of the root fill).
	CheckpointSaves atomic.Int64
	// CheckpointRestores counts runs that seeded their root grid cache from
	// a checkpoint: a restored run recomputes strictly fewer cells than a
	// cold one, which is the durability layer's whole point.
	CheckpointRestores atomic.Int64

	// cancelDone and cancelCtx carry the run's cancellation signal
	// (AttachContext). The kernels poll Cancelled between row sweeps; a nil
	// channel means the run can never be cancelled.
	cancelDone <-chan struct{}
	cancelCtx  context.Context

	// parent, when non-nil, receives a copy of every count recorded here
	// (Derive). It never carries a cancellation signal for this run, so a
	// Counters shared by concurrent runs stays race-free.
	parent *Counters
}

// Derive returns a per-run child of c bound to ctx's cancellation signal.
// Counts recorded on the child also accumulate into c (atomically, so c may
// be shared by many concurrent runs), but the cancellation signal stays
// private to the child: concurrent runs sharing c never observe each other's
// contexts, and c itself is never written. A nil receiver yields a free-
// standing child, counting only for itself.
func (c *Counters) Derive(ctx context.Context) *Counters {
	child := &Counters{parent: c}
	child.AttachContext(ctx)
	return child
}

// AttachContext registers ctx's cancellation signal with the counters, so
// every fill kernel the counters are threaded through aborts promptly (with
// ctx.Err()) once ctx is cancelled or its deadline passes. It is an
// unsynchronized write: attach before the run starts, and never to a
// Counters shared with concurrent runs — for those, attach to a per-run
// child from Derive instead. A nil ctx, or one that can never be cancelled,
// detaches.
func (c *Counters) AttachContext(ctx context.Context) {
	if c == nil {
		return
	}
	if ctx == nil || ctx.Done() == nil {
		c.cancelDone, c.cancelCtx = nil, nil
		return
	}
	c.cancelDone, c.cancelCtx = ctx.Done(), ctx
}

// Cancelled reports whether the attached context has been cancelled,
// returning its error (context.Canceled or context.DeadlineExceeded) if so.
// It is a single non-blocking channel poll — cheap enough for once-per-row
// use in the DP kernels — and nil-receiver safe.
func (c *Counters) Cancelled() error {
	if c == nil || c.cancelDone == nil {
		return nil
	}
	select {
	case <-c.cancelDone:
		return c.cancelCtx.Err()
	default:
		return nil
	}
}

// PollTargetCells is the shared cancellation-poll cadence: every DP fill
// loop performs one Cancelled check per ~8Ki computed cells, so poll overhead
// and cancellation latency are uniform across kernels regardless of row
// shape.
const PollTargetCells = 8192

// Poll is a cell-countdown cancellation poller, the one helper every fill
// loop in the repository uses. Tick it with the number of cells just
// computed (typically once per row sweep); it performs a Cancelled check
// each time PollTargetCells cells have accumulated. The zero Poll of a nil
// *Counters is valid and never cancels.
type Poll struct {
	c    *Counters
	left int64
}

// StartPoll returns a poller bound to c's cancellation signal, primed to
// perform its first check after PollTargetCells cells.
func (c *Counters) StartPoll() Poll {
	return Poll{c: c, left: PollTargetCells}
}

// Tick records that n more cells were computed and polls Cancelled once per
// PollTargetCells accumulated cells, returning the context error when the
// run was cancelled.
func (p *Poll) Tick(n int) error {
	p.left -= int64(n)
	if p.left > 0 {
		return nil
	}
	p.left = PollTargetCells
	return p.c.Cancelled()
}

// AddCells records n DP entries computed.
func (c *Counters) AddCells(n int64) {
	for ; c != nil; c = c.parent {
		c.Cells.Add(n)
	}
}

// AddTraceback records n traceback steps.
func (c *Counters) AddTraceback(n int64) {
	for ; c != nil; c = c.parent {
		c.TracebackSteps.Add(n)
	}
}

// AddBaseCase records a FastLSA base-case solve.
func (c *Counters) AddBaseCase() {
	for ; c != nil; c = c.parent {
		c.BaseCases.Add(1)
	}
}

// AddGeneralCase records a FastLSA general-case split.
func (c *Counters) AddGeneralCase() {
	for ; c != nil; c = c.parent {
		c.GeneralCases.Add(1)
	}
}

// AddFillTile records one executed wavefront tile.
func (c *Counters) AddFillTile() {
	for ; c != nil; c = c.parent {
		c.FillTiles.Add(1)
	}
}

// AddPhaseTiles classifies cnt tiles into wavefront phase p (1, 2 or 3).
func (c *Counters) AddPhaseTiles(p int, cnt int64) {
	for ; c != nil; c = c.parent {
		switch p {
		case 1:
			c.Phase1Tiles.Add(cnt)
		case 2:
			c.Phase2Tiles.Add(cnt)
		case 3:
			c.Phase3Tiles.Add(cnt)
		}
	}
}

// AddMeshShrink records one parallel fill whose tile mesh was shrunk to fit
// the budget.
func (c *Counters) AddMeshShrink() {
	for ; c != nil; c = c.parent {
		c.MeshShrinks.Add(1)
	}
}

// AddSeqFillFallback records one parallel fill degraded to the sequential
// path.
func (c *Counters) AddSeqFillFallback() {
	for ; c != nil; c = c.parent {
		c.SeqFillFallbacks.Add(1)
	}
}

// AddPlannedFillTiles records the tile count of the requested tiling.
func (c *Counters) AddPlannedFillTiles(n int64) {
	for ; c != nil; c = c.parent {
		c.PlannedFillTiles.Add(n)
	}
}

// AddExecutedFillTiles records the tile count of the tiling that ran.
func (c *Counters) AddExecutedFillTiles(n int64) {
	for ; c != nil; c = c.parent {
		c.ExecutedFillTiles.Add(n)
	}
}

// AddSearchScanned records n database entries considered by a corpus scan.
func (c *Counters) AddSearchScanned(n int64) {
	for ; c != nil; c = c.parent {
		c.SearchScanned.Add(n)
	}
}

// AddSearchCandidates records n entries surviving the seed filter.
func (c *Counters) AddSearchCandidates(n int64) {
	for ; c != nil; c = c.parent {
		c.SearchCandidates.Add(n)
	}
}

// AddSearchExamined records n entries scored by the exact verify stage.
func (c *Counters) AddSearchExamined(n int64) {
	for ; c != nil; c = c.parent {
		c.SearchExamined.Add(n)
	}
}

// AddCheckpointSave records one grid-cache snapshot persisted.
func (c *Counters) AddCheckpointSave() {
	for ; c != nil; c = c.parent {
		c.CheckpointSaves.Add(1)
	}
}

// AddCheckpointRestore records one run resumed from a checkpoint.
func (c *Counters) AddCheckpointRestore() {
	for ; c != nil; c = c.parent {
		c.CheckpointRestores.Add(1)
	}
}

// ObserveGridEntries raises the peak grid-entry watermark to n if larger.
func (c *Counters) ObserveGridEntries(n int64) {
	for ; c != nil; c = c.parent {
		for {
			cur := c.PeakGridEntries.Load()
			if n <= cur || c.PeakGridEntries.CompareAndSwap(cur, n) {
				break
			}
		}
	}
}

// RecomputationFactor is Cells / (m*n): 1.0 means no recomputation (full
// matrix), Hirschberg is ~2, FastLSA is bounded by (k/(k-1))^2 (Theorem 2).
func (c *Counters) RecomputationFactor(m, n int) float64 {
	if c == nil || m == 0 || n == 0 {
		return 0
	}
	return float64(c.Cells.Load()) / (float64(m) * float64(n))
}

// Snapshot is a plain-value copy of the counters. The JSON tags make it
// directly servable (the alignment section of the server's /v1/stats reply).
type Snapshot struct {
	Cells              int64 `json:"cells"`
	TracebackSteps     int64 `json:"traceback_steps"`
	BaseCases          int64 `json:"base_cases"`
	GeneralCases       int64 `json:"general_cases"`
	FillTiles          int64 `json:"fill_tiles"`
	PeakGridEntries    int64 `json:"peak_grid_entries"`
	Phase1Tiles        int64 `json:"phase1_tiles"`
	Phase2Tiles        int64 `json:"phase2_tiles"`
	Phase3Tiles        int64 `json:"phase3_tiles"`
	MeshShrinks        int64 `json:"mesh_shrinks"`
	SeqFillFallbacks   int64 `json:"seq_fill_fallbacks"`
	PlannedFillTiles   int64 `json:"planned_fill_tiles"`
	ExecutedFillTiles  int64 `json:"executed_fill_tiles"`
	SearchScanned      int64 `json:"search_scanned"`
	SearchCandidates   int64 `json:"search_candidates"`
	SearchExamined     int64 `json:"search_examined"`
	CheckpointSaves    int64 `json:"checkpoint_saves"`
	CheckpointRestores int64 `json:"checkpoint_restores"`
}

// Snapshot copies the current counter values.
func (c *Counters) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	return Snapshot{
		Cells:              c.Cells.Load(),
		TracebackSteps:     c.TracebackSteps.Load(),
		BaseCases:          c.BaseCases.Load(),
		GeneralCases:       c.GeneralCases.Load(),
		FillTiles:          c.FillTiles.Load(),
		PeakGridEntries:    c.PeakGridEntries.Load(),
		Phase1Tiles:        c.Phase1Tiles.Load(),
		Phase2Tiles:        c.Phase2Tiles.Load(),
		Phase3Tiles:        c.Phase3Tiles.Load(),
		MeshShrinks:        c.MeshShrinks.Load(),
		SeqFillFallbacks:   c.SeqFillFallbacks.Load(),
		PlannedFillTiles:   c.PlannedFillTiles.Load(),
		ExecutedFillTiles:  c.ExecutedFillTiles.Load(),
		SearchScanned:      c.SearchScanned.Load(),
		SearchCandidates:   c.SearchCandidates.Load(),
		SearchExamined:     c.SearchExamined.Load(),
		CheckpointSaves:    c.CheckpointSaves.Load(),
		CheckpointRestores: c.CheckpointRestores.Load(),
	}
}

// String implements fmt.Stringer.
func (s Snapshot) String() string {
	return fmt.Sprintf("cells=%d trace=%d base=%d general=%d tiles=%d(p1=%d p2=%d p3=%d planned=%d ran=%d) peakGrid=%d shrinks=%d seqFalls=%d search=%d/%d/%d",
		s.Cells, s.TracebackSteps, s.BaseCases, s.GeneralCases,
		s.FillTiles, s.Phase1Tiles, s.Phase2Tiles, s.Phase3Tiles,
		s.PlannedFillTiles, s.ExecutedFillTiles, s.PeakGridEntries,
		s.MeshShrinks, s.SeqFillFallbacks,
		s.SearchScanned, s.SearchCandidates, s.SearchExamined)
}

// Timer measures named phases of a run.
type Timer struct {
	mu     sync.Mutex
	phases map[string]time.Duration
	starts map[string]time.Time
}

// NewTimer returns an empty phase timer.
func NewTimer() *Timer {
	return &Timer{
		phases: make(map[string]time.Duration),
		starts: make(map[string]time.Time),
	}
}

// Start begins (or resumes) the named phase. Starting a phase that is
// already running is a no-op: the original start time stands, so the
// interval since it is not silently dropped by a redundant Start.
func (t *Timer) Start(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if _, running := t.starts[name]; !running {
		t.starts[name] = time.Now()
	}
	t.mu.Unlock()
}

// Stop ends the named phase and accumulates its duration.
func (t *Timer) Stop(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if s, ok := t.starts[name]; ok {
		t.phases[name] += time.Since(s)
		delete(t.starts, name)
	}
	t.mu.Unlock()
}

// Elapsed reports the accumulated duration of the named phase.
func (t *Timer) Elapsed(name string) time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	d := t.phases[name]
	t.mu.Unlock()
	return d
}

// Snapshot returns every phase's accumulated duration, with still-running
// phases charged up to now. The map is a copy, safe to retain or serialise.
func (t *Timer) Snapshot() map[string]time.Duration {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	out := make(map[string]time.Duration, len(t.phases)+len(t.starts))
	for name, d := range t.phases {
		out[name] = d
	}
	for name, s := range t.starts {
		out[name] += now.Sub(s)
	}
	t.mu.Unlock()
	return out
}
