package stats_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"fastlsa/internal/stats"
)

func TestNilReceiverSafety(t *testing.T) {
	var c *stats.Counters
	c.AddCells(10)
	c.AddTraceback(1)
	c.AddBaseCase()
	c.AddGeneralCase()
	c.AddFillTile()
	c.AddPhaseTiles(1, 5)
	c.ObserveGridEntries(9)
	if c.RecomputationFactor(10, 10) != 0 {
		t.Fatal("nil counters factor must be 0")
	}
	if c.Snapshot() != (stats.Snapshot{}) {
		t.Fatal("nil snapshot must be zero")
	}
	var tm *stats.Timer
	tm.Start("x")
	tm.Stop("x")
	if tm.Elapsed("x") != 0 {
		t.Fatal("nil timer must be inert")
	}
}

func TestCountersAccumulate(t *testing.T) {
	var c stats.Counters
	c.AddCells(100)
	c.AddCells(23)
	c.AddTraceback(7)
	c.AddBaseCase()
	c.AddBaseCase()
	c.AddGeneralCase()
	c.AddFillTile()
	c.AddPhaseTiles(1, 3)
	c.AddPhaseTiles(2, 5)
	c.AddPhaseTiles(3, 2)
	c.AddPhaseTiles(9, 100) // unknown phase ignored
	s := c.Snapshot()
	if s.Cells != 123 || s.TracebackSteps != 7 || s.BaseCases != 2 || s.GeneralCases != 1 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Phase1Tiles != 3 || s.Phase2Tiles != 5 || s.Phase3Tiles != 2 {
		t.Fatalf("phases %+v", s)
	}
	if got := c.RecomputationFactor(10, 10); got != 1.23 {
		t.Fatalf("factor = %v", got)
	}
	if !strings.Contains(s.String(), "cells=123") {
		t.Fatalf("string = %q", s.String())
	}
}

func TestObserveGridEntriesMonotone(t *testing.T) {
	var c stats.Counters
	c.ObserveGridEntries(10)
	c.ObserveGridEntries(5)
	c.ObserveGridEntries(20)
	c.ObserveGridEntries(15)
	if got := c.PeakGridEntries.Load(); got != 20 {
		t.Fatalf("peak = %d", got)
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c stats.Counters
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.AddCells(1)
				c.ObserveGridEntries(int64(i))
			}
		}()
	}
	wg.Wait()
	if c.Cells.Load() != 8000 {
		t.Fatalf("cells = %d", c.Cells.Load())
	}
	if c.PeakGridEntries.Load() != 999 {
		t.Fatalf("peak = %d", c.PeakGridEntries.Load())
	}
}

func TestTimer(t *testing.T) {
	tm := stats.NewTimer()
	tm.Start("fill")
	time.Sleep(5 * time.Millisecond)
	tm.Stop("fill")
	if tm.Elapsed("fill") < 2*time.Millisecond {
		t.Fatalf("elapsed = %v", tm.Elapsed("fill"))
	}
	// Stop without start is a no-op.
	tm.Stop("ghost")
	if tm.Elapsed("ghost") != 0 {
		t.Fatal("ghost phase must be zero")
	}
	// Accumulation across start/stop pairs.
	before := tm.Elapsed("fill")
	tm.Start("fill")
	time.Sleep(2 * time.Millisecond)
	tm.Stop("fill")
	if tm.Elapsed("fill") <= before {
		t.Fatal("timer must accumulate")
	}
}

// TestTimerDoubleStart pins the fix for the double-start bug: a redundant
// Start on a running phase must not reset the start time and drop the
// elapsed interval.
func TestTimerDoubleStart(t *testing.T) {
	tm := stats.NewTimer()
	tm.Start("fill")
	time.Sleep(5 * time.Millisecond)
	tm.Start("fill") // must be a no-op, not a reset
	tm.Stop("fill")
	if got := tm.Elapsed("fill"); got < 4*time.Millisecond {
		t.Fatalf("double Start dropped elapsed time: %v", got)
	}
}

func TestTimerSnapshot(t *testing.T) {
	tm := stats.NewTimer()
	tm.Start("fill")
	time.Sleep(3 * time.Millisecond)
	tm.Stop("fill")
	tm.Start("traceback")
	time.Sleep(3 * time.Millisecond)

	snap := tm.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d phases, want 2: %v", len(snap), snap)
	}
	if snap["fill"] < 2*time.Millisecond {
		t.Errorf("fill = %v, want >= 2ms", snap["fill"])
	}
	// A still-running phase is charged up to the snapshot moment.
	if snap["traceback"] < 2*time.Millisecond {
		t.Errorf("running traceback = %v, want >= 2ms", snap["traceback"])
	}
	// The snapshot is a copy: mutating it must not affect the timer.
	snap["fill"] = 0
	if tm.Elapsed("fill") < 2*time.Millisecond {
		t.Error("snapshot aliases the timer's map")
	}
	// Stopping the running phase keeps accumulating past the snapshot.
	tm.Stop("traceback")
	if tm.Elapsed("traceback") < snap["traceback"] {
		t.Errorf("post-stop traceback %v < snapshot %v", tm.Elapsed("traceback"), snap["traceback"])
	}

	var nilTimer *stats.Timer
	if nilTimer.Snapshot() != nil {
		t.Error("nil timer snapshot must be nil")
	}
}
