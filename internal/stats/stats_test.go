package stats_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"fastlsa/internal/stats"
)

func TestNilReceiverSafety(t *testing.T) {
	var c *stats.Counters
	c.AddCells(10)
	c.AddTraceback(1)
	c.AddBaseCase()
	c.AddGeneralCase()
	c.AddFillTile()
	c.AddPhaseTiles(1, 5)
	c.ObserveGridEntries(9)
	if c.RecomputationFactor(10, 10) != 0 {
		t.Fatal("nil counters factor must be 0")
	}
	if c.Snapshot() != (stats.Snapshot{}) {
		t.Fatal("nil snapshot must be zero")
	}
	var tm *stats.Timer
	tm.Start("x")
	tm.Stop("x")
	if tm.Elapsed("x") != 0 {
		t.Fatal("nil timer must be inert")
	}
}

func TestCountersAccumulate(t *testing.T) {
	var c stats.Counters
	c.AddCells(100)
	c.AddCells(23)
	c.AddTraceback(7)
	c.AddBaseCase()
	c.AddBaseCase()
	c.AddGeneralCase()
	c.AddFillTile()
	c.AddPhaseTiles(1, 3)
	c.AddPhaseTiles(2, 5)
	c.AddPhaseTiles(3, 2)
	c.AddPhaseTiles(9, 100) // unknown phase ignored
	s := c.Snapshot()
	if s.Cells != 123 || s.TracebackSteps != 7 || s.BaseCases != 2 || s.GeneralCases != 1 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Phase1Tiles != 3 || s.Phase2Tiles != 5 || s.Phase3Tiles != 2 {
		t.Fatalf("phases %+v", s)
	}
	if got := c.RecomputationFactor(10, 10); got != 1.23 {
		t.Fatalf("factor = %v", got)
	}
	if !strings.Contains(s.String(), "cells=123") {
		t.Fatalf("string = %q", s.String())
	}
}

func TestObserveGridEntriesMonotone(t *testing.T) {
	var c stats.Counters
	c.ObserveGridEntries(10)
	c.ObserveGridEntries(5)
	c.ObserveGridEntries(20)
	c.ObserveGridEntries(15)
	if got := c.PeakGridEntries.Load(); got != 20 {
		t.Fatalf("peak = %d", got)
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c stats.Counters
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.AddCells(1)
				c.ObserveGridEntries(int64(i))
			}
		}()
	}
	wg.Wait()
	if c.Cells.Load() != 8000 {
		t.Fatalf("cells = %d", c.Cells.Load())
	}
	if c.PeakGridEntries.Load() != 999 {
		t.Fatalf("peak = %d", c.PeakGridEntries.Load())
	}
}

func TestTimer(t *testing.T) {
	tm := stats.NewTimer()
	tm.Start("fill")
	time.Sleep(5 * time.Millisecond)
	tm.Stop("fill")
	if tm.Elapsed("fill") < 2*time.Millisecond {
		t.Fatalf("elapsed = %v", tm.Elapsed("fill"))
	}
	// Stop without start is a no-op.
	tm.Stop("ghost")
	if tm.Elapsed("ghost") != 0 {
		t.Fatal("ghost phase must be zero")
	}
	// Accumulation across start/stop pairs.
	before := tm.Elapsed("fill")
	tm.Start("fill")
	time.Sleep(2 * time.Millisecond)
	tm.Stop("fill")
	if tm.Elapsed("fill") <= before {
		t.Fatal("timer must accumulate")
	}
}
