// Package lastrow implements the score-only dynamic-programming kernel that
// every algorithm in this repository shares: propagate one row of DPM values
// across a rectangle, keeping O(n) space. The paper uses exactly this
// primitive as "the LastRow algorithm from Hirschberg" inside FastLSA's
// fillGridCache (§5.1) and as the FindScore phase of the linear-space
// algorithms (§2.2).
//
// Conventions: the rectangle covers DPM nodes (0..m, 0..n) in local
// coordinates, with residues a[0..m) on rows and b[0..n) on columns. The
// caller supplies the top boundary row (top[0..n], node row 0) and the left
// boundary column (left[0..m], node column 0) with top[0] == left[0] (the
// corner). Values are int64: even 10^6-residue alignments with |score| <= 64
// per cell stay far from overflow.
package lastrow

import (
	"fmt"

	"fastlsa/internal/scoring"
	"fastlsa/internal/stats"
)

// Boundary fills dst[0..n] with corner + i*gap, the standard leading-gap
// initialisation of row 0 / column 0 of the global DPM (Figure 1's first row
// and column), and returns it. If dst is nil or too small a new slice is
// allocated.
func Boundary(dst []int64, n int, corner, gap int64) []int64 {
	if cap(dst) < n+1 {
		dst = make([]int64, n+1)
	}
	dst = dst[:n+1]
	v := corner
	for i := 0; i <= n; i++ {
		dst[i] = v
		v += gap
	}
	return dst
}

// checkInputs validates the shared preconditions of Forward and Backward.
func checkInputs(kind string, a, b []byte, rowB, colB []int64) error {
	if len(rowB) != len(b)+1 {
		return fmt.Errorf("lastrow: %s: boundary row has %d entries, want %d", kind, len(rowB), len(b)+1)
	}
	if len(colB) != len(a)+1 {
		return fmt.Errorf("lastrow: %s: boundary column has %d entries, want %d", kind, len(colB), len(a)+1)
	}
	return nil
}

// Forward propagates DPM values from the top-left boundary to the bottom and
// right edges of the rectangle.
//
//   - a, b: row and column residues of the rectangle.
//   - top: node row 0 values (len n+1); left: node column 0 values (len m+1);
//     top[0] must equal left[0].
//   - outRow, if non-nil (len n+1), receives node row m; it may alias top, in
//     which case top is consumed as scratch.
//   - outCol, if non-nil (len m+1), receives node column n.
//
// The kernel allocates at most one scratch row (none when outRow is usable
// as scratch) and counts m*n cells on c.
func Forward(a, b []byte, m *scoring.Matrix, gap int64, top, left []int64, outRow, outCol []int64, c *stats.Counters) error {
	if err := checkInputs("Forward", a, b, top, left); err != nil {
		return err
	}
	if top[0] != left[0] {
		return fmt.Errorf("lastrow: Forward: corner mismatch: top[0]=%d left[0]=%d", top[0], left[0])
	}
	if outRow != nil && len(outRow) != len(b)+1 {
		return fmt.Errorf("lastrow: Forward: outRow has %d entries, want %d", len(outRow), len(b)+1)
	}
	if outCol != nil && len(outCol) != len(a)+1 {
		return fmt.Errorf("lastrow: Forward: outCol has %d entries, want %d", len(outCol), len(a)+1)
	}
	n := len(b)
	rows := len(a)

	// Choose the working row: reuse outRow when provided, otherwise scratch.
	row := outRow
	if row == nil {
		row = make([]int64, n+1)
	}
	if &row[0] != &top[0] {
		copy(row, top)
	}
	if outCol != nil {
		outCol[0] = top[n]
	}
	if rows == 0 {
		// Degenerate rectangle: row 0 is also row m.
		return nil
	}

	stride := stats.PollStride(n)
	for r := 0; r < rows; r++ {
		if r%stride == 0 {
			if err := c.Cancelled(); err != nil {
				return err
			}
		}
		srow := m.Row(a[r])
		diag := row[0]
		rv := left[r+1]
		row[0] = rv
		for j := 1; j <= n; j++ {
			up := row[j]
			best := diag + int64(srow[b[j-1]])
			if v := up + gap; v > best {
				best = v
			}
			if v := rv + gap; v > best {
				best = v
			}
			row[j] = best
			rv = best
			diag = up
		}
		if outCol != nil {
			outCol[r+1] = rv
		}
	}
	c.AddCells(int64(rows) * int64(n))
	return nil
}

// Backward propagates suffix scores from the bottom-right boundary to the top
// and left edges: out values are E[r][c] = best score of aligning a[r..m)
// against b[c..n) given E on row m (bottom) and column n (right).
//
//   - bottom: node row m values (len n+1); right: node column n values
//     (len m+1); bottom[n] must equal right[m].
//   - outRow, if non-nil (len n+1), receives node row 0; may alias bottom.
//   - outCol, if non-nil (len m+1), receives node column 0.
//
// Hirschberg's split step pairs Forward over the top half with Backward over
// the bottom half, with no reversed sequence copies.
func Backward(a, b []byte, m *scoring.Matrix, gap int64, bottom, right []int64, outRow, outCol []int64, c *stats.Counters) error {
	if err := checkInputs("Backward", a, b, bottom, right); err != nil {
		return err
	}
	n := len(b)
	rows := len(a)
	if bottom[n] != right[rows] {
		return fmt.Errorf("lastrow: Backward: corner mismatch: bottom[%d]=%d right[%d]=%d", n, bottom[n], rows, right[rows])
	}
	if outRow != nil && len(outRow) != n+1 {
		return fmt.Errorf("lastrow: Backward: outRow has %d entries, want %d", len(outRow), n+1)
	}
	if outCol != nil && len(outCol) != rows+1 {
		return fmt.Errorf("lastrow: Backward: outCol has %d entries, want %d", len(outCol), rows+1)
	}

	row := outRow
	if row == nil {
		row = make([]int64, n+1)
	}
	if &row[0] != &bottom[0] {
		copy(row, bottom)
	}
	if outCol != nil {
		outCol[rows] = bottom[0]
	}
	if rows == 0 {
		return nil
	}

	stride := stats.PollStride(n)
	for r := rows - 1; r >= 0; r-- {
		if r%stride == 0 {
			if err := c.Cancelled(); err != nil {
				return err
			}
		}
		srow := m.Row(a[r])
		diag := row[n]
		rv := right[r]
		row[n] = rv
		for j := n - 1; j >= 0; j-- {
			down := row[j]
			best := diag + int64(srow[b[j]])
			if v := down + gap; v > best {
				best = v
			}
			if v := rv + gap; v > best {
				best = v
			}
			row[j] = best
			rv = best
			diag = down
		}
		if outCol != nil {
			outCol[r] = rv
		}
	}
	c.AddCells(int64(rows) * int64(n))
	return nil
}

// Score computes just the global alignment score of a vs b in O(min(m,n))
// space (the FindScore phase on the whole DPM).
func Score(a, b []byte, m *scoring.Matrix, gap int64, c *stats.Counters) (int64, error) {
	top := Boundary(nil, len(b), 0, gap)
	left := Boundary(nil, len(a), 0, gap)
	out := make([]int64, len(b)+1)
	if err := Forward(a, b, m, gap, top, left, out, nil, c); err != nil {
		return 0, err
	}
	return out[len(b)], nil
}
