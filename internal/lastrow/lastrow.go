// Package lastrow exposes the score-only linear-gap DP sweeps under their
// historical names. The implementations live in internal/kernel (which also
// serves the affine model from the same code paths); these adapters exist
// for callers and tests that want the plain []int64 row interface of the
// paper's LastRow algorithm (§2.2, §5.1) without building kernel.Edge values
// themselves.
//
// Conventions: the rectangle covers DPM nodes (0..m, 0..n) in local
// coordinates, with residues a[0..m) on rows and b[0..n) on columns. The
// caller supplies the top boundary row (top[0..n], node row 0) and the left
// boundary column (left[0..m], node column 0) with top[0] == left[0] (the
// corner). Values are int64: even 10^6-residue alignments with |score| <= 64
// per cell stay far from overflow.
package lastrow

import (
	"fastlsa/internal/kernel"
	"fastlsa/internal/memory"
	"fastlsa/internal/scoring"
	"fastlsa/internal/stats"
)

// pool recycles the scratch rows of adapter calls that do not supply output
// buffers; callers wanting a private pool use internal/kernel directly.
var pool = memory.NewRowPool()

// Boundary fills dst[0..n] with corner + i*gap, the standard leading-gap
// initialisation of row 0 / column 0 of the global DPM (Figure 1's first row
// and column), and returns it. If dst is nil or too small a new slice is
// allocated.
func Boundary(dst []int64, n int, corner, gap int64) []int64 {
	return kernel.Boundary(dst, n, corner, gap)
}

// Forward propagates DPM values from the top-left boundary to the bottom and
// right edges of the rectangle.
//
//   - a, b: row and column residues of the rectangle.
//   - top: node row 0 values (len n+1); left: node column 0 values (len m+1);
//     top[0] must equal left[0].
//   - outRow, if non-nil (len n+1), receives node row m; it may alias top, in
//     which case top is consumed as scratch.
//   - outCol, if non-nil (len m+1), receives node column n.
//
// The kernel draws at most one scratch row from a shared pool (none when
// outRow is usable as scratch) and counts m*n cells on c.
func Forward(a, b []byte, m *scoring.Matrix, gap int64, top, left []int64, outRow, outCol []int64, c *stats.Counters) error {
	k := kernel.Kernel{M: m, Mod: kernel.Linear(gap), Pool: pool, C: c}
	return k.Forward(a, b,
		kernel.Edge{H: top}, kernel.Edge{H: left},
		kernel.Edge{H: outRow}, kernel.Edge{H: outCol})
}

// Backward propagates suffix scores from the bottom-right boundary to the top
// and left edges: out values are E[r][c] = best score of aligning a[r..m)
// against b[c..n) given E on row m (bottom) and column n (right).
//
//   - bottom: node row m values (len n+1); right: node column n values
//     (len m+1); bottom[n] must equal right[m].
//   - outRow, if non-nil (len n+1), receives node row 0; may alias bottom.
//   - outCol, if non-nil (len m+1), receives node column 0.
//
// Hirschberg's split step pairs Forward over the top half with Backward over
// the bottom half, with no reversed sequence copies.
func Backward(a, b []byte, m *scoring.Matrix, gap int64, bottom, right []int64, outRow, outCol []int64, c *stats.Counters) error {
	k := kernel.Kernel{M: m, Mod: kernel.Linear(gap), Pool: pool, C: c}
	return k.Backward(a, b,
		kernel.Edge{H: bottom}, kernel.Edge{H: right},
		kernel.Edge{H: outRow}, kernel.Edge{H: outCol})
}

// Score computes just the global alignment score of a vs b in O(min(m,n))
// space (the FindScore phase on the whole DPM).
func Score(a, b []byte, m *scoring.Matrix, gap int64, c *stats.Counters) (int64, error) {
	k := kernel.Kernel{M: m, Mod: kernel.Linear(gap), Pool: pool, C: c}
	return k.Score(a, b)
}
