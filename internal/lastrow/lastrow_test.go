package lastrow_test

import (
	"testing"
	"testing/quick"

	"fastlsa/internal/fm"
	"fastlsa/internal/kernel"
	"fastlsa/internal/lastrow"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/stats"
	"fastlsa/internal/testutil"
)

// fullMatrix computes the reference DPM with the kernel's stored-rectangle
// fill for comparison.
func fullMatrix(a, b []byte, m *scoring.Matrix, g int64, top, left []int64) []int64 {
	buf := make([]int64, (len(a)+1)*(len(b)+1))
	k := kernel.New(m, kernel.Linear(g), nil, nil)
	err := k.FillRect(a, b, kernel.Edge{H: top}, kernel.Edge{H: left}, kernel.Rect{H: buf})
	if err != nil {
		panic(err)
	}
	return buf
}

func TestBoundary(t *testing.T) {
	got := lastrow.Boundary(nil, 4, 0, -10)
	want := []int64{0, -10, -20, -30, -40}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Boundary[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Reuse of a larger destination.
	dst := make([]int64, 10)
	got = lastrow.Boundary(dst, 3, 5, -2)
	if len(got) != 4 || got[0] != 5 || got[3] != -1 {
		t.Fatalf("Boundary reuse = %v", got)
	}
}

func TestForwardMatchesFullMatrix(t *testing.T) {
	g := int64(-4)
	for seed := int64(0); seed < 10; seed++ {
		a, b := testutil.RandomPair(int(seed%15)+1, int(seed*3%20)+1, seq.DNA, seed)
		m := testutil.RandomMatrix(seq.DNA, seed)
		top := lastrow.Boundary(nil, b.Len(), 0, g)
		left := lastrow.Boundary(nil, a.Len(), 0, g)
		outRow := make([]int64, b.Len()+1)
		outCol := make([]int64, a.Len()+1)
		if err := lastrow.Forward(a.Residues, b.Residues, m, g, top, left, outRow, outCol, nil); err != nil {
			t.Fatal(err)
		}
		buf := fullMatrix(a.Residues, b.Residues, m, g, top, left)
		cols := b.Len() + 1
		for j := 0; j <= b.Len(); j++ {
			if outRow[j] != buf[a.Len()*cols+j] {
				t.Fatalf("seed %d: outRow[%d] = %d, matrix %d", seed, j, outRow[j], buf[a.Len()*cols+j])
			}
		}
		for r := 0; r <= a.Len(); r++ {
			if outCol[r] != buf[r*cols+b.Len()] {
				t.Fatalf("seed %d: outCol[%d] = %d, matrix %d", seed, r, outCol[r], buf[r*cols+b.Len()])
			}
		}
	}
}

// TestForwardAliasesTop verifies in-place operation when outRow aliases the
// top boundary.
func TestForwardAliasesTop(t *testing.T) {
	g := int64(-2)
	a, b := testutil.RandomPair(8, 9, seq.DNA, 3)
	m := scoring.DNASimple
	top := lastrow.Boundary(nil, b.Len(), 0, g)
	left := lastrow.Boundary(nil, a.Len(), 0, g)
	ref := make([]int64, b.Len()+1)
	if err := lastrow.Forward(a.Residues, b.Residues, m, g, top, left, ref, nil, nil); err != nil {
		t.Fatal(err)
	}
	top2 := lastrow.Boundary(nil, b.Len(), 0, g)
	if err := lastrow.Forward(a.Residues, b.Residues, m, g, top2, left, top2, nil, nil); err != nil {
		t.Fatal(err)
	}
	for j := range ref {
		if top2[j] != ref[j] {
			t.Fatalf("aliased run diverges at %d", j)
		}
	}
}

// TestBackwardMirrorsForward: Backward over (a, b) equals Forward over the
// reversed sequences with mirrored boundaries.
func TestBackwardMirrorsForward(t *testing.T) {
	g := int64(-3)
	for seed := int64(0); seed < 10; seed++ {
		a, b := testutil.RandomPair(int(seed%12)+1, int(seed*5%14)+1, seq.DNA, seed+50)
		m := testutil.RandomMatrix(seq.DNA, seed+50)

		bottom := make([]int64, b.Len()+1)
		right := make([]int64, a.Len()+1)
		for j := 0; j <= b.Len(); j++ {
			bottom[j] = int64(b.Len()-j) * g
		}
		for r := 0; r <= a.Len(); r++ {
			right[r] = int64(a.Len()-r) * g
		}
		outRow := make([]int64, b.Len()+1)
		if err := lastrow.Backward(a.Residues, b.Residues, m, g, bottom, right, outRow, nil, nil); err != nil {
			t.Fatal(err)
		}

		ar, br := a.Reverse(), b.Reverse()
		top := lastrow.Boundary(nil, br.Len(), 0, g)
		left := lastrow.Boundary(nil, ar.Len(), 0, g)
		fwd := make([]int64, br.Len()+1)
		if err := lastrow.Forward(ar.Residues, br.Residues, m, g, top, left, fwd, nil, nil); err != nil {
			t.Fatal(err)
		}
		for j := 0; j <= b.Len(); j++ {
			if outRow[j] != fwd[b.Len()-j] {
				t.Fatalf("seed %d: backward[%d]=%d, mirrored forward=%d", seed, j, outRow[j], fwd[b.Len()-j])
			}
		}
	}
}

func TestScore(t *testing.T) {
	a, b := testutil.HomologousPair(200, seq.DNA, 4)
	m := scoring.DNASimple
	g := scoring.Linear(-4)
	want, err := fm.Align(a, b, m, g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lastrow.Score(a.Residues, b.Residues, m, -4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != want.Score {
		t.Fatalf("Score = %d, want %d", got, want.Score)
	}
}

func TestInputValidation(t *testing.T) {
	a, b := testutil.RandomPair(3, 3, seq.DNA, 1)
	m := scoring.DNASimple
	good := lastrow.Boundary(nil, 3, 0, -1)
	short := make([]int64, 2)
	if err := lastrow.Forward(a.Residues, b.Residues, m, -1, short, good, nil, nil, nil); err == nil {
		t.Fatal("short top must fail")
	}
	if err := lastrow.Forward(a.Residues, b.Residues, m, -1, good, short, nil, nil, nil); err == nil {
		t.Fatal("short left must fail")
	}
	badCorner := lastrow.Boundary(nil, 3, 5, -1)
	if err := lastrow.Forward(a.Residues, b.Residues, m, -1, good, badCorner, nil, nil, nil); err == nil {
		t.Fatal("corner mismatch must fail")
	}
	if err := lastrow.Forward(a.Residues, b.Residues, m, -1, good, good, make([]int64, 2), nil, nil); err == nil {
		t.Fatal("short outRow must fail")
	}
	if err := lastrow.Forward(a.Residues, b.Residues, m, -1, good, good, nil, make([]int64, 2), nil); err == nil {
		t.Fatal("short outCol must fail")
	}
}

func TestCellsCounted(t *testing.T) {
	var c stats.Counters
	a, b := testutil.RandomPair(7, 11, seq.DNA, 2)
	top := lastrow.Boundary(nil, 11, 0, -1)
	left := lastrow.Boundary(nil, 7, 0, -1)
	if err := lastrow.Forward(a.Residues, b.Residues, scoring.DNASimple, -1, top, left, nil, nil, &c); err != nil {
		t.Fatal(err)
	}
	if c.Cells.Load() != 77 {
		t.Fatalf("cells = %d, want 77", c.Cells.Load())
	}
}

// TestForwardQuickAgainstMatrix is a quick-check property comparing the
// kernel to the stored matrix on arbitrary inputs and boundary offsets.
func TestForwardQuickAgainstMatrix(t *testing.T) {
	m := scoring.DNAStrict
	letters := []byte("ACGT")
	f := func(xa, xb []uint8, corner int16) bool {
		if len(xa) > 24 {
			xa = xa[:24]
		}
		if len(xb) > 24 {
			xb = xb[:24]
		}
		ra := make([]byte, len(xa))
		for i, v := range xa {
			ra[i] = letters[int(v)%4]
		}
		rb := make([]byte, len(xb))
		for i, v := range xb {
			rb[i] = letters[int(v)%4]
		}
		g := int64(-2)
		top := lastrow.Boundary(nil, len(rb), int64(corner), g)
		left := lastrow.Boundary(nil, len(ra), int64(corner), g)
		out := make([]int64, len(rb)+1)
		if err := lastrow.Forward(ra, rb, m, g, top, left, out, nil, nil); err != nil {
			return false
		}
		buf := fullMatrix(ra, rb, m, g, top, left)
		for j := 0; j <= len(rb); j++ {
			if out[j] != buf[len(ra)*(len(rb)+1)+j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
