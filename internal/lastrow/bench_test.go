package lastrow_test

import (
	"testing"

	"fastlsa/internal/lastrow"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/testutil"
)

// BenchmarkForward measures the core DP kernel in cells/second — the number
// every higher-level result divides into.
func BenchmarkForward(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		x, y := testutil.RandomPair(n, n, seq.DNA, int64(n))
		top := lastrow.Boundary(nil, n, 0, -4)
		left := lastrow.Boundary(nil, n, 0, -4)
		out := make([]int64, n+1)
		b.Run(sizeName(n), func(b *testing.B) {
			b.SetBytes(int64(n) * int64(n))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(out, top)
				if err := lastrow.Forward(x.Residues, y.Residues, scoring.DNASimple, -4, top, left, out, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBackward(b *testing.B) {
	const n = 1024
	x, y := testutil.RandomPair(n, n, seq.DNA, 7)
	bottom := make([]int64, n+1)
	right := make([]int64, n+1)
	for i := 0; i <= n; i++ {
		bottom[i] = int64(n-i) * -4
		right[i] = int64(n-i) * -4
	}
	out := make([]int64, n+1)
	b.SetBytes(n * n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := lastrow.Backward(x.Residues, y.Residues, scoring.DNASimple, -4, bottom, right, out, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1024 && n%1024 == 0:
		return "n" + itoa(n/1024) + "k"
	default:
		return "n" + itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
