package lastrow

import (
	"fmt"
	"math"

	"fastlsa/internal/scoring"
	"fastlsa/internal/stats"
)

// NegInf mirrors fm.NegInf (duplicated to avoid a dependency cycle): the
// unreachable-state sentinel for affine DP, safe to add penalties to.
const NegInf = math.MinInt64 / 4

// AffineBoundary fills the global top-boundary vectors for an affine model:
// H[j] = open + j*ext (H[0] = corner), and the gap-state vector G[j] that is
// live along this boundary (F for a row, E for a column) with the same
// values; the dead state receives NegInf and is not represented here.
// dst slices are allocated when nil.
func AffineBoundary(dstH, dstG []int64, n int, corner, open, ext int64) (h, g []int64) {
	if cap(dstH) < n+1 {
		dstH = make([]int64, n+1)
	}
	if cap(dstG) < n+1 {
		dstG = make([]int64, n+1)
	}
	dstH, dstG = dstH[:n+1], dstG[:n+1]
	dstH[0] = corner
	dstG[0] = NegInf
	for j := 1; j <= n; j++ {
		dstH[j] = corner + open + int64(j)*ext
		dstG[j] = dstH[j]
	}
	return dstH, dstG
}

// ForwardAffine propagates affine DP triples (H, E, F) across a rectangle in
// O(n) space, the affine counterpart of Forward. State convention matches
// fm.AlignAffine: H is the overall best at a node, E the best ending in an
// Up move, F the best ending in a Left move.
//
// Boundary inputs: the top row carries (topH, topE) — F is never read from a
// row boundary — and the left column carries (leftH, leftF) — E is never
// read from a column boundary. Outputs mirror them: the bottom row is
// (outRowH, outRowE), the right column (outColH, outColF). Output slices may
// be nil when not needed; outRowH/outRowE may alias topH/topE.
func ForwardAffine(a, b []byte, m *scoring.Matrix, open, ext int64,
	topH, topE, leftH, leftF []int64,
	outRowH, outRowE, outColH, outColF []int64, c *stats.Counters) error {

	n := len(b)
	rows := len(a)
	if len(topH) != n+1 || len(topE) != n+1 {
		return fmt.Errorf("lastrow: ForwardAffine: top boundary has %d/%d entries, want %d", len(topH), len(topE), n+1)
	}
	if len(leftH) != rows+1 || len(leftF) != rows+1 {
		return fmt.Errorf("lastrow: ForwardAffine: left boundary has %d/%d entries, want %d", len(leftH), len(leftF), rows+1)
	}
	if topH[0] != leftH[0] {
		return fmt.Errorf("lastrow: ForwardAffine: corner mismatch: topH[0]=%d leftH[0]=%d", topH[0], leftH[0])
	}
	checkOut := func(name string, s []int64, want int) error {
		if s != nil && len(s) != want {
			return fmt.Errorf("lastrow: ForwardAffine: %s has %d entries, want %d", name, len(s), want)
		}
		return nil
	}
	if err := checkOut("outRowH", outRowH, n+1); err != nil {
		return err
	}
	if err := checkOut("outRowE", outRowE, n+1); err != nil {
		return err
	}
	if err := checkOut("outColH", outColH, rows+1); err != nil {
		return err
	}
	if err := checkOut("outColF", outColF, rows+1); err != nil {
		return err
	}

	rowH, rowE := outRowH, outRowE
	if rowH == nil {
		rowH = make([]int64, n+1)
	}
	if rowE == nil {
		rowE = make([]int64, n+1)
	}
	if &rowH[0] != &topH[0] {
		copy(rowH, topH)
	}
	if &rowE[0] != &topE[0] {
		copy(rowE, topE)
	}
	if outColH != nil {
		outColH[0] = topH[n]
	}
	if outColF != nil {
		// The top boundary does not carry F, so the top-right corner's F is
		// unknown here — and also never consumed: the kernel only reads
		// leftF[1..], and a column boundary's row-0 entry seeds nothing.
		outColF[0] = NegInf
	}
	if rows == 0 {
		return nil
	}

	stride := stats.PollStride(n)
	for r := 0; r < rows; r++ {
		if r%stride == 0 {
			if err := c.Cancelled(); err != nil {
				return err
			}
		}
		srow := m.Row(a[r])
		diagH := rowH[0]
		h := leftH[r+1]
		f := leftF[r+1]
		rowH[0] = h
		rowE[0] = NegInf
		for j := 1; j <= n; j++ {
			upH, upE := rowH[j], rowE[j]
			e := upE + ext
			if v := upH + open + ext; v > e {
				e = v
			}
			fNew := f + ext
			if v := h + open + ext; v > fNew {
				fNew = v
			}
			f = fNew
			hNew := diagH + int64(srow[b[j-1]])
			if e > hNew {
				hNew = e
			}
			if f > hNew {
				hNew = f
			}
			h = hNew
			diagH = upH
			rowH[j] = h
			rowE[j] = e
		}
		if outColH != nil {
			outColH[r+1] = h
		}
		if outColF != nil {
			outColF[r+1] = f
		}
	}
	c.AddCells(int64(rows) * int64(n))
	return nil
}
