package scoring_test

import (
	"testing"

	"fastlsa/internal/fm"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
)

func TestIUPACBases(t *testing.T) {
	cases := map[byte]string{
		'A': "A", 'c': "C", 'R': "AG", 'y': "CT", 'N': "ACGT",
		'B': "CGT", 'V': "ACG", 'S': "GC", 'W': "AT", 'K': "GT",
		'M': "AC", 'D': "AGT", 'H': "ACT",
	}
	for code, want := range cases {
		if got := seq.IUPACBases(code); got != want {
			t.Errorf("IUPACBases(%c) = %q, want %q", code, got, want)
		}
	}
	if seq.IUPACBases('X') != "" {
		t.Fatal("unknown code must expand to empty")
	}
}

func TestDNAIUPACMatrix(t *testing.T) {
	m := scoring.DNAIUPAC
	if !m.Symmetric() {
		t.Fatal("IUPAC matrix must be symmetric")
	}
	// Exact bases keep the +5/-4 scheme.
	if m.Score('A', 'A') != 5 || m.Score('A', 'T') != -4 {
		t.Fatalf("exact-base scores: %d, %d", m.Score('A', 'A'), m.Score('A', 'T'))
	}
	// A vs R: (5 - 4) / 2 = 0.5, rounds to 1.
	if got := m.Score('A', 'R'); got != 1 {
		t.Fatalf("A/R = %d, want 1", got)
	}
	// A vs Y: (-4 - 4) / 2 = -4.
	if got := m.Score('A', 'Y'); got != -4 {
		t.Fatalf("A/Y = %d, want -4", got)
	}
	// N vs N: (4*5 + 12*(-4)) / 16 = -1.75 -> -2.
	if got := m.Score('N', 'N'); got != -2 {
		t.Fatalf("N/N = %d, want -2", got)
	}
	// R vs R: (2*5 + 2*(-4)) / 4 = 0.5 -> 1.
	if got := m.Score('R', 'R'); got != 1 {
		t.Fatalf("R/R = %d, want 1", got)
	}
	// Every ambiguous identity must be >= the disjoint-set score.
	if m.Score('R', 'R') <= m.Score('R', 'Y') {
		t.Fatal("overlapping sets must outscore disjoint sets")
	}
	if _, err := scoring.ByName("dna-iupac"); err != nil {
		t.Fatal(err)
	}
	if _, err := seq.ParseAlphabet("iupac"); err != nil {
		t.Fatal(err)
	}
}

// TestIUPACAlignment runs a small end-to-end alignment with ambiguity codes:
// an N-containing read aligned against a clean reference.
func TestIUPACAlignment(t *testing.T) {
	ref := seq.MustNew("ref", "ACGTACGTACGT", seq.DNAIUPAC)
	read := seq.MustNew("read", "ACGTNCGTACGT", seq.DNAIUPAC)
	res, err := fm.Align(ref, read, scoring.DNAIUPAC, scoring.Linear(-6), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 11 exact matches (+5) and one A/N column ((5-12)/4 = -1.75 -> -2).
	if res.Score != 11*5-2 {
		t.Fatalf("score = %d, want %d", res.Score, 11*5-2)
	}
	// The path must be a pure diagonal.
	if res.Path.String() != "DDDDDDDDDDDD" {
		t.Fatalf("path = %s", res.Path)
	}
}
