package scoring

import (
	"fmt"

	"fastlsa/internal/seq"
)

// Table1Alphabet is the six-residue alphabet of the paper's Table 1 excerpt
// (alanine, aspartic acid, lysine, leucine, threonine, valine).
var Table1Alphabet = mustAlpha("table1", "ADKLTV")

// Table1 is the exact portion of the modified Dayhoff scoring matrix printed
// as Table 1 of the paper: identities score 20 (16 for A), the functionally
// similar pair L/V scores 12, and every other printed pair scores 0. Together
// with a gap penalty of -10 it reproduces the Figure 1 worked example
// (optimal score 82 for TLDKLLKD vs TDVLKAD).
var Table1 = mustMatrix("table1", Table1Alphabet, 0, map[string]int{
	"AA": 16,
	"DD": 20,
	"KK": 20,
	"LL": 20,
	"TT": 20,
	"VV": 20,
	"LV": 12,
})

// PaperGapPenalty is the linear gap penalty used by the paper's examples.
const PaperGapPenalty = -10

func mustAlpha(name, letters string) *seq.Alphabet {
	a, err := seq.NewAlphabet(name, letters)
	if err != nil {
		panic(err)
	}
	return a
}

// buildFull constructs a symmetric matrix from an upper-triangular listing:
// rows[i] holds the scores of letter i against letters i..n-1.
func buildFull(name string, a *seq.Alphabet, rows [][]int) *Matrix {
	n := a.Size()
	if len(rows) != n {
		panic(fmt.Sprintf("scoring: %s: %d rows for %d letters", name, len(rows), n))
	}
	pairs := make(map[string]int, n*(n+1)/2)
	for i := 0; i < n; i++ {
		if len(rows[i]) != n-i {
			panic(fmt.Sprintf("scoring: %s: row %d has %d entries, want %d", name, i, len(rows[i]), n-i))
		}
		for j := i; j < n; j++ {
			pairs[string([]byte{a.Letters[i], a.Letters[j]})] = rows[i][j-i]
		}
	}
	return mustMatrix(name, a, 0, pairs)
}

// pam250 holds the classic Dayhoff PAM250 log-odds table (upper triangle,
// residue order ARNDCQEGHILKMFPSTWYV). MDM78 below is derived from it.
var pam250 = [][]int{
	/* A */ {2, -2, 0, 0, -2, 0, 0, 1, -1, -1, -2, -1, -1, -3, 1, 1, 1, -6, -3, 0},
	/* R */ {6, 0, -1, -4, 1, -1, -3, 2, -2, -3, 3, 0, -4, 0, 0, -1, 2, -4, -2},
	/* N */ {2, 2, -4, 1, 1, 0, 2, -2, -3, 1, -2, -3, 0, 1, 0, -4, -2, -2},
	/* D */ {4, -5, 2, 3, 1, 1, -2, -4, 0, -3, -6, -1, 0, 0, -7, -4, -2},
	/* C */ {12, -5, -5, -3, -3, -2, -6, -5, -5, -4, -3, 0, -2, -8, 0, -2},
	/* Q */ {4, 2, -1, 3, -2, -2, 1, -1, -5, 0, -1, -1, -5, -4, -2},
	/* E */ {4, 0, 1, -2, -3, 0, -2, -5, -1, 0, 0, -7, -4, -2},
	/* G */ {5, -2, -3, -4, -2, -3, -5, 0, 1, 0, -7, -5, -1},
	/* H */ {6, -2, -2, 0, -2, -2, 0, -1, -1, -3, 0, -2},
	/* I */ {5, 2, -2, 2, 1, -2, -1, 0, -5, -1, 4},
	/* L */ {6, -3, 4, 2, -3, -3, -2, -2, -1, 2},
	/* K */ {5, 0, -5, -1, 0, 0, -3, -4, -2},
	/* M */ {6, 0, -2, -2, -1, -4, -2, 2},
	/* F */ {9, -5, -3, -3, 0, 7, -1},
	/* P */ {6, 1, 0, -6, -5, -1},
	/* S */ {2, 1, -2, -3, -1},
	/* T */ {3, -5, -3, 0},
	/* W */ {17, 0, -6},
	/* Y */ {10, -2},
	/* V */ {4},
}

// PAM250 is the classic Dayhoff mutation-data log-odds matrix at 250 PAMs
// (contains negative entries; provided for completeness and for deriving
// MDM78 below).
var PAM250 = buildFull("pam250", seq.Protein, pam250)

// MDM78 is this reproduction's stand-in for the paper's full "MDM78 Mutation
// Data Matrix - 1978, scaled so that each entry is a non-negative integer"
// (the BioTools PepTool default). The exact proprietary scaling is not
// published; we use 2*PAM250 + 16, which is non-negative (PAM250 min is -8),
// preserves the Dayhoff similarity ordering exactly, and has the same
// magnitude as the Table 1 excerpt (identities land in the 20-50 range).
// See DESIGN.md §4 for the substitution record.
var MDM78 = func() *Matrix {
	rows := make([][]int, len(pam250))
	for i, r := range pam250 {
		rows[i] = make([]int, len(r))
		for j, v := range r {
			rows[i][j] = 2*v + 16
		}
	}
	return buildFull("mdm78", seq.Protein, rows)
}()

// blosum62 upper triangle, residue order ARNDCQEGHILKMFPSTWYV.
var blosum62 = [][]int{
	/* A */ {4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0},
	/* R */ {5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3},
	/* N */ {6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3},
	/* D */ {6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3},
	/* C */ {9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1},
	/* Q */ {5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2},
	/* E */ {5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2},
	/* G */ {6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3},
	/* H */ {8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3},
	/* I */ {4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3},
	/* L */ {4, -2, 2, 0, -3, -2, -1, -2, -1, 1},
	/* K */ {5, -1, -3, -1, 0, -1, -3, -2, -2},
	/* M */ {5, 0, -2, -1, -1, -1, -1, 1},
	/* F */ {6, -4, -2, -2, 1, 3, -1},
	/* P */ {7, -1, -1, -4, -3, -2},
	/* S */ {4, 1, -3, -2, -2},
	/* T */ {5, -2, -2, 0},
	/* W */ {11, 2, -3},
	/* Y */ {7, -1},
	/* V */ {4},
}

// BLOSUM62 is the standard BLOSUM62 protein similarity matrix.
var BLOSUM62 = buildFull("blosum62", seq.Protein, blosum62)

// DNASimple scores nucleotide matches +5 and mismatches -4 (the classic
// megablast-style scheme), kept symmetric and integer.
var DNASimple = func() *Matrix {
	pairs := map[string]int{}
	for _, x := range seq.DNA.Letters {
		for _, y := range seq.DNA.Letters {
			v := -4
			if x == y {
				v = 5
			}
			pairs[string([]byte{x, y})] = v
		}
	}
	return mustMatrix("dna", seq.DNA, -4, pairs)
}()

// DNAStrict scores matches +1 and mismatches -1 (edit-distance-like).
var DNAStrict = func() *Matrix {
	pairs := map[string]int{}
	for _, x := range seq.DNA.Letters {
		pairs[string([]byte{x, x})] = 1
	}
	return mustMatrix("dna-strict", seq.DNA, -1, pairs)
}()

// DNAIUPAC scores the full IUPAC nucleotide alphabet, NUC.4.4-style: the
// score of two (possibly ambiguous) codes is the expectation of the
// +5/-4 match/mismatch scheme over their base sets, rounded half away from
// zero. Exact pairs keep +5/-4; e.g. A/R scores (5-4)/2 -> 1 (rounded),
// N against anything scores negative (mostly mismatch mass).
var DNAIUPAC = func() *Matrix {
	pairs := map[string]int{}
	for _, x := range seq.DNAIUPAC.Letters {
		bx := seq.IUPACBases(x)
		for _, y := range seq.DNAIUPAC.Letters {
			by := seq.IUPACBases(y)
			sum := 0
			for i := 0; i < len(bx); i++ {
				for j := 0; j < len(by); j++ {
					if bx[i] == by[j] {
						sum += 5
					} else {
						sum -= 4
					}
				}
			}
			n := len(bx) * len(by)
			v := 0
			if sum >= 0 {
				v = (sum + n/2) / n
			} else {
				v = -((-sum + n/2) / n)
			}
			pairs[string([]byte{x, y})] = v
		}
	}
	return mustMatrix("dna-iupac", seq.DNAIUPAC, -4, pairs)
}()

// Uniform builds a match/mismatch matrix over an arbitrary alphabet; handy
// for tests and synthetic workloads.
func Uniform(a *seq.Alphabet, match, mismatch int) (*Matrix, error) {
	pairs := map[string]int{}
	for _, x := range a.Letters {
		pairs[string([]byte{x, x})] = match
	}
	return NewMatrix(fmt.Sprintf("uniform(%d,%d)", match, mismatch), a, mismatch, pairs)
}
