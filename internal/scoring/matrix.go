// Package scoring provides the similarity tables and gap-penalty models used
// by every alignment algorithm in this repository: the paper's Table 1
// modified-Dayhoff excerpt (exact values, used by the Figure 1 worked
// example), a full 20x20 non-negative "MDM78-like" protein matrix, BLOSUM62,
// and simple DNA match/mismatch schemes, plus linear and affine gap models.
package scoring

import (
	"fmt"
	"sort"
	"strings"

	"fastlsa/internal/seq"
)

// Matrix is a symmetric residue-pair similarity table with O(1) lookup.
// Higher scores denote higher similarity (paper §1.1).
type Matrix struct {
	// Name identifies the table ("table1", "blosum62", ...).
	Name string
	// Alphabet is the residue universe the table is defined over.
	Alphabet *seq.Alphabet

	table [256 * 256]int16
	min   int
	max   int
}

// NewMatrix builds a matrix over the alphabet from explicit pair scores.
// The pairs map uses two-letter keys ("AB"); each entry sets both (A,B) and
// (B,A). Pairs not listed default to defaultScore. Letters outside the
// alphabet are rejected.
func NewMatrix(name string, a *seq.Alphabet, defaultScore int, pairs map[string]int) (*Matrix, error) {
	if a == nil {
		return nil, fmt.Errorf("scoring: NewMatrix(%s): nil alphabet", name)
	}
	m := &Matrix{Name: name, Alphabet: a, min: defaultScore, max: defaultScore}
	if err := checkScore(name, defaultScore); err != nil {
		return nil, err
	}
	for _, x := range a.Letters {
		for _, y := range a.Letters {
			m.set(x, y, defaultScore)
		}
	}
	// Apply in sorted key order so duplicate-conflict detection is
	// deterministic.
	keys := make([]string, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	seen := map[[2]byte]int{}
	for _, k := range keys {
		if len(k) != 2 {
			return nil, fmt.Errorf("scoring: NewMatrix(%s): key %q is not a residue pair", name, k)
		}
		v := pairs[k]
		if err := checkScore(name, v); err != nil {
			return nil, err
		}
		x, y := upper(k[0]), upper(k[1])
		if !a.Contains(x) || !a.Contains(y) {
			return nil, fmt.Errorf("scoring: NewMatrix(%s): pair %q has a letter outside alphabet %s", name, k, a.Name)
		}
		key := [2]byte{x, y}
		if x > y {
			key = [2]byte{y, x}
		}
		if prev, dup := seen[key]; dup && prev != v {
			return nil, fmt.Errorf("scoring: NewMatrix(%s): conflicting scores %d and %d for pair %c%c", name, prev, v, key[0], key[1])
		}
		seen[key] = v
		m.set(x, y, v)
		m.set(y, x, v)
		if v < m.min {
			m.min = v
		}
		if v > m.max {
			m.max = v
		}
	}
	return m, nil
}

func checkScore(name string, v int) error {
	if v < -32768 || v > 32767 {
		return fmt.Errorf("scoring: NewMatrix(%s): score %d outside int16 range", name, v)
	}
	return nil
}

func mustMatrix(name string, a *seq.Alphabet, def int, pairs map[string]int) *Matrix {
	m, err := NewMatrix(name, a, def, pairs)
	if err != nil {
		panic(err)
	}
	return m
}

func (m *Matrix) set(x, y byte, v int) { m.table[int(x)<<8|int(y)] = int16(v) }

func upper(c byte) byte {
	if 'a' <= c && c <= 'z' {
		return c - 'a' + 'A'
	}
	return c
}

// Score returns the similarity of residues x and y. Lookups are
// case-insensitive for ASCII letters.
func (m *Matrix) Score(x, y byte) int {
	return int(m.table[int(upper(x))<<8|int(upper(y))])
}

// Row returns the 256-entry score row for residue x: Row(x)[y] == Score(x,y)
// for canonical (uppercase) residue bytes y. DP inner loops use this to avoid
// per-cell case folding; sequences built by internal/seq are already
// canonical.
func (m *Matrix) Row(x byte) *[256]int16 {
	off := int(upper(x)) << 8
	return (*[256]int16)(m.table[off : off+256])
}

// Min and Max report the extreme scores present in the table; useful for
// bounding DP values.
func (m *Matrix) Min() int { return m.min }
func (m *Matrix) Max() int { return m.max }

// Symmetric verifies S(x,y)==S(y,x) over the whole alphabet. Always true for
// matrices built by NewMatrix; exported for property tests over hand-built
// tables.
func (m *Matrix) Symmetric() bool {
	for _, x := range m.Alphabet.Letters {
		for _, y := range m.Alphabet.Letters {
			if m.Score(x, y) != m.Score(y, x) {
				return false
			}
		}
	}
	return true
}

// String renders the full table, BLAST-style.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s over %s\n  ", m.Name, m.Alphabet.Name)
	for _, c := range m.Alphabet.Letters {
		fmt.Fprintf(&b, " %3c", c)
	}
	b.WriteByte('\n')
	for _, x := range m.Alphabet.Letters {
		fmt.Fprintf(&b, "%c ", x)
		for _, y := range m.Alphabet.Letters {
			fmt.Fprintf(&b, " %3d", m.Score(x, y))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ByName resolves a built-in matrix. Recognised names: "table1",
// "mdm78" (alias "dayhoff"), "blosum62", "dna", "dna-strict", "dna-iupac".
func ByName(name string) (*Matrix, error) {
	switch strings.ToLower(name) {
	case "table1":
		return Table1, nil
	case "mdm78", "dayhoff":
		return MDM78, nil
	case "blosum62":
		return BLOSUM62, nil
	case "dna":
		return DNASimple, nil
	case "dna-strict":
		return DNAStrict, nil
	case "dna-iupac", "iupac":
		return DNAIUPAC, nil
	default:
		return nil, fmt.Errorf("scoring: unknown matrix %q", name)
	}
}
