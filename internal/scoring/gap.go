package scoring

import "fmt"

// Gap is a gap-penalty model. A gap of length L >= 1 costs Open + L*Extend
// (both fields are non-positive; the cost is added to the alignment score).
// Open == 0 yields the linear model the paper uses; Open < 0 yields the
// affine (Gotoh) model implemented as an extension in this repository.
type Gap struct {
	// Open is the one-time penalty charged when a gap is opened.
	Open int
	// Extend is the per-residue penalty charged for every gapped position,
	// including the first.
	Extend int
}

// Linear returns the paper's gap model: each gapped position costs g.
func Linear(g int) Gap { return Gap{Open: 0, Extend: g} }

// Affine returns a Gotoh-style gap model.
func Affine(open, extend int) Gap { return Gap{Open: open, Extend: extend} }

// PaperGap is the gap model of the paper's worked examples (-10 per gap).
var PaperGap = Linear(PaperGapPenalty)

// IsLinear reports whether the model degenerates to the linear case.
func (g Gap) IsLinear() bool { return g.Open == 0 }

// Cost returns the total penalty of a gap of length n (0 for n <= 0).
func (g Gap) Cost(n int) int {
	if n <= 0 {
		return 0
	}
	return g.Open + n*g.Extend
}

// Validate rejects models that would make "maximise score" degenerate
// (non-negative extension) or that reward opening gaps.
func (g Gap) Validate() error {
	if g.Extend >= 0 {
		return fmt.Errorf("scoring: gap extend penalty %d must be negative", g.Extend)
	}
	if g.Open > 0 {
		return fmt.Errorf("scoring: gap open penalty %d must be non-positive", g.Open)
	}
	return nil
}

// String implements fmt.Stringer.
func (g Gap) String() string {
	if g.IsLinear() {
		return fmt.Sprintf("linear(%d)", g.Extend)
	}
	return fmt.Sprintf("affine(open=%d, extend=%d)", g.Open, g.Extend)
}
