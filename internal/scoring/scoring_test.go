package scoring_test

import (
	"strings"
	"testing"
	"testing/quick"

	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
)

// TestTable1ExactValues pins the paper's Table 1 entries exactly.
func TestTable1ExactValues(t *testing.T) {
	m := scoring.Table1
	cases := []struct {
		x, y byte
		want int
	}{
		{'A', 'A', 16},
		{'D', 'D', 20},
		{'K', 'K', 20},
		{'L', 'L', 20},
		{'T', 'T', 20},
		{'V', 'V', 20},
		{'L', 'V', 12},
		{'V', 'L', 12},
		{'K', 'L', 0},
		{'T', 'L', 0},
		{'A', 'D', 0},
	}
	for _, tc := range cases {
		if got := m.Score(tc.x, tc.y); got != tc.want {
			t.Errorf("Table1[%c,%c] = %d, want %d", tc.x, tc.y, got, tc.want)
		}
	}
	if !m.Symmetric() {
		t.Fatal("Table1 must be symmetric")
	}
}

func TestBuiltinMatrices(t *testing.T) {
	for _, m := range []*scoring.Matrix{
		scoring.Table1, scoring.MDM78, scoring.PAM250, scoring.BLOSUM62,
		scoring.DNASimple, scoring.DNAStrict,
	} {
		if !m.Symmetric() {
			t.Errorf("%s is not symmetric", m.Name)
		}
		// Identity must never score below any pairing with the same residue
		// for these standard matrices.
		for _, x := range m.Alphabet.Letters {
			if m.Score(x, x) < m.Min() {
				t.Errorf("%s: diagonal below minimum for %c", m.Name, x)
			}
		}
	}
	// MDM78 must be non-negative everywhere, as the paper requires.
	if scoring.MDM78.Min() < 0 {
		t.Fatalf("MDM78 min = %d, want >= 0", scoring.MDM78.Min())
	}
	// BLOSUM62 spot checks against the published table.
	checks := []struct {
		x, y byte
		want int
	}{
		{'W', 'W', 11}, {'A', 'A', 4}, {'L', 'V', 1}, {'E', 'Q', 2},
		{'C', 'C', 9}, {'W', 'C', -2}, {'P', 'F', -4}, {'I', 'V', 3},
	}
	for _, c := range checks {
		if got := scoring.BLOSUM62.Score(c.x, c.y); got != c.want {
			t.Errorf("BLOSUM62[%c,%c] = %d, want %d", c.x, c.y, got, c.want)
		}
	}
	// PAM250 -> MDM78 scaling is 2v+16 (order preserving).
	if got, want := scoring.MDM78.Score('W', 'W'), 2*17+16; got != want {
		t.Errorf("MDM78[W,W] = %d, want %d", got, want)
	}
	if got, want := scoring.MDM78.Score('C', 'W'), 2*-8+16; got != want {
		t.Errorf("MDM78[C,W] = %d, want %d", got, want)
	}
}

func TestScoreCaseInsensitive(t *testing.T) {
	if scoring.BLOSUM62.Score('a', 'a') != scoring.BLOSUM62.Score('A', 'A') {
		t.Fatal("lookup must fold case")
	}
}

func TestRowAccessor(t *testing.T) {
	m := scoring.BLOSUM62
	row := m.Row('W')
	for _, y := range seq.Protein.Letters {
		if int(row[y]) != m.Score('W', y) {
			t.Fatalf("Row(W)[%c] = %d, want %d", y, row[y], m.Score('W', y))
		}
	}
}

func TestNewMatrixValidation(t *testing.T) {
	if _, err := scoring.NewMatrix("x", nil, 0, nil); err == nil {
		t.Fatal("nil alphabet must fail")
	}
	if _, err := scoring.NewMatrix("x", seq.DNA, 0, map[string]int{"ACG": 1}); err == nil {
		t.Fatal("three-letter key must fail")
	}
	if _, err := scoring.NewMatrix("x", seq.DNA, 0, map[string]int{"AX": 1}); err == nil {
		t.Fatal("letter outside alphabet must fail")
	}
	if _, err := scoring.NewMatrix("x", seq.DNA, 0, map[string]int{"AC": 1, "CA": 2}); err == nil {
		t.Fatal("conflicting symmetric entries must fail")
	}
	if _, err := scoring.NewMatrix("x", seq.DNA, 0, map[string]int{"AC": 1, "CA": 1}); err != nil {
		t.Fatalf("consistent symmetric entries must be accepted: %v", err)
	}
	if _, err := scoring.NewMatrix("x", seq.DNA, 1<<20, nil); err == nil {
		t.Fatal("out-of-range default must fail")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"table1", "mdm78", "dayhoff", "blosum62", "dna", "dna-strict"} {
		if _, err := scoring.ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := scoring.ByName("nope"); err == nil {
		t.Fatal("unknown name must fail")
	}
}

func TestUniform(t *testing.T) {
	m, err := scoring.Uniform(seq.DNA, 3, -2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Score('A', 'A') != 3 || m.Score('A', 'C') != -2 {
		t.Fatalf("uniform scores wrong: %d, %d", m.Score('A', 'A'), m.Score('A', 'C'))
	}
	if m.Min() != -2 || m.Max() != 3 {
		t.Fatalf("min/max = %d/%d", m.Min(), m.Max())
	}
}

// TestMatrixSymmetryQuick: any matrix built through NewMatrix is symmetric.
func TestMatrixSymmetryQuick(t *testing.T) {
	f := func(vals []int8) bool {
		pairs := map[string]int{}
		idx := 0
		for i, x := range seq.DNA.Letters {
			for _, y := range seq.DNA.Letters[i:] {
				if idx < len(vals) {
					pairs[string([]byte{x, y})] = int(vals[idx])
					idx++
				}
			}
		}
		m, err := scoring.NewMatrix("q", seq.DNA, -1, pairs)
		if err != nil {
			return false
		}
		return m.Symmetric()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGapModels(t *testing.T) {
	lin := scoring.Linear(-4)
	if !lin.IsLinear() || lin.Cost(3) != -12 || lin.Cost(0) != 0 {
		t.Fatalf("linear model misbehaves: %+v cost3=%d", lin, lin.Cost(3))
	}
	aff := scoring.Affine(-10, -2)
	if aff.IsLinear() || aff.Cost(3) != -16 {
		t.Fatalf("affine model misbehaves: cost3=%d", aff.Cost(3))
	}
	if err := scoring.Linear(0).Validate(); err == nil {
		t.Fatal("zero extend must fail")
	}
	if err := scoring.Affine(5, -1).Validate(); err == nil {
		t.Fatal("positive open must fail")
	}
	if err := scoring.Affine(0, -1).Validate(); err != nil {
		t.Fatalf("zero open is the linear case and must validate: %v", err)
	}
	if s := scoring.PaperGap.String(); !strings.Contains(s, "-10") {
		t.Fatalf("PaperGap string = %q", s)
	}
}

func TestMatrixString(t *testing.T) {
	s := scoring.Table1.String()
	for _, frag := range []string{"table1", "A", "16", "20", "12"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("matrix rendering missing %q:\n%s", frag, s)
		}
	}
}
