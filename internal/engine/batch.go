package engine

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// BatchResult is one unit's outcome, delivered on Batch.Results as soon as
// the unit finishes (streaming completion — consumers need not wait for the
// whole batch).
type BatchResult struct {
	// Index is the unit's position in the submitted task slice.
	Index int
	// Result and Err are the unit's outcome (Err wraps context.Canceled /
	// context.DeadlineExceeded for cancelled units).
	Result any
	Err    error
}

// Batch is a handle on one batch submission: N units admitted atomically
// (all or nothing against the queue bound), fanned out over the worker pool.
type Batch struct {
	id   string
	jobs []*Job

	results chan BatchResult
	once    sync.Once
	cancel  context.CancelFunc
}

// ID returns the engine-assigned batch id.
func (b *Batch) ID() string { return b.id }

// Size returns the number of units.
func (b *Batch) Size() int { return len(b.jobs) }

// Results streams unit outcomes in completion order. The channel is closed
// once all units have finished; it is buffered to the batch size, so the
// engine never blocks on a slow consumer.
func (b *Batch) Results() <-chan BatchResult { return b.results }

// Cancel cancels every unfinished unit.
func (b *Batch) Cancel() {
	b.cancel()
	for _, j := range b.jobs {
		j.Cancel()
	}
}

// Wait collects all outcomes, indexed by unit, blocking until the batch
// finishes or ctx is cancelled.
func (b *Batch) Wait(ctx context.Context) ([]BatchResult, error) {
	out := make([]BatchResult, len(b.jobs))
	seen := 0
	for seen < len(b.jobs) {
		select {
		case r, ok := <-b.results:
			if !ok {
				return out, fmt.Errorf("engine: batch %s results channel closed after %d of %d units", b.id, seen, len(b.jobs))
			}
			out[r.Index] = r
			seen++
		case <-ctx.Done():
			return out, ctx.Err()
		}
	}
	return out, nil
}

// BatchSubmission describes a batch: shared Kind/Priority/Timeout/Parent
// applied to every unit.
type BatchSubmission struct {
	// Kind labels every unit ("batch-align", ...).
	Kind string
	// Priority applies to every unit.
	Priority int
	// Timeout, when > 0, bounds each unit's lifetime individually.
	Timeout time.Duration
	// Parent, when non-nil, parents every unit's context (cancelling it
	// cancels the whole batch).
	Parent context.Context
	// RequestID, when non-empty, ties every unit to the originating request.
	RequestID string
	// Retry, when enabled, applies to every unit independently: a unit whose
	// attempt hits a retryable fault re-queues without failing the batch.
	Retry RetryPolicy
	// Tasks are the units (at least one required).
	Tasks []Task
}

// SubmitBatch admits all units atomically: if the queue cannot take every
// unit the whole batch is rejected with ErrQueueFull and nothing runs.
// Units are scheduled like ordinary jobs (same priority rules) but are not
// individually visible in Job/List; track them through the returned Batch.
func (e *Engine) SubmitBatch(sub BatchSubmission) (*Batch, error) {
	n := len(sub.Tasks)
	if n == 0 {
		return nil, fmt.Errorf("engine: BatchSubmission.Tasks is empty")
	}
	for i, t := range sub.Tasks {
		if t == nil {
			return nil, fmt.Errorf("engine: BatchSubmission.Tasks[%d] is nil", i)
		}
	}
	parent := sub.Parent
	if parent == nil {
		parent = context.Background()
	}
	bctx, bcancel := context.WithCancel(parent)

	e.mu.Lock()
	if err := e.admitLocked(n); err != nil {
		e.mu.Unlock()
		bcancel()
		return nil, err
	}
	e.nextID++
	b := &Batch{
		id:      fmt.Sprintf("batch-%d", e.nextID),
		jobs:    make([]*Job, n),
		results: make(chan BatchResult, n),
		cancel:  bcancel,
	}
	for i, t := range sub.Tasks {
		b.jobs[i] = e.enqueueLocked(Submission{
			Kind:      sub.Kind,
			Priority:  sub.Priority,
			Timeout:   sub.Timeout,
			Parent:    bctx,
			RequestID: sub.RequestID,
			Retry:     sub.Retry,
			Task:      t,
		}, b.id, false)
	}
	e.batches++
	e.batchUnits += int64(n)
	e.mu.Unlock()

	for _, j := range b.jobs {
		go e.watch(j)
	}
	e.cond.Broadcast()

	// Stream each unit's outcome as it lands; close the channel when the
	// last one does.
	var wg sync.WaitGroup
	for i, j := range b.jobs {
		wg.Add(1)
		go func(i int, j *Job) {
			defer wg.Done()
			<-j.Done()
			result, err, _ := j.Result()
			b.results <- BatchResult{Index: i, Result: result, Err: err}
		}(i, j)
	}
	go func() {
		wg.Wait()
		close(b.results)
		bcancel()
	}()
	return b, nil
}
