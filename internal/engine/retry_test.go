package engine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"fastlsa/internal/fault"
)

var errFlaky = errors.New("flaky")

// flakyTask fails its first failures attempts, then succeeds.
func flakyTask(failures int) (Task, *atomic.Int64) {
	var calls atomic.Int64
	return func(ctx context.Context) (any, error) {
		if n := calls.Add(1); n <= int64(failures) {
			return nil, fmt.Errorf("attempt %d: %w", n, errFlaky)
		}
		return "ok", nil
	}, &calls
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	e := New(Config{Workers: 2, QueueDepth: 8})
	defer shutdownNow(t, e)

	task, calls := flakyTask(2)
	j, err := e.Submit(Submission{
		Kind:  "test",
		Retry: RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		Task:  task,
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if res != "ok" {
		t.Fatalf("result = %v, want ok", res)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("task ran %d times, want 3", got)
	}
	if got := j.Info().Attempts; got != 3 {
		t.Fatalf("Info().Attempts = %d, want 3", got)
	}
	if got := e.Stats().Retries; got != 2 {
		t.Fatalf("Stats().Retries = %d, want 2", got)
	}
}

func TestRetryExhaustionFailsWithLastError(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 8})
	defer shutdownNow(t, e)

	task, calls := flakyTask(100)
	j, err := e.Submit(Submission{
		Kind:  "test",
		Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		Task:  task,
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := j.Wait(context.Background()); !errors.Is(err, errFlaky) {
		t.Fatalf("Wait err = %v, want errFlaky", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("task ran %d times, want exactly MaxAttempts=3", got)
	}
	if st := j.Info().State; st != Failed {
		t.Fatalf("state = %v, want failed", st)
	}
}

func TestRetryDisabledByDefault(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 8})
	defer shutdownNow(t, e)

	task, calls := flakyTask(100)
	j, _ := e.Submit(Submission{Kind: "test", Task: task})
	if _, err := j.Wait(context.Background()); err == nil {
		t.Fatal("want failure")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("zero-value policy ran the task %d times, want 1", got)
	}
}

func TestRetryPanicUsesDefaultClassifier(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 8})
	defer shutdownNow(t, e)

	var calls atomic.Int64
	j, _ := e.Submit(Submission{
		Kind:  "test",
		Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		Task: func(ctx context.Context) (any, error) {
			if calls.Add(1) == 1 {
				panic("first attempt explodes")
			}
			return "recovered", nil
		},
	})
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if res != "recovered" || calls.Load() != 2 {
		t.Fatalf("res = %v after %d calls, want recovered after 2", res, calls.Load())
	}
}

func TestRetryNeverRetriesCancellation(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 8})
	defer shutdownNow(t, e)

	started := make(chan struct{}, 1)
	j, _ := e.Submit(Submission{
		Kind:  "test",
		Retry: RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond},
		Task:  blockerTask(started, nil),
	})
	<-started
	j.Cancel()
	if _, err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait err = %v, want context.Canceled", err)
	}
	if got := j.Info().Attempts; got != 1 {
		t.Fatalf("cancelled job ran %d attempts, want 1", got)
	}
	if got := e.Stats().Retries; got != 0 {
		t.Fatalf("Stats().Retries = %d, want 0", got)
	}
}

func TestRetryRespectsClassifier(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 8})
	defer shutdownNow(t, e)

	task, calls := flakyTask(100)
	j, _ := e.Submit(Submission{
		Kind: "test",
		Retry: RetryPolicy{
			MaxAttempts: 5,
			BaseDelay:   time.Millisecond,
			RetryOn:     func(err error) bool { return !errors.Is(err, errFlaky) },
		},
		Task: task,
	})
	if _, err := j.Wait(context.Background()); !errors.Is(err, errFlaky) {
		t.Fatalf("Wait err = %v, want errFlaky", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("classified-permanent failure ran %d attempts, want 1", got)
	}
}

func TestRetryCancelDuringBackoff(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 8})
	defer shutdownNow(t, e)

	task, _ := flakyTask(100)
	j, _ := e.Submit(Submission{
		Kind: "test",
		// A long backoff parks the job; Cancel must finish it immediately
		// rather than waiting out the timer.
		Retry: RetryPolicy{MaxAttempts: 10, BaseDelay: 30 * time.Second, MaxDelay: 30 * time.Second},
		Task:  task,
	})

	// Wait for the first attempt to fail and the job to park as Queued.
	deadline := time.Now().Add(5 * time.Second)
	for j.Info().Attempts == 0 || j.Info().State != Queued {
		if time.Now().After(deadline) {
			t.Fatalf("job never parked for backoff: %+v", j.Info())
		}
		time.Sleep(time.Millisecond)
	}
	j.Cancel()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := j.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait err = %v, want context.Canceled", err)
	}
}

func TestShutdownDrainsRetryBackoff(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 8})

	task, _ := flakyTask(1)
	j, err := e.Submit(Submission{
		Kind:  "test",
		Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: 20 * time.Millisecond},
		Task:  task,
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Shutdown immediately: the drain must wait out the backoff and run the
	// retry rather than declaring completion with work pending.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	res, jerr, ok := j.Result()
	if !ok || jerr != nil || res != "ok" {
		t.Fatalf("after drain: result = (%v, %v, %v), want (ok, nil, true)", res, jerr, ok)
	}
}

func TestRetryOnInjectedWorkerFault(t *testing.T) {
	// An armed engine.worker error is transparent to the task and retried.
	if err := fault.Arm("engine.worker:error", 1); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	armed := true
	defer func() {
		if armed {
			fault.Disarm()
		}
	}()

	e := New(Config{Workers: 1, QueueDepth: 8})
	defer shutdownNow(t, e)

	var calls atomic.Int64
	j, _ := e.Submit(Submission{
		Kind:  "test",
		Retry: RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond},
		Task: func(ctx context.Context) (any, error) {
			calls.Add(1)
			return "ran", nil
		},
	})

	// With probability 1 the fault fires every attempt; disarm after the
	// second failure so a later attempt can get through.
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Retries < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("faulted attempts never retried: %+v", e.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	fault.Disarm()
	armed = false

	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if res != "ran" || calls.Load() == 0 {
		t.Fatalf("res = %v (task calls %d), want ran", res, calls.Load())
	}
	info := j.Info()
	if info.Attempts < 3 {
		t.Fatalf("Attempts = %d, want >= 3 (two faulted + one clean)", info.Attempts)
	}
}

// TestCancelFinishedJobNoop pins the documented Cancel semantics: on a job
// already in a terminal state, Cancel is an idempotent no-op — state, result,
// error and timestamps are untouched.
func TestCancelFinishedJobNoop(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 8})
	defer shutdownNow(t, e)

	j, _ := e.Submit(Submission{Kind: "test", Task: func(ctx context.Context) (any, error) {
		return "done", nil
	}})
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	before := j.Info()

	j.Cancel()
	j.Cancel() // and idempotent
	after := j.Info()

	if after.State != Succeeded {
		t.Fatalf("Cancel changed state of a finished job: %v", after.State)
	}
	if after != before {
		t.Fatalf("Cancel disturbed a finished job:\nbefore %+v\nafter  %+v", before, after)
	}
	res, err, ok := j.Result()
	if !ok || err != nil || res != "done" {
		t.Fatalf("result after Cancel = (%v, %v, %v), want (done, nil, true)", res, err, ok)
	}
}

// TestQueuedBatchUnitCancelReleasesSlot pins the other documented Cancel
// property: cancelling a still-queued batch unit frees its queue slot for new
// admissions immediately, without waiting for a worker.
func TestQueuedBatchUnitCancelReleasesSlot(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 2})
	defer shutdownNow(t, e)

	// Occupy the only worker so batch units stay queued.
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	blocker, err := e.Submit(Submission{Kind: "blocker", Task: blockerTask(started, release)})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	<-started
	defer func() { close(release); blocker.Wait(context.Background()) }()

	b, err := e.SubmitBatch(BatchSubmission{
		Kind:  "batch",
		Tasks: []Task{blockerTask(nil, release), blockerTask(nil, release)},
	})
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}

	// Queue is now full: a further submission must be rejected.
	if _, err := e.Submit(Submission{Kind: "probe", Task: blockerTask(nil, release)}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("probe submit err = %v, want ErrQueueFull", err)
	}

	// Cancel one queued unit; its slot must free promptly.
	b.jobs[0].Cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		j, err := e.Submit(Submission{Kind: "probe", Task: func(ctx context.Context) (any, error) { return nil, nil }})
		if err == nil {
			j.Cancel()
			break
		}
		if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("probe submit err = %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled batch unit never released its queue slot")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := b.jobs[0].Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled unit err = %v, want context.Canceled", err)
	}
}
