// Package engine is the job-scheduling subsystem of the alignment service:
// a bounded submission queue with admission control, a fixed pool of workers
// sized against GOMAXPROCS, per-job priorities and deadlines, batch
// submissions that fan out over many pairs with streaming completion, and
// first-class cancellation wired into the DP kernels through the run's
// context (see internal/stats).
//
// The engine deliberately knows nothing about alignment: a job is any
// Task func(ctx) (any, error). The public fastlsa.Engine facade and the
// server's async job API are thin layers over this package.
package engine

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"fastlsa/internal/fault"
	"fastlsa/internal/obs"
)

// Task is the unit of work a job runs: it must honour ctx — the engine
// cancels it on Job.Cancel, on deadline expiry, and on Shutdown.
type Task func(ctx context.Context) (any, error)

// State is a job's lifecycle stage.
type State int

const (
	// Queued: admitted, waiting for a worker.
	Queued State = iota
	// Running: executing on a worker.
	Running
	// Succeeded: finished with a nil error.
	Succeeded
	// Failed: finished with a non-cancellation error.
	Failed
	// Cancelled: cancelled (before or during execution) or deadline-expired.
	Cancelled
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Succeeded:
		return "succeeded"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Succeeded || s == Failed || s == Cancelled }

var (
	// ErrQueueFull rejects a submission when the queue is at capacity
	// (admission control: the caller should shed load or retry later).
	ErrQueueFull = errors.New("engine: submission queue full")
	// ErrClosed rejects submissions after Shutdown has begun.
	ErrClosed = errors.New("engine: engine is shut down")
	// ErrNotFound reports an unknown job id.
	ErrNotFound = errors.New("engine: no such job")
	// ErrJobPanic is the sentinel wrapped by the failure error of a job whose
	// task panicked. Panics are isolated to the job (the pool survives) and
	// classified as transient by the default retry policy.
	ErrJobPanic = errors.New("engine: job panicked")
	// ErrDuplicateID rejects a submission whose explicit Submission.ID is
	// already registered (journal recovery resubmits jobs under their
	// original ids; colliding with a live one is a caller bug).
	ErrDuplicateID = errors.New("engine: job id already in use")
)

// siteWorker is the fault-injection point struck just before a worker runs a
// task: armed (see internal/fault) it rehearses worker-side panics, delays
// and transient errors without touching the task itself.
var siteWorker = fault.NewSite("engine.worker")

// RetryPolicy makes a job's transient failures survivable: a failed attempt
// is re-queued (after an exponential backoff with jitter) instead of
// finishing the job, until an attempt succeeds, MaxAttempts is exhausted, or
// the failure is classified non-retryable. Cancellation and deadline expiry
// are never retried — a cancelled job is a decision, not a fault.
type RetryPolicy struct {
	// MaxAttempts caps total executions of the task, first attempt included
	// (<= 1 disables retrying).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further retry
	// doubles it, with full jitter in [delay/2, delay) (0 selects 10ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (0 selects 2s).
	MaxDelay time.Duration
	// RetryOn classifies failures: return true to retry err. Nil selects
	// Retryable (retry everything except cancellations). Callers with typed
	// permanent errors — invalid input, a budget below the algorithm's floor —
	// should exclude them here; panics (ErrJobPanic) and injected faults
	// (fault.ErrInjected) are worth retrying.
	RetryOn func(error) bool
}

// enabled reports whether the policy can ever retry.
func (p RetryPolicy) enabled() bool { return p.MaxAttempts > 1 }

// shouldRetry classifies err for the given completed attempt count.
func (p RetryPolicy) shouldRetry(attempts int, err error) bool {
	if !p.enabled() || attempts >= p.MaxAttempts || err == nil || isCancellation(err) {
		return false
	}
	if p.RetryOn != nil {
		return p.RetryOn(err)
	}
	return Retryable(err)
}

// backoff returns the delay before retry number retries (1-based):
// exponential growth from BaseDelay, capped at MaxDelay, with full jitter in
// [d/2, d) so synchronized failures do not retry in lockstep.
func (p RetryPolicy) backoff(retries int) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		d = 10 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	for i := 1; i < retries && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
}

// Retryable is the default retry classification: cancellations and deadline
// expiries never retry; every other failure — panics (ErrJobPanic), injected
// faults, transient resource races — does. Supply RetryPolicy.RetryOn to
// also exclude errors known to be deterministic.
func Retryable(err error) bool { return err != nil && !isCancellation(err) }

// Config tunes an Engine. The zero value is usable: GOMAXPROCS workers, a
// queue of 4x that, and retention of the last 256 finished jobs.
type Config struct {
	// Workers is the fixed worker-pool size (<= 0 selects GOMAXPROCS).
	Workers int
	// QueueDepth bounds how many jobs may wait for a worker; submissions
	// beyond it fail with ErrQueueFull (<= 0 selects 4*Workers).
	QueueDepth int
	// MaxRetained bounds how many finished jobs stay queryable; the oldest
	// are evicted first (<= 0 selects 256).
	MaxRetained int
	// MaxRetainedResults bounds how many of the retained finished jobs keep
	// their result payload; older ones stay queryable (state, timestamps,
	// error) but their result is dropped, so a long-lived server does not pin
	// hundreds of full alignment responses in memory (<= 0 selects 64; set
	// >= MaxRetained to keep every retained result).
	MaxRetainedResults int
	// ObserveQueueWait, when non-nil, receives the queue wait of every job
	// attempt the moment a worker picks it up (time since it last entered the
	// queue). Servers feed this to overload detectors — the breaker that sheds
	// synchronous requests when the p95 queue wait crosses a threshold — and
	// latency histograms. Called outside the engine lock; must be fast and
	// safe for concurrent use.
	ObserveQueueWait func(time.Duration)
	// OnJobEvent, when non-nil, receives every job lifecycle transition
	// (accepted, started, retried, finished — batch units included) on a
	// dedicated dispatcher goroutine, in the order the engine committed them.
	// This is the durability hook: the server appends the events to its
	// journal. The callback runs without engine locks but serially — a slow
	// sink delays later notifications, never the scheduler itself. Shutdown
	// flushes the queue before returning, so a finished job's event is always
	// delivered before the engine reports drained.
	OnJobEvent func(JobEvent)
}

// JobEvent lifecycle types delivered to Config.OnJobEvent.
const (
	// EventAccepted: the job entered the queue (Info.State == Queued).
	EventAccepted = "accepted"
	// EventStarted: a worker began an attempt (Info.Attempts is 1-based).
	EventStarted = "started"
	// EventRetried: an attempt failed retryably and the job re-queued.
	EventRetried = "retried"
	// EventFinished: the job reached a terminal state. Info.Abandoned marks
	// jobs cancelled by Shutdown's drain deadline rather than by a caller —
	// durability layers keep those non-terminal so the next boot retries them.
	EventFinished = "finished"
)

// JobEvent is one lifecycle notification: the transition type plus the job's
// Info snapshot taken at the moment the engine committed the transition.
type JobEvent struct {
	Type string
	Job  Info
}

// Submission describes one job.
type Submission struct {
	// Kind is a caller-defined label ("align", "msa", ...), echoed in Info.
	Kind string
	// ID, when non-empty, is the job's id instead of an engine-generated one.
	// Journal recovery uses this to resubmit jobs under their pre-crash ids;
	// a collision with a registered job fails with ErrDuplicateID.
	ID string
	// Recovered marks a job re-enqueued from a durable journal after a
	// restart: it is echoed in Info (and job views), counted in
	// Stats.Recovered, and exempt from the queue-depth admission check —
	// recovery must never lose accepted work to its own burst. (The server
	// logs the matching EvRecover flight-recorder event, since only it knows
	// whether a checkpoint existed.)
	Recovered bool
	// PriorAttempts is the attempt count the journal had recorded before the
	// crash (recovery only); it offsets Info.Attempts so operators see the
	// job's whole history, not just the current boot's.
	PriorAttempts int
	// Priority orders the queue: higher runs first; ties run in submission
	// order.
	Priority int
	// Timeout, when > 0, bounds the job's total lifetime (queue wait plus
	// execution); expiry cancels it with context.DeadlineExceeded.
	Timeout time.Duration
	// Parent, when non-nil, is the context the job's context derives from —
	// typically an HTTP request context, so a client disconnect cancels the
	// job. Nil selects context.Background().
	Parent context.Context
	// RequestID, when non-empty, ties the job to the originating request for
	// log correlation; it is echoed in Info and available to observability
	// layers.
	RequestID string
	// Retry, when enabled (MaxAttempts > 1), re-queues the job after
	// retryable failures instead of finishing it.
	Retry RetryPolicy
	// Recorder, when non-nil, is the job's flight recorder: the engine logs
	// admission, attempt starts (with queue wait), retries (with the failure
	// and backoff), and the terminal event into it, and layers below append
	// their own events through the same recorder. Retained with the job until
	// result eviction; exposed via Job.Events.
	Recorder *obs.Recorder
	// Task is the work to run (required).
	Task Task
}

// Info is a point-in-time public view of a job.
type Info struct {
	ID       string
	Kind     string
	Priority int
	State    State
	// Submitted, Started, Finished are lifecycle timestamps (zero when the
	// stage has not been reached).
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	// Err is the failure or cancellation reason ("" while unfinished or on
	// success).
	Err string
	// Batch is the owning batch id ("" for singleton jobs).
	Batch string
	// RequestID is the originating request's id ("" when none was supplied).
	RequestID string
	// Attempts counts executions started so far (0 while queued, 1 for a job
	// that never retried, up to RetryPolicy.MaxAttempts), including attempts
	// recorded before a crash for recovered jobs (Submission.PriorAttempts).
	Attempts int
	// Recovered marks a job re-enqueued from the durable journal after a
	// restart.
	Recovered bool
	// Abandoned marks a job cancelled by Shutdown's drain deadline: the
	// process gave up on it rather than a caller cancelling it. Durability
	// layers keep abandoned jobs non-terminal so the next boot retries them.
	Abandoned bool
}

// Job is a handle on a submitted job.
type Job struct {
	id        string
	kind      string
	priority  int
	batch     string
	requestID string
	seq       uint64
	task      Task
	retry     RetryPolicy
	recorder  *obs.Recorder

	ctx    context.Context
	cancel context.CancelFunc

	recovered bool
	prior     int // attempts journalled before the crash (recovered jobs)

	mu        sync.Mutex
	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time
	attempts  int
	abandoned bool
	result    any
	err       error
	done      chan struct{}

	// index is the heap slot while queued (-1 once popped or abandoned).
	index int
	// queuedAt is when the job last entered the queue (submission or retry
	// re-queue); workers derive the per-attempt queue wait from it. Guarded
	// by the engine lock, like index.
	queuedAt time.Time
}

// ID returns the engine-assigned job id.
func (j *Job) ID() string { return j.id }

// Info snapshots the job's public view.
func (j *Job) Info() Info {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := Info{
		ID:        j.id,
		Kind:      j.kind,
		Priority:  j.priority,
		State:     j.state,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
		Batch:     j.batch,
		RequestID: j.requestID,
		Attempts:  j.prior + j.attempts,
		Recovered: j.recovered,
		Abandoned: j.abandoned,
	}
	if j.err != nil {
		info.Err = j.err.Error()
	}
	return info
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Events snapshots the job's flight-recorder timeline. Empty when the
// submission carried no recorder, or once the recorder has been evicted with
// the result payload (Config.MaxRetainedResults).
func (j *Job) Events() obs.RecorderSnapshot {
	j.mu.Lock()
	rec := j.recorder
	j.mu.Unlock()
	return rec.Snapshot()
}

// HasRecorder reports whether the job still holds a flight recorder.
func (j *Job) HasRecorder() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recorder != nil
}

// Wait blocks until the job finishes or ctx is cancelled. It returns the
// job's result and error; the error wraps context.Canceled when the job was
// cancelled (so errors.Is works through the chain).
func (j *Job) Wait(ctx context.Context) (any, error) {
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Result returns the job's result and error without blocking; ok is false
// while the job is unfinished. The result may be nil even on success once
// the job has aged past Config.MaxRetainedResults (the payload is dropped to
// bound memory; the job itself stays queryable).
func (j *Job) Result() (result any, err error, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		return nil, nil, false
	}
	return j.result, j.err, true
}

// Cancel requests cancellation: a queued job finishes immediately as
// Cancelled — releasing its queue slot for new admissions, batch units
// included — and a running job's context is cancelled so the kernels abort
// at their next poll. Cancel is idempotent, and on a job that has already
// finished (any terminal state) it is a strict no-op: the state, result,
// error and timestamps are unchanged. Both properties are regression-tested
// in engine_test.go.
func (j *Job) Cancel() { j.cancel() }

// Stats is a snapshot of the engine's counters.
type Stats struct {
	// Workers and QueueDepth echo the effective configuration.
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	// Submitted counts admitted jobs (including batch units); Rejected
	// counts submissions refused by admission control or after shutdown.
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`
	// Queued and Running are current occupancy; BusyWorkers == Running.
	Queued      int `json:"queued"`
	Running     int `json:"running"`
	BusyWorkers int `json:"busy_workers"`
	// Succeeded, Failed, Cancelled count finished jobs by outcome.
	Succeeded int64 `json:"succeeded"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	// Retries counts attempt re-queues performed by retry policies; a job
	// that failed twice and then succeeded contributes 2.
	Retries int64 `json:"retries"`
	// Recovered counts jobs re-enqueued from the durable journal at boot.
	Recovered int64 `json:"recovered"`
	// Abandoned counts jobs Shutdown's drain deadline cancelled with work
	// still pending — the reconciliation number operators check against the
	// journal (those jobs stay non-terminal there and retry on next boot).
	Abandoned int64 `json:"abandoned"`
	// Batches counts admitted batch submissions; BatchUnits the jobs they
	// fanned out into (each unit is also counted in Submitted).
	Batches    int64 `json:"batches"`
	BatchUnits int64 `json:"batch_units"`
}

// Engine is the scheduler: a bounded priority queue drained by a fixed pool
// of workers.
type Engine struct {
	cfg Config

	mu         sync.Mutex
	cond       *sync.Cond
	queue      jobHeap
	jobs       map[string]*Job   // public registry (excludes batch units)
	order      []string          // registry in submission order, for List/eviction
	live       map[*Job]struct{} // every non-terminal job, batch units included
	closed     bool
	nextID     uint64
	nextSeq    uint64
	running    int
	submits    int64
	rejects    int64
	succ       int64
	failed     int64
	cancels    int64
	retries    int64
	batches    int64
	batchUnits int64
	// retryBackoff counts jobs sitting out a retry backoff (neither queued
	// nor running). Workers must not exit while any remain, or a drain-style
	// Shutdown would report completion with work still pending.
	retryBackoff int
	recovered    int64
	abandoned    int64
	// abandoning is set once Shutdown's drain deadline has passed: jobs that
	// finish as cancelled from that point on were abandoned by the process,
	// not cancelled by a caller, and are marked so in their Info.
	abandoning bool

	wg sync.WaitGroup

	// Job-event dispatch (Config.OnJobEvent): transitions are appended to
	// notifyq under notifyMu at the point the engine commits them (so the
	// order matches the scheduler's), and a single dispatcher goroutine
	// delivers them without holding any engine lock.
	notifyMu   sync.Mutex
	notifyq    []JobEvent
	notifyKick chan struct{}
	notifyStop chan struct{}
	notifyOnce sync.Once
	notifyWG   sync.WaitGroup
}

// New starts an engine with cfg's worker pool.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.MaxRetained <= 0 {
		cfg.MaxRetained = 256
	}
	if cfg.MaxRetainedResults <= 0 {
		cfg.MaxRetainedResults = 64
	}
	e := &Engine{
		cfg:  cfg,
		jobs: make(map[string]*Job),
		live: make(map[*Job]struct{}),
	}
	e.cond = sync.NewCond(&e.mu)
	if cfg.OnJobEvent != nil {
		e.notifyKick = make(chan struct{}, 1)
		e.notifyStop = make(chan struct{})
		e.notifyWG.Add(1)
		go e.notifier()
	}
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// notify queues one lifecycle event for the dispatcher. Safe to call with
// e.mu held (the dispatcher never takes engine locks); a no-op without an
// OnJobEvent hook.
func (e *Engine) notify(typ string, j *Job) {
	if e.cfg.OnJobEvent == nil {
		return
	}
	ev := JobEvent{Type: typ, Job: j.Info()}
	e.notifyMu.Lock()
	e.notifyq = append(e.notifyq, ev)
	e.notifyMu.Unlock()
	select {
	case e.notifyKick <- struct{}{}:
	default:
	}
}

// notifier is the OnJobEvent dispatcher loop: drain, deliver, sleep. On stop
// it performs one final drain, so Shutdown never returns with undelivered
// events.
func (e *Engine) notifier() {
	defer e.notifyWG.Done()
	deliver := func() {
		e.notifyMu.Lock()
		q := e.notifyq
		e.notifyq = nil
		e.notifyMu.Unlock()
		for _, ev := range q {
			e.cfg.OnJobEvent(ev)
		}
	}
	for {
		deliver()
		select {
		case <-e.notifyKick:
		case <-e.notifyStop:
			deliver()
			return
		}
	}
}

// stopNotifier flushes and stops the dispatcher (idempotent).
func (e *Engine) stopNotifier() {
	if e.cfg.OnJobEvent == nil {
		return
	}
	e.notifyOnce.Do(func() { close(e.notifyStop) })
	e.notifyWG.Wait()
}

// Submit admits one job, returning its handle, or ErrQueueFull / ErrClosed.
func (e *Engine) Submit(sub Submission) (*Job, error) {
	return e.submit(sub, "", true)
}

func (e *Engine) submit(sub Submission, batch string, register bool) (*Job, error) {
	if sub.Task == nil {
		return nil, fmt.Errorf("engine: Submission.Task is required")
	}

	e.mu.Lock()
	if sub.ID != "" {
		if _, ok := e.jobs[sub.ID]; ok {
			e.rejects++
			e.mu.Unlock()
			return nil, fmt.Errorf("%w: %s", ErrDuplicateID, sub.ID)
		}
	}
	if sub.Recovered {
		// Recovery resubmits every non-terminal journalled job in one burst;
		// it is exempt from the queue-depth check (accepted work must never be
		// lost to the recovery burst itself) but not from closure.
		if e.closed {
			e.rejects++
			e.mu.Unlock()
			return nil, ErrClosed
		}
	} else if err := e.admitLocked(1); err != nil {
		e.mu.Unlock()
		return nil, err
	}
	j := e.enqueueLocked(sub, batch, register)
	e.mu.Unlock()

	// Reap the job the moment its context dies while it still queues, so a
	// cancelled or deadline-expired job never occupies a worker.
	go e.watch(j)

	e.cond.Signal()
	return j, nil
}

// admitLocked is the admission check for n new jobs. Callers hold e.mu.
func (e *Engine) admitLocked(n int) error {
	if e.closed {
		e.rejects += int64(n)
		return ErrClosed
	}
	if e.queue.Len()+n > e.cfg.QueueDepth {
		e.rejects += int64(n)
		return ErrQueueFull
	}
	return nil
}

// enqueueLocked creates and queues one admitted job. Callers hold e.mu.
func (e *Engine) enqueueLocked(sub Submission, batch string, register bool) *Job {
	parent := sub.Parent
	if parent == nil {
		parent = context.Background()
	}
	id := sub.ID
	if id == "" {
		// Skip generated ids already taken by recovered jobs resubmitted
		// under their pre-crash names.
		for {
			e.nextID++
			id = fmt.Sprintf("job-%d", e.nextID)
			if _, ok := e.jobs[id]; !ok {
				break
			}
		}
	}
	e.nextSeq++
	j := &Job{
		id:        id,
		kind:      sub.Kind,
		priority:  sub.Priority,
		batch:     batch,
		requestID: sub.RequestID,
		seq:       e.nextSeq,
		task:      sub.Task,
		retry:     sub.Retry,
		recorder:  sub.Recorder,
		recovered: sub.Recovered,
		prior:     sub.PriorAttempts,
		state:     Queued,
		submitted: time.Now(),
		done:      make(chan struct{}),
		index:     -1,
		queuedAt:  time.Now(),
	}
	j.recorder.Add(obs.Event{Kind: obs.EvAdmit, Detail: sub.Kind, Extra: j.id, Value: float64(sub.Priority)})
	// Tasks read their own job id back via JobIDFromContext — the server's
	// per-job checkpoint sink is keyed on it.
	parent = context.WithValue(parent, jobIDKey{}, j.id)
	if sub.Timeout > 0 {
		j.ctx, j.cancel = context.WithTimeout(parent, sub.Timeout)
	} else {
		j.ctx, j.cancel = context.WithCancel(parent)
	}
	heap.Push(&e.queue, j)
	e.live[j] = struct{}{}
	e.submits++
	if sub.Recovered {
		e.recovered++
	}
	if register {
		e.jobs[j.id] = j
		e.order = append(e.order, j.id)
	}
	e.notify(EventAccepted, j)
	return j
}

// jobIDKey is the context key carrying a task's engine job id.
type jobIDKey struct{}

// JobIDFromContext returns the engine job id embedded in a task's context
// ("" outside a task). Layers below the engine use it to bind per-job
// resources — the server keys its grid-cache checkpoint sinks on it.
func JobIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(jobIDKey{}).(string)
	return id
}

// watch finishes a job as Cancelled if its context dies before a worker
// starts it (the worker checks again before running).
func (e *Engine) watch(j *Job) {
	select {
	case <-j.ctx.Done():
		e.mu.Lock()
		if j.state == Queued {
			if j.index >= 0 {
				heap.Remove(&e.queue, j.index)
			}
			e.finishLocked(j, nil, j.ctx.Err())
		}
		e.mu.Unlock()
	case <-j.done:
	}
}

// worker is the pool loop: pop the best queued job, run it, repeat. Workers
// drain retry backoffs too: they exit only once the engine is closed, the
// queue is empty AND no job is waiting out a backoff (such a job re-enters
// the queue when its timer fires).
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for e.queue.Len() == 0 && !(e.closed && e.retryBackoff == 0) {
			e.cond.Wait()
		}
		if e.queue.Len() == 0 {
			e.mu.Unlock()
			return
		}
		j := heap.Pop(&e.queue).(*Job)
		if err := j.ctx.Err(); err != nil {
			// Died while queued (watch may not have run yet).
			e.finishLocked(j, nil, err)
			e.mu.Unlock()
			continue
		}
		wait := time.Since(j.queuedAt)
		j.mu.Lock()
		j.state = Running
		j.started = time.Now()
		j.attempts++
		attempt := j.attempts
		j.mu.Unlock()
		e.running++
		e.notify(EventStarted, j)
		e.mu.Unlock()

		if observe := e.cfg.ObserveQueueWait; observe != nil {
			observe(wait)
		}
		j.recorder.Add(obs.Event{Kind: obs.EvStart, Attempt: attempt, Duration: wait})
		var result any
		var err error
		if obs.ProfLabelsEnabled() {
			// The closure and label set allocate, so this branch only exists
			// when attribution is on; the labelled context is handed to the
			// task, and solver phases layer their own labels on top of it.
			pprof.Do(j.ctx, pprof.Labels("job_id", j.id, "job_kind", j.kind), func(lc context.Context) {
				result, err = e.runTask(j, lc)
			})
		} else {
			result, err = e.runTask(j, j.ctx)
		}

		e.mu.Lock()
		e.running--
		// Retries continue during a drain (Shutdown's contract is to finish
		// accepted work); the drain deadline's hard cancel ends them, since
		// cancellation is never retried.
		if j.retry.shouldRetry(attempt, err) && j.ctx.Err() == nil {
			e.scheduleRetryLocked(j, attempt, err)
			e.mu.Unlock()
			continue
		}
		e.finishLocked(j, result, err)
		e.mu.Unlock()
	}
}

// scheduleRetryLocked parks j for its backoff and re-queues it when the
// timer fires. Callers hold e.mu. While parked the job reports Queued but
// holds no heap slot; cancellation during the backoff is handled by watch
// (which finishes Queued jobs whose context died), and the timer then finds
// the job terminal and only drops the backoff count.
func (e *Engine) scheduleRetryLocked(j *Job, attempt int, cause error) {
	e.retries++
	e.retryBackoff++
	j.mu.Lock()
	j.state = Queued
	j.mu.Unlock()
	e.notify(EventRetried, j)
	delay := j.retry.backoff(attempt)
	detail := ""
	if cause != nil {
		detail = cause.Error()
	}
	j.recorder.Add(obs.Event{Kind: obs.EvRetry, Detail: detail, Attempt: attempt, Duration: delay})
	time.AfterFunc(delay, func() {
		e.mu.Lock()
		e.retryBackoff--
		requeued := false
		j.mu.Lock()
		if j.state == Queued && j.ctx.Err() == nil {
			requeued = true
		}
		j.mu.Unlock()
		if requeued {
			j.queuedAt = time.Now()
			heap.Push(&e.queue, j)
		}
		e.mu.Unlock()
		// Wake a worker for the re-queued job, or — when the engine is
		// draining — let the workers re-check their exit condition.
		e.cond.Broadcast()
	})
}

// runTask executes the task, converting panics into errors (wrapping
// ErrJobPanic) so one bad job cannot take down the pool. The engine.worker
// fault-injection site strikes here, before the task runs. ctx is the job's
// context, possibly wrapped with pprof labels by the worker.
func (e *Engine) runTask(j *Job, ctx context.Context) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			result, err = nil, fmt.Errorf("%w: job %s: %v", ErrJobPanic, j.id, r)
		}
	}()
	if err := siteWorker.Hit(); err != nil {
		return nil, err
	}
	return j.task(ctx)
}

// finishLocked moves a job to its terminal state. Callers hold e.mu; job
// fields are additionally written under j.mu so lock-free-of-e readers
// (Job.Info, Job.Result) stay consistent. Lock order is always e.mu → j.mu.
func (e *Engine) finishLocked(j *Job, result any, err error) {
	if j.state.Terminal() {
		return
	}
	// Prefer the context's verdict: a task that returns a garbled error (or
	// nil) after its context died still counts as cancelled.
	if cerr := j.ctx.Err(); cerr != nil && (err == nil || !isCancellation(err)) {
		if err == nil {
			err = cerr
		} else {
			err = fmt.Errorf("%v (run abandoned: %w)", err, cerr)
		}
	}
	j.mu.Lock()
	j.result = result
	j.err = err
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = Succeeded
		e.succ++
	case isCancellation(err):
		j.state = Cancelled
		// A cancellation landing after Shutdown's drain deadline means the
		// process abandoned the job, not that a caller cancelled it.
		if e.abandoning {
			j.abandoned = true
			e.abandoned++
		}
		e.cancels++
	default:
		j.state = Failed
		e.failed++
	}
	j.mu.Unlock()
	detail := j.state.String()
	extra := ""
	if err != nil {
		extra = err.Error()
	}
	j.recorder.Add(obs.Event{Kind: obs.EvFinish, Detail: detail, Extra: extra, Attempt: j.attempts})
	delete(e.live, j)
	j.cancel() // release the context's timer/goroutine
	close(j.done)
	e.notify(EventFinished, j)
	if j.batch == "" {
		e.evictLocked()
	}
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// evictLocked drops the oldest finished registered jobs beyond MaxRetained,
// and drops the result payloads of all but the newest MaxRetainedResults
// finished jobs: a retained job's metadata is tiny, but its result can be an
// entire alignment response, and 256 of those pin real memory on a
// long-lived server.
func (e *Engine) evictLocked() {
	finished := 0
	for _, id := range e.order {
		if j := e.jobs[id]; j != nil && j.state.Terminal() {
			finished++
		}
	}
	if finished > e.cfg.MaxRetained {
		keep := e.order[:0]
		for _, id := range e.order {
			j := e.jobs[id]
			if j != nil && j.state.Terminal() && finished > e.cfg.MaxRetained {
				delete(e.jobs, id)
				finished--
				continue
			}
			keep = append(keep, id)
		}
		e.order = keep
	}

	if finished <= e.cfg.MaxRetainedResults {
		return
	}
	withResult := 0
	for i := len(e.order) - 1; i >= 0; i-- {
		j := e.jobs[e.order[i]]
		if j == nil || !j.state.Terminal() {
			continue
		}
		if withResult < e.cfg.MaxRetainedResults {
			withResult++
			continue
		}
		j.mu.Lock()
		j.result = nil
		j.recorder = nil // the flight recorder ages out with the payload
		j.mu.Unlock()
	}
}

// Job looks up a registered job by id.
func (e *Engine) Job(id string) (*Job, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return j, nil
}

// Cancel cancels a registered job by id.
func (e *Engine) Cancel(id string) error {
	j, err := e.Job(id)
	if err != nil {
		return err
	}
	j.Cancel()
	return nil
}

// List snapshots every registered job, newest first.
func (e *Engine) List() []Info {
	e.mu.Lock()
	jobs := make([]*Job, 0, len(e.order))
	for _, id := range e.order {
		if j := e.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	e.mu.Unlock()
	infos := make([]Info, len(jobs))
	for i, j := range jobs {
		infos[len(jobs)-1-i] = j.Info()
	}
	return infos
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{
		Workers:     e.cfg.Workers,
		QueueDepth:  e.cfg.QueueDepth,
		Submitted:   e.submits,
		Rejected:    e.rejects,
		Queued:      e.queue.Len(),
		Running:     e.running,
		BusyWorkers: e.running,
		Succeeded:   e.succ,
		Failed:      e.failed,
		Cancelled:   e.cancels,
		Retries:     e.retries,
		Recovered:   e.recovered,
		Abandoned:   e.abandoned,
		Batches:     e.batches,
		BatchUnits:  e.batchUnits,
	}
}

// Shutdown stops admissions, then drains: queued and running jobs may finish
// until ctx is cancelled, at which point every remaining job is cancelled.
// It returns once all workers have exited (nil if the drain completed, ctx's
// error if jobs had to be cancelled).
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		e.stopNotifier()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.cond.Broadcast()

	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		e.stopNotifier()
		return nil
	case <-ctx.Done():
	}

	// Drain deadline passed: cancel everything still live — queued or
	// running, batch units included — and wait for the workers to notice.
	// The abandoning flag makes finishLocked classify these cancellations
	// as process abandonment (Info.Abandoned, Stats.Abandoned) so the
	// journal keeps them non-terminal for the next boot.
	e.mu.Lock()
	e.abandoning = true
	pending := make([]*Job, 0, len(e.live))
	for j := range e.live {
		pending = append(pending, j)
	}
	e.mu.Unlock()
	for _, j := range pending {
		j.cancel()
	}
	<-done
	e.stopNotifier()
	return ctx.Err()
}

// jobHeap orders by priority desc, then submission sequence asc (FIFO among
// equals).
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, k int) bool {
	if h[i].priority != h[k].priority {
		return h[i].priority > h[k].priority
	}
	return h[i].seq < h[k].seq
}
func (h jobHeap) Swap(i, k int) {
	h[i], h[k] = h[k], h[i]
	h[i].index = i
	h[k].index = k
}
func (h *jobHeap) Push(x any) {
	j := x.(*Job)
	j.index = len(*h)
	*h = append(*h, j)
}
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.index = -1
	*h = old[:n-1]
	return j
}
