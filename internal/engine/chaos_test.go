package engine

import (
	"context"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"fastlsa/internal/fault"
)

// armChaos arms the CI fault spec ($FASTLSA_FAULTS when set, a standing
// default otherwise) for the duration of one chaos test. Non-chaos tests
// never arm, so the deterministic suites are unaffected even when the chaos
// CI job exports the variable for the whole test binary.
func armChaos(t *testing.T, fallback string) {
	t.Helper()
	spec := os.Getenv(fault.EnvSpec)
	if spec == "" {
		spec = fallback
	}
	seed := int64(1)
	if armed, err := fault.ArmFromEnv(os.Getenv); err != nil {
		t.Fatalf("ArmFromEnv: %v", err)
	} else if !armed {
		if err := fault.Arm(spec, seed); err != nil {
			t.Fatalf("Arm(%q): %v", spec, err)
		}
	}
	t.Cleanup(fault.Disarm)
	t.Logf("chaos spec: %q", fault.Armed())
}

// waitGoroutines polls until the goroutine count drops back to around base
// (retry timers and watch goroutines need a moment to unwind).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+4 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d running, started with %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosEngineSurvivesStandingFaults runs a mixed workload — singleton
// jobs, batches, cancellations, a final drain — with faults striking the
// worker path, and asserts the invariants chaos must not break: every job
// reaches a terminal state (no hangs), the engine shuts down cleanly, and no
// goroutines leak. Individual job failures are expected and fine.
func TestChaosEngineSurvivesStandingFaults(t *testing.T) {
	armChaos(t, "engine.worker:panic:0.1,engine.worker:error:0.15,engine.worker:delay:200us:0.2")
	base := runtime.NumGoroutine()

	e := New(Config{Workers: 4, QueueDepth: 512})
	retry := RetryPolicy{MaxAttempts: 4, BaseDelay: 500 * time.Microsecond, MaxDelay: 2 * time.Millisecond}

	var wg sync.WaitGroup
	terminal := func(j *Job) {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if _, err := j.Wait(ctx); ctx.Err() != nil {
			t.Errorf("job %s hung: %v", j.ID(), err)
		}
	}

	// Singleton jobs, some with retry, every third cancelled mid-flight.
	for i := 0; i < 60; i++ {
		sub := Submission{Kind: "chaos", Task: func(ctx context.Context) (any, error) {
			time.Sleep(100 * time.Microsecond)
			return "ok", nil
		}}
		if i%2 == 0 {
			sub.Retry = retry
		}
		j, err := e.Submit(sub)
		if err != nil {
			continue // queue-full under injected delays is fine
		}
		if i%3 == 0 {
			j.Cancel()
		}
		wg.Add(1)
		go terminal(j)
	}

	// A few batches with retrying units.
	for i := 0; i < 4; i++ {
		tasks := make([]Task, 16)
		for k := range tasks {
			tasks[k] = func(ctx context.Context) (any, error) {
				time.Sleep(50 * time.Microsecond)
				return k, nil
			}
		}
		b, err := e.SubmitBatch(BatchSubmission{Kind: "chaos-batch", Retry: retry, Tasks: tasks})
		if err != nil {
			continue
		}
		if i == 3 {
			b.Cancel()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if _, err := b.Wait(ctx); ctx.Err() != nil {
				t.Errorf("batch %s hung: %v", b.ID(), err)
			}
		}()
	}

	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown under chaos: %v", err)
	}
	fault.Disarm()
	waitGoroutines(t, base)
}
