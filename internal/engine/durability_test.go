package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// okTask succeeds immediately.
func okTask(ctx context.Context) (any, error) { return "ok", nil }

func TestExternalIDSubmit(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 8})
	defer shutdownNow(t, e)

	j, err := e.Submit(Submission{Kind: "align", ID: "job-restored-7", Task: okTask})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if j.ID() != "job-restored-7" {
		t.Fatalf("id = %q, want job-restored-7", j.ID())
	}
	if _, err := e.Job("job-restored-7"); err != nil {
		t.Fatalf("lookup by external id: %v", err)
	}
	if _, err := e.Submit(Submission{Kind: "align", ID: "job-restored-7", Task: okTask}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate external id: err = %v, want ErrDuplicateID", err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

// TestGeneratedIDSkipsRecoveredIDs: recovery resubmits jobs under their
// pre-crash "job-N" names; fresh submissions must not collide with them.
func TestGeneratedIDSkipsRecoveredIDs(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 8})
	defer shutdownNow(t, e)

	r, err := e.Submit(Submission{Kind: "align", ID: "job-1", Recovered: true, Task: okTask})
	if err != nil {
		t.Fatalf("recovered submit: %v", err)
	}
	fresh, err := e.Submit(Submission{Kind: "align", Task: okTask})
	if err != nil {
		t.Fatalf("fresh submit: %v", err)
	}
	if fresh.ID() == r.ID() {
		t.Fatalf("generated id %q collides with recovered id", fresh.ID())
	}
	if fresh.ID() != "job-2" {
		t.Fatalf("generated id = %q, want job-2", fresh.ID())
	}
}

// TestRecoveredAdmissionExemption: recovered submissions bypass the
// queue-depth check (a boot's recovery burst must not shed accepted work)
// but still respect closure.
func TestRecoveredAdmissionExemption(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	if _, err := e.Submit(Submission{Kind: "blocker", Task: blockerTask(started, release)}); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	<-started
	// Fill the queue.
	if _, err := e.Submit(Submission{Kind: "fill", Task: okTask}); err != nil {
		t.Fatalf("fill: %v", err)
	}
	// A normal submission is shed...
	if _, err := e.Submit(Submission{Kind: "shed", Task: okTask}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-depth submit: err = %v, want ErrQueueFull", err)
	}
	// ...but recovered ones are admitted past the depth.
	var recovered []*Job
	for i := 0; i < 5; i++ {
		j, err := e.Submit(Submission{
			Kind: "align", ID: fmt.Sprintf("job-r%d", i), Recovered: true, Task: okTask,
		})
		if err != nil {
			t.Fatalf("recovered submit %d: %v", i, err)
		}
		recovered = append(recovered, j)
	}
	close(release)
	for _, j := range recovered {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatalf("recovered job %s: %v", j.ID(), err)
		}
		info := j.Info()
		if !info.Recovered {
			t.Fatalf("job %s not marked recovered", j.ID())
		}
	}
	if got := e.Stats().Recovered; got != 5 {
		t.Fatalf("Stats.Recovered = %d, want 5", got)
	}
	shutdownNow(t, e)
	if _, err := e.Submit(Submission{Kind: "late", ID: "job-late", Recovered: true, Task: okTask}); !errors.Is(err, ErrClosed) {
		t.Fatalf("recovered submit after shutdown: err = %v, want ErrClosed", err)
	}
}

// TestPriorAttemptsOffset: a recovered job's Info.Attempts includes the
// attempts the journal recorded before the crash.
func TestPriorAttemptsOffset(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 4})
	defer shutdownNow(t, e)

	j, err := e.Submit(Submission{Kind: "align", ID: "job-p", Recovered: true, PriorAttempts: 3, Task: okTask})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got := j.Info().Attempts; got != 4 {
		t.Fatalf("Attempts = %d, want 4 (3 prior + 1 this boot)", got)
	}
}

// TestJobEventOrder: OnJobEvent delivers accepted -> started -> finished in
// commit order, and Shutdown flushes the queue before returning.
func TestJobEventOrder(t *testing.T) {
	var mu sync.Mutex
	var events []JobEvent
	e := New(Config{Workers: 1, QueueDepth: 8, OnJobEvent: func(ev JobEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}})

	j, err := e.Submit(Submission{Kind: "align", Task: okTask})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	shutdownNow(t, e)

	mu.Lock()
	defer mu.Unlock()
	var got []string
	for _, ev := range events {
		if ev.Job.ID == j.ID() {
			got = append(got, ev.Type)
		}
	}
	want := []string{EventAccepted, EventStarted, EventFinished}
	if len(got) != len(want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("events = %v, want %v", got, want)
		}
	}
	last := events[len(events)-1]
	if last.Job.State != Succeeded {
		t.Fatalf("finished event state = %v, want succeeded", last.Job.State)
	}
}

// TestJobEventRetried: a retryable failure emits a retried event between
// started events.
func TestJobEventRetried(t *testing.T) {
	var mu sync.Mutex
	var types []string
	e := New(Config{Workers: 1, QueueDepth: 8, OnJobEvent: func(ev JobEvent) {
		mu.Lock()
		types = append(types, ev.Type)
		mu.Unlock()
	}})

	fails := 0
	j, err := e.Submit(Submission{
		Kind:  "flaky",
		Retry: RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
		Task: func(ctx context.Context) (any, error) {
			if fails == 0 {
				fails++
				return nil, errors.New("transient")
			}
			return "ok", nil
		},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	shutdownNow(t, e)

	mu.Lock()
	defer mu.Unlock()
	want := []string{EventAccepted, EventStarted, EventRetried, EventStarted, EventFinished}
	if len(types) != len(want) {
		t.Fatalf("events = %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("events = %v, want %v", types, want)
		}
	}
}

// TestAbandonedOnHardShutdown: jobs cancelled by Shutdown's drain deadline
// are marked Abandoned (Info and Stats); jobs cancelled by callers are not.
func TestAbandonedOnHardShutdown(t *testing.T) {
	var mu sync.Mutex
	finished := map[string]Info{}
	e := New(Config{Workers: 1, QueueDepth: 8, OnJobEvent: func(ev JobEvent) {
		if ev.Type == EventFinished {
			mu.Lock()
			finished[ev.Job.ID] = ev.Job
			mu.Unlock()
		}
	}})

	// A caller-cancelled job: not abandoned.
	victim, err := e.Submit(Submission{Kind: "victim", Task: blockerTask(nil, nil)})
	if err != nil {
		t.Fatalf("victim: %v", err)
	}
	started := make(chan struct{}, 1)
	runner, err := e.Submit(Submission{Kind: "runner", Task: blockerTask(started, nil)})
	if err != nil {
		t.Fatalf("runner: %v", err)
	}
	queued, err := e.Submit(Submission{Kind: "queued", Task: blockerTask(nil, nil)})
	if err != nil {
		t.Fatalf("queued: %v", err)
	}

	victim.Cancel()
	if _, err := victim.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("victim err = %v, want canceled", err)
	}
	<-started

	// Hard shutdown: the drain deadline is already expired.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Shutdown = %v, want canceled", err)
	}

	if info := victim.Info(); info.Abandoned {
		t.Fatal("caller-cancelled job marked abandoned")
	}
	for _, j := range []*Job{runner, queued} {
		info := j.Info()
		if info.State != Cancelled || !info.Abandoned {
			t.Fatalf("job %s: state=%v abandoned=%v, want cancelled+abandoned", j.ID(), info.State, info.Abandoned)
		}
	}
	if got := e.Stats().Abandoned; got != 2 {
		t.Fatalf("Stats.Abandoned = %d, want 2", got)
	}
	// The finished events — flushed before Shutdown returned — carry the flag.
	mu.Lock()
	defer mu.Unlock()
	if len(finished) != 3 {
		t.Fatalf("finished events = %d, want 3", len(finished))
	}
	if finished[victim.ID()].Abandoned {
		t.Fatal("victim's finished event marked abandoned")
	}
	if !finished[runner.ID()].Abandoned || !finished[queued.ID()].Abandoned {
		t.Fatal("abandoned jobs' finished events lack the flag")
	}
}

func TestJobIDFromContext(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 4})
	defer shutdownNow(t, e)

	j, err := e.Submit(Submission{Kind: "align", ID: "job-ctx", Task: func(ctx context.Context) (any, error) {
		return JobIDFromContext(ctx), nil
	}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got, err := j.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got != "job-ctx" {
		t.Fatalf("JobIDFromContext = %v, want job-ctx", got)
	}
	if JobIDFromContext(context.Background()) != "" {
		t.Fatal("JobIDFromContext outside a task should be empty")
	}
}
