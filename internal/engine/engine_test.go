package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// blockerTask returns a task that signals started (if non-nil), then blocks
// until release is closed or its context dies.
func blockerTask(started chan<- struct{}, release <-chan struct{}) Task {
	return func(ctx context.Context) (any, error) {
		if started != nil {
			started <- struct{}{}
		}
		select {
		case <-release:
			return "done", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func shutdownNow(t *testing.T, e *Engine) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	e.Shutdown(ctx)
}

func TestSubmitRunsJob(t *testing.T) {
	e := New(Config{Workers: 2, QueueDepth: 8})
	defer shutdownNow(t, e)

	j, err := e.Submit(Submission{Kind: "test", Task: func(ctx context.Context) (any, error) {
		return 42, nil
	}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if res != 42 {
		t.Fatalf("result = %v, want 42", res)
	}
	if st := j.Info().State; st != Succeeded {
		t.Fatalf("state = %v, want succeeded", st)
	}
}

func TestQueueFullRejection(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 2})
	defer shutdownNow(t, e)

	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{}, 1)

	// Occupy the single worker...
	if _, err := e.Submit(Submission{Task: blockerTask(started, release)}); err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	<-started
	// ...then fill the queue.
	for i := 0; i < 2; i++ {
		if _, err := e.Submit(Submission{Task: blockerTask(nil, release)}); err != nil {
			t.Fatalf("Submit queued %d: %v", i, err)
		}
	}
	_, err := e.Submit(Submission{Task: blockerTask(nil, release)})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity Submit error = %v, want ErrQueueFull", err)
	}
	if s := e.Stats(); s.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", s.Rejected)
	}
}

func TestPriorityOrdering(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 16})
	defer shutdownNow(t, e)

	release := make(chan struct{})
	started := make(chan struct{}, 1)
	if _, err := e.Submit(Submission{Task: blockerTask(started, release)}); err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	<-started // the worker is busy; everything below queues

	var mu sync.Mutex
	var order []string
	mk := func(name string) Task {
		return func(ctx context.Context) (any, error) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil, nil
		}
	}
	jobs := make([]*Job, 0, 4)
	for _, sub := range []Submission{
		{Priority: 0, Task: mk("low-1")},
		{Priority: 5, Task: mk("high-1")},
		{Priority: 0, Task: mk("low-2")},
		{Priority: 5, Task: mk("high-2")},
	} {
		j, err := e.Submit(sub)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		jobs = append(jobs, j)
	}
	close(release)
	for _, j := range jobs {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatalf("Wait: %v", err)
		}
	}
	want := []string{"high-1", "high-2", "low-1", "low-2"}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v (higher priority first, FIFO among equals)", order, want)
		}
	}
}

func TestCancelQueuedJob(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 8})
	defer shutdownNow(t, e)

	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{}, 1)
	if _, err := e.Submit(Submission{Task: blockerTask(started, release)}); err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	<-started

	ran := false
	j, err := e.Submit(Submission{Task: func(ctx context.Context) (any, error) {
		ran = true
		return nil, nil
	}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	j.Cancel()
	if _, err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait error = %v, want context.Canceled", err)
	}
	if j.Info().State != Cancelled {
		t.Fatalf("state = %v, want cancelled", j.Info().State)
	}
	if ran {
		t.Fatal("cancelled queued job still executed")
	}
}

func TestCancelRunningJob(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 8})
	defer shutdownNow(t, e)

	started := make(chan struct{}, 1)
	j, err := e.Submit(Submission{Task: blockerTask(started, nil)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	j.Cancel()
	if _, err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait error = %v, want context.Canceled", err)
	}
	if j.Info().State != Cancelled {
		t.Fatalf("state = %v, want cancelled", j.Info().State)
	}
}

func TestDeadlineExpiry(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 8})
	defer shutdownNow(t, e)

	j, err := e.Submit(Submission{Timeout: 20 * time.Millisecond, Task: blockerTask(nil, nil)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := j.Wait(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait error = %v, want context.DeadlineExceeded", err)
	}
	if j.Info().State != Cancelled {
		t.Fatalf("state = %v, want cancelled", j.Info().State)
	}
}

func TestParentContextCancelsJob(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 8})
	defer shutdownNow(t, e)

	parent, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	j, err := e.Submit(Submission{Parent: parent, Task: blockerTask(started, nil)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	cancel() // simulates a client disconnect
	if _, err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait error = %v, want context.Canceled", err)
	}
}

func TestFailedJobState(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 8})
	defer shutdownNow(t, e)

	boom := errors.New("boom")
	j, err := e.Submit(Submission{Task: func(ctx context.Context) (any, error) {
		return nil, boom
	}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := j.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Wait error = %v, want boom", err)
	}
	if j.Info().State != Failed {
		t.Fatalf("state = %v, want failed", j.Info().State)
	}
}

func TestPanicBecomesFailure(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 8})
	defer shutdownNow(t, e)

	j, err := e.Submit(Submission{Task: func(ctx context.Context) (any, error) {
		panic("kaboom")
	}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := j.Wait(context.Background()); err == nil {
		t.Fatal("panicking job reported success")
	}
	if j.Info().State != Failed {
		t.Fatalf("state = %v, want failed", j.Info().State)
	}
	// The pool survived: another job still runs.
	j2, err := e.Submit(Submission{Task: func(ctx context.Context) (any, error) { return "ok", nil }})
	if err != nil {
		t.Fatalf("Submit after panic: %v", err)
	}
	if res, err := j2.Wait(context.Background()); err != nil || res != "ok" {
		t.Fatalf("post-panic job = (%v, %v), want (ok, nil)", res, err)
	}
}

func TestBatchStreamingAndAtomicAdmission(t *testing.T) {
	e := New(Config{Workers: 2, QueueDepth: 4})
	defer shutdownNow(t, e)

	tasks := make([]Task, 4)
	for i := range tasks {
		i := i
		tasks[i] = func(ctx context.Context) (any, error) { return i * i, nil }
	}
	b, err := e.SubmitBatch(BatchSubmission{Kind: "sq", Tasks: tasks})
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	results, err := b.Wait(context.Background())
	if err != nil {
		t.Fatalf("Batch.Wait: %v", err)
	}
	for i, r := range results {
		if r.Err != nil || r.Result != i*i {
			t.Fatalf("unit %d = (%v, %v), want (%d, nil)", i, r.Result, r.Err, i*i)
		}
	}

	// A batch larger than the queue is rejected whole; nothing runs.
	var ran atomic.Int32
	big := make([]Task, 5)
	for i := range big {
		big[i] = func(ctx context.Context) (any, error) { ran.Add(1); return nil, nil }
	}
	if _, err := e.SubmitBatch(BatchSubmission{Tasks: big}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("oversized batch error = %v, want ErrQueueFull", err)
	}
	time.Sleep(10 * time.Millisecond)
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d units of a rejected batch ran", n)
	}
}

func TestBatchCancelMidFlight(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 8})
	defer shutdownNow(t, e)

	started := make(chan struct{}, 1)
	tasks := []Task{
		blockerTask(started, nil),
		blockerTask(nil, nil),
		blockerTask(nil, nil),
	}
	b, err := e.SubmitBatch(BatchSubmission{Tasks: tasks})
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	<-started
	b.Cancel()
	results, err := b.Wait(context.Background())
	if err != nil {
		t.Fatalf("Batch.Wait: %v", err)
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("unit %d error = %v, want context.Canceled", i, r.Err)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	e := New(Config{Workers: 2, QueueDepth: 4})
	defer shutdownNow(t, e)

	j1, err := e.Submit(Submission{Task: func(ctx context.Context) (any, error) { return nil, nil }})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	j2, err := e.Submit(Submission{Task: blockerTask(nil, nil)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	j1.Wait(context.Background())
	j2.Cancel()
	j2.Wait(context.Background())

	s := e.Stats()
	if s.Workers != 2 || s.QueueDepth != 4 {
		t.Fatalf("config echo = %d/%d, want 2/4", s.Workers, s.QueueDepth)
	}
	if s.Submitted != 2 || s.Succeeded != 1 || s.Cancelled != 1 {
		t.Fatalf("stats = %+v, want submitted=2 succeeded=1 cancelled=1", s)
	}
}

func TestJobLookupAndList(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 8})
	defer shutdownNow(t, e)

	j, err := e.Submit(Submission{Kind: "lookup", Task: func(ctx context.Context) (any, error) { return nil, nil }})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got, err := e.Job(j.ID())
	if err != nil || got != j {
		t.Fatalf("Job(%s) = (%v, %v)", j.ID(), got, err)
	}
	if _, err := e.Job("job-999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown id error = %v, want ErrNotFound", err)
	}
	j.Wait(context.Background())
	infos := e.List()
	if len(infos) != 1 || infos[0].ID != j.ID() || infos[0].Kind != "lookup" {
		t.Fatalf("List = %+v", infos)
	}
}

func TestRetentionEviction(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 8, MaxRetained: 3})
	defer shutdownNow(t, e)

	ids := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		j, err := e.Submit(Submission{Task: func(ctx context.Context) (any, error) { return nil, nil }})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		j.Wait(context.Background())
		ids = append(ids, j.ID())
	}
	if n := len(e.List()); n != 3 {
		t.Fatalf("retained %d finished jobs, want 3", n)
	}
	if _, err := e.Job(ids[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("oldest job still retained: %v", err)
	}
	if _, err := e.Job(ids[5]); err != nil {
		t.Fatalf("newest job evicted: %v", err)
	}
}

func TestResultRetentionBound(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 8, MaxRetained: 8, MaxRetainedResults: 2})
	defer shutdownNow(t, e)

	jobs := make([]*Job, 0, 5)
	for i := 0; i < 5; i++ {
		i := i
		j, err := e.Submit(Submission{Task: func(ctx context.Context) (any, error) { return i, nil }})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		j.Wait(context.Background())
		jobs = append(jobs, j)
	}
	for i, j := range jobs {
		res, err, ok := j.Result()
		if !ok || err != nil {
			t.Fatalf("job %d = (%v, %v, %v), want finished ok", i, res, err, ok)
		}
		if i < 3 {
			// Aged past MaxRetainedResults: payload dropped, job queryable.
			if res != nil {
				t.Fatalf("job %d result = %v, want dropped (nil)", i, res)
			}
			if _, lerr := e.Job(j.ID()); lerr != nil {
				t.Fatalf("job %d no longer queryable: %v", i, lerr)
			}
		} else if res != i {
			t.Fatalf("job %d result = %v, want %d", i, res, i)
		}
	}
}

func TestShutdownDrains(t *testing.T) {
	e := New(Config{Workers: 2, QueueDepth: 8})
	var done atomic.Int32
	jobs := make([]*Job, 0, 4)
	for i := 0; i < 4; i++ {
		j, err := e.Submit(Submission{Task: func(ctx context.Context) (any, error) {
			done.Add(1)
			return nil, nil
		}})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if done.Load() != 4 {
		t.Fatalf("drain ran %d of 4 jobs", done.Load())
	}
	for _, j := range jobs {
		if j.Info().State != Succeeded {
			t.Fatalf("job %s state = %v after drain", j.ID(), j.Info().State)
		}
	}
	if _, err := e.Submit(Submission{Task: func(ctx context.Context) (any, error) { return nil, nil }}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-shutdown Submit error = %v, want ErrClosed", err)
	}
}

func TestShutdownCancelsAfterDrainDeadline(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 8})
	started := make(chan struct{}, 1)
	j, err := e.Submit(Submission{Task: blockerTask(started, nil)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := e.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown error = %v, want DeadlineExceeded", err)
	}
	if st := j.Info().State; st != Cancelled {
		t.Fatalf("undrainable job state = %v, want cancelled", st)
	}
}

// TestShutdownCancelsBatchUnitsAfterDrainDeadline is the regression test for
// a hang: batch units are not in the public job registry, so the forced
// cancel pass after the drain deadline used to miss them and Shutdown blocked
// forever on a mid-computation unit.
func TestShutdownCancelsBatchUnitsAfterDrainDeadline(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 8})
	started := make(chan struct{}, 1)
	b, err := e.SubmitBatch(BatchSubmission{Tasks: []Task{
		blockerTask(started, nil),
		blockerTask(nil, nil),
	}})
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	<-started // the first unit is running, the second queued

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- e.Shutdown(ctx) }()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Shutdown error = %v, want DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown hung on a running batch unit past the drain deadline")
	}
	results, err := b.Wait(context.Background())
	if err != nil {
		t.Fatalf("Batch.Wait: %v", err)
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("unit %d error = %v, want context.Canceled", i, r.Err)
		}
	}
}

// TestConcurrentSubmitters is the race storm from the acceptance criteria:
// many goroutines hammer a 2-worker pool with submissions, waits and
// cancellations; run under -race.
func TestConcurrentSubmitters(t *testing.T) {
	e := New(Config{Workers: 2, QueueDepth: 64})
	defer shutdownNow(t, e)

	const submitters = 10
	const perSubmitter = 25
	var accepted, rejected, cancelled atomic.Int64
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				j, err := e.Submit(Submission{
					Kind:     fmt.Sprintf("storm-%d", s),
					Priority: i % 3,
					Task: func(ctx context.Context) (any, error) {
						select {
						case <-time.After(time.Duration(i%3) * time.Millisecond):
							return i, nil
						case <-ctx.Done():
							return nil, ctx.Err()
						}
					},
				})
				if err != nil {
					if !errors.Is(err, ErrQueueFull) {
						t.Errorf("submitter %d: %v", s, err)
						return
					}
					rejected.Add(1)
					continue
				}
				accepted.Add(1)
				if i%5 == 0 {
					j.Cancel()
					cancelled.Add(1)
				}
				if _, err := j.Wait(context.Background()); err != nil && !errors.Is(err, context.Canceled) {
					t.Errorf("submitter %d wait: %v", s, err)
					return
				}
				e.Stats() // concurrent reads race-check the counters
				e.List()
			}
		}(s)
	}
	wg.Wait()

	s := e.Stats()
	if s.Submitted != accepted.Load() {
		t.Fatalf("Submitted = %d, accepted = %d", s.Submitted, accepted.Load())
	}
	if s.Rejected != rejected.Load() {
		t.Fatalf("Rejected = %d, rejections seen = %d", s.Rejected, rejected.Load())
	}
	if s.Succeeded+s.Failed+s.Cancelled != s.Submitted {
		t.Fatalf("outcomes %d+%d+%d != submitted %d", s.Succeeded, s.Failed, s.Cancelled, s.Submitted)
	}
	if s.Failed != 0 {
		t.Fatalf("%d jobs failed during the storm", s.Failed)
	}
}
