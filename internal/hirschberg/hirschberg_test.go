package hirschberg_test

import (
	"testing"
	"testing/quick"

	"fastlsa/internal/fm"
	"fastlsa/internal/hirschberg"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/stats"
	"fastlsa/internal/testutil"
)

func TestFigure1(t *testing.T) {
	res, err := hirschberg.Align(testutil.Figure1A, testutil.Figure1B, scoring.Table1, scoring.PaperGap, hirschberg.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != testutil.Figure1Score {
		t.Fatalf("score = %d, want %d", res.Score, testutil.Figure1Score)
	}
	if msg := testutil.CheckAlignment(testutil.Figure1A, testutil.Figure1B, res.Path, res.Score, scoring.Table1, scoring.PaperGap); msg != "" {
		t.Fatal(msg)
	}
}

// TestMatchesFM verifies score equality with the full-matrix ground truth
// over random problems at several base-case thresholds, including BaseCells=1
// (full recursion down to single rows).
func TestMatchesFM(t *testing.T) {
	gap := scoring.Linear(-3)
	for _, base := range []int{1, 16, 4096} {
		for seed := int64(0); seed < 25; seed++ {
			la := int(seed*13%40) + 1
			lb := int(seed*29%40) + 1
			a, b := testutil.RandomPair(la, lb, seq.DNA, seed)
			m := testutil.RandomMatrix(seq.DNA, seed)
			want, err := fm.Align(a, b, m, gap, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := hirschberg.Align(a, b, m, gap, hirschberg.Options{BaseCells: base}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got.Score != want.Score {
				t.Fatalf("base=%d seed=%d (%dx%d): hirschberg %d, fm %d", base, seed, la, lb, got.Score, want.Score)
			}
			if msg := testutil.CheckAlignment(a, b, got.Path, got.Score, m, gap); msg != "" {
				t.Fatalf("base=%d seed=%d: %s", base, seed, msg)
			}
		}
	}
}

// TestMatchesFMQuick is a testing/quick property: for arbitrary short DNA
// strings, Hirschberg and FM agree on the optimal score.
func TestMatchesFMQuick(t *testing.T) {
	gap := scoring.Linear(-2)
	m := scoring.DNASimple
	letters := []byte("ACGT")
	f := func(xa, xb []uint8) bool {
		if len(xa) > 64 {
			xa = xa[:64]
		}
		if len(xb) > 64 {
			xb = xb[:64]
		}
		ra := make([]byte, len(xa))
		for i, v := range xa {
			ra[i] = letters[int(v)%4]
		}
		rb := make([]byte, len(xb))
		for i, v := range xb {
			rb[i] = letters[int(v)%4]
		}
		a := seq.MustNew("a", string(ra), seq.DNA)
		b := seq.MustNew("b", string(rb), seq.DNA)
		want, err := fm.Align(a, b, m, gap, nil, nil)
		if err != nil {
			return false
		}
		got, err := hirschberg.Align(a, b, m, gap, hirschberg.Options{BaseCells: 64}, nil)
		if err != nil {
			return false
		}
		return got.Score == want.Score &&
			testutil.CheckAlignment(a, b, got.Path, got.Score, m, gap) == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAffineMatchesFM verifies the Myers-Miller extension against the Gotoh
// full-matrix algorithm.
func TestAffineMatchesFM(t *testing.T) {
	for _, gap := range []scoring.Gap{
		scoring.Affine(-8, -1),
		scoring.Affine(-4, -3),
		scoring.Affine(-1, -1),
	} {
		for seed := int64(0); seed < 25; seed++ {
			la := int(seed*11%35) + 1
			lb := int(seed*23%35) + 1
			a, b := testutil.RandomPair(la, lb, seq.Protein, seed+500)
			m := testutil.RandomMatrix(seq.Protein, seed+500)
			want, err := fm.AlignAffine(a, b, m, gap, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := hirschberg.Align(a, b, m, gap, hirschberg.Options{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got.Score != want.Score {
				t.Fatalf("gap=%v seed=%d (%dx%d): myers-miller %d, gotoh %d", gap, seed, la, lb, got.Score, want.Score)
			}
			if msg := testutil.CheckAlignment(a, b, got.Path, got.Score, m, gap); msg != "" {
				t.Fatalf("gap=%v seed=%d: %s", gap, seed, msg)
			}
		}
	}
}

// TestRecomputationFactor checks the §2.2 claim: Hirschberg performs
// approximately twice the cell computations of the FM algorithm.
func TestRecomputationFactor(t *testing.T) {
	a, b := testutil.HomologousPair(600, seq.DNA, 9)
	var c stats.Counters
	if _, err := hirschberg.Align(a, b, scoring.DNASimple, scoring.Linear(-4), hirschberg.Options{BaseCells: 1024}, &c); err != nil {
		t.Fatal(err)
	}
	f := c.RecomputationFactor(a.Len(), b.Len())
	if f < 1.0 || f > 2.3 {
		t.Fatalf("recomputation factor %.3f outside (1.0, 2.3]", f)
	}
	if f < 1.5 {
		t.Fatalf("recomputation factor %.3f suspiciously low for Hirschberg (expect ~2)", f)
	}
}

func TestScoreOnly(t *testing.T) {
	a, b := testutil.HomologousPair(300, seq.Protein, 10)
	m := scoring.BLOSUM62
	for _, gap := range []scoring.Gap{scoring.Linear(-5), scoring.Affine(-10, -1)} {
		want, err := fm.Align(a, b, m, gap, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := hirschberg.Score(a, b, m, gap, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want.Score {
			t.Fatalf("gap=%v: Score()=%d, Align()=%d", gap, got, want.Score)
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	empty := seq.MustNew("e", "", seq.DNA)
	b := seq.MustNew("b", "ACGTAC", seq.DNA)
	res, err := hirschberg.Align(empty, b, scoring.DNAStrict, scoring.Linear(-1), hirschberg.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != -6 || res.Path.String() != "LLLLLL" {
		t.Fatalf("got score %d path %q", res.Score, res.Path)
	}
	res, err = hirschberg.Align(b, empty, scoring.DNAStrict, scoring.Linear(-1), hirschberg.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != -6 || res.Path.String() != "UUUUUU" {
		t.Fatalf("got score %d path %q", res.Score, res.Path)
	}
}
