package hirschberg_test

import (
	"testing"

	"fastlsa/internal/hirschberg"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/testutil"
)

// BenchmarkAlign measures the linear-gap divide-and-conquer aligner; the
// allocs/op column tracks how well the row pool keeps the recursion's
// boundary and sweep vectors out of the allocator.
func BenchmarkAlign(b *testing.B) {
	const n = 1000
	x, y := testutil.HomologousPair(n, seq.DNA, 42)
	b.SetBytes(int64(n) * int64(n))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hirschberg.Align(x, y, scoring.DNASimple, scoring.Linear(-4), hirschberg.Options{}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlignAffine measures the Myers-Miller affine aligner.
func BenchmarkAlignAffine(b *testing.B) {
	const n = 600
	x, y := testutil.HomologousPair(n, seq.Protein, 43)
	b.SetBytes(int64(n) * int64(n))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hirschberg.Align(x, y, scoring.BLOSUM62, scoring.Affine(-11, -1), hirschberg.Options{}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScore measures the score-only linear-space sweep for both gap
// models.
func BenchmarkScore(b *testing.B) {
	const n = 1000
	x, y := testutil.HomologousPair(n, seq.DNA, 44)
	b.Run("linear", func(b *testing.B) {
		b.SetBytes(int64(n) * int64(n))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := hirschberg.Score(x, y, scoring.DNASimple, scoring.Linear(-4), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("affine", func(b *testing.B) {
		b.SetBytes(int64(n) * int64(n))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := hirschberg.Score(x, y, scoring.DNASimple, scoring.Affine(-8, -2), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
