// Package hirschberg implements Hirschberg's divide-and-conquer linear-space
// global alignment algorithm as applied to sequence alignment by Myers and
// Miller (paper §2.2): split the row sequence in half, run the score-only
// LastRow kernel forwards over the top half and backwards over the bottom
// half, pick the column where the two meet with maximal total score, and
// recurse on the two subproblems. Space is O(min(m,n)); roughly m*n extra
// cell computations are performed compared to the full-matrix algorithm
// (recomputation factor ~2).
package hirschberg

import (
	"fastlsa/internal/align"
	"fastlsa/internal/fm"
	"fastlsa/internal/lastrow"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/stats"
)

// DefaultBaseCells is the subproblem area at which the recursion switches to
// the full-matrix solver. Small enough to be cache-resident, large enough to
// amortise recursion overhead.
const DefaultBaseCells = 4096

// Options tunes the algorithm.
type Options struct {
	// BaseCells is the (m+1)*(n+1) area threshold below which a subproblem
	// is solved with the stored-matrix algorithm (<= 0 selects
	// DefaultBaseCells; 1 forces full recursion to single rows).
	BaseCells int
}

// Align computes the optimal global alignment of a and b in linear space.
// Linear gap models only; affine models are handled by AlignAffine
// (Myers-Miller).
func Align(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, opt Options, c *stats.Counters) (fm.Result, error) {
	if err := gap.Validate(); err != nil {
		return fm.Result{}, err
	}
	if !gap.IsLinear() {
		return AlignAffine(a, b, m, gap, opt, c)
	}
	base := opt.BaseCells
	if base <= 0 {
		base = DefaultBaseCells
	}
	h := &solver{m: m, g: int64(gap.Extend), base: base, c: c}
	h.moves = make([]align.Move, 0, a.Len()+b.Len())
	if err := h.solve(a.Residues, b.Residues); err != nil {
		return fm.Result{}, err
	}
	path := align.NewPath(h.moves)
	score := align.ScorePath(a, b, path, m, gap)
	c.AddTraceback(int64(path.Len()))
	return fm.Result{Score: score, Path: path}, nil
}

// Score computes only the optimal score in O(min(m,n)) space (one LastRow
// sweep; no recursion).
func Score(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, c *stats.Counters) (int64, error) {
	if err := gap.Validate(); err != nil {
		return 0, err
	}
	if !gap.IsLinear() {
		return scoreAffine(a.Residues, b.Residues, m, int64(gap.Open), int64(gap.Extend), c)
	}
	return lastrow.Score(a.Residues, b.Residues, m, int64(gap.Extend), c)
}

type solver struct {
	m     *scoring.Matrix
	g     int64
	base  int
	c     *stats.Counters
	moves []align.Move
}

func (h *solver) emit(mv align.Move, n int) {
	for i := 0; i < n; i++ {
		h.moves = append(h.moves, mv)
	}
}

// solve appends the optimal path moves for the standalone global alignment
// of ra vs rb (leading-gap boundaries) to h.moves, in forward order.
func (h *solver) solve(ra, rb []byte) error {
	la, lb := len(ra), len(rb)
	switch {
	case la == 0:
		h.emit(align.Left, lb)
		return nil
	case lb == 0:
		h.emit(align.Up, la)
		return nil
	case (la+1)*(lb+1) <= h.base || la == 1:
		return h.solveFull(ra, rb)
	}

	mid := la / 2

	// Forward pass: last row of a[:mid] x b.
	fwd := make([]int64, lb+1)
	top := lastrow.Boundary(nil, lb, 0, h.g)
	left := lastrow.Boundary(nil, mid, 0, h.g)
	if err := lastrow.Forward(ra[:mid], rb, h.m, h.g, top, left, fwd, nil, h.c); err != nil {
		return err
	}

	// Backward pass: suffix scores of a[mid:] x b at row mid.
	bwd := make([]int64, lb+1)
	bottom := trailingBoundary(lb, h.g)
	right := trailingBoundary(la-mid, h.g)
	if err := lastrow.Backward(ra[mid:], rb, h.m, h.g, bottom, right, bwd, nil, h.c); err != nil {
		return err
	}

	// The optimal path crosses row mid at the column maximising fwd+bwd.
	// Smallest such column for determinism.
	split, best := 0, fwd[0]+bwd[0]
	for j := 1; j <= lb; j++ {
		if s := fwd[j] + bwd[j]; s > best {
			best = s
			split = j
		}
	}

	if err := h.solve(ra[:mid], rb[:split]); err != nil {
		return err
	}
	return h.solve(ra[mid:], rb[split:])
}

// solveFull solves a base-case subproblem with a stored matrix and appends
// its full path.
func (h *solver) solveFull(ra, rb []byte) error {
	cols := len(rb) + 1
	buf := make([]int64, (len(ra)+1)*cols)
	top := lastrow.Boundary(buf[:cols], len(rb), 0, h.g)
	left := lastrow.Boundary(nil, len(ra), 0, h.g)
	if err := fm.FillRect(ra, rb, h.m, h.g, top, left, buf, h.c); err != nil {
		return err
	}
	bld := align.NewBuilder(len(ra) + len(rb))
	r, cc := fm.TracebackRect(ra, rb, h.m, h.g, buf, bld, len(ra), len(rb), h.c)
	for ; r > 0; r-- {
		bld.Push(align.Up)
	}
	for ; cc > 0; cc-- {
		bld.Push(align.Left)
	}
	h.moves = append(h.moves, bld.Path().Moves()...)
	return nil
}

// trailingBoundary returns dst[i] = (n-i)*g: the cost of gapping out the
// remaining suffix, i.e. the bottom/right boundary of a standalone suffix
// alignment.
func trailingBoundary(n int, g int64) []int64 {
	dst := make([]int64, n+1)
	for i := 0; i <= n; i++ {
		dst[i] = int64(n-i) * g
	}
	return dst
}
