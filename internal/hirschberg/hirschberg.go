// Package hirschberg implements Hirschberg's divide-and-conquer linear-space
// global alignment algorithm as applied to sequence alignment by Myers and
// Miller (paper §2.2): split the row sequence in half, run the score-only
// kernel sweep forwards over the top half and backwards over the bottom
// half, pick the column where the two meet with maximal total score, and
// recurse on the two subproblems. Space is O(min(m,n)); roughly m*n extra
// cell computations are performed compared to the full-matrix algorithm
// (recomputation factor ~2).
//
// One solver serves both gap models. Linear gaps run the plain Hirschberg
// split (the boundary discounts are inert: a linear model has no open
// charge). Affine gaps run Myers & Miller's extension: the recursion carries
// two boundary discounts, tb and te — the gap-open charge for a vertical gap
// continuing through the subproblem's top boundary at its column 0, and
// through its bottom boundary at its column N, respectively — and a split is
// either type 1 (the optimal path crosses the middle row in the closed
// state) or type 2 (a single vertical gap spans the middle rows, refunding
// one gap-open charge).
package hirschberg

import (
	"fmt"

	"fastlsa/internal/align"
	"fastlsa/internal/fm"
	"fastlsa/internal/kernel"
	"fastlsa/internal/memory"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/stats"
)

// DefaultBaseCells is the subproblem area at which the recursion switches to
// the full-matrix solver. Small enough to be cache-resident, large enough to
// amortise recursion overhead.
const DefaultBaseCells = 4096

// pool recycles split vectors, boundary edges and kernel scratch rows across
// calls.
var pool = memory.NewRowPool()

// Options tunes the algorithm.
type Options struct {
	// BaseCells is the (m+1)*(n+1) area threshold below which a subproblem
	// is solved with the stored-matrix algorithm (<= 0 selects
	// DefaultBaseCells; 1 forces full recursion to single rows).
	BaseCells int
}

// Align computes the optimal global alignment of a and b in linear space,
// under either gap model (Hirschberg for linear gaps, Myers-Miller for
// affine).
func Align(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, opt Options, c *stats.Counters) (fm.Result, error) {
	if err := gap.Validate(); err != nil {
		return fm.Result{}, err
	}
	base := opt.BaseCells
	if base <= 0 {
		base = DefaultBaseCells
	}
	mod := kernel.FromGap(gap)
	h := &solver{k: kernel.New(m, mod, pool, c), base: base}
	h.moves = make([]align.Move, 0, a.Len()+b.Len())
	if err := h.solve(a.Residues, b.Residues, mod.Open, mod.Open); err != nil {
		return fm.Result{}, err
	}
	h.putBase()
	path := align.NewPath(h.moves)
	if mod.IsAffine() {
		if err := path.Validate(a.Len(), b.Len()); err != nil {
			return fm.Result{}, fmt.Errorf("hirschberg: affine path invalid: %w", err)
		}
	}
	score := align.ScorePath(a, b, path, m, gap)
	c.AddTraceback(int64(path.Len()))
	return fm.Result{Score: score, Path: path}, nil
}

// AlignAffine is Align under an affine gap model (Myers & Miller's
// adaptation of Hirschberg's scheme). Retained as a named entry point; it is
// the same unified solver.
func AlignAffine(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, opt Options, c *stats.Counters) (fm.Result, error) {
	return Align(a, b, m, gap, opt, c)
}

// Score computes only the optimal score in O(min(m,n)) space (one kernel
// sweep; no recursion), for either gap model.
func Score(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, c *stats.Counters) (int64, error) {
	if err := gap.Validate(); err != nil {
		return 0, err
	}
	k := kernel.New(m, kernel.FromGap(gap), pool, c)
	return k.Score(a.Residues, b.Residues)
}

type solver struct {
	k     *kernel.Kernel
	base  int
	moves []align.Move
	// baseRect is the reusable base-case plane set (lazily grown to h.base
	// entries per live plane, recycled through the pool on putBase).
	baseRect kernel.Rect
}

func (h *solver) emit(mv align.Move, n int) {
	for i := 0; i < n; i++ {
		h.moves = append(h.moves, mv)
	}
}

// solve appends the optimal path moves for aligning ra against rb to
// h.moves, in forward order, given the boundary discounts tb and te (each
// either the model's Open or 0; inert for linear models).
func (h *solver) solve(ra, rb []byte, tb, te int64) error {
	M, N := len(ra), len(rb)
	switch {
	case M == 0:
		h.emit(align.Left, N)
		return nil
	case N == 0:
		h.emit(align.Up, M)
		return nil
	}
	affine := h.k.Mod.IsAffine()
	open := h.k.Mod.Open
	if affine {
		// The stored-matrix base case charges the plain open at both
		// boundaries, so it is only valid when neither discount is active.
		if tb == open && te == open && (M+1)*(N+1) <= h.base {
			return h.solveFull(ra, rb)
		}
		if M == 1 {
			h.solveSingleRow(ra, rb, tb, te)
			return nil
		}
	} else if (M+1)*(N+1) <= h.base || M == 1 {
		return h.solveFull(ra, rb)
	}

	mid := M / 2

	// Forward pass over ra[:mid]: row-mid H (and, affine, E) values.
	fwd := h.k.NewEdge(N)
	defer h.k.PutEdge(fwd)
	top := h.k.LeadEdge(N, 0)
	left := h.gapRunEdge(mid, tb, false)
	err := h.k.Forward(ra[:mid], rb, top, left, fwd, kernel.Edge{})
	h.k.PutEdge(top)
	h.k.PutEdge(left)
	if err != nil {
		return err
	}
	if affine {
		// Column 0 is one vertical run (the left boundary is a gap run), so
		// the vertical-gap state there equals the closed state; the sweep
		// itself leaves the out-edge E lane dead at column 0.
		fwd.G[0] = fwd.H[0]
	}

	// Backward pass over ra[mid:]: suffix values at row mid.
	bwd := h.k.NewEdge(N)
	defer h.k.PutEdge(bwd)
	bottom := h.trailingEdge(N)
	right := h.gapRunEdge(M-mid, te, true)
	err = h.k.Backward(ra[mid:], rb, bottom, right, bwd, kernel.Edge{})
	h.k.PutEdge(bottom)
	h.k.PutEdge(right)
	if err != nil {
		return err
	}
	if affine {
		// Mirror patch: column N of the suffix problem is one vertical run.
		bwd.G[N] = bwd.H[N]
	}

	// Choose the crossing column (smallest maximising j for determinism).
	// Type 1: the path crosses row mid in the closed state. Type 2 (affine):
	// a vertical gap spans rows mid and mid+1 at column j, refunding one
	// gap-open charge; the two straddling Up moves are emitted directly.
	bestJ, bestType := 0, 1
	best := fwd.H[0] + bwd.H[0]
	for j := 0; j <= N; j++ {
		if v := fwd.H[j] + bwd.H[j]; v > best {
			best, bestJ, bestType = v, j, 1
		}
		if affine {
			if v := fwd.G[j] + bwd.G[j] - open; v > best {
				best, bestJ, bestType = v, j, 2
			}
		}
	}

	if bestType == 1 {
		if err := h.solve(ra[:mid], rb[:bestJ], tb, open); err != nil {
			return err
		}
		return h.solve(ra[mid:], rb[bestJ:], open, te)
	}
	if err := h.solve(ra[:mid-1], rb[:bestJ], tb, 0); err != nil {
		return err
	}
	h.emit(align.Up, 2)
	return h.solve(ra[mid+1:], rb[bestJ:], 0, te)
}

// solveFull solves a base-case subproblem with a stored plane set (reused
// across base cases) and appends its full path.
func (h *solver) solveFull(ra, rb []byte) error {
	entries := (len(ra) + 1) * (len(rb) + 1)
	h.growBase(entries)
	rt := h.baseRect.SliceRect(entries)
	top := h.k.LeadEdge(len(rb), 0)
	left := h.k.LeadEdge(len(ra), 0)
	err := h.k.FillRect(ra, rb, top, left, rt)
	h.k.PutEdge(top)
	h.k.PutEdge(left)
	if err != nil {
		return err
	}
	bld := align.NewBuilder(len(ra) + len(rb))
	r, cc, _ := h.k.Traceback(ra, rb, rt, bld, len(ra), len(rb), kernel.StateH)
	for ; r > 0; r-- {
		bld.Push(align.Up)
	}
	for ; cc > 0; cc-- {
		bld.Push(align.Left)
	}
	h.moves = append(h.moves, bld.Path().Moves()...)
	return nil
}

// solveSingleRow handles the affine M == 1, N >= 1 base case explicitly
// (Myers-Miller): either the single residue is deleted (gap open discounted
// by the better of tb/te) or it is matched against some b[j-1].
func (h *solver) solveSingleRow(ra, rb []byte, tb, te int64) {
	N := len(rb)
	gapScore := h.k.Mod.GapCost
	// Option A: delete ra[0], insert all of rb.
	openDel := tb
	delAtTop := true
	if te > openDel {
		openDel = te
		delAtTop = false
	}
	best := openDel + h.k.Mod.Ext + gapScore(N)
	bestJ := 0 // 0 means option A
	// Option B: match ra[0] with rb[j-1].
	for j := 1; j <= N; j++ {
		v := int64(h.k.M.Score(ra[0], rb[j-1])) + gapScore(j-1) + gapScore(N-j)
		if v > best {
			best = v
			bestJ = j
		}
	}
	switch {
	case bestJ == 0 && delAtTop:
		h.emit(align.Up, 1)
		h.emit(align.Left, N)
	case bestJ == 0:
		h.emit(align.Left, N)
		h.emit(align.Up, 1)
	default:
		h.emit(align.Left, bestJ-1)
		h.emit(align.Diag, 1)
		h.emit(align.Left, N-bestJ)
	}
}

// gapRunEdge builds the boundary of one vertical gap run of length n whose
// open charge is the discount d: H[0] = 0, H[i] = d + i*Ext (or, when
// suffix, H[n] = 0 and H[i] = d + (n-i)*Ext). The gap lane is dead — the
// run's state is carried by H, and the crossing lane (F) cannot be live on a
// standalone column boundary.
func (h *solver) gapRunEdge(n int, d int64, suffix bool) kernel.Edge {
	e := h.k.NewEdge(n)
	if suffix {
		e.H[n] = 0
		for i := n - 1; i >= 0; i-- {
			e.H[i] = d + int64(n-i)*h.k.Mod.Ext
		}
	} else {
		e.H[0] = 0
		for i := 1; i <= n; i++ {
			e.H[i] = d + int64(i)*h.k.Mod.Ext
		}
	}
	if e.G != nil {
		for i := range e.G {
			e.G[i] = kernel.NegInf
		}
	}
	return e
}

// trailingEdge is the bottom boundary of a standalone suffix problem:
// H[j] = GapCost(N-j) (zero at j = N), gap lane dead.
func (h *solver) trailingEdge(n int) kernel.Edge {
	e := h.k.NewEdge(n)
	e.H[n] = 0
	for j := n - 1; j >= 0; j-- {
		e.H[j] = h.k.Mod.GapCost(n - j)
	}
	if e.G != nil {
		for i := range e.G {
			e.G[i] = kernel.NegInf
		}
	}
	return e
}

// growBase ensures the reusable base-case planes hold entries cells.
func (h *solver) growBase(entries int) {
	if cap(h.baseRect.H) >= entries {
		return
	}
	h.putBase()
	h.baseRect.H = pool.GetFull(entries)
	if h.k.Mod.IsAffine() {
		h.baseRect.E = pool.GetFull(entries)
		h.baseRect.F = pool.GetFull(entries)
	}
}

// putBase returns the base-case planes to the pool.
func (h *solver) putBase() {
	pool.Put(h.baseRect.H)
	pool.Put(h.baseRect.E)
	pool.Put(h.baseRect.F)
	h.baseRect = kernel.Rect{}
}
