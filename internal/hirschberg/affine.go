package hirschberg

import (
	"fmt"

	"fastlsa/internal/align"
	"fastlsa/internal/fm"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/stats"
)

// AlignAffine computes the optimal global alignment under an affine gap
// model in linear space, following Myers & Miller's adaptation of
// Hirschberg's scheme (an extension over the paper's linear-gap setting).
//
// The recursion carries two boundary discounts, tb and te: the gap-open
// charge for a vertical gap that continues through the subproblem's top
// boundary at its column 0, and through its bottom boundary at its column N,
// respectively. A split is either type 1 (the optimal path crosses the middle
// row between gaps) or type 2 (a single vertical gap spans the middle rows,
// in which case one gap-open charge is refunded and the two straddling rows
// are emitted directly).
func AlignAffine(a, b *seq.Sequence, m *scoring.Matrix, gap scoring.Gap, opt Options, c *stats.Counters) (fm.Result, error) {
	if err := gap.Validate(); err != nil {
		return fm.Result{}, err
	}
	if gap.IsLinear() {
		return Align(a, b, m, gap, opt, c)
	}
	open, ext := int64(gap.Open), int64(gap.Extend)
	s := &affineSolver{m: m, open: open, ext: ext, c: c}
	s.moves = make([]align.Move, 0, a.Len()+b.Len())
	s.diff(a.Residues, b.Residues, open, open)
	if s.err != nil {
		return fm.Result{}, s.err
	}
	path := align.NewPath(s.moves)
	if err := path.Validate(a.Len(), b.Len()); err != nil {
		return fm.Result{}, fmt.Errorf("hirschberg: affine path invalid: %w", err)
	}
	score := align.ScorePath(a, b, path, m, gap)
	c.AddTraceback(int64(path.Len()))
	return fm.Result{Score: score, Path: path}, nil
}

// scoreAffine computes just the affine global score in linear space.
func scoreAffine(ra, rb []byte, m *scoring.Matrix, open, ext int64, c *stats.Counters) (int64, error) {
	if len(ra) == 0 {
		if len(rb) == 0 {
			return 0, nil
		}
		return open + int64(len(rb))*ext, nil
	}
	cc, _ := forwardAffine(ra, rb, m, open, ext, open, c)
	if err := c.Cancelled(); err != nil {
		return 0, err
	}
	return cc[len(rb)], nil
}

type affineSolver struct {
	m     *scoring.Matrix
	open  int64
	ext   int64
	c     *stats.Counters
	moves []align.Move
	// err latches the first cancellation noticed by the recursion; once set,
	// diff returns immediately at every level and AlignAffine reports it.
	err error
}

func (s *affineSolver) emit(mv align.Move, n int) {
	for i := 0; i < n; i++ {
		s.moves = append(s.moves, mv)
	}
}

// gapScore is the score of inserting a gap of length n (0 for n == 0).
func (s *affineSolver) gapScore(n int) int64 {
	if n <= 0 {
		return 0
	}
	return s.open + int64(n)*s.ext
}

// diff emits the optimal path for aligning ra against rb given the boundary
// discounts tb and te (each either s.open or 0).
func (s *affineSolver) diff(ra, rb []byte, tb, te int64) {
	if s.err != nil {
		return
	}
	if err := s.c.Cancelled(); err != nil {
		s.err = err
		return
	}
	M, N := len(ra), len(rb)
	switch {
	case M == 0:
		s.emit(align.Left, N)
		return
	case N == 0:
		s.emit(align.Up, M)
		return
	case M == 1:
		s.diffSingleRow(ra, rb, tb, te)
		return
	}

	i := M / 2
	cc, dd := forwardAffine(ra[:i], rb, s.m, s.open, s.ext, tb, s.c)
	rr, ss := reverseAffine(ra[i:], rb, s.m, s.open, s.ext, te, s.c)

	// Choose the crossing column and type. Type 1: path passes node (i,j)
	// between gaps. Type 2: a vertical gap spans rows i and i+1 at column j
	// (one open refunded).
	bestJ, bestType := 0, 1
	best := cc[0] + rr[0]
	for j := 0; j <= N; j++ {
		if v := cc[j] + rr[j]; v > best {
			best, bestJ, bestType = v, j, 1
		}
		if v := dd[j] + ss[j] - s.open; v > best {
			best, bestJ, bestType = v, j, 2
		}
	}

	if bestType == 1 {
		s.diff(ra[:i], rb[:bestJ], tb, s.open)
		s.diff(ra[i:], rb[bestJ:], s.open, te)
		return
	}
	// Type 2: rows i and i+1 (1-based) are inside one vertical gap.
	s.diff(ra[:i-1], rb[:bestJ], tb, 0)
	s.emit(align.Up, 2)
	s.diff(ra[i+1:], rb[bestJ:], 0, te)
}

// diffSingleRow handles M == 1, N >= 1 explicitly (the Myers-Miller base
// case): either the single residue is deleted (gap open discounted by the
// better of tb/te) or it is matched against some b[j-1].
func (s *affineSolver) diffSingleRow(ra, rb []byte, tb, te int64) {
	N := len(rb)
	// Option A: delete ra[0], insert all of rb.
	openDel := tb
	delAtTop := true
	if te > openDel {
		openDel = te
		delAtTop = false
	}
	best := openDel + s.ext + s.gapScore(N)
	bestJ := 0 // 0 means option A
	// Option B: match ra[0] with rb[j-1].
	for j := 1; j <= N; j++ {
		v := int64(s.m.Score(ra[0], rb[j-1])) + s.gapScore(j-1) + s.gapScore(N-j)
		if v > best {
			best = v
			bestJ = j
		}
	}
	switch {
	case bestJ == 0 && delAtTop:
		s.emit(align.Up, 1)
		s.emit(align.Left, N)
	case bestJ == 0:
		s.emit(align.Left, N)
		s.emit(align.Up, 1)
	default:
		s.emit(align.Left, bestJ-1)
		s.emit(align.Diag, 1)
		s.emit(align.Left, N-bestJ)
	}
}

// forwardAffine computes the Myers-Miller forward vectors over aligning
// ra (rows) against rb: cc[j] = best score of aligning all of ra against
// rb[:j] (any end state); dd[j] = best score of the same ending in a vertical
// gap (an Up move). tb is the gap-open charge for a vertical gap running down
// column 0 from the top boundary.
func forwardAffine(ra, rb []byte, m *scoring.Matrix, open, ext, tb int64, c *stats.Counters) (cc, dd []int64) {
	N := len(rb)
	cc = make([]int64, N+1)
	dd = make([]int64, N+1)
	t := open
	cc[0] = 0
	for j := 1; j <= N; j++ {
		t += ext
		cc[j] = t
		dd[j] = t + open
	}
	dd[0] = fm.NegInf
	t = tb
	stride := stats.PollStride(N)
	for i := 1; i <= len(ra); i++ {
		// A cancelled run bails with partial vectors; callers notice via
		// their own Cancelled polls before using the scores for anything
		// load-bearing.
		if i%stride == 0 {
			if c.Cancelled() != nil {
				break
			}
		}
		srow := m.Row(ra[i-1])
		sdiag := cc[0]
		t += ext
		cv := t
		cc[0] = cv
		e := t + open
		for j := 1; j <= N; j++ {
			// e: best ending in a horizontal gap at (i, j).
			if v := cv + open; v > e {
				e = v
			}
			e += ext
			// dd[j]: best ending in a vertical gap at (i, j).
			d := dd[j]
			if v := cc[j] + open; v > d {
				d = v
			}
			d += ext
			dd[j] = d
			// cv: best overall at (i, j).
			cv = sdiag + int64(srow[rb[j-1]])
			if d > cv {
				cv = d
			}
			if e > cv {
				cv = e
			}
			sdiag = cc[j]
			cc[j] = cv
		}
		dd[0] = cc[0] // column 0 is one vertical run when i >= 1
	}
	c.AddCells(int64(len(ra)) * int64(N))
	return cc, dd
}

// reverseAffine computes the reverse vectors: rr[j] = best score of aligning
// ra (the bottom rows) against rb[j:] (any start state); ss[j] = the same
// *starting* with a vertical gap (an Up move consuming ra[0]). te is the
// gap-open charge for a vertical gap running up column N from the bottom
// boundary.
func reverseAffine(ra, rb []byte, m *scoring.Matrix, open, ext, te int64, c *stats.Counters) (rr, ss []int64) {
	ra2 := reverseBytes(ra)
	rb2 := reverseBytes(rb)
	cc2, dd2 := forwardAffine(ra2, rb2, m, open, ext, te, c)
	N := len(rb)
	rr = make([]int64, N+1)
	ss = make([]int64, N+1)
	for j := 0; j <= N; j++ {
		rr[j] = cc2[N-j]
		ss[j] = dd2[N-j]
	}
	return rr, ss
}

func reverseBytes(s []byte) []byte {
	r := make([]byte, len(s))
	for i, c := range s {
		r[len(s)-1-i] = c
	}
	return r
}
