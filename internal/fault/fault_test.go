package fault

import (
	"context"
	"errors"
	"testing"
	"time"
)

// arm is a test helper that arms spec and restores the disarmed state.
func arm(t *testing.T, spec string, seed int64) {
	t.Helper()
	if err := Arm(spec, seed); err != nil {
		t.Fatalf("Arm(%q): %v", spec, err)
	}
	t.Cleanup(Disarm)
}

func TestDisarmedSiteIsNoop(t *testing.T) {
	s := NewSite("test.noop")
	for i := 0; i < 100; i++ {
		if err := s.Hit(); err != nil {
			t.Fatalf("disarmed Hit returned %v", err)
		}
	}
	var nilSite *Site
	if err := nilSite.Hit(); err != nil {
		t.Fatalf("nil site Hit returned %v", err)
	}
}

func TestErrorInjection(t *testing.T) {
	s := NewSite("test.err")
	arm(t, "test.err:error", 7)
	err := s.Hit()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err %v does not wrap ErrInjected", err)
	}
}

func TestCancelInjection(t *testing.T) {
	s := NewSite("test.cancel")
	arm(t, "test.cancel:cancel:1", 7)
	if err := s.Hit(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v does not wrap context.Canceled", err)
	}
}

func TestPanicInjection(t *testing.T) {
	s := NewSite("test.panic")
	arm(t, "test.panic:panic", 7)
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("no panic injected")
		}
		if !IsInjectedPanic(v) {
			t.Fatalf("panic value %v is not an InjectedPanic", v)
		}
		if v.(InjectedPanic).Site != "test.panic" {
			t.Fatalf("panic site = %q", v.(InjectedPanic).Site)
		}
	}()
	_ = s.Hit()
}

func TestDelayInjection(t *testing.T) {
	s := NewSite("test.delay")
	arm(t, "test.delay:delay:30ms", 7)
	start := time.Now()
	if err := s.Hit(); err != nil {
		t.Fatalf("delay-only site returned %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay of 30ms slept only %s", d)
	}
}

func TestDelayThenError(t *testing.T) {
	// A delay rule falls through to later rules on the same site.
	s := NewSite("test.multi")
	arm(t, "test.multi:delay:1ms,test.multi:error", 7)
	if err := s.Hit(); !errors.Is(err, ErrInjected) {
		t.Fatalf("err %v does not wrap ErrInjected after delay", err)
	}
}

func TestSeededDeterminism(t *testing.T) {
	s := NewSite("test.seeded")
	outcomes := func(seed int64) []bool {
		arm(t, "test.seeded:error:0.3", seed)
		out := make([]bool, 200)
		for i := range out {
			out[i] = s.Hit() != nil
		}
		return out
	}
	a := outcomes(42)
	b := outcomes(42)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged under identical seed", i)
		}
		if a[i] {
			fired++
		}
	}
	// 200 draws at p=0.3: expect ~60; a loose band catches a broken PRNG.
	if fired < 25 || fired > 110 {
		t.Fatalf("p=0.3 fired %d/200 times", fired)
	}
	c := outcomes(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical firing sequences")
	}
}

func TestWildcards(t *testing.T) {
	s1 := NewSite("wild.alpha")
	s2 := NewSite("wild.beta")
	s3 := NewSite("tame.gamma")

	arm(t, "wild.*:error", 7)
	if err := s1.Hit(); !errors.Is(err, ErrInjected) {
		t.Fatalf("prefix wildcard missed wild.alpha: %v", err)
	}
	if err := s2.Hit(); !errors.Is(err, ErrInjected) {
		t.Fatalf("prefix wildcard missed wild.beta: %v", err)
	}
	if err := s3.Hit(); err != nil {
		t.Fatalf("prefix wildcard hit tame.gamma: %v", err)
	}

	arm(t, "*:error", 7)
	if err := s3.Hit(); !errors.Is(err, ErrInjected) {
		t.Fatalf("global wildcard missed tame.gamma: %v", err)
	}
}

func TestLateRegistrationIsArmed(t *testing.T) {
	arm(t, "late.*:error", 7)
	s := NewSite("late.site")
	if err := s.Hit(); !errors.Is(err, ErrInjected) {
		t.Fatalf("late-registered site not armed: %v", err)
	}
	Disarm()
	if err := s.Hit(); err != nil {
		t.Fatalf("Disarm left site armed: %v", err)
	}
}

func TestArmFromEnv(t *testing.T) {
	s := NewSite("env.site")
	env := map[string]string{EnvSpec: "env.site:error", EnvSeed: "9"}
	armed, err := ArmFromEnv(func(k string) string { return env[k] })
	if err != nil || !armed {
		t.Fatalf("ArmFromEnv = (%v, %v), want (true, nil)", armed, err)
	}
	t.Cleanup(Disarm)
	if err := s.Hit(); !errors.Is(err, ErrInjected) {
		t.Fatalf("env-armed site not firing: %v", err)
	}

	Disarm()
	armed, err = ArmFromEnv(func(string) string { return "" })
	if err != nil || armed {
		t.Fatalf("empty env ArmFromEnv = (%v, %v), want (false, nil)", armed, err)
	}
	if _, err := ArmFromEnv(func(k string) string {
		if k == EnvSpec {
			return "bogus"
		}
		return ""
	}); err == nil {
		t.Fatal("bad env spec accepted")
	}
}

func TestSpecParseErrors(t *testing.T) {
	for _, spec := range []string{
		"nokind",
		"p:flood",
		"p:delay",          // missing duration
		"p:delay:notadur",  // bad duration
		"p:error:2",        // probability out of range
		"p:error:-0.1",     // negative probability
		"p:error:0.5:junk", // trailing fields
		":error",           // empty point
	} {
		if err := Arm(spec, 1); err == nil {
			Disarm()
			t.Errorf("Arm(%q) accepted", spec)
		}
	}
	// A parse error must not disturb the existing arming.
	s := NewSite("test.sticky")
	arm(t, "test.sticky:error", 7)
	if err := Arm("broken", 1); err == nil {
		t.Fatal("broken spec accepted")
	}
	if err := s.Hit(); !errors.Is(err, ErrInjected) {
		t.Fatalf("failed Arm disturbed previous arming: %v", err)
	}
}

func TestSitesAndLookup(t *testing.T) {
	s := NewSite("test.lookup")
	if Lookup("test.lookup") != s {
		t.Fatal("Lookup did not return the registered site")
	}
	if NewSite("test.lookup") != s {
		t.Fatal("NewSite is not idempotent")
	}
	found := false
	for _, name := range Sites() {
		if name == "test.lookup" {
			found = true
		}
	}
	if !found {
		t.Fatal("Sites() does not list test.lookup")
	}
}

// TestDisarmedZeroAlloc is the acceptance guard: a disarmed site on a hot
// path must not allocate (mirrors the obs disabled-trace guard).
func TestDisarmedZeroAlloc(t *testing.T) {
	Disarm()
	s := NewSite("test.hotpath")
	allocs := testing.AllocsPerRun(1000, func() {
		if err := s.Hit(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("disarmed site allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkDisarmedHit measures the disarmed fast path: one atomic load.
func BenchmarkDisarmedHit(b *testing.B) {
	Disarm()
	s := NewSite("bench.hotpath")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Hit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArmedMiss measures an armed site whose probability never fires
// (one PRNG draw per rule).
func BenchmarkArmedMiss(b *testing.B) {
	s := NewSite("bench.armed")
	if err := Arm("bench.armed:error:0", 1); err != nil {
		b.Fatal(err)
	}
	defer Disarm()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Hit(); err != nil {
			b.Fatal(err)
		}
	}
}
