// Package fault is a stdlib-only fault-injection harness: named injection
// points ("sites") compiled into the production code paths that can be armed
// at runtime to inject panics, errors, delays, or cancellations with
// seeded-deterministic probability. Disarmed — the default — a site costs one
// atomic pointer load and zero allocations (pinned by an AllocsPerRun guard,
// like the obs trace guard), so sites can sit on DP fill hot paths.
//
// Sites are package-level values registered once:
//
//	var siteFillTile = fault.NewSite("core.fillTile")
//
// and hit where the fault should strike:
//
//	if err := siteFillTile.Hit(); err != nil { return err }
//
// Arming is driven by a spec string, typically from the FASTLSA_FAULTS
// environment variable (see ArmFromEnv):
//
//	FASTLSA_FAULTS="core.fillTile:panic:0.01,engine.worker:delay:50ms:0.1"
//
// Spec grammar (comma-separated entries):
//
//	point:panic[:prob]        panic with an InjectedPanic value
//	point:error[:prob]        return an error wrapping ErrInjected
//	point:cancel[:prob]       return an error wrapping context.Canceled
//	point:delay:dur[:prob]    sleep dur, then continue (other rules may fire)
//
// point is an exact site name, "*" (every site), or a "prefix.*" wildcard
// ("core.*" matches every site in core). prob defaults to 1. Probabilities
// are evaluated against a per-site splitmix64 stream seeded from the global
// seed and the site name, so a fixed (spec, seed) pair yields a reproducible
// firing sequence per site.
//
// The registry of known sites (Sites) is what chaos harnesses iterate: the CI
// chaos job arms "*:panic:p,*:delay:d:q" to strike every registered point.
// See docs/RESILIENCE.md.
package fault

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected error. Retry
// classifiers treat it as transient (errors.Is(err, fault.ErrInjected)).
var ErrInjected = errors.New("fault: injected error")

// InjectedPanic is the value thrown by panic-kind faults, so recover sites
// and tests can tell an injected panic from a genuine bug.
type InjectedPanic struct {
	// Site is the injection point that fired.
	Site string
}

func (p InjectedPanic) String() string { return "fault: injected panic at " + p.Site }

// IsInjectedPanic reports whether a recovered panic value came from this
// package.
func IsInjectedPanic(v any) bool {
	switch v.(type) {
	case InjectedPanic, *InjectedPanic:
		return true
	}
	return false
}

// Kind enumerates the fault actions a rule can take.
type Kind int

const (
	// KindPanic throws an InjectedPanic.
	KindPanic Kind = iota + 1
	// KindError returns an error wrapping ErrInjected.
	KindError
	// KindCancel returns an error wrapping context.Canceled, rehearsing the
	// cancellation paths without a real cancelled context.
	KindCancel
	// KindDelay sleeps for the rule's duration, then lets evaluation
	// continue (a site can both delay and, by a later rule, fail).
	KindDelay
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindError:
		return "error"
	case KindCancel:
		return "cancel"
	case KindDelay:
		return "delay"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// rule is one armed behaviour at one site.
type rule struct {
	kind  Kind
	prob  float64
	delay time.Duration
}

// arming is the per-site armed state: the matching rules plus a dedicated
// splitmix64 stream. A nil *arming (the default) means the site is disarmed.
type arming struct {
	site  string
	rules []rule
	state atomic.Uint64 // splitmix64 state; advanced per probability draw
}

// next draws one uniform float64 in [0, 1) from the site's stream.
func (a *arming) next() float64 {
	// splitmix64: an atomic add of the golden-gamma constant gives each draw
	// a unique state value; the finalizer mixes it into a uniform word.
	z := a.state.Add(0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// fire evaluates the rules in spec order. Delay rules sleep and fall
// through; the first panic/error/cancel rule that fires ends evaluation.
func (a *arming) fire() error {
	for i := range a.rules {
		r := &a.rules[i]
		if r.prob < 1 && a.next() >= r.prob {
			continue
		}
		switch r.kind {
		case KindDelay:
			time.Sleep(r.delay)
		case KindPanic:
			panic(InjectedPanic{Site: a.site})
		case KindError:
			return fmt.Errorf("%w at %s", ErrInjected, a.site)
		case KindCancel:
			return fmt.Errorf("fault: injected cancellation at %s: %w", a.site, context.Canceled)
		}
	}
	return nil
}

// Site is one named injection point. Create sites with NewSite (typically as
// package-level vars) and call Hit on the guarded path.
type Site struct {
	name string
	arm  atomic.Pointer[arming]
}

// Name returns the site's registered name.
func (s *Site) Name() string { return s.name }

// Hit evaluates the site: disarmed it returns nil at the cost of one atomic
// load; armed it may sleep, return an injected error, or panic with an
// InjectedPanic, according to the armed rules. Nil-receiver safe.
func (s *Site) Hit() error {
	if s == nil {
		return nil
	}
	a := s.arm.Load()
	if a == nil {
		return nil
	}
	return a.fire()
}

// registry holds every known site and the currently armed spec, so sites
// registered after Arm still pick up their rules.
var registry struct {
	mu    sync.Mutex
	sites map[string]*Site
	spec  []specEntry // nil when disarmed
	raw   string
	seed  int64
}

// specEntry is one parsed spec clause.
type specEntry struct {
	point string // exact name, "*", or "prefix.*"
	rule  rule
}

func (e specEntry) matches(name string) bool {
	if e.point == "*" || e.point == name {
		return true
	}
	if p, ok := strings.CutSuffix(e.point, "*"); ok {
		return strings.HasPrefix(name, p)
	}
	return false
}

// NewSite registers (or returns the existing) site with the given name. If a
// spec is currently armed, the new site is armed immediately, so late-
// registered points still participate in a standing chaos run.
func NewSite(name string) *Site {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.sites == nil {
		registry.sites = make(map[string]*Site)
	}
	if s, ok := registry.sites[name]; ok {
		return s
	}
	s := &Site{name: name}
	registry.sites[name] = s
	if registry.spec != nil {
		s.arm.Store(armingFor(s.name, registry.spec, registry.seed))
	}
	return s
}

// Lookup returns the registered site with the given name, or nil.
func Lookup(name string) *Site {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	return registry.sites[name]
}

// Sites lists every registered site name, sorted.
func Sites() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]string, 0, len(registry.sites))
	for name := range registry.sites {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Armed returns the currently armed spec string ("" when disarmed).
func Armed() string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	return registry.raw
}

// armingFor builds the armed state of one site under a parsed spec, or nil
// when no clause matches. The site's stream is seeded from the global seed
// and the site name, so each site's firing sequence is independent of every
// other site's and reproducible for a fixed (spec, seed).
func armingFor(name string, spec []specEntry, seed int64) *arming {
	var rules []rule
	for _, e := range spec {
		if e.matches(name) {
			rules = append(rules, e.rule)
		}
	}
	if len(rules) == 0 {
		return nil
	}
	a := &arming{site: name, rules: rules}
	h := uint64(1469598103934665603) // FNV-1a over the name
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	a.state.Store(uint64(seed) ^ h)
	return a
}

// Arm parses spec and arms every matching registered site (and any site
// registered later). seed makes the probability streams reproducible. An
// empty spec is equivalent to Disarm. A parse error leaves the previous
// arming untouched.
func Arm(spec string, seed int64) error {
	parsed, err := parseSpec(spec)
	if err != nil {
		return err
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	registry.spec, registry.raw, registry.seed = parsed, spec, seed
	if parsed == nil {
		registry.raw = ""
	}
	for name, s := range registry.sites {
		if parsed == nil {
			s.arm.Store(nil)
			continue
		}
		s.arm.Store(armingFor(name, parsed, seed))
	}
	return nil
}

// Disarm returns every site to its zero-overhead no-op state.
func Disarm() { _ = Arm("", 0) }

// EnvSpec and EnvSeed are the environment variables ArmFromEnv reads.
const (
	EnvSpec = "FASTLSA_FAULTS"
	EnvSeed = "FASTLSA_FAULT_SEED"
)

// ArmFromEnv arms the spec in $FASTLSA_FAULTS (seed from
// $FASTLSA_FAULT_SEED, default 1), reporting whether anything was armed.
// With the variable unset or empty it leaves the harness disarmed.
func ArmFromEnv(getenv func(string) string) (bool, error) {
	spec := getenv(EnvSpec)
	if strings.TrimSpace(spec) == "" {
		return false, nil
	}
	seed := int64(1)
	if s := getenv(EnvSeed); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return false, fmt.Errorf("fault: %s=%q: %v", EnvSeed, s, err)
		}
		seed = v
	}
	if err := Arm(spec, seed); err != nil {
		return false, err
	}
	return true, nil
}

// parseSpec parses the comma-separated fault grammar; see the package doc.
func parseSpec(spec string) ([]specEntry, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []specEntry
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.Split(clause, ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("fault: clause %q: want point:kind[:arg][:prob]", clause)
		}
		e := specEntry{point: parts[0], rule: rule{prob: 1}}
		if e.point == "" {
			return nil, fmt.Errorf("fault: clause %q: empty point", clause)
		}
		rest := parts[2:]
		switch parts[1] {
		case "panic":
			e.rule.kind = KindPanic
		case "error":
			e.rule.kind = KindError
		case "cancel":
			e.rule.kind = KindCancel
		case "delay":
			e.rule.kind = KindDelay
			if len(rest) == 0 {
				return nil, fmt.Errorf("fault: clause %q: delay needs a duration", clause)
			}
			d, err := time.ParseDuration(rest[0])
			if err != nil || d < 0 {
				return nil, fmt.Errorf("fault: clause %q: bad duration %q", clause, rest[0])
			}
			e.rule.delay = d
			rest = rest[1:]
		default:
			return nil, fmt.Errorf("fault: clause %q: unknown kind %q (want panic, error, cancel or delay)", clause, parts[1])
		}
		switch len(rest) {
		case 0:
		case 1:
			p, err := strconv.ParseFloat(rest[0], 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("fault: clause %q: bad probability %q (want [0, 1])", clause, rest[0])
			}
			e.rule.prob = p
		default:
			return nil, fmt.Errorf("fault: clause %q: trailing fields after probability", clause)
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}
