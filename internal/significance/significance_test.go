package significance_test

import (
	"math"
	"strings"
	"testing"

	"fastlsa/internal/fm"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/significance"
)

func fitDNA(t *testing.T) significance.Params {
	t.Helper()
	p, err := significance.Estimate(scoring.DNASimple, scoring.Linear(-12), significance.Options{
		SampleLen: 150,
		Samples:   60,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEstimateBasics(t *testing.T) {
	p := fitDNA(t)
	if p.Lambda <= 0 || p.K <= 0 {
		t.Fatalf("fit %+v", p)
	}
	if p.MeanScore <= 0 || p.StdDev <= 0 {
		t.Fatalf("moments %+v", p)
	}
	if !strings.Contains(p.String(), "lambda") {
		t.Fatalf("string %q", p.String())
	}
	// Reproducible for the same seed.
	p2, err := significance.Estimate(scoring.DNASimple, scoring.Linear(-12), significance.Options{
		SampleLen: 150, Samples: 60, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Lambda != p.Lambda || p2.K != p.K {
		t.Fatal("fit not deterministic")
	}
}

func TestPValueProperties(t *testing.T) {
	p := fitDNA(t)
	const m, n = 1000, 1_000_000
	prev := 1.1
	for s := int64(20); s <= 400; s += 20 {
		pv := p.PValue(s, m, n)
		if pv < 0 || pv > 1 {
			t.Fatalf("P(%d) = %g outside [0,1]", s, pv)
		}
		if pv > prev+1e-12 {
			t.Fatalf("P-value not monotone at %d: %g > %g", s, pv, prev)
		}
		prev = pv
		if ev := p.EValue(s, m, n); ev < 0 {
			t.Fatalf("E(%d) = %g negative", s, ev)
		}
	}
	// A huge score is essentially impossible by chance.
	if pv := p.PValue(5000, m, n); pv > 1e-6 {
		t.Fatalf("P(5000) = %g, want ~0", pv)
	}
	// E-values scale linearly with the search space.
	if r := p.EValue(100, 1000, 2000) / p.EValue(100, 1000, 1000); math.Abs(r-2) > 1e-9 {
		t.Fatalf("E-value search-space scaling ratio %g, want 2", r)
	}
	// Bit scores are increasing in the raw score.
	if p.BitScore(200) <= p.BitScore(100) {
		t.Fatal("bit score not increasing")
	}
}

// TestCalibration: scores around the simulated mean must not look
// significant for a same-sized search space, while scores far in the tail
// must.
func TestCalibration(t *testing.T) {
	p := fitDNA(t)
	area := p.SampleLen
	mid := int64(p.MeanScore)
	if pv := p.PValue(mid, area, area); pv < 0.2 {
		t.Fatalf("P(mean score) = %g, want large (typical score)", pv)
	}
	tail := int64(p.MeanScore + 8*p.StdDev)
	if pv := p.PValue(tail, area, area); pv > 0.05 {
		t.Fatalf("P(mean + 8sd) = %g, want small", pv)
	}
}

func TestEstimateValidation(t *testing.T) {
	if _, err := significance.Estimate(scoring.DNASimple, scoring.Affine(-5, -1), significance.Options{}); err == nil {
		t.Fatal("affine must be rejected")
	}
	if _, err := significance.Estimate(scoring.DNASimple, scoring.Linear(-12), significance.Options{Samples: 3}); err == nil {
		t.Fatal("too few samples must be rejected")
	}
	// Linear-phase scoring (cheap gaps) must be detected and rejected.
	if _, err := significance.Estimate(scoring.DNASimple, scoring.Linear(-1), significance.Options{
		SampleLen: 120, Samples: 20, Seed: 1,
	}); err == nil {
		t.Fatal("linear-phase scoring must be rejected")
	}
}

func TestEstimateWeighted(t *testing.T) {
	// GC-rich background changes the fit but still produces valid params.
	p, err := significance.Estimate(scoring.DNASimple, scoring.Linear(-12), significance.Options{
		Alphabet:    seq.DNA,
		Frequencies: []float64{1, 3, 3, 1},
		SampleLen:   120,
		Samples:     40,
		Seed:        9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Lambda <= 0 || p.K <= 0 {
		t.Fatalf("weighted fit %+v", p)
	}
	if _, err := significance.Estimate(scoring.DNASimple, scoring.Linear(-12), significance.Options{
		Frequencies: []float64{1, 2}, SampleLen: 50, Samples: 20,
	}); err == nil {
		t.Fatal("wrong frequency count must fail")
	}
}

// TestEmpiricalFalsePositiveRate: on fresh random pairs (not used in the
// fit), the fraction scoring above the P=0.5 threshold should be within a
// loose band around 0.5 — a direct check that the fitted tail is calibrated.
func TestEmpiricalFalsePositiveRate(t *testing.T) {
	p := fitDNA(t)
	// Invert P(s) = 0.5 for the fit's own search space.
	area := float64(p.SampleLen) * float64(p.SampleLen)
	s50 := math.Log(p.K*area/math.Ln2) / p.Lambda
	above := 0
	const trials = 80
	for i := 0; i < trials; i++ {
		a := seq.Random("a", p.SampleLen, seq.DNA, 10_000+int64(i))
		b := seq.Random("b", p.SampleLen, seq.DNA, 20_000+int64(i))
		got, err := scoreLocal(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if float64(got) >= s50 {
			above++
		}
	}
	frac := float64(above) / trials
	if frac < 0.2 || frac > 0.8 {
		t.Fatalf("empirical rate above the P=0.5 threshold is %.2f, want ~0.5 (threshold %.1f)", frac, s50)
	}
}

func scoreLocal(a, b *seq.Sequence) (int64, error) {
	s, _, _, err := fm.ScoreLocal(a, b, scoring.DNASimple, scoring.Linear(-12), nil)
	return s, err
}
