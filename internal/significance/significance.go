// Package significance estimates the statistical significance of local
// alignment scores — the question a homology search must answer about every
// hit ("is score 57 against this database surprising?"). Optimal local
// scores of unrelated random sequences follow an extreme-value (Gumbel)
// distribution; the package fits its parameters (lambda, K) by Monte-Carlo
// simulation against the chosen scoring system and converts raw scores into
// E-values, P-values and bit scores, Karlin-Altschul style. Everything is
// deterministic for a fixed seed.
package significance

import (
	"fmt"
	"math"

	"fastlsa/internal/fm"
	"fastlsa/internal/scoring"
	"fastlsa/internal/seq"
	"fastlsa/internal/stats"
)

// EulerGamma is the Euler-Mascheroni constant used by the method-of-moments
// Gumbel fit.
const EulerGamma = 0.5772156649015329

// Params are fitted extreme-value parameters for one scoring system:
// P(S >= x | random m x n) ~ 1 - exp(-K*m*n*exp(-Lambda*x)).
type Params struct {
	// Lambda is the exponential decay rate of the score tail (> 0).
	Lambda float64
	// K is the search-space scale factor (> 0).
	K float64
	// SampleLen and Samples record how the fit was produced.
	SampleLen int
	Samples   int
	// MeanScore and StdDev of the simulated optimal local scores.
	MeanScore, StdDev float64
}

// Options configures the Monte-Carlo fit.
type Options struct {
	// Alphabet of the random sequences (nil selects the matrix's alphabet...
	// which the caller supplies explicitly, since matrices know theirs).
	Alphabet *seq.Alphabet
	// Frequencies weights the residue letters (nil = uniform).
	Frequencies []float64
	// SampleLen is the length of each simulated sequence (0 selects 200).
	SampleLen int
	// Samples is the number of simulated pairs (0 selects 100).
	Samples int
	// Seed makes the fit reproducible.
	Seed int64
	// Counters, when non-nil, accumulates the simulation's DP cells.
	Counters *stats.Counters
}

// Estimate fits Gumbel parameters for (matrix, gap) by simulating optimal
// local alignment scores of unrelated random sequences. Linear gap models
// only (the local scan is linear-gap). It fails when the scoring system is
// in the "linear phase" (expected local score grows linearly with length),
// where no Gumbel statistics exist — the caller should use stricter
// penalties.
func Estimate(m *scoring.Matrix, gap scoring.Gap, opt Options) (Params, error) {
	if err := gap.Validate(); err != nil {
		return Params{}, err
	}
	if !gap.IsLinear() {
		return Params{}, fmt.Errorf("significance: affine gap models not supported (use linear)")
	}
	alphabet := opt.Alphabet
	if alphabet == nil {
		alphabet = m.Alphabet
	}
	sampleLen := opt.SampleLen
	if sampleLen == 0 {
		sampleLen = 200
	}
	samples := opt.Samples
	if samples == 0 {
		samples = 100
	}
	if samples < 10 {
		return Params{}, fmt.Errorf("significance: %d samples is too few (want >= 10)", samples)
	}

	scores := make([]float64, samples)
	for i := 0; i < samples; i++ {
		a, b, err := randomPair(alphabet, opt.Frequencies, sampleLen, opt.Seed+int64(i)*2654435761)
		if err != nil {
			return Params{}, err
		}
		s, _, _, err := fm.ScoreLocal(a, b, m, gap, opt.Counters)
		if err != nil {
			return Params{}, err
		}
		scores[i] = float64(s)
	}

	mean, sd := meanStd(scores)
	if sd <= 0 {
		return Params{}, fmt.Errorf("significance: degenerate score distribution (sd = 0)")
	}
	// Linear-phase guard: in the log phase the expected optimal score grows
	// ~log(m*n); anything near linear in the length means no Gumbel tail.
	if mean > 0.25*float64(sampleLen)*float64(-gap.Extend) {
		return Params{}, fmt.Errorf("significance: scoring system appears to be in the linear phase (mean local score %.1f for length %d); use stricter penalties", mean, sampleLen)
	}

	// Method of moments for the Gumbel(mu, 1/lambda) family:
	// sd = pi / (lambda * sqrt(6));  mean = mu + gamma / lambda;
	// mu = ln(K*m*n) / lambda.
	lambda := math.Pi / (sd * math.Sqrt(6))
	mu := mean - EulerGamma/lambda
	area := float64(sampleLen) * float64(sampleLen)
	k := math.Exp(lambda*mu) / area
	if !(lambda > 0) || !(k > 0) || math.IsInf(k, 0) || math.IsNaN(k) {
		return Params{}, fmt.Errorf("significance: fit failed (lambda=%g, K=%g)", lambda, k)
	}
	return Params{
		Lambda:    lambda,
		K:         k,
		SampleLen: sampleLen,
		Samples:   samples,
		MeanScore: mean,
		StdDev:    sd,
	}, nil
}

// EValue is the expected number of chance hits with score >= s in an
// m x n search space.
func (p Params) EValue(s int64, m, n int) float64 {
	return p.K * float64(m) * float64(n) * math.Exp(-p.Lambda*float64(s))
}

// PValue is the probability of at least one chance hit with score >= s.
func (p Params) PValue(s int64, m, n int) float64 {
	return -math.Expm1(-p.EValue(s, m, n))
}

// BitScore normalises a raw score into bits, comparable across scoring
// systems: S' = (lambda*S - ln K) / ln 2.
func (p Params) BitScore(s int64) float64 {
	return (p.Lambda*float64(s) - math.Log(p.K)) / math.Ln2
}

// String implements fmt.Stringer.
func (p Params) String() string {
	return fmt.Sprintf("gumbel(lambda=%.4f, K=%.4g; fit on %d pairs of length %d)",
		p.Lambda, p.K, p.Samples, p.SampleLen)
}

func randomPair(a *seq.Alphabet, freqs []float64, n int, seed int64) (*seq.Sequence, *seq.Sequence, error) {
	if freqs == nil {
		return seq.Random("ra", n, a, seed), seq.Random("rb", n, a, seed+1), nil
	}
	x, err := seq.RandomWeighted("ra", n, a, freqs, seed)
	if err != nil {
		return nil, nil, err
	}
	y, err := seq.RandomWeighted("rb", n, a, freqs, seed+1)
	if err != nil {
		return nil, nil, err
	}
	return x, y, nil
}

func meanStd(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd = math.Sqrt(ss / float64(len(xs)-1))
	return mean, sd
}
