// Package memory implements the paper's explicit memory model (§3): an
// alignment run is given RM "memory units" (DPM entries); BM of them are
// reserved up-front as the Base Case buffer and the remainder pays for grid
// caches and working rows. The Budget type does the accounting and is the
// mechanism by which FastLSA "adapts to the amount of space available".
package memory

import (
	"fmt"
	"sync/atomic"

	"fastlsa/internal/fault"
)

// siteReserve is the fault-injection point on every budget reservation: an
// injected error rehearses a lost budget race (Reserve fails with a
// transient, retryable error; TryReserve reports false), even on the
// nil/unlimited budget.
var siteReserve = fault.NewSite("memory.reserve")

// Budget tracks allocation of DPM-entry-sized units against a fixed total.
// A nil *Budget means "unlimited" and all operations succeed.
type Budget struct {
	total int64
	used  atomic.Int64
	peak  atomic.Int64
}

// ErrExceeded is returned (wrapped) when a reservation would overflow the
// budget.
var ErrExceeded = fmt.Errorf("memory: budget exceeded")

// NewBudget creates a budget of total units. total <= 0 is rejected; use a
// nil *Budget for "unlimited".
func NewBudget(total int64) (*Budget, error) {
	if total <= 0 {
		return nil, fmt.Errorf("memory: NewBudget(%d): total must be positive", total)
	}
	return &Budget{total: total}, nil
}

// Total reports the budget size (0 for the nil/unlimited budget).
func (b *Budget) Total() int64 {
	if b == nil {
		return 0
	}
	return b.total
}

// Unlimited reports whether the budget imposes no cap.
func (b *Budget) Unlimited() bool { return b == nil }

// Reserve claims n units, failing with ErrExceeded if fewer than n remain.
// Safe for concurrent use.
func (b *Budget) Reserve(n int64) error {
	if n < 0 {
		return fmt.Errorf("memory: Reserve(%d): negative size", n)
	}
	if err := siteReserve.Hit(); err != nil {
		return fmt.Errorf("memory: Reserve(%d): %w", n, err)
	}
	if b == nil {
		return nil
	}
	for {
		cur := b.used.Load()
		next := cur + n
		if next > b.total {
			return fmt.Errorf("%w: want %d units, %d of %d in use", ErrExceeded, n, cur, b.total)
		}
		if b.used.CompareAndSwap(cur, next) {
			b.observePeak(next)
			return nil
		}
	}
}

// TryReserve claims n units if they are available, reporting whether the
// claim succeeded. It is the primitive behind graceful degradation: callers
// with a smaller fallback plan probe with TryReserve instead of treating
// ErrExceeded as fatal. Negative sizes always fail. Safe for concurrent use.
func (b *Budget) TryReserve(n int64) bool {
	if n < 0 {
		return false
	}
	if siteReserve.Hit() != nil {
		return false
	}
	if b == nil {
		return true
	}
	for {
		cur := b.used.Load()
		next := cur + n
		if next > b.total {
			return false
		}
		if b.used.CompareAndSwap(cur, next) {
			b.observePeak(next)
			return true
		}
	}
}

// Release returns n units to the budget. Releasing more than is in use is a
// programming error and panics (it would silently corrupt all later
// accounting).
func (b *Budget) Release(n int64) {
	if b == nil || n == 0 {
		return
	}
	if n < 0 {
		panic(fmt.Sprintf("memory: Release(%d): negative size", n))
	}
	if next := b.used.Add(-n); next < 0 {
		panic(fmt.Sprintf("memory: Release(%d): budget underflow (%d)", n, next))
	}
}

// Used reports units currently reserved.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Available reports units still reservable (MaxInt-ish for nil budgets).
func (b *Budget) Available() int64 {
	if b == nil {
		return int64(1) << 62
	}
	return b.total - b.used.Load()
}

// Peak reports the high-water mark of reserved units.
func (b *Budget) Peak() int64 {
	if b == nil {
		return 0
	}
	return b.peak.Load()
}

func (b *Budget) observePeak(n int64) {
	for {
		cur := b.peak.Load()
		if n <= cur || b.peak.CompareAndSwap(cur, n) {
			return
		}
	}
}

// String implements fmt.Stringer.
func (b *Budget) String() string {
	if b == nil {
		return "budget(unlimited)"
	}
	return fmt.Sprintf("budget(%d/%d used, peak %d)", b.Used(), b.total, b.Peak())
}
