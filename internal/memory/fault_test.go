package memory_test

import (
	"errors"
	"testing"

	"fastlsa/internal/fault"
	"fastlsa/internal/memory"
)

// TestInjectedReserveFault: an armed memory.reserve site makes Reserve fail
// with a transient (retryable, non-ErrExceeded) error and TryReserve report
// false — on limited and unlimited budgets alike — without reserving
// anything.
func TestInjectedReserveFault(t *testing.T) {
	if err := fault.Arm("memory.reserve:error", 1); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	defer fault.Disarm()

	b, err := memory.NewBudget(100)
	if err != nil {
		t.Fatal(err)
	}
	rerr := b.Reserve(10)
	if !errors.Is(rerr, fault.ErrInjected) {
		t.Fatalf("Reserve err %v does not wrap fault.ErrInjected", rerr)
	}
	if errors.Is(rerr, memory.ErrExceeded) {
		t.Fatalf("injected fault %v masquerades as ErrExceeded", rerr)
	}
	if b.TryReserve(10) {
		t.Fatal("TryReserve succeeded under an injected fault")
	}
	if used := b.Used(); used != 0 {
		t.Fatalf("failed reservations left %d units reserved", used)
	}

	// The site strikes even on the nil (unlimited) budget, so chaos runs
	// exercise callers that never configured a cap.
	var unlimited *memory.Budget
	if err := unlimited.Reserve(10); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("unlimited Reserve err = %v, want injected", err)
	}

	fault.Disarm()
	if err := b.Reserve(10); err != nil {
		t.Fatalf("Reserve after Disarm: %v", err)
	}
	b.Release(10)
}

// TestDisarmedReserveZeroAlloc pins the hot-path cost of the injection
// point: Reserve on the unlimited budget stays allocation-free.
func TestDisarmedReserveZeroAlloc(t *testing.T) {
	fault.Disarm()
	var b *memory.Budget
	allocs := testing.AllocsPerRun(1000, func() {
		if err := b.Reserve(8); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("disarmed Reserve allocates %.1f allocs/op, want 0", allocs)
	}
}
