package memory

import "sync"

// RowPool recycles int64 row buffers between DP passes. FastLSA's recursion
// allocates and frees many rows of similar sizes; pooling them keeps the
// allocator out of the inner loop without changing the budget accounting
// (budgets charge logical entries, pools manage physical slices).
type RowPool struct {
	pool sync.Pool
}

// NewRowPool returns an empty pool.
func NewRowPool() *RowPool { return &RowPool{} }

// Get returns a zero-length slice with capacity >= n. The contents are
// unspecified; callers must initialise every entry they read.
func (p *RowPool) Get(n int) []int64 {
	if p == nil {
		return make([]int64, 0, n)
	}
	if v := p.pool.Get(); v != nil {
		s := v.([]int64)
		if cap(s) >= n {
			return s[:0]
		}
	}
	return make([]int64, 0, n)
}

// GetFull returns a length-n slice (contents unspecified).
func (p *RowPool) GetFull(n int) []int64 { return p.Get(n)[:n:n][:n] }

// Put recycles a slice obtained from Get.
func (p *RowPool) Put(s []int64) {
	if p == nil || cap(s) == 0 {
		return
	}
	p.pool.Put(s[:0]) //nolint:staticcheck // slice headers are fine to pool
}
