package memory

import "sync"

// RowPool recycles int64 row buffers between DP passes. FastLSA's recursion
// allocates and frees many rows of similar sizes; pooling them keeps the
// allocator out of the inner loop without changing the budget accounting
// (budgets charge logical entries, pools manage physical slices).
type RowPool struct {
	// rows holds *[]int64 — pointers, so Put does not box a slice header
	// into an interface on every call (that boxing is itself an allocation,
	// which would defeat the pool on the hot path).
	rows sync.Pool
	// hdrs recycles the header boxes emptied by Get so Put can fill one
	// without allocating.
	hdrs sync.Pool
}

// NewRowPool returns an empty pool.
func NewRowPool() *RowPool { return &RowPool{} }

// Get returns a zero-length slice with capacity >= n. The contents are
// unspecified; callers must initialise every entry they read.
func (p *RowPool) Get(n int) []int64 {
	if p == nil {
		return make([]int64, 0, n)
	}
	if v, ok := p.rows.Get().(*[]int64); ok {
		s := *v
		*v = nil
		p.hdrs.Put(v)
		if cap(s) >= n {
			return s[:0]
		}
	}
	return make([]int64, 0, n)
}

// GetFull returns a length-n slice (contents unspecified).
func (p *RowPool) GetFull(n int) []int64 { return p.Get(n)[:n:n][:n] }

// Put recycles a slice obtained from Get.
func (p *RowPool) Put(s []int64) {
	if p == nil || cap(s) == 0 {
		return
	}
	v, ok := p.hdrs.Get().(*[]int64)
	if !ok {
		v = new([]int64)
	}
	*v = s[:0]
	p.rows.Put(v)
}
